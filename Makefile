# Codeword-protection reproduction — common targets.

GO ?= go

.PHONY: all build vet test race cover bench bench-smoke bench-shard bench-streams bench-streams-smoke server-smoke torture torture-smoke heal heal-smoke table1 table2 faultstudy faultstudy-disk examples clean

all: build vet test

build:
	$(GO) build ./...

# Static checks plus a race-detector pass over the subsystems with the
# most cross-goroutine state (metrics registry, WAL group commit, the
# concurrent TPC-B driver), and a one-iteration smoke of the codeword
# kernel benchmarks. dbvet is the repo's own eleven-pass suite (latch
# order, guarded writes, codeword pairing, metric names, I/O path,
# error flow, 2PC protocol, context propagation, field-level locksets,
# latch-cycle detection, replay determinism); the passes share one load
# and run in parallel, so the eleven-pass suite costs roughly the same
# wall time as the original four. The -stats invocation reuses that
# load to gate suppression debt: the count of //dbvet:allow sites per
# pass must not grow past the checked-in dbvet.debt.json baseline.
# See DESIGN.md "Machine-checked invariants".
vet: bench-smoke torture-smoke server-smoke bench-streams-smoke heal-smoke
	$(GO) vet ./...
	$(GO) run ./cmd/dbvet ./...
	$(GO) run ./cmd/dbvet -stats -debt-baseline dbvet.debt.json ./...
	$(GO) test -race ./internal/core ./internal/wal ./internal/obs ./internal/tpcb

# End-to-end smoke of the TCP front end: a K=4 sharded server takes a
# concurrent mixed load over the wire protocol, drains gracefully, and
# every shard must pass a full audit — plus the codec fuzz corpus and
# the client/server suite, all under the race detector.
server-smoke:
	$(GO) test -race -short ./internal/wire ./internal/shard

# Bounded crash-point recovery torture: the smoke workload is crashed at
# every I/O point, recovery is verified from each frozen durable state,
# and the fail-stop log-poisoning tests run under the race detector.
# Includes the multi-stream sweep (TestCrashPointExhaustiveMultiStream):
# the same workload over a 3-stream log set with parallel redo, so crash
# points land in every stream file's writes and fsyncs.
torture-smoke:
	$(GO) test -race -short ./internal/iofault/...

# Error-correction smoke: a small targeted-damage campaign (every
# ECC-bearing scheme x damage shape) whose gates require each repairable
# fault to heal in place byte-identically with zero delete-transaction
# recoveries, and double-word damage to escalate to a clean recovery.
# The JSON outcome table is the artifact CI uploads.
heal-smoke:
	$(GO) run ./cmd/faultstudy -heal -campaigns 8 -txns 3 -json heal.smoke.json

# The full healing campaign behind the PR's acceptance numbers
# (>= 99% of single-word wild writes silently repaired in place).
heal:
	$(GO) run ./cmd/faultstudy -heal -campaigns 100

# The full exhaustive sweep (DefaultConfig workload, hundreds of crash
# points) plus the disk fault-study campaign.
torture:
	$(GO) test -race ./internal/iofault/...
	$(GO) run ./cmd/faultstudy -disk

# Compile-and-run smoke of the kernel/scan microbenchmarks (one iteration
# each) plus vet and a race pass over the region package, whose pool and
# latch paths are the most concurrency-sensitive code in the tree.
bench-smoke:
	$(GO) vet ./internal/region
	$(GO) test -race ./internal/region
	$(GO) test -run=xxx -bench=. -benchtime=1x ./internal/region

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test ./internal/... -coverpkg=./internal/... -coverprofile=cover.out
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem ./...

# The paper's experiments.
table1:
	$(GO) run ./cmd/protbench

table2:
	$(GO) run ./cmd/tpcbbench -ops 100000 -runs 9

faultstudy:
	$(GO) run ./cmd/faultstudy -campaigns 25

faultstudy-disk:
	$(GO) run ./cmd/faultstudy -disk

# Multi-shard scaling sweep (K=1/2/4/8, partitioned TPC-B-style load);
# regenerates BENCH_pr6.json.
bench-shard:
	$(GO) run ./cmd/shardbench -txns 16000 -shards 1,2,4,8 -cross 0,0.15 -o BENCH_pr6.json

# Parallel-logging sweep: concurrent TPC-B throughput over WAL stream
# counts S=1/2/4/8, plus crash-recovery time serial vs parallel redo;
# regenerates BENCH_pr8.json.
bench-streams:
	$(GO) run ./cmd/tpcbbench -scale paper -log-streams 1,2,4,8 -clients 8 -ops 10000 \
		-recovery-txns 4000 -redo-workers 1,2,4 -o BENCH_pr8.json

# End-to-end smoke of both sweeps (S=1/2, tiny load, report discarded):
# exercises the multi-stream commit path and the crash + parallel-redo
# recovery path without touching the checked-in BENCH_pr8.json.
bench-streams-smoke:
	$(GO) run ./cmd/tpcbbench -q -scale small -log-streams 1,2 -clients 4 -ops 2000 \
		-recovery-txns 400 -redo-workers 1,2 >/dev/null

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/corruption_audit
	$(GO) run ./examples/delete_recovery
	$(GO) run ./examples/tpcb -ops 2000
	$(GO) run ./examples/extensible_index

clean:
	rm -f cover.out test_output.txt bench_output.txt heal.smoke.json
