// Package repro is a from-scratch Go reproduction of "Using Codewords to
// Protect Database Data from a Class of Software Errors" (Bohannon,
// Rastogi, Seshadri, Silberschatz, Sudarshan; ICDE 1999): codeword-based
// detection and prevention of physical corruption in a main-memory
// storage manager, limited read logging, and delete-transaction
// corruption recovery, together with the Dalí-style substrate (multi-level
// recovery, local logging, ping-pong checkpointing) they build on.
//
// The library lives under internal/ (see README.md for the map); this
// root package holds the benchmark harness that regenerates the paper's
// evaluation:
//
//	go test -bench=. -benchmem
//
// See DESIGN.md for the system inventory and per-experiment index, and
// EXPERIMENTS.md for measured-vs-paper results.
package repro
