// Package wire is the storage manager's TCP front end: a small
// length-prefixed binary protocol over which clients run transactions
// against a sharded database (internal/shard), plus the server that
// speaks it and a matching client.
//
// Framing: every message is [uint32 length][uint8 type][payload], with
// length covering the type byte and payload, little-endian, capped at
// MaxFrameSize. A connection carries at most one transaction at a time;
// BEGIN/COMMIT/ABORT bracket it and GET/PUT/DELETE operate within it.
// Malformed input is answered with an error frame (or a closed
// connection), never a panic — the decoder is fuzzed for that.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxFrameSize bounds a frame's length field: type byte plus payload.
// Large enough for any value plus slack for the metrics JSON.
const MaxFrameSize = 1 << 20

// Message types. Requests flow client to server; responses flow back.
const (
	// Requests.
	MsgPing    = 0x01 // payload empty; answered with OK
	MsgBegin   = 0x02 // payload empty; starts the connection's transaction
	MsgGet     = 0x03 // payload [8 key]
	MsgPut     = 0x04 // payload [8 key][value]
	MsgDelete  = 0x05 // payload [8 key]
	MsgCommit  = 0x06 // payload empty
	MsgAbort   = 0x07 // payload empty
	MsgMetrics = 0x08 // payload empty; answered with VAL carrying JSON

	// Responses.
	MsgOK  = 0x10 // payload empty
	MsgVal = 0x11 // payload is the value (GET) or JSON (METRICS)
	MsgErr = 0x12 // payload [1 code][utf-8 message]
)

// Error codes carried in MsgErr frames.
const (
	ErrCodeGeneric    = 0x00
	ErrCodeNotFound   = 0x01 // key not stored
	ErrCodeTxnState   = 0x02 // BEGIN inside a txn, or op outside one
	ErrCodeBusy       = 0x03 // admission control refused the connection
	ErrCodeBadRequest = 0x04 // unknown type or malformed payload
	ErrCodeShutdown   = 0x05 // server is draining
)

// ErrFrameTooLarge reports a length prefix beyond MaxFrameSize.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// ErrMalformed reports a structurally invalid frame or payload.
var ErrMalformed = errors.New("wire: malformed message")

// WriteFrame writes one frame. The payload may be nil.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame. It refuses zero-length and oversized frames
// before allocating, so a hostile peer cannot force large allocations.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, fmt.Errorf("%w: zero-length frame", ErrMalformed)
	}
	if n > MaxFrameSize {
		return 0, nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

// Request is a decoded client request.
type Request struct {
	Type byte
	Key  uint64
	Val  []byte
}

// ParseRequest validates and decodes a request frame's payload for its
// type. It returns ErrMalformed (wrapped) for unknown types, payloads of
// the wrong shape, or trailing garbage — never panics, whatever the
// input bytes.
func ParseRequest(typ byte, payload []byte) (Request, error) {
	req := Request{Type: typ}
	switch typ {
	case MsgPing, MsgBegin, MsgCommit, MsgAbort, MsgMetrics:
		if len(payload) != 0 {
			return req, fmt.Errorf("%w: type %#02x wants no payload, got %d bytes", ErrMalformed, typ, len(payload))
		}
	case MsgGet, MsgDelete:
		if len(payload) != 8 {
			return req, fmt.Errorf("%w: type %#02x wants an 8-byte key, got %d bytes", ErrMalformed, typ, len(payload))
		}
		req.Key = binary.LittleEndian.Uint64(payload)
	case MsgPut:
		if len(payload) < 8 {
			return req, fmt.Errorf("%w: PUT wants [key][value], got %d bytes", ErrMalformed, len(payload))
		}
		req.Key = binary.LittleEndian.Uint64(payload)
		req.Val = payload[8:]
	default:
		return req, fmt.Errorf("%w: unknown request type %#02x", ErrMalformed, typ)
	}
	return req, nil
}

// AppendKey encodes key for a GET/DELETE payload.
func AppendKey(dst []byte, key uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, key)
}

// EncodeErr builds a MsgErr payload.
func EncodeErr(code byte, msg string) []byte {
	b := make([]byte, 1+len(msg))
	b[0] = code
	copy(b[1:], msg)
	return b
}

// DecodeErr splits a MsgErr payload. Empty payloads decode as a generic
// error rather than failing: the code byte is the only required part.
func DecodeErr(payload []byte) (code byte, msg string) {
	if len(payload) == 0 {
		return ErrCodeGeneric, "unspecified error"
	}
	return payload[0], string(payload[1:])
}
