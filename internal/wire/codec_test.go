package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		typ     byte
		payload []byte
	}{
		{MsgPing, nil},
		{MsgBegin, []byte{}},
		{MsgGet, AppendKey(nil, 0xdeadbeef)},
		{MsgPut, append(AppendKey(nil, 7), []byte("value")...)},
		{MsgVal, bytes.Repeat([]byte("x"), 4096)},
		{MsgErr, EncodeErr(ErrCodeNotFound, "nope")},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, c.typ, c.payload); err != nil {
			t.Fatalf("WriteFrame(%#02x): %v", c.typ, err)
		}
		typ, payload, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame(%#02x): %v", c.typ, err)
		}
		if typ != c.typ || !bytes.Equal(payload, c.payload) {
			t.Fatalf("round trip %#02x: got type %#02x payload %q", c.typ, typ, payload)
		}
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], MaxFrameSize+1)
	_, _, err := ReadFrame(bytes.NewReader(hdr[:]))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: got %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameRejectsZeroLength(t *testing.T) {
	var hdr [4]byte
	_, _, err := ReadFrame(bytes.NewReader(hdr[:]))
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("zero-length frame: got %v, want ErrMalformed", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgPut, []byte("12345678payload")); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for cut := 1; cut < len(b); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(b[:cut]))
		if err == nil {
			t.Fatalf("truncated frame at %d bytes decoded successfully", cut)
		}
	}
}

func TestParseRequestShapes(t *testing.T) {
	if _, err := ParseRequest(MsgBegin, []byte{1}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("BEGIN with payload: %v", err)
	}
	if _, err := ParseRequest(MsgGet, []byte{1, 2, 3}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short GET: %v", err)
	}
	if _, err := ParseRequest(MsgPut, []byte{1, 2, 3}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short PUT: %v", err)
	}
	if _, err := ParseRequest(0xee, nil); !errors.Is(err, ErrMalformed) {
		t.Fatalf("unknown type: %v", err)
	}
	req, err := ParseRequest(MsgPut, append(AppendKey(nil, 42), "abc"...))
	if err != nil || req.Key != 42 || string(req.Val) != "abc" {
		t.Fatalf("PUT parse = %+v, %v", req, err)
	}
	req, err = ParseRequest(MsgDelete, AppendKey(nil, 9))
	if err != nil || req.Key != 9 {
		t.Fatalf("DELETE parse = %+v, %v", req, err)
	}
}

// FuzzReadFrame feeds arbitrary bytes to the frame decoder: it must
// return an error or a frame, never panic, and never allocate beyond
// MaxFrameSize.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	WriteFrame(&seed, MsgPut, append(AppendKey(nil, 1), "hello"...))
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{0x01, 0x00, 0x00, 0x00, MsgPing})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			typ, payload, err := ReadFrame(r)
			if err != nil {
				return
			}
			// Whatever decoded must re-encode.
			var buf bytes.Buffer
			if err := WriteFrame(&buf, typ, payload); err != nil {
				t.Fatalf("re-encode of decoded frame failed: %v", err)
			}
		}
	})
}

// FuzzParseRequest feeds arbitrary type/payload pairs through request
// validation: errors are fine, panics are not.
func FuzzParseRequest(f *testing.F) {
	f.Add(byte(MsgGet), AppendKey(nil, 1))
	f.Add(byte(MsgPut), []byte("short"))
	f.Add(byte(0xee), []byte{})
	f.Fuzz(func(t *testing.T, typ byte, payload []byte) {
		req, err := ParseRequest(typ, payload)
		if err == nil && typ != req.Type {
			t.Fatalf("parsed request type %#02x from input type %#02x", req.Type, typ)
		}
	})
}

// FuzzErrPayload round-trips error payloads.
func FuzzErrPayload(f *testing.F) {
	f.Add([]byte{ErrCodeNotFound, 'n', 'o'})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		code, msg := DecodeErr(payload)
		if len(payload) > 0 {
			re := EncodeErr(code, msg)
			if !bytes.Equal(re, payload) {
				t.Fatalf("EncodeErr(DecodeErr(%q)) = %q", payload, re)
			}
		}
	})
}
