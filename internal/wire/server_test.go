package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
)

// startServer opens a K-shard database in a temp dir and serves it on a
// loopback listener. Cleanup drains the server and closes the router.
func startServer(t *testing.T, k int, scfg ServerConfig) (*shard.Router, *Server, string) {
	t.Helper()
	router, _, err := shard.Open(shard.Config{
		Dir:         t.TempDir(),
		Shards:      k,
		ArenaSize:   1 << 18,
		ValueSize:   64,
		Capacity:    1024,
		LockTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("shard.Open: %v", err)
	}
	srv := NewServer(router, scfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-serveErr; err != nil {
			t.Errorf("Serve returned %v", err)
		}
		router.Close()
	})
	return router, srv, ln.Addr().String()
}

func TestClientServerRoundTrip(t *testing.T) {
	_, _, addr := startServer(t, 4, ServerConfig{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if err := c.Begin(); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := c.Begin(); err == nil {
		t.Fatal("nested Begin succeeded")
	}
	if err := c.Put(1, []byte("one")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if got, err := c.Get(1); err != nil || string(got) != "one" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := c.Get(999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
	if err := c.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := c.Commit(); err == nil {
		t.Fatal("Commit without transaction succeeded")
	}

	// Committed data visible to a second transaction on the same conn.
	if err := c.Begin(); err != nil {
		t.Fatalf("second Begin: %v", err)
	}
	if got, err := c.Get(1); err != nil || string(got) != "one" {
		t.Fatalf("Get after commit = %q, %v", got, err)
	}
	if err := c.Delete(1); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := c.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}

	// Abort rolled the delete back.
	if err := c.Begin(); err != nil {
		t.Fatalf("third Begin: %v", err)
	}
	if got, err := c.Get(1); err != nil || string(got) != "one" {
		t.Fatalf("Get after abort = %q, %v", got, err)
	}
	if err := c.Abort(); err != nil {
		t.Fatalf("final Abort: %v", err)
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if m["router"].Counter(obs.NameShardTxns) == 0 {
		t.Fatal("metrics snapshot shows no transactions")
	}
	if _, ok := m["shard-003"]; !ok {
		t.Fatalf("metrics snapshot missing shard-003: have %d keys", len(m))
	}
}

// TestConcurrentClients hammers the server from many connections at
// once; run under -race this doubles as the server's data-race check.
func TestConcurrentClients(t *testing.T) {
	router, _, addr := startServer(t, 4, ServerConfig{MaxConns: 32})

	const (
		workers = 8
		txnsPer = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < txnsPer; i++ {
				key := uint64(1000 + w*txnsPer + i)
				if err := c.Begin(); err != nil {
					errs <- fmt.Errorf("worker %d begin: %w", w, err)
					return
				}
				if err := c.Put(key, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- fmt.Errorf("worker %d put: %w", w, err)
					return
				}
				// Every fourth transaction also touches a shared key range
				// to force cross-shard and lock-conflict traffic.
				if i%4 == 0 {
					if err := c.Put(uint64(i), []byte("shared")); err != nil {
						errs <- fmt.Errorf("worker %d shared put: %w", w, err)
						return
					}
				}
				if err := c.Commit(); err != nil {
					errs <- fmt.Errorf("worker %d commit: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every worker's private keys must be readable afterwards.
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("verify dial: %v", err)
	}
	defer c.Close()
	if err := c.Begin(); err != nil {
		t.Fatalf("verify begin: %v", err)
	}
	for w := 0; w < workers; w++ {
		key := uint64(1000 + w*txnsPer + txnsPer - 1)
		want := fmt.Sprintf("w%d-%d", w, txnsPer-1)
		if got, err := c.Get(key); err != nil || string(got) != want {
			t.Fatalf("Get(%d) = %q, %v; want %q", key, got, err, want)
		}
	}
	if err := c.Abort(); err != nil {
		t.Fatalf("verify abort: %v", err)
	}
	if err := router.Audit(); err != nil {
		t.Fatalf("post-load audit: %v", err)
	}
}

func TestAdmissionControl(t *testing.T) {
	_, srv, addr := startServer(t, 1, ServerConfig{MaxConns: 2})

	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Admission is counted at accept; ping to make sure both are in.
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Ping(); err != nil {
		t.Fatal(err)
	}

	// A rejected connection is sent the busy frame unprompted; read it
	// raw so the server's close cannot race our own write.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload, err := ReadFrame(raw)
	if err != nil {
		t.Fatalf("reading rejection frame: %v", err)
	}
	if code, _ := DecodeErr(payload); typ != MsgErr || code != ErrCodeBusy {
		t.Fatalf("rejection frame = type %#02x code %#02x, want MsgErr/busy", typ, code)
	}

	snap := srv.router.Observability().Snapshot()
	if snap.Counter(obs.NameServerConnsRejected) != 1 {
		t.Fatalf("conns_rejected = %d, want 1", snap.Counter(obs.NameServerConnsRejected))
	}
	if snap.Gauge(obs.NameServerConns) != 2 {
		t.Fatalf("conns gauge = %d, want 2", snap.Gauge(obs.NameServerConns))
	}
}

// TestGracefulDrain checks the SIGTERM path: a client mid-transaction
// when Shutdown begins gets to finish and commit; idle connections are
// closed; new connections are refused; Shutdown returns nil within the
// grace period and the router still audits clean.
func TestGracefulDrain(t *testing.T) {
	router, srv, addr := startServer(t, 2, ServerConfig{})

	busy, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()
	idle, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	if err := idle.Ping(); err != nil {
		t.Fatal(err)
	}

	if err := busy.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := busy.Put(42, []byte("mid-drain")); err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// The draining server must still serve the open transaction.
	if err := busy.Put(43, []byte("also")); err != nil {
		t.Fatalf("Put during drain: %v", err)
	}
	if err := busy.Commit(); err != nil {
		t.Fatalf("Commit during drain: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// After drain: the connection is gone and new work is refused.
	if err := busy.Ping(); err == nil {
		t.Fatal("Ping succeeded after drain closed the connection")
	}
	if err := router.Audit(); err != nil {
		t.Fatalf("audit after drain: %v", err)
	}

	// The committed transaction survived the drain.
	txn := router.Begin()
	defer txn.Abort()
	if got, err := txn.Get(42); err != nil || string(got) != "mid-drain" {
		t.Fatalf("Get(42) after drain = %q, %v", got, err)
	}
}

// TestServerSmoke is the make server-smoke entry point: a K=4 server
// takes a short mixed load from several clients, drains cleanly, and
// every shard passes a full audit and clean close.
func TestServerSmoke(t *testing.T) {
	router, srv, addr := startServer(t, 4, ServerConfig{MaxConns: 16})

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			// Worker 0 writes one key per transaction (guaranteed
			// fastpath); the rest write three (almost surely cross-shard).
			perTxn := 3
			if w == 0 {
				perTxn = 1
			}
			for i := 0; i < 20; i++ {
				if err := c.Begin(); err != nil {
					errs <- err
					return
				}
				for j := 0; j < perTxn; j++ {
					key := uint64(w)<<32 | uint64(i*3+j)
					if err := c.Put(key, []byte(fmt.Sprintf("smoke-%d", i))); err != nil {
						errs <- err
						return
					}
				}
				if i%5 == 4 {
					if err := c.Abort(); err != nil {
						errs <- err
						return
					}
					continue
				}
				if err := c.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := router.Audit(); err != nil {
		t.Fatalf("post-drain audit: %v", err)
	}
	snap := router.Metrics()["router"]
	if snap.Counter(obs.NameShardFastpathCommits) == 0 {
		t.Fatal("smoke load produced no fastpath commits")
	}
	if snap.Counter(obs.NameShardCrossCommits) == 0 {
		t.Fatal("smoke load produced no cross-shard commits")
	}
}
