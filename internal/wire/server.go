package wire

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
)

// ServerConfig tunes the front end.
type ServerConfig struct {
	// MaxConns caps concurrently admitted connections (default 64).
	// Arrivals beyond the cap get an ErrCodeBusy frame and are closed —
	// admission control, not queueing.
	MaxConns int
	// IdleTimeout closes a connection that sends no request for this long
	// (default 5m). It doubles as the transaction-abandonment bound: an
	// idle connection's open transaction is aborted, releasing its locks.
	IdleTimeout time.Duration
}

func (c ServerConfig) normalized() ServerConfig {
	if c.MaxConns == 0 {
		c.MaxConns = 64
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	return c
}

// Server serves the wire protocol over a shard.Router. One goroutine per
// connection; per-connection transactions run under a context canceled
// on forced shutdown, so lock waits and group-commit waits unwind.
type Server struct {
	router *shard.Router
	cfg    ServerConfig

	baseCtx context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*serverConn]struct{}
	draining bool

	wg sync.WaitGroup

	gConns     *obs.Gauge
	mConns     *obs.Counter
	mRejected  *obs.Counter
	mRequests  *obs.Counter
	mErrors    *obs.Counter
	hRequestNS *obs.Histogram
}

type serverConn struct {
	net.Conn
	mu      sync.Mutex
	inTxn   bool
	started bool // a request is being served right now
}

// NewServer wraps router. Server metrics register in the router's
// observability registry under server.*.
func NewServer(router *shard.Router, cfg ServerConfig) *Server {
	reg := router.Observability()
	//dbvet:allow ctxflow the server owns its lifetime root; every request context is derived from it and canceled on Close
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		router:     router,
		cfg:        cfg.normalized(),
		baseCtx:    ctx,
		cancel:     cancel,
		conns:      make(map[*serverConn]struct{}),
		gConns:     reg.Gauge(obs.NameServerConns),
		mConns:     reg.Counter(obs.NameServerConnsTotal),
		mRejected:  reg.Counter(obs.NameServerConnsRejected),
		mRequests:  reg.Counter(obs.NameServerRequests),
		mErrors:    reg.Counter(obs.NameServerErrors),
		hRequestNS: reg.Histogram(obs.NameServerRequestNS),
	}
}

// Serve accepts connections on ln until Shutdown (returns nil) or a
// listener failure (returns the error).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return errors.New("wire: server already shut down")
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.admit(conn)
	}
}

// admit applies the connection cap and spawns the handler.
func (s *Server) admit(conn net.Conn) {
	s.mu.Lock()
	if s.draining || len(s.conns) >= s.cfg.MaxConns {
		draining := s.draining
		s.mu.Unlock()
		s.mRejected.Inc()
		code := byte(ErrCodeBusy)
		msg := "connection limit reached"
		if draining {
			code, msg = ErrCodeShutdown, "server draining"
		}
		conn.SetWriteDeadline(time.Now().Add(time.Second))
		_ = WriteFrame(conn, MsgErr, EncodeErr(code, msg))
		conn.Close()
		return
	}
	sc := &serverConn{Conn: conn}
	s.conns[sc] = struct{}{}
	s.mu.Unlock()
	s.mConns.Inc()
	s.gConns.Add(1)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.handle(sc)
	}()
}

// handle runs one connection's request loop.
func (s *Server) handle(sc *serverConn) {
	defer func() {
		sc.Close()
		s.mu.Lock()
		delete(s.conns, sc)
		s.mu.Unlock()
		s.gConns.Add(-1)
	}()

	br := bufio.NewReader(sc)
	bw := bufio.NewWriter(sc)
	var txn *shard.Txn
	defer func() {
		if txn != nil {
			_ = txn.Abort()
		}
	}()

	for {
		sc.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		typ, payload, err := ReadFrame(br)
		if err != nil {
			// EOF, timeout, drain-wakeup, malformed frame: answer what can
			// be answered, then drop the connection. The deferred abort
			// releases any open transaction's locks.
			if errors.Is(err, ErrMalformed) || errors.Is(err, ErrFrameTooLarge) {
				s.mErrors.Inc()
				_ = WriteFrame(bw, MsgErr, EncodeErr(ErrCodeBadRequest, err.Error()))
				bw.Flush()
			}
			return
		}
		sc.mu.Lock()
		sc.started = true
		sc.mu.Unlock()

		start := time.Now()
		s.mRequests.Inc()
		req, err := ParseRequest(typ, payload)
		if err != nil {
			s.mErrors.Inc()
			_ = WriteFrame(bw, MsgErr, EncodeErr(ErrCodeBadRequest, err.Error()))
			bw.Flush()
			return
		}
		respErr := s.serveRequest(bw, sc, &txn, req)
		s.hRequestNS.ObserveDuration(time.Since(start))
		if flushErr := bw.Flush(); flushErr != nil || respErr != nil {
			return
		}

		sc.mu.Lock()
		sc.inTxn = txn != nil
		sc.started = false
		sc.mu.Unlock()

		// A draining server parts with the connection as soon as no
		// transaction is open; the client sees a clean close after its
		// commit/abort response.
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining && txn == nil {
			return
		}
	}
}

// serveRequest executes one request and writes its response. A non-nil
// return closes the connection (the response, if any, was written).
func (s *Server) serveRequest(bw *bufio.Writer, sc *serverConn, txn **shard.Txn, req Request) error {
	fail := func(code byte, err error) error {
		s.mErrors.Inc()
		return WriteFrame(bw, MsgErr, EncodeErr(code, err.Error()))
	}
	switch req.Type {
	case MsgPing:
		return WriteFrame(bw, MsgOK, nil)
	case MsgBegin:
		if *txn != nil {
			return fail(ErrCodeTxnState, errors.New("transaction already open on this connection"))
		}
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			return fail(ErrCodeShutdown, errors.New("server draining"))
		}
		*txn = s.router.BeginCtx(s.baseCtx)
		return WriteFrame(bw, MsgOK, nil)
	case MsgGet:
		if *txn == nil {
			return fail(ErrCodeTxnState, errors.New("no open transaction"))
		}
		val, err := (*txn).Get(req.Key)
		if err != nil {
			if errors.Is(err, shard.ErrNotFound) {
				return fail(ErrCodeNotFound, err)
			}
			return fail(ErrCodeGeneric, err)
		}
		return WriteFrame(bw, MsgVal, val)
	case MsgPut:
		if *txn == nil {
			return fail(ErrCodeTxnState, errors.New("no open transaction"))
		}
		if err := (*txn).Put(req.Key, req.Val); err != nil {
			return fail(ErrCodeGeneric, err)
		}
		return WriteFrame(bw, MsgOK, nil)
	case MsgDelete:
		if *txn == nil {
			return fail(ErrCodeTxnState, errors.New("no open transaction"))
		}
		if err := (*txn).Delete(req.Key); err != nil {
			if errors.Is(err, shard.ErrNotFound) {
				return fail(ErrCodeNotFound, err)
			}
			return fail(ErrCodeGeneric, err)
		}
		return WriteFrame(bw, MsgOK, nil)
	case MsgCommit:
		if *txn == nil {
			return fail(ErrCodeTxnState, errors.New("no open transaction"))
		}
		err := (*txn).Commit()
		*txn = nil
		if err != nil {
			return fail(ErrCodeGeneric, err)
		}
		return WriteFrame(bw, MsgOK, nil)
	case MsgAbort:
		if *txn == nil {
			return fail(ErrCodeTxnState, errors.New("no open transaction"))
		}
		err := (*txn).Abort()
		*txn = nil
		if err != nil {
			return fail(ErrCodeGeneric, err)
		}
		return WriteFrame(bw, MsgOK, nil)
	case MsgMetrics:
		blob, err := json.Marshal(s.router.Metrics())
		if err != nil {
			return fail(ErrCodeGeneric, err)
		}
		if len(blob)+1 > MaxFrameSize {
			return fail(ErrCodeGeneric, fmt.Errorf("metrics snapshot exceeds frame size"))
		}
		return WriteFrame(bw, MsgVal, blob)
	default:
		return fail(ErrCodeBadRequest, fmt.Errorf("unknown request type %#02x", req.Type))
	}
}

// Shutdown drains the server: stop accepting, wake idle connections so
// they close, let connections with open transactions finish until ctx
// expires, then force-close stragglers and cancel their contexts. The
// router is not closed — the caller owns it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	// Wake connections parked in ReadFrame with no transaction open: an
	// immediate read deadline bounces them out, and the drain check in
	// handle() refuses to serve them further.
	for sc := range s.conns {
		sc.mu.Lock()
		if !sc.inTxn && !sc.started {
			sc.SetReadDeadline(time.Now())
		}
		sc.mu.Unlock()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Grace expired: cancel in-flight transactions (unwinds lock and
		// group-commit waits) and sever the connections.
		s.cancel()
		s.mu.Lock()
		for sc := range s.conns {
			sc.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}
