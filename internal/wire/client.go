package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
)

// ErrNotFound aliases the shard sentinel so callers on either side of
// the wire test the same way: errors.Is(err, ErrNotFound).
var ErrNotFound = shard.ErrNotFound

// ErrServerBusy reports an admission-control rejection.
var ErrServerBusy = errors.New("wire: server busy")

// ErrServerDraining reports a request refused because the server is
// shutting down.
var ErrServerDraining = errors.New("wire: server draining")

// RemoteError is any other error the server answered with.
type RemoteError struct {
	Code byte
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("wire: server error (code %#02x): %s", e.Code, e.Msg)
}

// Client is one protocol connection. It carries at most one transaction
// at a time and is not safe for concurrent use; open one Client per
// worker goroutine.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects to a wire server.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout connects with a connect timeout.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}, nil
}

// Close severs the connection. A transaction left open is aborted by the
// server when it notices the close.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request frame and reads one response frame.
func (c *Client) roundTrip(typ byte, payload []byte) (byte, []byte, error) {
	if err := WriteFrame(c.bw, typ, payload); err != nil {
		return 0, nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, nil, err
	}
	return ReadFrame(c.br)
}

// expectOK runs a request whose success response is a bare OK.
func (c *Client) expectOK(typ byte, payload []byte) error {
	rt, rp, err := c.roundTrip(typ, payload)
	if err != nil {
		return err
	}
	return decodeStatus(rt, rp)
}

func decodeStatus(typ byte, payload []byte) error {
	switch typ {
	case MsgOK:
		return nil
	case MsgErr:
		code, msg := DecodeErr(payload)
		switch code {
		case ErrCodeNotFound:
			// The server's message already spells out the sentinel text;
			// avoid "key not found: key not found: N" after re-wrapping.
			return fmt.Errorf("%w: %s", ErrNotFound,
				strings.TrimPrefix(msg, ErrNotFound.Error()+": "))
		case ErrCodeBusy:
			return fmt.Errorf("%w: %s", ErrServerBusy, msg)
		case ErrCodeShutdown:
			return fmt.Errorf("%w: %s", ErrServerDraining, msg)
		default:
			return &RemoteError{Code: code, Msg: msg}
		}
	default:
		return fmt.Errorf("%w: unexpected response type %#02x", ErrMalformed, typ)
	}
}

// Ping round-trips an empty request.
func (c *Client) Ping() error { return c.expectOK(MsgPing, nil) }

// Begin opens the connection's transaction.
func (c *Client) Begin() error { return c.expectOK(MsgBegin, nil) }

// Commit commits the connection's transaction.
func (c *Client) Commit() error { return c.expectOK(MsgCommit, nil) }

// Abort rolls back the connection's transaction.
func (c *Client) Abort() error { return c.expectOK(MsgAbort, nil) }

// Get reads key within the open transaction.
func (c *Client) Get(key uint64) ([]byte, error) {
	rt, rp, err := c.roundTrip(MsgGet, AppendKey(nil, key))
	if err != nil {
		return nil, err
	}
	if rt == MsgVal {
		return rp, nil
	}
	return nil, decodeStatus(rt, rp)
}

// Put writes key within the open transaction.
func (c *Client) Put(key uint64, val []byte) error {
	payload := AppendKey(make([]byte, 0, 8+len(val)), key)
	payload = append(payload, val...)
	return c.expectOK(MsgPut, payload)
}

// Delete removes key within the open transaction.
func (c *Client) Delete(key uint64) error {
	return c.expectOK(MsgDelete, AppendKey(nil, key))
}

// Metrics fetches the server's full metrics snapshot, keyed "router" and
// "shard-<i>" exactly as shard.Router.Metrics returns it.
func (c *Client) Metrics() (map[string]obs.Snapshot, error) {
	rt, rp, err := c.roundTrip(MsgMetrics, nil)
	if err != nil {
		return nil, err
	}
	if rt != MsgVal {
		return nil, decodeStatus(rt, rp)
	}
	var out map[string]obs.Snapshot
	if err := json.Unmarshal(rp, &out); err != nil {
		return nil, fmt.Errorf("wire: metrics payload: %w", err)
	}
	return out, nil
}
