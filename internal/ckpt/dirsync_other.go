//go:build !linux

package ckpt

// dirSyncMandatory: outside Linux, fsync on a directory handle is not
// reliably supported (it can fail spuriously on some filesystems), so a
// failed directory sync stays best-effort.
const dirSyncMandatory = false
