package ckpt

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mem"
	"repro/internal/wal"
)

func newArena(t *testing.T, size int) *mem.Arena {
	t.Helper()
	a, err := mem.NewArena(size, 4096, mem.WithHeapBacking())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

func TestAnchorRoundTrip(t *testing.T) {
	a := Anchor{Current: 1, SeqNo: 42, CKEnd: 1000, AuditSN: 1200}
	got, err := decodeAnchor(a.encode())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a) {
		t.Fatalf("roundtrip: %+v != %+v", got, a)
	}
}

func TestAnchorRejectsCorruption(t *testing.T) {
	a := Anchor{Current: 0, SeqNo: 7, CKEnd: 5, AuditSN: 9}
	enc := a.encode()
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x01
		if _, err := decodeAnchor(bad); err == nil {
			t.Fatalf("bit flip at %d accepted", i)
		}
	}
	if _, err := decodeAnchor(enc[:10]); err == nil {
		t.Fatal("short anchor accepted")
	}
}

func TestOpenEmptyDir(t *testing.T) {
	s, err := Open(t.TempDir(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Anchor(); ok {
		t.Fatal("fresh dir reports an anchor")
	}
}

func fullCheckpoint(t *testing.T, s *Set, arena *mem.Arena, att, meta []byte, ckEnd, auditSN wal.LSN) {
	t.Helper()
	snap := s.Begin(arena, att, meta, []wal.LSN{ckEnd})
	if err := s.Write(snap, arena.Size()); err != nil {
		t.Fatal(err)
	}
	if err := s.Certify(snap, auditSN); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointAndLoad(t *testing.T) {
	dir := t.TempDir()
	arena := newArena(t, 64*1024)
	rand.New(rand.NewSource(1)).Read(arena.Bytes())

	s, err := Open(dir, 4096)
	if err != nil {
		t.Fatal(err)
	}
	att := wal.EncodeEntries([]*wal.TxnEntry{{ID: 5, State: wal.TxnActive,
		Undo: []wal.UndoRec{{Kind: wal.UndoPhys, Addr: 3, Before: []byte{1}}}}})
	meta := []byte("catalog-bytes")
	fullCheckpoint(t, s, arena, att, meta, 123, 456)

	a, ok := s.Anchor()
	if !ok || a.SeqNo != 1 || a.CKEnd != 123 || a.AuditSN != 456 || a.Current != 0 {
		t.Fatalf("anchor after first checkpoint: %+v", a)
	}

	l, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(l.Image, arena.Bytes()) {
		t.Fatal("loaded image differs from arena")
	}
	if len(l.ATTEntries) != 1 || l.ATTEntries[0].ID != 5 {
		t.Fatalf("loaded ATT: %+v", l.ATTEntries)
	}
	if string(l.Meta) != "catalog-bytes" {
		t.Fatalf("loaded meta: %q", l.Meta)
	}
	if !l.Anchor.Equal(a) {
		t.Fatalf("loaded anchor %+v != %+v", l.Anchor, a)
	}
}

func TestPingPongAlternates(t *testing.T) {
	dir := t.TempDir()
	arena := newArena(t, 32*1024)
	s, err := Open(dir, 4096)
	if err != nil {
		t.Fatal(err)
	}
	fullCheckpoint(t, s, arena, nil, nil, 1, 1)
	a1, _ := s.Anchor()
	fullCheckpoint(t, s, arena, nil, nil, 2, 2)
	a2, _ := s.Anchor()
	fullCheckpoint(t, s, arena, nil, nil, 3, 3)
	a3, _ := s.Anchor()
	if a1.Current != 0 || a2.Current != 1 || a3.Current != 0 {
		t.Fatalf("images did not alternate: %d %d %d", a1.Current, a2.Current, a3.Current)
	}
	if a3.SeqNo != 3 {
		t.Fatalf("seqno = %d", a3.SeqNo)
	}
}

func TestIncrementalCheckpointWritesOnlyDirtyPages(t *testing.T) {
	dir := t.TempDir()
	arena := newArena(t, 32*1024)
	rand.New(rand.NewSource(2)).Read(arena.Bytes())
	s, err := Open(dir, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// Two full checkpoints initialize both images.
	fullCheckpoint(t, s, arena, nil, nil, 1, 1)
	fullCheckpoint(t, s, arena, nil, nil, 2, 2)

	// Dirty page 3, checkpoint: snapshot must contain only page 3.
	arena.Page(3)[0] = 0xAB
	s.NoteDirty(3)
	snap := s.Begin(arena, nil, nil, []wal.LSN{3})
	if len(snap.Pages) != 1 {
		t.Fatalf("snapshot holds %d pages, want 1", len(snap.Pages))
	}
	if _, ok := snap.Pages[3]; !ok {
		t.Fatal("snapshot missing dirtied page")
	}
	if err := s.Write(snap, arena.Size()); err != nil {
		t.Fatal(err)
	}
	if err := s.Certify(snap, 3); err != nil {
		t.Fatal(err)
	}
	l, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(l.Image, arena.Bytes()) {
		t.Fatal("incremental image diverged from arena")
	}
}

func TestDirtySetsPerImage(t *testing.T) {
	dir := t.TempDir()
	arena := newArena(t, 32*1024)
	s, err := Open(dir, 4096)
	if err != nil {
		t.Fatal(err)
	}
	fullCheckpoint(t, s, arena, nil, nil, 1, 1) // image A full
	fullCheckpoint(t, s, arena, nil, nil, 2, 2) // image B full

	// Page 1 dirtied: it is pending for both images.
	s.NoteDirty(1)
	d0, d1 := s.DirtyCounts()
	if d0 != 1 || d1 != 1 {
		t.Fatalf("dirty counts = %d,%d", d0, d1)
	}
	// Checkpoint to image A consumes A's set; B still remembers page 1.
	snapA := s.Begin(arena, nil, nil, []wal.LSN{3})
	if len(snapA.Pages) != 1 {
		t.Fatalf("image A snapshot pages = %d", len(snapA.Pages))
	}
	if err := s.Write(snapA, arena.Size()); err != nil {
		t.Fatal(err)
	}
	if err := s.Certify(snapA, 3); err != nil {
		t.Fatal(err)
	}
	snapB := s.Begin(arena, nil, nil, []wal.LSN{4})
	if len(snapB.Pages) != 1 {
		t.Fatalf("image B snapshot pages = %d (page 1 forgotten or duplicated)", len(snapB.Pages))
	}
}

func TestCrashBeforeCertifyKeepsOldCheckpoint(t *testing.T) {
	dir := t.TempDir()
	arena := newArena(t, 32*1024)
	rand.New(rand.NewSource(3)).Read(arena.Bytes())
	s, err := Open(dir, 4096)
	if err != nil {
		t.Fatal(err)
	}
	fullCheckpoint(t, s, arena, nil, []byte("v1"), 1, 1)

	// Second checkpoint writes the image but "crashes" before Certify.
	arena.Page(0)[0] = 0xFF
	s.NoteDirty(0)
	snap := s.Begin(arena, nil, []byte("v2"), []wal.LSN{2})
	if err := s.Write(snap, arena.Size()); err != nil {
		t.Fatal(err)
	}
	// No Certify. Load must still see v1.
	l, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(l.Meta) != "v1" {
		t.Fatalf("load after uncertified write: meta %q, want v1", l.Meta)
	}
	if l.Anchor.CKEnd != 1 {
		t.Fatalf("anchor CKEnd = %d, want 1", l.Anchor.CKEnd)
	}
}

func TestReopenForcesFullRewrite(t *testing.T) {
	dir := t.TempDir()
	arena := newArena(t, 32*1024)
	rand.New(rand.NewSource(4)).Read(arena.Bytes())
	s, err := Open(dir, 4096)
	if err != nil {
		t.Fatal(err)
	}
	fullCheckpoint(t, s, arena, nil, nil, 1, 1)
	fullCheckpoint(t, s, arena, nil, nil, 2, 2)

	// Reopen (as after a crash): dirty knowledge is gone, so the next
	// checkpoint must write every page even though nothing is noted.
	s2, err := Open(dir, 4096)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := s2.Anchor()
	if !ok || a.SeqNo != 2 {
		t.Fatalf("anchor after reopen: %+v ok=%v", a, ok)
	}
	snap := s2.Begin(arena, nil, nil, []wal.LSN{3})
	if len(snap.Pages) != arena.NumPages() {
		t.Fatalf("post-reopen snapshot pages = %d, want all %d", len(snap.Pages), arena.NumPages())
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Fatal("load with no anchor succeeded")
	}

	// Corrupt meta checksum.
	dir := t.TempDir()
	arena := newArena(t, 16*1024)
	s, _ := Open(dir, 4096)
	fullCheckpoint(t, s, arena, nil, []byte("m"), 1, 1)
	path := filepath.Join(dir, metaAName)
	mb, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mb[0] ^= 0xFF
	if err := os.WriteFile(path, mb, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("corrupt meta accepted")
	}
}

func TestLoadDetectsImageCorruptionOnDisk(t *testing.T) {
	dir := t.TempDir()
	arena := newArena(t, 32*1024)
	rand.New(rand.NewSource(9)).Read(arena.Bytes())
	s, err := Open(dir, 4096)
	if err != nil {
		t.Fatal(err)
	}
	fullCheckpoint(t, s, arena, nil, nil, 1, 1)
	if _, err := Load(dir); err != nil {
		t.Fatalf("clean load: %v", err)
	}

	// Flip one byte of the image file: the page codeword table must
	// refuse it.
	path := filepath.Join(dir, imageAName)
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img[12345] ^= 0x01
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("corrupt checkpoint image accepted")
	}
}

func TestIncrementalCheckpointMaintainsPageCodewords(t *testing.T) {
	dir := t.TempDir()
	arena := newArena(t, 32*1024)
	rand.New(rand.NewSource(10)).Read(arena.Bytes())
	s, err := Open(dir, 4096)
	if err != nil {
		t.Fatal(err)
	}
	fullCheckpoint(t, s, arena, nil, nil, 1, 1)
	fullCheckpoint(t, s, arena, nil, nil, 2, 2)

	// Incremental write of one dirty page must keep the whole table
	// verifiable.
	arena.Page(5)[100] = 0x42
	s.NoteDirty(5)
	snap := s.Begin(arena, nil, nil, []wal.LSN{3})
	if err := s.Write(snap, arena.Size()); err != nil {
		t.Fatal(err)
	}
	if err := s.Certify(snap, 3); err != nil {
		t.Fatal(err)
	}
	l, err := Load(dir)
	if err != nil {
		t.Fatalf("load after incremental: %v", err)
	}
	if !bytes.Equal(l.Image, arena.Bytes()) {
		t.Fatal("image mismatch")
	}
}
