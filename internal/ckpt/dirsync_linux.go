//go:build linux

package ckpt

// dirSyncMandatory: on Linux, fsync of a directory durably commits the
// entry operations inside it and reports real errors, so a failed
// directory sync after the anchor install must fail the checkpoint.
const dirSyncMandatory = true
