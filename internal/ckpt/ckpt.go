// Package ckpt implements Dalí-style ping-pong checkpointing (paper
// §2.1). Two checkpoint images, Ckpt_A and Ckpt_B, live on disk together
// with a checkpoint anchor (cur_ckpt) naming the most recent valid image.
// Successive checkpoints alternate between the images, each writing the
// pages dirtied since that image was last written. Every image carries a
// copy of the active transaction table (with local undo logs), the
// database metadata, and CK_end — the log position the image is
// update-consistent with.
//
// The paper extends checkpointing for corruption protection: after an
// image is written, the whole database is audited, and only a clean audit
// certifies the checkpoint (making both direct and indirect corruption
// absent from the disk image, §4.2); the anchor also records Audit_SN,
// the log position at which the last clean audit began, which corruption
// recovery uses as the conservative lower bound on when corruption
// occurred. The audit itself is performed by the caller (it needs the
// protection scheme's latching); this package sequences the files.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/iofault"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/region"
	"repro/internal/wal"
)

// ErrImageCorrupt is wrapped by every Load failure that means "the
// checkpoint files the anchor names cannot be trusted" — a torn or
// corrupt image page (per-page codeword mismatch), a bad meta checksum,
// truncated metadata, or missing files. Recovery uses errors.Is against
// it to decide whether falling back to the other ping-pong image is
// worth attempting. A missing anchor is NOT an ErrImageCorrupt: that is
// a database that never checkpointed.
var ErrImageCorrupt = errors.New("ckpt: checkpoint image corrupt on disk")

// File names inside the database directory.
const (
	AnchorFileName = "cur_ckpt"
	imageAName     = "ckpt_A.img"
	imageBName     = "ckpt_B.img"
	metaAName      = "ckpt_A.meta"
	metaBName      = "ckpt_B.meta"
)

// ImageFileName returns the on-disk file name of checkpoint image 0 (A)
// or 1 (B) — the Anchor.Current numbering — for tools that corrupt or
// inspect images directly.
func ImageFileName(which int) string {
	if which == 0 {
		return imageAName
	}
	return imageBName
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Anchor is cur_ckpt: it points at the current valid checkpoint image and
// carries the log positions recovery needs.
type Anchor struct {
	// Current is the valid image: 0 for A, 1 for B.
	Current int
	// SeqNo increments with every completed checkpoint.
	SeqNo uint64
	// CKEnd is the log position the image is update-consistent with:
	// recovery's forward scan starts here. On multi-stream log sets this is
	// stream 0's position (CKEnds[0]); Audit_SN comparisons stay in stream
	// 0's LSN domain.
	CKEnd wal.LSN
	// AuditSN is the LSN of the begin record of the last clean audit
	// (the paper's Audit_SN).
	AuditSN wal.LSN
	// CKEnds is the per-stream consistent cut of a multi-stream log set
	// (wal.LogSet): stream i's recovery scan starts at CKEnds[i], and
	// compaction truncates stream i to CKEnds[i]. nil on single-stream
	// databases, whose anchors keep the historical fixed-size format
	// byte-for-byte.
	CKEnds []wal.LSN
}

// Equal reports whether two anchors are identical, including their
// stream vectors (Anchor is no longer comparable with ==).
func (a Anchor) Equal(b Anchor) bool {
	if a.Current != b.Current || a.SeqNo != b.SeqNo || a.CKEnd != b.CKEnd || a.AuditSN != b.AuditSN {
		return false
	}
	if len(a.CKEnds) != len(b.CKEnds) {
		return false
	}
	for i := range a.CKEnds {
		if a.CKEnds[i] != b.CKEnds[i] {
			return false
		}
	}
	return true
}

// Vector returns the per-stream scan-start vector: CKEnds when recorded,
// else the single-stream vector {CKEnd}.
func (a Anchor) Vector() []wal.LSN {
	if len(a.CKEnds) > 0 {
		return a.CKEnds
	}
	return []wal.LSN{a.CKEnd}
}

func (a Anchor) encode() []byte {
	b := make([]byte, 0, 40+8*len(a.CKEnds))
	b = binary.LittleEndian.AppendUint32(b, uint32(a.Current))
	b = binary.LittleEndian.AppendUint64(b, a.SeqNo)
	b = binary.LittleEndian.AppendUint64(b, uint64(a.CKEnd))
	b = binary.LittleEndian.AppendUint64(b, uint64(a.AuditSN))
	// Multi-stream anchors append the stream vector; a single-stream anchor
	// writes exactly the historical 32 bytes (length discriminates the two
	// formats on read).
	if len(a.CKEnds) > 1 {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(a.CKEnds)))
		for _, e := range a.CKEnds {
			b = binary.LittleEndian.AppendUint64(b, uint64(e))
		}
	}
	sum := crc32.Checksum(b, crcTable)
	return append(b, byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
}

func decodeAnchor(b []byte) (Anchor, error) {
	if len(b) < 32 {
		return Anchor{}, fmt.Errorf("ckpt: anchor is %d bytes, want >= 32", len(b))
	}
	body, sumBytes := b[:len(b)-4], b[len(b)-4:]
	sum := uint32(sumBytes[0]) | uint32(sumBytes[1])<<8 | uint32(sumBytes[2])<<16 | uint32(sumBytes[3])<<24
	if crc32.Checksum(body, crcTable) != sum {
		return Anchor{}, fmt.Errorf("ckpt: anchor checksum mismatch")
	}
	a := Anchor{
		Current: int(binary.LittleEndian.Uint32(body)),
		SeqNo:   binary.LittleEndian.Uint64(body[4:]),
		CKEnd:   wal.LSN(binary.LittleEndian.Uint64(body[12:])),
		AuditSN: wal.LSN(binary.LittleEndian.Uint64(body[20:])),
	}
	if len(b) == 32 {
		return a, nil // historical single-stream anchor
	}
	if len(body) < 32 {
		return Anchor{}, fmt.Errorf("ckpt: anchor stream vector truncated")
	}
	n := int(binary.LittleEndian.Uint32(body[28:]))
	if n < 2 || len(body) != 32+8*n {
		return Anchor{}, fmt.Errorf("ckpt: anchor stream vector malformed (%d streams in %d bytes)", n, len(b))
	}
	a.CKEnds = make([]wal.LSN, n)
	for i := 0; i < n; i++ {
		a.CKEnds[i] = wal.LSN(binary.LittleEndian.Uint64(body[32+8*i:]))
	}
	if a.CKEnds[0] != a.CKEnd {
		return Anchor{}, fmt.Errorf("ckpt: anchor stream 0 cut %d disagrees with CK_end %d", a.CKEnds[0], a.CKEnd)
	}
	return a, nil
}

// pageSet is a set of dirty pages.
type pageSet map[mem.PageID]struct{}

// Set manages the pair of checkpoint images for one database directory.
type Set struct {
	fs       iofault.FS
	dir      string
	pageSize int
	// pool chunks the per-page codeword computation of Write across
	// workers; nil (until SetPool) keeps it on the calling goroutine.
	pool *region.Pool

	mu          sync.Mutex
	dirty       [2]pageSet // pages dirtied since image i was last written
	initialized [2]bool    // image i contains a full copy of the arena
	anchor      Anchor
	haveAnchor  bool
	// pageCW holds one codeword per page of each image file, persisted in
	// the image's meta file, so Load can detect storage-level corruption
	// of a checkpoint (the disk image protected by the same codeword idea
	// that protects the memory image).
	pageCW [2][]region.Codeword

	mPages    *obs.Counter
	mBytes    *obs.Counter
	mSkips    *obs.Counter
	mDirSyncs *obs.Counter
}

// SetRegistry wires the checkpoint writer's page/byte counters into reg.
// Must be called before concurrent use (core.Open does this while
// building the database).
func (s *Set) SetRegistry(reg *obs.Registry) {
	s.mPages = reg.Counter(obs.NameCkptPagesWritten)
	s.mBytes = reg.Counter(obs.NameCkptBytesWritten)
	s.mSkips = reg.Counter(obs.NameCkptDirtyClean)
	s.mDirSyncs = reg.Counter(obs.NameCkptDirSyncs)
}

// SetPool attaches the worker pool used to compute the written pages'
// codewords. Must be called before concurrent use (core wires the
// database's shared scan pool in here).
func (s *Set) SetPool(p *region.Pool) { s.pool = p }

// pageGrain is the minimum number of pages per parallel chunk, chosen so
// each chunk covers at least 64 KiB of image.
func pageGrain(pageSize int) int {
	if g := (64 << 10) / pageSize; g > 1 {
		return g
	}
	return 1
}

// Open prepares checkpoint management in dir, reading the anchor if one
// exists. A database that has never completed a checkpoint has no anchor.
func Open(dir string, pageSize int) (*Set, error) {
	return OpenFS(iofault.OS, dir, pageSize)
}

// OpenFS is Open with the checkpointer's durability I/O (image writes,
// meta writes, the anchor install and its directory fsync) routed
// through an iofault.FS, so storage-fault campaigns can inject torn
// pages, ENOSPC and crash points into the checkpoint path.
func OpenFS(fsys iofault.FS, dir string, pageSize int) (*Set, error) {
	s := &Set{
		fs:       fsys,
		dir:      dir,
		pageSize: pageSize,
		dirty:    [2]pageSet{make(pageSet), make(pageSet)},
	}
	b, err := fsys.ReadFile(filepath.Join(dir, AnchorFileName))
	switch {
	case err == nil:
		a, err := decodeAnchor(b)
		if err != nil {
			return nil, err
		}
		s.anchor = a
		s.haveAnchor = true
		// After a restart the dirty sets are lost, so we cannot know
		// which pages each on-disk image is missing relative to the
		// recovered in-memory state. Leave both images marked
		// uninitialized: the next checkpoint of each image writes every
		// page once, after which incremental ping-pong resumes.
	case os.IsNotExist(err):
	default:
		return nil, fmt.Errorf("ckpt: read anchor: %w", err)
	}
	return s, nil
}

// Anchor returns the current anchor; ok is false if no checkpoint has
// completed yet.
func (s *Set) Anchor() (Anchor, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.anchor, s.haveAnchor
}

// NoteDirty records that a page was touched by a flushed physical log
// record. It feeds both images' dirty sets; registered with the system
// log as a DirtyNoter.
func (s *Set) NoteDirty(id mem.PageID) {
	s.mu.Lock()
	s.dirty[0][id] = struct{}{}
	s.dirty[1][id] = struct{}{}
	s.mu.Unlock()
}

// DirtyCounts reports the current sizes of the two dirty sets (for tests
// and instrumentation).
func (s *Set) DirtyCounts() (int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.dirty[0]), len(s.dirty[1])
}

// Snapshot is the data captured under the update barrier that a
// checkpoint writes out.
type Snapshot struct {
	image int // which image this snapshot will be written to
	// Pages holds copies of the dirty pages (or all pages for an
	// uninitialized image), keyed by page ID.
	Pages map[mem.PageID][]byte
	// ATT is the serialized active transaction table with local undo logs.
	ATT []byte
	// Meta is the serialized database metadata (catalog, allocator).
	Meta []byte
	// CKEnd is the stable log end the snapshot is consistent with
	// (stream 0 of a multi-stream log set: CKEnds[0]).
	CKEnd wal.LSN
	// CKEnds is the per-stream consistent cut captured under the barrier
	// (the epoch barrier of a multi-stream log set). Always at least one
	// entry; entry 0 equals CKEnd.
	CKEnds []wal.LSN
}

// Begin captures a snapshot for the next checkpoint. The caller must hold
// the database's update barrier in exclusive mode and must have flushed
// every log stream (ckEnds is the resulting per-stream stable-end vector;
// single-stream databases pass one entry). Pages are copied to the side so
// the barrier can be released before disk writes begin.
func (s *Set) Begin(arena *mem.Arena, att, meta []byte, ckEnds []wal.LSN) *Snapshot {
	if len(ckEnds) == 0 {
		// Begin is exported API: an empty cut vector must not panic inside
		// the checkpoint path. Synthesize the single-stream zero cut — the
		// snapshot is then consistent with "nothing replayed", which is the
		// only cut an empty vector can honestly claim.
		ckEnds = []wal.LSN{0}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	img := 0
	if s.haveAnchor {
		img = 1 - s.anchor.Current
	}
	snap := &Snapshot{
		image:  img,
		Pages:  make(map[mem.PageID][]byte),
		ATT:    att,
		Meta:   meta,
		CKEnd:  ckEnds[0],
		CKEnds: append([]wal.LSN(nil), ckEnds...),
	}
	if !s.initialized[img] {
		for id := 0; id < arena.NumPages(); id++ {
			snap.Pages[mem.PageID(id)] = append([]byte(nil), arena.Page(mem.PageID(id))...)
		}
	} else {
		for id := range s.dirty[img] {
			snap.Pages[id] = append([]byte(nil), arena.Page(id)...)
		}
	}
	// The dirty set for this image restarts now: anything dirtied after
	// this point (it cannot be concurrent — the barrier is held) belongs
	// to the next checkpoint of this image.
	s.dirty[img] = make(pageSet)
	s.mSkips.Add(uint64(arena.NumPages() - len(snap.Pages)))
	return snap
}

// Write persists the snapshot's pages and metadata to its image files
// (fsynced) but does not certify it: the anchor is untouched, so a crash
// before Certify recovers from the previous checkpoint. This is the
// paper's sequencing — the full-database audit runs between Write and
// Certify.
func (s *Set) Write(snap *Snapshot, arenaSize int) error {
	imgPath := filepath.Join(s.dir, imageName(snap.image))
	f, err := s.fs.OpenFile(imgPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("ckpt: open image: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(int64(arenaSize)); err != nil {
		return fmt.Errorf("ckpt: size image: %w", err)
	}
	// Deterministic write order.
	ids := make([]mem.PageID, 0, len(snap.Pages))
	for id := range snap.Pages {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if _, err := f.WriteAt(snap.Pages[id], int64(id)*int64(s.pageSize)); err != nil {
			return fmt.Errorf("ckpt: write page %d: %w", id, err)
		}
		s.mPages.Inc()
		s.mBytes.Add(uint64(len(snap.Pages[id])))
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("ckpt: sync image: %w", err)
	}

	// Maintain the image's per-page codeword table: entries for the pages
	// written this checkpoint, carried-over entries for the rest. The
	// per-page Compute calls are independent, so they are chunked across
	// the scan pool (reading the snapshot's page map concurrently is safe:
	// it is immutable by now); only the table install runs under the
	// mutex.
	numPages := arenaSize / s.pageSize
	written := make([]region.Codeword, len(ids))
	s.pool.Run(len(ids), pageGrain(s.pageSize), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			written[i] = region.Compute(snap.Pages[ids[i]])
		}
	})
	s.mu.Lock()
	if s.pageCW[snap.image] == nil {
		if len(snap.Pages) < numPages {
			s.mu.Unlock()
			return fmt.Errorf("ckpt: internal: incremental checkpoint of image %d without a page codeword table", snap.image)
		}
		s.pageCW[snap.image] = make([]region.Codeword, numPages)
	}
	cws := s.pageCW[snap.image]
	for i, id := range ids {
		cws[id] = written[i]
	}
	s.mu.Unlock()

	// Metadata file: CK_end, ATT, meta, page codewords — checksummed.
	var mb []byte
	mb = binary.LittleEndian.AppendUint64(mb, uint64(snap.CKEnd))
	mb = binary.LittleEndian.AppendUint64(mb, uint64(len(snap.ATT)))
	mb = append(mb, snap.ATT...)
	mb = binary.LittleEndian.AppendUint64(mb, uint64(len(snap.Meta)))
	mb = append(mb, snap.Meta...)
	mb = binary.LittleEndian.AppendUint64(mb, uint64(numPages))
	for _, cw := range cws {
		mb = binary.LittleEndian.AppendUint64(mb, uint64(cw))
	}
	// Multi-stream checkpoints append the per-stream cut after the page
	// codewords; single-stream meta files keep the historical layout
	// byte-for-byte (loadImage detects the vector by leftover length).
	if len(snap.CKEnds) > 1 {
		mb = binary.LittleEndian.AppendUint64(mb, uint64(len(snap.CKEnds)))
		for _, e := range snap.CKEnds {
			mb = binary.LittleEndian.AppendUint64(mb, uint64(e))
		}
	}
	sum := crc32.Checksum(mb, crcTable)
	mb = binary.LittleEndian.AppendUint32(mb, sum)
	if err := iofault.WriteFileSync(s.fs, filepath.Join(s.dir, metaName(snap.image)), mb); err != nil {
		return fmt.Errorf("ckpt: write meta: %w", err)
	}
	return nil
}

// Certify toggles the anchor to the snapshot's image, making it the
// current checkpoint. auditSN is the LSN of the begin record of the clean
// audit that certified the image.
func (s *Set) Certify(snap *Snapshot, auditSN wal.LSN) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := Anchor{
		Current: snap.image,
		SeqNo:   s.anchor.SeqNo + 1,
		CKEnd:   snap.CKEnd,
		AuditSN: auditSN,
	}
	if len(snap.CKEnds) > 1 {
		a.CKEnds = append([]wal.LSN(nil), snap.CKEnds...)
	}
	if err := s.writeAnchor(a); err != nil {
		return err
	}
	s.anchor = a
	s.haveAnchor = true
	s.initialized[snap.image] = true
	return nil
}

func (s *Set) writeAnchor(a Anchor) error {
	tmp := filepath.Join(s.dir, AnchorFileName+".tmp")
	if err := iofault.WriteFileSync(s.fs, tmp, a.encode()); err != nil {
		return fmt.Errorf("ckpt: write anchor: %w", err)
	}
	if err := s.fs.Rename(tmp, filepath.Join(s.dir, AnchorFileName)); err != nil {
		return fmt.Errorf("ckpt: install anchor: %w", err)
	}
	return s.syncDir()
}

// syncDir fsyncs the database directory after an anchor install, making
// the rename durable. On platforms where directory fsync is reliable
// (Linux) a failure fails the checkpoint — the anchor toggle is not
// durable, so certifying on top of it would let a crash resurrect the
// previous checkpoint while the log has already been compacted past it.
// Elsewhere the failure is ignored, matching the historical best-effort
// behavior.
func (s *Set) syncDir() error {
	if err := s.fs.SyncDir(s.dir); err != nil {
		if dirSyncMandatory {
			return fmt.Errorf("ckpt: sync dir after anchor install: %w", err)
		}
		return nil
	}
	s.mDirSyncs.Inc()
	return nil
}

// Loaded is a checkpoint image read back for recovery.
type Loaded struct {
	Anchor Anchor
	// Image is the full database image.
	Image []byte
	// ATTEntries are the checkpointed transactions with their undo logs.
	ATTEntries []*wal.TxnEntry
	// Meta is the checkpointed database metadata.
	Meta []byte
}

// Load reads the current checkpoint image named by the anchor in dir.
// Failures that mean the anchored image cannot be trusted (torn pages,
// bad checksums, missing files) wrap ErrImageCorrupt so recovery can
// attempt LoadFallback.
func Load(dir string) (*Loaded, error) { return LoadFS(iofault.OS, dir) }

// LoadFS is Load reading through fsys, so recovery sees the same
// (possibly fault-injected) filesystem the checkpointer wrote through.
func LoadFS(fsys iofault.FS, dir string) (*Loaded, error) {
	ab, err := fsys.ReadFile(filepath.Join(dir, AnchorFileName))
	if err != nil {
		return nil, fmt.Errorf("ckpt: no checkpoint anchor: %w", err)
	}
	a, err := decodeAnchor(ab)
	if err != nil {
		return nil, err
	}
	ckEnd, ckEnds, img, entries, meta, err := loadImage(fsys, dir, a.Current)
	if err != nil {
		return nil, err
	}
	if ckEnd != a.CKEnd {
		return nil, fmt.Errorf("%w: meta CK_end %d disagrees with anchor %d", ErrImageCorrupt, ckEnd, a.CKEnd)
	}
	if len(a.CKEnds) == 0 && len(ckEnds) > 1 {
		// Anchor written before the set widened (or by an older binary):
		// trust the meta file's own vector, which certifies with the image.
		a.CKEnds = ckEnds
	}
	return &Loaded{
		Anchor:     a,
		Image:      img,
		ATTEntries: entries,
		Meta:       meta,
	}, nil
}

// LoadFallback reads the OTHER ping-pong image — the one the anchor does
// not name — verified against its own meta file. It is recovery's last
// resort when Load finds the anchored image corrupt on disk: the
// fallback image is one checkpoint older, so the returned anchor carries
// the fallback meta's own CK_end (replay must start there) and a zero
// AuditSN (the audit position that certified the older image is not
// recorded, so corruption recovery must assume the conservative bound).
// The fallback is only usable when the stable log still retains records
// back to that older CK_end — log compaction normally discards them, so
// callers must check wal.LogBase against the returned CKEnd.
func LoadFallback(dir string) (*Loaded, error) { return LoadFallbackFS(iofault.OS, dir) }

// LoadFallbackFS is LoadFallback reading through fsys.
func LoadFallbackFS(fsys iofault.FS, dir string) (*Loaded, error) {
	ab, err := fsys.ReadFile(filepath.Join(dir, AnchorFileName))
	if err != nil {
		return nil, fmt.Errorf("ckpt: no checkpoint anchor: %w", err)
	}
	a, err := decodeAnchor(ab)
	if err != nil {
		return nil, err
	}
	fb := 1 - a.Current
	ckEnd, ckEnds, img, entries, meta, err := loadImage(fsys, dir, fb)
	if err != nil {
		return nil, fmt.Errorf("ckpt: fallback image %d: %w", fb, err)
	}
	la := a
	la.Current = fb
	la.CKEnd = ckEnd
	la.CKEnds = ckEnds // the fallback meta's own cut, not the anchored one
	la.AuditSN = 0
	return &Loaded{
		Anchor:     la,
		Image:      img,
		ATTEntries: entries,
		Meta:       meta,
	}, nil
}

// loadImage reads and verifies one checkpoint image and its meta file,
// returning the meta's CK_end, its per-stream cut (nil for single-stream
// meta files), the image bytes, the checkpointed ATT and the database
// metadata. Every verification failure wraps ErrImageCorrupt.
func loadImage(fsys iofault.FS, dir string, image int) (wal.LSN, []wal.LSN, []byte, []*wal.TxnEntry, []byte, error) {
	img, err := fsys.ReadFile(filepath.Join(dir, imageName(image)))
	if err != nil {
		return 0, nil, nil, nil, nil, fmt.Errorf("%w: read image: %v", ErrImageCorrupt, err)
	}
	mb, err := fsys.ReadFile(filepath.Join(dir, metaName(image)))
	if err != nil {
		return 0, nil, nil, nil, nil, fmt.Errorf("%w: read meta: %v", ErrImageCorrupt, err)
	}
	if len(mb) < 20 {
		return 0, nil, nil, nil, nil, fmt.Errorf("%w: meta too short", ErrImageCorrupt)
	}
	body, sumb := mb[:len(mb)-4], mb[len(mb)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(sumb) {
		return 0, nil, nil, nil, nil, fmt.Errorf("%w: meta checksum mismatch", ErrImageCorrupt)
	}
	ckEnd := wal.LSN(binary.LittleEndian.Uint64(body))
	pos := 8
	attLen := int(binary.LittleEndian.Uint64(body[pos:]))
	pos += 8
	if pos+attLen > len(body) {
		return 0, nil, nil, nil, nil, fmt.Errorf("%w: meta truncated", ErrImageCorrupt)
	}
	entries, err := wal.DecodeEntries(body[pos : pos+attLen])
	if err != nil {
		return 0, nil, nil, nil, nil, fmt.Errorf("%w: decode ATT: %v", ErrImageCorrupt, err)
	}
	pos += attLen
	if pos+8 > len(body) {
		return 0, nil, nil, nil, nil, fmt.Errorf("%w: meta truncated", ErrImageCorrupt)
	}
	metaLen := int(binary.LittleEndian.Uint64(body[pos:]))
	pos += 8
	if pos+metaLen > len(body) {
		return 0, nil, nil, nil, nil, fmt.Errorf("%w: meta truncated", ErrImageCorrupt)
	}
	meta := append([]byte(nil), body[pos:pos+metaLen]...)
	pos += metaLen

	// Verify the image against its per-page codeword table: corruption of
	// the checkpoint file itself (bad disk, a torn page from a lying
	// write, truncation, tampering) must not be trusted as a recovery
	// starting point.
	if pos+8 > len(body) {
		return 0, nil, nil, nil, nil, fmt.Errorf("%w: meta truncated (no page codewords)", ErrImageCorrupt)
	}
	numPages := int(binary.LittleEndian.Uint64(body[pos:]))
	pos += 8
	if pos+8*numPages > len(body) {
		return 0, nil, nil, nil, nil, fmt.Errorf("%w: page codeword table truncated", ErrImageCorrupt)
	}
	if numPages == 0 || len(img)%numPages != 0 {
		return 0, nil, nil, nil, nil, fmt.Errorf("%w: image size %d not divisible into %d pages", ErrImageCorrupt, len(img), numPages)
	}
	// Per-stream cut (multi-stream checkpoints only): appended after the
	// codeword table; a historical meta file ends exactly at the table.
	var ckEnds []wal.LSN
	if vpos := pos + 8*numPages; vpos+8 <= len(body) {
		n := int(binary.LittleEndian.Uint64(body[vpos:]))
		vpos += 8
		if n < 2 || vpos+8*n != len(body) {
			return 0, nil, nil, nil, nil, fmt.Errorf("%w: stream cut vector malformed", ErrImageCorrupt)
		}
		ckEnds = make([]wal.LSN, n)
		for i := 0; i < n; i++ {
			ckEnds[i] = wal.LSN(binary.LittleEndian.Uint64(body[vpos+8*i:]))
		}
		if ckEnds[0] != ckEnd {
			return 0, nil, nil, nil, nil, fmt.Errorf("%w: stream 0 cut %d disagrees with CK_end %d", ErrImageCorrupt, ckEnds[0], ckEnd)
		}
	}
	pageSize := len(img) / numPages
	// The verification scan is pure (no state but the image bytes), so it
	// is chunked across the process-wide default pool; each chunk reports
	// its lowest corrupt page so the error is deterministic.
	badChunks := region.RunChunked(region.DefaultPool(), numPages, pageGrain(pageSize), func(lo, hi int) int {
		for id := lo; id < hi; id++ {
			stored := region.Codeword(binary.LittleEndian.Uint64(body[pos+8*id:]))
			actual := region.Compute(img[id*pageSize : (id+1)*pageSize])
			if stored != actual {
				return id
			}
		}
		return -1
	})
	for _, id := range badChunks {
		if id >= 0 {
			stored := region.Codeword(binary.LittleEndian.Uint64(body[pos+8*id:]))
			actual := region.Compute(img[id*pageSize : (id+1)*pageSize])
			return 0, nil, nil, nil, nil, fmt.Errorf("%w: image page %d (stored %016x, actual %016x)",
				ErrImageCorrupt, id, uint64(stored), uint64(actual))
		}
	}
	return ckEnd, ckEnds, img, entries, meta, nil
}

func imageName(i int) string {
	if i == 0 {
		return imageAName
	}
	return imageBName
}

func metaName(i int) string {
	if i == 0 {
		return metaAName
	}
	return metaBName
}

