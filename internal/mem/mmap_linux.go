//go:build linux

package mem

import "syscall"

// mmapAnon allocates size bytes via an anonymous private mapping.
func mmapAnon(size int) ([]byte, error) {
	return syscall.Mmap(-1, 0, size,
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_PRIVATE|syscall.MAP_ANONYMOUS)
}

func munmap(buf []byte) error {
	return syscall.Munmap(buf)
}

// mprotect changes the protection of buf. write selects between
// read-write and read-only.
func mprotect(buf []byte, write bool) error {
	prot := syscall.PROT_READ
	if write {
		prot |= syscall.PROT_WRITE
	}
	return syscall.Mprotect(buf, prot)
}

const mprotectSupported = true
