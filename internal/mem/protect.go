package mem

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// MprotectProtector applies real mprotect system calls to an mmap-backed
// arena. It is the Go equivalent of the hardware protection scheme of
// Sullivan and Stonebraker that the paper compares against: pages are
// write-protected by default and exposed for the duration of an update.
//
// The arena's page size must be a multiple of the operating system page
// size, since the MMU cannot protect at finer granularity.
type MprotectProtector struct {
	arena *Arena

	mu       sync.Mutex
	writable []bool
	calls    atomic.Uint64
}

// NewMprotectProtector returns a protector driving real mprotect calls
// over arena. It fails if the arena is not mmap-backed or its page size is
// not a multiple of the OS page size. The arena starts fully writable;
// call ProtectAll to establish the initial protected state.
func NewMprotectProtector(arena *Arena) (*MprotectProtector, error) {
	if !mprotectSupported {
		return nil, fmt.Errorf("mem: mprotect not supported on this platform")
	}
	if !arena.Mmapped() {
		return nil, fmt.Errorf("mem: mprotect requires an mmap-backed arena")
	}
	osPage := os.Getpagesize()
	if arena.PageSize()%osPage != 0 {
		return nil, fmt.Errorf("mem: arena page size %d is not a multiple of the OS page size %d", arena.PageSize(), osPage)
	}
	w := make([]bool, arena.NumPages())
	for i := range w {
		w[i] = true
	}
	return &MprotectProtector{arena: arena, writable: w}, nil
}

// Protect write-protects the page via mprotect.
func (p *MprotectProtector) Protect(id PageID) error {
	p.calls.Add(1)
	if err := mprotect(p.arena.Page(id), false); err != nil {
		return fmt.Errorf("mem: mprotect(page %d, ro): %w", id, err)
	}
	p.mu.Lock()
	p.writable[id] = false
	p.mu.Unlock()
	return nil
}

// Unprotect makes the page writable via mprotect.
func (p *MprotectProtector) Unprotect(id PageID) error {
	p.calls.Add(1)
	if err := mprotect(p.arena.Page(id), true); err != nil {
		return fmt.Errorf("mem: mprotect(page %d, rw): %w", id, err)
	}
	p.mu.Lock()
	p.writable[id] = true
	p.mu.Unlock()
	return nil
}

// Writable reports the protector's view of the page.
func (p *MprotectProtector) Writable(id PageID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.writable[id]
}

// Calls reports the number of Protect+Unprotect calls made.
func (p *MprotectProtector) Calls() uint64 { return p.calls.Load() }

// ProtectAll write-protects the entire arena in one system call.
func (p *MprotectProtector) ProtectAll() error {
	p.calls.Add(1)
	if err := mprotect(p.arena.Bytes(), false); err != nil {
		return fmt.Errorf("mem: mprotect(all, ro): %w", err)
	}
	p.mu.Lock()
	for i := range p.writable {
		p.writable[i] = false
	}
	p.mu.Unlock()
	return nil
}

// UnprotectAll makes the entire arena writable in one system call. This
// must be called before Close, and before handing the arena to code that
// does not follow the update interface (e.g. the checkpointer's readers
// do not need it, but restart recovery's redo pass does).
func (p *MprotectProtector) UnprotectAll() error {
	p.calls.Add(1)
	if err := mprotect(p.arena.Bytes(), true); err != nil {
		return fmt.Errorf("mem: mprotect(all, rw): %w", err)
	}
	p.mu.Lock()
	for i := range p.writable {
		p.writable[i] = true
	}
	p.mu.Unlock()
	return nil
}

// SimProtector simulates page protection with a user-space bitmap and a
// configurable per-call cost. The cost models the system-call overhead
// measured in the paper's Table 1, which varies more than 4x across
// otherwise comparable machines. A zero cost makes calls free, which is
// useful in unit tests.
//
// Unlike the MMU, the simulator cannot intercept stray stores made through
// ordinary Go slice writes; prevention is enforced only for writes issued
// through GuardedWrite, which is the path the fault injector uses.
type SimProtector struct {
	mu       sync.Mutex
	writable []bool
	calls    atomic.Uint64
	traps    atomic.Uint64
	callCost time.Duration
}

// NewSimProtector returns a simulated protector for an arena of numPages
// pages with the given per-call cost. All pages start writable.
func NewSimProtector(numPages int, callCost time.Duration) *SimProtector {
	w := make([]bool, numPages)
	for i := range w {
		w[i] = true
	}
	return &SimProtector{writable: w, callCost: callCost}
}

// charge burns the configured per-call cost without sleeping (sleep
// granularity is far too coarse for microsecond-scale syscall costs).
func (p *SimProtector) charge() {
	if p.callCost <= 0 {
		return
	}
	deadline := time.Now().Add(p.callCost)
	for time.Now().Before(deadline) {
	}
}

// Protect implements Protector.
func (p *SimProtector) Protect(id PageID) error {
	p.calls.Add(1)
	p.charge()
	p.mu.Lock()
	p.writable[id] = false
	p.mu.Unlock()
	return nil
}

// Unprotect implements Protector.
func (p *SimProtector) Unprotect(id PageID) error {
	p.calls.Add(1)
	p.charge()
	p.mu.Lock()
	p.writable[id] = true
	p.mu.Unlock()
	return nil
}

// Writable implements Protector.
func (p *SimProtector) Writable(id PageID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.writable[id]
}

// Calls implements Protector.
func (p *SimProtector) Calls() uint64 { return p.calls.Load() }

// Traps reports how many writes were trapped (prevented) by protection.
func (p *SimProtector) Traps() uint64 { return p.traps.Load() }

// ProtectAll write-protects every page (one "call").
func (p *SimProtector) ProtectAll() error {
	p.calls.Add(1)
	p.charge()
	p.mu.Lock()
	for i := range p.writable {
		p.writable[i] = false
	}
	p.mu.Unlock()
	return nil
}

// GuardedWrite copies data to [addr, addr+len(data)) if and only if every
// covered page is writable under protector p. If any page is protected the
// write is refused with ErrTrapped and memory is unchanged, exactly as an
// MMU trap would leave it. This is the path by which the fault injector's
// wild writes are subjected to (simulated) hardware protection.
func GuardedWrite(a *Arena, p Protector, addr Addr, data []byte) error {
	if err := a.CheckRange(addr, len(data)); err != nil {
		return err
	}
	first, last := a.PageRange(addr, len(data))
	for id := first; id <= last; id++ {
		if !p.Writable(id) {
			if sp, ok := p.(*SimProtector); ok {
				sp.traps.Add(1)
			}
			return fmt.Errorf("%w: page %d", ErrTrapped, id)
		}
	}
	//dbvet:allow guardedwrite GuardedWrite is the deliberate wild-write primitive the fault injector drives
	copy(a.Slice(addr, len(data)), data)
	return nil
}
