// Package mem provides the database image: a flat byte arena divided into
// fixed-size pages, together with page-protection facilities.
//
// In the Dalí model reproduced here the whole database is directly mapped
// into the address space of the application, and updates are performed in
// place. The arena is that mapping. Pages exist only "to the extent that
// [they are] convenient for tracking storage use" (paper §2): allocation
// bitmaps live on different pages from the records they describe, and the
// dirty page table and checkpointer operate at page granularity.
//
// Two protectors are provided. MprotectProtector drives the real mprotect
// system call over an mmap-backed arena and is used to reproduce Table 1
// (performance of protect/unprotect) and the hardware-protection row of
// Table 2. SimProtector keeps a protection bitmap in user space with a
// configurable per-call cost; it is used (a) to model the paper's four
// 1990s platforms deterministically, and (b) by the fault-injection tests,
// where a real protected-page write would deliver an uncatchable SIGSEGV
// to the Go runtime. The simulated trap preserves the semantics the paper
// relies on: a wild write to a protected page does not change memory.
package mem

import (
	"errors"
	"fmt"
)

// Addr is a byte offset into the database image.
type Addr uint64

// PageID identifies a page of the database image.
type PageID uint32

// Arena is the in-memory database image.
type Arena struct {
	buf      []byte
	pageSize int
	mmapped  bool
}

// Common arena errors.
var (
	ErrOutOfRange = errors.New("mem: address out of range")
	ErrTrapped    = errors.New("mem: write to protected page trapped")
)

// Option configures a new arena.
type Option func(*arenaConfig)

type arenaConfig struct {
	forceHeap bool
}

// WithHeapBacking forces the arena to be allocated from the Go heap even on
// platforms where mmap is available. Heap-backed arenas cannot be used with
// MprotectProtector.
func WithHeapBacking() Option {
	return func(c *arenaConfig) { c.forceHeap = true }
}

// NewArena allocates an arena of size bytes divided into pages of pageSize
// bytes. Size is rounded up to a whole number of pages. pageSize must be a
// power of two of at least 64. On platforms with mmap support the arena is
// backed by an anonymous private mapping so that real page protection can
// be applied to it.
func NewArena(size, pageSize int, opts ...Option) (*Arena, error) {
	if pageSize < 64 || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("mem: page size %d is not a power of two >= 64", pageSize)
	}
	if size <= 0 {
		return nil, fmt.Errorf("mem: invalid arena size %d", size)
	}
	var cfg arenaConfig
	for _, o := range opts {
		o(&cfg)
	}
	if r := size % pageSize; r != 0 {
		size += pageSize - r
	}
	a := &Arena{pageSize: pageSize}
	if !cfg.forceHeap {
		if buf, err := mmapAnon(size); err == nil {
			a.buf = buf
			a.mmapped = true
			return a, nil
		}
	}
	a.buf = make([]byte, size)
	return a, nil
}

// Close releases the arena's memory. The arena must not be used afterwards.
func (a *Arena) Close() error {
	if a.mmapped {
		err := munmap(a.buf)
		a.buf = nil
		return err
	}
	a.buf = nil
	return nil
}

// Size reports the arena size in bytes.
func (a *Arena) Size() int { return len(a.buf) }

// PageSize reports the page size in bytes.
func (a *Arena) PageSize() int { return a.pageSize }

// NumPages reports the number of pages in the arena.
func (a *Arena) NumPages() int { return len(a.buf) / a.pageSize }

// Mmapped reports whether the arena is backed by an anonymous mapping
// (and therefore eligible for real mprotect-based protection).
func (a *Arena) Mmapped() bool { return a.mmapped }

// Bytes returns the whole image. The caller must respect the prescribed
// update interface; writing through this slice outside BeginUpdate/EndUpdate
// is exactly the "direct physical corruption" the paper protects against
// (and is what the fault injector does deliberately).
func (a *Arena) Bytes() []byte { return a.buf }

// PageOf reports the page containing addr.
func (a *Arena) PageOf(addr Addr) PageID {
	return PageID(int(addr) / a.pageSize)
}

// PageRange reports the inclusive page range covered by [addr, addr+n).
// A zero-length range covers the single page containing addr.
func (a *Arena) PageRange(addr Addr, n int) (first, last PageID) {
	first = a.PageOf(addr)
	if n <= 0 {
		return first, first
	}
	last = a.PageOf(addr + Addr(n) - 1)
	return first, last
}

// Page returns the contents of page id.
func (a *Arena) Page(id PageID) []byte {
	off := int(id) * a.pageSize
	return a.buf[off : off+a.pageSize]
}

// CheckRange validates that [addr, addr+n) lies inside the arena.
func (a *Arena) CheckRange(addr Addr, n int) error {
	if n < 0 || uint64(addr) > uint64(len(a.buf)) || uint64(addr)+uint64(n) > uint64(len(a.buf)) {
		return fmt.Errorf("%w: [%d, %d) outside arena of %d bytes", ErrOutOfRange, addr, uint64(addr)+uint64(n), len(a.buf))
	}
	return nil
}

// Slice returns the byte range [addr, addr+n). It panics if the range is
// out of bounds; callers validate with CheckRange at the API boundary.
func (a *Arena) Slice(addr Addr, n int) []byte {
	return a.buf[addr : addr+Addr(n)]
}

// Protector controls write access to arena pages. Protect makes a page
// read-only; Unprotect makes it writable. Implementations must be safe for
// concurrent use.
type Protector interface {
	// Protect write-protects the page.
	Protect(id PageID) error
	// Unprotect makes the page writable.
	Unprotect(id PageID) error
	// Writable reports whether the page may currently be written.
	Writable(id PageID) bool
	// Calls reports the total number of Protect plus Unprotect calls,
	// used to reproduce the paper's §5.3 page-touch observation.
	Calls() uint64
}

// NopProtector is a Protector that never protects anything. It is the
// protector used by every codeword scheme (which, by design, need no
// hardware support).
type NopProtector struct{}

// Protect implements Protector; it does nothing.
func (NopProtector) Protect(PageID) error { return nil }

// Unprotect implements Protector; it does nothing.
func (NopProtector) Unprotect(PageID) error { return nil }

// Writable implements Protector; every page is always writable.
func (NopProtector) Writable(PageID) bool { return true }

// Calls implements Protector; it reports zero.
func (NopProtector) Calls() uint64 { return 0 }
