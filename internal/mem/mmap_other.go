//go:build !linux

package mem

import "errors"

var errNoMmap = errors.New("mem: mmap not supported on this platform")

func mmapAnon(size int) ([]byte, error) { return nil, errNoMmap }

func munmap(buf []byte) error { return nil }

func mprotect(buf []byte, write bool) error { return errNoMmap }

const mprotectSupported = false
