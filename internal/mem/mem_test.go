package mem

import (
	"bytes"
	"errors"
	"os"
	"testing"
	"testing/quick"
)

func TestNewArenaRoundsUpToPage(t *testing.T) {
	a, err := NewArena(1000, 256, WithHeapBacking())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Size() != 1024 {
		t.Fatalf("size = %d, want 1024", a.Size())
	}
	if a.NumPages() != 4 {
		t.Fatalf("pages = %d, want 4", a.NumPages())
	}
}

func TestNewArenaRejectsBadPageSize(t *testing.T) {
	for _, ps := range []int{0, 1, 63, 100, 4097} {
		if _, err := NewArena(4096, ps); err == nil {
			t.Errorf("NewArena(4096, %d) succeeded, want error", ps)
		}
	}
}

func TestNewArenaRejectsBadSize(t *testing.T) {
	for _, sz := range []int{0, -1} {
		if _, err := NewArena(sz, 4096); err == nil {
			t.Errorf("NewArena(%d, 4096) succeeded, want error", sz)
		}
	}
}

func TestPageOfAndRange(t *testing.T) {
	a, err := NewArena(4096, 1024, WithHeapBacking())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if got := a.PageOf(0); got != 0 {
		t.Errorf("PageOf(0) = %d", got)
	}
	if got := a.PageOf(1023); got != 0 {
		t.Errorf("PageOf(1023) = %d", got)
	}
	if got := a.PageOf(1024); got != 1 {
		t.Errorf("PageOf(1024) = %d", got)
	}
	first, last := a.PageRange(1000, 100)
	if first != 0 || last != 1 {
		t.Errorf("PageRange(1000,100) = %d,%d want 0,1", first, last)
	}
	first, last = a.PageRange(2048, 0)
	if first != 2 || last != 2 {
		t.Errorf("PageRange(2048,0) = %d,%d want 2,2", first, last)
	}
}

func TestCheckRange(t *testing.T) {
	a, err := NewArena(2048, 1024, WithHeapBacking())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.CheckRange(0, 2048); err != nil {
		t.Errorf("full range rejected: %v", err)
	}
	if err := a.CheckRange(2048, 0); err != nil {
		t.Errorf("empty range at end rejected: %v", err)
	}
	if err := a.CheckRange(0, 2049); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("overlong range accepted: %v", err)
	}
	if err := a.CheckRange(2049, 0); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("out-of-bounds start accepted: %v", err)
	}
	if err := a.CheckRange(10, -1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("negative length accepted: %v", err)
	}
}

func TestSliceAliasesPage(t *testing.T) {
	a, err := NewArena(2048, 1024, WithHeapBacking())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	copy(a.Slice(1024, 4), []byte{1, 2, 3, 4})
	if !bytes.Equal(a.Page(1)[:4], []byte{1, 2, 3, 4}) {
		t.Fatal("Slice and Page view different memory")
	}
}

func TestPageRangeProperty(t *testing.T) {
	a, err := NewArena(1<<20, 4096, WithHeapBacking())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	f := func(addr uint32, n uint16) bool {
		ad := Addr(addr) % Addr(a.Size())
		nn := int(n)
		if int(ad)+nn > a.Size() {
			nn = a.Size() - int(ad)
		}
		first, last := a.PageRange(ad, nn)
		if first > last {
			return false
		}
		// Every byte of the range lies within [first, last].
		if a.PageOf(ad) != first {
			return false
		}
		if nn > 0 && a.PageOf(ad+Addr(nn)-1) != last {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNopProtector(t *testing.T) {
	var p NopProtector
	if err := p.Protect(0); err != nil {
		t.Fatal(err)
	}
	if !p.Writable(0) {
		t.Fatal("NopProtector must report writable")
	}
	if p.Calls() != 0 {
		t.Fatal("NopProtector must report zero calls")
	}
}

func TestSimProtectorTrapsGuardedWrite(t *testing.T) {
	a, err := NewArena(4096, 1024, WithHeapBacking())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	p := NewSimProtector(a.NumPages(), 0)

	if err := GuardedWrite(a, p, 100, []byte{0xAA}); err != nil {
		t.Fatalf("write to writable page failed: %v", err)
	}
	if a.Bytes()[100] != 0xAA {
		t.Fatal("write did not land")
	}

	if err := p.Protect(0); err != nil {
		t.Fatal(err)
	}
	err = GuardedWrite(a, p, 101, []byte{0xBB})
	if !errors.Is(err, ErrTrapped) {
		t.Fatalf("write to protected page not trapped: %v", err)
	}
	if a.Bytes()[101] != 0 {
		t.Fatal("trapped write modified memory")
	}
	if p.Traps() != 1 {
		t.Fatalf("traps = %d, want 1", p.Traps())
	}

	if err := p.Unprotect(0); err != nil {
		t.Fatal(err)
	}
	if err := GuardedWrite(a, p, 101, []byte{0xBB}); err != nil {
		t.Fatalf("write after unprotect failed: %v", err)
	}
}

func TestSimProtectorSpanningWriteTrapsIfAnyPageProtected(t *testing.T) {
	a, err := NewArena(4096, 1024, WithHeapBacking())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	p := NewSimProtector(a.NumPages(), 0)
	if err := p.Protect(1); err != nil {
		t.Fatal(err)
	}
	// Write spanning pages 0 and 1 must trap and leave page 0 untouched.
	err = GuardedWrite(a, p, 1020, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	if !errors.Is(err, ErrTrapped) {
		t.Fatalf("spanning write not trapped: %v", err)
	}
	for i := 1020; i < 1024; i++ {
		if a.Bytes()[i] != 0 {
			t.Fatal("trapped spanning write partially applied")
		}
	}
}

func TestSimProtectorProtectAll(t *testing.T) {
	p := NewSimProtector(8, 0)
	if err := p.ProtectAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if p.Writable(PageID(i)) {
			t.Fatalf("page %d writable after ProtectAll", i)
		}
	}
	if p.Calls() != 1 {
		t.Fatalf("calls = %d, want 1", p.Calls())
	}
}

func TestGuardedWriteOutOfRange(t *testing.T) {
	a, err := NewArena(1024, 1024, WithHeapBacking())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	p := NewSimProtector(1, 0)
	if err := GuardedWrite(a, p, 1020, []byte{1, 2, 3, 4, 5}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range write accepted: %v", err)
	}
}

func TestMprotectProtectorRealSyscall(t *testing.T) {
	a, err := NewArena(64*1024, os.Getpagesize())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if !a.Mmapped() {
		t.Skip("arena not mmap-backed on this platform")
	}
	p, err := NewMprotectProtector(a)
	if err != nil {
		t.Skipf("mprotect unavailable: %v", err)
	}
	// Writable page: write through ordinary slice access.
	a.Bytes()[0] = 7
	if err := p.Protect(0); err != nil {
		t.Fatal(err)
	}
	if p.Writable(0) {
		t.Fatal("page reported writable after Protect")
	}
	// Reads must still work on a read-only page.
	if a.Bytes()[0] != 7 {
		t.Fatal("read of protected page returned wrong value")
	}
	if err := p.Unprotect(0); err != nil {
		t.Fatal(err)
	}
	a.Bytes()[0] = 9
	if a.Bytes()[0] != 9 {
		t.Fatal("write after Unprotect did not land")
	}
	if p.Calls() != 2 {
		t.Fatalf("calls = %d, want 2", p.Calls())
	}
	if err := p.ProtectAll(); err != nil {
		t.Fatal(err)
	}
	if err := p.UnprotectAll(); err != nil {
		t.Fatal(err)
	}
}

func TestMprotectProtectorRejectsHeapArena(t *testing.T) {
	a, err := NewArena(4096, 4096, WithHeapBacking())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := NewMprotectProtector(a); err == nil {
		t.Fatal("NewMprotectProtector accepted heap-backed arena")
	}
}

func TestMprotectProtectorRejectsSubOSPage(t *testing.T) {
	a, err := NewArena(64*1024, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if !a.Mmapped() {
		t.Skip("arena not mmap-backed on this platform")
	}
	if _, err := NewMprotectProtector(a); err == nil {
		t.Fatal("NewMprotectProtector accepted page size below OS page size")
	}
}
