// Package errflowfix is the golden fixture for the errflow pass. The
// types File, FS and SystemLog are testdata stand-ins for the real
// iofault.File, iofault.FS and wal.SystemLog sink types — the pass
// recognizes them by name inside testdata so the fixture does not drag
// the whole engine into its dependency graph.
package errflowfix

import "errors"

// ErrPoisoned is a local sentinel, wrapped by the engine's convention.
var ErrPoisoned = errors.New("errflowfix: poisoned")

type File struct{}

func (File) Write(p []byte) (int, error) { return len(p), nil }
func (File) Sync() error                 { return nil }
func (File) Truncate(size int64) error   { return nil }

type FS struct{}

func (FS) OpenFile(name string) (File, error) { return File{}, nil }
func (FS) Rename(o, n string) error           { return nil }

type SystemLog struct{ f File }

func (l *SystemLog) Append(recs ...int) error { return nil }
func (l *SystemLog) Flush() error             { return nil }
func (l *SystemLog) poison(err error)         {}

// ---- rule 1: discarded durable errors ----

// Shape 1a: a bare expression statement throws the append error away.
func dropAppend(l *SystemLog) {
	l.Append(1) // want "error from SystemLog.Append is discarded"
}

// Shape 1b: a blank assignment in the error slot is the same discard.
func blankFlush(l *SystemLog) {
	_ = l.Flush() // want "error from SystemLog.Flush is discarded"
}

// Shape 1c: keeping the value but blanking the error.
func blankOpen(fs FS) File {
	f, _ := fs.OpenFile("log") // want "error from FS.OpenFile is discarded"
	return f
}

// Shape 1d: a deferred sink call has nowhere for its error to go.
func deferredTruncate(f File) {
	defer f.Truncate(0) // want "error from File.Truncate is discarded"
}

// ---- rule 2: sentinel comparisons ----

// Shape 2a: == stops matching the day the sentinel is wrapped.
func isPoisoned(err error) bool {
	return err == ErrPoisoned // want "sentinel ErrPoisoned compared with =="
}

// Shape 2b: != is the same trap.
func notPoisoned(err error) bool {
	return err != ErrPoisoned // want "sentinel ErrPoisoned compared with !="
}

// Shape 2c: a switch case is an == in disguise.
func classify(err error) string {
	switch err {
	case ErrPoisoned: // want "sentinel ErrPoisoned matched by switch case"
		return "poisoned"
	}
	return "other"
}

// ---- rule 3: failed durable sync must poison ----

// Shape 3a: the guard handles the error but never poisons.
func syncNoPoison(l *SystemLog) error {
	if err := l.f.Sync(); err != nil { // want "must reach the poison transition"
		return err
	}
	return nil
}

// Shape 3b: the error is captured but no guard ever poisons on it.
func syncUnguarded(l *SystemLog) error {
	serr := l.f.Sync() // want "never reaches the poison transition"
	return serr
}

// Shape 3c: returning the sync error lets it escape unpoisoned.
func syncEscapes(l *SystemLog) error {
	return l.f.Sync() // want "returned without the poison transition"
}

// ---- clean code ----

// Handling the error is enough for rule 1.
func appendChecked(l *SystemLog) error {
	if err := l.Append(1); err != nil {
		return err
	}
	return nil
}

// errors.Is is the sanctioned sentinel match.
func isPoisonedRight(err error) bool {
	return errors.Is(err, ErrPoisoned)
}

// The direct poison guard satisfies rule 3.
func syncPoisons(l *SystemLog) error {
	if err := l.f.Sync(); err != nil {
		l.poison(err)
		return err
	}
	return nil
}

// The deferred-guard idiom (capture now, poison in the shared error
// check) also satisfies rule 3.
func syncPoisonsLater(l *SystemLog, werr error) error {
	serr := l.f.Sync()
	if werr != nil || serr != nil {
		l.poison(errors.Join(werr, serr))
		return errors.Join(werr, serr)
	}
	return nil
}

// A Sync on a local temporary is certification, not the durable handle:
// rule 3 does not apply (rule 1 still wants the error checked).
func syncLocal(fs FS) error {
	f, err := fs.OpenFile("scratch")
	if err != nil {
		return err
	}
	return f.Sync()
}

// ---- rule 3, per-stream: indexed durable handles ----

// StreamedLog is the stand-in for a sharded log set holding one durable
// file per stream.
type StreamedLog struct {
	files []File
}

func (l *StreamedLog) poison(err error) {}

// Shape 3d: a failed force of stream i is handled but never poisons —
// the sibling streams keep acking commits over the hole.
func streamSyncNoPoison(l *StreamedLog, i int) error {
	if err := l.files[i].Sync(); err != nil { // want "must reach the poison transition"
		return err
	}
	return nil
}

// Clean: any stream's sync failure fail-stops the whole set.
func streamSyncPoisons(l *StreamedLog, i int) error {
	if err := l.files[i].Sync(); err != nil {
		l.poison(err)
		return err
	}
	return nil
}
