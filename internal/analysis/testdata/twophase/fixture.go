// Package twophasefix is the golden fixture for the twophase pass. Txn
// and DB are testdata stand-ins for core.Txn and core.DB; the pass
// recognizes the 2PC primitives on them by name inside testdata.
package twophasefix

type Txn struct{}

func (t *Txn) Prepare(gid uint64) error { return nil }
func (t *Txn) CommitPrepared() error    { return nil }
func (t *Txn) AbortPrepared() error     { return nil }
func (t *Txn) Commit() error            { return nil }
func (t *Txn) Abort() error             { return nil }

type DB struct{}

func (db *DB) AdoptPrepared() (*Txn, error)                 { return &Txn{}, nil }
func (db *DB) AppendDecision(gid uint64, commit bool) error { return nil }

// Shape 1: a prepared transaction leaks past a success return.
func leak(t *Txn, gid uint64) error {
	if err := t.Prepare(gid); err != nil {
		return err
	}
	return nil // want "returns success with a prepared transaction unresolved"
}

// Shape 2: phase 2 before the decision record is durable.
func eager(db *DB, t *Txn, gid uint64) error {
	if err := t.Prepare(gid); err != nil {
		return err
	}
	if err := t.CommitPrepared(); err != nil { // want "before the decision is durable"
		return err
	}
	return db.AppendDecision(gid, true)
}

// Shape 3: a plain abort on a transaction known prepared on this path.
func sloppy(t *Txn, gid uint64) error {
	if err := t.Prepare(gid); err != nil {
		return err
	}
	return t.Abort() // want "plain Commit/Abort on a transaction prepared"
}

// Shape 4: resolving twice double-finishes the transaction.
func double(db *DB) error {
	t, err := db.AdoptPrepared()
	if err != nil {
		return err
	}
	if err := t.AbortPrepared(); err != nil {
		return err
	}
	return t.AbortPrepared() // want "resolved a second time"
}

// Shape 5: the prepare hides in a function-literal argument (the
// router's eachPart shape) and still leaks.
func leakViaClosure(each func(func() error) error, t *Txn, gid uint64) error {
	if err := each(func() error { return t.Prepare(gid) }); err != nil {
		return err
	}
	return nil // want "returns success with a prepared transaction unresolved"
}

// Shape 6: one branch of the merge resolves, the other does not — the
// unresolved path survives the join.
func halfResolved(t *Txn, gid uint64, commit bool) error {
	if err := t.Prepare(gid); err != nil {
		return err
	}
	if commit {
		if err := t.CommitPrepared(); err != nil { // want "before the decision is durable"
			return err
		}
	}
	return nil // want "returns success with a prepared transaction unresolved"
}

// ---- clean code ----

// The full protocol: prepare, durable decision, phase 2.
func protocol(db *DB, t *Txn, gid uint64) error {
	if err := t.Prepare(gid); err != nil {
		abortAll(t)
		return err
	}
	if err := db.AppendDecision(gid, true); err != nil {
		return err
	}
	return t.CommitPrepared()
}

// Recovery adoption resolves on both arms; the decision is already on
// disk by definition, so CommitPrepared needs no AppendDecision here.
func resolveAdopted(db *DB, commit bool) error {
	t, err := db.AdoptPrepared()
	if err != nil {
		return err
	}
	if commit {
		if err := t.CommitPrepared(); err != nil {
			return err
		}
	} else {
		if err := t.AbortPrepared(); err != nil {
			return err
		}
	}
	return nil
}

// abortAll exports a resolver summary, so calling it resolves …
func abortAll(t *Txn) { _ = t.AbortPrepared() }

// … and helper-mediated resolution is clean.
func viaHelper(t *Txn, gid uint64) error {
	if err := t.Prepare(gid); err != nil {
		return err
	}
	abortAll(t)
	return nil
}

// The pipeline shape: prepare in one loop, resolve in a later one.
func pipeline(db *DB, ts []*Txn, gid uint64) error {
	for _, t := range ts {
		if err := t.Prepare(gid); err != nil {
			return err
		}
	}
	if err := db.AppendDecision(gid, true); err != nil {
		return err
	}
	for _, t := range ts {
		if err := t.CommitPrepared(); err != nil {
			return err
		}
	}
	return nil
}

// A plain commit with nothing prepared on the path is ordinary.
func fastPath(t *Txn) error {
	return t.Commit()
}
