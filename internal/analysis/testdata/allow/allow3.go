// allow3.go extends the escape-hatch fixture to the third-generation
// passes: one suppressed violation each for lockfield, latchcycle and
// determinism.
package allowfix

import "sync"

// lockfield suppressed on the bare read of a guarded field.
type gauge struct {
	mu sync.Mutex
	v  uint64
}

func (g *gauge) set(v uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v = v
}

func (g *gauge) get() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

func (g *gauge) peek() uint64 {
	return g.v //dbvet:allow lockfield fixture exercises the escape hatch
}

// latchcycle suppressed on the acquisition that closes the cycle.
type duo struct {
	left  sync.Mutex
	right sync.Mutex
}

func (d *duo) leftRight() {
	d.left.Lock()
	defer d.left.Unlock()
	d.right.Lock()
	defer d.right.Unlock()
}

func (d *duo) rightLeft() {
	d.right.Lock()
	defer d.right.Unlock()
	d.left.Lock() //dbvet:allow latchcycle fixture exercises the escape hatch
	defer d.left.Unlock()
}

// determinism suppressed on the order-observing map range.
func keysUnsorted(m map[uint64]bool) []uint64 {
	var out []uint64
	//dbvet:allow determinism fixture exercises the escape hatch
	for k := range m {
		out = append(out, k)
	}
	return out
}
