// Package allowfix exercises the //dbvet:allow escape hatch: each pass
// has one violation suppressed by a well-formed directive (no
// diagnostics may survive), and one malformed directive shows that the
// escape hatch itself is checked.
package allowfix

import (
	"repro/internal/latch"
	"repro/internal/mem"
	"repro/internal/obs"
)

type box struct {
	prot latch.Latch //dbvet:latch protection
	cw   latch.Latch //dbvet:latch codeword
}

func (b *box) PushPhysUndo(addr mem.Addr, before []byte) {}

// latchorder suppressed on the acquisition line.
func (b *box) inverted() {
	b.cw.Lock()
	defer b.cw.Unlock()
	b.prot.Lock() //dbvet:allow latchorder fixture exercises the escape hatch
	b.prot.Unlock()
}

// guardedwrite suppressed from the line above.
func wild(a *mem.Arena) {
	//dbvet:allow guardedwrite fixture exercises the escape hatch
	a.Bytes()[0] = 1
}

// cwpair suppressed on the fold-less return.
func (b *box) EndUpdate(addr mem.Addr, before, after []byte) error {
	b.PushPhysUndo(addr, before)
	return nil //dbvet:allow cwpair fixture exercises the escape hatch
}

// obsnames suppressed on the undeclared name.
func metrics(reg *obs.Registry) {
	reg.Counter("allowfix.total") //dbvet:allow obsnames fixture exercises the escape hatch
}

// A directive naming an unknown pass must itself be reported.
func bad(a *mem.Arena) {
	//dbvet:allow guardedwrit typo in the pass name // want "names unknown pass guardedwrit"
	a.Bytes()[0] = 1 // want "store into mem.Arena-backed memory"
}

