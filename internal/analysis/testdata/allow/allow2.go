// allow2.go extends the escape-hatch fixture to the second-generation
// passes: one suppressed violation each for iopath, errflow, twophase
// and ctxflow. SystemLog and Txn are testdata stand-ins recognized by
// name.
package allowfix

import (
	"context"
	"os"
)

// iopath suppressed on the raw read.
func rawRead(path string) ([]byte, error) {
	return os.ReadFile(path) //dbvet:allow iopath fixture exercises the escape hatch
}

type SystemLog struct{}

func (l *SystemLog) Append(recs ...int) error { return nil }

// errflow suppressed on the discarded append.
func dropped(l *SystemLog) {
	l.Append(1) //dbvet:allow errflow fixture exercises the escape hatch
}

type Txn struct{}

func (t *Txn) Prepare(gid uint64) error { return nil }

// twophase suppressed on the leaking success return.
func leak(t *Txn, gid uint64) error {
	if err := t.Prepare(gid); err != nil {
		return err
	}
	return nil //dbvet:allow twophase fixture exercises the escape hatch
}

// ctxflow suppressed on the severed context.
func RunCtx(ctx context.Context, next func(context.Context) error) error {
	return next(context.Background()) //dbvet:allow ctxflow fixture exercises the escape hatch
}
