// Package iopathfix is the golden fixture for the iopath pass: on the
// durable paths every byte of file I/O must flow through iofault.FS —
// raw package-os calls are invisible to the crash tortures and the
// read-fault tests. (Fixture packages under testdata are treated as
// durable-path scope so these diagnostics can be pinned.)
package iopathfix

import (
	"os"

	"repro/internal/analysis/testdata/iopath/helper"
	"repro/internal/iofault"
)

// Shape 1: a direct os read on the durable path.
func loadAnchor(dir string) ([]byte, error) {
	return os.ReadFile(dir + "/anchor") // want "raw os.ReadFile on the durable path"
}

// Shape 2: opening and forcing a file behind the fault layer's back —
// both the open and every *os.File method are sinks.
func writeImage(path string, data []byte) error {
	f, err := os.Create(path) // want "raw os.Create on the durable path"
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil { // want "raw (*os.File).Write on the durable path"
		return err
	}
	return f.Sync() // want "raw (*os.File).Sync on the durable path"
}

// Shape 3: laundering the I/O through a helper package does not help —
// the PerformsIO summary carries the taint to the call site.
func loadViaHelper(dir string) ([]byte, error) {
	return helper.Slurp(dir + "/anchor") // want "Slurp performs raw file I/O (os.ReadFile)"
}

// ---- clean code ----

// Routing through iofault.FS is the sanctioned path.
func loadRouted(fsys iofault.FS, dir string) ([]byte, error) {
	return fsys.ReadFile(dir + "/anchor")
}

// Probes and directory creation are not data-path I/O.
func ensureDir(dir string) error {
	if _, err := os.Stat(dir); err == nil {
		return nil
	}
	return os.MkdirAll(dir, 0o755)
}

// A helper that only touches iofault carries no taint.
func syncRouted(fsys iofault.FS, path string, data []byte) error {
	return iofault.WriteFileSync(fsys, path, data)
}
