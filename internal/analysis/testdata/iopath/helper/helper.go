// Package helper is a dependency of the iopath fixture: a non-durable
// helper package whose raw file I/O must taint its durable-path callers
// through the PerformsIO summary.
package helper

import "os"

// Slurp reads a file with package os directly.
func Slurp(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// SlurpTwice propagates the taint one more hop inside the package.
func SlurpTwice(path string) ([]byte, error) {
	return Slurp(path)
}
