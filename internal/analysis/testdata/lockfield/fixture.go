// Package lockfield is the golden fixture for the lockfield pass:
// three violation shapes — a bare read of a mutex-guarded counter, a
// wrong-mutex access, and a bare write of a stripe-guarded table — plus
// the sanctioned shapes (Locked-suffix methods, constructors, atomics)
// that must stay silent.
package lockfield

import (
	"sync"
	"sync/atomic"

	"repro/internal/latch"
)

// ---- shape 1: guarded counter, one bare read ----

type tail struct {
	mu    latch.Latch
	end   uint64
	n     atomic.Uint64 // atomic: exempt from tracking
	ready chan struct{} // channel: exempt from tracking
}

func (t *tail) advance(by uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.end += by
}

func (t *tail) snapshot() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.end
}

func (t *tail) peek() uint64 {
	return t.end // want "field end of tail is guarded by mu at 3 of 4 sites but read here"
}

// endLocked is sanctioned by the *Locked suffix convention: the caller
// holds t.mu.
func (t *tail) endLocked() uint64 {
	return t.end
}

// newTail is constructor-shaped: bare stores expected.
func newTail(start uint64) *tail {
	t := &tail{}
	t.end = start
	return t
}

func (t *tail) bump() {
	t.n.Add(1) // atomic access needs no latch
}

// ---- shape 2: the wrong mutex ----

type router struct {
	decMu     sync.Mutex
	decisions map[uint64]bool
	statsMu   sync.Mutex
	resolved  int
}

func (r *router) record(gid uint64, commit bool) {
	r.decMu.Lock()
	r.decisions[gid] = commit
	r.decMu.Unlock()
}

func (r *router) decided(gid uint64) bool {
	r.decMu.Lock()
	defer r.decMu.Unlock()
	return r.decisions[gid]
}

func (r *router) sweep() {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	r.resolved = len(r.decisions) // want "field decisions of router is guarded by decMu at 2 of 3 sites"
}

// ---- shape 3: stripe-guarded table, one bare write ----

type table struct {
	stripe latch.Striped
	cws    []uint32
}

func (t *table) fold(r int, delta uint32) {
	lk := t.stripe.For(uint64(r))
	lk.Lock()
	defer lk.Unlock()
	t.cws[r] ^= delta
}

func (t *table) verify(r int) uint32 {
	lk := t.stripe.For(uint64(r))
	lk.Lock()
	defer lk.Unlock()
	return t.cws[r]
}

func (t *table) clobber(r int) {
	t.cws[r] = 0 // want "field cws of table is guarded by stripe at 2 of 3 sites but written here"
}
