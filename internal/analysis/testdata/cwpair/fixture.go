// Package cwfix is the golden fixture for the cwpair pass: an update
// that captures an undo image (or any EndUpdate method) must fold into
// the codeword on every successful path.
package cwfix

type entry struct{}

func (entry) PushPhysUndo(addr int, before []byte) {}

type table struct{}

func (table) ApplyUpdate(addr int, before, after []byte) error { return nil }

type scheme struct {
	e   entry
	tab table
}

// Shape 1: an EndUpdate that never folds.
func (s *scheme) EndUpdate(addr int, before, after []byte) error {
	return nil // want "returns success without a codeword fold"
}

// Shape 2: the fold is skipped on the fast path.
func (s *scheme) update(addr int, before, after []byte, fast bool) error {
	s.e.PushPhysUndo(addr, before)
	if fast {
		return nil // want "returns success without a codeword fold"
	}
	return s.tab.ApplyUpdate(addr, before, after)
}

// Shape 3: a fold inside a loop body does not cover the zero-iteration
// case.
func (s *scheme) updateMany(addrs []int, before, after []byte) error {
	for _, a := range addrs {
		s.e.PushPhysUndo(a, before)
	}
	for _, a := range addrs {
		if err := s.tab.ApplyUpdate(a, before, after); err != nil {
			return err
		}
	}
	return nil // want "returns success without a codeword fold"
}

// ---- clean code ----

// Folding on both branches (one fused with the return) is clean.
func (s *scheme) good(addr int, before, after []byte, fast bool) error {
	s.e.PushPhysUndo(addr, before)
	if fast {
		return s.tab.ApplyUpdate(addr, before, after)
	}
	if err := s.tab.ApplyUpdate(addr, before, after); err != nil {
		return err
	}
	return nil
}

// Error exits are exempt: a failed update is rolled back, not folded.
func (s *scheme) errExit(addr int, before []byte, err error) error {
	s.e.PushPhysUndo(addr, before)
	if err != nil {
		return err
	}
	return s.tab.ApplyUpdate(addr, nil, nil)
}

// drain folds on its only path, so it exports the folds-fact …
func (s *scheme) drain(addr int) {
	_ = s.tab.ApplyUpdate(addr, nil, nil)
}

// … and calling it counts as the fold here.
func (s *scheme) viaWrapper(addr int, before []byte) error {
	s.e.PushPhysUndo(addr, before)
	s.drain(addr)
	return nil
}

// ---- plane pairing (the ECC tier's rule) ----

type ecctable struct {
	cws    []uint64
	planes []uint64
}

func (t *ecctable) xorPlanesLocked(r int, pd []uint64) {}

// Storing a codeword without touching the planes anywhere in the
// function leaves the (codeword, planes) pair inconsistent.
func (t *ecctable) badStore(r int, cw uint64) {
	t.cws[r] = cw // want "stores a region codeword without maintaining the locator planes"
}

// An op-assign store is a store too.
func (t *ecctable) badXorStore(r int, delta uint64) {
	t.cws[r] ^= delta // want "stores a region codeword without maintaining the locator planes"
}

// Pairing the store with the plane fold is clean.
func (t *ecctable) goodStore(r int, cw uint64, pd []uint64) {
	t.cws[r] = cw
	t.xorPlanesLocked(r, pd)
}

// Touching the planes field directly also counts as maintenance.
func (t *ecctable) goodDirect(r int, cw uint64, fresh []uint64) {
	t.cws[r] = cw
	copy(t.planes, fresh)
}

// A deliberate raw store carries an allow.
func (t *ecctable) allowedRaw(r int, cw uint64) {
	//dbvet:allow cwpair fixture: raw install, planes rebuilt by a later recompute
	t.cws[r] = cw
}
