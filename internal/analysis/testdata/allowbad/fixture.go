// Package allowbad holds a //dbvet:allow directive with no reason. The
// directive test asserts (by direct diagnostic inspection — a want
// comment cannot be embedded, since any trailing text would become the
// reason) that the malformed directive is reported and does not
// suppress the violation it sits on.
package allowbad

import "repro/internal/obs"

func terse(reg *obs.Registry) {
	//dbvet:allow obsnames
	reg.Gauge("allowbad.terse")
}
