// Package gwfix is the golden fixture for the guardedwrite pass: stores
// into mem.Arena-backed slices outside the maintenance packages must be
// flagged; reads and writes to ordinary slices must not.
package gwfix

import "repro/internal/mem"

// Shape 1: direct index store through an accessor call.
func direct(a *mem.Arena) {
	a.Bytes()[0] = 1 // want "store into mem.Arena-backed memory"
}

// Shape 2: copy into a reslice derived from an accessor result.
func viaCopy(a *mem.Arena, src []byte) {
	buf := a.Slice(0, 16)
	sub := buf[4:8]
	copy(sub, src) // want "copy into mem.Arena-backed memory"
}

// Shape 3: increment through a chain of aliases.
func viaAlias(a *mem.Arena) {
	p := a.Page(0)
	q := p
	q[3]++ // want "store into mem.Arena-backed memory"
}

// ---- clean code ----

// Reading arena memory is always fine.
func reader(a *mem.Arena) byte {
	return a.Bytes()[0]
}

// Copying OUT of the arena is fine (the arena is the source).
func snapshot(a *mem.Arena, dst []byte) {
	copy(dst, a.Slice(0, len(dst)))
}

// Ordinary slices are not arena-backed.
func plain(dst []byte) {
	dst[0] = 1
	copy(dst, []byte{2})
}
