// buggy3.go carries the third generation of differential violations —
// the parallel-log-set rules, one per pass, each firing exactly once.
// Kept in a separate file so the earlier generations' pinned line
// numbers in buggy.go and buggy2.go never shift. File is the testdata
// stand-in the errflow pass recognizes by name.
package buggyscheme

import "repro/internal/latch"

type streamTail struct {
	mu latch.Latch //dbvet:latch stream
}

type logSet struct {
	streams []streamTail
	files   []File
}

// Violation 9 (latchorder, any-stream-before-none): holds two stream
// latches at once — a sibling flusher holding the pair in the other
// order deadlocks.
func (l *logSet) nestStreams() {
	l.streams[0].mu.Lock()
	defer l.streams[0].mu.Unlock()
	l.streams[1].mu.Lock()
	defer l.streams[1].mu.Unlock()
}

// Violation 10 (errflow, per-stream poison): a failed force of one
// stream file is returned without fail-stopping the set, so sibling
// streams keep acknowledging commits over the hole.
func (l *logSet) forceStream(i int) error {
	if err := l.files[i].Sync(); err != nil {
		return err
	}
	return nil
}

type File struct{}

func (File) Sync() error { return nil }
