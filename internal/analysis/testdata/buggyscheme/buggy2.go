// buggy2.go carries the second generation of differential violations —
// one per durability/protocol pass, each firing exactly once. Kept in a
// separate file so the first generation's pinned line numbers in
// buggy.go never shift. SystemLog and Txn are testdata stand-ins the
// errflow and twophase passes recognize by name.
package buggyscheme

import (
	"context"
	"os"
)

// Violation 5 (iopath): a raw os read on the durable path.
func readRaw(dir string) ([]byte, error) {
	return os.ReadFile(dir + "/anchor")
}

type SystemLog struct{}

func (l *SystemLog) Append(recs ...int) error { return nil }

// Violation 6 (errflow): the append error is discarded.
func drop(l *SystemLog) {
	l.Append(1)
}

type Txn struct{}

func (t *Txn) Prepare(gid uint64) error { return nil }
func (t *Txn) CommitPrepared() error    { return nil }

// Violation 7 (twophase): phase 2 with no durable decision record.
func commit(t *Txn, gid uint64) error {
	if err := t.Prepare(gid); err != nil {
		return err
	}
	return t.CommitPrepared()
}

// Violation 8 (ctxflow): a context-aware API severs its own context.
func RunCtx(ctx context.Context, next func(context.Context) error) error {
	return next(context.Background())
}
