// buggy4.go carries the fourth generation of differential violations —
// the lockset, lock-graph, and replay-determinism rules, one per pass,
// each firing exactly once. Kept in a separate file so the earlier
// generations' pinned line numbers in buggy.go, buggy2.go and buggy3.go
// never shift.
package buggyscheme

import (
	"sync"

	"repro/internal/latch"
)

// Violation 11 (lockfield): the durable watermark is latched at two
// sites and read bare at a third.
type tailState struct {
	mu      latch.Latch
	durable uint64
}

func (t *tailState) bump() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.durable++
}

func (t *tailState) snapshot() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.durable
}

func (t *tailState) peekDurable() uint64 {
	return t.durable
}

// Violation 12 (latchcycle): two unclassified mutexes taken in opposite
// orders on two paths — invisible to the rank list, a deadlock in the
// inferred graph.
type metaStore struct {
	idx sync.Mutex
	dat sync.Mutex
}

func (m *metaStore) idxThenDat() {
	m.idx.Lock()
	defer m.idx.Unlock()
	m.dat.Lock()
	defer m.dat.Unlock()
}

func (m *metaStore) datThenIdx() {
	m.dat.Lock()
	defer m.dat.Unlock()
	m.idx.Lock()
	defer m.idx.Unlock()
}

// Violation 13 (determinism): in-doubt gids collected in map order and
// handed back unsorted.
func flattenInDoubt(set map[uint64]bool) []uint64 {
	var out []uint64
	for gid := range set {
		out = append(out, gid)
	}
	return out
}
