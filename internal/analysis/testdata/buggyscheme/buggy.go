// Package buggyscheme is the differential fixture: a synthetic protect
// scheme that commits exactly one violation per dbvet pass. The
// differential test pins each pass to one diagnostic at one position,
// proving the passes neither miss their target class nor bleed into
// each other's.
package buggyscheme

import (
	"repro/internal/latch"
	"repro/internal/mem"
	"repro/internal/obs"
)

type scheme struct {
	prot  latch.Latch //dbvet:latch protection
	slog  latch.Latch //dbvet:latch syslog
	arena *mem.Arena
	undo  []byte
}

func (s *scheme) PushPhysUndo(addr mem.Addr, before []byte) {
	s.undo = append(s.undo, before...)
}

// Violation 1 (latchorder): acquires the protection latch under the
// system-log latch.
func (s *scheme) logThenProtect() {
	s.slog.Lock()
	defer s.slog.Unlock()
	s.prot.Lock()
	defer s.prot.Unlock()
}

// Violation 2 (guardedwrite): writes the image directly instead of
// going through the update bracket.
func (s *scheme) pokeImage(addr mem.Addr, b byte) {
	s.arena.Slice(addr, 1)[0] = b
}

// Violation 3 (cwpair): captures the undo image, never folds the
// codeword.
func (s *scheme) EndUpdate(addr mem.Addr, before, after []byte) error {
	s.PushPhysUndo(addr, before)
	return nil
}

// Violation 4 (obsnames): mints a metric name outside the closed
// namespace.
func (s *scheme) metrics(reg *obs.Registry) {
	reg.Counter("buggy.updates_total")
}
