// Package latchcycle is the golden fixture for the latchcycle pass:
// three cycle shapes — a direct two-latch inversion, an inversion
// hidden behind a callee's acquisition summary, and a three-node cycle
// threaded through package-level mutexes — plus consistently ordered
// code that must stay silent.
package latchcycle

import (
	"sync"

	"repro/internal/latch"
)

// ---- shape 1: direct inversion ----

type pair struct {
	a latch.Latch
	b latch.Latch
}

func (p *pair) forward() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	defer p.b.Unlock()
}

func (p *pair) backward() {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock() // want "closes a latch-order cycle: latchcycle.pair.a → latchcycle.pair.b"
	defer p.a.Unlock()
}

// ---- shape 2: inversion split across a call ----

type store struct {
	meta  sync.Mutex
	index sync.Mutex
}

// lockIndex acquires s.index; the summary travels to callers.
func (s *store) lockIndex() {
	s.index.Lock()
}

func (s *store) rebuild() {
	s.meta.Lock()
	defer s.meta.Unlock()
	s.lockIndex() // edge meta → index via the callee summary
	s.index.Unlock()
}

func (s *store) compact() {
	s.index.Lock()
	defer s.index.Unlock()
	s.meta.Lock() // want "closes a latch-order cycle: latchcycle.store.meta → latchcycle.store.index"
	defer s.meta.Unlock()
}

// ---- shape 3: a three-node cycle over package-level latches ----

var (
	muAlpha sync.Mutex
	muBeta  sync.Mutex
	muGamma sync.Mutex
)

func alphaBeta() {
	muAlpha.Lock()
	defer muAlpha.Unlock()
	muBeta.Lock()
	defer muBeta.Unlock()
}

func betaGamma() {
	muBeta.Lock()
	defer muBeta.Unlock()
	muGamma.Lock()
	defer muGamma.Unlock()
}

func gammaAlpha() {
	muGamma.Lock()
	defer muGamma.Unlock()
	muAlpha.Lock() // want "closes a latch-order cycle: latchcycle.muAlpha → latchcycle.muBeta → latchcycle.muGamma"
	defer muAlpha.Unlock()
}

// ---- clean: consistent order everywhere ----

type ordered struct {
	first  latch.Latch
	second latch.Latch
}

func (o *ordered) both() {
	o.first.Lock()
	defer o.first.Unlock()
	o.second.Lock()
	defer o.second.Unlock()
}

func (o *ordered) bothAgain() {
	o.first.Lock()
	o.second.Lock()
	o.second.Unlock()
	o.first.Unlock()
}

// Sequential (non-nested) acquisitions in either order are no edge.
func (p *pair) sequential() {
	p.b.Lock()
	p.b.Unlock()
	p.a.Lock()
	p.a.Unlock()
}
