// Package latchfix is the golden fixture for the latchorder pass. It
// lives under testdata/ so ./... wildcards never build it; the test
// loads it by explicit path. Want comments mark the expected
// diagnostics.
package latchfix

import (
	"errors"

	"repro/internal/latch"
)

var errBoom = errors.New("boom")

type server struct {
	prot    latch.Latch    //dbvet:latch protection
	cw      latch.Latch    //dbvet:latch codeword
	slog    latch.Latch    //dbvet:latch syslog
	stripes *latch.Striped //dbvet:latch codeword
}

// Shape 1: direct inversion inside one function — the syslog latch is
// the last in the order, nothing may be acquired under it.
func (s *server) inverted() {
	s.slog.Lock()
	defer s.slog.Unlock()
	s.prot.Lock() // want "acquires the protection latch while the syslog latch is held"
	s.prot.Unlock()
}

// Shape 2: the same inversion split across two functions — only the
// callee's exported acquire summary can catch it.
func (s *server) outer() {
	s.cw.Lock()
	defer s.cw.Unlock()
	s.lockProt() // want "call to lockProt acquires the protection latch while the codeword latch is held"
}

func (s *server) lockProt() {
	s.prot.Lock()
	defer s.prot.Unlock()
}

// Shape 3: a Lock with an early return that skips the Unlock.
func (s *server) leaky(fail bool) error {
	s.prot.Lock() // want "not released on every return path"
	if fail {
		return errBoom
	}
	s.prot.Unlock()
	return nil
}

// Shape 4: an AcquireRange guard leaked on one path.
func (s *server) leakyGuard(exclusive bool) {
	g := s.stripes.AcquireRange(0, 4, exclusive) // want "guard from AcquireRange is not released on every return path"
	if exclusive {
		return
	}
	g.Release()
}

// ---- clean code: none of the following may be reported ----

// Acquisitions in the documented order, each released by defer.
func (s *server) ordered() {
	s.prot.Lock()
	defer s.prot.Unlock()
	s.cw.Lock()
	defer s.cw.Unlock()
	s.slog.Lock()
	defer s.slog.Unlock()
}

// A latch alias through a local still classifies, and the inner-first
// release order is fine.
func (s *server) aliased() {
	l := s.stripes.For(7)
	l.Lock()
	defer l.Unlock()
}

// A guard stored into a token transfers ownership to the token's
// releaser: not a leak at the acquisition site.
type token struct {
	g latch.MultiGuard
}

func (s *server) handoff() *token {
	g := s.stripes.AcquireRange(0, 2, true)
	return &token{g: g}
}

func (t *token) close() {
	t.g.Release()
}

// ---- stream latches (sharded log sets) ----

type streamedLog struct {
	tails []streamTail
}

type streamTail struct {
	mu latch.Latch //dbvet:latch stream
}

// Shape 5: nesting two stream latches. Streams are latched
// independently and flushed by concurrent workers; holding a pair
// invites a deadlock against a sibling holding them in the other order.
func (l *streamedLog) nested() {
	l.tails[0].mu.Lock()
	defer l.tails[0].mu.Unlock()
	l.tails[1].mu.Lock() // want "acquires a stream latch while another stream latch is held"
	l.tails[1].mu.Unlock()
}

// Clean: one stream at a time, released before the next (the
// sequential per-stream bracket every LogSet walk uses).
func (l *streamedLog) sequential() {
	for i := range l.tails {
		l.tails[i].mu.Lock()
		l.tails[i].mu.Unlock()
	}
}

// Clean: the stream latch ranks with syslog in the cross-class order,
// so taking one under the codeword latch is fine — and nothing may be
// acquired under it.
func (s *server) streamUnderCW(l *streamedLog) {
	s.cw.Lock()
	defer s.cw.Unlock()
	l.tails[0].mu.Lock()
	defer l.tails[0].mu.Unlock()
}

// Shape 6: the cross-class order still applies to stream latches.
func (s *server) protUnderStream(l *streamedLog) {
	l.tails[0].mu.Lock()
	defer l.tails[0].mu.Unlock()
	s.prot.Lock() // want "acquires the protection latch while the stream latch is held"
	s.prot.Unlock()
}
