// Package obsfix is the golden fixture for the obsnames pass: metric
// names must come from the closed namespace in internal/obs/names.go,
// spelled as the Name* constant, and each name must keep one instrument
// kind.
package obsfix

import "repro/internal/obs"

// A locally declared constant is still outside the closed namespace.
const localName = "fixture.local_gauge"

func register(reg *obs.Registry) {
	// Shape 1: a name nobody declared.
	reg.Counter("fixture.bogus_counter") // want "not declared in internal/obs/names.go"

	// Shape 2: a declared value spelled as a raw literal.
	reg.Counter("core.txns_begun") // want "use obs.NameTxnsBegun"

	// Shape 3: a local constant masquerading as a metric name.
	reg.Gauge(localName) // want "not declared in internal/obs/names.go"

	// Shape 4: one name, two instrument kinds.
	reg.Counter(obs.NameCkptPagesWritten)
	reg.Gauge(obs.NameCkptPagesWritten) // want "registered as Gauge here but as Counter"
}

// ---- clean code ----

func registerGood(reg *obs.Registry) {
	reg.Counter(obs.NameTxnsBegun)
	reg.Histogram(obs.NameBenchPairNS)
}

// Dynamic names are out of scope for the static check: the constant is
// checked where it is spelled.
func registerDynamic(reg *obs.Registry, name string) {
	reg.Gauge(name)
}
