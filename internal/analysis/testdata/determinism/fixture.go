// Package determinism is the golden fixture for the determinism pass:
// violation shapes for each rule — order-observing map ranges, wall
// clock reaching state and output, goroutine-order appends — plus the
// sanctioned shapes (accumulate-then-sort, max idiom, metric telemetry,
// per-worker indexed slots) that must stay silent.
package determinism

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"time"
)

type report struct {
	InDoubt []uint64
	Elapsed time.Duration
}

// ---- rule 1: map iteration order ----

// Shape 1a: appended in map order, never sorted.
func collectUnsorted(pending map[uint64]bool) []uint64 {
	var gids []uint64
	for gid := range pending { // want "iterates a map in nondeterministic order and appends to gids"
		gids = append(gids, gid)
	}
	return gids
}

// Shape 1b: encodes bytes in map order.
func encodeDecisions(dec map[uint64]bool) []byte {
	var meta []byte
	for gid, commit := range dec { // want "iterates a map in nondeterministic order and appends to meta"
		meta = binary.AppendUvarint(meta, gid)
		if commit {
			meta = append(meta, 1)
		} else {
			meta = append(meta, 0)
		}
	}
	return meta
}

// Shape 1c: emits text in map order.
func dumpState(w io.Writer, state map[string]int) {
	for name, v := range state { // want "iterates a map in nondeterministic order and emits output"
		fmt.Fprintf(w, "%s=%d\n", name, v)
	}
}

// Shape 1d: last iteration wins.
func pickVictim(waiters map[uint64]int) uint64 {
	var victim uint64
	for id := range waiters { // want "iterates a map in nondeterministic order and assigns a loop-derived value to victim"
		victim = id
	}
	return victim
}

// Sanctioned: accumulate, then sort — the recovery-report shape.
func collectSorted(pending map[uint64]bool) []uint64 {
	var gids []uint64
	for gid := range pending {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	return gids
}

// Sanctioned: max-selection idiom, commutative sum, map-to-map writes,
// existence probe with a constant return.
func summarize(entries map[uint64]int, out map[uint64]int) (max uint64, total int, any bool) {
	for id, n := range entries {
		if id > max {
			max = id
		}
		total += n
		out[id] = n
	}
	for id := range entries {
		if id == 0 {
			return max, total, true
		}
	}
	return max, total, false
}

// ---- rule 2: wall clock / randomness ----

// Shape 2a: wall clock stored into replayed state.
func stampReport(r *report, start time.Time) {
	r.Elapsed = time.Since(start) // want "stores a wall-clock/random value into r.Elapsed"
}

// Shape 2b: wall clock returned.
func redoDuration(start time.Time) time.Duration {
	d := time.Since(start)
	return d // want "returns a wall-clock/random value"
}

// Shape 2c: wall clock written to report output.
func printTiming(w io.Writer) {
	now := time.Now()
	fmt.Fprintf(w, "finished at %v\n", now) // want "writes a wall-clock/random value to output"
}

// Sanctioned: timing observed into a metrics histogram is telemetry.
type histo struct{}

func (h *histo) Observe(v float64) {}

func observeTiming(h *histo, start time.Time) {
	h.Observe(float64(time.Since(start)))
}

// ---- rule 3: goroutine-order appends ----

// Shape 3: results ordered by scheduling accident.
func scanAll(parts [][]uint64) []uint64 {
	var all []uint64
	done := make(chan struct{})
	for i := range parts {
		go func(i int) {
			for _, v := range parts[i] {
				all = append(all, v) // want "appends to captured slice all from a goroutine"
			}
			done <- struct{}{}
		}(i)
	}
	for range parts {
		<-done
	}
	return all
}

// Sanctioned: the deterministic chunk protocol — each worker owns its
// indexed slot, merged after the barrier.
func scanChunked(parts [][]uint64) []uint64 {
	per := make([][]uint64, len(parts))
	done := make(chan struct{})
	for i := range parts {
		go func(i int) {
			for _, v := range parts[i] {
				per[i] = append(per[i], v)
			}
			done <- struct{}{}
		}(i)
	}
	for range parts {
		<-done
	}
	var all []uint64
	for _, p := range per {
		all = append(all, p...)
	}
	return all
}
