// Package ctxflowfix is the golden fixture for the ctxflow pass: an
// exported *Ctx function promises cancellation, so every blocking wait
// it dominates must observe its context.
package ctxflowfix

import (
	"context"
	"sync"
)

// Shape 1 (C1): the context parameter is dropped on the floor.
func RelayCtx(ctx context.Context, next func(context.Context) error) error {
	return next(context.Background()) // want "passes context.Background() to next instead of threading its ctx"
}

// Shape 2 (C2): a bare channel receive cannot be canceled.
func TakeCtx(ctx context.Context, ch chan int) int {
	return <-ch // want "TakeCtx blocks on channel receive without observing its context"
}

// Shape 3 (C2): a select with neither default nor ctx.Done case.
func RaceCtx(ctx context.Context, a, b chan int) int {
	select { // want "RaceCtx blocks on select without default or ctx.Done case"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// Shape 4 (C2): an uncancellable wait loop — no ctx consultation in the
// enclosing loop.
func DrainCtx(ctx context.Context, c *sync.Cond, empty func() bool) {
	for !empty() {
		c.Wait() // want "DrainCtx blocks on sync.Cond.Wait without observing its context"
	}
}

// join blocks on the group and exports a BlocksOn summary …
func join(wg *sync.WaitGroup) { wg.Wait() }

// Shape 5 (C2'): … so calling it without passing the context is flagged.
func FlushCtx(ctx context.Context, wg *sync.WaitGroup) {
	join(wg) // want "FlushCtx calls join, which blocks on sync.WaitGroup.Wait, without passing its ctx"
}

// ---- clean code ----

// The cancellable wait-loop idiom: consult the context each turn before
// sleeping (the waker broadcasts on cancellation).
func PollCtx(ctx context.Context, c *sync.Cond, ready func() bool) error {
	for !ready() {
		if err := ctx.Err(); err != nil {
			return err
		}
		c.Wait()
	}
	return nil
}

// A select with a ctx.Done case is the cancellation.
func RecvCtx(ctx context.Context, ch chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// Threading the context through a context-accepting helper is clean even
// though the helper blocks.
func waitOn(ctx context.Context, ch chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

func ForwardCtx(ctx context.Context, ch chan int) (int, error) {
	return waitOn(ctx, ch)
}

// A wait inside a spawned goroutine does not block this API's caller.
func SpawnCtx(ctx context.Context, wg *sync.WaitGroup) {
	go func() {
		wg.Wait()
	}()
}

// Unexported and non-Ctx functions are outside the naming contract.
func take(ch chan int) int { return <-ch }
