// Package wire (a testdata stand-in matched by package name) pins the
// ctxflow request-path rule: manufacturing a root context inside a
// request-handling package severs the request's deadline.
package wire

import "context"

type request struct{ ctx context.Context }

// Shape 1: a fresh root mid-request.
func handle(r *request) context.Context {
	return context.Background() // want "context.Background() in request-handling package wire"
}

// Shape 2: TODO is the same severance.
func todo(r *request) context.Context {
	return context.TODO() // want "context.TODO() in request-handling package wire"
}

// Deriving from the request context is the sanctioned shape.
func deadline(r *request) (context.Context, context.CancelFunc) {
	return context.WithCancel(r.ctx)
}
