// Package twophase is a protocol-state pass over the engine's two-phase
// commit surface (core.Txn.Prepare / CommitPrepared / AbortPrepared,
// core.DB.AdoptPrepared / AppendDecision). It walks every function that
// creates a prepared transaction — a "frame" — with the anz branch-path
// walker and enforces the presumed-abort discipline the sharded router
// depends on:
//
//   - A prepare point (Prepare, or adopting an in-doubt transaction at
//     recovery) must be post-dominated by exactly one resolution
//     (CommitPrepared or AbortPrepared) on every non-error path. An exit
//     that returns success with a participant still prepared leaves it
//     holding locks and pinned in the ATT forever; resolving twice
//     double-finishes the transaction.
//   - CommitPrepared downstream of Prepare requires the coordinator's
//     decision to be durable first (AppendDecision post-dominating the
//     prepare, before phase 2) — committing participants before the
//     decision record is exactly the atomicity hole presumed-abort
//     recovery cannot close. Frames that adopt at recovery are exempt:
//     there the decision is already on disk by definition.
//   - Plain Commit/Abort on a transaction known prepared on this path is
//     a protocol violation (it skips the prepared-state bookkeeping).
//
// Calls are classified interprocedurally: function literals passed as
// call arguments count at the call (the router's eachPart(func(s int)
// error { return t.parts[s].Prepare(gid) }) shape), and per-package
// summaries mark resolver and decider helpers (abortParts,
// recordDecision) so their call sites inherit the classification.
// Fixture stand-ins — types named Txn/DB declared under testdata — are
// recognized alongside the real core types.
package twophase

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/anz"
	"repro/internal/analysis/facts"
)

// Analyzer is the twophase pass.
var Analyzer = &anz.Analyzer{
	Name: "twophase",
	Doc:  "every prepared transaction must be resolved exactly once, after a durable decision",
	Run:  run,
}

type kind uint8

const (
	kPrepare kind = 1 << iota
	kAdopt
	kResolveCommit
	kResolveAbort
	kPlainCommit
	kPlainAbort
	kDecide
)

// summary is the per-function fact: calling this function performs the
// marked protocol actions.
type summary struct {
	resolves bool // calls CommitPrepared/AbortPrepared on some path
	decides  bool // calls AppendDecision
}

// tstate is the walker state for one control-flow path.
type tstate struct {
	outstanding bool // a prepared transaction awaits resolution
	viaPrepare  bool // the prepare point was Prepare (not recovery adoption)
	resolved    bool // a resolution has happened since the prepare point
	decided     bool // AppendDecision has happened on every path here
}

func (s *tstate) Clone() anz.PathState {
	c := *s
	return &c
}

func (s *tstate) Merge(other anz.PathState) anz.PathState {
	o := other.(*tstate)
	s.outstanding = s.outstanding || o.outstanding
	s.viaPrepare = s.viaPrepare || o.viaPrepare
	s.resolved = s.resolved || o.resolved
	s.decided = s.decided && o.decided
	return s
}

func run(pass *anz.Pass) error {
	summarize(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !isFrame(pass, fd) {
				continue
			}
			checkFrame(pass, fd)
		}
	}
	return nil
}

// primKinds classifies a single call against the 2PC primitives.
func primKinds(pass *anz.Pass, call *ast.CallExpr) kind {
	fn := facts.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return 0
	}
	recv := facts.RecvNamed(fn)
	if recv == nil {
		return 0
	}
	if matchType(recv, "Txn") {
		switch fn.Name() {
		case "Prepare":
			return kPrepare
		case "CommitPrepared":
			return kResolveCommit
		case "AbortPrepared":
			return kResolveAbort
		case "Commit":
			return kPlainCommit
		case "Abort":
			return kPlainAbort
		}
	}
	if matchType(recv, "DB") {
		switch fn.Name() {
		case "AdoptPrepared":
			return kAdopt
		case "AppendDecision":
			return kDecide
		}
	}
	return 0
}

// matchType accepts the real core type or a fixture stand-in of the same
// name declared under testdata.
func matchType(named *types.Named, name string) bool {
	if facts.IsNamed(named, "internal/core", name) {
		return true
	}
	return named.Obj().Name() == name && named.Obj().Pkg() != nil &&
		strings.Contains(named.Obj().Pkg().Path(), "/testdata/")
}

// callKinds classifies call including the bodies of function literals
// passed as its arguments (the eachPart shape: the literal runs within
// the call) and the callee's exported summary.
func callKinds(pass *anz.Pass, call *ast.CallExpr) kind {
	k := primKinds(pass, call)
	for _, arg := range call.Args {
		lit, ok := arg.(*ast.FuncLit)
		if !ok {
			continue
		}
		for _, inner := range callsIn(lit.Body) {
			k |= primKinds(pass, inner)
		}
	}
	if callee := facts.Callee(pass.TypesInfo, call); callee != nil {
		if f, ok := pass.Fact(callee); ok {
			if s, ok := f.(summary); ok {
				if s.resolves {
					k |= kResolveAbort
				}
				if s.decides {
					k |= kDecide
				}
			}
		}
	}
	return k
}

// callsIn collects the calls in n, not descending into nested function
// literals (their bodies run when the literal does, which a helper like
// eachPart decides — one level of nesting is the shape the router uses).
func callsIn(n ast.Node) []*ast.CallExpr {
	var calls []*ast.CallExpr
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			calls = append(calls, n)
		}
		return true
	})
	return calls
}

// summarize exports resolver/decider facts for this package's functions,
// iterated to a fixpoint so helper chains classify.
func summarize(pass *anz.Pass) {
	for changed := true; changed; {
		changed = false
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := pass.TypesInfo.Defs[fd.Name]
				if obj == nil {
					continue
				}
				prev, _ := pass.Fact(obj)
				prevSum, _ := prev.(summary)
				sum := prevSum
				for _, call := range callsIn(fd.Body) {
					k := primKinds(pass, call)
					if callee := facts.Callee(pass.TypesInfo, call); callee != nil {
						if f, ok := pass.Fact(callee); ok {
							if s, ok := f.(summary); ok {
								if s.resolves {
									k |= kResolveAbort
								}
								if s.decides {
									k |= kDecide
								}
							}
						}
					}
					if k&(kResolveCommit|kResolveAbort) != 0 {
						sum.resolves = true
					}
					if k&kDecide != 0 {
						sum.decides = true
					}
				}
				if sum != prevSum {
					pass.ExportFact(obj, sum)
					changed = true
				}
			}
		}
	}
}

// isFrame reports whether fd contains a prepare point — directly or in a
// function literal argument — making it subject to the walk.
func isFrame(pass *anz.Pass, fd *ast.FuncDecl) bool {
	for _, call := range callsIn(fd.Body) {
		k := primKinds(pass, call)
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				for _, inner := range callsIn(lit.Body) {
					k |= primKinds(pass, inner)
				}
			}
		}
		if k&(kPrepare|kAdopt) != 0 {
			return true
		}
	}
	return false
}

// checkFrame walks fd's body, tracking prepared-transaction state.
func checkFrame(pass *anz.Pass, fd *ast.FuncDecl) {
	apply := func(n ast.Node, st *tstate) {
		for _, call := range callsIn(n) {
			k := callKinds(pass, call)
			if k == 0 {
				continue
			}
			if k&kPrepare != 0 {
				st.outstanding = true
				st.viaPrepare = true
				st.resolved = false
			}
			if k&kAdopt != 0 {
				st.outstanding = true
				st.resolved = false
			}
			if k&kDecide != 0 {
				st.decided = true
			}
			if k&kResolveCommit != 0 {
				if st.viaPrepare && !st.decided {
					pass.Reportf(call.Pos(), "CommitPrepared before the decision is durable: AppendDecision must post-dominate the prepare and precede phase 2")
				}
				resolve(pass, call, st)
			}
			if k&kResolveAbort != 0 {
				resolve(pass, call, st)
			}
			if k&(kPlainCommit|kPlainAbort) != 0 && st.outstanding {
				pass.Reportf(call.Pos(), "plain Commit/Abort on a transaction prepared on this path; use CommitPrepared/AbortPrepared")
			}
		}
	}
	hooks := &anz.PathHooks{
		Stmt: func(s ast.Stmt, st anz.PathState) { apply(s, st.(*tstate)) },
		Expr: func(e ast.Expr, st anz.PathState) { apply(e, st.(*tstate)) },
		Return: func(ret *ast.ReturnStmt, st anz.PathState) {
			t := st.(*tstate)
			apply(ret, t)
			if t.outstanding && successfulReturn(fd, ret) {
				pass.Reportf(ret.Pos(), "%s returns success with a prepared transaction unresolved (CommitPrepared/AbortPrepared missing on this path)", fd.Name.Name)
			}
		},
		Exit: func(st anz.PathState) {
			if st.(*tstate).outstanding {
				pass.Reportf(fd.Name.Pos(), "%s reaches the end of the function with a prepared transaction unresolved", fd.Name.Name)
			}
		},
	}
	anz.WalkPaths(fd.Body, &tstate{}, pass.TypesInfo, hooks)
}

// resolve transitions a path through a resolution, flagging doubles.
func resolve(pass *anz.Pass, call *ast.CallExpr, st *tstate) {
	if !st.outstanding && st.resolved {
		pass.Reportf(call.Pos(), "prepared transaction resolved a second time on this path")
	}
	st.outstanding = false
	st.resolved = true
}

// successfulReturn reports whether ret exits with a nil error: no error
// result, a literal nil in the trailing slot, or a naked return. A
// variable or call result is statically unknown and treated as the
// failure path (recovery resolves what an error exit leaves prepared).
func successfulReturn(fd *ast.FuncDecl, ret *ast.ReturnStmt) bool {
	results := fd.Type.Results
	if results == nil || len(results.List) == 0 {
		return true
	}
	last := results.List[len(results.List)-1]
	if named, ok := last.Type.(*ast.Ident); !ok || named.Name != "error" {
		return true
	}
	if len(ret.Results) == 0 {
		return true
	}
	lastExpr := ast.Unparen(ret.Results[len(ret.Results)-1])
	if id, ok := lastExpr.(*ast.Ident); ok && id.Name == "nil" {
		return true
	}
	return false
}
