package twophase_test

import (
	"testing"

	"repro/internal/analysis/anztest"
	"repro/internal/analysis/twophase"
)

func TestFixture(t *testing.T) {
	anztest.Run(t, ".", "../testdata/twophase", twophase.Analyzer)
}
