// Package ctxflow enforces context propagation through the engine's
// cancellation surface. The sharded engine grew a context-aware client
// API (BeginCtx, FlushCtx, LockCtx, ...) precisely so a server can bound
// lock waits and group-commit waits per request; every break in the
// chain silently reverts a path to uncancellable blocking. Three rules:
//
//  C1. An exported *Ctx function must thread its context: passing
//      context.Background()/TODO() onward from inside one discards the
//      caller's deadline while the signature still promises to honor it.
//  C2. A raw blocking wait inside an exported *Ctx function — a bare
//      channel receive, a select with neither default nor ctx.Done case,
//      a sync.Cond/WaitGroup wait — must sit in a scope that consults
//      ctx.Done()/ctx.Err() (the cancellable wait-loop idiom lockmgr and
//      the wal group commit use). Likewise calling a helper that a
//      facts.BlocksOn summary marks as uncancellable, without passing the
//      context along.
//  C3. Packages wire and shard handle requests: context.Background() /
//      context.TODO() there manufactures a root context mid-request.
//      The sanctioned roots (the server's base context, the non-Ctx
//      convenience wrappers) carry //dbvet:allow ctxflow annotations.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/anz"
	"repro/internal/analysis/facts"
)

// Analyzer is the ctxflow pass.
var Analyzer = &anz.Analyzer{
	Name: "ctxflow",
	Doc:  "context-aware APIs must thread ctx into every blocking wait they dominate",
	Run:  run,
}

func run(pass *anz.Pass) error {
	facts.SummarizeBlocking(pass)
	if pass.Pkg.Types == nil {
		return nil
	}
	// C3: request-handling packages, matched by package name so fixtures
	// can declare their own `package wire`.
	if name := pass.Pkg.Types.Name(); name == "wire" || name == "shard" {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && isFreshContext(pass, call) {
					pass.Reportf(call.Pos(), "%s in request-handling package %s: derive the context from the request instead of a fresh root", calleeQualified(call), name)
				}
				return true
			})
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !isCtxAPI(pass, fd) {
				continue
			}
			checkCtxAPI(pass, fd)
		}
	}
	return nil
}

// isCtxAPI reports whether fd is an exported function or method whose
// name ends in Ctx and which takes a context parameter — the engine's
// naming contract for cancellation-aware entry points.
func isCtxAPI(pass *anz.Pass, fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	if !fd.Name.IsExported() || len(name) <= 3 || name[len(name)-3:] != "Ctx" {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

func checkCtxAPI(pass *anz.Pass, fd *ast.FuncDecl) {
	// C2: raw waits outside any ctx-consulting scope.
	facts.WalkWaits(pass.TypesInfo, fd.Body, func(pos token.Pos, op string) {
		pass.Reportf(pos, "%s blocks on %s without observing its context", fd.Name.Name, op)
	})
	// C1 + C2': call-shape checks, skipping function literals (a spawned
	// goroutine's waits do not block this API's caller).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if ac, ok := ast.Unparen(arg).(*ast.CallExpr); ok && isFreshContext(pass, ac) {
				pass.Reportf(ac.Pos(), "%s passes %s to %s instead of threading its ctx", fd.Name.Name, calleeQualified(ac), calleeShort(call))
			}
		}
		if callee := facts.Callee(pass.TypesInfo, call); callee != nil {
			if f, ok := pass.Fact(callee); ok {
				if b, ok := f.(facts.BlocksOn); ok && !facts.PassesContext(pass.TypesInfo, call) {
					pass.Reportf(call.Pos(), "%s calls %s, which blocks on %s, without passing its ctx", fd.Name.Name, callee.Name(), b.Op)
				}
			}
		}
		return true
	})
}

// isFreshContext recognizes context.Background() and context.TODO().
func isFreshContext(pass *anz.Pass, call *ast.CallExpr) bool {
	fn := facts.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return false
	}
	return fn.Name() == "Background" || fn.Name() == "TODO"
}

// calleeQualified renders "context.Background()" for diagnostics.
func calleeQualified(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if x, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			return x.Name + "." + sel.Sel.Name + "()"
		}
	}
	return calleeShort(call) + "()"
}

// calleeShort is the bare called name.
func calleeShort(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "the callee"
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}
