package ctxflow_test

import (
	"testing"

	"repro/internal/analysis/anztest"
	"repro/internal/analysis/ctxflow"
)

func TestFixture(t *testing.T) {
	anztest.Run(t, ".", "../testdata/ctxflow", ctxflow.Analyzer)
}

func TestWireFixture(t *testing.T) {
	anztest.Run(t, ".", "../testdata/ctxflowwire", ctxflow.Analyzer)
}
