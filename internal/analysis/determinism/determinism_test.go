package determinism_test

import (
	"testing"

	"repro/internal/analysis/anztest"
	"repro/internal/analysis/determinism"
)

func TestFixture(t *testing.T) {
	anztest.Run(t, ".", "../testdata/determinism", determinism.Analyzer)
}
