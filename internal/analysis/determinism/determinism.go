// Package determinism is the machine-checked form of the parallel-log
// claim "parallel redo is bit-identical to serial replay": recovery,
// audit, and transaction-resolution code must not let a nondeterminism
// source reach replayed state or report output. Three rules:
//
//  1. Map order. A `range` over a map runs in randomized order; a loop
//     body that accumulates into a slice (without sorting it afterward
//     in the same function), emits bytes or text, sends on a channel,
//     concatenates strings, assigns loop-derived values to outer
//     variables, or returns a loop-derived value makes that order
//     observable. Order-insensitive bodies — writes into another map,
//     delete, commutative `+=`, the max/min selection idiom (an
//     assignment guarded by a comparison), constant returns — are
//     sanctioned, as is the accumulate-then-sort shape the recovery
//     report uses.
//
//  2. Wall clock and randomness. Values derived from time.Now /
//     time.Since / math/rand must not be stored into structs, slices or
//     maps, returned, or written out: two replays of the same log would
//     diverge. The one sanctioned sink is the obs metrics registry
//     (histograms of recovery timing are telemetry, not state).
//
//  3. Goroutine interleaving. Inside a spawned goroutine, appending to
//     a slice captured from the enclosing function orders results by
//     scheduling accident. The deterministic chunk protocol — each
//     worker writes only its own index (per[i] = append(per[i], …)) —
//     is the sanctioned shape, exactly how the parallel log-stream scan
//     merges its per-stream results.
//
// Scope: the recovery, audit (internal/check) and shard-resolution
// packages, where replay determinism is the paper-level contract.
package determinism

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/anz"
)

// Analyzer is the determinism pass.
var Analyzer = &anz.Analyzer{
	Name: "determinism",
	Doc:  "no nondeterminism source (map order, wall clock, goroutine interleaving) may reach replayed state or report output",
	Run:  run,
}

var scopePkgs = []string{
	"internal/recovery",
	"internal/check",
	"internal/shard",
}

func inScope(importPath string) bool {
	for _, p := range scopePkgs {
		if strings.HasSuffix(importPath, p) {
			return true
		}
	}
	return strings.Contains(importPath, "/testdata/")
}

type checker struct {
	pass *anz.Pass
}

func run(pass *anz.Pass) error {
	if !inScope(pass.Pkg.ImportPath) {
		return nil
	}
	c := &checker{pass: pass}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkMapRanges(fd.Body)
				c.checkClockTaint(fd.Body)
				c.checkGoroutineAppends(fd.Body)
			}
		}
	}
	return nil
}

// ---- rule 1: map iteration order ----

func (c *checker) checkMapRanges(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := c.pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if reason := c.orderSensitive(rs, body); reason != "" {
			c.pass.Reportf(rs.Pos(), "iterates a map in nondeterministic order and %s; iterate sorted keys instead", reason)
		}
		return true
	})
}

// orderSensitive scans a map-range body for effects that observe the
// iteration order, returning a description of the first one found.
func (c *checker) orderSensitive(rs *ast.RangeStmt, fnBody *ast.BlockStmt) string {
	loopVars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	reason := ""
	found := func(r string) {
		if reason == "" {
			reason = r
		}
	}
	c.walkOrdered(rs.Body, loopVars, false, rs, fnBody, found)
	return reason
}

// walkOrdered walks a map-range body in source order, growing the
// loop-derived taint set and classifying each effect. inCompareIf marks
// statements guarded by a comparison (the max/min selection idiom).
func (c *checker) walkOrdered(stmt ast.Stmt, taint map[types.Object]bool, inCompareIf bool, rs *ast.RangeStmt, fnBody *ast.BlockStmt, found func(string)) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			c.walkOrdered(st, taint, inCompareIf, rs, fnBody, found)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkOrdered(s.Init, taint, inCompareIf, rs, fnBody, found)
		}
		guarded := inCompareIf || isComparison(s.Cond)
		c.walkOrdered(s.Body, taint, guarded, rs, fnBody, found)
		if s.Else != nil {
			c.walkOrdered(s.Else, taint, guarded, rs, fnBody, found)
		}
	case *ast.ForStmt:
		c.walkOrdered(s.Body, taint, inCompareIf, rs, fnBody, found)
	case *ast.RangeStmt:
		c.walkOrdered(s.Body, taint, inCompareIf, rs, fnBody, found)
	case *ast.SwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, st := range cc.Body {
					c.walkOrdered(st, taint, inCompareIf, rs, fnBody, found)
				}
			}
		}
	case *ast.SendStmt:
		found("sends on a channel from the loop body")
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if c.usesTaint(r, taint) {
				found("returns a loop-derived value")
			}
		}
	case *ast.ExprStmt:
		c.scanEmitCalls(s.X, found)
	case *ast.AssignStmt:
		c.classifyAssign(s, taint, inCompareIf, rs, fnBody, found)
	}
}

// classifyAssign sorts a loop-body assignment into the sanctioned and
// order-sensitive shapes.
func (c *checker) classifyAssign(s *ast.AssignStmt, taint map[types.Object]bool, inCompareIf bool, rs *ast.RangeStmt, fnBody *ast.BlockStmt, found func(string)) {
	// Grow the taint set first: x := k propagates.
	defer func() {
		for i, lhs := range s.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := c.pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = c.pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				continue
			}
			rhs := ast.Expr(nil)
			if i < len(s.Rhs) {
				rhs = s.Rhs[i]
			} else if len(s.Rhs) == 1 {
				rhs = s.Rhs[0]
			}
			if rhs != nil && c.usesTaint(rhs, taint) {
				taint[obj] = true
			}
		}
	}()
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if i < len(s.Rhs) {
			rhs = s.Rhs[i]
		} else if len(s.Rhs) == 1 {
			rhs = s.Rhs[0]
		}
		c.scanEmitCalls(rhs, found)
		// Accumulator append: dst = append(dst, …) — order-sensitive
		// unless dst is sorted after the loop in the same function.
		if acc := accumulatorAppend(c.pass.TypesInfo, lhs, rhs); acc != "" {
			if _, isIndex := ast.Unparen(lhs).(*ast.IndexExpr); !isIndex && !c.sortedAfter(acc, rs, fnBody) {
				found("appends to " + acc + " in iteration order (not sorted afterward)")
			}
			continue
		}
		// Writes into another map, and deletes, are order-insensitive.
		if _, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			continue
		}
		// String concatenation accumulates in iteration order.
		if s.Tok == token.ADD_ASSIGN && isString(c.pass.TypesInfo.TypeOf(lhs)) {
			found("concatenates strings in iteration order")
			continue
		}
		// Commutative numeric accumulation is order-insensitive.
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
			continue
		}
		// Assignment of a loop-derived value to a variable declared
		// outside the loop, unguarded by a comparison.
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			obj := c.pass.TypesInfo.Uses[id]
			if obj != nil && !declaredWithin(obj, rs.Body) && rhs != nil && c.usesTaint(rhs, taint) && !inCompareIf {
				found("assigns a loop-derived value to " + id.Name + " (last iteration wins)")
			}
			continue
		}
		if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
			if rhs != nil && c.usesTaint(rhs, taint) && !inCompareIf {
				found("assigns a loop-derived value to " + render(sel) + " (last iteration wins)")
			}
		}
	}
}

// accumulatorAppend matches dst = append(dst, …) and the
// dst = pkg.AppendX(dst, …) encoder shape, returning dst's render.
func accumulatorAppend(info *types.Info, lhs, rhs ast.Expr) string {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return ""
	}
	name := ""
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	if name != "append" && !strings.HasPrefix(name, "Append") {
		return ""
	}
	dst := render(lhs)
	if render(call.Args[0]) != dst {
		return ""
	}
	return dst
}

// sortedAfter reports whether a sort.* / slices.* call on dst appears
// after the loop in the enclosing function — the accumulate-then-sort
// shape.
func (c *checker) sortedAfter(dst string, rs *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		if render(arg) == dst {
			sorted = true
			return false
		}
		// sort.Sort(byID(dst)): unwrap a conversion.
		if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 && render(ast.Unparen(conv.Args[0])) == dst {
			sorted = true
			return false
		}
		return true
	})
	return sorted
}

// scanEmitCalls flags calls that write bytes or text (in iteration
// order when reached from a map-range body).
func (c *checker) scanEmitCalls(e ast.Expr, found func(string)) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if isEmitName(sel.Sel.Name) {
			found("emits output via " + render(sel) + " in iteration order")
			return false
		}
		return true
	})
}

func isEmitName(name string) bool {
	for _, p := range []string{"Write", "Fprint", "Print", "Encode"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// ---- rule 2: wall clock and randomness ----

func (c *checker) checkClockTaint(body *ast.BlockStmt) {
	tainted := make(map[types.Object]bool)
	c.clockWalk(body, tainted)
}

// clockWalk visits statements in source order, propagating taint from
// clock/random sources through assignments and reporting sinks.
func (c *checker) clockWalk(stmt ast.Stmt, tainted map[types.Object]bool) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			c.clockWalk(st, tainted)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.clockWalk(s.Init, tainted)
		}
		c.clockWalk(s.Body, tainted)
		if s.Else != nil {
			c.clockWalk(s.Else, tainted)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.clockWalk(s.Init, tainted)
		}
		c.clockWalk(s.Body, tainted)
	case *ast.RangeStmt:
		c.clockWalk(s.Body, tainted)
	case *ast.SwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, st := range cc.Body {
					c.clockWalk(st, tainted)
				}
			}
		}
	case *ast.AssignStmt:
		for i, lhs := range s.Lhs {
			var rhs ast.Expr
			if i < len(s.Rhs) {
				rhs = s.Rhs[i]
			} else if len(s.Rhs) == 1 {
				rhs = s.Rhs[0]
			}
			if rhs == nil || !c.clockTainted(rhs, tainted) {
				continue
			}
			switch l := ast.Unparen(lhs).(type) {
			case *ast.Ident:
				if obj := objOf(c.pass.TypesInfo, l); obj != nil {
					tainted[obj] = true
				}
			case *ast.SelectorExpr:
				c.pass.Reportf(s.Pos(), "stores a wall-clock/random value into %s; replayed state must be deterministic", render(l))
			case *ast.IndexExpr:
				c.pass.Reportf(s.Pos(), "stores a wall-clock/random value into %s; replayed state must be deterministic", render(l))
			}
		}
		c.scanClockSinkCalls(s, tainted)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if c.clockTainted(r, tainted) {
				c.pass.Reportf(s.Pos(), "returns a wall-clock/random value; replayed results must be deterministic")
			}
		}
	case *ast.ExprStmt:
		c.scanClockSinkCalls(s, tainted)
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.clockWalk(lit.Body, tainted)
		}
	case *ast.DeferStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.clockWalk(lit.Body, tainted)
		}
	}
}

// scanClockSinkCalls reports tainted arguments reaching emit-family
// calls (report output); obs metric sinks are sanctioned telemetry.
func (c *checker) scanClockSinkCalls(stmt ast.Stmt, tainted map[types.Object]bool) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isEmitName(sel.Sel.Name) {
			return true
		}
		for _, a := range call.Args {
			if c.clockTainted(a, tainted) {
				c.pass.Reportf(call.Pos(), "writes a wall-clock/random value to output; report content must be deterministic")
				return false
			}
		}
		return true
	})
}

// clockTainted reports whether an expression derives from a clock or
// random source or a tainted variable. Metric observation calls are
// not sources and stop the scan.
func (c *checker) clockTainted(e ast.Expr, tainted map[types.Object]bool) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := objOf(c.pass.TypesInfo, n); obj != nil && tainted[obj] {
				found = true
			}
		case *ast.CallExpr:
			if c.isClockSource(n) {
				found = true
				return false
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && c.isObsMethod(sel) {
				return false
			}
		}
		return !found
	})
	return found
}

// isClockSource matches time.Now/Since/Until and math/rand calls.
func (c *checker) isClockSource(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, _ := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return true
		}
	case "math/rand", "math/rand/v2":
		return true
	}
	return false
}

// isObsMethod matches methods on the repo's obs metric handles.
func (c *checker) isObsMethod(sel *ast.SelectorExpr) bool {
	tv, ok := c.pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}

// ---- rule 3: goroutine-order-dependent appends ----

func (c *checker) checkGoroutineAppends(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		c.checkCapturedAppends(lit)
		return true
	})
}

// checkCapturedAppends flags x = append(x, …) inside a goroutine body
// where x is captured from the enclosing function. The indexed form
// per[i] = append(per[i], …) — each worker owning one slot — is the
// sanctioned chunk protocol.
func (c *checker) checkCapturedAppends(lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			var rhs ast.Expr
			if i < len(as.Rhs) {
				rhs = as.Rhs[i]
			} else if len(as.Rhs) == 1 {
				rhs = as.Rhs[0]
			}
			if rhs == nil || accumulatorAppend(c.pass.TypesInfo, lhs, rhs) == "" {
				continue
			}
			switch l := ast.Unparen(lhs).(type) {
			case *ast.IndexExpr:
				// per-worker slot: deterministic chunk protocol.
			case *ast.Ident:
				if obj := objOf(c.pass.TypesInfo, l); obj != nil && !declaredWithin(obj, lit.Body) {
					c.pass.Reportf(as.Pos(), "appends to captured slice %s from a goroutine; order depends on scheduling — give each worker its own indexed slot", l.Name)
				}
			case *ast.SelectorExpr:
				c.pass.Reportf(as.Pos(), "appends to captured slice %s from a goroutine; order depends on scheduling — give each worker its own indexed slot", render(l))
			}
		}
		return true
	})
}

// ---- helpers ----

func (c *checker) usesTaint(e ast.Expr, taint map[types.Object]bool) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := objOf(c.pass.TypesInfo, id); obj != nil && taint[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

func isComparison(e ast.Expr) bool {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
		return true
	}
	return false
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func render(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return ""
	}
	return buf.String()
}
