package obsnames_test

import (
	"testing"

	"repro/internal/analysis/anztest"
	"repro/internal/analysis/obsnames"
)

func TestFixture(t *testing.T) {
	anztest.Run(t, ".", "../testdata/obsnames", obsnames.Analyzer)
}
