// Package obsnames keeps the observability namespace closed: every
// metric name passed to obs.Registry's Counter/Gauge/Histogram must be
// one of the Name* constants declared in internal/obs/names.go, and a
// given name must always be registered as the same instrument kind.
// Free-form string literals at call sites are how dashboards silently
// break — a typo mints a new, never-scraped series instead of failing.
//
// The pass runs in dependency order: visiting package obs it records the
// declared constants (value → constant name); visiting every other
// package it resolves each registry call's name argument to its constant
// string value and flags (1) values not in the declared set, (2) declared
// values spelled as raw literals instead of the constant, and (3) a name
// registered under two different instrument kinds anywhere in the
// program.
package obsnames

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/analysis/anz"
)

// Analyzer is the obsnames pass.
var Analyzer = &anz.Analyzer{
	Name: "obsnames",
	Doc:  "metric names must be obs Name* constants, each registered with one instrument kind",
	Run:  run,
}

// registryMethods are the get-or-create instrument constructors on
// *obs.Registry whose first argument is the metric name.
var registryMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

// kindSeen records the first registration of a metric name.
type kindSeen struct {
	kind string
	at   string
}

func run(pass *anz.Pass) error {
	if isObsPackage(pass.Pkg.ImportPath) {
		declare(pass)
	}
	shared := pass.Shared()
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			method, ok := registryCall(pass, call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			arg := ast.Unparen(call.Args[0])
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				// Dynamic name (parameter, concatenation of a parameter):
				// the declaration is checked where the constant is spelled.
				return true
			}
			name := constant.StringVal(tv.Value)

			declKey := "decl:" + name
			constName, declared := shared[declKey].(string)
			switch {
			case !declared:
				pass.Reportf(arg.Pos(), "metric name %q is not declared in internal/obs/names.go", name)
			case isRawLiteral(arg) && !isObsPackage(pass.Pkg.ImportPath):
				pass.Reportf(arg.Pos(), "metric name %q spelled as a string literal; use obs.%s", name, constName)
			}

			kindKey := "kind:" + name
			if prev, ok := shared[kindKey].(kindSeen); ok {
				if prev.kind != method {
					pass.Reportf(call.Pos(), "metric %q registered as %s here but as %s at %s", name, method, prev.kind, prev.at)
				}
			} else {
				shared[kindKey] = kindSeen{kind: method, at: pass.Fset.Position(call.Pos()).String()}
			}
			return true
		})
	}
	return nil
}

// declare records package obs's exported string constants as the
// declared metric namespace.
func declare(pass *anz.Pass) {
	shared := pass.Shared()
	scope := pass.Pkg.Types.Scope()
	for _, name := range scope.Names() {
		cns, ok := scope.Lookup(name).(*types.Const)
		if !ok || cns.Val().Kind() != constant.String {
			continue
		}
		shared["decl:"+constant.StringVal(cns.Val())] = name
	}
}

// registryCall reports whether call is an instrument constructor on
// *obs.Registry and returns the method name.
func registryCall(pass *anz.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !registryMethods[sel.Sel.Name] {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return "", false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != "Registry" || obj.Pkg() == nil || !isObsPackage(obj.Pkg().Path()) {
		return "", false
	}
	return sel.Sel.Name, true
}

// isRawLiteral reports whether the name argument is spelled as a string
// literal (possibly concatenated from literals) rather than a constant
// reference.
func isRawLiteral(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return true
	case *ast.BinaryExpr:
		return isRawLiteral(e.X) && isRawLiteral(e.Y)
	}
	return false
}

func isObsPackage(path string) bool {
	return path == "repro/internal/obs" || strings.HasSuffix(path, "/internal/obs")
}
