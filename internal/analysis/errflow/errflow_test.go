package errflow_test

import (
	"testing"

	"repro/internal/analysis/anztest"
	"repro/internal/analysis/errflow"
)

func TestFixture(t *testing.T) {
	anztest.Run(t, ".", "../testdata/errflow", errflow.Analyzer)
}
