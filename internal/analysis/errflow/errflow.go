// Package errflow enforces the fail-stop error discipline on the durable
// paths. Three rules, each pinned to a postmortem the repo's design notes
// carry:
//
//  1. No discarded errors from durable-path write/append/fsync/dir-sync
//     calls. A dropped error from iofault.File.Sync or SystemLog.Append
//     is exactly the fsyncgate shape: the kernel reported data loss once,
//     the caller shrugged, and a later fsync "succeeded" over the hole.
//  2. Sentinel errors are matched with errors.Is, never == or a switch
//     case. The engine wraps every sentinel in context (fmt.Errorf
//     "...: %w"), so an == comparison that once worked silently stops
//     matching the day a wrap is added upstream.
//  3. In package wal, the error of a Sync on a struct-owned durable file
//     (a field of type iofault.File) must reach the poison transition on
//     every branch: a failed force of the system log is unrecoverable in
//     place, and any exit that does not poison leaves appenders writing
//     into a log whose stable prefix is unknown.
//
// Rules 1 and 3 are scoped to the durable packages (and testdata
// fixtures); rule 2 is tree-wide — a brittle comparison in a command or
// helper breaks just as surely.
package errflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/anz"
	"repro/internal/analysis/facts"
)

// Analyzer is the errflow pass.
var Analyzer = &anz.Analyzer{
	Name: "errflow",
	Doc:  "durable-path errors must be handled: no discards, errors.Is for sentinels, poison on failed log sync",
	Run:  run,
}

// durablePkgs mirror iopath's scope: the packages whose dropped errors
// cost durability.
var durablePkgs = []string{
	"internal/wal",
	"internal/ckpt",
	"internal/archive",
	"internal/recovery",
	"internal/shard",
	"internal/core",
	"internal/iofault",
}

func inScope(importPath string) bool {
	for _, p := range durablePkgs {
		if strings.HasSuffix(importPath, p) {
			return true
		}
	}
	return strings.Contains(importPath, "/testdata/")
}

// sinkMethods maps a receiver type (package-suffix, type name) to the
// methods whose error results must not be discarded. The testdata entry
// lets fixtures declare stand-in types without importing the engine.
var sinkMethods = []struct {
	pkgSuffix, typeName string
	methods             map[string]bool
}{
	{"internal/iofault", "File", map[string]bool{
		"Write": true, "WriteAt": true, "Sync": true, "Truncate": true,
	}},
	{"internal/iofault", "FS", map[string]bool{
		"OpenFile": true, "ReadFile": true, "Rename": true, "SyncDir": true,
	}},
	{"internal/wal", "SystemLog", map[string]bool{
		"Append": true, "AppendAndFlush": true, "AppendAndFlushCtx": true,
		"Flush": true, "FlushCtx": true, "Reset": true,
	}},
}

func run(pass *anz.Pass) error {
	scoped := inScope(pass.Pkg.ImportPath)
	for _, file := range pass.Files {
		if scoped {
			checkDiscards(pass, file)
		}
		checkSentinels(pass, file)
	}
	if pass.Pkg.Types != nil &&
		(pass.Pkg.Types.Name() == "wal" || strings.Contains(pass.Pkg.ImportPath, "/testdata/")) {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					checkPoison(pass, fd)
				}
			}
		}
	}
	return nil
}

// isSink reports whether call is a method call on one of the durable sink
// types (or a fixture stand-in), or the iofault.WriteFileSync helper.
func isSink(pass *anz.Pass, call *ast.CallExpr) bool {
	fn := facts.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	recv := facts.RecvNamed(fn)
	if recv == nil {
		return fn.Name() == "WriteFileSync" && fn.Pkg() != nil &&
			strings.HasSuffix(fn.Pkg().Path(), "internal/iofault")
	}
	for _, s := range sinkMethods {
		if !s.methods[fn.Name()] {
			continue
		}
		if facts.IsNamed(recv, s.pkgSuffix, s.typeName) {
			return true
		}
		if recv.Obj().Pkg() != nil && strings.Contains(recv.Obj().Pkg().Path(), "/testdata/") &&
			recv.Obj().Name() == s.typeName {
			return true
		}
	}
	return false
}

// checkDiscards reports durable sink calls whose error result is thrown
// away: bare expression statements, go/defer statements, and assignments
// with the blank identifier in the error slot.
func checkDiscards(pass *anz.Pass, file *ast.File) {
	report := func(call *ast.CallExpr) {
		pass.Reportf(call.Pos(), "error from %s is discarded on the durable path; a dropped write/sync error breaks fail-stop", calleeLabel(pass, call))
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isSink(pass, call) {
				report(call)
			}
		case *ast.GoStmt:
			if isSink(pass, s.Call) {
				report(s.Call)
			}
		case *ast.DeferStmt:
			if isSink(pass, s.Call) {
				report(s.Call)
			}
		case *ast.AssignStmt:
			if len(s.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
			if !ok || !isSink(pass, call) {
				return true
			}
			// The error is the trailing result; a blank in its slot is a
			// discard whether or not the other results are kept.
			if len(s.Lhs) == 0 {
				return true
			}
			if id, ok := s.Lhs[len(s.Lhs)-1].(*ast.Ident); ok && id.Name == "_" {
				report(call)
			}
		}
		return true
	})
}

// checkSentinels reports ==/!= and switch-case comparisons against the
// repo's sentinel error variables. Sentinels from other modules (io.EOF)
// are out of scope: the rule exists because this repo wraps its own.
func checkSentinels(pass *anz.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			if v := sentinelVar(pass, n.X); v != nil {
				pass.Reportf(n.Pos(), "sentinel %s compared with %s; use errors.Is (the engine wraps its sentinels)", v.Name(), n.Op)
			} else if v := sentinelVar(pass, n.Y); v != nil {
				pass.Reportf(n.Pos(), "sentinel %s compared with %s; use errors.Is (the engine wraps its sentinels)", v.Name(), n.Op)
			}
		case *ast.SwitchStmt:
			if n.Tag == nil {
				return true
			}
			for _, cl := range n.Body.List {
				cc, ok := cl.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if v := sentinelVar(pass, e); v != nil {
						pass.Reportf(e.Pos(), "sentinel %s matched by switch case; use errors.Is (the engine wraps its sentinels)", v.Name())
					}
				}
			}
		}
		return true
	})
}

// sentinelVar resolves e to a package-level error variable named Err*
// declared inside this module, or nil.
func sentinelVar(pass *anz.Pass, e ast.Expr) *types.Var {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[e.Sel]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil // not package-level
	}
	if !strings.HasPrefix(v.Pkg().Path(), "repro/") && !strings.Contains(v.Pkg().Path(), "/testdata/") {
		return nil
	}
	if !types.Implements(v.Type(), errorInterface()) {
		return nil
	}
	return v
}

var errIface *types.Interface

func errorInterface() *types.Interface {
	if errIface == nil {
		errIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	}
	return errIface
}

// checkPoison enforces rule 3 within one function: every Sync call on a
// struct field of type iofault.File must feed an if-guard that poisons.
func checkPoison(pass *anz.Pass, fd *ast.FuncDecl) {
	handled := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IfStmt:
			// Shape: if err := x.f.Sync(); err != nil { ...poison... }
			if a, ok := s.Init.(*ast.AssignStmt); ok {
				if call := fieldSyncCall(pass, a); call != nil {
					handled[a] = true
					if !poisonsIn(s.Body) && !poisonsIn(s.Else) {
						pass.Reportf(call.Pos(), "failed Sync of the durable log file must reach the poison transition in this guard")
					}
				}
			}
		case *ast.AssignStmt:
			if handled[s] {
				return true
			}
			call := fieldSyncCall(pass, s)
			if call == nil {
				return true
			}
			// Shape: serr = x.f.Sync() ... later: if ...serr... { poison }
			name := ""
			if id, ok := s.Lhs[len(s.Lhs)-1].(*ast.Ident); ok && id.Name != "_" {
				name = id.Name
			}
			if name == "" || !poisonGuarded(fd.Body, name) {
				pass.Reportf(call.Pos(), "failed Sync of the durable log file never reaches the poison transition")
			}
		case *ast.ReturnStmt:
			// Shape: return x.f.Sync() — the error escapes unpoisoned.
			for _, r := range s.Results {
				if call, ok := ast.Unparen(r).(*ast.CallExpr); ok && isFieldSync(pass, call) {
					pass.Reportf(call.Pos(), "error of a durable-file Sync is returned without the poison transition")
				}
			}
		}
		return true
	})
}

// fieldSyncCall returns the durable-field Sync call assigned by a, if any.
func fieldSyncCall(pass *anz.Pass, a *ast.AssignStmt) *ast.CallExpr {
	if len(a.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr)
	if !ok || !isFieldSync(pass, call) {
		return nil
	}
	return call
}

// isFieldSync recognizes x.f.Sync() where f is a struct field of type
// iofault.File (or a fixture stand-in named File): the long-lived durable
// handle, as opposed to a local temporary being built and certified. The
// per-stream variant x.files[i].Sync() — a field of slice or array of
// File, indexed — is the same obligation: in a sharded log set each
// stream file is an independent durable handle, and a failed force of any
// one of them must fail-stop the whole set.
func isFieldSync(pass *anz.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sync" {
		return false
	}
	x := ast.Unparen(sel.X)
	if ix, ok := x.(*ast.IndexExpr); ok {
		x = ast.Unparen(ix.X)
	}
	recv, ok := x.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fieldObj, ok := pass.TypesInfo.Uses[recv.Sel].(*types.Var)
	if !ok || !fieldObj.IsField() {
		return false
	}
	t := fieldObj.Type()
	switch u := t.Underlying().(type) {
	case *types.Slice:
		t = u.Elem()
	case *types.Array:
		t = u.Elem()
	}
	named, _ := t.(*types.Named)
	if named == nil {
		return false
	}
	if facts.IsNamed(named, "internal/iofault", "File") {
		return true
	}
	return named.Obj().Pkg() != nil &&
		strings.Contains(named.Obj().Pkg().Path(), "/testdata/") &&
		named.Obj().Name() == "File"
}

// poisonGuarded reports whether body contains an if statement whose
// condition mentions name and whose branches reach a poison call.
func poisonGuarded(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || found {
			return !found
		}
		if !mentions(ifs.Cond, name) {
			return true
		}
		if poisonsIn(ifs.Body) || poisonsIn(ifs.Else) {
			found = true
		}
		return !found
	})
	return found
}

// poisonsIn reports whether n contains a call whose callee name contains
// "poison" (poisonLocked, poison, Poison...).
func poisonsIn(n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if strings.Contains(strings.ToLower(calleeName(call)), "poison") {
				found = true
			}
		}
		return !found
	})
	return found
}

// mentions reports whether name occurs as an identifier inside e.
func mentions(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// calleeName extracts the bare called name of a call expression.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// calleeLabel renders the sink for a diagnostic ("SystemLog.Append").
func calleeLabel(pass *anz.Pass, call *ast.CallExpr) string {
	fn := facts.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return calleeName(call)
	}
	if recv := facts.RecvNamed(fn); recv != nil {
		return recv.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}
