// Package iopath enforces the repo's injectable-storage discipline: on
// the durable paths — the packages that write or read the stable state
// the paper's recovery guarantees depend on — every byte of file I/O must
// flow through iofault.FS / iofault.File, never through package os
// directly. The point is not style: the crash-point torture suite and the
// read-fault recovery tests interpose on iofault, so a raw os call is a
// write the tortures cannot cut short and a read the fault tests cannot
// corrupt — exactly the blind spot that let pre-fix recovery read its
// checkpoint anchor behind the fault layer's back.
//
// Two call shapes are diagnosed inside durable packages: a direct call to
// an os file function or *os.File method (os.Stat and os.MkdirAll are
// exempt — probes and directory creation are not data-path I/O), and a
// call to any function that transitively performs such I/O (a
// facts.PerformsIO summary computed bottom-up over the whole program, so
// a helper package cannot launder an os.WriteFile onto the durable path).
// Package iofault itself is the sanctioned boundary: calls into it carry
// no taint, and its own raw os calls are its reason to exist.
package iopath

import (
	"go/ast"
	"strings"

	"repro/internal/analysis/anz"
	"repro/internal/analysis/facts"
)

// Analyzer is the iopath pass.
var Analyzer = &anz.Analyzer{
	Name: "iopath",
	Doc:  "durable-path packages must do file I/O through iofault.FS, not package os",
	Run:  run,
}

// durablePkgs are the packages held to the discipline: everything that
// reads or writes checkpoint images, the system log, archive copies, or
// orchestrates them.
var durablePkgs = []string{
	"internal/wal",
	"internal/ckpt",
	"internal/archive",
	"internal/recovery",
	"internal/shard",
	"internal/core",
}

// inScope reports whether a package is held to the durable-path
// discipline. Test fixtures under testdata are in scope so the golden
// tests can pin diagnostics.
func inScope(importPath string) bool {
	for _, p := range durablePkgs {
		if strings.HasSuffix(importPath, p) {
			return true
		}
	}
	return strings.Contains(importPath, "/testdata/")
}

func run(pass *anz.Pass) error {
	// Summaries are computed for every package (the runner visits
	// dependencies first), reports only inside the durable scope.
	facts.SummarizeIO(pass)
	if !inScope(pass.Pkg.ImportPath) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sink, ok := facts.OSSink(pass.TypesInfo, call); ok {
				pass.Reportf(call.Pos(), "raw %s on the durable path; route file I/O through iofault.FS", sink)
				return true
			}
			callee := facts.Callee(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			// A callee that is itself held to the discipline is reported
			// where its own sink is; re-reporting every call up the chain
			// would bury the root cause.
			if callee.Pkg().Path() == pass.Pkg.ImportPath {
				return true
			}
			for _, p := range durablePkgs {
				if strings.HasSuffix(callee.Pkg().Path(), p) {
					return true
				}
			}
			if f, ok := pass.Fact(callee); ok {
				if io, ok := f.(facts.PerformsIO); ok {
					pass.Reportf(call.Pos(), "%s performs raw file I/O (%s) on the durable path; route it through iofault.FS", callee.Name(), io.Call)
				}
			}
			return true
		})
	}
	return nil
}
