package iopath_test

import (
	"testing"

	"repro/internal/analysis/anztest"
	"repro/internal/analysis/iopath"
)

func TestFixture(t *testing.T) {
	anztest.Run(t, ".", "../testdata/iopath", iopath.Analyzer)
}
