// Package guardedwrite statically enforces the paper's prescribed update
// interface: database bytes live in a mem.Arena, and the only code
// allowed to store into arena-backed memory is the update/maintenance
// machinery (the protect schemes, WAL replay, checkpoint image I/O,
// recovery). Everywhere else, a store through a slice obtained from an
// Arena accessor — Bytes, Slice, Page — is exactly the "direct physical
// corruption" of paper §1, performed by the repo's own code instead of a
// wild pointer.
//
// The pass taints slices returned by Arena accessors and every value
// derived from them by assignment, reslicing or append, then flags
// element stores, copy-into, and compound assignments whose destination
// is tainted. Maintenance packages (internal/protect, internal/wal,
// internal/ckpt, internal/recovery) are allowlisted wholesale; the
// handful of sanctioned sites elsewhere — the fault injector's
// deliberate wild-write primitive, the rollback paths that restore undo
// images — carry //dbvet:allow guardedwrite directives naming their
// justification.
package guardedwrite

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/anz"
)

// Analyzer is the guardedwrite pass.
var Analyzer = &anz.Analyzer{
	Name: "guardedwrite",
	Doc:  "flag stores into mem.Arena-backed slices outside the update/maintenance machinery",
	Run:  run,
}

// allowedPkgs are the maintenance packages whose whole job is writing
// the image: the prescribed-interface implementation itself.
var allowedPkgs = []string{
	"internal/protect",
	"internal/wal",
	"internal/ckpt",
	"internal/recovery",
}

func run(pass *anz.Pass) error {
	path := pass.Pkg.ImportPath
	for _, allowed := range allowedPkgs {
		if strings.HasSuffix(path, allowed) {
			return nil
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
		}
	}
	return nil
}

// checkFunc runs the per-function taint analysis. Taint is propagated
// through local assignments to a fixpoint (derivation chains are short),
// then sinks are flagged.
func checkFunc(pass *anz.Pass, body *ast.BlockStmt) {
	tainted := make(map[types.Object]bool)
	isTainted := func(e ast.Expr) bool { return exprTainted(pass, tainted, e) }

	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = pass.TypesInfo.Uses[id]
					}
					if obj != nil && !tainted[obj] && isTainted(n.Rhs[i]) {
						tainted[obj] = true
						changed = true
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) != len(n.Values) {
					return true
				}
				for i, id := range n.Names {
					obj := pass.TypesInfo.Defs[id]
					if obj != nil && !tainted[obj] && isTainted(n.Values[i]) {
						tainted[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}

	report := func(pos ast.Node, what string) {
		pass.Reportf(pos.Pos(), "%s into mem.Arena-backed memory outside the prescribed update interface (guarded-write discipline, DESIGN.md)", what)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isTainted(ix.X) {
					report(n, "store")
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok && isTainted(ix.X) {
				report(n, "store")
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "copy" && len(n.Args) == 2 {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && isTainted(n.Args[0]) {
					report(n, "copy")
				}
			}
		}
		return true
	})
}

// exprTainted reports whether e evaluates to arena-backed memory: a
// direct Arena accessor call, a tainted local, or a reslice/append of
// either.
func exprTainted(pass *anz.Pass, tainted map[types.Object]bool, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = pass.TypesInfo.Defs[e]
		}
		return obj != nil && tainted[obj]
	case *ast.CallExpr:
		if isArenaAccessor(pass, e) {
			return true
		}
		// append(tainted, ...) aliases the arena when capacity suffices.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				return exprTainted(pass, tainted, e.Args[0])
			}
		}
	case *ast.SliceExpr:
		return exprTainted(pass, tainted, e.X)
	}
	return false
}

// isArenaAccessor matches calls to (*mem.Arena).Bytes, .Slice, .Page.
func isArenaAccessor(pass *anz.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Bytes", "Slice", "Page":
	default:
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Arena" && obj.Pkg() != nil && obj.Pkg().Name() == "mem"
}
