package guardedwrite_test

import (
	"testing"

	"repro/internal/analysis/anztest"
	"repro/internal/analysis/guardedwrite"
)

func TestFixture(t *testing.T) {
	anztest.Run(t, ".", "../testdata/guardedwrite", guardedwrite.Analyzer)
}
