package anz

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/load"
)

// The canonical dbvet passes. The allow directive validates its pass
// operand against this set so a typo ("latchorderr") cannot silently
// suppress nothing.
var knownPasses = map[string]bool{
	"latchorder":   true,
	"guardedwrite": true,
	"cwpair":       true,
	"obsnames":     true,
	"iopath":       true,
	"errflow":      true,
	"twophase":     true,
	"ctxflow":      true,
	"lockfield":    true,
	"latchcycle":   true,
	"determinism":  true,
}

// Latch classes of the documented partial order, in acquisition order:
// a latch may only be acquired while no latch of an equal or later class
// is held. See DESIGN.md "Machine-checked invariants".
const (
	LatchProtection = "protection"
	LatchCodeword   = "codeword"
	LatchSyslog     = "syslog"
	// LatchStream is the per-stream log-tail latch of a sharded log set.
	// It ranks with the syslog class for the cross-class order, but adds
	// its own exclusion: streams are latched independently and flushed by
	// concurrent workers, so no path may hold two stream latches at once
	// (any-stream-before-none — the second acquisition could deadlock
	// against a sibling worker holding the pair in the other order).
	LatchStream = "stream"
)

// LatchRank maps a latch class to its position in the partial order
// (lower acquires first). Unknown classes rank 0 (unordered).
func LatchRank(class string) int {
	switch class {
	case LatchProtection:
		return 1
	case LatchCodeword:
		return 2
	case LatchSyslog, LatchStream:
		return 3
	}
	return 0
}

// allowIndex records //dbvet:allow directives: file → line → pass set.
type allowIndex map[string]map[int]map[string]bool

// allowed reports whether a diagnostic of pass at pos is suppressed by a
// directive on the same line or the line immediately above it.
func (ai allowIndex) allowed(pass string, pos token.Position) bool {
	lines := ai[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][pass] || lines[pos.Line-1][pass]
}

// collectDirectives scans the comments of prog's target packages for
// //dbvet:allow directives, returning the suppression index and a
// diagnostic (pass "dbvet") for every malformed directive: unknown pass
// name or missing reason. Only target packages are scanned — dependency
// packages are analyzed for facts, not reported on.
func collectDirectives(prog *load.Program) (allowIndex, []Diagnostic) {
	ai := make(allowIndex)
	var diags []Diagnostic
	bad := func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{Pos: prog.Fset.Position(pos), Message: msg, Pass: "dbvet"})
	}
	for _, pkg := range prog.Targets {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//dbvet:allow")
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						bad(c.Pos(), "malformed //dbvet:allow: missing pass name")
						continue
					}
					pass := fields[0]
					if !knownPasses[pass] {
						bad(c.Pos(), "//dbvet:allow names unknown pass "+pass)
						continue
					}
					if len(fields) < 2 {
						bad(c.Pos(), "//dbvet:allow "+pass+": a reason is required")
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					lines := ai[pos.Filename]
					if lines == nil {
						lines = make(map[int]map[string]bool)
						ai[pos.Filename] = lines
					}
					passes := lines[pos.Line]
					if passes == nil {
						passes = make(map[string]bool)
						lines[pos.Line] = passes
					}
					passes[pass] = true
				}
			}
		}
	}
	return ai, diags
}

// CountAllows tallies the well-formed //dbvet:allow directives of
// prog's target packages, by pass name. This is the suppression-debt
// measure behind `dbvet -stats`: every allow site is a hand-argued
// exception to a machine-checked invariant, and the debt gate holds the
// count to a checked-in baseline so exceptions cannot accrete silently.
// Malformed directives (unknown pass, missing reason) are not counted —
// they are diagnostics, not debt.
func CountAllows(prog *load.Program) map[string]int {
	counts := make(map[string]int)
	for _, pkg := range prog.Targets {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//dbvet:allow")
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) < 2 || !knownPasses[fields[0]] {
						continue
					}
					counts[fields[0]]++
				}
			}
		}
	}
	return counts
}

// LatchClasses extracts //dbvet:latch <class> annotations from the
// declarations of pkg: for every struct field or package-level variable
// whose doc or trailing comment carries the directive, the declared
// object is mapped to its latch class. The latchorder pass combines
// these explicit classifications with its name-based fallback.
func LatchClasses(pass *Pass) map[types.Object]string {
	classes := make(map[types.Object]string)
	classOf := func(groups ...*ast.CommentGroup) string {
		for _, g := range groups {
			if g == nil {
				continue
			}
			for _, c := range g.List {
				if rest, ok := strings.CutPrefix(c.Text, "//dbvet:latch"); ok {
					// Only the first word is the class; the remainder is
					// free-form commentary.
					if fields := strings.Fields(rest); len(fields) > 0 {
						return fields[0]
					}
				}
			}
		}
		return ""
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					cls := classOf(field.Doc, field.Comment)
					if cls == "" {
						continue
					}
					for _, name := range field.Names {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							classes[obj] = cls
						}
					}
				}
			case *ast.ValueSpec:
				if cls := classOf(n.Doc, n.Comment); cls != "" {
					for _, name := range n.Names {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							classes[obj] = cls
						}
					}
				}
			}
			return true
		})
	}
	return classes
}
