package anz

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the framework's reusable branch-path walker: the
// "does X happen on every path after Y" skeleton that latchorder
// (unlock-on-all-paths) and cwpair (fold-on-all-success-paths) each grew
// privately, extracted and generalized so protocol passes (twophase's
// prepare-must-resolve post-dominance, errflow's poison-on-failure) share
// one engine instead of a fourth hand-rolled statement walk.
//
// The walker drives a PathState through a function body in execution
// order. At a branch the state is cloned per arm; where arms meet again
// the surviving states are joined with Merge — so a hook observing the
// state at a statement sees exactly the facts that hold on *every* path
// reaching it (for AND-merged fields) or on *some* path (for OR-merged
// fields; the state implementation chooses per field). Loop bodies are
// walked with the entry state itself, so effects established inside a
// loop persist after it — the shape 2PC takes (prepare every participant
// in a loop, resolve them in a later one) demands it, and the passes
// built on the walker check "must eventually happen" properties for
// which the zero-iteration case is vacuous.

// PathState is the analysis state threaded along control-flow paths.
type PathState interface {
	// Clone returns an independent copy for a branch arm.
	Clone() PathState
	// Merge joins the state of another path meeting this one; it may
	// mutate and return the receiver.
	Merge(other PathState) PathState
}

// PathHooks receives the walk's events. Nil hooks are skipped.
type PathHooks struct {
	// Stmt fires for every leaf (non-control-flow) statement in execution
	// order: expression statements, assignments, declarations, defers, go
	// statements, channel sends, branch inits and posts, select comm
	// clauses. Control-flow statements are decomposed — their branches are
	// walked, not delivered whole — so a hook inspecting a delivered
	// statement never sees the same call twice.
	Stmt func(s ast.Stmt, st PathState)
	// Expr fires for conditions and tags (if/for conditions, switch tags,
	// range operands) on the path evaluating them.
	Expr func(e ast.Expr, st PathState)
	// Return fires at every return statement with the state after the
	// statement's own calls would run. The walk treats the path as
	// terminated afterwards.
	Return func(ret *ast.ReturnStmt, st PathState)
	// Exit fires when control falls off the end of the walked body (an
	// implicit return).
	Exit func(st PathState)
}

// WalkPaths drives st through body, invoking h's hooks. info (optional)
// lets the walker recognize the builtin panic as path termination.
func WalkPaths(body *ast.BlockStmt, st PathState, info *types.Info, h *PathHooks) {
	w := &pathWalker{info: info, h: h}
	out, terminated := w.stmts(body.List, st)
	if !terminated && h.Exit != nil {
		h.Exit(out)
	}
}

type pathWalker struct {
	info *types.Info
	h    *PathHooks
}

func (w *pathWalker) leaf(s ast.Stmt, st PathState) {
	if s != nil && w.h.Stmt != nil {
		w.h.Stmt(s, st)
	}
}

func (w *pathWalker) expr(e ast.Expr, st PathState) {
	if e != nil && w.h.Expr != nil {
		w.h.Expr(e, st)
	}
}

// stmts walks a statement list; terminated reports that no path reaches
// the end of the list (every path returned, panicked or branched away).
func (w *pathWalker) stmts(list []ast.Stmt, st PathState) (PathState, bool) {
	for _, s := range list {
		var term bool
		st, term = w.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (w *pathWalker) stmt(s ast.Stmt, st PathState) (PathState, bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.stmts(s.List, st)

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)

	case *ast.ReturnStmt:
		if w.h.Return != nil {
			w.h.Return(s, st)
		}
		return st, true

	case *ast.BranchStmt:
		// break/continue/goto leave this path's straight-line flow; the
		// walker conservatively ends the path (like a return without the
		// return hook).
		return st, true

	case *ast.IfStmt:
		w.leaf(s.Init, st)
		w.expr(s.Cond, st)
		thenOut, thenTerm := w.stmts(s.Body.List, st.Clone())
		elseOut, elseTerm := st, false
		if s.Else != nil {
			elseOut, elseTerm = w.stmt(s.Else, st.Clone())
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			return thenOut.Merge(elseOut), false
		}

	case *ast.ForStmt:
		w.leaf(s.Init, st)
		w.expr(s.Cond, st)
		w.leaf(s.Post, st)
		// The body mutates st in place: what the loop establishes holds
		// after it (see the package comment on the zero-iteration case).
		out, _ := w.stmts(s.Body.List, st)
		if s.Cond == nil && !hasLoopBreak(s.Body) {
			return out, true // for {} never falls through
		}
		return out, false

	case *ast.RangeStmt:
		w.expr(s.X, st)
		out, _ := w.stmts(s.Body.List, st)
		return out, false

	case *ast.SwitchStmt:
		w.leaf(s.Init, st)
		w.expr(s.Tag, st)
		return w.clauses(s.Body, st, hasDefaultClause(s.Body))

	case *ast.TypeSwitchStmt:
		w.leaf(s.Init, st)
		w.leaf(s.Assign, st)
		return w.clauses(s.Body, st, hasDefaultClause(s.Body))

	case *ast.SelectStmt:
		// A select blocks until some clause runs: exhaustive like a
		// switch with default.
		return w.clauses(s.Body, st, true)

	case *ast.ExprStmt:
		if w.isPanic(s.X) {
			w.leaf(s, st)
			return st, true
		}
		w.leaf(s, st)
		return st, false

	default:
		// Assignments, declarations, defers, go statements, sends,
		// inc/dec: leaf statements.
		w.leaf(s, st)
		return st, false
	}
}

// clauses walks the case/comm clauses of body, each with a cloned state,
// and joins the survivors. Without a default clause the zero-case
// fall-through path (the entry state) joins too.
func (w *pathWalker) clauses(body *ast.BlockStmt, st PathState, exhaustive bool) (PathState, bool) {
	var merged PathState
	for _, cl := range body.List {
		var stmts []ast.Stmt
		arm := st.Clone()
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				w.expr(e, arm)
			}
			stmts = cl.Body
		case *ast.CommClause:
			w.leaf(cl.Comm, arm)
			stmts = cl.Body
		}
		out, term := w.stmts(stmts, arm)
		if term {
			continue
		}
		if merged == nil {
			merged = out
		} else {
			merged = merged.Merge(out)
		}
	}
	if !exhaustive {
		if merged == nil {
			return st, false
		}
		return merged.Merge(st), false
	}
	if merged == nil {
		// Every clause terminated (and the statement is exhaustive): no
		// path falls through.
		return st, len(body.List) > 0
	}
	return merged, false
}

// isPanic recognizes a call to the builtin panic.
func (w *pathWalker) isPanic(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	if w.info == nil {
		return true
	}
	_, isBuiltin := w.info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// hasLoopBreak reports whether body contains a break exiting this loop
// (plain breaks only; nested loops, switches and selects consume theirs).
func hasLoopBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			return false
		}
		return !found
	})
	return found
}

// hasDefaultClause reports whether a switch body has a default case.
func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}
