// Package anz is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface that dbvet's passes are written
// against: an Analyzer is a named check, a Pass is one analyzer applied
// to one type-checked package, and diagnostics are reported through the
// pass. The repo's stdlib-only rule (see README) keeps x/tools out of
// go.mod, so the two dozen lines of driver plumbing that
// analysis/multichecker would provide live here instead; pass code is
// written so that a future migration onto the real go/analysis API is a
// mechanical rename.
//
// Beyond the x/tools core the framework carries the two dbvet comment
// directives:
//
//	//dbvet:allow <pass> <reason>
//	//dbvet:latch <class>
//
// The allow directive, on or immediately above an offending line,
// suppresses that pass's diagnostics for the line — the explicit escape
// hatch for intentional violations (the fault injector's deliberate wild
// writes, update brackets that span functions). The latch directive
// classifies a latch field declaration into the documented partial order
// (protection → codeword → syslog) for the latchorder pass; see
// directives.go.
package anz

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"

	"repro/internal/analysis/load"
)

// Analyzer is one static check. Mirrors analysis.Analyzer.
type Analyzer struct {
	// Name identifies the pass in diagnostics and in allow directives.
	Name string
	// Doc is the one-line description shown by dbvet's usage text.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Diagnostic is one reported problem, positioned and attributed to the
// pass that found it.
type Diagnostic struct {
	Pos     token.Position
	Message string
	Pass    string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Pass)
}

// Pass carries one analyzer's application to one package. Mirrors
// analysis.Pass, with object facts folded in (our runner visits packages
// in dependency order, so a fact exported while analyzing an imported
// package is visible when its importers are analyzed).
type Pass struct {
	Analyzer  *Analyzer
	Prog      *load.Program
	Pkg       *load.Package
	Fset      *token.FileSet
	Files     []*ast.File
	TypesInfo *types.Info

	facts  map[types.Object]any
	shared map[string]any
	report func(d Diagnostic)
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
		Pass:    p.Analyzer.Name,
	})
}

// ExportFact attaches a fact to obj, visible to later packages analyzed
// by the same analyzer in this run.
func (p *Pass) ExportFact(obj types.Object, fact any) {
	if obj != nil {
		p.facts[obj] = fact
	}
}

// Fact returns the fact attached to obj by this analyzer, if any.
func (p *Pass) Fact(obj types.Object) (any, bool) {
	f, ok := p.facts[obj]
	return f, ok
}

// Shared returns a scratch map scoped to this analyzer's whole run,
// shared across packages. Used for program-wide accumulations that are
// not keyed by an object (e.g. obsnames' name→kind table).
func (p *Pass) Shared() map[string]any { return p.shared }

// Run applies each analyzer to every non-stdlib package of prog in
// dependency order (so facts flow from imported packages to importers)
// and returns the surviving diagnostics of the target packages, sorted
// by position. Diagnostics on lines covered by a matching
// //dbvet:allow directive are suppressed; malformed directives are
// themselves reported under the pass name "dbvet".
//
// Analyzers run concurrently, one goroutine each: facts and shared state
// are per-analyzer, the loaded program is read-only, and each goroutine
// appends to its own diagnostic slice — package dependency order is
// preserved within every analyzer. The parallelism is what keeps the
// `make vet` wall time flat as the pass count grows (the dominant cost,
// loading and type-checking the tree, is paid once up front by the
// caller).
func Run(prog *load.Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	targets := make(map[*load.Package]bool, len(prog.Targets))
	for _, pkg := range prog.Targets {
		targets[pkg] = true
	}

	allows, diags := collectDirectives(prog)

	perAnalyzer := make([][]Diagnostic, len(analyzers))
	errs := make([]error, len(analyzers))
	var wg sync.WaitGroup
	for i, a := range analyzers {
		wg.Add(1)
		go func(i int, a *Analyzer) {
			defer wg.Done()
			facts := make(map[types.Object]any)
			shared := make(map[string]any)
			for _, pkg := range prog.Packages {
				if pkg.Standard || pkg.Types == nil {
					continue
				}
				isTarget := targets[pkg]
				pass := &Pass{
					Analyzer:  a,
					Prog:      prog,
					Pkg:       pkg,
					Fset:      prog.Fset,
					Files:     pkg.Syntax,
					TypesInfo: pkg.TypesInfo,
					facts:     facts,
					shared:    shared,
					report: func(d Diagnostic) {
						if !isTarget {
							return
						}
						if allows.allowed(a.Name, d.Pos) {
							return
						}
						perAnalyzer[i] = append(perAnalyzer[i], d)
					},
				}
				if err := a.Run(pass); err != nil {
					errs[i] = fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
					return
				}
			}
		}(i, a)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, ds := range perAnalyzer {
		diags = append(diags, ds...)
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Pass < diags[j].Pass
	})
	return diags, nil
}
