package lockfield_test

import (
	"testing"

	"repro/internal/analysis/anztest"
	"repro/internal/analysis/lockfield"
)

func TestFixture(t *testing.T) {
	anztest.Run(t, ".", "../testdata/lockfield", lockfield.Analyzer)
}
