// Package lockfield infers, for every data field of a latch-carrying
// struct in the engine's concurrent packages, the lock that guards it —
// and reports the access sites that break the inferred discipline.
//
// The paper's protection scheme hangs its correctness on hand-written
// comments of the form "guarded by mu": the per-stream tail latch guards
// the stamped/durable GSN watermarks, the router's decision mutex guards
// the in-doubt decision maps, the checkpoint set's mutex guards the
// dirty map. dbvet's latchorder pass checks how latches nest but not
// *what they protect*; this pass closes that gap with a lockset
// inference in the Eraser tradition, adapted to static form:
//
//  1. A struct is "guardable" when it declares at least one latch field
//     (latch.Latch, latch.Striped, sync.Mutex, sync.RWMutex).
//  2. At every read or write of a guardable struct's data fields the
//     pass computes the set of locks held *for that receiver* — via
//     direct x.mu.Lock() brackets, latch aliases (lk := t.latchFor(r)),
//     Striped.AcquireRange guards, and the *Locked method-suffix
//     convention (the caller holds the latch).
//  3. Per field, the candidate lock is the one held at the most access
//     sites. Sites where the candidate is not held are reported when
//     the guarded sites dominate (at least two guarded sites, and
//     strictly more guarded than bare) — the "guarded on some paths,
//     bare on others" shape that signals a forgotten bracket rather
//     than an unguarded-by-design field.
//
// Deliberate exemptions, each an invariant of its own:
//   - constructor-shaped functions (New*/new*/Open*/open*/init*): the
//     value is not yet shared, so bare stores are the norm;
//   - methods whose name ends in "Locked": the receiver's latch is held
//     by the caller per the repo-wide suffix convention;
//   - fields of atomic, channel, or lock type, and obs metric handles
//     (Counter/Gauge/Histogram/Registry): internally synchronized;
//   - closures inherit the spawner's held set (a sort.Slice comparator
//     runs under the caller's latch; a goroutine that touches guarded
//     state bare is under-reported, never false-positive).
package lockfield

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/anz"
)

// Analyzer is the lockfield pass.
var Analyzer = &anz.Analyzer{
	Name: "lockfield",
	Doc:  "struct fields guarded by a latch on most paths must not be accessed bare on others",
	Run:  run,
}

// scopePkgs are the packages whose structs are held to the inferred
// lockset discipline: everything that shares mutable engine state
// across goroutines.
var scopePkgs = []string{
	"internal/wal",
	"internal/shard",
	"internal/ckpt",
	"internal/lockmgr",
	"internal/region",
}

func inScope(importPath string) bool {
	for _, p := range scopePkgs {
		if strings.HasSuffix(importPath, p) {
			return true
		}
	}
	return strings.Contains(importPath, "/testdata/")
}

// heldLock is one lock known held at a program point: the rendered
// receiver expression it belongs to and the lock field's name ("*" when
// the specific field is unknown — accessor aliases and the *Locked
// caller-holds convention).
type heldLock struct {
	base string
	lock string
}

// site is one access of a tracked field.
type site struct {
	pos   token.Pos
	write bool
	// held lists the lock names held for the access's receiver ("*"
	// matches any candidate).
	held []string
}

// fieldInfo accumulates a field's access sites across the package.
type fieldInfo struct {
	fld   *types.Var
	owner string // struct type name, for diagnostics
	sites []*site
}

type checker struct {
	pass      *anz.Pass
	fields    map[*types.Var]*fieldInfo
	guardable map[*types.Named]bool
	// aliases maps local latch variables to the receiver they guard.
	aliases map[types.Object]heldLock
}

func run(pass *anz.Pass) error {
	if !inScope(pass.Pkg.ImportPath) {
		return nil
	}
	c := &checker{
		pass:      pass,
		fields:    make(map[*types.Var]*fieldInfo),
		guardable: make(map[*types.Named]bool),
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || constructorShaped(fd.Name.Name) {
				continue
			}
			c.aliases = make(map[types.Object]heldLock)
			var held []heldLock
			// The *Locked suffix convention: the caller holds (one of)
			// the receiver's latches for the whole body.
			if recv := recvName(fd); recv != "" && strings.HasSuffix(fd.Name.Name, "Locked") {
				held = append(held, heldLock{base: recv, lock: "*"})
			}
			c.walkStmts(fd.Body.List, held)
		}
	}
	c.report()
	return nil
}

// constructorShaped reports functions in which the receiver (or result)
// is still private to one goroutine, so bare stores are expected.
func constructorShaped(name string) bool {
	for _, p := range []string{"new", "New", "open", "Open", "init", "Init"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// ---- the walk ----

// walkStmts threads the held set through a statement list, cloning it
// into branches so a lock taken inside an if-arm does not leak past it.
func (c *checker) walkStmts(stmts []ast.Stmt, held []heldLock) []heldLock {
	for _, stmt := range stmts {
		held = c.walkStmt(stmt, held)
	}
	return held
}

func cloneHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

func (c *checker) walkStmt(stmt ast.Stmt, held []heldLock) []heldLock {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		return c.scanExpr(s.X, held, nil)
	case *ast.AssignStmt:
		return c.scanAssign(s, held)
	case *ast.IncDecStmt:
		if sel, ok := ast.Unparen(s.X).(*ast.SelectorExpr); ok {
			c.recordAccess(sel, held, true)
			return c.scanExpr(s.X, held, map[ast.Expr]bool{sel: true})
		}
		return c.scanExpr(s.X, held, nil)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						held = c.scanExpr(v, held, nil)
					}
				}
			}
		}
		return held
	case *ast.DeferStmt:
		// A deferred unlock runs at return; the latch stays held for
		// the rest of the body. Deferred closures are scanned for
		// accesses under the current held set.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.walkStmts(lit.Body.List, cloneHeld(held))
		}
		return held
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			held = c.scanExpr(r, held, nil)
		}
		return held
	case *ast.IfStmt:
		if s.Init != nil {
			held = c.walkStmt(s.Init, held)
		}
		held = c.scanExpr(s.Cond, held, nil)
		c.walkStmts(s.Body.List, cloneHeld(held))
		if s.Else != nil {
			c.walkStmt(s.Else, cloneHeld(held))
		}
		return held
	case *ast.ForStmt:
		if s.Init != nil {
			held = c.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			c.scanExpr(s.Cond, cloneHeld(held), nil)
		}
		c.walkStmts(s.Body.List, cloneHeld(held))
		return held
	case *ast.RangeStmt:
		c.scanExpr(s.X, held, nil)
		c.walkStmts(s.Body.List, cloneHeld(held))
		return held
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = c.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			held = c.scanExpr(s.Tag, held, nil)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, cloneHeld(held))
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, cloneHeld(held))
			}
		}
		return held
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				c.walkStmts(cc.Body, cloneHeld(held))
			}
		}
		return held
	case *ast.BlockStmt:
		return c.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, held)
	case *ast.GoStmt:
		// A spawned goroutine runs under whatever latches it takes
		// itself; accesses inside it against the spawner's held set
		// would be wrong in both directions, so inherit (see package
		// doc: under-report, never false-positive).
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.walkStmts(lit.Body.List, cloneHeld(held))
		}
		return held
	case *ast.SendStmt:
		held = c.scanExpr(s.Chan, held, nil)
		return c.scanExpr(s.Value, held, nil)
	}
	return held
}

// scanAssign records aliases, classifies LHS field writes, and scans
// both sides for lock operations and further accesses.
func (c *checker) scanAssign(s *ast.AssignStmt, held []heldLock) []heldLock {
	c.recordAliases(s)
	writes := make(map[ast.Expr]bool)
	for _, lhs := range s.Lhs {
		if sel := baseSelector(lhs); sel != nil {
			c.recordAccess(sel, held, true)
			writes[sel] = true
		}
	}
	for _, lhs := range s.Lhs {
		held = c.scanExpr(lhs, held, writes)
	}
	for _, rhs := range s.Rhs {
		held = c.scanExpr(rhs, held, writes)
	}
	return held
}

// scanExpr visits an expression in evaluation order, updating the held
// set at lock operations and recording tracked-field accesses. seen
// suppresses re-recording selectors already classified as writes.
func (c *checker) scanExpr(e ast.Expr, held []heldLock, seen map[ast.Expr]bool) []heldLock {
	if e == nil {
		return held
	}
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.walkStmts(n.Body.List, cloneHeld(held))
			return false
		case *ast.CallExpr:
			if hl, op, ok := c.lockOp(n); ok {
				switch op {
				case "acquire":
					held = append(held, hl)
				case "release":
					held = removeHeld(held, hl)
				}
				// Still descend: the receiver expression may itself
				// read tracked fields (s.streams[i].mu.Lock()).
			}
		case *ast.SelectorExpr:
			if seen == nil || !seen[n] {
				c.recordAccess(n, held, false)
			}
			// Descend into the base but not the Sel identifier.
			ast.Inspect(n.X, visit)
			return false
		}
		return true
	}
	ast.Inspect(e, visit)
	return held
}

// baseSelector unwraps an assignment target to the field selector being
// stored through: t.cws[r] = 0 and *s.ptr = x both write the field.
func baseSelector(e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func removeHeld(held []heldLock, hl heldLock) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == hl {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

// lockOp recognizes lock mutations: Lock/RLock (acquire), Unlock/RUnlock
// (release), Striped.AcquireRange (acquire). The returned heldLock names
// the receiver the lock protects.
func (c *checker) lockOp(call *ast.CallExpr) (heldLock, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return heldLock{}, "", false
	}
	tv, ok := c.pass.TypesInfo.Types[sel.X]
	if !ok {
		return heldLock{}, "", false
	}
	t := tv.Type
	var op string
	switch sel.Sel.Name {
	case "Lock", "RLock":
		if isLatchType(t, "Latch") || isSyncMutex(t) {
			op = "acquire"
		}
	case "Unlock", "RUnlock":
		if isLatchType(t, "Latch") || isSyncMutex(t) {
			op = "release"
		}
	case "AcquireRange":
		if isLatchType(t, "Striped") {
			return c.lockRef(sel.X), "acquire", true
		}
	}
	if op == "" {
		return heldLock{}, "", false
	}
	return c.lockRef(sel.X), op, true
}

// lockRef resolves the lock expression of a Lock call to the receiver
// it guards: x.mu → {x, mu}; an aliased local resolves through the
// alias table; anything else guards only its own render.
func (c *checker) lockRef(e ast.Expr) heldLock {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return heldLock{base: render(e.X), lock: e.Sel.Name}
	case *ast.Ident:
		if obj := c.pass.TypesInfo.Uses[e]; obj != nil {
			if hl, ok := c.aliases[obj]; ok {
				return hl
			}
		}
		return heldLock{base: e.Name, lock: "*"}
	case *ast.UnaryExpr:
		return c.lockRef(e.X)
	}
	return heldLock{base: render(e), lock: "*"}
}

// recordAliases notes lk := s.mu and lk := s.latchFor(r) so a later
// lk.Lock() is credited to s.
func (c *checker) recordAliases(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := c.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = c.pass.TypesInfo.Uses[id]
		}
		if obj == nil || !isLatchHandle(obj.Type()) {
			continue
		}
		switch rhs := ast.Unparen(as.Rhs[i]).(type) {
		case *ast.SelectorExpr:
			c.aliases[obj] = heldLock{base: render(rhs.X), lock: rhs.Sel.Name}
		case *ast.UnaryExpr:
			if sel, ok := ast.Unparen(rhs.X).(*ast.SelectorExpr); ok {
				c.aliases[obj] = heldLock{base: render(sel.X), lock: sel.Sel.Name}
			}
		case *ast.CallExpr:
			// Accessor methods handing out one of the receiver's
			// latches (t.latchFor(r), s.prot.For(r)): which latch field
			// is unknown here, so the alias matches any candidate.
			if sel, ok := rhs.Fun.(*ast.SelectorExpr); ok {
				if tv, ok := c.pass.TypesInfo.Types[sel.X]; ok && isLatchType(tv.Type, "Striped") {
					if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
						c.aliases[obj] = heldLock{base: render(inner.X), lock: inner.Sel.Name}
						continue
					}
				}
				c.aliases[obj] = heldLock{base: render(sel.X), lock: "*"}
			}
		}
	}
}

// recordAccess classifies one selector expression: if it reads or
// writes a tracked data field of a guardable struct, the access and the
// locks held for its receiver are recorded.
func (c *checker) recordAccess(sel *ast.SelectorExpr, held []heldLock, write bool) {
	selection, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	fld, ok := selection.Obj().(*types.Var)
	if !ok || fld.Pkg() == nil || fld.Pkg().Path() != pkgPath(c.pass) {
		return
	}
	recvT := selection.Recv()
	if p, ok := recvT.(*types.Pointer); ok {
		recvT = p.Elem()
	}
	named, ok := recvT.(*types.Named)
	if !ok || !c.isGuardable(named) || !trackedField(fld.Type()) {
		return
	}
	base := render(sel.X)
	var names []string
	for _, hl := range held {
		if hl.base == base {
			names = append(names, hl.lock)
		}
	}
	fi := c.fields[fld]
	if fi == nil {
		fi = &fieldInfo{fld: fld, owner: named.Obj().Name()}
		c.fields[fld] = fi
	}
	fi.sites = append(fi.sites, &site{pos: sel.Pos(), write: write, held: names})
}

func pkgPath(pass *anz.Pass) string {
	if pass.Pkg.Types != nil {
		return pass.Pkg.Types.Path()
	}
	return pass.Pkg.ImportPath
}

// isGuardable reports whether the named struct declares a latch field.
func (c *checker) isGuardable(named *types.Named) bool {
	if g, ok := c.guardable[named]; ok {
		return g
	}
	st, ok := named.Underlying().(*types.Struct)
	g := false
	if ok {
		for i := 0; i < st.NumFields(); i++ {
			if isLockType(st.Field(i).Type()) {
				g = true
				break
			}
		}
	}
	c.guardable[named] = g
	return g
}

// ---- reporting ----

func (c *checker) report() {
	for _, fi := range c.fields {
		// Candidate lock: the specific lock name held at the most
		// sites; wildcard-held sites count toward every candidate.
		counts := make(map[string]int)
		for _, s := range fi.sites {
			for _, l := range s.held {
				if l != "*" {
					counts[l]++
				}
			}
		}
		candidate := "*"
		names := make([]string, 0, len(counts))
		for l := range counts {
			names = append(names, l)
		}
		sort.Strings(names)
		best := 0
		for _, l := range names {
			if counts[l] > best {
				best, candidate = counts[l], l
			}
		}
		guarded, bare := 0, 0
		var bareSites []*site
		for _, s := range fi.sites {
			if holdsCandidate(s.held, candidate) {
				guarded++
			} else {
				bare++
				bareSites = append(bareSites, s)
			}
		}
		if guarded < 2 || guarded <= bare {
			continue
		}
		lockName := candidate
		if lockName == "*" {
			lockName = "its latch"
		}
		for _, s := range bareSites {
			verb := "read"
			if s.write {
				verb = "written"
			}
			c.pass.Reportf(s.pos, "field %s of %s is guarded by %s at %d of %d sites but %s here with no latch held",
				fi.fld.Name(), fi.owner, lockName, guarded, guarded+bare, verb)
		}
	}
}

func holdsCandidate(held []string, candidate string) bool {
	for _, l := range held {
		if l == candidate || l == "*" || candidate == "*" {
			return true
		}
	}
	return false
}

// ---- type predicates ----

// trackedField excludes fields that synchronize themselves: locks,
// atomics, channels, wait groups, and obs metric handles.
func trackedField(t types.Type) bool {
	if isLockType(t) {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return false
	}
	base := t
	if p, ok := base.(*types.Pointer); ok {
		base = p.Elem()
	}
	if named, ok := base.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync/atomic", "sync":
				return false
			}
			if strings.HasSuffix(obj.Pkg().Path(), "internal/obs") {
				return false
			}
		}
	}
	return true
}

func isLockType(t types.Type) bool {
	return isLatchType(t, "Latch") || isLatchType(t, "Striped") || isSyncMutex(t)
}

func isLatchType(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Name() == "latch"
}

func isSyncMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return (obj.Name() == "Mutex" || obj.Name() == "RWMutex") && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// isLatchHandle reports lock-valued locals eligible as aliases.
func isLatchHandle(t types.Type) bool {
	return isLatchType(t, "Latch") || isLatchType(t, "Striped") || isSyncMutex(t)
}

func render(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return fmt.Sprintf("%T", e)
	}
	return buf.String()
}
