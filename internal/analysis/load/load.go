// Package load is dbvet's stdlib-only package loader: it resolves Go
// packages with `go list -deps -json`, parses their sources, and type
// checks them in dependency order with a map-backed importer. It stands
// in for golang.org/x/tools/go/packages, which the repo's zero-dependency
// rule keeps out of go.mod.
//
// Standard-library packages are type checked with IgnoreFuncBodies (only
// their exported API shape is needed to resolve the repo's own types),
// so a full load of the repository tree — including the transitive
// stdlib closure down to runtime — costs a few hundred milliseconds.
// Explicit paths under testdata directories resolve too (Go's wildcard
// expansion skips testdata, but a literal path does not), which is how
// the analysistest-style fixtures are loaded.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed, type-checked package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool

	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// TypeErrors collects type-checker complaints without aborting the
	// load; analysis of a package with errors proceeds best-effort.
	TypeErrors []error
}

// Program is a loaded package graph.
type Program struct {
	Fset *token.FileSet
	// Packages in dependency order: every package appears after all of
	// its imports.
	Packages []*Package
	ByPath   map[string]*Package
	// Targets are the packages named by the load patterns (the packages
	// to report on); Packages additionally holds their dependencies.
	Targets []*Package
}

// listEntry is the subset of `go list -json` output the loader uses.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list` in dir and decodes its JSON stream.
func goList(dir string, args ...string) ([]*listEntry, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json=ImportPath,Name,Dir,GoFiles,Imports,Standard,Error"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	var entries []*listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", args, err)
		}
		entries = append(entries, &e)
	}
	return entries, nil
}

// mapImporter resolves imports from the already-type-checked set.
type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p := m[path]; p != nil {
		return p, nil
	}
	return nil, fmt.Errorf("load: package %q not in dependency set", path)
}

// Load resolves patterns (run from dir) plus their transitive
// dependencies, parses and type checks everything, and returns the
// program. Patterns may name packages inside testdata directories by
// explicit path.
func Load(dir string, patterns ...string) (*Program, error) {
	deps, err := goList(dir, append([]string{"-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	roots, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	for _, e := range append(append([]*listEntry{}, deps...), roots...) {
		if e.Error != nil && e.Error.Err != "" {
			return nil, fmt.Errorf("load: %s: %s", e.ImportPath, e.Error.Err)
		}
	}
	rootSet := make(map[string]bool, len(roots))
	for _, e := range roots {
		rootSet[e.ImportPath] = true
	}

	prog := &Program{
		Fset:   token.NewFileSet(),
		ByPath: make(map[string]*Package, len(deps)),
	}
	typed := make(mapImporter, len(deps))

	// go list -deps emits dependencies before dependents, so a single
	// forward sweep type checks every import before its importers.
	for _, e := range deps {
		if e.ImportPath == "unsafe" {
			continue
		}
		pkg := &Package{
			ImportPath: e.ImportPath,
			Name:       e.Name,
			Dir:        e.Dir,
			GoFiles:    e.GoFiles,
			Standard:   e.Standard,
		}
		for _, name := range e.GoFiles {
			f, err := parser.ParseFile(prog.Fset, filepath.Join(e.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("load: %s: %v", e.ImportPath, err)
			}
			pkg.Syntax = append(pkg.Syntax, f)
		}
		pkg.TypesInfo = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		cfg := &types.Config{
			Importer: typed,
			Error: func(err error) {
				pkg.TypeErrors = append(pkg.TypeErrors, err)
			},
			// Stdlib bodies are irrelevant: only exported API shapes are
			// needed to resolve the analyzed packages' types.
			IgnoreFuncBodies: e.Standard,
		}
		tpkg, _ := cfg.Check(e.ImportPath, prog.Fset, pkg.Syntax, pkg.TypesInfo)
		pkg.Types = tpkg
		typed[e.ImportPath] = tpkg

		prog.Packages = append(prog.Packages, pkg)
		prog.ByPath[e.ImportPath] = pkg
		if rootSet[e.ImportPath] {
			prog.Targets = append(prog.Targets, pkg)
		}
	}
	// Surface hard type errors in the target packages: analyzing a
	// package that does not type check produces junk.
	for _, pkg := range prog.Targets {
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("load: %s: %d type errors, first: %v", pkg.ImportPath, len(pkg.TypeErrors), pkg.TypeErrors[0])
		}
	}
	return prog, nil
}
