// Package latchorder statically enforces the latch discipline documented
// in DESIGN.md:
//
//  1. Ordering. The three paper latches form a partial acquisition order
//     — protection latch → codeword latch → system-log latch — and no
//     code path may acquire a latch while holding one of an equal-or-
//     later class. The check is interprocedural: every function exports
//     a summary of the latch classes it (transitively) acquires, and a
//     call made while a latch is held is checked against the callee's
//     summary, so an inversion split across two functions (or hidden in
//     a worker-pool closure) is still reported.
//
//  2. Balance. A Lock/RLock on a latch.Latch, sync.Mutex or
//     sync.RWMutex — or a latch.Striped.AcquireRange guard — must be
//     released on every return path, either inline before each return
//     or by an immediate defer. Guards that escape (stored into a
//     token, returned to the caller) transfer ownership and are exempt;
//     brackets that intentionally return holding a latch carry a
//     //dbvet:allow latchorder directive naming the releasing function.
//
// Latches are classified by //dbvet:latch annotations on their field
// declarations (see internal/region's cwLatch, internal/wal's system
// log latch, the protect schemes' prot stripes), with a name-based
// fallback ("prot…" → protection, "cw…" → codeword, "…log…" → syslog)
// so unannotated code and test fixtures still classify.
//
// The analysis is deliberately conservative where static knowledge runs
// out: acquisitions inside a conditional branch or loop body are checked
// within that scope but not propagated past it, and interface method
// calls (whose implementations are unknown) contribute no summary.
package latchorder

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/anz"
)

// Analyzer is the latchorder pass.
var Analyzer = &anz.Analyzer{
	Name: "latchorder",
	Doc:  "check latch acquisition order (protection → codeword → syslog) and unlock-on-all-paths",
	Run:  run,
}

// fnFact is the exported per-function summary: the latch classes the
// function transitively acquires, and — for latch accessors — the class
// of the latch it returns.
type fnFact struct {
	Acquires     map[string]bool
	ReturnsLatch string
}

// fnInfo is the package-local pre-fixpoint summary.
type fnInfo struct {
	acquires map[string]bool
	callees  []*types.Func
}

type checker struct {
	pass       *anz.Pass
	fieldClass map[types.Object]string
	aliasClass map[types.Object]string
	// trans holds the package-local transitive acquire sets after the
	// call-graph fixpoint.
	trans map[*types.Func]map[string]bool
	// offenses dedups balance diagnostics per acquisition site.
	offenses map[token.Pos]string
}

func run(pass *anz.Pass) error {
	c := &checker{
		pass:       pass,
		fieldClass: anz.LatchClasses(pass),
		aliasClass: make(map[types.Object]string),
		trans:      make(map[*types.Func]map[string]bool),
		offenses:   make(map[token.Pos]string),
	}

	// Phase A: per-function direct summaries, then a fixpoint over the
	// package-local call graph, then fact export for importers.
	infos := make(map[*types.Func]*fnInfo)
	var order []*types.Func
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			infos[obj] = c.summarize(fd.Body)
			order = append(order, obj)
			c.trans[obj] = cloneSet(infos[obj].acquires)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			set := c.trans[fn]
			for _, callee := range infos[fn].callees {
				for cls := range c.calleeAcquires(callee) {
					if !set[cls] {
						set[cls] = true
						changed = true
					}
				}
			}
		}
	}
	for _, fn := range order {
		fact := fnFact{Acquires: c.trans[fn]}
		if cls := c.returnsLatchClass(fn, infos); cls != "" {
			fact.ReturnsLatch = cls
		}
		pass.ExportFact(fn, fact)
	}

	// Phase B: path-structured walk of every function body.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkBody(fd.Body)
			}
		}
	}
	for pos, msg := range c.offenses {
		pass.Reportf(pos, "%s", msg)
	}
	return nil
}

// returnsLatchClass classifies functions that hand out latches (e.g.
// region's latchFor): a single *latch.Latch result whose every return
// expression classifies to one class.
func (c *checker) returnsLatchClass(fn *types.Func, infos map[*types.Func]*fnInfo) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Results().Len() != 1 || !isLatchNamed(sig.Results().At(0).Type(), "Latch") {
		return ""
	}
	var body *ast.BlockStmt
	for _, file := range c.pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, _ := c.pass.TypesInfo.Defs[fd.Name].(*types.Func); obj == fn {
					body = fd.Body
				}
			}
		}
	}
	if body == nil {
		return ""
	}
	class := ""
	consistent := true
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		cls := c.classify(ret.Results[0])
		if cls == "" || (class != "" && class != cls) {
			consistent = false
			return true
		}
		class = cls
		return true
	})
	if !consistent {
		return ""
	}
	return class
}

// summarize computes a function body's direct latch acquisitions
// (including inside closures, which run under the function's latch
// regime when handed to the worker pool) and its resolvable callees.
func (c *checker) summarize(body *ast.BlockStmt) *fnInfo {
	info := &fnInfo{acquires: make(map[string]bool)}
	ast.Inspect(body, func(n ast.Node) bool {
		// Record latch aliases (l := s.prot.For(r)) so acquisitions
		// through locals classify.
		if as, ok := n.(*ast.AssignStmt); ok {
			c.recordAliases(as)
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, recv := c.lockOp(call); op == opAcquire || op == opAcquireGuard {
			if cls := c.classify(recv); cls != "" {
				info.acquires[cls] = true
			}
		} else if callee := calleeOf(c.pass.TypesInfo, call); callee != nil {
			info.callees = append(info.callees, callee)
		}
		return true
	})
	return info
}

// calleeAcquires resolves a callee's transitive acquire set from the
// package-local fixpoint or, cross-package, from its exported fact.
func (c *checker) calleeAcquires(fn *types.Func) map[string]bool {
	if set, ok := c.trans[fn]; ok {
		return set
	}
	if f, ok := c.pass.Fact(fn); ok {
		if fact, ok := f.(fnFact); ok {
			return fact.Acquires
		}
	}
	return nil
}

// ---- Phase B: the path walk ----

type lockOp int

const (
	opNone lockOp = iota
	opAcquire      // Lock / RLock on a latch or mutex
	opRelease      // Unlock / RUnlock
	opAcquireGuard // Striped.AcquireRange
	opReleaseGuard // MultiGuard.Release
)

type lockInfo struct {
	rend     string // rendered receiver expression, for release matching
	obj      types.Object
	class    string
	method   string // "Lock" or "RLock"; "guard" for MultiGuard
	pos      token.Pos
	deferred bool
	escaped  bool
}

type state struct {
	held []*lockInfo
}

func (s *state) clone() *state {
	return &state{held: append([]*lockInfo(nil), s.held...)}
}

func (c *checker) checkBody(body *ast.BlockStmt) {
	st := &state{}
	c.walkStmts(body.List, st)
	c.checkExit(st, "function exit")
}

// checkExit records a balance offense for every latch still held.
func (c *checker) checkExit(st *state, where string) {
	for _, l := range st.held {
		if l.deferred || l.escaped {
			continue
		}
		if l.method == "guard" {
			c.offenses[l.pos] = "guard from AcquireRange is not released on every return path (missing defer Release?)"
		} else {
			unlock := "Unlock"
			if l.method == "RLock" {
				unlock = "RUnlock"
			}
			c.offenses[l.pos] = l.rend + "." + l.method + "() is not released on every return path (missing defer " + l.rend + "." + unlock + "()?)"
		}
		_ = where
	}
}

func (c *checker) walkStmts(stmts []ast.Stmt, st *state) {
	for _, stmt := range stmts {
		c.walkStmt(stmt, st)
	}
}

func (c *checker) walkStmt(stmt ast.Stmt, st *state) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			c.handleCall(call, st, nil)
		}
	case *ast.AssignStmt:
		c.recordAliases(s)
		var assignTo *ast.Ident
		if len(s.Lhs) == 1 {
			assignTo, _ = s.Lhs[0].(*ast.Ident)
		}
		for _, rhs := range s.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				c.handleCall(call, st, assignTo)
			} else {
				c.scanEscapes(rhs, st)
				c.checkFuncLits(rhs)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						if call, ok := ast.Unparen(v).(*ast.CallExpr); ok {
							c.handleCall(call, st, nil)
						}
					}
				}
			}
		}
	case *ast.DeferStmt:
		c.handleDefer(s.Call, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.scanEscapes(r, st)
			c.checkFuncLits(r)
		}
		c.checkExit(st, "return")
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		c.checkFuncLits(s.Cond)
		c.walkStmts(s.Body.List, st.clone())
		if s.Else != nil {
			c.walkStmt(s.Else, st.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		c.walkStmts(s.Body.List, st.clone())
	case *ast.RangeStmt:
		c.walkStmts(s.Body.List, st.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, st.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, st.clone())
			}
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				c.walkStmts(cc.Body, st.clone())
			}
		}
	case *ast.BlockStmt:
		c.walkStmts(s.List, st)
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, st)
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.checkBody(lit.Body)
		}
		for _, a := range s.Call.Args {
			c.scanEscapes(a, st)
			c.checkFuncLits(a)
		}
	}
}

// handleCall processes one call in execution position: latch
// acquisitions and releases mutate the state; other calls are checked
// against their callee's acquire summary and may carry closure
// arguments that are analyzed as independent bodies.
func (c *checker) handleCall(call *ast.CallExpr, st *state, assignTo *ast.Ident) {
	op, recv := c.lockOp(call)
	switch op {
	case opAcquire:
		cls := c.classify(recv)
		c.orderCheck(call, cls, st, "")
		sel := call.Fun.(*ast.SelectorExpr)
		st.held = append(st.held, &lockInfo{
			rend:   c.render(recv),
			class:  cls,
			method: sel.Sel.Name,
			pos:    call.Pos(),
		})
		return
	case opRelease:
		sel := call.Fun.(*ast.SelectorExpr)
		c.release(st, c.render(recv), unlockMatches(sel.Sel.Name), false)
		return
	case opAcquireGuard:
		cls := c.classify(recv)
		c.orderCheck(call, cls, st, "")
		li := &lockInfo{rend: "", class: cls, method: "guard", pos: call.Pos()}
		if assignTo != nil && assignTo.Name != "_" {
			li.rend = assignTo.Name
			li.obj = c.pass.TypesInfo.Defs[assignTo]
		} else {
			// Guard value not bound to a local: ownership moved
			// somewhere this analysis cannot follow.
			li.escaped = true
		}
		st.held = append(st.held, li)
		return
	case opReleaseGuard:
		c.release(st, c.render(recv), "guard", false)
		return
	}
	// Interprocedural order check via the callee's summary.
	if callee := calleeOf(c.pass.TypesInfo, call); callee != nil {
		for cls := range c.calleeAcquires(callee) {
			c.orderCheck(call, cls, st, callee.Name())
		}
	}
	for _, a := range call.Args {
		c.scanEscapes(a, st)
		c.checkFuncLits(a)
	}
}

// handleDefer marks deferred releases. A deferred closure is scanned for
// release calls (defer func() { ... mu.Unlock() ... }()) and otherwise
// analyzed as an independent body.
func (c *checker) handleDefer(call *ast.CallExpr, st *state) {
	if op, recv := c.lockOp(call); op == opRelease {
		sel := call.Fun.(*ast.SelectorExpr)
		c.release(st, c.render(recv), unlockMatches(sel.Sel.Name), true)
		return
	} else if op == opReleaseGuard {
		c.release(st, c.render(recv), "guard", true)
		return
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if op, recv := c.lockOp(inner); op == opRelease {
				sel := inner.Fun.(*ast.SelectorExpr)
				c.release(st, c.render(recv), unlockMatches(sel.Sel.Name), true)
			} else if op == opReleaseGuard {
				c.release(st, c.render(recv), "guard", true)
			}
			return true
		})
	}
}

// release pops (or, for defers, pins) the most recent matching held
// latch. Releases with no matching acquisition — unlocking a latch the
// caller holds, cross-function brackets — are ignored.
func (c *checker) release(st *state, rend, method string, isDefer bool) {
	for i := len(st.held) - 1; i >= 0; i-- {
		l := st.held[i]
		if l.rend == rend && l.method == method {
			if isDefer {
				l.deferred = true
			} else {
				st.held = append(st.held[:i], st.held[i+1:]...)
			}
			return
		}
	}
}

// orderCheck reports the acquisition of class cls while a later-ranked
// latch is held. callee names the summarized function for
// interprocedural reports; empty for direct acquisitions.
func (c *checker) orderCheck(call *ast.CallExpr, cls string, st *state, callee string) {
	rank := anz.LatchRank(cls)
	if rank == 0 {
		return
	}
	// Any-stream-before-none: a path holding one stream latch may not
	// acquire another — streams are flushed by concurrent workers, and a
	// second nested stream latch deadlocks against a sibling holding the
	// pair in the other order. Direct acquisitions only: a callee summary
	// cannot distinguish sequential per-stream brackets (acquire, release,
	// next stream) from genuine nesting.
	if cls == anz.LatchStream && callee == "" {
		for _, l := range st.held {
			if l.class == anz.LatchStream {
				c.pass.Reportf(call.Pos(), "acquires a stream latch while another stream latch is held (streams are latched independently; hold at most one)")
				return
			}
		}
	}
	for _, l := range st.held {
		if hr := anz.LatchRank(l.class); hr > rank {
			if callee != "" {
				c.pass.Reportf(call.Pos(), "call to %s acquires the %s latch while the %s latch is held (documented order: protection → codeword → syslog)", callee, cls, l.class)
			} else {
				c.pass.Reportf(call.Pos(), "acquires the %s latch while the %s latch is held (documented order: protection → codeword → syslog)", cls, l.class)
			}
			return
		}
	}
}

// scanEscapes marks guards whose value is used outside a release call:
// stored into a struct, returned, captured — ownership has moved.
func (c *checker) scanEscapes(n ast.Node, st *state) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		for _, l := range st.held {
			if l.obj != nil && l.obj == obj {
				l.escaped = true
			}
		}
		return true
	})
}

// checkFuncLits analyzes closures appearing in an expression as
// independent bodies (empty held set: a pool worker or goroutine does
// not inherit the spawner's latches).
func (c *checker) checkFuncLits(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			c.checkBody(lit.Body)
			return false
		}
		return true
	})
}

// ---- classification ----

// lockOp recognizes latch operations by method name and receiver type.
func (c *checker) lockOp(call *ast.CallExpr) (lockOp, ast.Expr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return opNone, nil
	}
	tv, ok := c.pass.TypesInfo.Types[sel.X]
	if !ok {
		return opNone, nil
	}
	t := tv.Type
	switch sel.Sel.Name {
	case "Lock", "RLock":
		if isLatchNamed(t, "Latch") || isSyncMutex(t) {
			return opAcquire, sel.X
		}
	case "Unlock", "RUnlock":
		if isLatchNamed(t, "Latch") || isSyncMutex(t) {
			return opRelease, sel.X
		}
	case "AcquireRange":
		if isLatchNamed(t, "Striped") {
			return opAcquireGuard, sel.X
		}
	case "Release":
		if isLatchNamed(t, "MultiGuard") {
			return opReleaseGuard, sel.X
		}
	}
	return opNone, nil
}

// recordAliases notes `l := <latch expr>` so later l.Lock() classifies.
func (c *checker) recordAliases(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := c.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = c.pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			continue
		}
		if !isLatchNamed(obj.Type(), "Latch") && !isLatchNamed(obj.Type(), "Striped") {
			continue
		}
		if cls := c.classify(as.Rhs[i]); cls != "" {
			c.aliasClass[obj] = cls
		}
	}
}

// classify resolves the latch class of an expression: explicit
// //dbvet:latch annotation on the referenced declaration, a recorded
// alias, the class of a Striped handing out a stripe via For, a callee's
// ReturnsLatch fact, or the name-based fallback.
func (c *checker) classify(e ast.Expr) string {
	if e == nil {
		return ""
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := c.pass.TypesInfo.Uses[e]; obj != nil {
			if cls, ok := c.aliasClass[obj]; ok {
				return cls
			}
			if cls, ok := c.fieldClass[obj]; ok {
				return cls
			}
		}
		return nameFallback(e.Name)
	case *ast.SelectorExpr:
		var obj types.Object
		if sel, ok := c.pass.TypesInfo.Selections[e]; ok {
			obj = sel.Obj()
		} else {
			obj = c.pass.TypesInfo.Uses[e.Sel]
		}
		if obj != nil {
			if cls, ok := c.fieldClass[obj]; ok {
				return cls
			}
			return nameFallback(obj.Name())
		}
		return nameFallback(e.Sel.Name)
	case *ast.UnaryExpr:
		return c.classify(e.X)
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "For" {
			if tv, ok := c.pass.TypesInfo.Types[sel.X]; ok && isLatchNamed(tv.Type, "Striped") {
				return c.classify(sel.X)
			}
		}
		// Accessor functions that hand out a latch (facts are exported
		// before the path walk, so same-package accessors resolve too).
		if callee := calleeOf(c.pass.TypesInfo, e); callee != nil {
			if f, ok := c.pass.Fact(callee); ok {
				if fact, ok := f.(fnFact); ok && fact.ReturnsLatch != "" {
					return fact.ReturnsLatch
				}
			}
		}
	}
	return ""
}

// nameFallback classifies by declaration name for unannotated code.
func nameFallback(name string) string {
	n := strings.ToLower(name)
	switch {
	case strings.Contains(n, "prot"):
		return anz.LatchProtection
	case strings.Contains(n, "cw") || strings.Contains(n, "codeword"):
		return anz.LatchCodeword
	case strings.Contains(n, "log"):
		return anz.LatchSyslog
	}
	return ""
}

// ---- small helpers ----

func unlockMatches(name string) string {
	if name == "RUnlock" {
		return "RLock"
	}
	return "Lock"
}

func cloneSet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isLatchNamed reports whether t (or its pointee) is the named type
// latch.<name> from the repo's latch package.
func isLatchNamed(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Name() == "latch"
}

// isSyncMutex reports whether t (or its pointee) is sync.Mutex or
// sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return (obj.Name() == "Mutex" || obj.Name() == "RWMutex") && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

func (c *checker) render(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return ""
	}
	return buf.String()
}
