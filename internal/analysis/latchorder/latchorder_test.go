package latchorder_test

import (
	"testing"

	"repro/internal/analysis/anztest"
	"repro/internal/analysis/latchorder"
)

func TestFixture(t *testing.T) {
	anztest.Run(t, ".", "../testdata/latchorder", latchorder.Analyzer)
}
