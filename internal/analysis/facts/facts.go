// Package facts holds the cross-package function summaries shared by
// dbvet's interprocedural passes, plus the call-resolution helpers the
// passes use to compute them. A summary ("this function performs raw os
// file I/O", "this function may block uncancellably") is exported as an
// anz object fact while the defining package is analyzed and consumed
// when its importers are — the anz runner's dependency-order guarantee is
// what makes one bottom-up sweep sufficient.
//
// The summaries are deliberately syntactic over-approximations computed
// to a per-package fixpoint: a function carries PerformsIO if any
// statically resolvable call in it reaches an os sink, and BlocksOn if it
// contains a wait no caller-supplied context can cancel. Precision comes
// from the consuming passes' scoping (iopath only reports on durable
// packages; ctxflow only inside context-aware APIs), not from the
// summaries themselves.
package facts

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/anz"
)

// PerformsIO marks a function that — directly or through calls — performs
// raw package-os file I/O instead of going through iofault.FS. Call is
// the underlying sink, e.g. "os.ReadFile", for diagnostics.
type PerformsIO struct{ Call string }

// BlocksOn marks a function that may block the calling goroutine on a
// wait that no caller-supplied context can cancel (a bare channel
// receive, a select with neither default nor ctx.Done case, a
// sync.Cond/sync.WaitGroup wait). Op names the wait for diagnostics.
type BlocksOn struct{ Op string }

// Callee resolves the statically known object a call invokes, or nil.
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// CalleeFunc resolves the called function or method, or nil.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fn, _ := Callee(info, call).(*types.Func)
	return fn
}

// RecvNamed returns the named type of fn's receiver (through one pointer
// indirection), or nil for plain functions.
func RecvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// IsNamed reports whether named is the type pkgSuffix.typeName, matching
// the package by import-path suffix (so "internal/iofault".File matches
// regardless of module prefix).
func IsNamed(named *types.Named, pkgSuffix, typeName string) bool {
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == typeName &&
		strings.HasSuffix(named.Obj().Pkg().Path(), pkgSuffix)
}

// osFuncSinks are the package-level os functions that touch the
// filesystem's files and entries. os.Stat and os.MkdirAll are absent on
// purpose: existence probes and directory creation are not data-path I/O
// the fault layer needs to interpose on.
var osFuncSinks = map[string]bool{
	"Open":      true,
	"Create":    true,
	"OpenFile":  true,
	"ReadFile":  true,
	"WriteFile": true,
	"Rename":    true,
	"Remove":    true,
	"Truncate":  true,
}

// osFileSinks are the *os.File methods that move bytes or durability.
var osFileSinks = map[string]bool{
	"Write":       true,
	"WriteAt":     true,
	"WriteString": true,
	"Read":        true,
	"ReadAt":      true,
	"Sync":        true,
	"Truncate":    true,
	"Seek":        true,
	"Close":       true,
}

// OSSink classifies call as raw os file I/O: a sink function of package
// os, or a sink method on *os.File. It returns a printable name for the
// sink ("os.ReadFile", "(*os.File).Sync") and whether it matched.
func OSSink(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	if recv := RecvNamed(fn); recv != nil {
		if recv.Obj().Pkg() != nil && recv.Obj().Pkg().Path() == "os" &&
			recv.Obj().Name() == "File" && osFileSinks[fn.Name()] {
			return "(*os.File)." + fn.Name(), true
		}
		return "", false
	}
	if fn.Pkg().Path() == "os" && osFuncSinks[fn.Name()] {
		return "os." + fn.Name(), true
	}
	return "", false
}

// SummarizeIO exports a PerformsIO fact for every function of the pass's
// package that performs raw os file I/O directly or calls (statically) a
// function already carrying the fact, iterated to a fixpoint so the order
// of declarations within the package does not matter. Package iofault is
// the sanctioned raw-I/O boundary and is skipped wholesale: calls INTO it
// never propagate the fact.
func SummarizeIO(pass *anz.Pass) {
	if strings.HasSuffix(pass.Pkg.ImportPath, "internal/iofault") {
		return
	}
	for changed := true; changed; {
		changed = false
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := pass.TypesInfo.Defs[fd.Name]
				if obj == nil {
					continue
				}
				if _, done := pass.Fact(obj); done {
					continue
				}
				via := ""
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || via != "" {
						return via == ""
					}
					if sink, ok := OSSink(pass.TypesInfo, call); ok {
						via = sink
					} else if callee := Callee(pass.TypesInfo, call); callee != nil {
						if f, ok := pass.Fact(callee); ok {
							if io, ok := f.(PerformsIO); ok {
								via = io.Call
							}
						}
					}
					return via == ""
				})
				if via != "" {
					pass.ExportFact(obj, PerformsIO{Call: via})
					changed = true
				}
			}
		}
	}
}

// SummarizeBlocking exports a BlocksOn fact for every function of the
// pass's package that may block its caller uncancellably: it contains a
// raw wait outside any scope that consults a context (see RawWait), or it
// calls a fact-carrying function without passing a context along.
// Function literals are skipped — a wait inside a spawned goroutine does
// not block the function's own caller.
func SummarizeBlocking(pass *anz.Pass) {
	for changed := true; changed; {
		changed = false
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := pass.TypesInfo.Defs[fd.Name]
				if obj == nil {
					continue
				}
				if _, done := pass.Fact(obj); done {
					continue
				}
				op := ""
				WalkWaits(pass.TypesInfo, fd.Body, func(pos token.Pos, w string) {
					if op == "" {
						op = w
					}
				})
				if op == "" {
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						if _, isLit := n.(*ast.FuncLit); isLit {
							return false
						}
						call, ok := n.(*ast.CallExpr)
						if !ok || op != "" {
							return op == ""
						}
						callee := Callee(pass.TypesInfo, call)
						if callee == nil {
							return true
						}
						if f, ok := pass.Fact(callee); ok {
							if b, ok := f.(BlocksOn); ok && !PassesContext(pass.TypesInfo, call) {
								op = b.Op
							}
						}
						return op == ""
					})
				}
				if op != "" {
					pass.ExportFact(obj, BlocksOn{Op: op})
					changed = true
				}
			}
		}
	}
}

// WalkWaits invokes report for every raw, uncancellable wait in body:
// a channel receive that is not ctx.Done(), a select statement with
// neither a default clause nor a ctx.Done() case, and Cond.Wait /
// WaitGroup.Wait calls — except where the nearest enclosing for loop (or
// the whole body, for straight-line waits) consults ctx.Done or ctx.Err,
// the cancellable-wait-loop idiom (check the context, then sleep, woken
// by a broadcast). Function literals are not descended into.
func WalkWaits(info *types.Info, body *ast.BlockStmt, report func(pos token.Pos, op string)) {
	var walk func(n ast.Node, exempt bool)
	walk = func(n ast.Node, exempt bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt:
				walk(n.Body, exempt || ConsultsContext(info, n))
				if n.Init != nil {
					walk(n.Init, exempt)
				}
				if n.Cond != nil {
					walk(n.Cond, exempt)
				}
				return false
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !exempt && !isDoneChan(info, n.X) {
					report(n.Pos(), "channel receive")
				}
			case *ast.SelectStmt:
				if !exempt && !selectCancellable(info, n) {
					report(n.Pos(), "select without default or ctx.Done case")
				}
				// The clause bodies run after the wait resolves; keep
				// scanning them, but the comm waits themselves are covered
				// by the select verdict.
				for _, cl := range n.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok {
						for _, s := range cc.Body {
							walk(s, exempt)
						}
					}
				}
				return false
			case *ast.CallExpr:
				if op, ok := syncWait(info, n); ok && !exempt {
					report(n.Pos(), op)
				}
			}
			return true
		})
	}
	walk(body, ConsultsContext(info, body) && isStraightLine(body))
}

// isStraightLine reports whether body contains no for loop — in which
// case a single ctx check anywhere covers its waits (they run at most
// once after the check).
func isStraightLine(body *ast.BlockStmt) bool {
	straight := true
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			straight = false
		}
		return straight
	})
	return straight
}

// ConsultsContext reports whether n contains a ctx.Done() or ctx.Err()
// call on a context.Context value (function literals excluded).
func ConsultsContext(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
				(sel.Sel.Name == "Done" || sel.Sel.Name == "Err") &&
				isContextValue(info, sel.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

// PassesContext reports whether any argument of call has type
// context.Context — the callee's wait is then cancellable by the caller.
func PassesContext(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// isDoneChan recognizes x as a ctx.Done() call: receiving from it IS the
// cancellation, not an uncancellable wait.
func isDoneChan(info *types.Info, x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Done" && isContextValue(info, sel.X)
}

// selectCancellable reports whether sel has a default clause or a case
// receiving from a ctx.Done() channel.
func selectCancellable(info *types.Info, sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default
		}
		recv := cc.Comm
		if a, ok := recv.(*ast.AssignStmt); ok && len(a.Rhs) == 1 {
			recv = &ast.ExprStmt{X: a.Rhs[0]}
		}
		if es, ok := recv.(*ast.ExprStmt); ok {
			if u, ok := ast.Unparen(es.X).(*ast.UnaryExpr); ok &&
				u.Op == token.ARROW && isDoneChan(info, u.X) {
				return true
			}
		}
	}
	return false
}

// syncWait recognizes sync.Cond.Wait and sync.WaitGroup.Wait calls.
func syncWait(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Name() != "Wait" {
		return "", false
	}
	recv := RecvNamed(fn)
	if recv == nil || recv.Obj().Pkg() == nil || recv.Obj().Pkg().Path() != "sync" {
		return "", false
	}
	switch recv.Obj().Name() {
	case "Cond":
		return "sync.Cond.Wait", true
	case "WaitGroup":
		return "sync.WaitGroup.Wait", true
	}
	return "", false
}

// isContextValue reports whether expression x has type context.Context.
func isContextValue(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(x)]
	return ok && isContextType(tv.Type)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}
