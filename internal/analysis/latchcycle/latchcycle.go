// Package latchcycle infers the program's global latch-acquisition
// graph and reports every cycle the static graph admits.
//
// The latchorder pass checks acquisitions against the documented class
// rank list (protection → codeword → syslog); that catches inversions
// *between* classes but says nothing about two latches of the same
// class — or of no class at all — taken in opposite orders on two code
// paths, which is the textbook deadlock the rank list cannot see.
// This pass generalizes the fixed list into an inferred order: every
// latch declaration (a latch/mutex struct field or package-level
// variable) is a graph node, and acquiring B while holding A — directly
// or through a callee that transitively acquires B — adds the edge
// A → B. The graph accumulates across packages in analyzer-shared
// state, with per-function acquisition summaries exported as facts so
// an inversion split across packages still closes. An edge whose
// insertion makes its target reach its source completes a cycle, which
// is reported once, at the acquisition that closed it.
//
// Division of labor with latchorder: rank-list violations and nested
// same-stream acquisitions (the any-stream-before-none rule of the
// index-ordered per-stream latch family, where every stream shares one
// field declaration and a cycle would be a self-edge) are latchorder's;
// this pass reports only cycles between distinct latch declarations,
// so the two passes never double-report one site.
package latchcycle

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/anz"
)

// Analyzer is the latchcycle pass.
var Analyzer = &anz.Analyzer{
	Name: "latchcycle",
	Doc:  "no two latches may be acquired in opposite orders on different code paths",
	Run:  run,
}

// fnFact is the exported per-function summary: the latch declarations
// the function transitively acquires, and — for accessor functions —
// the single latch declaration it returns.
type fnFact struct {
	Acquires map[types.Object]bool
	Returns  types.Object
}

// graphState is the cross-package accumulation living in the analyzer's
// shared map.
type graphState struct {
	// edges[u][v] records that v was acquired while u was held.
	edges map[types.Object]map[types.Object]bool
	// labels renders each node for diagnostics (pkg.Type.field).
	labels map[types.Object]string
	// reported dedups cycles by their canonical node-set key.
	reported map[string]bool
}

func sharedGraph(pass *anz.Pass) *graphState {
	sh := pass.Shared()
	g, ok := sh["graph"].(*graphState)
	if !ok {
		g = &graphState{
			edges:    make(map[types.Object]map[types.Object]bool),
			labels:   make(map[types.Object]string),
			reported: make(map[string]bool),
		}
		sh["graph"] = g
	}
	return g
}

type checker struct {
	pass  *anz.Pass
	graph *graphState
	// trans holds package-local transitive acquire sets post-fixpoint.
	trans map[*types.Func]map[types.Object]bool
	// returns maps package-local accessors to the latch they hand out.
	returns map[*types.Func]types.Object
	// aliases maps local latch variables to their declaration node.
	aliases map[types.Object]types.Object
}

type fnInfo struct {
	acquires map[types.Object]bool
	callees  []*types.Func
}

func run(pass *anz.Pass) error {
	c := &checker{
		pass:    pass,
		graph:   sharedGraph(pass),
		trans:   make(map[*types.Func]map[types.Object]bool),
		returns: make(map[*types.Func]types.Object),
		aliases: make(map[types.Object]types.Object),
	}
	c.collectLabels()

	// Phase A: direct per-function summaries, package-local fixpoint,
	// fact export (mirrors latchorder's summary machinery, with latch
	// declarations in place of latch classes).
	infos := make(map[*types.Func]*fnInfo)
	var order []*types.Func
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			c.aliases = make(map[types.Object]types.Object)
			infos[obj] = c.summarize(fd.Body)
			if ret := c.returnedLatch(fd); ret != nil {
				c.returns[obj] = ret
			}
			order = append(order, obj)
			c.trans[obj] = cloneSet(infos[obj].acquires)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			set := c.trans[fn]
			for _, callee := range infos[fn].callees {
				for n := range c.calleeAcquires(callee) {
					if !set[n] {
						set[n] = true
						changed = true
					}
				}
			}
		}
	}
	for _, fn := range order {
		pass.ExportFact(fn, fnFact{Acquires: c.trans[fn], Returns: c.returns[fn]})
	}

	// Phase B: walk every body tracking held latch declarations; each
	// acquisition under a held latch adds an edge and may close a cycle.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.aliases = make(map[types.Object]types.Object)
				c.walkStmts(fd.Body.List, nil)
			}
		}
	}
	return nil
}

// collectLabels names every latch declaration of this package for
// diagnostics: pkg.Type.field for struct fields, pkg.var for
// package-level variables.
func (c *checker) collectLabels() {
	pkgName := c.pass.Pkg.Name
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					obj := c.pass.TypesInfo.Defs[name]
					if obj != nil && isLockDecl(obj.Type()) {
						c.graph.labels[obj] = pkgName + "." + ts.Name.Name + "." + name.Name
					}
				}
			}
			return true
		})
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj := c.pass.TypesInfo.Defs[name]
					if obj != nil && isLockDecl(obj.Type()) {
						c.graph.labels[obj] = pkgName + "." + name.Name
					}
				}
			}
		}
	}
}

// summarize records the latch declarations a body directly acquires
// (including inside closures) and its resolvable callees.
func (c *checker) summarize(body *ast.BlockStmt) *fnInfo {
	info := &fnInfo{acquires: make(map[types.Object]bool)}
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			c.recordAliases(as)
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, node := c.lockOp(call); op == opAcquire && node != nil {
			info.acquires[node] = true
		} else if op == opNone {
			if callee := calleeOf(c.pass.TypesInfo, call); callee != nil {
				info.callees = append(info.callees, callee)
			}
		}
		return true
	})
	return info
}

// returnedLatch classifies accessors that hand out one specific latch
// declaration (every return resolves to the same node).
func (c *checker) returnedLatch(fd *ast.FuncDecl) types.Object {
	obj, _ := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return nil
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil || sig.Results().Len() != 1 || !isLockDecl(sig.Results().At(0).Type()) {
		return nil
	}
	var node types.Object
	consistent := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		r := c.resolveNode(ret.Results[0])
		if r == nil || (node != nil && node != r) {
			consistent = false
			return true
		}
		node = r
		return true
	})
	if !consistent {
		return nil
	}
	return node
}

func (c *checker) calleeAcquires(fn *types.Func) map[types.Object]bool {
	if set, ok := c.trans[fn]; ok {
		return set
	}
	if f, ok := c.pass.Fact(fn); ok {
		if fact, ok := f.(fnFact); ok {
			return fact.Acquires
		}
	}
	return nil
}

// ---- phase B walk ----

type lockOpKind int

const (
	opNone lockOpKind = iota
	opAcquire
	opRelease
)

func (c *checker) walkStmts(stmts []ast.Stmt, held []types.Object) []types.Object {
	for _, stmt := range stmts {
		held = c.walkStmt(stmt, held)
	}
	return held
}

func cloneNodes(held []types.Object) []types.Object {
	return append([]types.Object(nil), held...)
}

func (c *checker) walkStmt(stmt ast.Stmt, held []types.Object) []types.Object {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		return c.scanExpr(s.X, held)
	case *ast.AssignStmt:
		c.recordAliases(s)
		for _, rhs := range s.Rhs {
			held = c.scanExpr(rhs, held)
		}
		return held
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						held = c.scanExpr(v, held)
					}
				}
			}
		}
		return held
	case *ast.DeferStmt:
		// Deferred releases run at return: the latch stays held for
		// the remainder of the walk, which is exactly the window in
		// which a nested acquisition builds an edge.
		return held
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			held = c.scanExpr(r, held)
		}
		return held
	case *ast.IfStmt:
		if s.Init != nil {
			held = c.walkStmt(s.Init, held)
		}
		held = c.scanExpr(s.Cond, held)
		c.walkStmts(s.Body.List, cloneNodes(held))
		if s.Else != nil {
			c.walkStmt(s.Else, cloneNodes(held))
		}
		return held
	case *ast.ForStmt:
		if s.Init != nil {
			held = c.walkStmt(s.Init, held)
		}
		c.walkStmts(s.Body.List, cloneNodes(held))
		return held
	case *ast.RangeStmt:
		c.walkStmts(s.Body.List, cloneNodes(held))
		return held
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = c.walkStmt(s.Init, held)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, cloneNodes(held))
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, cloneNodes(held))
			}
		}
		return held
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				c.walkStmts(cc.Body, cloneNodes(held))
			}
		}
		return held
	case *ast.BlockStmt:
		return c.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, held)
	case *ast.GoStmt:
		// A goroutine starts with an empty held set (it does not
		// inherit the spawner's latches).
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.walkStmts(lit.Body.List, nil)
		}
		return held
	}
	return held
}

// scanExpr processes lock operations and summarized calls inside one
// expression, in AST order.
func (c *checker) scanExpr(e ast.Expr, held []types.Object) []types.Object {
	if e == nil {
		return held
	}
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures run under the spawner's latch regime when
			// invoked inline; analyzed with the current held set.
			c.walkStmts(n.Body.List, cloneNodes(held))
			return false
		case *ast.CallExpr:
			switch op, node := c.lockOp(n); op {
			case opAcquire:
				if node != nil {
					for _, u := range held {
						c.addEdge(u, node, n.Pos())
					}
					held = append(held, node)
				}
				return true
			case opRelease:
				if node != nil {
					held = removeNode(held, node)
				}
				return true
			}
			if callee := calleeOf(c.pass.TypesInfo, n); callee != nil {
				for _, v := range c.sortedNodes(c.calleeAcquires(callee)) {
					for _, u := range held {
						c.addEdge(u, v, n.Pos())
					}
				}
			}
		}
		return true
	}
	ast.Inspect(e, visit)
	return held
}

// sortedNodes orders a node set by label so edge insertion — and with
// it, which edge is seen to close a cycle — is deterministic.
func (c *checker) sortedNodes(set map[types.Object]bool) []types.Object {
	nodes := make([]types.Object, 0, len(set))
	for n := range set {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return c.label(nodes[i]) < c.label(nodes[j]) })
	return nodes
}

func removeNode(held []types.Object, node types.Object) []types.Object {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == node {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

// addEdge inserts u → v and reports when the insertion closes a cycle
// (v already reaches u). Self-edges are latchorder's any-stream rule.
func (c *checker) addEdge(u, v types.Object, pos token.Pos) {
	if u == nil || v == nil || u == v {
		return
	}
	succ := c.graph.edges[u]
	if succ == nil {
		succ = make(map[types.Object]bool)
		c.graph.edges[u] = succ
	}
	if succ[v] {
		return
	}
	succ[v] = true
	if path := c.pathBetween(v, u); path != nil {
		cycle := path // v … u, closed back to v by the new edge u → v
		key := cycleKey(c.graph, cycle)
		if !c.graph.reported[key] {
			c.graph.reported[key] = true
			c.pass.Reportf(pos, "acquiring %s while holding %s closes a latch-order cycle: %s",
				c.label(v), c.label(u), c.renderCycle(cycle))
		}
	}
}

// pathBetween returns a node path from src to dst along recorded edges,
// or nil if dst is unreachable.
func (c *checker) pathBetween(src, dst types.Object) []types.Object {
	seen := map[types.Object]bool{src: true}
	var dfs func(n types.Object) []types.Object
	dfs = func(n types.Object) []types.Object {
		if n == dst {
			return []types.Object{n}
		}
		// Deterministic order: sort successors by label.
		succs := make([]types.Object, 0, len(c.graph.edges[n]))
		for s := range c.graph.edges[n] {
			succs = append(succs, s)
		}
		sort.Slice(succs, func(i, j int) bool { return c.label(succs[i]) < c.label(succs[j]) })
		for _, s := range succs {
			if seen[s] {
				continue
			}
			seen[s] = true
			if rest := dfs(s); rest != nil {
				return append([]types.Object{n}, rest...)
			}
		}
		return nil
	}
	return dfs(src)
}

func cycleKey(g *graphState, cycle []types.Object) string {
	labels := make([]string, 0, len(cycle))
	for _, n := range cycle {
		labels = append(labels, g.labels[n])
	}
	sort.Strings(labels)
	return strings.Join(labels, "|")
}

func (c *checker) renderCycle(cycle []types.Object) string {
	parts := make([]string, 0, len(cycle)+1)
	for _, n := range cycle {
		parts = append(parts, c.label(n))
	}
	parts = append(parts, c.label(cycle[0]))
	return strings.Join(parts, " → ")
}

func (c *checker) label(n types.Object) string {
	if l, ok := c.graph.labels[n]; ok {
		return l
	}
	if n.Pkg() != nil {
		return n.Pkg().Name() + "." + n.Name()
	}
	return n.Name()
}

// ---- node resolution ----

// lockOp recognizes latch mutations and resolves the declaration node
// they act on.
func (c *checker) lockOp(call *ast.CallExpr) (lockOpKind, types.Object) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return opNone, nil
	}
	tv, ok := c.pass.TypesInfo.Types[sel.X]
	if !ok {
		return opNone, nil
	}
	t := tv.Type
	switch sel.Sel.Name {
	case "Lock", "RLock":
		if isLatchNamed(t, "Latch") || isSyncMutex(t) {
			return opAcquire, c.resolveNode(sel.X)
		}
	case "Unlock", "RUnlock":
		if isLatchNamed(t, "Latch") || isSyncMutex(t) {
			return opRelease, c.resolveNode(sel.X)
		}
	case "AcquireRange":
		if isLatchNamed(t, "Striped") {
			return opAcquire, c.resolveNode(sel.X)
		}
	}
	return opNone, nil
}

// resolveNode maps a latch-valued expression to its declaration: the
// struct field or package variable it names, through aliases, stripe
// accessors (s.prot.For(r) → s.prot) and accessor-function facts.
func (c *checker) resolveNode(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		var obj types.Object
		if sel, ok := c.pass.TypesInfo.Selections[e]; ok {
			obj = sel.Obj()
		} else {
			obj = c.pass.TypesInfo.Uses[e.Sel]
		}
		if obj != nil && isLockDecl(obj.Type()) {
			return obj
		}
		return nil
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = c.pass.TypesInfo.Defs[e]
		}
		if obj == nil {
			return nil
		}
		if target, ok := c.aliases[obj]; ok {
			return target
		}
		// A package-level latch variable is its own node; a local with
		// no recorded alias is unresolvable.
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v
		}
		return nil
	case *ast.UnaryExpr:
		return c.resolveNode(e.X)
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "For" {
			if tv, ok := c.pass.TypesInfo.Types[sel.X]; ok && isLatchNamed(tv.Type, "Striped") {
				return c.resolveNode(sel.X)
			}
		}
		if callee := calleeOf(c.pass.TypesInfo, e); callee != nil {
			if ret, ok := c.returns[callee]; ok {
				return ret
			}
			if f, ok := c.pass.Fact(callee); ok {
				if fact, ok := f.(fnFact); ok && fact.Returns != nil {
					return fact.Returns
				}
			}
		}
	}
	return nil
}

// recordAliases notes lk := <latch expr> so lk.Lock() resolves.
func (c *checker) recordAliases(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := c.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = c.pass.TypesInfo.Uses[id]
		}
		if obj == nil || !isLockDecl(obj.Type()) {
			continue
		}
		if node := c.resolveNode(as.Rhs[i]); node != nil {
			c.aliases[obj] = node
		}
	}
}

// ---- type predicates ----

func isLockDecl(t types.Type) bool {
	return isLatchNamed(t, "Latch") || isLatchNamed(t, "Striped") || isSyncMutex(t)
}

func isLatchNamed(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Name() == "latch"
}

func isSyncMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return (obj.Name() == "Mutex" || obj.Name() == "RWMutex") && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func cloneSet(s map[types.Object]bool) map[types.Object]bool {
	out := make(map[types.Object]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}
