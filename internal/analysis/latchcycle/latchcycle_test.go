package latchcycle_test

import (
	"testing"

	"repro/internal/analysis/anztest"
	"repro/internal/analysis/latchcycle"
)

func TestFixture(t *testing.T) {
	anztest.Run(t, ".", "../testdata/latchcycle", latchcycle.Analyzer)
}
