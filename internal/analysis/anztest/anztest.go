// Package anztest is the golden-test harness for dbvet passes, a
// stdlib-only analogue of golang.org/x/tools/go/analysis/analysistest.
// A fixture is an ordinary package under internal/analysis/testdata/
// (invisible to ./... wildcards, loadable by explicit path) whose
// sources carry want comments on the lines where diagnostics are
// expected:
//
//	l.Lock() // want "acquires the protection latch"
//
// Each `// want "substr" ...` lists one quoted substring per expected
// diagnostic on that line. Run loads the fixture, applies the analyzers,
// and fails the test for every unmatched expectation and every
// unexpected diagnostic.
package anztest

import (
	"go/parser"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/anz"
	"repro/internal/analysis/load"
)

// expectation is one want substring at a file:line.
type expectation struct {
	file    string
	line    int
	substr  string
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// Run loads the fixture package at pattern (a path relative to dir, e.g.
// "../testdata/latchorder"), runs the analyzers over it, and checks the
// diagnostics against the fixture's want comments.
func Run(t *testing.T, dir, pattern string, analyzers ...*anz.Analyzer) {
	t.Helper()
	prog, err := load.Load(dir, pattern)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pattern, err)
	}
	diags, err := anz.Run(prog, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", pattern, err)
	}

	expects := collectWants(t, prog)
	for _, d := range diags {
		if !claim(expects, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.substr)
		}
	}
}

// claim marks the first unmatched expectation on the diagnostic's line
// whose substring occurs in the message.
func claim(expects []*expectation, d anz.Diagnostic) bool {
	for _, e := range expects {
		if e.matched || e.line != d.Pos.Line || e.file != d.Pos.Filename {
			continue
		}
		if strings.Contains(d.Message, e.substr) {
			e.matched = true
			return true
		}
	}
	return false
}

// collectWants reparses the fixture sources and extracts want comments.
// (Reparsing rather than walking prog's ASTs keeps the harness
// independent of how the loader attaches comments.)
func collectWants(t *testing.T, prog *load.Program) []*expectation {
	t.Helper()
	var expects []*expectation
	fset := token.NewFileSet()
	for _, pkg := range prog.Targets {
		for _, file := range pkg.GoFiles {
			path := pkg.Dir + "/" + file
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("reparsing %s: %v", path, err)
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					quoted := quotedRE.FindAllString(m[1], -1)
					if len(quoted) == 0 {
						t.Fatalf("%s:%d: malformed want comment %q", path, pos.Line, c.Text)
					}
					for _, q := range quoted {
						substr, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", path, pos.Line, q, err)
						}
						expects = append(expects, &expectation{file: pos.Filename, line: pos.Line, substr: substr})
					}
				}
			}
		}
	}
	return expects
}

// Diagnostics loads pattern and returns the raw diagnostics, for tests
// that assert on counts and positions directly (the differential
// buggy-scheme test).
func Diagnostics(t *testing.T, dir, pattern string, analyzers ...*anz.Analyzer) []anz.Diagnostic {
	t.Helper()
	prog, err := load.Load(dir, pattern)
	if err != nil {
		t.Fatalf("loading %s: %v", pattern, err)
	}
	diags, err := anz.Run(prog, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", pattern, err)
	}
	return diags
}
