// Package cwpair statically enforces the paper's codeword-maintenance
// pairing: wherever an update captures a physical undo image (the "read
// old value" half of the XOR protocol), every successful exit from that
// update bracket must also fold the change into the region's codeword
// (the ApplyUpdate/UpdateDeltas half). A path that captures the before
// image but skips the fold leaves the codeword stale, and the next audit
// reports corruption that never happened — the exact dual of the data
// corruption the codewords exist to catch.
//
// Trigger points are EndUpdate methods of protect schemes and any
// function that calls an undo-capture primitive (PushPhysUndo,
// CaptureUndo). Within a triggered function the pass walks the statement
// tree tracking "a fold has happened on this path"; a return whose error
// result is nil (or a function exit with no error result at all) before
// any fold is a diagnostic. Returns carrying a non-nil error are exempt:
// a failed update is rolled back, not folded.
//
// Fold calls are recognized by name (ApplyUpdate, UpdateDeltas, XorInto,
// XorDelta, Fold, FoldDelta) and by fact: a function that folds on all
// its own paths exports a fact, so wrappers like deferredScheme.Drain
// count at their call sites.
//
// The pass also enforces the ECC tier's plane-pairing rule: a function
// that stores into a codeword table (an assignment through a `cws`
// field) must maintain the locator planes in the same function —
// xorPlanesLocked, a planesLocked copy, or a rebuild — because a
// codeword updated without its planes leaves syndromes that misclassify
// repairable damage as unrepairable (or worse, locate the wrong word).
// Deliberate raw stores (checkpoint load) carry a //dbvet:allow.
package cwpair

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/anz"
)

// Analyzer is the cwpair pass.
var Analyzer = &anz.Analyzer{
	Name: "cwpair",
	Doc:  "undo-image capture must be paired with a codeword fold on every successful path",
	Run:  run,
}

// foldNames are the codeword-maintenance entry points; a call to any of
// these (as method or function) counts as the fold half of the pair.
var foldNames = map[string]bool{
	"ApplyUpdate":  true,
	"UpdateDeltas": true,
	"XorInto":      true,
	"XorDelta":     true,
	"Fold":         true,
	"FoldDelta":    true,
}

// planeNames are the locator-plane maintenance entry points; one of
// these (or any expression touching a `planes` field) must accompany a
// raw codeword store.
var planeNames = map[string]bool{
	"xorPlanesLocked": true,
	"planesLocked":    true,
	"rebuildPlanes":   true,
	"computeECC":      true,
}

// captureNames are the undo-image capture primitives that arm the pass.
var captureNames = map[string]bool{
	"PushPhysUndo": true,
	"CaptureUndo":  true,
}

// allowedPkgs are exempt wholesale: restart recovery rebuilds every
// codeword with RecomputeAll after redo completes (paper §4.3's
// recovery treatment), so its captured undo images legitimately carry
// no per-update fold.
var allowedPkgs = []string{
	"internal/recovery",
}

// foldsFact marks a function whose every path performs a codeword fold;
// calls to it count as folds in its callers.
type foldsFact struct{}

func run(pass *anz.Pass) error {
	for _, allowed := range allowedPkgs {
		if strings.HasSuffix(pass.Pkg.ImportPath, allowed) {
			return nil
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &checker{pass: pass, fn: fd}

			// Silent first walk: count would-be violations to decide the
			// fact. A function that folds somewhere and has no successful
			// exit without a fold is itself a fold from its callers' view
			// (wrappers like deferredScheme.Drain).
			fold, terminated := c.walk(fd.Body.List, false)
			if !terminated && !fold {
				c.violations++
			}
			if c.violations == 0 && c.stmtFolds(fd.Body) {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					pass.ExportFact(obj, foldsFact{})
				}
			}

			checkPlanePairing(pass, fd)

			if !c.triggered(fd) {
				continue
			}
			c.armed = true
			fold, terminated = c.walk(fd.Body.List, false)
			// Falling off the end of the body is an implicit return.
			if !terminated && !fold {
				pass.Reportf(fd.Name.Pos(), "%s captures an undo image but reaches the end of the function without a codeword fold (ApplyUpdate/UpdateDeltas)", fd.Name.Name)
			}
		}
	}
	return nil
}

// checkPlanePairing reports codeword-table stores (assignments through a
// `cws` field) in functions that nowhere maintain the locator planes.
func checkPlanePairing(pass *anz.Pass, fd *ast.FuncDecl) {
	var stores []*ast.AssignStmt
	touchesPlanes := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if sel, ok := ast.Unparen(ix.X).(*ast.SelectorExpr); ok && sel.Sel.Name == "cws" {
						stores = append(stores, n)
					}
				}
			}
		case *ast.CallExpr:
			if planeNames[calleeName(n)] {
				touchesPlanes = true
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == "planes" {
				touchesPlanes = true
			}
		}
		return true
	})
	if touchesPlanes {
		return
	}
	for _, s := range stores {
		pass.Reportf(s.Pos(), "stores a region codeword without maintaining the locator planes (pair the store with xorPlanesLocked or a planesLocked rebuild, or it leaves syndromes that misdiagnose damage)")
	}
}

type checker struct {
	pass *anz.Pass
	fn   *ast.FuncDecl
	// armed: second walk, reporting enabled.
	armed bool
	// violations counts fold-less successful exits on either walk.
	violations int
}

// triggered reports whether fd is held to the pairing discipline: it is
// a protect-scheme EndUpdate method, or it captures an undo image.
func (c *checker) triggered(fd *ast.FuncDecl) bool {
	if fd.Name.Name == "EndUpdate" && fd.Recv != nil {
		return true
	}
	captures := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && captureNames[calleeName(call)] {
			captures = true
		}
		return !captures
	})
	return captures
}

// walk processes a statement list with entry fold state in. It returns
// (fold, terminated): fold is true when every path reaching the end of
// the list has folded; terminated is true when no path reaches the end
// (all return or panic). Nil-error returns encountered while !fold are
// reported (when armed).
func (c *checker) walk(stmts []ast.Stmt, in bool) (fold, terminated bool) {
	fold = in
	for _, s := range stmts {
		if f, t := c.stmt(s, fold); t {
			return f, true
		} else if f {
			fold = true
		}
	}
	return fold, false
}

// stmt processes one statement; same contract as walk.
func (c *checker) stmt(s ast.Stmt, in bool) (fold, terminated bool) {
	fold = in
	switch s := s.(type) {
	case *ast.ReturnStmt:
		// `return tab.ApplyUpdate(...)` folds and propagates the error in
		// one statement: the fold counts for this path.
		if c.stmtFolds(s) {
			fold = true
		}
		if !fold && c.successfulReturn(s) {
			c.report(s.Pos(), "returns success without a codeword fold for the captured undo image (ApplyUpdate/UpdateDeltas missing on this path)")
		}
		return fold, true

	case *ast.BlockStmt:
		return c.walk(s.List, fold)

	case *ast.IfStmt:
		if c.stmtFolds(s.Init) {
			fold = true
		}
		thenFold, thenTerm := c.walk(s.Body.List, fold)
		elseFold, elseTerm := fold, false
		if s.Else != nil {
			elseFold, elseTerm = c.stmt(s.Else, fold)
		}
		if thenTerm && elseTerm {
			return fold, true
		}
		switch {
		case thenTerm:
			return elseFold, false
		case elseTerm:
			return thenFold, false
		default:
			return thenFold && elseFold, false
		}

	case *ast.ForStmt:
		if c.stmtFolds(s.Init) {
			fold = true
		}
		c.walk(s.Body.List, fold)
		// A for with no condition and no break never falls through; a
		// conditional loop may run zero times, so its body's folds do
		// not count afterwards.
		if s.Cond == nil && !hasBreak(s.Body) {
			return fold, true
		}
		return fold, false

	case *ast.RangeStmt:
		c.walk(s.Body.List, fold)
		return fold, false

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.branches(s, fold)

	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, fold)

	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					return fold, true
				}
			}
		}
		return fold || c.stmtFolds(s), false

	default:
		// Assignments, defers, go statements, declarations: a fold call
		// anywhere inside (including a deferred closure) counts.
		return fold || c.stmtFolds(s), false
	}
}

// branches handles switch/type-switch/select: fold after the statement
// only if every non-terminating branch folds, and — for switches — a
// default branch exists (otherwise fall-through skips all cases).
func (c *checker) branches(s ast.Stmt, in bool) (fold, terminated bool) {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if c.stmtFolds(s.Init) {
			in = true
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	hasDefault := false
	allFold, allTerm := true, len(body.List) > 0
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			stmts = cl.Body
		}
		f, t := c.walk(stmts, in)
		if !t {
			allTerm = false
			if !f {
				allFold = false
			}
		}
	}
	if _, isSelect := s.(*ast.SelectStmt); isSelect {
		hasDefault = true // select blocks until a branch runs
	}
	if hasDefault && allTerm {
		return in, true
	}
	return in || (hasDefault && allFold), false
}

// stmtFolds reports whether a fold call occurs anywhere inside s,
// including deferred closures (a deferred fold runs before the bracket
// finishes from the caller's perspective).
func (c *checker) stmtFolds(s ast.Stmt) bool {
	if s == nil {
		return false
	}
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && c.isFold(call) {
			found = true
		}
		return !found
	})
	return found
}

// isFold recognizes codeword-fold calls by name or by exported fact.
func (c *checker) isFold(call *ast.CallExpr) bool {
	name := calleeName(call)
	if foldNames[name] {
		return true
	}
	if obj := callee(c.pass, call); obj != nil {
		if _, ok := c.pass.Fact(obj); ok {
			return true
		}
	}
	return false
}

// successfulReturn reports whether ret is a success exit: its trailing
// error result (if the function has one) is the literal nil, or the
// function returns no error at all. Named-result naked returns are
// treated as successful (conservative: they are how the brackets here
// return success).
func (c *checker) successfulReturn(ret *ast.ReturnStmt) bool {
	results := c.fn.Type.Results
	if results == nil || len(results.List) == 0 {
		return true
	}
	last := results.List[len(results.List)-1]
	if named, ok := last.Type.(*ast.Ident); !ok || named.Name != "error" {
		return true
	}
	if len(ret.Results) == 0 {
		return true // naked return of named results
	}
	lastExpr := ast.Unparen(ret.Results[len(ret.Results)-1])
	if id, ok := lastExpr.(*ast.Ident); ok && id.Name == "nil" {
		return true
	}
	// Returning a variable or call result as the error: statically
	// unknown, assume it is the failure path.
	return false
}

// report counts a fold-less successful exit; only the armed (second)
// walk emits it — the first walk computes the fold-summary fact.
func (c *checker) report(pos token.Pos, msg string) {
	c.violations++
	if c.armed {
		c.pass.Reportf(pos, "%s", msg)
	}
}

// calleeName extracts the bare function or method name of a call.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// callee resolves the called object, if statically known.
func callee(pass *anz.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// hasBreak reports whether body contains a break that exits this loop
// (nested loops and switches are not descended into for plain breaks).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	var scan func(n ast.Node) bool
	scan = func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BranchStmt:
			if n.(*ast.BranchStmt).Tok.String() == "break" {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			return false
		}
		return !found
	}
	ast.Inspect(body, scan)
	return found
}
