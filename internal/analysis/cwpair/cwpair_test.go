package cwpair_test

import (
	"testing"

	"repro/internal/analysis/anztest"
	"repro/internal/analysis/cwpair"
)

func TestFixture(t *testing.T) {
	anztest.Run(t, ".", "../testdata/cwpair", cwpair.Analyzer)
}
