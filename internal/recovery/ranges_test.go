package recovery

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestRangeSetAddAndOverlap(t *testing.T) {
	var s RangeSet
	if !s.Empty() {
		t.Fatal("fresh set not empty")
	}
	s.Add(Range{Start: 100, Len: 10})
	s.Add(Range{Start: 200, Len: 10})
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	cases := []struct {
		start mem.Addr
		n     int
		want  bool
	}{
		{100, 1, true},
		{109, 1, true},
		{110, 1, false},
		{99, 1, false},
		{99, 2, true},
		{105, 100, true},
		{150, 10, false},
		{0, 1000, true},
		{100, 0, false}, // zero-length never overlaps
	}
	for _, c := range cases {
		if got := s.Overlaps(c.start, c.n); got != c.want {
			t.Errorf("Overlaps(%d,%d) = %v, want %v", c.start, c.n, got, c.want)
		}
	}
}

func TestRangeSetMerging(t *testing.T) {
	var s RangeSet
	s.Add(Range{Start: 10, Len: 10})
	s.Add(Range{Start: 30, Len: 10})
	s.Add(Range{Start: 20, Len: 10}) // bridges both
	if s.Len() != 1 {
		t.Fatalf("ranges = %v, want one merged", s.Ranges())
	}
	r := s.Ranges()[0]
	if r.Start != 10 || r.Len != 30 {
		t.Fatalf("merged = %v", r)
	}
	// Adjacent ranges coalesce.
	s.Add(Range{Start: 40, Len: 5})
	if s.Len() != 1 || s.Ranges()[0].Len != 35 {
		t.Fatalf("adjacent not coalesced: %v", s.Ranges())
	}
	// Contained range is a no-op.
	s.Add(Range{Start: 15, Len: 3})
	if s.Len() != 1 || s.Ranges()[0].Len != 35 {
		t.Fatalf("contained add changed set: %v", s.Ranges())
	}
	// Zero and negative lengths ignored.
	s.Add(Range{Start: 100, Len: 0})
	s.Add(Range{Start: 100, Len: -5})
	if s.Len() != 1 {
		t.Fatalf("degenerate add changed set: %v", s.Ranges())
	}
}

func TestRangeSetPropertyMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s RangeSet
		covered := make([]bool, 512)
		for i := 0; i < 30; i++ {
			start := rng.Intn(480)
			n := 1 + rng.Intn(32)
			s.Add(Range{Start: mem.Addr(start), Len: n})
			for j := start; j < start+n && j < len(covered); j++ {
				covered[j] = true
			}
		}
		// Invariants: sorted, non-overlapping, non-adjacent.
		rs := s.Ranges()
		for i := 1; i < len(rs); i++ {
			if rs[i-1].end() >= rs[i].Start {
				return false
			}
		}
		// Point queries agree with the naive bitmap.
		for p := 0; p < len(covered); p++ {
			if s.Overlaps(mem.Addr(p), 1) != covered[p] {
				return false
			}
		}
		// Random span queries agree too.
		for i := 0; i < 50; i++ {
			start := rng.Intn(500)
			n := 1 + rng.Intn(20)
			want := false
			for j := start; j < start+n && j < len(covered); j++ {
				if covered[j] {
					want = true
					break
				}
			}
			if s.Overlaps(mem.Addr(start), n) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeString(t *testing.T) {
	if (Range{Start: 5, Len: 3}).String() != "[5,+3)" {
		t.Fatal("range formatting changed")
	}
}
