package recovery

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/iofault"
	"repro/internal/protect"
)

// These tests pin the satellite fix that routed recovery's reads (anchor,
// checkpoint image/meta, stable log) through core.Config.FS: a FaultFS
// armed with read faults must be observed by recovery. Against the
// pre-fix code — raw os.ReadFile in ckpt.Load and wal.Scan — both
// subtests pass recovery a faulted filesystem it never consults, recovery
// succeeds cleanly, and the tests fail.

// TestRecoveryObservesFailedRead arms a hard failure of the very first
// read (the checkpoint anchor) and requires recovery to surface it.
func TestRecoveryObservesFailedRead(t *testing.T) {
	cfg := testConfig(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	db, tb := setupTable(t, cfg, 4)
	updateRec(t, db, tb, 0, bytes.Repeat([]byte{0xAA}, 64))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	ffs := iofault.NewFaultFS(cfg.Dir)
	ffs.FailNthRead(1)
	fcfg := cfg
	fcfg.FS = ffs
	if db, _, err := Open(fcfg, Options{}); !errors.Is(err, iofault.ErrInjected) {
		if err == nil {
			db.Close()
		}
		t.Fatalf("recovery did not observe the injected read failure: err=%v", err)
	}
	if ffs.Reads() == 0 {
		t.Fatal("recovery performed no reads through the injected FS")
	}
}

// TestRecoveryObservesCorruptImageRead corrupts the anchored checkpoint
// image on the read path (lying storage: the bytes on disk are fine, the
// read returns them flipped). The per-page image codewords must catch it
// and recovery must fall back to the older ping-pong image.
func TestRecoveryObservesCorruptImageRead(t *testing.T) {
	cfg := testConfig(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	cfg.DisableLogCompaction = true // the fallback image needs the older log prefix
	db, tb := setupTable(t, cfg, 4)
	// A second checkpoint fills the other ping-pong image, so the anchor's
	// predecessor is a certified fallback.
	updateRec(t, db, tb, 0, bytes.Repeat([]byte{0xBB}, 64))
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	loaded, err := ckpt.Load(cfg.Dir)
	if err != nil {
		t.Fatal(err)
	}

	ffs := iofault.NewFaultFS(cfg.Dir)
	ffs.CorruptReadAt(ckpt.ImageFileName(loaded.Anchor.Current), 17)
	fcfg := cfg
	fcfg.FS = ffs
	db2, rep, err := Open(fcfg, Options{})
	if err != nil {
		t.Fatalf("recovery could not fall back from the corrupt image read: %v", err)
	}
	defer db2.Close()
	if !rep.UsedFallbackImage {
		t.Fatal("recovery trusted a corrupt image read: UsedFallbackImage=false (reads not routed through cfg.FS?)")
	}
	audit(t, db2)
}

// audit runs a full scheme audit and fails the test on any corruption.
func audit(t *testing.T, db *core.DB) {
	t.Helper()
	if bad := db.Scheme().Audit(); len(bad) != 0 {
		t.Fatalf("post-recovery audit found corruption: %v", bad)
	}
}
