package recovery

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/hashidx"
	"repro/internal/heap"
	"repro/internal/protect"
)

// TestMixedHeapIndexCrashCampaign interleaves heap and hash-index
// mutations in the same transactions across repeated crash/recover
// cycles, checking both structures against shadow models. This exercises
// multi-level recovery with two registered access methods whose logical
// undos interleave in one undo log.
func TestMixedHeapIndexCrashCampaign(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			runMixedCampaign(t, seed)
		})
	}
}

func runMixedCampaign(t *testing.T, seed int64) {
	cfg := core.Config{Dir: t.TempDir(), ArenaSize: 1 << 20,
		Protect: protect.Config{Kind: protect.KindDataCW, RegionSize: 128}}
	db, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hcat, _ := heap.Open(db)
	tb, err := hcat.CreateTable("rows", 64, 256)
	if err != nil {
		t.Fatal(err)
	}
	icat, _ := hashidx.Open(db)
	ix, err := icat.CreateIndex("rows_by_key", 512)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(seed))
	// Shadow: key -> record contents (committed state only).
	shadow := map[uint64][]byte{}
	shadowRID := map[uint64]heap.RID{}

	for round := 0; round < 5; round++ {
		// Committed transactions: insert/update/delete a keyed record and
		// maintain the index in the same transaction.
		for i := 0; i < 5+rng.Intn(8); i++ {
			txn, err := db.Begin()
			if err != nil {
				t.Fatal(err)
			}
			pend := map[uint64][]byte{}
			pendRID := map[uint64]heap.RID{}
			pendDel := map[uint64]bool{}
			for op := 0; op < 1+rng.Intn(4); op++ {
				key := uint64(rng.Intn(60))
				_, exists := shadow[key]
				if p, ok := pend[key]; ok {
					exists = p != nil
					_ = p
				}
				if pendDel[key] {
					exists = false
				}
				switch {
				case !exists: // insert keyed record
					rec := make([]byte, 64)
					binary.LittleEndian.PutUint64(rec, key)
					rng.Read(rec[8:16])
					rid, err := tb.Insert(txn, rec)
					if err != nil {
						t.Fatal(err)
					}
					if err := ix.Insert(txn, key, rid); err != nil {
						t.Fatal(err)
					}
					pend[key] = rec
					pendRID[key] = rid
					delete(pendDel, key)
				case rng.Intn(2) == 0: // update via index lookup
					rid, err := ix.Lookup(txn, key)
					if err != nil {
						t.Fatal(err)
					}
					val := make([]byte, 8)
					rng.Read(val)
					if err := tb.Update(txn, rid, 8, val); err != nil {
						t.Fatal(err)
					}
					rec := cloneOrShadow(pend, shadow, key)
					copy(rec[8:16], val)
					pend[key] = rec
				default: // delete record + index entry
					rid, err := ix.Lookup(txn, key)
					if err != nil {
						t.Fatal(err)
					}
					if err := tb.Delete(txn, rid); err != nil {
						t.Fatal(err)
					}
					if err := ix.Delete(txn, key); err != nil {
						t.Fatal(err)
					}
					pend[key] = nil
					pendDel[key] = true
				}
			}
			if rng.Intn(4) == 0 {
				if err := txn.Abort(); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if err := txn.Commit(); err != nil {
				t.Fatal(err)
			}
			for key, rec := range pend {
				if rec == nil {
					delete(shadow, key)
					delete(shadowRID, key)
				} else {
					shadow[key] = rec
					if rid, ok := pendRID[key]; ok {
						shadowRID[key] = rid
					}
				}
			}
		}
		if rng.Intn(2) == 0 {
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		// An uncommitted mixed transaction dies with the crash.
		loser, _ := db.Begin()
		rec := make([]byte, 64)
		binary.LittleEndian.PutUint64(rec, 9999)
		if rid, err := tb.Insert(loser, rec); err == nil {
			ix.Insert(loser, 9999, rid)
		}
		db.Crash()

		db2, rep, err := Open(cfg, Options{})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(rep.Deleted) != 0 {
			t.Fatalf("round %d: spurious deletions %v", round, rep.Deleted)
		}
		hcat2, _ := heap.Open(db2)
		tb2, err := hcat2.Table("rows")
		if err != nil {
			t.Fatal(err)
		}
		icat2, _ := hashidx.Open(db2)
		ix2, err := icat2.IndexNamed("rows_by_key")
		if err != nil {
			t.Fatal(err)
		}

		// Verify both structures against the shadow.
		check, _ := db2.Begin()
		if ix2.Count() != len(shadow) {
			t.Fatalf("round %d: index count %d, shadow %d", round, ix2.Count(), len(shadow))
		}
		if tb2.Count() != len(shadow) {
			t.Fatalf("round %d: table count %d, shadow %d", round, tb2.Count(), len(shadow))
		}
		for key, want := range shadow {
			rid, err := ix2.Lookup(check, key)
			if err != nil {
				t.Fatalf("round %d: lookup %d: %v", round, key, err)
			}
			if rid != shadowRID[key] {
				t.Fatalf("round %d: key %d rid %v, want %v", round, key, rid, shadowRID[key])
			}
			got, err := tb2.Read(check, rid)
			if err != nil {
				t.Fatalf("round %d: read %d: %v", round, key, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("round %d: key %d contents mismatch", round, key)
			}
		}
		if _, err := ix2.Lookup(check, 9999); !errors.Is(err, hashidx.ErrNotFound) {
			t.Fatalf("round %d: loser's index entry survived: %v", round, err)
		}
		check.Commit()
		if err := db2.Audit(); err != nil {
			t.Fatalf("round %d: audit: %v", round, err)
		}
		db, tb, ix = db2, tb2, ix2
	}
	db.Close()
}

func cloneOrShadow(pend, shadow map[uint64][]byte, key uint64) []byte {
	if rec, ok := pend[key]; ok && rec != nil {
		return rec
	}
	return append([]byte(nil), shadow[key]...)
}
