package recovery

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/protect"
)

// TestDeleteRecoveryIsDeterministic runs delete-transaction recovery
// twice over byte-identical copies of the same crashed database and
// requires identical decisions and identical final images: the algorithm
// has no hidden nondeterminism (map iteration, timing) that could make
// two replicas diverge.
func TestDeleteRecoveryIsDeterministic(t *testing.T) {
	pc := protect.Config{Kind: protect.KindReadLog, RegionSize: 64}
	cfg, _ := corruptionScenario(t, pc, true)

	dirA, dirB := t.TempDir(), t.TempDir()
	copyDir(t, cfg.Dir, dirA)
	copyDir(t, cfg.Dir, dirB)

	cfgA, cfgB := cfg, cfg
	cfgA.Dir, cfgB.Dir = dirA, dirB

	dbA, repA, err := Open(cfgA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dbA.Close()
	dbB, repB, err := Open(cfgB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dbB.Close()

	if !reflect.DeepEqual(repA.Deleted, repB.Deleted) {
		t.Fatalf("deleted sets differ:\n%v\n%v", repA.Deleted, repB.Deleted)
	}
	if !reflect.DeepEqual(repA.RolledBack, repB.RolledBack) {
		t.Fatalf("rollback sets differ:\n%v\n%v", repA.RolledBack, repB.RolledBack)
	}
	if !reflect.DeepEqual(repA.FinalCorrupt, repB.FinalCorrupt) {
		t.Fatalf("corrupt tables differ:\n%v\n%v", repA.FinalCorrupt, repB.FinalCorrupt)
	}
	if repA.RecordsScanned != repB.RecordsScanned || repA.RedoApplied != repB.RedoApplied {
		t.Fatalf("scan metrics differ: %+v vs %+v", repA, repB)
	}
	if !bytes.Equal(dbA.Internals().Arena.Bytes(), dbB.Internals().Arena.Bytes()) {
		t.Fatal("recovered images differ byte-for-byte")
	}
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		in, err := os.Open(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(filepath.Join(dst, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		out.Close()
	}
}
