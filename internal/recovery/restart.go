package recovery

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/protect"
	"repro/internal/region"
	"repro/internal/wal"
)

// Options tunes recovery behaviour.
type Options struct {
	// ForceCorruptionMode runs the delete-transaction algorithm even when
	// the log records no failed audit (useful with ExtraCorrupt).
	ForceCorruptionMode bool
	// DisableCorruptionMode runs plain restart recovery unconditionally.
	DisableCorruptionMode bool
	// ExtraCorrupt supplies corruption detected by means other than
	// codeword audits (the paper's §4 note on external audit mechanisms
	// and asserts): the ranges are treated like ranges noted by a failed
	// audit.
	ExtraCorrupt []Range
	// RedoWorkers sets the worker count for the partitioned parallel
	// redo-apply pass (0 uses Config.Workers; 1 forces the serial path).
	// Corruption-mode recovery is always serial regardless: the
	// delete-transaction algorithm's corrupt-read checks consult the image
	// as it evolves record by record.
	RedoWorkers int
	// SkipCompletionCheckpoint suppresses the checkpoint that normally
	// ends recovery. FOR CRASH DRILLS ONLY: it leaves the database in the
	// state a crash immediately before the completion checkpoint would —
	// the log carries recovery's compensation and abort records but the
	// anchor still names the old checkpoint — so tests can verify that a
	// subsequent recovery converges. A database opened this way should be
	// crashed, not used.
	SkipCompletionCheckpoint bool
}

// DeletedTxn reports a transaction removed from history by the
// delete-transaction algorithm. The identity of deleted transactions "is
// returned to the user to allow manual compensation" (§4.1).
type DeletedTxn struct {
	ID wal.TxnID
	// Committed reports whether the transaction had committed in the
	// original history (its commit record was found and ignored).
	Committed bool
}

// InDoubtTxn identifies a transaction left prepared by a crash: its
// prepare record is durable but no commit/abort resolved it locally. It
// remains attached in the ATT, holding its undo log, until the shard
// router (or any 2PC coordinator logic) applies the decision through
// core.Txn.CommitPrepared / AbortPrepared on the adopted handle.
type InDoubtTxn struct {
	ID  wal.TxnID
	GID uint64
}

// Report summarizes a recovery run.
type Report struct {
	// FreshDatabase is true when no checkpoint or log existed.
	FreshDatabase bool
	// CheckpointSeq is the sequence number of the checkpoint recovered
	// from (0 when recovering from an empty image).
	CheckpointSeq uint64
	// ScanStart is CK_end, where the forward scan began.
	ScanStart wal.LSN
	// RecordsScanned counts log records visited; RedoApplied counts
	// physical records applied to the image.
	RecordsScanned int
	RedoApplied    int
	// LogStreams is the stream count of the recovered database's log set;
	// RedoWorkers the worker count the redo-apply pass ran with (1 when
	// the serial path was taken).
	LogStreams  int
	RedoWorkers int
	// CorruptionMode reports whether the delete-transaction algorithm
	// ran; CWMode whether the codeword-in-read-log variant was used.
	CorruptionMode bool
	CWMode         bool
	// AuditSN is the Audit_SN used (LSN of the last clean audit's begin).
	AuditSN wal.LSN
	// SeedCorrupt is the corrupt data seeded at Audit_SN (failed-audit
	// ranges plus Options.ExtraCorrupt).
	SeedCorrupt []Range
	// Deleted lists transactions removed from history, sorted by ID.
	Deleted []DeletedTxn
	// RolledBack lists incomplete (non-deleted) transactions rolled back.
	RolledBack []wal.TxnID
	// FinalCorrupt is the final CorruptDataTable contents.
	FinalCorrupt []Range
	// UsedFallbackImage reports that the anchored checkpoint image was
	// corrupt on disk (torn page, bad meta) and recovery started from the
	// other ping-pong image instead, replaying the log from its older
	// CK_end.
	UsedFallbackImage bool
	// GSNGaps lists holes found in the merged scan's stamped-GSN
	// sequence. GSNs are stamped densely within a session (per-open epoch
	// records absorb the counter re-seed), and the commit path forces every
	// record below an acknowledged commit durable across streams before
	// acking — so a gap means a record that surviving sibling-stream
	// records may depend on was lost, and the recovered state past the
	// first gap should not be trusted blindly. Recovery still replays
	// (surviving records are better applied than dropped) but surfaces the
	// holes here, in the recovery.gsn_gaps counter, and as events.
	GSNGaps []wal.GSNGap
	// InDoubt lists 2PC-prepared transactions recovery left attached
	// (neither undone nor released), sorted by ID. The opener must resolve
	// each against its coordinator's decision.
	InDoubt []InDoubtTxn
	// Decisions maps global transaction IDs to the coordinator verdicts
	// (true = commit) found in this database's log — populated only on a
	// shard that acted as coordinator.
	Decisions map[uint64]bool
}

// Open opens the database in cfg.Dir, running restart recovery if it has
// any durable state. When the log records a failed audit (or
// Options.ExtraCorrupt is given, or the scheme stores codewords in read
// log records), the delete-transaction corruption recovery algorithm of
// §4.3 runs as part of restart recovery; otherwise plain multi-level
// restart recovery runs. Recovery ends with a checkpoint, so a subsequent
// crash recovers from a clean image.
func Open(cfg core.Config, opts Options) (*core.DB, *Report, error) {
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, nil, err
	}
	report := &Report{}

	anchorExists := fileExists(filepath.Join(cfg.Dir, ckpt.AnchorFileName))
	nStreams, err := wal.DetectStreamsFS(cfg.FS, cfg.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("recovery: %w", err)
	}
	logExists := nStreams > 0
	if !anchorExists && !logExists {
		db, err := core.Open(cfg)
		if err != nil {
			return nil, nil, err
		}
		report.FreshDatabase = true
		return db, report, nil
	}

	// Load the current certified checkpoint (or start from a zero image
	// if the database crashed before its first checkpoint completed).
	imageSize := roundUp(cfg.ArenaSize, cfg.PageSize)
	var (
		image   []byte
		meta    []byte
		entries = make(map[wal.TxnID]*wal.TxnEntry)
		ckEnds  []wal.LSN
		auditSN wal.LSN
		fbFrom  int // images involved in a fallback load, for the event
		fbTo    int
	)
	if anchorExists {
		loaded, err := ckpt.LoadFS(cfg.FS, cfg.Dir)
		if errors.Is(err, ckpt.ErrImageCorrupt) {
			// The anchored image cannot be trusted (a torn page from lying
			// storage, a bad meta checksum). The other ping-pong image is
			// one checkpoint older but was certified in its day; it is a
			// valid starting point exactly when the stable log still
			// reaches back to its CK_end (log compaction normally discards
			// those records, so this rescue mostly applies to databases run
			// with DisableLogCompaction).
			loadErr := err
			fb, fberr := ckpt.LoadFallbackFS(cfg.FS, cfg.Dir)
			if fberr != nil {
				return nil, nil, fmt.Errorf("recovery: %w (fallback image also unusable: %v)", loadErr, fberr)
			}
			bases, berr := wal.LogBasesFS(cfg.FS, cfg.Dir)
			if berr != nil {
				return nil, nil, fmt.Errorf("recovery: %w (fallback log base: %v)", loadErr, berr)
			}
			fbVec := fb.Anchor.Vector()
			for i, base := range bases {
				// Streams beyond the fallback's vector replay from their own
				// base, which trivially reaches back far enough.
				if i < len(fbVec) && base > fbVec[i] {
					return nil, nil, fmt.Errorf("recovery: %w (fallback image needs stream %d log from %d but it was compacted to %d)",
						loadErr, i, fbVec[i], base)
				}
			}
			loaded, err = fb, nil
			report.UsedFallbackImage = true
			fbTo = fb.Anchor.Current
			fbFrom = 1 - fbTo
		}
		if err != nil {
			return nil, nil, fmt.Errorf("recovery: %w", err)
		}
		if len(loaded.Image) != imageSize {
			return nil, nil, fmt.Errorf("recovery: checkpoint image is %d bytes, config implies %d",
				len(loaded.Image), imageSize)
		}
		image = loaded.Image
		meta = loaded.Meta
		ckEnds = loaded.Anchor.Vector()
		auditSN = loaded.Anchor.AuditSN
		report.CheckpointSeq = loaded.Anchor.SeqNo
		for _, e := range loaded.ATTEntries {
			entries[e.ID] = e
		}
	} else {
		image = make([]byte, imageSize)
	}
	db, rep, err := openFrom(cfg, image, meta, entries, ckEnds, auditSN, opts, report)
	if err == nil && rep.UsedFallbackImage {
		reg := db.Observability()
		reg.Counter(obs.NameCkptFallbacks).Inc()
		if reg.HasSinks() {
			reg.Emit(obs.CkptFallbackEvent{From: fbFrom, To: fbTo})
		}
	}
	return db, rep, err
}

// ImageState is an externally supplied starting point for recovery: a
// consistent database image and the log position it is consistent with
// (an archive). No in-flight transactions may exist at that position.
type ImageState struct {
	Image   []byte
	Meta    []byte
	CKEnd   wal.LSN
	AuditSN wal.LSN
	// CKEnds is the per-stream consistency vector for multi-stream logs
	// (entry 0 equals CKEnd). Empty means single-stream: streams beyond
	// the vector replay from their base.
	CKEnds []wal.LSN
}

// OpenFromImage runs restart recovery from an externally supplied image
// instead of the current checkpoint (media recovery from an archive). The
// directory's retained log must reach back to st.CKEnd. The checkpoint
// anchor and images in the directory are ignored and replaced by the
// completion checkpoint.
func OpenFromImage(cfg core.Config, st ImageState, opts Options) (*core.DB, *Report, error) {
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, nil, err
	}
	imageSize := roundUp(cfg.ArenaSize, cfg.PageSize)
	if len(st.Image) != imageSize {
		return nil, nil, fmt.Errorf("recovery: supplied image is %d bytes, config implies %d",
			len(st.Image), imageSize)
	}
	ckEnds := st.CKEnds
	if len(ckEnds) == 0 {
		ckEnds = []wal.LSN{st.CKEnd}
	}
	report := &Report{ScanStart: st.CKEnd}
	image := append([]byte(nil), st.Image...)
	return openFrom(cfg, image, st.Meta, make(map[wal.TxnID]*wal.TxnEntry),
		ckEnds, st.AuditSN, opts, report)
}

// openFrom is the shared redo/undo/checkpoint pipeline behind Open and
// OpenFromImage.
func openFrom(cfg core.Config, image, meta []byte, entries map[wal.TxnID]*wal.TxnEntry,
	ckEnds []wal.LSN, auditSN wal.LSN, opts Options, report *Report) (*core.DB, *Report, error) {
	var ckEnd wal.LSN
	if len(ckEnds) > 0 {
		ckEnd = ckEnds[0]
	}
	report.ScanStart = ckEnd

	// One merged scan: every stream is read concurrently from its entry in
	// the checkpoint's stream vector (streams the vector predates replay
	// from their base) and the records merge into global GSN order. Both
	// the pre-scan and the redo scan walk this one materialized sequence.
	merged, err := wal.ScanStreamsFS(cfg.FS, cfg.Dir, ckEnds)
	if err != nil {
		return nil, nil, err
	}

	// GSN density check: each stream's scan ended independently at its own
	// torn tail, so a hole in the stamped sequence — a lost record with
	// surviving higher-GSN records merged over it — would otherwise be
	// undetectable. Gaps are surfaced (report, counter, events below), not
	// fatal: replaying the surviving records still converges the image,
	// and the audit pass decides what state is trustworthy.
	report.GSNGaps = wal.FindGSNGaps(merged)

	// Pre-scan: locate the last clean audit (Audit_SN), gather the
	// corrupt ranges noted by failed audits, and find the ID horizon.
	pre := prescan(merged, auditSN)

	pcfg := cfg.Protect.Defaulted()
	cwMode := pcfg.Kind == protect.KindCWReadLog && !opts.DisableCorruptionMode
	corruptionMode := cwMode || opts.ForceCorruptionMode ||
		(!opts.DisableCorruptionMode && (len(pre.failRanges) > 0 || len(opts.ExtraCorrupt) > 0))
	report.CorruptionMode = corruptionMode
	report.CWMode = cwMode
	report.AuditSN = pre.lastCleanBegin

	var seed []Range
	seed = append(seed, pre.failRanges...)
	seed = append(seed, opts.ExtraCorrupt...)
	report.SeedCorrupt = seed

	// The partitioned parallel apply only runs outside corruption mode:
	// the delete-transaction algorithm's corrupt-read checks consult the
	// image as it evolves record by record, which is inherently serial.
	workers := opts.RedoWorkers
	if workers <= 0 {
		workers = cfg.Workers
	}
	deferApply := !corruptionMode && workers > 1
	report.RedoWorkers = 1
	if deferApply {
		report.RedoWorkers = workers
	}

	// Redo phase: forward scan in global order, repeating history
	// physically — except for transactions found to have read corrupt
	// data, whose writes are diverted into the CorruptDataTable (§4.3).
	scanState := &redoScan{
		image:      image,
		regionSize: pcfg.RegionSize,
		entries:    entries,
		ctt:        make(map[wal.TxnID]*DeletedTxn),
		cwMode:     cwMode,
		corruption: corruptionMode,
		seed:       seed,
		maxTxn:     pre.maxTxn,
		deferApply: deferApply,
	}
	for id := range entries {
		if id > scanState.maxTxn {
			scanState.maxTxn = id
		}
	}
	if corruptionMode && !cwMode && pre.lastCleanBegin <= ckEnd {
		scanState.seedNow()
	}
	for i, sr := range merged {
		if corruptionMode && !cwMode && !scanState.seeded && pre.seedIdx >= 0 && i >= pre.seedIdx {
			// The merged scan reached Audit_SN (the begin record of the
			// last clean audit): seed the data known corrupt at that point.
			scanState.seedNow()
		}
		if !scanState.step(sr.R) {
			break
		}
	}
	if scanState.err != nil {
		return nil, nil, scanState.err
	}
	report.RecordsScanned = scanState.scanned
	report.RedoApplied = scanState.applied

	// Deferred parallel apply: workers own disjoint contiguous partitions
	// of the image and each walks the full apply list in global order,
	// copying only the bytes that intersect its partition. Every image
	// byte is written by exactly one worker in record order, so the final
	// image — and every captured before-image — is byte-identical to a
	// serial replay.
	var redoNS uint64
	if deferApply && len(scanState.items) > 0 {
		startApply := time.Now()
		applyParallel(image, scanState.items, workers)
		redoNS = uint64(time.Since(startApply).Nanoseconds())
	}

	// Assemble the database around the recovered image.
	db, err := core.NewRecovered(cfg, &core.RecoveredState{
		Image:     image,
		Meta:      meta,
		NextTxnID: scanState.maxTxn + 1,
		AuditSN:   pre.maxAuditSN,
	})
	if err != nil {
		return nil, nil, err
	}
	report.LogStreams = db.Internals().Log.NumStreams()
	reg := db.Observability()
	reg.Gauge(obs.NameRecoveryRedoWorkers).Set(int64(report.RedoWorkers))
	if deferApply {
		reg.Histogram(obs.NameRecoveryParallelNS).Observe(redoNS)
	}
	if len(report.GSNGaps) > 0 {
		reg.Counter(obs.NameRecoveryGSNGaps).Add(uint64(len(report.GSNGaps)))
		if reg.HasSinks() {
			for _, g := range report.GSNGaps {
				reg.Emit(obs.RecoveryGSNGapEvent{After: g.After, Next: g.Next, Stream: g.Stream})
			}
		}
	}

	// Undo phase: every remaining entry — incomplete transactions and
	// deleted (corrupt) transactions alike — is rolled back, level by
	// level: first the physical undos of operations that never committed,
	// then logical undos across transactions in reverse operation-commit
	// order.
	if err := undoPhase(db, entries, scanState.ctt, report); err != nil {
		db.Close()
		return nil, nil, err
	}
	report.FinalCorrupt = scanState.cdt.Ranges()
	report.Decisions = scanState.decisions

	// Completion checkpoint (§4.3): without it a future recovery would
	// rediscover the same corruption and delete transactions that started
	// after this recovery.
	if opts.SkipCompletionCheckpoint {
		if err := db.Internals().Log.Flush(); err != nil {
			db.Close()
			return nil, nil, err
		}
		return db, report, nil
	}
	if err := db.Checkpoint(); err != nil {
		db.Close()
		return nil, nil, fmt.Errorf("recovery: completion checkpoint: %w", err)
	}
	return db, report, nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func roundUp(n, multiple int) int {
	if r := n % multiple; r != 0 {
		return n + multiple - r
	}
	return n
}

// prescanResult carries what the first pass learned.
type prescanResult struct {
	lastCleanBegin wal.LSN
	// seedIdx is the position in the merged scan where the corruption
	// algorithm seeds the CorruptDataTable: the first stream-0 record at
	// or past Audit_SN (audit records live on stream 0, so Audit_SN is a
	// stream-0 LSN). -1 when no scanned record qualifies.
	seedIdx    int
	failRanges []Range
	maxTxn     wal.TxnID
	maxAuditSN uint64
}

// prescan finds Audit_SN (the begin LSN of the last clean audit), the
// ranges noted corrupt by failed audits, and the transaction/audit ID
// horizons. It must be a separate pass because corrupt ranges are seeded
// into the CorruptDataTable when the main scan passes Audit_SN, which is
// earlier in the log than the failed audit that noted them.
func prescan(merged []wal.StreamRecord, anchorAuditSN wal.LSN) *prescanResult {
	res := &prescanResult{lastCleanBegin: anchorAuditSN, seedIdx: -1}
	begins := make(map[uint64]wal.LSN)
	for _, sr := range merged {
		r := sr.R
		if r.Txn > res.maxTxn {
			res.maxTxn = r.Txn
		}
		switch r.Kind {
		case wal.KindAuditBegin:
			begins[r.AuditSN] = r.LSN
			if r.AuditSN > res.maxAuditSN {
				res.maxAuditSN = r.AuditSN
			}
		case wal.KindAuditEnd:
			if r.AuditSN > res.maxAuditSN {
				res.maxAuditSN = r.AuditSN
			}
			if r.AuditClean {
				if lsn, ok := begins[r.AuditSN]; ok && lsn > res.lastCleanBegin {
					res.lastCleanBegin = lsn
				}
			} else {
				for i := range r.CorruptAddrs {
					res.failRanges = append(res.failRanges, Range{
						Start: r.CorruptAddrs[i], Len: int(r.CorruptLens[i]),
					})
				}
			}
		}
	}
	for i, sr := range merged {
		if sr.Stream == 0 && sr.R.LSN >= res.lastCleanBegin {
			res.seedIdx = i
			break
		}
	}
	return res
}

// redoScan is the state of the redo phase's forward scan.
type redoScan struct {
	image      []byte
	regionSize int
	entries    map[wal.TxnID]*wal.TxnEntry
	ctt        map[wal.TxnID]*DeletedTxn // CorruptTransTable
	cdt        RangeSet                  // CorruptDataTable
	cwMode     bool
	corruption bool
	seed       []Range
	seeded     bool
	maxTxn     wal.TxnID
	scanned    int
	applied    int
	decisions  map[uint64]bool // coordinator verdicts seen in this log
	// deferApply diverts physical redos into items for the partitioned
	// parallel apply pass instead of applying them inline.
	deferApply bool
	items      []applyItem
	err        error
}

// applyItem is one physical redo deferred for the parallel apply pass.
// before is the undo buffer already pushed on the transaction's entry;
// apply workers fill the parts of it that intersect their partition.
type applyItem struct {
	addr   mem.Addr
	data   []byte
	before []byte
}

// applyParallel replays deferred physical redos with workers owning
// disjoint contiguous byte partitions of the image. Each worker walks the
// full item list in global order and copies only the intersection with
// its partition — capturing the before-image, then applying the data —
// so per byte the replay happens exactly in serial order, and no two
// workers touch the same byte of the image or of any before buffer.
func applyParallel(image []byte, items []applyItem, workers int) {
	pool := region.NewPool(workers)
	psz := (len(image) + workers - 1) / workers
	if psz < 1 {
		psz = 1
	}
	pool.Run(workers, 1, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			plo := p * psz
			phi := plo + psz
			if plo >= len(image) {
				continue
			}
			if phi > len(image) {
				phi = len(image)
			}
			for _, it := range items {
				a := int(it.addr)
				s, e := a, a+len(it.data)
				if s < plo {
					s = plo
				}
				if e > phi {
					e = phi
				}
				if s >= e {
					continue
				}
				copy(it.before[s-a:e-a], image[s:e])
				copy(image[s:e], it.data[s-a:e-a])
			}
		}
	})
}

func (s *redoScan) seedNow() {
	for _, r := range s.seed {
		s.cdt.Add(r)
	}
	s.seeded = true
}

func (s *redoScan) entry(id wal.TxnID) *wal.TxnEntry {
	e, ok := s.entries[id]
	if !ok {
		e = &wal.TxnEntry{ID: id, State: wal.TxnActive}
		s.entries[id] = e
	}
	return e
}

func (s *redoScan) inCTT(id wal.TxnID) bool {
	_, ok := s.ctt[id]
	return ok
}

func (s *redoScan) addCTT(id wal.TxnID) {
	if _, ok := s.ctt[id]; !ok {
		s.ctt[id] = &DeletedTxn{ID: id}
	}
}

// imageCW computes the XOR-combined codeword of the protection regions
// covering [addr, addr+n) in the image being recovered; this is the value
// the CW Read Logging scheme logged at read/write time.
func (s *redoScan) imageCW(addr mem.Addr, n int) region.Codeword {
	if n <= 0 {
		return 0
	}
	first := int(addr) / s.regionSize
	last := (int(addr) + n - 1) / s.regionSize
	var cw region.Codeword
	for r := first; r <= last; r++ {
		start := r * s.regionSize
		end := start + s.regionSize
		if end > len(s.image) {
			break
		}
		cw ^= region.Compute(s.image[start:end])
	}
	return cw
}

// readIndicatesCorrupt decides whether a read log record shows the
// transaction read corrupt data: by CorruptDataTable overlap, or — in the
// CW variant — by the logged codeword disagreeing with the codeword
// computed from the image being recovered (§4.3 extension, case 1).
func (s *redoScan) readIndicatesCorrupt(r *wal.Record) bool {
	if s.cwMode && r.HasCW {
		return s.imageCW(r.Addr, r.Len) != r.CW
	}
	return s.cdt.Overlaps(r.Addr, r.Len)
}

// writeIndicatesCorrupt decides the same for a physical write record: a
// write is treated as a read followed by a write (§4.3 extension, case
// 2), so an in-place update of corrupt data marks the writer corrupt.
func (s *redoScan) writeIndicatesCorrupt(r *wal.Record) bool {
	if s.cwMode && r.HasCW {
		return s.imageCW(r.Addr, len(r.Data)) != r.CW
	}
	return s.cdt.Overlaps(r.Addr, len(r.Data))
}

// conflictsWithCTT reports whether an operation on key conflicts with any
// operation in the undo log of a corrupted transaction. Allowing such an
// operation to proceed would prevent the corrupt transaction from being
// rolled back (§4.3, begin-operation rule).
func (s *redoScan) conflictsWithCTT(key wal.ObjectKey) bool {
	for id := range s.ctt {
		if e, ok := s.entries[id]; ok && e.HasUndoForKey(key) {
			return true
		}
	}
	return false
}

// step processes one log record of the forward scan.
func (s *redoScan) step(r *wal.Record) bool {
	s.scanned++
	if r.Txn > s.maxTxn {
		s.maxTxn = r.Txn
	}
	switch r.Kind {
	case wal.KindTxnBegin:
		s.entry(r.Txn)

	case wal.KindRead:
		if !s.corruption || s.inCTT(r.Txn) {
			break
		}
		if s.readIndicatesCorrupt(r) {
			s.addCTT(r.Txn)
		}

	case wal.KindPhysRedo:
		if s.corruption && s.inCTT(r.Txn) {
			// The transaction read corrupt data: its writes are not
			// applied; the data it would have written is noted corrupt.
			s.cdt.Add(Range{Start: r.Addr, Len: len(r.Data)})
			break
		}
		if s.corruption && s.writeIndicatesCorrupt(r) {
			s.addCTT(r.Txn)
			s.cdt.Add(Range{Start: r.Addr, Len: len(r.Data)})
			break
		}
		end := int(r.Addr) + len(r.Data)
		if end > len(s.image) {
			s.err = fmt.Errorf("recovery: redo record [%d,+%d) beyond image", r.Addr, len(r.Data))
			return false
		}
		e := s.entry(r.Txn)
		before := make([]byte, len(r.Data))
		u := e.PushPhysUndo(r.Addr, before)
		u.CodewordPending = false // codewords are recomputed wholesale after redo
		if s.deferApply {
			s.items = append(s.items, applyItem{addr: r.Addr, data: r.Data, before: before})
		} else {
			copy(before, s.image[r.Addr:end])
			copy(s.image[r.Addr:end], r.Data)
		}
		s.applied++

	case wal.KindOpBegin:
		if s.inCTT(r.Txn) {
			break
		}
		if s.corruption && s.conflictsWithCTT(r.Key) {
			s.addCTT(r.Txn)
			break
		}
		s.entry(r.Txn).PushOpBegin(r.Level, r.Key)

	case wal.KindOpCommit:
		if s.inCTT(r.Txn) {
			break // logical records of corrupt transactions are ignored
		}
		e := s.entry(r.Txn)
		if r.Compensation {
			if err := e.CommitCompensationOp(); err != nil {
				s.err = fmt.Errorf("recovery: %w", err)
				return false
			}
		} else {
			if err := e.CommitOp(r.Level, r.Key, r.Undo, r.OrderLSN()); err != nil {
				s.err = fmt.Errorf("recovery: %w", err)
				return false
			}
		}

	case wal.KindTxnCommit:
		if d, ok := s.ctt[r.Txn]; ok {
			d.Committed = true // ignored: the commit is deleted from history
			break
		}
		delete(s.entries, r.Txn)

	case wal.KindTxnAbort:
		if s.inCTT(r.Txn) {
			break
		}
		delete(s.entries, r.Txn)

	case wal.KindTxnPrepare:
		if s.inCTT(r.Txn) {
			// Delete-transaction semantics trump 2PC: a prepared
			// transaction that read corrupt data is deleted from history
			// like any other, and presumed abort covers the global side.
			break
		}
		e := s.entry(r.Txn)
		e.State = wal.TxnPrepared
		e.GID = r.GID

	case wal.KindTxnDecision:
		if s.decisions == nil {
			s.decisions = make(map[uint64]bool)
		}
		s.decisions[r.GID] = r.Decision

	case wal.KindAuditBegin, wal.KindAuditEnd:
		// Handled by the pre-scan.
	}
	return true
}

// undoPhase rolls back every remaining transaction: physical undo of
// operations that never committed first (level 0), then logical undo of
// committed operations across transactions in descending commit-LSN
// order (level by level, newest first). 2PC-prepared transactions are the
// exception: they are attached to the ATT but neither undone nor
// finalized — their fate belongs to their coordinator, and the caller
// resolves them through the report's InDoubt list.
func undoPhase(db *core.DB, entries map[wal.TxnID]*wal.TxnEntry, ctt map[wal.TxnID]*DeletedTxn, report *Report) error {
	ids := make([]wal.TxnID, 0, len(entries))
	for id := range entries {
		e := entries[id]
		if e.State == wal.TxnPrepared {
			// In corruption mode a prepared transaction can still be in the
			// CTT (it read corrupt data); deletion trumps the prepared
			// state, so only clean prepared transactions stay in doubt.
			if _, deleted := ctt[id]; !deleted {
				db.Internals().ATT.Attach(e)
				report.InDoubt = append(report.InDoubt, InDoubtTxn{ID: e.ID, GID: e.GID})
				continue
			}
			e.State = wal.TxnActive
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	sort.Slice(report.InDoubt, func(i, j int) bool { return report.InDoubt[i].ID < report.InDoubt[j].ID })

	txns := make(map[wal.TxnID]*core.Txn, len(ids))
	for _, id := range ids {
		e := entries[id]
		db.Internals().ATT.Attach(e)
		txns[id] = db.AdoptTxn(e)
	}

	// Level 0: physical undo of open operations.
	for _, id := range ids {
		if err := txns[id].UndoOpenOp(); err != nil {
			return fmt.Errorf("recovery: physical undo of txn %d: %w", id, err)
		}
	}
	// Level 1+: logical undos, globally newest-first.
	for {
		var best *core.Txn
		var bestLSN wal.LSN
		for _, id := range ids {
			e := entries[id]
			if n := len(e.Undo); n > 0 && e.Undo[n-1].Kind == wal.UndoLogical {
				if lsn := e.Undo[n-1].CommitLSN; best == nil || lsn > bestLSN {
					best, bestLSN = txns[id], lsn
				}
			}
		}
		if best == nil {
			break
		}
		if err := best.ExecLogicalUndoTop(); err != nil {
			return fmt.Errorf("recovery: logical undo of txn %d: %w", best.ID(), err)
		}
		// Executing a logical undo may expose physical/marker entries in
		// no legal history (compensations pop cleanly), but re-run the
		// physical pass defensively.
		if err := best.UndoOpenOp(); err != nil {
			return err
		}
	}
	// Finalize: abort records, ATT removal, report.
	for _, id := range ids {
		e := entries[id]
		if len(e.Undo) != 0 {
			return fmt.Errorf("recovery: txn %d not fully undone (%d entries left)", id, len(e.Undo))
		}
		txns[id].FinishAborted()
		if d, ok := ctt[id]; ok {
			report.Deleted = append(report.Deleted, *d)
		} else {
			report.RolledBack = append(report.RolledBack, id)
		}
	}
	// Deleted transactions that completed before the checkpoint horizon
	// have no entry; still report them.
	for id, d := range ctt {
		if _, ok := entries[id]; !ok {
			report.Deleted = append(report.Deleted, *d)
		}
	}
	sort.Slice(report.Deleted, func(i, j int) bool { return report.Deleted[i].ID < report.Deleted[j].ID })
	sort.Slice(report.RolledBack, func(i, j int) bool { return report.RolledBack[i] < report.RolledBack[j] })
	return nil
}
