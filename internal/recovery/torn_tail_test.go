package recovery

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/protect"
	"repro/internal/wal"
)

// copyDBDir copies every regular file of a database directory into a
// fresh directory, so each torn-tail scenario mutates its own copy.
func copyDBDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// logFrame is one stable-log record's location: [start, end) in LSN
// units.
type logFrame struct {
	start, end wal.LSN
	kind       wal.Kind
	txn        wal.TxnID
}

// scanFrames reads the full stable log layout: every frame with its
// boundaries, plus the log base (file offset of LSN x is
// logHeader + x - base).
func scanFrames(t *testing.T, dir string) (frames []logFrame, base wal.LSN, logEnd wal.LSN) {
	t.Helper()
	base, err := wal.LogBase(dir)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(dir, wal.LogFileName))
	if err != nil {
		t.Fatal(err)
	}
	logEnd = base + wal.LSN(fi.Size()-16)
	if err := wal.Scan(dir, base, func(r *wal.Record) bool {
		frames = append(frames, logFrame{start: r.LSN, kind: r.Kind, txn: r.Txn})
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for i := range frames {
		if i+1 < len(frames) {
			frames[i].end = frames[i+1].start
		} else {
			frames[i].end = logEnd
		}
	}
	return frames, base, logEnd
}

// TestTornLogTailRecovery cuts (and corrupts) the stable log at every
// record boundary after CK_end, at mid-record positions, and verifies
// the fail-stop recovery contract for each: recovery converges, the
// codeword audit is clean, and the state reflects exactly the
// transactions whose commit record survived intact — replay stops at the
// first torn or corrupt frame, never resurrecting a partial suffix.
func TestTornLogTailRecovery(t *testing.T) {
	cfg := core.Config{
		Dir:       t.TempDir(),
		ArenaSize: 1 << 18,
		Protect:   protect.Config{Kind: protect.KindDataCW, RegionSize: 64},
	}
	db, tb := setupTable(t, cfg, 4)

	// Committed post-checkpoint history: update i writes byte 0xC0+i at
	// offset 0 of slot i%4.
	type upd struct {
		slot uint32
		val  byte
		id   wal.TxnID
	}
	var upds []upd
	for i := 0; i < 6; i++ {
		v := byte(0xC0 + i)
		slot := uint32(i % 4)
		id := updateRec(t, db, tb, slot, []byte{v})
		upds = append(upds, upd{slot: slot, val: v, id: id})
	}
	db.Crash()

	loaded, err := ckpt.Load(cfg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	ckEnd := loaded.Anchor.CKEnd
	frames, base, logEnd := scanFrames(t, cfg.Dir)

	// Each transaction's history survives a cut at LSN p iff its commit
	// frame ends at or before p.
	commitEnd := make(map[wal.TxnID]wal.LSN)
	for _, f := range frames {
		if f.kind == wal.KindTxnCommit {
			commitEnd[f.txn] = f.end
		}
	}
	for _, u := range upds {
		if _, ok := commitEnd[u.id]; !ok {
			t.Fatalf("no commit frame for update txn %d", u.id)
		}
	}

	// expected returns slot s's byte 0 after recovering a log whose last
	// intact frame ends at lastEnd.
	expected := func(s uint32, lastEnd wal.LSN) byte {
		v := byte(s + 1) // setupTable's fill
		for _, u := range upds {
			if u.slot == s && commitEnd[u.id] <= lastEnd {
				v = u.val
			}
		}
		return v
	}

	verify := func(t *testing.T, dir string, lastEnd wal.LSN) {
		t.Helper()
		c := cfg
		c.Dir = dir
		db2, tb2, _ := reopen(t, c, Options{})
		defer db2.Close()
		if err := db2.Audit(); err != nil {
			t.Fatalf("audit: %v", err)
		}
		for s := uint32(0); s < 4; s++ {
			want := expected(s, lastEnd)
			if got := readRec(t, db2, tb2, s); got[0] != want {
				t.Fatalf("slot %d = %#x, want %#x (last intact frame ends at %d)", s, got[0], want, lastEnd)
			}
		}
	}

	truncateLog := func(t *testing.T, dir string, at wal.LSN) {
		t.Helper()
		if err := os.Truncate(filepath.Join(dir, wal.LogFileName), 16+int64(at-base)); err != nil {
			t.Fatal(err)
		}
	}
	flipByte := func(t *testing.T, dir string, at wal.LSN) {
		t.Helper()
		path := filepath.Join(dir, wal.LogFileName)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[16+int(at-base)] ^= 0xFF
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	scenarios := 0
	for _, f := range frames {
		if f.start < ckEnd {
			continue // recovery's scan starts at CK_end; earlier frames are history
		}
		mid := f.start + (f.end-f.start)/2

		// Cut exactly at the frame boundary: this frame and everything
		// after is gone.
		t.Run(fmt.Sprintf("truncate@%d", f.start), func(t *testing.T) {
			dir := copyDBDir(t, cfg.Dir)
			truncateLog(t, dir, f.start)
			verify(t, dir, f.start)
		})
		scenarios++

		if mid > f.start {
			// Cut mid-frame: the partial frame must be discarded.
			t.Run(fmt.Sprintf("truncate@%d.mid", f.start), func(t *testing.T) {
				dir := copyDBDir(t, cfg.Dir)
				truncateLog(t, dir, mid)
				verify(t, dir, f.start)
			})
			// Flip a byte mid-frame: the CRC refuses the frame, and — the
			// fail-stop part — every frame after it is ignored too, even
			// though they are intact.
			t.Run(fmt.Sprintf("corrupt@%d.mid", f.start), func(t *testing.T) {
				dir := copyDBDir(t, cfg.Dir)
				flipByte(t, dir, mid)
				verify(t, dir, f.start)
			})
			scenarios += 2
		}
	}
	// The unmutated log recovers everything.
	t.Run("intact", func(t *testing.T) {
		dir := copyDBDir(t, cfg.Dir)
		verify(t, dir, logEnd)
	})
	if scenarios < 10 {
		t.Fatalf("only %d torn-tail scenarios generated; workload too small", scenarios)
	}
}
