package recovery

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/wal"
)

// CacheRecover implements the cache-recovery model of §4.2: direct
// physical corruption is removed from the in-memory image in place, under
// the assumption that no transaction has read the corrupt data (which the
// Read Prechecking scheme guarantees, and which an audit that fires
// before any read implies for the Data Codeword schemes). Each corrupt
// range is restored from the certified checkpoint image — which is free
// of corruption by construction — and the physical redo records since
// CK_end are replayed over it, clipped to the range.
//
// The database must be quiescent: no active transactions (an in-flight
// transaction could hold unlogged updates inside the range). On success
// the scheme's codewords are recomputed and the repaired ranges re-audited.
func CacheRecover(db *core.DB, ranges []Range) error {
	if len(ranges) == 0 {
		return nil
	}
	if n := db.Internals().ATT.Len(); n != 0 {
		return fmt.Errorf("recovery: cache recovery requires quiescence; %d transactions active", n)
	}
	loaded, err := ckpt.LoadFS(db.FS(), db.Config().Dir)
	if err != nil {
		return fmt.Errorf("recovery: cache recovery needs a certified checkpoint: %w", err)
	}
	var set RangeSet
	for _, r := range ranges {
		set.Add(r)
	}
	return db.ExclusiveBarrier(func() error {
		if err := db.Internals().Log.Flush(); err != nil {
			return err
		}
		arena := db.Internals().Arena
		// Restore the ranges from the checkpoint image.
		for _, r := range set.Ranges() {
			if int(r.Start)+r.Len > len(loaded.Image) {
				return fmt.Errorf("recovery: corrupt range %v beyond checkpoint image", r)
			}
			copy(arena.Slice(r.Start, r.Len), loaded.Image[r.Start:int(r.Start)+r.Len])
		}
		// Replay committed physical history over the ranges.
		err := wal.ScanFS(db.FS(), db.Config().Dir, loaded.Anchor.CKEnd, func(rec *wal.Record) bool {
			if rec.Kind != wal.KindPhysRedo || len(rec.Data) == 0 {
				return true
			}
			if !set.Overlaps(rec.Addr, len(rec.Data)) {
				return true
			}
			// Clip the record to each repaired range.
			recEnd := rec.Addr + mem.Addr(len(rec.Data))
			for _, r := range set.Ranges() {
				start := max(rec.Addr, r.Start)
				end := min(recEnd, r.end())
				if start >= end {
					continue
				}
				copy(arena.Slice(start, int(end-start)), rec.Data[start-rec.Addr:end-rec.Addr])
			}
			return true
		})
		if err != nil {
			return err
		}
		// Re-derive protection state and verify the repair.
		if err := db.Scheme().Recompute(); err != nil {
			return err
		}
		for _, r := range set.Ranges() {
			if bad := db.Scheme().AuditRange(r.Start, r.Len); len(bad) != 0 {
				return fmt.Errorf("recovery: range %v still corrupt after cache recovery: %v", r, bad)
			}
		}
		return nil
	})
}
