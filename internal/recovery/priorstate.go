package recovery

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/iofault"
	"repro/internal/wal"
)

// PriorState implements the paper's prior-state model of corruption
// recovery (§4.1): the database is returned to a transaction-consistent
// state strictly before the given log position — typically the moment
// corruption is first suspected — by replaying only the log prefix. All
// later transactions are discarded, whether or not they were affected;
// compensating for them is entirely the user's burden, which is the
// paper's argument for preferring the delete-transaction model.
//
// The implementation truncates the stable log at the last record boundary
// at or before `before` and runs ordinary restart recovery on the prefix:
// transactions whose commit records fall past the cut become incomplete
// and are rolled back, yielding exactly the transaction-consistent prior
// state. The current certified checkpoint must predate the cut (the
// ping-pong pair keeps no deep archive; with CK_end past the cut the
// caller needs an archive image this reproduction does not retain, and an
// error is returned).
func PriorState(cfg core.Config, before wal.LSN, opts Options) (*core.DB, *Report, error) {
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, nil, err
	}
	if loaded, err := ckpt.LoadFS(cfg.FS, cfg.Dir); err == nil {
		if loaded.Anchor.CKEnd > before {
			return nil, nil, fmt.Errorf(
				"recovery: prior-state target %d predates the checkpoint (CK_end %d); an archive image would be required",
				before, loaded.Anchor.CKEnd)
		}
	}
	cut, err := boundaryAtOrBefore(cfg.FS, cfg.Dir, before)
	if err != nil {
		return nil, nil, err
	}
	if err := wal.TruncateAtFS(cfg.FS, cfg.Dir, cut); err != nil {
		return nil, nil, fmt.Errorf("recovery: truncate log for prior state: %w", err)
	}
	// Corruption-mode machinery is pointless on the prefix: everything at
	// or after the suspect point is gone.
	opts.DisableCorruptionMode = true
	return Open(cfg, opts)
}

// boundaryAtOrBefore finds the largest record boundary <= target, at or
// above the log's base (records below the base were compacted away).
func boundaryAtOrBefore(fsys iofault.FS, dir string, target wal.LSN) (wal.LSN, error) {
	base, err := wal.LogBaseFS(fsys, dir)
	if err != nil {
		return 0, err
	}
	if target < base {
		return 0, fmt.Errorf("recovery: prior-state target %d precedes the retained log (base %d)", target, base)
	}
	cut := base
	err = wal.ScanFS(fsys, dir, base, func(r *wal.Record) bool {
		end := r.LSN + wal.LSN(r.EncodedSize())
		if end > target {
			return false
		}
		cut = end
		return true
	})
	if err != nil {
		return 0, err
	}
	return cut, nil
}
