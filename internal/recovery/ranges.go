// Package recovery implements restart recovery for the reproduced Dalí
// storage manager and — the paper's §4 contribution — corruption recovery
// under the delete-transaction model, including the codeword-in-read-log
// (view-consistent) extension and cache recovery for direct corruption.
package recovery

import (
	"fmt"
	"sort"

	"repro/internal/mem"
)

// Range is a half-open byte range [Start, Start+Len) of the database
// image.
type Range struct {
	Start mem.Addr
	Len   int
}

func (r Range) end() mem.Addr { return r.Start + mem.Addr(r.Len) }

// End reports the exclusive upper bound of the range.
func (r Range) End() mem.Addr { return r.end() }

func (r Range) String() string {
	return fmt.Sprintf("[%d,+%d)", r.Start, r.Len)
}

// RangeSet is the CorruptDataTable: a set of byte ranges kept sorted and
// coalesced.
type RangeSet struct {
	rs []Range
}

// Add inserts a range, merging overlapping or adjacent entries.
func (s *RangeSet) Add(r Range) {
	if r.Len <= 0 {
		return
	}
	i := sort.Search(len(s.rs), func(i int) bool { return s.rs[i].end() >= r.Start })
	j := i
	start, end := r.Start, r.end()
	for j < len(s.rs) && s.rs[j].Start <= end {
		if s.rs[j].Start < start {
			start = s.rs[j].Start
		}
		if s.rs[j].end() > end {
			end = s.rs[j].end()
		}
		j++
	}
	merged := Range{Start: start, Len: int(end - start)}
	s.rs = append(s.rs[:i], append([]Range{merged}, s.rs[j:]...)...)
}

// Overlaps reports whether [start, start+n) intersects any range in the
// set. A zero-length query never overlaps.
func (s *RangeSet) Overlaps(start mem.Addr, n int) bool {
	if n <= 0 {
		return false
	}
	end := start + mem.Addr(n)
	i := sort.Search(len(s.rs), func(i int) bool { return s.rs[i].end() > start })
	return i < len(s.rs) && s.rs[i].Start < end
}

// Ranges returns the coalesced contents.
func (s *RangeSet) Ranges() []Range {
	return append([]Range(nil), s.rs...)
}

// Len reports the number of coalesced ranges.
func (s *RangeSet) Len() int { return len(s.rs) }

// Empty reports whether the set is empty.
func (s *RangeSet) Empty() bool { return len(s.rs) == 0 }
