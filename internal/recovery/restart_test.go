package recovery

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/heap"
	"repro/internal/protect"
	"repro/internal/wal"
)

// testConfig returns a small database config in a fresh directory.
// DisableHeal pins the paper's §4 semantics throughout this package:
// these tests inject single-word wild writes and assert the
// detect → crash → delete-transaction ladder, which the ECC tier would
// otherwise short-circuit by repairing the word in place (that path has
// its own coverage in core and faultstudy).
func testConfig(t *testing.T, pc protect.Config) core.Config {
	t.Helper()
	pc.DisableHeal = true
	return core.Config{
		Dir:       t.TempDir(),
		ArenaSize: 1 << 18,
		Protect:   pc,
	}
}

// setupTable creates a fresh DB with one table of count committed
// records (record i filled with byte i+1), checkpoints, and returns it.
func setupTable(t *testing.T, cfg core.Config, count int) (*core.DB, *heap.Table) {
	t.Helper()
	db, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := heap.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := cat.CreateTable("t", 64, 256)
	if err != nil {
		t.Fatal(err)
	}
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < count; i++ {
		data := bytes.Repeat([]byte{byte(i + 1)}, 64)
		if _, err := tb.Insert(txn, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	return db, tb
}

// reopen runs recovery and rebinds the heap catalog.
func reopen(t *testing.T, cfg core.Config, opts Options) (*core.DB, *heap.Table, *Report) {
	t.Helper()
	db, rep, err := Open(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := heap.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := cat.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	return db, tb, rep
}

// readRec reads a whole record in a throwaway transaction.
func readRec(t *testing.T, db *core.DB, tb *heap.Table, slot uint32) []byte {
	t.Helper()
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer txn.Commit()
	got, err := tb.Read(txn, heap.RID{Table: tb.ID, Slot: slot})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// updateRec overwrites the first n bytes of a record in its own txn.
func updateRec(t *testing.T, db *core.DB, tb *heap.Table, slot uint32, data []byte) wal.TxnID {
	t.Helper()
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Update(txn, heap.RID{Table: tb.ID, Slot: slot}, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	return txn.ID()
}

func TestOpenFreshDatabase(t *testing.T) {
	cfg := testConfig(t, protect.Config{})
	db, rep, err := Open(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if !rep.FreshDatabase {
		t.Fatal("fresh dir not reported fresh")
	}
}

func TestRecoveryCommittedSurvivesCrash(t *testing.T) {
	cfg := testConfig(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	db, tb := setupTable(t, cfg, 5)
	id := updateRec(t, db, tb, 2, []byte("committed-data"))
	_ = id
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}

	db2, tb2, rep := reopen(t, cfg, Options{})
	defer db2.Close()
	if rep.FreshDatabase {
		t.Fatal("recovered DB reported fresh")
	}
	if rep.CorruptionMode {
		t.Fatal("corruption mode without corruption")
	}
	got := readRec(t, db2, tb2, 2)
	if string(got[:14]) != "committed-data" {
		t.Fatalf("committed update lost: %q", got[:14])
	}
	if got := readRec(t, db2, tb2, 3); got[0] != 4 {
		t.Fatalf("unrelated record damaged: %v", got[0])
	}
	if err := db2.Audit(); err != nil {
		t.Fatalf("audit after recovery: %v", err)
	}
}

func TestRecoveryRollsBackIncompleteTxn(t *testing.T) {
	cfg := testConfig(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	db, tb := setupTable(t, cfg, 3)
	// An uncommitted transaction with a committed op (logical undo needed)
	// and an open op (physical undo needed).
	txn, _ := db.Begin()
	if err := tb.Update(txn, heap.RID{Table: tb.ID, Slot: 0}, 0, []byte("UNCOMMITTED")); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(txn, bytes.Repeat([]byte{0x77}, 64)); err != nil {
		t.Fatal(err)
	}
	// Force the local redo into the system log without committing: another
	// committed txn's flush carries it? No — local logging keeps it
	// private. To exercise logical undo at recovery, checkpoint now: the
	// checkpointed ATT carries the undo log.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}

	db2, tb2, rep := reopen(t, cfg, Options{})
	defer db2.Close()
	if len(rep.RolledBack) != 1 {
		t.Fatalf("rolled back %v, want one txn", rep.RolledBack)
	}
	got := readRec(t, db2, tb2, 0)
	if got[0] != 1 {
		t.Fatalf("uncommitted update not rolled back: %q", got[:11])
	}
	if tb2.Count() != 3 {
		t.Fatalf("uncommitted insert survived: count=%d", tb2.Count())
	}
	if err := db2.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

func TestRecoveryWithoutAnyCheckpoint(t *testing.T) {
	// Crash before the first checkpoint: replay from the zero image.
	cfg := testConfig(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	db, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat, _ := heap.Open(db)
	tb, err := cat.CreateTable("t", 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	txn, _ := db.Begin()
	if _, err := tb.Insert(txn, bytes.Repeat([]byte{0xAB}, 64)); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	db.Crash()

	// The catalog was never checkpointed, so the table is gone — but the
	// physical history must replay cleanly and the image must audit.
	db2, rep, err := Open(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if rep.FreshDatabase || rep.CheckpointSeq != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.RedoApplied == 0 {
		t.Fatal("no redo applied")
	}
	if err := db2.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryAcrossMultipleCheckpoints(t *testing.T) {
	cfg := testConfig(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	db, tb := setupTable(t, cfg, 8)
	for round := 0; round < 5; round++ {
		for slot := uint32(0); slot < 8; slot++ {
			updateRec(t, db, tb, slot, []byte{byte(round + 100), byte(slot)})
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	// Updates after the last checkpoint.
	updateRec(t, db, tb, 7, []byte{0xFE, 0xDC})
	db.Crash()

	db2, tb2, _ := reopen(t, cfg, Options{})
	defer db2.Close()
	for slot := uint32(0); slot < 7; slot++ {
		got := readRec(t, db2, tb2, slot)
		if got[0] != 104 || got[1] != byte(slot) {
			t.Fatalf("slot %d = %v, want round-4 value", slot, got[:2])
		}
	}
	if got := readRec(t, db2, tb2, 7); got[0] != 0xFE || got[1] != 0xDC {
		t.Fatalf("slot 7 = %v, want post-checkpoint value", got[:2])
	}
	if err := db2.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryIdempotentAfterRecovery(t *testing.T) {
	cfg := testConfig(t, protect.Config{Kind: protect.KindReadLog, RegionSize: 64})
	db, tb := setupTable(t, cfg, 4)
	updateRec(t, db, tb, 1, []byte("v2"))
	db.Crash()

	db2, tb2, _ := reopen(t, cfg, Options{})
	state := readRec(t, db2, tb2, 1)
	db2.Crash() // crash immediately after recovery

	db3, tb3, rep := reopen(t, cfg, Options{})
	defer db3.Close()
	if len(rep.RolledBack) != 0 || len(rep.Deleted) != 0 {
		t.Fatalf("second recovery not clean: %+v", rep)
	}
	if got := readRec(t, db3, tb3, 1); !bytes.Equal(got, state) {
		t.Fatal("state changed across idempotent recovery")
	}
}

// corruptionScenario drives the paper's §4.3 scenario:
//
//	setup:    records 0..4 committed, checkpoint (clean audit = Audit_SN)
//	T-clean1: updates record 0            (clean, must survive)
//	FAULT:    wild write corrupts record 1 (direct physical corruption)
//	T-carrier: reads record 1, writes record 2   (indirect corruption)
//	T-second: reads record 2, writes record 3    (carried further)
//	T-clean2: reads+writes record 4              (clean, must survive)
//	detection: audit fails (or not, in CW mode), database crashes
//
// It returns cfg plus the IDs of the four transactions.
func corruptionScenario(t *testing.T, pc protect.Config, runAudit bool) (core.Config, [4]wal.TxnID) {
	t.Helper()
	cfg := testConfig(t, pc)
	db, tb := setupTable(t, cfg, 5)

	var ids [4]wal.TxnID
	ids[0] = updateRec(t, db, tb, 0, []byte("clean-one"))

	// Direct physical corruption of record 1 via a wild write.
	inj := fault.New(db.Internals().Arena, db.Scheme().Protector(), 1)
	recAddr := tb.RecordAddr(1)
	if trapped, err := inj.WildWrite(recAddr+3, []byte{0xBA, 0xD1}); err != nil || trapped {
		t.Fatalf("wild write: trapped=%v err=%v", trapped, err)
	}

	// T-carrier reads the corrupt record and writes record 2.
	txn, _ := db.Begin()
	v, err := tb.Read(txn, heap.RID{Table: tb.ID, Slot: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Update(txn, heap.RID{Table: tb.ID, Slot: 2}, 0, v[:8]); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	ids[1] = txn.ID()

	// T-second reads record 2 (indirectly corrupt) and writes record 3.
	txn2, _ := db.Begin()
	v2, err := tb.Read(txn2, heap.RID{Table: tb.ID, Slot: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Update(txn2, heap.RID{Table: tb.ID, Slot: 3}, 0, v2[:4]); err != nil {
		t.Fatal(err)
	}
	if err := txn2.Commit(); err != nil {
		t.Fatal(err)
	}
	ids[2] = txn2.ID()

	// T-clean2 touches only record 4.
	txn3, _ := db.Begin()
	if _, err := tb.Read(txn3, heap.RID{Table: tb.ID, Slot: 4}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Update(txn3, heap.RID{Table: tb.ID, Slot: 4}, 0, []byte("clean-two")); err != nil {
		t.Fatal(err)
	}
	if err := txn3.Commit(); err != nil {
		t.Fatal(err)
	}
	ids[3] = txn3.ID()

	if runAudit {
		err := db.Audit()
		var ce *core.CorruptionError
		if !errors.As(err, &ce) {
			t.Fatalf("audit should have detected corruption: %v", err)
		}
	}
	db.Crash()
	return cfg, ids
}

func TestDeleteTxnRecoveryTracesIndirectCorruption(t *testing.T) {
	pc := protect.Config{Kind: protect.KindReadLog, RegionSize: 64}
	cfg, ids := corruptionScenario(t, pc, true)

	db, tb, rep := reopen(t, cfg, Options{})
	defer db.Close()
	if !rep.CorruptionMode || rep.CWMode {
		t.Fatalf("mode: %+v", rep)
	}
	// The carrier and second-generation transactions are deleted; both
	// had committed.
	if len(rep.Deleted) != 2 {
		t.Fatalf("deleted: %+v, want 2", rep.Deleted)
	}
	wantDeleted := map[wal.TxnID]bool{ids[1]: true, ids[2]: true}
	for _, d := range rep.Deleted {
		if !wantDeleted[d.ID] {
			t.Fatalf("unexpected deletion of txn %d", d.ID)
		}
		if !d.Committed {
			t.Fatalf("txn %d should be reported as having committed", d.ID)
		}
	}

	// Record 0 and 4: clean transactions' effects preserved.
	if got := readRec(t, db, tb, 0); string(got[:9]) != "clean-one" {
		t.Fatalf("record 0 = %q", got[:9])
	}
	if got := readRec(t, db, tb, 4); string(got[:9]) != "clean-two" {
		t.Fatalf("record 4 = %q", got[:9])
	}
	// Records 1, 2, 3: restored to pre-corruption values (fill bytes).
	for slot, fill := range map[uint32]byte{1: 2, 2: 3, 3: 4} {
		got := readRec(t, db, tb, slot)
		for i, b := range got {
			if b != fill {
				t.Fatalf("record %d byte %d = %#x, want %#x", slot, i, b, fill)
			}
		}
	}
	if err := db.Audit(); err != nil {
		t.Fatalf("audit after delete-recovery: %v", err)
	}
	// The corrupt data table traced the corruption flow.
	if len(rep.FinalCorrupt) == 0 || len(rep.SeedCorrupt) == 0 {
		t.Fatalf("corrupt ranges not reported: %+v", rep)
	}
}

func TestDeleteTxnRecoveryCWModeWithoutAudit(t *testing.T) {
	// The §4.3 extension's second benefit: with codewords in read log
	// records, corruption that occurred after the last audit is detected
	// on a crash that nobody attributed to corruption.
	pc := protect.Config{Kind: protect.KindCWReadLog, RegionSize: 64}
	cfg, ids := corruptionScenario(t, pc, false /* no audit before crash */)

	db, tb, rep := reopen(t, cfg, Options{})
	defer db.Close()
	if !rep.CWMode {
		t.Fatal("CW mode not engaged for cw-read-log scheme")
	}
	wantDeleted := map[wal.TxnID]bool{ids[1]: true, ids[2]: true}
	if len(rep.Deleted) != 2 {
		t.Fatalf("deleted: %+v", rep.Deleted)
	}
	for _, d := range rep.Deleted {
		if !wantDeleted[d.ID] {
			t.Fatalf("unexpected deletion of txn %d", d.ID)
		}
	}
	if got := readRec(t, db, tb, 0); string(got[:9]) != "clean-one" {
		t.Fatalf("record 0 = %q", got[:9])
	}
	if got := readRec(t, db, tb, 4); string(got[:9]) != "clean-two" {
		t.Fatalf("record 4 = %q", got[:9])
	}
	if err := db.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestReadLogSchemeMissesCorruptionWithoutAudit(t *testing.T) {
	// Contrast case: plain Read Logging cannot detect the corruption on a
	// true crash (no failed audit in the log), so recovery runs in plain
	// mode and the carrier transactions survive. This is exactly why the
	// paper executes the CW variant on every restart.
	pc := protect.Config{Kind: protect.KindReadLog, RegionSize: 64}
	cfg, _ := corruptionScenario(t, pc, false)

	db, _, rep := reopen(t, cfg, Options{})
	defer db.Close()
	if rep.CorruptionMode {
		t.Fatal("corruption mode engaged with no failed audit on record")
	}
	if len(rep.Deleted) != 0 {
		t.Fatalf("deleted: %+v", rep.Deleted)
	}
}

func TestDeleteTxnConflictRule(t *testing.T) {
	// A transaction that never reads corrupt data but operates on an
	// object that a corrupt transaction had updated *before* reading the
	// corruption must also be deleted, so the corrupt transaction's
	// pre-corruption operation can be rolled back (§4.3 begin-op rule).
	pc := protect.Config{Kind: protect.KindReadLog, RegionSize: 64}
	cfg := testConfig(t, pc)
	db, tb := setupTable(t, cfg, 6)

	// T-corrupt first commits an op on record 5 (pre-corruption)...
	tc, _ := db.Begin()
	if err := tb.Update(tc, heap.RID{Table: tb.ID, Slot: 5}, 0, []byte("pre-corruption")); err != nil {
		t.Fatal(err)
	}
	// ... then corruption appears and T-corrupt reads it.
	inj := fault.New(db.Internals().Arena, db.Scheme().Protector(), 2)
	if _, err := inj.WildWrite(tb.RecordAddr(1)+5, []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Read(tc, heap.RID{Table: tb.ID, Slot: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tc.Commit(); err != nil {
		t.Fatal(err)
	}

	// T-later operates on record 5 after T-corrupt: conflicts with the
	// deleted transaction's undo log.
	tl, _ := db.Begin()
	if err := tb.Update(tl, heap.RID{Table: tb.ID, Slot: 5}, 0, []byte("later-writer!!")); err != nil {
		t.Fatal(err)
	}
	if err := tl.Commit(); err != nil {
		t.Fatal(err)
	}

	var ce *core.CorruptionError
	if err := db.Audit(); !errors.As(err, &ce) {
		t.Fatalf("audit: %v", err)
	}
	db.Crash()

	db2, tb2, rep := reopen(t, cfg, Options{})
	defer db2.Close()
	deleted := map[wal.TxnID]bool{}
	for _, d := range rep.Deleted {
		deleted[d.ID] = true
	}
	if !deleted[tc.ID()] || !deleted[tl.ID()] {
		t.Fatalf("deleted = %+v, want both %d and %d", rep.Deleted, tc.ID(), tl.ID())
	}
	// Record 5 is back to its original fill (6), with both writes gone.
	got := readRec(t, db2, tb2, 5)
	if got[0] != 6 {
		t.Fatalf("record 5 = %v, want original fill 6", got[:4])
	}
	if err := db2.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestCWModeViewConsistencyKeepsIdenticalWriter(t *testing.T) {
	// The CW variant produces a view-consistent delete history: if the
	// deleted transaction wrote the same bytes the data already had, a
	// later reader of that data read a value that is unchanged in the
	// delete history, so the reader is NOT deleted (§4.3, final note).
	pc := protect.Config{Kind: protect.KindCWReadLog, RegionSize: 64}
	cfg := testConfig(t, pc)
	db, tb := setupTable(t, cfg, 5)

	inj := fault.New(db.Internals().Arena, db.Scheme().Protector(), 3)
	if _, err := inj.WildWrite(tb.RecordAddr(1), []byte{0x99}); err != nil {
		t.Fatal(err)
	}

	// T-carrier reads corrupt record 1, then writes record 2's bytes with
	// the value record 2 ALREADY HAS (fill 3).
	tcar, _ := db.Begin()
	if _, err := tb.Read(tcar, heap.RID{Table: tb.ID, Slot: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Update(tcar, heap.RID{Table: tb.ID, Slot: 2}, 0, []byte{3, 3, 3, 3}); err != nil {
		t.Fatal(err)
	}
	if err := tcar.Commit(); err != nil {
		t.Fatal(err)
	}

	// T-reader reads record 2: in the delete history its value is the
	// same, so T-reader survives under view-consistency.
	trd, _ := db.Begin()
	if _, err := tb.Read(trd, heap.RID{Table: tb.ID, Slot: 2}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Update(trd, heap.RID{Table: tb.ID, Slot: 4}, 0, []byte("reader-output")); err != nil {
		t.Fatal(err)
	}
	if err := trd.Commit(); err != nil {
		t.Fatal(err)
	}
	db.Crash()

	db2, tb2, rep := reopen(t, cfg, Options{})
	defer db2.Close()
	deleted := map[wal.TxnID]bool{}
	for _, d := range rep.Deleted {
		deleted[d.ID] = true
	}
	if !deleted[tcar.ID()] {
		t.Fatalf("carrier %d not deleted: %+v", tcar.ID(), rep.Deleted)
	}
	if deleted[trd.ID()] {
		t.Fatalf("reader %d deleted despite unchanged view: %+v", trd.ID(), rep.Deleted)
	}
	if got := readRec(t, db2, tb2, 4); string(got[:13]) != "reader-output" {
		t.Fatalf("surviving reader's write lost: %q", got[:13])
	}
}

func TestExtraCorruptRangesForceRecovery(t *testing.T) {
	// Corruption found by an external assert (paper §4: other audit
	// mechanisms): no failed audit in the log, ranges supplied by caller.
	pc := protect.Config{Kind: protect.KindReadLog, RegionSize: 64}
	cfg := testConfig(t, pc)
	db, tb := setupTable(t, cfg, 4)

	inj := fault.New(db.Internals().Arena, db.Scheme().Protector(), 4)
	if _, err := inj.WildWrite(tb.RecordAddr(1), []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	// Carrier reads record 1, writes record 3.
	txn, _ := db.Begin()
	if _, err := tb.Read(txn, heap.RID{Table: tb.ID, Slot: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Update(txn, heap.RID{Table: tb.ID, Slot: 3}, 0, []byte("bad")); err != nil {
		t.Fatal(err)
	}
	txn.Commit()
	db.Crash()

	corruptRange := Range{Start: tb.RecordAddr(1), Len: 64}
	db2, tb2, rep := reopen(t, cfg, Options{ExtraCorrupt: []Range{corruptRange}})
	defer db2.Close()
	if !rep.CorruptionMode {
		t.Fatal("extra ranges did not engage corruption mode")
	}
	if len(rep.Deleted) != 1 || rep.Deleted[0].ID != txn.ID() {
		t.Fatalf("deleted: %+v", rep.Deleted)
	}
	if got := readRec(t, db2, tb2, 3); got[0] != 4 {
		t.Fatalf("record 3 = %v, want original fill", got[:3])
	}
}

func TestRecoveryAfterDeleteRecoveryIsClean(t *testing.T) {
	// §4.3: the completion checkpoint prevents a future recovery from
	// rediscovering the same corruption.
	pc := protect.Config{Kind: protect.KindReadLog, RegionSize: 64}
	cfg, _ := corruptionScenario(t, pc, true)

	db, tb, rep1 := reopen(t, cfg, Options{})
	if len(rep1.Deleted) == 0 {
		t.Fatal("scenario produced no deletions")
	}
	// New post-recovery work, then crash again.
	updateRec(t, db, tb, 0, []byte("after-recovery"))
	db.Crash()

	db2, tb2, rep2 := reopen(t, cfg, Options{})
	defer db2.Close()
	if rep2.CorruptionMode {
		t.Fatalf("second recovery re-entered corruption mode: %+v", rep2)
	}
	if len(rep2.Deleted) != 0 {
		t.Fatalf("second recovery deleted transactions: %+v", rep2.Deleted)
	}
	if got := readRec(t, db2, tb2, 0); string(got[:14]) != "after-recovery" {
		t.Fatalf("post-recovery work lost: %q", got[:14])
	}
}

func TestCacheRecoveryRepairsInPlace(t *testing.T) {
	pc := protect.Config{Kind: protect.KindPrecheck, RegionSize: 64}
	cfg := testConfig(t, pc)
	db, tb := setupTable(t, cfg, 4)
	defer db.Close()

	// Committed post-checkpoint history that must survive the repair.
	updateRec(t, db, tb, 1, []byte("post-ckpt"))

	// Wild write inside record 1's region.
	inj := fault.New(db.Internals().Arena, db.Scheme().Protector(), 5)
	if _, err := inj.WildWrite(tb.RecordAddr(1)+20, []byte{0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}

	// A precheck on read detects it.
	txn, _ := db.Begin()
	_, err := tb.Read(txn, heap.RID{Table: tb.ID, Slot: 1})
	if !errors.Is(err, protect.ErrPrecheckFailed) {
		t.Fatalf("read of corrupt record: %v", err)
	}
	txn.Abort()

	// Cache recovery restores the region from checkpoint + log replay.
	if err := CacheRecover(db, []Range{{Start: tb.RecordAddr(1), Len: 64}}); err != nil {
		t.Fatal(err)
	}
	got := readRec(t, db, tb, 1)
	if string(got[:9]) != "post-ckpt" {
		t.Fatalf("record 1 after cache recovery: %q", got[:9])
	}
	if got[20] != 2 { // original fill byte restored where the fault hit
		t.Fatalf("fault bytes not repaired: %#x", got[20])
	}
	if err := db.Audit(); err != nil {
		t.Fatalf("audit after cache recovery: %v", err)
	}
}

func TestCacheRecoveryRequiresQuiescence(t *testing.T) {
	pc := protect.Config{Kind: protect.KindPrecheck, RegionSize: 64}
	cfg := testConfig(t, pc)
	db, tb := setupTable(t, cfg, 2)
	defer db.Close()
	txn, _ := db.Begin()
	if err := CacheRecover(db, []Range{{Start: tb.RecordAddr(0), Len: 64}}); err == nil {
		t.Fatal("cache recovery ran with an active transaction")
	}
	txn.Commit()
	if err := CacheRecover(db, nil); err != nil {
		t.Fatalf("empty cache recovery: %v", err)
	}
}

func TestDisableCorruptionMode(t *testing.T) {
	pc := protect.Config{Kind: protect.KindReadLog, RegionSize: 64}
	cfg, _ := corruptionScenario(t, pc, true)
	db, _, rep := reopen(t, cfg, Options{DisableCorruptionMode: true})
	defer db.Close()
	if rep.CorruptionMode || len(rep.Deleted) != 0 {
		t.Fatalf("corruption mode not disabled: %+v", rep)
	}
}
