package recovery

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/protect"
)

// TestRecoveryConvergesAfterCrashBeforeCompletionCheckpoint drills the
// §4.3 warning: the completion checkpoint exists so a crash right after
// recovery does not rediscover the corruption against a longer history.
// Recovery that dies just before its completion checkpoint (simulated
// with SkipCompletionCheckpoint) must, on the next restart, converge to
// exactly the outcome an uninterrupted recovery produces: same deleted
// transactions and a byte-identical image.
func TestRecoveryConvergesAfterCrashBeforeCompletionCheckpoint(t *testing.T) {
	pc := protect.Config{Kind: protect.KindReadLog, RegionSize: 64}
	cfg, _ := corruptionScenario(t, pc, true)

	// Two byte-identical copies of the crashed database.
	dirA, dirB := t.TempDir(), t.TempDir()
	copyDir(t, cfg.Dir, dirA)
	copyDir(t, cfg.Dir, dirB)
	cfgA, cfgB := cfg, cfg
	cfgA.Dir, cfgB.Dir = dirA, dirB

	// Path A: uninterrupted recovery.
	dbA, repA, err := Open(cfgA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dbA.Close()

	// Path B: recovery crashes before its completion checkpoint, then a
	// second recovery runs.
	dbB1, repB1, err := Open(cfgB, Options{SkipCompletionCheckpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(repA.Deleted, repB1.Deleted) {
		t.Fatalf("first-pass deletions differ: %v vs %v", repA.Deleted, repB1.Deleted)
	}
	if err := dbB1.Crash(); err != nil {
		t.Fatal(err)
	}
	dbB2, repB2, err := Open(cfgB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dbB2.Close()

	// The rerun re-walks the same history (the anchor never moved), so it
	// must re-delete exactly the same transactions — and nothing newer,
	// since nothing newer exists.
	if !reflect.DeepEqual(repA.Deleted, repB2.Deleted) {
		t.Fatalf("rerun deletions differ: %v vs %v", repA.Deleted, repB2.Deleted)
	}
	if !bytes.Equal(dbA.Internals().Arena.Bytes(), dbB2.Internals().Arena.Bytes()) {
		t.Fatal("interrupted-then-rerun recovery produced a different image")
	}
	if err := dbB2.Audit(); err != nil {
		t.Fatal(err)
	}

	// And with the completion checkpoint in place, a further restart is a
	// clean no-op (the §4.3 guarantee).
	dbB2.Crash()
	dbB3, repB3, err := Open(cfgB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dbB3.Close()
	if repB3.CorruptionMode || len(repB3.Deleted) != 0 {
		t.Fatalf("post-checkpoint restart rediscovered corruption: %+v", repB3)
	}
}
