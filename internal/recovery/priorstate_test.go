package recovery

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/iofault"
	"repro/internal/protect"
	"repro/internal/wal"
)

func TestPriorStateDiscardsSuffix(t *testing.T) {
	cfg := testConfig(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	db, tb := setupTable(t, cfg, 4)

	updateRec(t, db, tb, 0, []byte("before-mark"))
	mark := db.Internals().Log.End()
	updateRec(t, db, tb, 0, []byte("after-mark!"))
	updateRec(t, db, tb, 1, []byte("also-after"))
	db.Crash()

	db2, rep, err := PriorState(cfg, mark, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if rep.CorruptionMode {
		t.Fatal("prior state ran corruption mode")
	}
	cat, _ := heap.Open(db2)
	tb2, _ := cat.Table("t")
	got := readRec(t, db2, tb2, 0)
	if string(got[:11]) != "before-mark" {
		t.Fatalf("record 0 = %q, want pre-mark value", got[:11])
	}
	if got := readRec(t, db2, tb2, 1); got[0] != 2 {
		t.Fatalf("record 1 = %v, want original fill 2", got[:4])
	}
	if err := db2.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestPriorStateCutsMidTransaction(t *testing.T) {
	// A transaction whose commit record falls past the cut must vanish
	// entirely (transaction consistency), even though some of its
	// operations' records precede the cut.
	cfg := testConfig(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	db, tb := setupTable(t, cfg, 4)

	txn, _ := db.Begin()
	if err := tb.Update(txn, heap.RID{Table: tb.ID, Slot: 0}, 0, []byte("op-one")); err != nil {
		t.Fatal(err)
	}
	// The op-commit record is in the log tail; flush so it is stable.
	if err := db.Internals().Log.Flush(); err != nil {
		t.Fatal(err)
	}
	mark := db.Internals().Log.End() // cut point: after op 1, before commit
	if err := tb.Update(txn, heap.RID{Table: tb.ID, Slot: 1}, 0, []byte("op-two")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	db.Crash()

	db2, _, err := PriorState(cfg, mark, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	cat, _ := heap.Open(db2)
	tb2, _ := cat.Table("t")
	if got := readRec(t, db2, tb2, 0); !bytes.Equal(got, bytes.Repeat([]byte{1}, 64)) {
		t.Fatalf("record 0 = %q: partial transaction survived prior-state recovery", got[:6])
	}
	if got := readRec(t, db2, tb2, 1); got[0] != 2 {
		t.Fatalf("record 1 = %v", got[:4])
	}
}

func TestPriorStateRejectsTargetBeforeCheckpoint(t *testing.T) {
	cfg := testConfig(t, protect.Config{})
	db, tb := setupTable(t, cfg, 2)
	mark := db.Internals().Log.End()
	updateRec(t, db, tb, 0, []byte("xx"))
	if err := db.Checkpoint(); err != nil { // CK_end now past mark
		t.Fatal(err)
	}
	db.Crash()
	if _, _, err := PriorState(cfg, mark, Options{}); err == nil {
		t.Fatal("prior state accepted a target older than the checkpoint")
	}
}

func TestBoundaryAtOrBefore(t *testing.T) {
	cfg := testConfig(t, protect.Config{})
	db, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db.Internals().Log.Append(&wal.Record{Kind: wal.KindTxnBegin, Txn: 1})
	r2 := &wal.Record{Kind: wal.KindTxnCommit, Txn: 1}
	db.Internals().Log.Append(r2)
	db.Internals().Log.Flush()
	db.Close()

	// A target inside the second record cuts before it.
	cut, err := boundaryAtOrBefore(iofault.OS, cfg.Dir, r2.LSN+1)
	if err != nil {
		t.Fatal(err)
	}
	if cut != r2.LSN {
		t.Fatalf("cut = %d, want %d", cut, r2.LSN)
	}
	// A target at a boundary keeps the whole prefix.
	end := r2.LSN + wal.LSN(r2.EncodedSize())
	cut, err = boundaryAtOrBefore(iofault.OS, cfg.Dir, end)
	if err != nil {
		t.Fatal(err)
	}
	if cut != end {
		t.Fatalf("cut = %d, want %d", cut, end)
	}
	// Target zero cuts everything.
	cut, _ = boundaryAtOrBefore(iofault.OS, cfg.Dir, 0)
	if cut != 0 {
		t.Fatalf("cut = %d, want 0", cut)
	}
}
