package recovery

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/protect"
	"repro/internal/wal"
)

// crashedMultiStream builds a four-stream database whose post-checkpoint
// log holds interleaved transactions repeatedly overwriting the same
// slots, then crashes it. Because consecutive transactions land on
// different streams, replaying their physical redos in anything but GSN
// order would leave a stale value — the returned want image is only
// reachable through a correct merge.
func crashedMultiStream(t *testing.T, rounds int) (core.Config, [][]byte) {
	t.Helper()
	cfg := testConfig(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	cfg.LogStreams = 4
	const slots = 8
	db, tb := setupTable(t, cfg, slots)
	if got := db.Internals().Log.NumStreams(); got != 4 {
		t.Fatalf("log opened with %d streams, want 4", got)
	}
	want := make([][]byte, slots)
	for r := 0; r < rounds; r++ {
		for s := uint32(0); s < slots; s++ {
			val := bytes.Repeat([]byte{byte(r + 2), byte(s + 1)}, 32)
			updateRec(t, db, tb, s, val)
			want[s] = val
		}
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	return cfg, want
}

// TestMultiStreamRecoveryMergesByGSN recovers a crashed four-stream
// database and checks the final state reflects the last committed write
// to every slot — the cross-stream ordering contract.
func TestMultiStreamRecoveryMergesByGSN(t *testing.T) {
	cfg, want := crashedMultiStream(t, 5)
	db, tb, rep := reopen(t, cfg, Options{RedoWorkers: 1})
	defer db.Close()
	if rep.LogStreams != 4 {
		t.Fatalf("report streams = %d, want 4", rep.LogStreams)
	}
	if rep.RedoWorkers != 1 {
		t.Fatalf("report redo workers = %d, want 1", rep.RedoWorkers)
	}
	if rep.RedoApplied == 0 {
		t.Fatal("no redo applied; workload not post-checkpoint?")
	}
	for s := range want {
		if got := readRec(t, db, tb, uint32(s)); !bytes.Equal(got, want[s]) {
			t.Fatalf("slot %d recovered %x, want %x", s, got[:4], want[s][:4])
		}
	}
	if err := db.Audit(); err != nil {
		t.Fatalf("post-recovery audit: %v", err)
	}
}

// TestParallelRedoMatchesSerial recovers one crashed multi-stream state
// twice — serial and with the partitioned parallel apply — and requires
// bit-identical arenas and identical reports: the parallel pass is an
// optimization, never a semantic change.
func TestParallelRedoMatchesSerial(t *testing.T) {
	cfg, want := crashedMultiStream(t, 6)
	par := filepath.Join(t.TempDir(), "par")
	if err := os.MkdirAll(par, 0o755); err != nil {
		t.Fatal(err)
	}
	copyDir(t, cfg.Dir, par)

	serialDB, _, serialRep := reopen(t, cfg, Options{
		RedoWorkers: 1, SkipCompletionCheckpoint: true,
	})
	defer serialDB.Close()

	pcfg := cfg
	pcfg.Dir = par
	parDB, parTb, parRep := reopen(t, pcfg, Options{
		RedoWorkers: 4, SkipCompletionCheckpoint: true,
	})
	defer parDB.Close()

	if parRep.RedoWorkers != 4 {
		t.Fatalf("parallel report redo workers = %d, want 4", parRep.RedoWorkers)
	}
	if serialRep.RecordsScanned != parRep.RecordsScanned ||
		serialRep.RedoApplied != parRep.RedoApplied {
		t.Fatalf("reports diverge: serial %d/%d, parallel %d/%d",
			serialRep.RecordsScanned, serialRep.RedoApplied,
			parRep.RecordsScanned, parRep.RedoApplied)
	}
	if !bytes.Equal(serialDB.Internals().Arena.Bytes(), parDB.Internals().Arena.Bytes()) {
		t.Fatal("parallel redo produced a different arena than serial redo")
	}
	for s := range want {
		if got := readRec(t, parDB, parTb, uint32(s)); !bytes.Equal(got, want[s]) {
			t.Fatalf("slot %d after parallel redo: %x, want %x", s, got[:4], want[s][:4])
		}
	}
	snap := parDB.Observability().Snapshot()
	if snap.Gauge(obs.NameRecoveryRedoWorkers) != 4 {
		t.Fatalf("gauge %s = %d, want 4", obs.NameRecoveryRedoWorkers, snap.Gauge(obs.NameRecoveryRedoWorkers))
	}
	if h := snap.Histogram(obs.NameRecoveryParallelNS); h.Count == 0 {
		t.Fatalf("histogram %s never observed", obs.NameRecoveryParallelNS)
	}
}

// TestUpgradeSingleToMultiStreamRecovery crashes a single-stream
// database, recovers it with LogStreams=4 (the open widens the set, old
// records replay as the unstamped prefix), commits more work, crashes
// again, and recovers the mixed-format log.
func TestUpgradeSingleToMultiStreamRecovery(t *testing.T) {
	cfg := testConfig(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	db, tb := setupTable(t, cfg, 4)
	v1 := bytes.Repeat([]byte{0xA1}, 64)
	updateRec(t, db, tb, 0, v1)
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}

	ucfg := cfg
	ucfg.LogStreams = 4
	db2, tb2, rep := reopen(t, ucfg, Options{})
	if rep.LogStreams != 4 {
		t.Fatalf("upgraded recovery streams = %d, want 4", rep.LogStreams)
	}
	if got := readRec(t, db2, tb2, 0); !bytes.Equal(got, v1) {
		t.Fatalf("pre-upgrade commit lost: %x", got[:4])
	}
	v2 := bytes.Repeat([]byte{0xB2}, 64)
	updateRec(t, db2, tb2, 0, v2)
	v3 := bytes.Repeat([]byte{0xC3}, 64)
	updateRec(t, db2, tb2, 1, v3)
	if err := db2.Crash(); err != nil {
		t.Fatal(err)
	}

	db3, tb3, rep3 := reopen(t, ucfg, Options{})
	defer db3.Close()
	if rep3.LogStreams != 4 {
		t.Fatalf("second recovery streams = %d, want 4", rep3.LogStreams)
	}
	if got := readRec(t, db3, tb3, 0); !bytes.Equal(got, v2) {
		t.Fatalf("post-upgrade commit lost on slot 0: %x", got[:4])
	}
	if got := readRec(t, db3, tb3, 1); !bytes.Equal(got, v3) {
		t.Fatalf("post-upgrade commit lost on slot 1: %x", got[:4])
	}
	if err := db3.Audit(); err != nil {
		t.Fatalf("post-upgrade audit: %v", err)
	}
	// The historical stream-0 file is still where it always was.
	if _, err := os.Stat(filepath.Join(cfg.Dir, wal.LogFileName)); err != nil {
		t.Fatal(err)
	}
}
