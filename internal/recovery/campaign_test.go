package recovery

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/heap"
	"repro/internal/protect"
	"repro/internal/wal"
)

// TestRandomizedCrashRecoveryCampaign drives several crash/recover rounds
// against a shadow model: committed updates must always survive, the
// in-flight transaction at crash time must always vanish, and audits must
// stay clean throughout.
func TestRandomizedCrashRecoveryCampaign(t *testing.T) {
	for _, pc := range []protect.Config{
		{Kind: protect.KindDataCW, RegionSize: 64},
		{Kind: protect.KindCWReadLog, RegionSize: 64},
	} {
		pc := pc
		t.Run(pc.Kind.String(), func(t *testing.T) {
			cfg := testConfig(t, pc)
			const slots = 32
			rng := rand.New(rand.NewSource(99))
			shadow := make([][]byte, slots)

			db, tb := setupTable(t, cfg, slots)
			for i := range shadow {
				shadow[i] = bytes.Repeat([]byte{byte(i + 1)}, 64)
			}

			for round := 0; round < 6; round++ {
				// Committed transactions, tracked in the shadow.
				for i := 0; i < 5+rng.Intn(10); i++ {
					txn, err := db.Begin()
					if err != nil {
						t.Fatal(err)
					}
					for j := 0; j < 1+rng.Intn(3); j++ {
						slot := uint32(rng.Intn(slots))
						val := make([]byte, 8)
						rng.Read(val)
						if err := tb.Update(txn, heap.RID{Table: tb.ID, Slot: slot}, 0, val); err != nil {
							t.Fatal(err)
						}
						copy(shadow[slot], val)
					}
					if err := txn.Commit(); err != nil {
						t.Fatal(err)
					}
				}
				// Occasionally checkpoint mid-history.
				if rng.Intn(2) == 0 {
					if err := db.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
				// An in-flight transaction that must be rolled back.
				loser, err := db.Begin()
				if err != nil {
					t.Fatal(err)
				}
				for j := 0; j < 1+rng.Intn(3); j++ {
					slot := uint32(rng.Intn(slots))
					if err := tb.Update(loser, heap.RID{Table: tb.ID, Slot: slot}, 0, []byte("DOOMEDXX")); err != nil {
						t.Fatal(err)
					}
				}
				// Sometimes the doomed work is checkpointed (so recovery
				// must roll it back from the checkpointed ATT).
				if rng.Intn(2) == 0 {
					if err := db.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
				if err := db.Crash(); err != nil {
					t.Fatal(err)
				}

				db2, rep, err := Open(cfg, Options{})
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				if len(rep.Deleted) != 0 {
					t.Fatalf("round %d: spurious deletions %v", round, rep.Deleted)
				}
				cat, _ := heap.Open(db2)
				tb2, err := cat.Table("t")
				if err != nil {
					t.Fatal(err)
				}
				for slot := 0; slot < slots; slot++ {
					got := readRec(t, db2, tb2, uint32(slot))
					if !bytes.Equal(got, shadow[slot]) {
						t.Fatalf("round %d: slot %d = %x..., shadow %x...",
							round, slot, got[:8], shadow[slot][:8])
					}
				}
				if err := db2.Audit(); err != nil {
					t.Fatalf("round %d: audit: %v", round, err)
				}
				db, tb = db2, tb2
			}
			db.Close()
		})
	}
}

// campaignTxn is one transaction of the corruption campaign: reads first,
// then at most one blind write (so the taint model below is exact).
type campaignTxn struct {
	id       wal.TxnID
	reads    []uint32
	hasWrite bool
	write    uint32
	val      []byte
	preFault bool
}

// TestRandomizedCorruptionCampaign injects a wild write at a random point
// in a random committed history and checks delete-transaction recovery
// against an exact model of the paper's algorithm:
//
//   - a post-fault transaction is tainted iff it reads a corrupt record,
//     writes a corrupt record, or writes a record that a write-tainted
//     transaction's interrupted operation holds in its undo log;
//   - a tainted transaction's write marks its record corrupt;
//   - the final value of each record is the last write by a surviving
//     transaction (conflict consistency: surviving writers of any record
//     form a prefix of its writer history).
func TestRandomizedCorruptionCampaign(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			runCorruptionCampaign(t, seed)
		})
	}
}

func runCorruptionCampaign(t *testing.T, seed int64) {
	const (
		slots  = 16
		numTxn = 24
	)
	rng := rand.New(rand.NewSource(seed))
	cfg := testConfig(t, protect.Config{Kind: protect.KindReadLog, RegionSize: 64})
	db, tb := setupTable(t, cfg, slots)

	faultAt := numTxn/4 + rng.Intn(numTxn/2)
	victim := uint32(rng.Intn(slots))
	var txns []campaignTxn

	for i := 0; i < numTxn; i++ {
		if i == faultAt {
			// Clean audit just before the fault: Audit_SN now separates
			// pre-fault transactions from the suspect era.
			if err := db.Audit(); err != nil {
				t.Fatalf("pre-fault audit: %v", err)
			}
			inj := fault.New(db.Internals().Arena, db.Scheme().Protector(), seed)
			if _, err := inj.WildWrite(tb.RecordAddr(victim)+17, []byte{0xEB, 0xEC}); err != nil {
				t.Fatal(err)
			}
		}
		txn, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		ct := campaignTxn{id: txn.ID(), preFault: i < faultAt}
		for r := 0; r < 1+rng.Intn(2); r++ {
			slot := uint32(rng.Intn(slots))
			ct.reads = append(ct.reads, slot)
			if _, err := tb.Read(txn, heap.RID{Table: tb.ID, Slot: slot}); err != nil {
				t.Fatal(err)
			}
		}
		if rng.Intn(10) < 8 {
			ct.hasWrite = true
			ct.write = uint32(rng.Intn(slots))
			ct.val = make([]byte, 8)
			binary.LittleEndian.PutUint64(ct.val, uint64(txn.ID())<<8|0xCC)
			if err := tb.Update(txn, heap.RID{Table: tb.ID, Slot: ct.write}, 0, ct.val); err != nil {
				t.Fatal(err)
			}
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
		txns = append(txns, ct)
	}

	// Detection, crash, recovery.
	var ce *core.CorruptionError
	if err := db.Audit(); !errors.As(err, &ce) {
		t.Fatalf("final audit: %v", err)
	}
	db.Crash()
	db2, rep, err := Open(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if !rep.CorruptionMode {
		t.Fatal("corruption mode not engaged")
	}

	// Exact model of the algorithm.
	corrupt := map[uint32]bool{victim: true}
	conflictKeys := map[uint32]bool{} // records held in tainted txns' undo logs
	tainted := map[wal.TxnID]bool{}
	for _, ct := range txns {
		if ct.preFault {
			continue
		}
		isTainted := false
		for _, r := range ct.reads {
			if corrupt[r] {
				isTainted = true // read of corrupt data
				break
			}
		}
		byWrite := false
		if !isTainted && ct.hasWrite && (corrupt[ct.write] || conflictKeys[ct.write]) {
			isTainted = true // write treated as read, or op conflict
			byWrite = true
		}
		if isTainted {
			tainted[ct.id] = true
			if ct.hasWrite {
				corrupt[ct.write] = true
				if byWrite {
					// The op-begin reached the undo log before the taint,
					// so it conflicts with later operations on the record.
					conflictKeys[ct.write] = true
				}
			}
		}
	}

	gotDeleted := map[wal.TxnID]bool{}
	for _, d := range rep.Deleted {
		gotDeleted[d.ID] = true
		if !d.Committed {
			t.Errorf("deleted txn %d not marked committed", d.ID)
		}
	}
	for id := range tainted {
		if !gotDeleted[id] {
			t.Errorf("model says txn %d tainted, recovery kept it", id)
		}
	}
	for id := range gotDeleted {
		if !tainted[id] {
			t.Errorf("recovery deleted txn %d, model says clean", id)
		}
	}

	// Final record values: last surviving writer wins.
	expected := make(map[uint32][]byte)
	for _, ct := range txns {
		if ct.hasWrite && !tainted[ct.id] {
			expected[ct.write] = ct.val
		}
	}
	cat, _ := heap.Open(db2)
	tb2, _ := cat.Table("t")
	for slot := uint32(0); slot < slots; slot++ {
		got := readRec(t, db2, tb2, slot)
		if want, ok := expected[slot]; ok {
			if !bytes.Equal(got[:8], want) {
				t.Errorf("slot %d = %x, want %x", slot, got[:8], want)
			}
		} else {
			// Never written by a survivor: original fill.
			if got[0] != byte(slot+1) {
				t.Errorf("slot %d = %x, want original fill %#x", slot, got[:8], slot+1)
			}
		}
		// The fault bytes themselves must be gone.
		if got[17] == 0xEB && got[18] == 0xEC {
			t.Errorf("slot %d still carries the injected fault", slot)
		}
	}
	if err := db2.Audit(); err != nil {
		t.Fatalf("post-recovery audit: %v", err)
	}
}

// TestRandomizedCorruptionCampaignCW repeats the campaign under the CW
// Read Logging scheme with NO audit before the crash: detection relies
// entirely on the codewords stored in the read log (§4.3's second
// benefit). The CW variant is view-consistent, so the conservative
// conflict/overlap model becomes an upper bound: every transaction the
// model keeps must survive, and every transaction recovery deletes must
// be tainted under the model.
func TestRandomizedCorruptionCampaignCW(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			runCWCampaign(t, seed)
		})
	}
}

func runCWCampaign(t *testing.T, seed int64) {
	const (
		slots  = 16
		numTxn = 20
	)
	rng := rand.New(rand.NewSource(seed + 1000))
	cfg := testConfig(t, protect.Config{Kind: protect.KindCWReadLog, RegionSize: 64})
	db, tb := setupTable(t, cfg, slots)

	faultAt := numTxn/4 + rng.Intn(numTxn/2)
	victim := uint32(rng.Intn(slots))
	var txns []campaignTxn

	for i := 0; i < numTxn; i++ {
		if i == faultAt {
			inj := fault.New(db.Internals().Arena, db.Scheme().Protector(), seed)
			if _, err := inj.WildWrite(tb.RecordAddr(victim)+17, []byte{0xEB}); err != nil {
				t.Fatal(err)
			}
		}
		txn, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		ct := campaignTxn{id: txn.ID(), preFault: i < faultAt}
		for r := 0; r < 1+rng.Intn(2); r++ {
			slot := uint32(rng.Intn(slots))
			ct.reads = append(ct.reads, slot)
			if _, err := tb.Read(txn, heap.RID{Table: tb.ID, Slot: slot}); err != nil {
				t.Fatal(err)
			}
		}
		if rng.Intn(10) < 8 {
			ct.hasWrite = true
			ct.write = uint32(rng.Intn(slots))
			ct.val = make([]byte, 8)
			binary.LittleEndian.PutUint64(ct.val, uint64(txn.ID())<<8|0xDD)
			if err := tb.Update(txn, heap.RID{Table: tb.ID, Slot: ct.write}, 0, ct.val); err != nil {
				t.Fatal(err)
			}
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
		txns = append(txns, ct)
	}
	db.Crash() // no audit: the crash is "unexplained"

	db2, rep, err := Open(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if !rep.CWMode {
		t.Fatal("CW mode not engaged")
	}

	// Conservative model (upper bound for the view-consistent variant).
	corrupt := map[uint32]bool{victim: true}
	conflictKeys := map[uint32]bool{}
	mayTaint := map[wal.TxnID]bool{}
	for _, ct := range txns {
		if ct.preFault {
			continue
		}
		isTainted := false
		byWrite := false
		for _, r := range ct.reads {
			if corrupt[r] {
				isTainted = true
				break
			}
		}
		if !isTainted && ct.hasWrite && (corrupt[ct.write] || conflictKeys[ct.write]) {
			isTainted = true
			byWrite = true
		}
		if isTainted {
			mayTaint[ct.id] = true
			if ct.hasWrite {
				corrupt[ct.write] = true
				if byWrite {
					conflictKeys[ct.write] = true
				}
			}
		}
	}
	for _, d := range rep.Deleted {
		if !mayTaint[d.ID] {
			t.Errorf("recovery deleted txn %d, outside the conservative taint closure", d.ID)
		}
	}
	// Survivors' writes must be present unless a later surviving writer
	// overwrote them; verify the last surviving writer of each slot.
	deleted := map[wal.TxnID]bool{}
	for _, d := range rep.Deleted {
		deleted[d.ID] = true
	}
	lastSurvivor := map[uint32][]byte{}
	for _, ct := range txns {
		if ct.hasWrite && !deleted[ct.id] {
			lastSurvivor[ct.write] = ct.val
		}
	}
	cat, _ := heap.Open(db2)
	tb2, _ := cat.Table("t")
	for slot, want := range lastSurvivor {
		got := readRec(t, db2, tb2, slot)
		if !bytes.Equal(got[:8], want) {
			t.Errorf("seed %d: slot %d = %x, want surviving write %x", seed, slot, got[:8], want)
		}
	}
	if err := db2.Audit(); err != nil {
		t.Fatalf("post-recovery audit: %v", err)
	}
}
