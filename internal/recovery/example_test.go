package recovery_test

import (
	"errors"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/heap"
	"repro/internal/protect"
	"repro/internal/recovery"
)

// Example demonstrates delete-transaction corruption recovery end to
// end: a wild write, a committed carrier transaction, detection by
// audit, crash, and recovery that deletes exactly the carrier.
func Example() {
	dir, err := os.MkdirTemp("", "recovery-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := core.Config{
		Dir:       dir,
		ArenaSize: 1 << 18,
		// DisableHeal: the example walks the detect → delete-transaction
		// ladder, which in-place ECC repair would short-circuit.
		Protect: protect.Config{Kind: protect.KindReadLog, RegionSize: 64, DisableHeal: true},
	}
	db, err := core.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cat, _ := heap.Open(db)
	tbl, err := cat.CreateTable("data", 128, 16)
	if err != nil {
		log.Fatal(err)
	}
	setup, _ := db.Begin()
	a, _ := tbl.Insert(setup, make([]byte, 128))
	b, _ := tbl.Insert(setup, make([]byte, 128))
	setup.Commit()
	if err := db.Checkpoint(); err != nil {
		log.Fatal(err)
	}

	// Wild write corrupts record a; a transaction reads it and writes b.
	inj := fault.New(db.Internals().Arena, db.Scheme().Protector(), 1)
	inj.WildWrite(tbl.RecordAddr(a.Slot), []byte{0xBD})
	carrier, _ := db.Begin()
	v, _ := tbl.Read(carrier, a)
	tbl.Update(carrier, b, 0, v[:4])
	carrier.Commit()

	var ce *core.CorruptionError
	fmt.Println("audit detects corruption:", errors.As(db.Audit(), &ce))
	db.Crash()

	db2, report, err := recovery.Open(cfg, recovery.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	fmt.Println("corruption mode:", report.CorruptionMode)
	fmt.Println("transactions deleted from history:", len(report.Deleted))
	fmt.Println("post-recovery audit clean:", db2.Audit() == nil)
	// Output:
	// audit detects corruption: true
	// corruption mode: true
	// transactions deleted from history: 1
	// post-recovery audit clean: true
}
