// Package latch provides the low-level latches used by the storage manager:
// plain shared/exclusive latches, striped latch tables used to implement
// per-protection-region latches without allocating one latch per region,
// and an ordered multi-latch helper that acquires a set of stripes in
// ascending order to avoid deadlock.
//
// The paper distinguishes three latches: the protection latch guarding a
// protection region, the codeword latch guarding the codeword value itself
// (used by the Data Codeword scheme so updaters can hold the protection
// latch in shared mode), and the system log latch guarding log flushes.
// All three are built from the types in this package.
package latch

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// waitMetrics is the optional wait instrumentation shared by a latch (or
// by every stripe of a Striped table). When present, contended
// acquisitions — those whose fast-path try fails — record their wait
// duration in a histogram, bump a contention counter, and (when a sink
// is registered) emit an obs.LatchWaitEvent.
type waitMetrics struct {
	reg       *obs.Registry
	name      string
	waitHist  *obs.Histogram
	contended *obs.Counter
}

func (wm *waitMetrics) note(start time.Time) {
	d := time.Since(start)
	wm.waitHist.ObserveDuration(d)
	wm.contended.Inc()
	if wm.reg.HasSinks() {
		wm.reg.Emit(obs.LatchWaitEvent{Name: wm.name, Wait: d})
	}
}

// Latch is a shared/exclusive latch with acquisition counters. The counters
// are maintained with atomics and are intended for tests and the benchmark
// harness (e.g. counting protection-latch traffic per scheme); they are not
// required for correctness.
type Latch struct {
	mu sync.RWMutex

	sharedAcqs    atomic.Uint64
	exclusiveAcqs atomic.Uint64

	wm *waitMetrics
}

// Instrument enables wait instrumentation on the latch. name identifies
// the latch group in events ("wal", "protect", ...). Must be called
// before the latch is used concurrently; the uninstrumented fast path is
// a plain mutex acquisition.
func (l *Latch) Instrument(reg *obs.Registry, name string, waitHist *obs.Histogram, contended *obs.Counter) {
	l.wm = &waitMetrics{reg: reg, name: name, waitHist: waitHist, contended: contended}
}

// Lock acquires the latch in exclusive mode.
func (l *Latch) Lock() {
	if wm := l.wm; wm != nil {
		if !l.mu.TryLock() {
			start := time.Now()
			l.mu.Lock()
			wm.note(start)
		}
	} else {
		l.mu.Lock()
	}
	l.exclusiveAcqs.Add(1)
}

// Unlock releases an exclusive acquisition.
func (l *Latch) Unlock() { l.mu.Unlock() }

// RLock acquires the latch in shared mode.
func (l *Latch) RLock() {
	if wm := l.wm; wm != nil {
		if !l.mu.TryRLock() {
			start := time.Now()
			l.mu.RLock()
			wm.note(start)
		}
	} else {
		l.mu.RLock()
	}
	l.sharedAcqs.Add(1)
}

// RUnlock releases a shared acquisition.
func (l *Latch) RUnlock() { l.mu.RUnlock() }

// SharedAcquisitions reports the number of shared acquisitions so far.
func (l *Latch) SharedAcquisitions() uint64 { return l.sharedAcqs.Load() }

// ExclusiveAcquisitions reports the number of exclusive acquisitions so far.
func (l *Latch) ExclusiveAcquisitions() uint64 { return l.exclusiveAcqs.Load() }

// Striped is a fixed-size table of latches indexed by an arbitrary integer
// key (for example a protection-region number). Keys are mapped onto
// stripes by masking, so the table provides per-key mutual exclusion with
// bounded memory. Two distinct keys may map to the same stripe; this only
// reduces concurrency, never correctness, because holding a stripe is a
// superset of holding the key.
type Striped struct {
	stripes []Latch
	mask    uint64
}

// NewStriped returns a striped latch table with at least n stripes
// (rounded up to a power of two, minimum 1).
func NewStriped(n int) *Striped {
	size := 1
	for size < n {
		size <<= 1
	}
	return &Striped{
		stripes: make([]Latch, size),
		mask:    uint64(size - 1),
	}
}

// Len reports the number of stripes.
func (s *Striped) Len() int { return len(s.stripes) }

// Instrument enables wait instrumentation on every stripe (shared
// histogram and counter). Must be called before concurrent use.
func (s *Striped) Instrument(reg *obs.Registry, name string, waitHist *obs.Histogram, contended *obs.Counter) {
	wm := &waitMetrics{reg: reg, name: name, waitHist: waitHist, contended: contended}
	for i := range s.stripes {
		s.stripes[i].wm = wm
	}
}

// For returns the latch for key.
func (s *Striped) For(key uint64) *Latch {
	return &s.stripes[key&s.mask]
}

// stripeIndex maps key to its stripe index.
func (s *Striped) stripeIndex(key uint64) int {
	return int(key & s.mask)
}

// MultiGuard holds a set of stripes of a Striped table, acquired in
// ascending stripe order so that concurrent acquirers of overlapping key
// sets cannot deadlock. The zero value is empty and may be released safely.
type MultiGuard struct {
	table     *Striped
	stripes   []int
	exclusive bool
}

// AcquireRange latches every stripe covering the key range [first, last]
// (inclusive). If exclusive is true the stripes are taken in exclusive
// mode, otherwise shared. Stripes are deduplicated and acquired in
// ascending order. If the range covers at least as many keys as there are
// stripes, the whole table is taken.
//
// Because consecutive keys map to consecutive stripes (masking), the
// covered stripe set is a possibly-wrapped interval, so ascending order
// is produced directly without sorting.
func (s *Striped) AcquireRange(first, last uint64, exclusive bool) MultiGuard {
	g := MultiGuard{table: s, exclusive: exclusive}
	n := uint64(len(s.stripes))
	if last < first {
		first, last = last, first
	}
	span := last - first + 1
	if span > n {
		span = n
	}
	g.stripes = make([]int, 0, span)
	switch {
	case last-first+1 >= n:
		// Every stripe is covered.
		for i := 0; i < int(n); i++ {
			g.stripes = append(g.stripes, i)
		}
	default:
		lo, hi := s.stripeIndex(first), s.stripeIndex(last)
		if lo <= hi {
			for i := lo; i <= hi; i++ {
				g.stripes = append(g.stripes, i)
			}
		} else {
			// Wrapped interval: [0, hi] then [lo, n).
			for i := 0; i <= hi; i++ {
				g.stripes = append(g.stripes, i)
			}
			for i := lo; i < int(n); i++ {
				g.stripes = append(g.stripes, i)
			}
		}
	}
	for _, idx := range g.stripes {
		if exclusive {
			s.stripes[idx].Lock()
		} else {
			s.stripes[idx].RLock()
		}
	}
	return g
}

// Release releases every stripe held by the guard. Releasing an empty
// guard is a no-op.
func (g *MultiGuard) Release() {
	// Release in reverse order of acquisition.
	for i := len(g.stripes) - 1; i >= 0; i-- {
		l := &g.table.stripes[g.stripes[i]]
		if g.exclusive {
			l.Unlock()
		} else {
			l.RUnlock()
		}
	}
	g.stripes = nil
}

// Held reports how many stripes the guard currently holds.
func (g *MultiGuard) Held() int { return len(g.stripes) }

// sortInts sorts a small slice of ints in ascending order. The slices seen
// here are tiny (an update rarely spans more than two stripes), so
// insertion sort is appropriate and avoids importing sort for a hot path.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}
