package latch

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestLatchExclusive(t *testing.T) {
	var l Latch
	var counter int
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 8000 {
		t.Fatalf("counter = %d, want 8000", counter)
	}
	if got := l.ExclusiveAcquisitions(); got != 8000 {
		t.Fatalf("exclusive acquisitions = %d, want 8000", got)
	}
}

func TestLatchSharedCounters(t *testing.T) {
	var l Latch
	l.RLock()
	l.RLock()
	if got := l.SharedAcquisitions(); got != 2 {
		t.Fatalf("shared acquisitions = %d, want 2", got)
	}
	l.RUnlock()
	l.RUnlock()
	l.Lock()
	l.Unlock()
	if got := l.ExclusiveAcquisitions(); got != 1 {
		t.Fatalf("exclusive acquisitions = %d, want 1", got)
	}
}

func TestLatchSharedConcurrent(t *testing.T) {
	var l Latch
	l.RLock()
	done := make(chan struct{})
	go func() {
		l.RLock() // must not block while only shared holders exist
		l.RUnlock()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("shared acquisition blocked by shared holder")
	}
	l.RUnlock()
}

func TestLatchExclusiveBlocksShared(t *testing.T) {
	var l Latch
	l.Lock()
	acquired := make(chan struct{})
	go func() {
		l.RLock()
		close(acquired)
		l.RUnlock()
	}()
	select {
	case <-acquired:
		t.Fatal("shared acquisition succeeded while exclusive held")
	case <-time.After(50 * time.Millisecond):
	}
	l.Unlock()
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("shared acquisition never proceeded after release")
	}
}

func TestNewStripedRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024},
	}
	for _, c := range cases {
		if got := NewStriped(c.in).Len(); got != c.want {
			t.Errorf("NewStriped(%d).Len() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestStripedForSameKeySameLatch(t *testing.T) {
	s := NewStriped(16)
	if s.For(5) != s.For(5) {
		t.Fatal("same key mapped to different latches")
	}
	if s.For(5) != s.For(5+16) {
		t.Fatal("keys congruent mod stripes mapped to different latches")
	}
}

func TestAcquireRangeSingle(t *testing.T) {
	s := NewStriped(8)
	g := s.AcquireRange(3, 3, true)
	if g.Held() != 1 {
		t.Fatalf("held = %d, want 1", g.Held())
	}
	// The covered stripe must be exclusively held.
	blocked := make(chan struct{})
	go func() {
		s.For(3).RLock()
		s.For(3).RUnlock()
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("stripe not held exclusively")
	case <-time.After(50 * time.Millisecond):
	}
	g.Release()
	select {
	case <-blocked:
	case <-time.After(2 * time.Second):
		t.Fatal("stripe never released")
	}
}

func TestAcquireRangeWholeTable(t *testing.T) {
	s := NewStriped(4)
	g := s.AcquireRange(0, 100, true)
	if g.Held() != 4 {
		t.Fatalf("held = %d, want all 4 stripes", g.Held())
	}
	g.Release()
	if g.Held() != 0 {
		t.Fatalf("held after release = %d, want 0", g.Held())
	}
}

func TestAcquireRangeReversedBounds(t *testing.T) {
	s := NewStriped(8)
	g := s.AcquireRange(5, 2, false)
	if g.Held() != 4 { // keys 2,3,4,5
		t.Fatalf("held = %d, want 4", g.Held())
	}
	g.Release()
}

func TestAcquireRangeSharedAllowsShared(t *testing.T) {
	s := NewStriped(8)
	g1 := s.AcquireRange(0, 3, false)
	g2 := s.AcquireRange(2, 5, false)
	if g1.Held() == 0 || g2.Held() == 0 {
		t.Fatal("shared guards should coexist")
	}
	g2.Release()
	g1.Release()
}

func TestAcquireRangeNoDeadlockOverlapping(t *testing.T) {
	s := NewStriped(8)
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				first := uint64((i + j) % 8)
				last := first + uint64(j%5)
				g := s.AcquireRange(first, last, j%2 == 0)
				g.Release()
			}
		}(i)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock: overlapping range acquisitions did not finish")
	}
}

func TestReleaseEmptyGuard(t *testing.T) {
	var g MultiGuard
	g.Release() // must not panic
	g.Release()
}

func TestSortIntsProperty(t *testing.T) {
	f := func(in []int) bool {
		a := append([]int(nil), in...)
		sortInts(a)
		if len(a) != len(in) {
			return false
		}
		for i := 1; i < len(a); i++ {
			if a[i-1] > a[i] {
				return false
			}
		}
		// Same multiset: count occurrences.
		count := map[int]int{}
		for _, v := range in {
			count[v]++
		}
		for _, v := range a {
			count[v]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAcquireRangeStripesSortedProperty(t *testing.T) {
	s := NewStriped(16)
	f := func(first, last uint16) bool {
		g := s.AcquireRange(uint64(first), uint64(last), false)
		defer g.Release()
		for i := 1; i < len(g.stripes); i++ {
			if g.stripes[i-1] >= g.stripes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
