package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hashidx"
)

// ErrNotFound re-exports the index sentinel: errors.Is(err, ErrNotFound)
// holds for a Get/Delete of a key that is not stored.
var ErrNotFound = hashidx.ErrNotFound

// ErrTxnDone mirrors core.ErrTxnDone at router level.
var ErrTxnDone = errors.New("shard: transaction already completed")

// Txn is a router-level transaction. It lazily opens one core.Txn per
// shard it touches; commit takes the fast path (a plain engine commit,
// zero 2PC overhead) when only one shard participated, and two-phase
// commit otherwise. Not safe for concurrent use by multiple goroutines.
type Txn struct {
	r     *Router
	ctx   context.Context
	parts map[int]*core.Txn
	// order records shards in first-touch order; order[0] coordinates a
	// cross-shard commit.
	order []int
	done  bool
}

// Begin starts a router transaction.
//
//dbvet:allow ctxflow Begin is the documented no-deadline convenience wrapper; request paths use BeginCtx
func (r *Router) Begin() *Txn { return r.BeginCtx(context.Background()) }

// BeginCtx starts a router transaction bound to ctx: every per-shard
// engine transaction it opens inherits the context for lock waits and
// group-commit waits.
func (r *Router) BeginCtx(ctx context.Context) *Txn {
	r.mTxns.Inc()
	return &Txn{r: r, ctx: ctx, parts: make(map[int]*core.Txn)}
}

// part returns the engine transaction for shard s, opening it on first
// touch.
func (t *Txn) part(s int) (*core.Txn, error) {
	if p, ok := t.parts[s]; ok {
		return p, nil
	}
	p, err := t.r.units[s].db.BeginCtx(t.ctx)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", s, err)
	}
	t.parts[s] = p
	t.order = append(t.order, s)
	return p, nil
}

// Shards reports how many shards the transaction has touched so far.
func (t *Txn) Shards() int { return len(t.parts) }

// Get returns the value stored under key, or ErrNotFound.
func (t *Txn) Get(key uint64) ([]byte, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	s := t.r.ShardFor(key)
	u := t.r.units[s]
	p, err := t.part(s)
	if err != nil {
		return nil, err
	}
	rid, err := u.idx.Lookup(p, key)
	if err != nil {
		return nil, err
	}
	rec, err := u.tab.Read(p, rid)
	if err != nil {
		return nil, err
	}
	return decodeKV(rec), nil
}

// Put stores val under key (insert or overwrite).
func (t *Txn) Put(key uint64, val []byte) error {
	if t.done {
		return ErrTxnDone
	}
	if len(val) > t.r.cfg.ValueSize {
		return fmt.Errorf("shard: value is %d bytes, max %d", len(val), t.r.cfg.ValueSize)
	}
	s := t.r.ShardFor(key)
	u := t.r.units[s]
	p, err := t.part(s)
	if err != nil {
		return err
	}
	rec := encodeKV(8+2+t.r.cfg.ValueSize, key, val)
	rid, err := u.idx.Lookup(p, key)
	switch {
	case err == nil:
		return u.tab.Update(p, rid, 0, rec)
	case errors.Is(err, ErrNotFound):
		rid, err = u.tab.Insert(p, rec)
		if err != nil {
			return err
		}
		return u.idx.Insert(p, key, rid)
	default:
		return err
	}
}

// Delete removes key, or returns ErrNotFound.
func (t *Txn) Delete(key uint64) error {
	if t.done {
		return ErrTxnDone
	}
	s := t.r.ShardFor(key)
	u := t.r.units[s]
	p, err := t.part(s)
	if err != nil {
		return err
	}
	rid, err := u.idx.Lookup(p, key)
	if err != nil {
		return err
	}
	if err := u.idx.Delete(p, key); err != nil {
		return err
	}
	return u.tab.Delete(p, rid)
}

// Commit commits the transaction. With zero or one participating shard
// this is exactly an engine commit — no prepare, no decision, no extra
// log records. With several, the first-touched shard coordinates a
// two-phase commit; on any prepare failure the transaction aborts
// everywhere and the error is returned.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	switch len(t.order) {
	case 0:
		return nil
	case 1:
		p := t.parts[t.order[0]]
		if err := p.Commit(); err != nil {
			return fmt.Errorf("shard %d: %w", t.order[0], err)
		}
		t.r.mFastpath.Inc()
		return nil
	}
	return t.commit2PC()
}

// commit2PC runs presumed-abort two-phase commit across the participants.
func (t *Txn) commit2PC() error {
	start := time.Now()
	coord := t.order[0]
	gid := makeGID(coord, uint64(t.parts[coord].ID()))

	// Phase 1: prepare every participant (coordinator included), in
	// parallel — each prepare forces its own shard's log through the
	// prepare record, and the flushes overlap across shards.
	if err := t.eachPart(func(s int) error { return t.parts[s].Prepare(gid) }); err != nil {
		t.abortParts()
		t.r.mCrossAb.Inc()
		return fmt.Errorf("shard: 2pc prepare: %w", err)
	}

	// Decision: durable in the coordinator shard's log and mirrored into
	// its checkpointed metadata until every participant acknowledges.
	// This is the commit point.
	if err := t.r.recordDecision(coord, gid, true); err != nil {
		// The decision may or may not be durable. Do NOT roll anything
		// back: if the record made it to disk, an abort here would break
		// atomicity. Leave every participant prepared; restart recovery
		// resolves them (commit if the decision survived, presumed abort
		// if not — either way, all participants agree).
		t.r.mCrossAb.Inc()
		return fmt.Errorf("shard: 2pc decision for gid %#x: %w", gid, err)
	}

	// Phase 2: apply the decision on every participant in parallel. A
	// participant failure here (poisoned log) leaves the decision in the
	// coordinator's table; that shard's next recovery finishes the commit.
	err := t.eachPart(func(s int) error { return t.parts[s].CommitPrepared() })
	if err == nil {
		t.r.forgetDecision(coord, gid)
	}
	t.r.mCross.Inc()
	t.r.h2PCNS.ObserveDuration(time.Since(start))
	t.r.hCrossFan.Observe(uint64(len(t.order)))
	return err
}

// eachPart runs fn for every participating shard concurrently and joins
// the errors (labeled with their shard).
func (t *Txn) eachPart(fn func(s int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(t.order))
	for i, s := range t.order {
		wg.Add(1)
		go func(i, s int) {
			defer wg.Done()
			if err := fn(s); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", s, err)
			}
		}(i, s)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// abortParts rolls back every participant, prepared or not.
func (t *Txn) abortParts() {
	for _, s := range t.order {
		p := t.parts[s]
		if p.Prepared() {
			_ = p.AbortPrepared()
		} else {
			_ = p.Abort()
		}
	}
}

// Abort rolls the transaction back on every shard it touched.
func (t *Txn) Abort() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	var errs []error
	for _, s := range t.order {
		if err := t.parts[s].Abort(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", s, err))
		}
	}
	return errors.Join(errs...)
}
