// Package shard scales the single-arena storage manager to K independent
// arena+WAL+checkpoint+lock-manager units behind one Router. Each shard
// is a complete core.DB in its own directory with its own obs registry,
// so audits, checkpoints and restart recovery stay bounded per shard and
// run in parallel across shards — the recovery-independence argument of
// Wu et al. (PAPERS.md) applied to the paper's codeword-protected arenas.
//
// Keys hash-route to shards. A transaction that touches one shard commits
// straight through the existing core.Txn machinery — no extra records, no
// coordination. A transaction that touches several commits via two-phase
// commit built on the engine's own primitives: a prepare record in each
// participant's WAL (core.Txn.Prepare), a decision record in the
// coordinator shard's WAL (core.DB.AppendDecision), presumed abort for
// everything undecided. Recovery resolves in-doubt transactions per shard
// in parallel (recovery.Report.InDoubt) against the coordinator's
// decisions, which survive log compaction through a decision table in the
// coordinator shard's checkpointed metadata.
package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/hashidx"
	"repro/internal/heap"
	"repro/internal/iofault"
	"repro/internal/obs"
	"repro/internal/protect"
	"repro/internal/recovery"
	"repro/internal/wal"
)

// Config describes a sharded database.
type Config struct {
	// Dir is the root directory; shard i lives in Dir/shard-<i>.
	Dir string
	// Shards is the shard count K (default 1). Fixed for the life of the
	// database: the routing hash is not consistent across K changes.
	Shards int
	// ArenaSize, PageSize, Protect, LockTimeout, Workers and FS configure
	// every shard's core.DB identically (ArenaSize is per shard).
	ArenaSize   int
	PageSize    int
	Protect     protect.Config
	LockTimeout time.Duration
	Workers     int
	FS          iofault.FS
	// LogStreams is the per-shard log stream count (core.Config.LogStreams):
	// each shard's WAL is sharded into this many independent streams. 2PC
	// prepare and decision records are stamped with the shard's GSN like
	// every other record, so in-doubt resolution merges correctly.
	LogStreams int
	// RedoWorkers bounds the partitioned parallel redo-apply pass during
	// per-shard recovery (recovery.Options.RedoWorkers; 0 uses Workers).
	RedoWorkers int
	// ValueSize is the maximum value length of the KV store (default 120
	// bytes; records are fixed-size, values are length-prefixed inside).
	ValueSize int
	// Capacity is the KV record capacity per shard (default 4096).
	Capacity int
	// DisableLogCompaction is passed through to every shard.
	DisableLogCompaction bool
}

func (c Config) normalized() (Config, error) {
	if c.Dir == "" {
		return Config{}, errors.New("shard: config: Dir required")
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Shards < 1 || c.Shards > 1<<15 {
		return Config{}, fmt.Errorf("shard: config: Shards must be in [1, %d], got %d", 1<<15, c.Shards)
	}
	if c.ValueSize == 0 {
		c.ValueSize = 120
	}
	if c.ValueSize < 1 || c.ValueSize > 1<<16-2 {
		return Config{}, fmt.Errorf("shard: config: ValueSize must be in [1, %d], got %d", 1<<16-2, c.ValueSize)
	}
	if c.Capacity == 0 {
		c.Capacity = 4096
	}
	if c.Capacity < 1 {
		return Config{}, fmt.Errorf("shard: config: Capacity must be positive, got %d", c.Capacity)
	}
	return c, nil
}

// shardDir names shard i's directory under root.
func shardDir(root string, i int) string {
	return filepath.Join(root, fmt.Sprintf("shard-%03d", i))
}

const (
	kvTableName = "kv"
	kvIndexName = "kv_by_key"
)

// unit is one shard: a full engine plus its KV access structures.
type unit struct {
	id  int
	db  *core.DB
	tab *heap.Table
	idx *hashidx.Index
}

// Router owns the K shard engines and routes keys to them.
type Router struct {
	cfg   Config
	units []*unit

	// 2PC decision tables, one per shard (a shard is a coordinator for
	// the cross-shard transactions it originates). Guarded by decMu;
	// mirrored into the owning shard's checkpointed metadata so decisions
	// survive log compaction until every participant acknowledged.
	decMu     sync.Mutex
	decisions []map[uint64]bool

	closed bool
	mu     sync.Mutex // guards closed

	reg       *obs.Registry
	mTxns     *obs.Counter
	mFastpath *obs.Counter
	mCross    *obs.Counter
	mCrossAb  *obs.Counter
	mInDoubtC *obs.Counter
	mInDoubtA *obs.Counter
	h2PCNS    *obs.Histogram
	hCrossFan *obs.Histogram
}

// OpenReport summarizes what opening a sharded database did.
type OpenReport struct {
	// Fresh reports that every shard was newly created.
	Fresh bool
	// PerShard holds each shard's recovery report (nil entries for shards
	// created fresh — only possible on a fresh database).
	PerShard []*recovery.Report
	// InDoubtCommitted / InDoubtAborted count cross-shard transactions
	// resolved during open from the coordinators' decisions (presumed
	// abort for the undecided).
	InDoubtCommitted int
	InDoubtAborted   int
}

// Open opens the sharded database rooted at cfg.Dir, creating it fresh if
// it has no durable state and recovering every shard (in parallel)
// otherwise, then resolving in-doubt cross-shard transactions against the
// coordinators' decisions.
func Open(cfg Config) (*Router, *OpenReport, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, nil, err
	}
	r := &Router{
		cfg:       cfg,
		units:     make([]*unit, cfg.Shards),
		decisions: make([]map[uint64]bool, cfg.Shards),
		reg:       obs.NewRegistry(),
	}
	for i := range r.decisions {
		r.decisions[i] = make(map[uint64]bool)
	}
	r.mTxns = r.reg.Counter(obs.NameShardTxns)
	r.mFastpath = r.reg.Counter(obs.NameShardFastpathCommits)
	r.mCross = r.reg.Counter(obs.NameShardCrossCommits)
	r.mCrossAb = r.reg.Counter(obs.NameShardCrossAborts)
	r.mInDoubtC = r.reg.Counter(obs.NameShardInDoubtCommits)
	r.mInDoubtA = r.reg.Counter(obs.NameShardInDoubtAborts)
	r.h2PCNS = r.reg.Histogram(obs.NameShard2PCCommitNS)
	r.hCrossFan = r.reg.Histogram(obs.NameShardCrossTouched)

	report := &OpenReport{PerShard: make([]*recovery.Report, cfg.Shards)}

	// Open every shard in parallel: fresh shards are created, existing
	// ones run full restart recovery independently.
	var wg sync.WaitGroup
	errs := make([]error, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			u, rep, err := openUnit(cfg, i)
			if err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
				return
			}
			r.units[i] = u
			report.PerShard[i] = rep
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		r.closeUnits()
		return nil, nil, err
	}

	fresh := true
	for _, rep := range report.PerShard {
		if rep == nil || !rep.FreshDatabase {
			fresh = false
		}
	}
	report.Fresh = fresh

	// Load each coordinator's decision table (log-scanned decisions plus
	// the checkpointed table), then resolve every in-doubt participant.
	if err := r.resolveInDoubt(report); err != nil {
		r.closeUnits()
		return nil, nil, err
	}
	return r, report, nil
}

// openUnit opens one shard fresh or through recovery.
func openUnit(cfg Config, i int) (*unit, *recovery.Report, error) {
	dir := shardDir(cfg.Dir, i)
	ccfg := core.Config{
		Dir:                  dir,
		ArenaSize:            cfg.ArenaSize,
		PageSize:             cfg.PageSize,
		Protect:              cfg.Protect,
		LockTimeout:          cfg.LockTimeout,
		Workers:              cfg.Workers,
		FS:                   cfg.FS,
		LogStreams:           cfg.LogStreams,
		DisableLogCompaction: cfg.DisableLogCompaction,
	}
	existing := false
	if _, err := os.Stat(filepath.Join(dir, ckpt.AnchorFileName)); err == nil {
		existing = true
	} else if _, err := os.Stat(filepath.Join(dir, wal.LogFileName)); err == nil {
		existing = true
	}
	if existing {
		db, rep, err := recovery.Open(ccfg, recovery.Options{RedoWorkers: cfg.RedoWorkers})
		if err != nil {
			return nil, nil, err
		}
		u, err := attachKV(i, db)
		if err != nil {
			db.Close()
			return nil, nil, err
		}
		return u, rep, nil
	}
	db, err := core.Open(ccfg)
	if err != nil {
		return nil, nil, err
	}
	u, err := createKV(cfg, i, db)
	if err != nil {
		db.Close()
		return nil, nil, err
	}
	rep := &recovery.Report{FreshDatabase: true}
	return u, rep, nil
}

// createKV creates the shard's KV table and index on a fresh engine and
// checkpoints so the catalog survives a crash.
func createKV(cfg Config, id int, db *core.DB) (*unit, error) {
	hcat, err := heap.Open(db)
	if err != nil {
		return nil, err
	}
	recSize := 8 + 2 + cfg.ValueSize
	tab, err := hcat.CreateTable(kvTableName, recSize, cfg.Capacity)
	if err != nil {
		return nil, err
	}
	icat, err := hashidx.Open(db)
	if err != nil {
		return nil, err
	}
	// Size the index ahead of the table so probes terminate well before
	// the table fills (open addressing needs slack).
	idx, err := icat.CreateIndex(kvIndexName, 2*cfg.Capacity)
	if err != nil {
		return nil, err
	}
	if err := db.Checkpoint(); err != nil {
		return nil, err
	}
	return &unit{id: id, db: db, tab: tab, idx: idx}, nil
}

// attachKV reopens the KV structures from a recovered engine's catalogs.
func attachKV(id int, db *core.DB) (*unit, error) {
	hcat, err := heap.Open(db)
	if err != nil {
		return nil, err
	}
	tab, err := hcat.Table(kvTableName)
	if err != nil {
		return nil, err
	}
	icat, err := hashidx.Open(db)
	if err != nil {
		return nil, err
	}
	idx, err := icat.IndexNamed(kvIndexName)
	if err != nil {
		return nil, err
	}
	return &unit{id: id, db: db, tab: tab, idx: idx}, nil
}

// Shards reports the shard count.
func (r *Router) Shards() int { return r.cfg.Shards }

// ShardFor reports which shard key routes to.
func (r *Router) ShardFor(key uint64) int {
	return int(splitmix64(key) % uint64(r.cfg.Shards))
}

// DB exposes shard i's engine (tools, tests, per-shard maintenance).
func (r *Router) DB(i int) *core.DB { return r.units[i].db }

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed hash so
// adjacent keys spread across shards.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Checkpoint checkpoints every shard in parallel.
func (r *Router) Checkpoint() error {
	return r.parallel(func(u *unit) error { return u.db.Checkpoint() })
}

// Audit audits every shard in parallel; corruption on any shard is
// reported with its shard ID.
func (r *Router) Audit() error {
	return r.parallel(func(u *unit) error { return u.db.Audit() })
}

// parallel runs fn on every shard concurrently and joins the errors.
func (r *Router) parallel(fn func(*unit) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(r.units))
	for i, u := range r.units {
		wg.Add(1)
		go func(i int, u *unit) {
			defer wg.Done()
			if err := fn(u); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", u.id, err)
			}
		}(i, u)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Close closes every shard (flushing logs; no final checkpoint).
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	return r.closeUnits()
}

// CloseClean checkpoints and audits every shard, then closes. The server
// uses it for graceful drain: a clean close leaves every shard with a
// certified image and an empty recovery.
func (r *Router) CloseClean() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	err := r.parallel(func(u *unit) error { return u.db.CloseClean() })
	return err
}

func (r *Router) closeUnits() error {
	var errs []error
	for _, u := range r.units {
		if u == nil {
			continue
		}
		if err := u.db.Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", u.id, err))
		}
	}
	return errors.Join(errs...)
}

// Metrics returns the router's own counters plus every shard's engine
// snapshot, keyed "router" and "shard-<i>".
func (r *Router) Metrics() map[string]obs.Snapshot {
	out := make(map[string]obs.Snapshot, len(r.units)+1)
	out["router"] = r.reg.Snapshot()
	for _, u := range r.units {
		out[fmt.Sprintf("shard-%03d", u.id)] = u.db.Metrics()
	}
	return out
}

// Observability exposes the router's registry (event sinks, tests).
func (r *Router) Observability() *obs.Registry { return r.reg }

// encodeKV lays out a fixed-size KV record: key, value length, value.
func encodeKV(recSize int, key uint64, val []byte) []byte {
	rec := make([]byte, recSize)
	binary.LittleEndian.PutUint64(rec, key)
	binary.LittleEndian.PutUint16(rec[8:], uint16(len(val)))
	copy(rec[10:], val)
	return rec
}

// decodeKV extracts the value from a KV record.
func decodeKV(rec []byte) []byte {
	n := int(binary.LittleEndian.Uint16(rec[8:]))
	if n > len(rec)-10 {
		n = len(rec) - 10
	}
	return append([]byte(nil), rec[10:10+n]...)
}
