package shard

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Global transaction IDs pack the coordinator shard and the coordinator's
// engine transaction ID: gid = (shard+1)<<48 | txnID. The +1 keeps every
// gid nonzero; 48 bits of transaction ID outlast any plausible run (IDs
// are recovered monotonic, so gids stay unique across restarts).
const gidShardShift = 48

func makeGID(coordShard int, txnID uint64) uint64 {
	return uint64(coordShard+1)<<gidShardShift | (txnID & (1<<gidShardShift - 1))
}

// gidShard extracts the coordinator shard, or -1 for a malformed gid.
func gidShard(gid uint64) int {
	s := int(gid>>gidShardShift) - 1
	if s < 0 {
		return -1
	}
	return s
}

// decisionsMetaKey is the engine-metadata key under which a coordinator
// shard checkpoints its unacknowledged decision table. The system log
// below the certified CK_end is compacted away, so any decision that must
// outlive a checkpoint (a participant has not yet durably committed)
// survives through this table instead.
const decisionsMetaKey = "shard.2pc.decisions"

func encodeDecisions(m map[uint64]bool) []byte {
	// Encode in sorted gid order: the blob is checkpointed engine
	// metadata, and replaying the same decision table must produce the
	// same bytes (map iteration order would leak into durable state).
	gids := make([]uint64, 0, len(m))
	for gid := range m {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	b := binary.AppendUvarint(nil, uint64(len(m)))
	for _, gid := range gids {
		b = binary.AppendUvarint(b, gid)
		if m[gid] {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

func decodeDecisions(b []byte) (map[uint64]bool, error) {
	m := make(map[uint64]bool)
	if len(b) == 0 {
		return m, nil
	}
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, fmt.Errorf("shard: corrupt decision table header")
	}
	b = b[w:]
	for i := uint64(0); i < n; i++ {
		gid, w := binary.Uvarint(b)
		if w <= 0 || len(b) < w+1 {
			return nil, fmt.Errorf("shard: corrupt decision table entry %d", i)
		}
		m[gid] = b[w] == 1
		b = b[w+1:]
	}
	return m, nil
}

// recordDecision durably logs the coordinator's verdict in shard coord
// and mirrors it into the shard's checkpointed metadata until acked.
func (r *Router) recordDecision(coord int, gid uint64, commit bool) error {
	if err := r.units[coord].db.AppendDecision(gid, commit); err != nil {
		return err
	}
	r.decMu.Lock()
	defer r.decMu.Unlock()
	r.decisions[coord][gid] = commit
	r.units[coord].db.SetMeta(decisionsMetaKey, encodeDecisions(r.decisions[coord]))
	return nil
}

// forgetDecision drops an acknowledged decision (every participant has
// durably applied it) from the coordinator's table.
func (r *Router) forgetDecision(coord int, gid uint64) {
	r.decMu.Lock()
	defer r.decMu.Unlock()
	delete(r.decisions[coord], gid)
	r.units[coord].db.SetMeta(decisionsMetaKey, encodeDecisions(r.decisions[coord]))
}

// resolveInDoubt finishes every 2PC-prepared transaction recovery left
// attached: commit if the coordinator's decision says so, presumed abort
// otherwise. Runs per shard in parallel after all shards opened. Because
// all participants of every global transaction live in this router, once
// resolution completes no decision can still be needed, and every
// coordinator's table is cleared.
func (r *Router) resolveInDoubt(report *OpenReport) error {
	// Assemble each coordinator's known decisions: the log scan plus the
	// checkpointed table (the log may have been compacted since the
	// decision was written). The tables are decMu-guarded like every
	// other access — resolution runs while client traffic is still
	// fenced, but the guard is what the invariant (and the lockfield
	// pass) holds us to.
	r.decMu.Lock()
	for i, u := range r.units {
		rep := report.PerShard[i]
		if rep != nil {
			for gid, commit := range rep.Decisions {
				r.decisions[i][gid] = commit
			}
		}
		if blob, ok := u.db.Meta(decisionsMetaKey); ok {
			m, err := decodeDecisions(blob)
			if err != nil {
				r.decMu.Unlock()
				return fmt.Errorf("shard %d: %w", i, err)
			}
			for gid, commit := range m {
				r.decisions[i][gid] = commit
			}
		}
	}
	r.decMu.Unlock()

	for i, u := range r.units {
		rep := report.PerShard[i]
		if rep == nil || len(rep.InDoubt) == 0 {
			continue
		}
		for _, d := range rep.InDoubt {
			commit := false
			if cs := gidShard(d.GID); cs >= 0 && cs < len(r.units) {
				r.decMu.Lock()
				commit = r.decisions[cs][d.GID]
				r.decMu.Unlock()
			}
			entry := u.db.Internals().ATT.Lookup(d.ID)
			if entry == nil {
				return fmt.Errorf("shard %d: in-doubt txn %d missing from ATT", i, d.ID)
			}
			txn, err := u.db.AdoptPrepared(entry)
			if err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
			if commit {
				if err := txn.CommitPrepared(); err != nil {
					return fmt.Errorf("shard %d: resolve gid %#x commit: %w", i, d.GID, err)
				}
				r.mInDoubtC.Inc()
				report.InDoubtCommitted++
			} else {
				if err := txn.AbortPrepared(); err != nil {
					return fmt.Errorf("shard %d: resolve gid %#x abort: %w", i, d.GID, err)
				}
				r.mInDoubtA.Inc()
				report.InDoubtAborted++
			}
		}
	}

	// Everything in doubt anywhere has been resolved; no decision is
	// needed again. Clear every table so it cannot grow without bound.
	r.decMu.Lock()
	for i, u := range r.units {
		if len(r.decisions[i]) != 0 {
			r.decisions[i] = make(map[uint64]bool)
			u.db.SetMeta(decisionsMetaKey, nil)
		}
	}
	r.decMu.Unlock()
	return nil
}
