package shard

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/iofault"
	"repro/internal/obs"
	"repro/internal/wal"
)

func testConfig(t *testing.T, dir string, k int) Config {
	t.Helper()
	return Config{
		Dir:         dir,
		Shards:      k,
		ArenaSize:   1 << 17,
		PageSize:    4096,
		LockTimeout: 2 * time.Second,
		ValueSize:   64,
		Capacity:    256,
	}
}

func mustOpen(t *testing.T, cfg Config) (*Router, *OpenReport) {
	t.Helper()
	r, rep, err := Open(cfg)
	if err != nil {
		t.Fatalf("shard.Open: %v", err)
	}
	return r, rep
}

// keysOnShard returns n distinct keys that all route to shard want.
func keysOnShard(t *testing.T, r *Router, want, n int) []uint64 {
	t.Helper()
	var keys []uint64
	for k := uint64(1); len(keys) < n && k < 1<<20; k++ {
		if r.ShardFor(k) == want {
			keys = append(keys, k)
		}
	}
	if len(keys) < n {
		t.Fatalf("could not find %d keys on shard %d", n, want)
	}
	return keys
}

// crossShardKeys returns one key per shard, covering every shard.
func crossShardKeys(t *testing.T, r *Router) []uint64 {
	t.Helper()
	keys := make([]uint64, r.Shards())
	for i := range keys {
		keys[i] = keysOnShard(t, r, i, 1)[0]
	}
	return keys
}

func TestKVBasic(t *testing.T) {
	r, rep := mustOpen(t, testConfig(t, t.TempDir(), 1))
	defer r.Close()
	if !rep.Fresh {
		t.Fatal("expected fresh database")
	}

	txn := r.Begin()
	if err := txn.Put(7, []byte("hello")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if got, err := txn.Get(7); err != nil || string(got) != "hello" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := txn.Put(7, []byte("world")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if got, _ := txn.Get(7); string(got) != "world" {
		t.Fatalf("after overwrite Get = %q", got)
	}
	if err := txn.Delete(7); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := txn.Get(7); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete = %v, want ErrNotFound", err)
	}
	if err := txn.Put(7, []byte("again")); err != nil {
		t.Fatalf("re-insert: %v", err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := txn.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double Commit = %v, want ErrTxnDone", err)
	}

	txn = r.Begin()
	if got, err := txn.Get(7); err != nil || string(got) != "again" {
		t.Fatalf("Get after commit = %q, %v", got, err)
	}
	if err := txn.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
}

func TestAbortRollsBackAllShards(t *testing.T) {
	r, _ := mustOpen(t, testConfig(t, t.TempDir(), 4))
	defer r.Close()
	keys := crossShardKeys(t, r)

	txn := r.Begin()
	for _, k := range keys {
		if err := txn.Put(k, []byte("x")); err != nil {
			t.Fatalf("Put(%d): %v", k, err)
		}
	}
	if got := txn.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	if err := txn.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}

	check := r.Begin()
	defer check.Abort()
	for _, k := range keys {
		if _, err := check.Get(k); !errors.Is(err, ErrNotFound) {
			t.Fatalf("key %d visible after abort: %v", k, err)
		}
	}
}

// TestFastpathNoTwoPhaseRecords pins the acceptance criterion that
// single-shard transactions pay no 2PC overhead: after a burst of
// single-shard commits on a multi-shard router, no shard's log contains a
// prepare or decision record, and only the fastpath counter moved.
func TestFastpathNoTwoPhaseRecords(t *testing.T) {
	dir := t.TempDir()
	r, _ := mustOpen(t, testConfig(t, dir, 4))

	const txns = 16
	for i := 0; i < txns; i++ {
		s := i % r.Shards()
		keys := keysOnShard(t, r, s, 3)
		txn := r.Begin()
		for _, k := range keys {
			if err := txn.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
		if err := txn.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}

	snap := r.Metrics()["router"]
	if got := snap.Counter(obs.NameShardFastpathCommits); got != txns {
		t.Fatalf("fastpath commits = %d, want %d", got, txns)
	}
	if got := snap.Counter(obs.NameShardCrossCommits); got != 0 {
		t.Fatalf("cross commits = %d, want 0", got)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	for i := 0; i < 4; i++ {
		sd := shardDir(dir, i)
		base, err := wal.LogBase(sd)
		if err != nil {
			t.Fatalf("LogBase(%s): %v", sd, err)
		}
		err = wal.Scan(sd, base, func(rec *wal.Record) bool {
			if rec.Kind == wal.KindTxnPrepare || rec.Kind == wal.KindTxnDecision {
				t.Errorf("shard %d: unexpected %s record for single-shard workload", i, rec.Kind)
			}
			return true
		})
		if err != nil {
			t.Fatalf("Scan shard %d: %v", i, err)
		}
	}
}

func TestCrossShardCommitSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, dir, 4)
	r, _ := mustOpen(t, cfg)
	keys := crossShardKeys(t, r)

	txn := r.Begin()
	for i, k := range keys {
		if err := txn.Put(k, []byte(fmt.Sprintf("shard%d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := txn.Commit(); err != nil {
		t.Fatalf("cross-shard Commit: %v", err)
	}

	snap := r.Metrics()["router"]
	if got := snap.Counter(obs.NameShardCrossCommits); got != 1 {
		t.Fatalf("cross commits = %d, want 1", got)
	}
	if got := snap.Counter(obs.NameShardFastpathCommits); got != 0 {
		t.Fatalf("fastpath commits = %d, want 0", got)
	}

	// Dirty close: reopen runs restart recovery on every shard.
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r2, rep := mustOpen(t, cfg)
	defer r2.Close()
	if rep.Fresh {
		t.Fatal("reopen reported fresh database")
	}
	if rep.InDoubtCommitted != 0 || rep.InDoubtAborted != 0 {
		t.Fatalf("clean reopen resolved in-doubt txns: %+v", rep)
	}
	check := r2.Begin()
	defer check.Abort()
	for i, k := range keys {
		got, err := check.Get(k)
		if err != nil || string(got) != fmt.Sprintf("shard%d", i) {
			t.Fatalf("key %d after reopen = %q, %v", k, got, err)
		}
	}
}

// TestCrossShardTortureEveryCrashPoint is the PR's atomicity acceptance
// test: a cross-shard transaction is committed with a simulated crash at
// every I/O point in turn (including points inside the parallel shard
// opens), the durable state is materialized, and the recovered database
// must show either every key's new value or every key's old value —
// never a mix. The campaign must observe both outcomes, and must resolve
// at least one transaction through the in-doubt path (prepared records
// durable, decision applied or presumed abort at open).
func TestCrossShardTortureEveryCrashPoint(t *testing.T) {
	runCrossShardTorture(t, 0)
}

// TestCrossShardTortureEveryCrashPointMultiStream reruns the campaign
// with each shard's WAL sharded into two streams: crash points now land
// inside every stream file's writes and fsyncs, and in-doubt 2PC
// resolution must merge prepare/decision records across streams by GSN.
func TestCrossShardTortureEveryCrashPointMultiStream(t *testing.T) {
	runCrossShardTorture(t, 2)
}

func runCrossShardTorture(t *testing.T, logStreams int) {
	if testing.Short() {
		t.Skip("torture campaign is long; skipped with -short")
	}

	const K = 2
	mkCfg := func(dir string) Config {
		c := testConfig(t, dir, K)
		c.LogStreams = logStreams
		if logStreams > 1 {
			c.RedoWorkers = 2
		}
		return c
	}
	seed := filepath.Join(t.TempDir(), "seed")

	// Build the seed state once: baseline values for one key per shard.
	cfg := mkCfg(seed)
	r, _ := mustOpen(t, cfg)
	keys := crossShardKeys(t, r)
	txn := r.Begin()
	for _, k := range keys {
		if err := txn.Put(k, []byte("old")); err != nil {
			t.Fatalf("seed Put: %v", err)
		}
	}
	if err := txn.Commit(); err != nil {
		t.Fatalf("seed Commit: %v", err)
	}
	if err := r.CloseClean(); err != nil {
		t.Fatalf("seed CloseClean: %v", err)
	}

	// scenario opens the work copy through the fault FS and runs the
	// cross-shard update. Errors from the armed crash are expected.
	scenario := func(work string, ffs *iofault.FaultFS) {
		wcfg := mkCfg(work)
		wcfg.FS = ffs
		wr, _, err := Open(wcfg)
		if err != nil {
			return // crashed during a shard open
		}
		defer wr.Close()
		wt := wr.Begin()
		for _, k := range keys {
			if err := wt.Put(k, []byte("new")); err != nil {
				return
			}
		}
		_ = wt.Commit()
	}

	// Fault-free calibration run to size the crash-point space.
	calib := filepath.Join(t.TempDir(), "calib")
	copyTree(t, seed, calib)
	ffs := iofault.NewFaultFS(calib)
	scenario(calib, ffs)
	points := ffs.Points()
	if points == 0 {
		t.Fatal("calibration run consumed no I/O points")
	}
	t.Logf("torturing %d crash points", points)

	var committed, aborted, inDoubtC, inDoubtA int
	for k := int64(0); k < int64(points); k++ {
		work := filepath.Join(t.TempDir(), fmt.Sprintf("crash-%d", k))
		copyTree(t, seed, work)
		ffs := iofault.NewFaultFS(work)
		ffs.CrashAtPoint(k)
		scenario(work, ffs)
		if !ffs.Crashed() {
			t.Fatalf("point %d: crash failpoint never fired", k)
		}

		recoverDir := filepath.Join(t.TempDir(), fmt.Sprintf("recover-%d", k))
		if err := ffs.MaterializeDurable(recoverDir); err != nil {
			t.Fatalf("point %d: materialize: %v", k, err)
		}
		rr, rep, err := Open(mkCfg(recoverDir))
		if err != nil {
			t.Fatalf("point %d: recovery open: %v", k, err)
		}
		inDoubtC += rep.InDoubtCommitted
		inDoubtA += rep.InDoubtAborted

		check := rr.Begin()
		vals := make([]string, len(keys))
		for i, key := range keys {
			got, err := check.Get(key)
			if err != nil {
				t.Fatalf("point %d: Get(%d) after recovery: %v", k, key, err)
			}
			vals[i] = string(got)
		}
		check.Abort()
		if err := rr.Audit(); err != nil {
			t.Fatalf("point %d: post-recovery audit: %v", k, err)
		}
		rr.Close()

		switch {
		case all(vals, "new"):
			committed++
		case all(vals, "old"):
			aborted++
		default:
			t.Fatalf("point %d: atomicity violated: values %q", k, vals)
		}
	}

	t.Logf("outcomes: %d committed, %d aborted; in-doubt resolved: %d commit, %d abort",
		committed, aborted, inDoubtC, inDoubtA)
	if committed == 0 || aborted == 0 {
		t.Fatalf("campaign saw only one outcome (%d committed, %d aborted)", committed, aborted)
	}
	if inDoubtC == 0 {
		t.Error("no crash point exercised in-doubt commit resolution")
	}
	if inDoubtA == 0 {
		t.Error("no crash point exercised in-doubt (presumed) abort resolution")
	}
}

func all(vals []string, want string) bool {
	for _, v := range vals {
		if v != want {
			return false
		}
	}
	return true
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, e os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if e.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
	if err != nil {
		t.Fatalf("copyTree %s -> %s: %v", src, dst, err)
	}
}

func TestRoutingIsStable(t *testing.T) {
	r, _ := mustOpen(t, testConfig(t, t.TempDir(), 8))
	defer r.Close()
	hits := make([]int, 8)
	for k := uint64(0); k < 4096; k++ {
		s := r.ShardFor(k)
		if s2 := r.ShardFor(k); s2 != s {
			t.Fatalf("ShardFor(%d) unstable: %d then %d", k, s, s2)
		}
		hits[s]++
	}
	for i, h := range hits {
		// 4096 keys over 8 shards: expect ~512 per shard; a shard with
		// under a quarter of its share means the hash is badly skewed.
		if h < 128 {
			t.Fatalf("shard %d got only %d of 4096 keys", i, h)
		}
	}
}

func TestValueSizeLimit(t *testing.T) {
	r, _ := mustOpen(t, testConfig(t, t.TempDir(), 1))
	defer r.Close()
	txn := r.Begin()
	defer txn.Abort()
	if err := txn.Put(1, bytes.Repeat([]byte("x"), 65)); err == nil {
		t.Fatal("Put over ValueSize succeeded")
	}
	if err := txn.Put(1, bytes.Repeat([]byte("x"), 64)); err != nil {
		t.Fatalf("Put at ValueSize: %v", err)
	}
}
