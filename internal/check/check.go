// Package check is the database consistency checker: the cross-structure
// audits a DBA runs after recovery or on a schedule, complementing the
// codeword audits (which verify bytes against codewords but know nothing
// of structure). It verifies the heap catalog against allocation bitmaps,
// hash indexes against the heap records they point to, the checkpoint
// anchor against the retained log, and the codeword audit itself.
package check

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/hashidx"
	"repro/internal/heap"
	"repro/internal/wal"
)

// Problem is one consistency violation.
type Problem struct {
	// Area is "codeword", "heap", "index", "checkpoint" or "att".
	Area string
	// Desc describes the violation.
	Desc string
}

func (p Problem) String() string { return p.Area + ": " + p.Desc }

// Run checks db and returns every problem found (empty means consistent).
// The database should be quiescent; concurrent transactions may cause
// spurious findings.
func Run(db *core.DB) ([]Problem, error) {
	var out []Problem
	add := func(area, format string, args ...any) {
		out = append(out, Problem{Area: area, Desc: fmt.Sprintf(format, args...)})
	}

	// Quiescence.
	if n := db.ATT().Len(); n != 0 {
		add("att", "%d transactions active; results may be unreliable", n)
	}

	// Codewords.
	if bad := db.Scheme().Audit(); len(bad) != 0 {
		for _, m := range bad {
			add("codeword", "region mismatch: %v", m)
		}
	}

	// Heap structure.
	hcat, err := heap.Open(db)
	if err != nil {
		return nil, err
	}
	allocated := make(map[wal.ObjectKey]bool)
	for _, name := range hcat.Tables() {
		tb, err := hcat.Table(name)
		if err != nil {
			return nil, err
		}
		count := 0
		for slot := uint32(0); slot < uint32(tb.Cap); slot++ {
			if !tb.Allocated(slot) {
				continue
			}
			count++
			rid := heap.RID{Table: tb.ID, Slot: slot}
			allocated[rid.Key()] = true
			addr := tb.RecordAddr(slot)
			if err := db.Arena().CheckRange(addr, tb.RecSize); err != nil {
				add("heap", "table %q slot %d: record out of arena: %v", name, slot, err)
			}
		}
		if got := tb.Count(); got != count {
			add("heap", "table %q: Count()=%d but scan found %d", name, got, count)
		}
	}

	// Index structure.
	icat, err := hashidx.Open(db)
	if err != nil {
		return nil, err
	}
	for _, idx := range icat.Indexes() {
		seenKeys := make(map[uint64]bool)
		entries, err := idx.Entries()
		if err != nil {
			add("index", "index %q: %v", idx.Name, err)
			continue
		}
		for _, e := range entries {
			if seenKeys[e.Key] {
				add("index", "index %q: duplicate key %d", idx.Name, e.Key)
			}
			seenKeys[e.Key] = true
			if _, err := hcat.TableByID(e.RID.Table); err == nil {
				if !allocated[e.RID.Key()] {
					add("index", "index %q: key %d points at unallocated record %v", idx.Name, e.Key, e.RID)
				}
			}
		}
		if idx.Count() != len(entries) {
			add("index", "index %q: Count()=%d but scan found %d", idx.Name, idx.Count(), len(entries))
		}
	}

	// Checkpoint anchor vs retained log.
	if anchor, ok := db.Checkpoints().Anchor(); ok {
		base, err := wal.LogBase(db.Config().Dir)
		if err != nil {
			return nil, err
		}
		if anchor.CKEnd < base {
			add("checkpoint", "anchor CK_end %d precedes the retained log base %d", anchor.CKEnd, base)
		}
		if anchor.CKEnd > db.Log().End() {
			add("checkpoint", "anchor CK_end %d beyond log end %d", anchor.CKEnd, db.Log().End())
		}
		if _, err := ckpt.Load(db.Config().Dir); err != nil {
			add("checkpoint", "current image unloadable: %v", err)
		}
	}
	return out, nil
}
