// Package check is the database consistency checker: the cross-structure
// audits a DBA runs after recovery or on a schedule, complementing the
// codeword audits (which verify bytes against codewords but know nothing
// of structure). It verifies the heap catalog against allocation bitmaps,
// hash indexes against the heap records they point to, the checkpoint
// anchor against the retained log, the log streams' watermark and
// poison state plus the density of the merged stamped-GSN sequence, and
// the codeword audit itself.
package check

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/hashidx"
	"repro/internal/heap"
	"repro/internal/region"
	"repro/internal/wal"
)

// Severity grades a Problem for exit-status and alerting decisions.
type Severity int

const (
	// SevWarning marks advisory findings: the check ran under conditions
	// that weaken its guarantees (active transactions) but no structural
	// invariant is known broken. dbcheck exits 0 on warnings alone.
	SevWarning Severity = iota
	// SevError marks a violated invariant: corruption or inconsistency a
	// DBA must act on. dbcheck exits 1.
	SevError
)

func (s Severity) String() string {
	if s == SevWarning {
		return "warning"
	}
	return "error"
}

// Stable machine-readable problem codes. Tooling keys on these; the
// human-readable Desc text may be reworded freely. Codes are grouped by
// area (CW00x att, CW01x codeword, CW02x heap, CW03x index, CW04x
// checkpoint, CW05x log, CW06x ecc) and are never renumbered or reused.
//
// The CW05x codes are the runtime counterparts of dbvet's parallel-log
// contracts: CW050 audits what the determinism pass assumes (a dense
// stamped-GSN order for the merged replay), CW051 what the lockfield
// pass guards (watermarks that only move under their tail latch move
// monotonically), CW052 the poison transition the errflow pass forces
// failed syncs through.
const (
	CodeActiveTxns       = "CW001" // transactions active while checking
	CodeCodewordMismatch = "CW010" // region codeword does not match data
	CodeHeapRecordRange  = "CW020" // allocated record outside the arena
	CodeHeapCount        = "CW021" // table count disagrees with bitmap scan
	CodeIndexUnreadable  = "CW030" // index bucket chain unreadable
	CodeIndexDupKey      = "CW031" // duplicate key in a unique index
	CodeIndexDangling    = "CW032" // entry points at unallocated record
	CodeIndexCount       = "CW033" // index count disagrees with entry scan
	CodeCkptAnchorBase   = "CW040" // anchor precedes retained log base
	CodeCkptAnchorEnd    = "CW041" // anchor beyond log end
	CodeCkptImage        = "CW042" // checkpoint image unloadable
	CodeLogGSNGap        = "CW050" // hole in the merged stamped-GSN sequence
	CodeLogWatermark     = "CW051" // stream watermark inversion (durable > stamped or stable > end)
	CodeLogPoisoned      = "CW052" // log stream fail-stopped (poisoned)
	CodeECCRepairable    = "CW060" // single-word damage located; repairable in place (run with heal)
	CodeECCRepaired      = "CW061" // damage was repaired in place during this check
	CodeECCUnrepairable  = "CW062" // damage past the correction radius; escalate to recovery
	CodeECCParityStale   = "CW063" // locator planes stale over intact data (rebuilt when healing)
)

// Problem is one consistency finding.
type Problem struct {
	// Code is the stable machine-readable identifier (CW0xx).
	Code string
	// Severity grades the finding; see the Sev constants.
	Severity Severity
	// Area is "codeword", "heap", "index", "checkpoint", "log" or "att".
	Area string
	// Desc describes the violation.
	Desc string
}

func (p Problem) String() string {
	return p.Code + " " + p.Severity.String() + " " + p.Area + ": " + p.Desc
}

// sweepECC diagnoses every region through the scheme's correction tier
// (no-op for schemes without one). Without opts.Heal it only reports;
// with it, repairable damage is fixed in place and reported as warnings.
func sweepECC(db *core.DB, opts Options, add func(code string, sev Severity, area, format string, args ...any)) {
	tb, ok := db.Scheme().(interface{ Table() *region.Table })
	if !ok || !tb.Table().ECCEnabled() {
		return
	}
	for r := 0; r < tb.Table().NumRegions(); r++ {
		res := db.Scheme().Diagnose(r)
		if res.Verdict == region.VerdictClean || res.Verdict == region.VerdictUnsupported {
			continue
		}
		if opts.Heal {
			res = db.Scheme().Heal(r)
		}
		switch res.Verdict {
		case region.VerdictRepairable:
			add(CodeECCRepairable, SevError, "ecc", "%v (repairable in place: re-run with heal)", res)
		case region.VerdictRepaired:
			add(CodeECCRepaired, SevWarning, "ecc", "%v (repaired in place)", res)
		case region.VerdictParityStale:
			if opts.Heal {
				add(CodeECCParityStale, SevWarning, "ecc", "%v (planes rebuilt from intact data)", res)
			} else {
				add(CodeECCParityStale, SevWarning, "ecc", "%v (data intact; planes rebuilt when healing)", res)
			}
		case region.VerdictUnrepairable:
			add(CodeECCUnrepairable, SevError, "ecc", "%v (past the correction radius: escalate to delete-transaction recovery)", res)
		case region.VerdictClean:
			// A concurrent repair (background audit) beat the sweep here.
		}
	}
}

// Options parameterizes a check run.
type Options struct {
	// Heal repairs what the ECC sweep finds repairable: located
	// single-word damage is reconstructed in place and stale locator
	// planes are rebuilt, each reported as a warning (CW061/CW063)
	// instead of an error. Unrepairable damage still reports CW062.
	Heal bool
}

// Run checks db and returns every problem found (empty means consistent).
// The database should be quiescent; concurrent transactions may cause
// spurious findings.
func Run(db *core.DB) ([]Problem, error) { return RunOpts(db, Options{}) }

// RunOpts checks db under opts.
func RunOpts(db *core.DB, opts Options) ([]Problem, error) {
	var out []Problem
	add := func(code string, sev Severity, area, format string, args ...any) {
		out = append(out, Problem{Code: code, Severity: sev, Area: area, Desc: fmt.Sprintf(format, args...)})
	}

	// Quiescence.
	if n := db.Internals().ATT.Len(); n != 0 {
		add(CodeActiveTxns, SevWarning, "att", "%d transactions active; results may be unreliable", n)
	}

	// ECC diagnosis sweep, ahead of the codeword audit so that with
	// opts.Heal a repaired region audits clean below (leaving only its
	// CW061 trace). Plane-only damage is invisible to the codeword audit
	// — this sweep is the only checker that finds it.
	sweepECC(db, opts, add)

	// Codewords.
	if bad := db.Scheme().Audit(); len(bad) != 0 {
		for _, m := range bad {
			add(CodeCodewordMismatch, SevError, "codeword", "region mismatch: %v", m)
		}
	}

	// Heap structure.
	hcat, err := heap.Open(db)
	if err != nil {
		return nil, err
	}
	allocated := make(map[wal.ObjectKey]bool)
	for _, name := range hcat.Tables() {
		tb, err := hcat.Table(name)
		if err != nil {
			return nil, err
		}
		count := 0
		for slot := uint32(0); slot < uint32(tb.Cap); slot++ {
			if !tb.Allocated(slot) {
				continue
			}
			count++
			rid := heap.RID{Table: tb.ID, Slot: slot}
			allocated[rid.Key()] = true
			addr := tb.RecordAddr(slot)
			if err := db.Internals().Arena.CheckRange(addr, tb.RecSize); err != nil {
				add(CodeHeapRecordRange, SevError, "heap", "table %q slot %d: record out of arena: %v", name, slot, err)
			}
		}
		if got := tb.Count(); got != count {
			add(CodeHeapCount, SevError, "heap", "table %q: Count()=%d but scan found %d", name, got, count)
		}
	}

	// Index structure.
	icat, err := hashidx.Open(db)
	if err != nil {
		return nil, err
	}
	for _, idx := range icat.Indexes() {
		seenKeys := make(map[uint64]bool)
		entries, err := idx.Entries()
		if err != nil {
			add(CodeIndexUnreadable, SevError, "index", "index %q: %v", idx.Name, err)
			continue
		}
		for _, e := range entries {
			if seenKeys[e.Key] {
				add(CodeIndexDupKey, SevError, "index", "index %q: duplicate key %d", idx.Name, e.Key)
			}
			seenKeys[e.Key] = true
			if _, err := hcat.TableByID(e.RID.Table); err == nil {
				if !allocated[e.RID.Key()] {
					add(CodeIndexDangling, SevError, "index", "index %q: key %d points at unallocated record %v", idx.Name, e.Key, e.RID)
				}
			}
		}
		if idx.Count() != len(entries) {
			add(CodeIndexCount, SevError, "index", "index %q: Count()=%d but scan found %d", idx.Name, idx.Count(), len(entries))
		}
	}

	// Log streams: watermark sanity, poison state, and the density of
	// the stamped-GSN sequence across the merged streams.
	log := db.Internals().Log
	for _, st := range log.StreamStats() {
		stamped, durable := log.Stream(st.Stream).GSNWatermarks()
		if durable > stamped {
			add(CodeLogWatermark, SevError, "log", "stream %d: durable GSN %d above stamped GSN %d", st.Stream, durable, stamped)
		}
		if st.StableEnd > st.End {
			add(CodeLogWatermark, SevError, "log", "stream %d: stable end %d beyond tail end %d", st.Stream, st.StableEnd, st.End)
		}
		if st.Poisoned {
			add(CodeLogPoisoned, SevError, "log", "stream %d is poisoned (fail-stopped): %v", st.Stream, log.Stream(st.Stream).Poisoned())
		}
	}
	if recs, err := wal.ScanStreamsFS(db.FS(), db.Config().Dir, nil); err == nil {
		for _, g := range wal.FindGSNGaps(recs) {
			add(CodeLogGSNGap, SevError, "log", "stamped-GSN hole after %d: next is %d on stream %d (a record below an acknowledged commit is missing)", g.After, g.Next, g.Stream)
		}
	} else {
		add(CodeLogGSNGap, SevWarning, "log", "stream scan for GSN density failed: %v", err)
	}

	// Checkpoint anchor vs retained log.
	if anchor, ok := db.Internals().Checkpoints.Anchor(); ok {
		base, err := wal.LogBaseFS(db.FS(), db.Config().Dir)
		if err != nil {
			return nil, err
		}
		if anchor.CKEnd < base {
			add(CodeCkptAnchorBase, SevError, "checkpoint", "anchor CK_end %d precedes the retained log base %d", anchor.CKEnd, base)
		}
		if anchor.CKEnd > db.Internals().Log.End() {
			add(CodeCkptAnchorEnd, SevError, "checkpoint", "anchor CK_end %d beyond log end %d", anchor.CKEnd, db.Internals().Log.End())
		}
		if _, err := ckpt.LoadFS(db.FS(), db.Config().Dir); err != nil {
			add(CodeCkptImage, SevError, "checkpoint", "current image unloadable: %v", err)
		}
	}
	return out, nil
}
