package check

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hashidx"
	"repro/internal/heap"
	"repro/internal/protect"
)

func setup(t *testing.T) (*core.DB, *heap.Table, *hashidx.Index) {
	t.Helper()
	db, err := core.Open(core.Config{
		Dir:       t.TempDir(),
		ArenaSize: 1 << 19,
		Protect:   protect.Config{Kind: protect.KindDataCW, RegionSize: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	hcat, _ := heap.Open(db)
	tb, err := hcat.CreateTable("t", 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	icat, _ := hashidx.Open(db)
	ix, err := icat.CreateIndex("i", 64)
	if err != nil {
		t.Fatal(err)
	}
	txn, _ := db.Begin()
	for k := uint64(0); k < 10; k++ {
		rid, err := tb.Insert(txn, make([]byte, 64))
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Insert(txn, k, rid); err != nil {
			t.Fatal(err)
		}
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	return db, tb, ix
}

func problemAreas(ps []Problem) map[string]int {
	m := map[string]int{}
	for _, p := range ps {
		m[p.Area]++
		if p.String() == "" {
			panic("empty problem string")
		}
		if p.Code == "" {
			panic("problem without a stable code: " + p.String())
		}
	}
	return m
}

func problemCodes(ps []Problem) map[string]int {
	m := map[string]int{}
	for _, p := range ps {
		m[p.Code]++
	}
	return m
}

func TestCleanDatabasePasses(t *testing.T) {
	db, _, _ := setup(t)
	problems, err := Run(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("clean database reported: %v", problems)
	}
}

func TestDetectsCodewordMismatch(t *testing.T) {
	db, tb, _ := setup(t)
	inj := fault.New(db.Internals().Arena, db.Scheme().Protector(), 1)
	if _, err := inj.WildWrite(tb.RecordAddr(3)+5, []byte{0xEF}); err != nil {
		t.Fatal(err)
	}
	problems, err := Run(db)
	if err != nil {
		t.Fatal(err)
	}
	if problemAreas(problems)["codeword"] == 0 {
		t.Fatalf("codeword corruption missed: %v", problems)
	}
	if problemCodes(problems)[CodeCodewordMismatch] == 0 {
		t.Fatalf("mismatch not coded %s: %v", CodeCodewordMismatch, problems)
	}
	for _, p := range problems {
		if p.Code == CodeCodewordMismatch && p.Severity != SevError {
			t.Fatalf("codeword mismatch should be error severity: %v", p)
		}
	}
}

func TestDetectsDanglingIndexEntry(t *testing.T) {
	db, tb, ix := setup(t)
	// Corrupt an index entry's RID to point at an unallocated slot —
	// through a wild write so codewords flag it too.
	txn, _ := db.Begin()
	addr, err := ix.EntryAddr(txn, 4)
	if err != nil {
		t.Fatal(err)
	}
	txn.Commit()
	inj := fault.New(db.Internals().Arena, db.Scheme().Protector(), 2)
	if _, err := inj.WildWrite(addr+16, []byte{60}); err != nil { // slot 60: unallocated
		t.Fatal(err)
	}
	_ = tb
	problems, err := Run(db)
	if err != nil {
		t.Fatal(err)
	}
	areas := problemAreas(problems)
	if areas["index"] == 0 {
		t.Fatalf("dangling index entry missed: %v", problems)
	}
	if areas["codeword"] == 0 {
		t.Fatalf("wild write missed by codeword audit: %v", problems)
	}
}

func TestReportsActiveTransactions(t *testing.T) {
	db, _, _ := setup(t)
	txn, _ := db.Begin()
	problems, err := Run(db)
	if err != nil {
		t.Fatal(err)
	}
	if problemAreas(problems)["att"] == 0 {
		t.Fatalf("active transaction not reported: %v", problems)
	}
	// Active transactions are advisory: warning severity, so dbcheck run
	// against a live database still exits 0.
	for _, p := range problems {
		if p.Area == "att" && (p.Severity != SevWarning || p.Code != CodeActiveTxns) {
			t.Fatalf("att finding should be %s at warning severity: %v", CodeActiveTxns, p)
		}
	}
	txn.Commit()
}

func TestDetectsCorruptIndexState(t *testing.T) {
	db, _, ix := setup(t)
	txn, _ := db.Begin()
	addr, err := ix.EntryAddr(txn, 2)
	if err != nil {
		t.Fatal(err)
	}
	txn.Commit()
	inj := fault.New(db.Internals().Arena, db.Scheme().Protector(), 3)
	// Smash the state word to a nonsense value.
	if _, err := inj.WildWrite(addr, []byte{0x77}); err != nil {
		t.Fatal(err)
	}
	problems, err := Run(db)
	if err != nil {
		t.Fatal(err)
	}
	if problemAreas(problems)["index"] == 0 {
		t.Fatalf("corrupt index state missed: %v", problems)
	}
}
