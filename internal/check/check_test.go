package check

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hashidx"
	"repro/internal/heap"
	"repro/internal/protect"
	"repro/internal/region"
)

func setup(t *testing.T) (*core.DB, *heap.Table, *hashidx.Index) {
	t.Helper()
	db, err := core.Open(core.Config{
		Dir:       t.TempDir(),
		ArenaSize: 1 << 19,
		Protect:   protect.Config{Kind: protect.KindDataCW, RegionSize: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	hcat, _ := heap.Open(db)
	tb, err := hcat.CreateTable("t", 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	icat, _ := hashidx.Open(db)
	ix, err := icat.CreateIndex("i", 64)
	if err != nil {
		t.Fatal(err)
	}
	txn, _ := db.Begin()
	for k := uint64(0); k < 10; k++ {
		rid, err := tb.Insert(txn, make([]byte, 64))
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Insert(txn, k, rid); err != nil {
			t.Fatal(err)
		}
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	return db, tb, ix
}

func problemAreas(ps []Problem) map[string]int {
	m := map[string]int{}
	for _, p := range ps {
		m[p.Area]++
		if p.String() == "" {
			panic("empty problem string")
		}
		if p.Code == "" {
			panic("problem without a stable code: " + p.String())
		}
	}
	return m
}

func problemCodes(ps []Problem) map[string]int {
	m := map[string]int{}
	for _, p := range ps {
		m[p.Code]++
	}
	return m
}

func TestCleanDatabasePasses(t *testing.T) {
	db, _, _ := setup(t)
	problems, err := Run(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("clean database reported: %v", problems)
	}
}

func TestDetectsCodewordMismatch(t *testing.T) {
	db, tb, _ := setup(t)
	inj := fault.New(db.Internals().Arena, db.Scheme().Protector(), 1)
	if _, err := inj.WildWrite(tb.RecordAddr(3)+5, []byte{0xEF}); err != nil {
		t.Fatal(err)
	}
	problems, err := Run(db)
	if err != nil {
		t.Fatal(err)
	}
	if problemAreas(problems)["codeword"] == 0 {
		t.Fatalf("codeword corruption missed: %v", problems)
	}
	if problemCodes(problems)[CodeCodewordMismatch] == 0 {
		t.Fatalf("mismatch not coded %s: %v", CodeCodewordMismatch, problems)
	}
	for _, p := range problems {
		if p.Code == CodeCodewordMismatch && p.Severity != SevError {
			t.Fatalf("codeword mismatch should be error severity: %v", p)
		}
	}
}

func TestDetectsDanglingIndexEntry(t *testing.T) {
	db, tb, ix := setup(t)
	// Corrupt an index entry's RID to point at an unallocated slot —
	// through a wild write so codewords flag it too.
	txn, _ := db.Begin()
	addr, err := ix.EntryAddr(txn, 4)
	if err != nil {
		t.Fatal(err)
	}
	txn.Commit()
	inj := fault.New(db.Internals().Arena, db.Scheme().Protector(), 2)
	if _, err := inj.WildWrite(addr+16, []byte{60}); err != nil { // slot 60: unallocated
		t.Fatal(err)
	}
	_ = tb
	problems, err := Run(db)
	if err != nil {
		t.Fatal(err)
	}
	areas := problemAreas(problems)
	if areas["index"] == 0 {
		t.Fatalf("dangling index entry missed: %v", problems)
	}
	if areas["codeword"] == 0 {
		t.Fatalf("wild write missed by codeword audit: %v", problems)
	}
}

func TestReportsActiveTransactions(t *testing.T) {
	db, _, _ := setup(t)
	txn, _ := db.Begin()
	problems, err := Run(db)
	if err != nil {
		t.Fatal(err)
	}
	if problemAreas(problems)["att"] == 0 {
		t.Fatalf("active transaction not reported: %v", problems)
	}
	// Active transactions are advisory: warning severity, so dbcheck run
	// against a live database still exits 0.
	for _, p := range problems {
		if p.Area == "att" && (p.Severity != SevWarning || p.Code != CodeActiveTxns) {
			t.Fatalf("att finding should be %s at warning severity: %v", CodeActiveTxns, p)
		}
	}
	txn.Commit()
}

func TestDetectsCorruptIndexState(t *testing.T) {
	db, _, ix := setup(t)
	txn, _ := db.Begin()
	addr, err := ix.EntryAddr(txn, 2)
	if err != nil {
		t.Fatal(err)
	}
	txn.Commit()
	inj := fault.New(db.Internals().Arena, db.Scheme().Protector(), 3)
	// Smash the state word to a nonsense value.
	if _, err := inj.WildWrite(addr, []byte{0x77}); err != nil {
		t.Fatal(err)
	}
	problems, err := Run(db)
	if err != nil {
		t.Fatal(err)
	}
	if problemAreas(problems)["index"] == 0 {
		t.Fatalf("corrupt index state missed: %v", problems)
	}
}

// TestECCSweepReportsRepairable: without Heal, located single-word
// damage must surface as a CW060 error (alongside the CW010 mismatch)
// and the image must not be modified.
func TestECCSweepReportsRepairable(t *testing.T) {
	db, tb, _ := setup(t)
	inj := fault.New(db.Internals().Arena, db.Scheme().Protector(), 7)
	if _, err := inj.WordSmash(tb.RecordAddr(5)+16, 0xFEED); err != nil {
		t.Fatal(err)
	}
	problems, err := Run(db)
	if err != nil {
		t.Fatal(err)
	}
	codes := problemCodes(problems)
	if codes[CodeECCRepairable] != 1 {
		t.Fatalf("want one %s, got: %v", CodeECCRepairable, problems)
	}
	if codes[CodeCodewordMismatch] == 0 {
		t.Fatalf("CW010 should still fire without heal: %v", problems)
	}
	for _, p := range problems {
		if p.Code == CodeECCRepairable && (p.Severity != SevError || p.Area != "ecc") {
			t.Fatalf("CW060 should be an ecc-area error: %v", p)
		}
	}
}

// TestECCSweepHeals: with Heal, the same damage is repaired in place and
// reported as a CW061 warning; the codeword audit then finds nothing,
// and a second run is clean.
func TestECCSweepHeals(t *testing.T) {
	db, tb, _ := setup(t)
	inj := fault.New(db.Internals().Arena, db.Scheme().Protector(), 8)
	if _, err := inj.WordSmash(tb.RecordAddr(5)+16, 0xFEED); err != nil {
		t.Fatal(err)
	}
	problems, err := RunOpts(db, Options{Heal: true})
	if err != nil {
		t.Fatal(err)
	}
	codes := problemCodes(problems)
	if codes[CodeECCRepaired] != 1 || codes[CodeCodewordMismatch] != 0 {
		t.Fatalf("want one %s and no %s: %v", CodeECCRepaired, CodeCodewordMismatch, problems)
	}
	for _, p := range problems {
		if p.Code == CodeECCRepaired && p.Severity != SevWarning {
			t.Fatalf("a repaired finding is advisory (warning): %v", p)
		}
	}
	again, err := RunOpts(db, Options{Heal: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatalf("second healing run should be clean: %v", again)
	}
}

// TestECCSweepEscalatesUnrepairable: double-word damage reports CW062 as
// an error with or without Heal, and healing must not modify the bytes.
func TestECCSweepEscalatesUnrepairable(t *testing.T) {
	db, tb, _ := setup(t)
	inj := fault.New(db.Internals().Arena, db.Scheme().Protector(), 9)
	addr := tb.RecordAddr(5) + 16
	if _, err := inj.DoubleWordSmash(addr, addr+8, 0xAB, 0xCD); err != nil {
		t.Fatal(err)
	}
	problems, err := RunOpts(db, Options{Heal: true})
	if err != nil {
		t.Fatal(err)
	}
	codes := problemCodes(problems)
	if codes[CodeECCUnrepairable] != 1 {
		t.Fatalf("want one %s: %v", CodeECCUnrepairable, problems)
	}
	if codes[CodeECCRepaired] != 0 {
		t.Fatalf("unrepairable damage must not be 'repaired': %v", problems)
	}
}

// TestECCSweepFindsParityDamage: stale locator planes are invisible to
// the codeword audit; only the ECC sweep reports them (CW063, warning),
// and with Heal the planes are rebuilt so the next run is clean.
func TestECCSweepFindsParityDamage(t *testing.T) {
	db, tb, _ := setup(t)
	type tabler interface{ Table() *region.Table }
	tab := db.Scheme().(tabler).Table()
	r := tab.RegionOf(tb.RecordAddr(5))
	if err := tab.CorruptPlane(r, 1, 0xF0F0); err != nil {
		t.Fatal(err)
	}
	problems, err := Run(db)
	if err != nil {
		t.Fatal(err)
	}
	codes := problemCodes(problems)
	if codes[CodeECCParityStale] != 1 || codes[CodeCodewordMismatch] != 0 {
		t.Fatalf("want one %s and no %s: %v", CodeECCParityStale, CodeCodewordMismatch, problems)
	}
	healed, err := RunOpts(db, Options{Heal: true})
	if err != nil {
		t.Fatal(err)
	}
	if problemCodes(healed)[CodeECCParityStale] != 1 {
		t.Fatalf("healing run should report the rebuild: %v", healed)
	}
	again, err := Run(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatalf("after rebuild the check should be clean: %v", again)
	}
}
