package core

import (
	"errors"
	"sync"
	"time"
)

// Auditor runs the paper's asynchronous audits (§3.2): a background
// process that periodically checks every protection region against its
// codeword. A clean audit advances Audit_SN, narrowing how much history
// the delete-transaction model must conservatively suspect; a dirty audit
// invokes the OnCorruption callback (the paper's reaction is to note the
// regions and crash the database so corruption recovery runs at restart).
type Auditor struct {
	db       *DB
	interval time.Duration
	// SliceBytes, when nonzero, audits the database incrementally: each
	// tick checks the next SliceBytes of the image, and Audit_SN advances
	// when a full pass completes clean. Zero sweeps the whole database
	// every tick.
	SliceBytes int
	// OnCorruption is invoked (once) when an audit fails. If nil, the
	// auditor just stops; the error remains observable via Err.
	OnCorruption func(*CorruptionError)

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	err     *CorruptionError
	sweeps  int
	stopped bool
}

// NewAuditor creates an auditor for db sweeping at the given interval.
func NewAuditor(db *DB, interval time.Duration) *Auditor {
	return &Auditor{db: db, interval: interval}
}

// Start launches the background sweep. It may be started once.
func (a *Auditor) Start() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stop != nil {
		return
	}
	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	go a.run(a.stop, a.done)
}

func (a *Auditor) run(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(a.interval)
	defer ticker.Stop()
	var pass *AuditPass
	defer func() {
		if pass != nil {
			pass.Abort()
		}
	}()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			var err error
			if pass == nil {
				pass, err = a.db.BeginAuditPass()
				if err != nil {
					return
				}
			}
			stepDone, err := pass.Step(a.SliceBytes)
			if err != nil {
				return
			}
			if !stepDone {
				continue
			}
			err = pass.Finish()
			pass = nil
			a.mu.Lock()
			a.sweeps++
			a.mu.Unlock()
			var ce *CorruptionError
			switch {
			case err == nil:
			case errors.Is(err, ErrClosed):
				return
			case errors.As(err, &ce):
				a.mu.Lock()
				a.err = ce
				cb := a.OnCorruption
				a.mu.Unlock()
				if cb != nil {
					cb(ce)
				}
				return
			default:
				return
			}
		}
	}
}

// Stop halts the auditor and waits for the sweep goroutine to exit.
func (a *Auditor) Stop() {
	a.mu.Lock()
	if a.stop == nil || a.stopped {
		a.mu.Unlock()
		return
	}
	a.stopped = true
	close(a.stop)
	done := a.done
	a.mu.Unlock()
	<-done
}

// Sweeps reports completed audit sweeps.
func (a *Auditor) Sweeps() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sweeps
}

// Err returns the corruption error that stopped the auditor, if any.
func (a *Auditor) Err() *CorruptionError {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}
