package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/lockmgr"
	"repro/internal/mem"
	"repro/internal/protect"
	"repro/internal/wal"
)

// Txn is a transaction. A transaction's work is structured as lower-level
// operations (BeginOp / CommitOp) containing physical updates
// (BeginUpdate / Update.End) and reads (Read), per the multi-level model
// of §2.1. Transactions are not safe for concurrent use by multiple
// goroutines; different transactions may run concurrently.
type Txn struct {
	db    *DB
	entry *wal.TxnEntry
	done  bool
	// ctx is the transaction's context (BeginCtx): it bounds lock waits
	// and the commit-time group-commit wait. Begin installs
	// context.Background(), so the zero-cost path never checks a channel.
	ctx context.Context
	// recoveryMode marks transactions adopted by restart recovery: lock
	// acquisition is skipped (recovery runs single-threaded, and the
	// original locks died with the crash).
	recoveryMode bool
	// prepared marks a transaction that has entered the prepared state of
	// two-phase commit: no further work is accepted, only
	// CommitPrepared/AbortPrepared.
	prepared bool
	// pendingUpdate guards against overlapping update brackets.
	pendingUpdate bool
	// opRedoMarks records len(entry.Redo) at each BeginOp so AbortOp can
	// discard exactly the aborted operation's pending records.
	opRedoMarks []int
}

// ErrTxnDone is returned by operations on a committed or aborted
// transaction.
var ErrTxnDone = errors.New("core: transaction already completed")

// ErrTxnPrepared is returned when work is attempted on a transaction in
// the prepared state: between Prepare and CommitPrepared/AbortPrepared a
// participant may not read, update, or unilaterally commit.
var ErrTxnPrepared = errors.New("core: transaction is prepared (awaiting 2PC decision)")

// ErrCommitUnresolved reports that the transaction's context ended while
// its commit record was waiting in the group-commit queue. The record is
// in the log tail and may still become durable through a later force, so
// the outcome is unknown to this caller: the transaction is neither
// reusable nor abortable, and only the log (via restart recovery, or a
// later observer) resolves whether it committed.
var ErrCommitUnresolved = errors.New("core: commit outcome unresolved (context ended during group-commit wait)")

// Begin starts a transaction.
func (db *DB) Begin() (*Txn, error) {
	return db.BeginCtx(context.Background())
}

// BeginCtx starts a transaction bound to ctx: lock waits (Txn.Lock) and
// the commit-time group-commit wait honor its cancellation and deadline.
// The context does not auto-abort the transaction — a caller whose
// context ends mid-transaction should call Abort (after a failed Lock or
// Read) and must treat ErrCommitUnresolved from Commit as an unknown
// outcome.
func (db *DB) BeginCtx(ctx context.Context) (*Txn, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: begin txn: %w", err)
	}
	if db.closed.Load() {
		return nil, ErrClosed
	}
	db.barrier.RLock()
	if db.closed.Load() { // Close drains the barrier before unmapping
		db.barrier.RUnlock()
		return nil, ErrClosed
	}
	entry := db.att.Begin()
	if err := db.log.Append(&wal.Record{Kind: wal.KindTxnBegin, Txn: entry.ID}); err != nil {
		// Poisoned log: the transaction can never commit, so don't admit it.
		db.att.Remove(entry.ID)
		db.barrier.RUnlock()
		return nil, fmt.Errorf("core: begin txn: %w", err)
	}
	db.barrier.RUnlock()
	db.mTxnsBegun.Inc()
	return &Txn{db: db, entry: entry, ctx: ctx}, nil
}

// AdoptTxn wraps an ATT entry in a Txn for recovery-driven rollback.
func (db *DB) AdoptTxn(entry *wal.TxnEntry) *Txn {
	return &Txn{db: db, entry: entry, ctx: context.Background(), recoveryMode: true}
}

// AdoptPrepared wraps an in-doubt ATT entry (state TxnPrepared, left
// attached by recovery) in a Txn ready for CommitPrepared/AbortPrepared.
// Like all recovery adoption it skips lock acquisition — recovery is
// single-threaded per shard and the pre-crash locks died with the crash.
func (db *DB) AdoptPrepared(entry *wal.TxnEntry) (*Txn, error) {
	if entry.State != wal.TxnPrepared {
		return nil, fmt.Errorf("core: txn %d is %s, not prepared", entry.ID, entry.State)
	}
	return &Txn{db: db, entry: entry, ctx: context.Background(), recoveryMode: true, prepared: true}, nil
}

// ID reports the transaction ID.
func (t *Txn) ID() wal.TxnID { return t.entry.ID }

// DB returns the database the transaction runs against.
func (t *Txn) DB() *DB { return t.db }

// Entry exposes the ATT entry (used by recovery and tests).
func (t *Txn) Entry() *wal.TxnEntry { return t.entry }

// Lock acquires a transaction-duration lock on an object key; locks are
// released at commit or abort (strict two-phase locking at transaction
// level). During recovery locks are skipped. The wait is bounded by the
// transaction's context (BeginCtx) as well as the lock-wait timeout.
func (t *Txn) Lock(key wal.ObjectKey, mode lockmgr.Mode) error {
	return t.LockCtx(t.ctx, key, mode)
}

// LockCtx is Lock with an explicit context overriding the transaction's
// own for this one wait: cancellation or deadline expiry while queued
// behind a conflicting holder fails the acquisition (the lock is not
// taken, the transaction remains usable and should normally be aborted).
func (t *Txn) LockCtx(ctx context.Context, key wal.ObjectKey, mode lockmgr.Mode) error {
	if t.done {
		return ErrTxnDone
	}
	if t.prepared {
		return ErrTxnPrepared
	}
	if t.recoveryMode {
		return nil
	}
	if err := t.db.locks.LockCtx(ctx, t.entry.ID, key, mode); err != nil {
		// The lockmgr sentinel stays reachable: errors.Is(err,
		// core.ErrLockTimeout) holds for a timed-out wait, and the
		// context's own error for a canceled one.
		return fmt.Errorf("core: txn %d: lock key %d (%s): %w", t.entry.ID, key, mode, err)
	}
	return nil
}

// BeginOp opens a lower-level operation on key at the given level. The
// operation's begin is logged — corruption recovery checks begin-operation
// records against the undo logs of corrupted transactions (§4.3).
func (t *Txn) BeginOp(level uint8, key wal.ObjectKey) error {
	if t.done {
		return ErrTxnDone
	}
	if t.prepared {
		return ErrTxnPrepared
	}
	t.db.barrier.RLock()
	defer t.db.barrier.RUnlock()
	t.opRedoMarks = append(t.opRedoMarks, len(t.entry.Redo))
	t.entry.PushOpBegin(level, key)
	t.entry.Redo = append(t.entry.Redo, &wal.Record{
		Kind: wal.KindOpBegin, Txn: t.entry.ID, Level: level, Key: key,
	})
	t.db.mOps.Inc()
	return nil
}

// CommitOp commits the current lower-level operation: the operation
// commit record (with its logical undo description) is appended to the
// local redo log, the local redo log is moved to the system log tail, and
// the operation's physical undo records are replaced by the logical undo
// — all before the caller releases the operation's locks, as required by
// multi-level recovery (§2.1).
func (t *Txn) CommitOp(level uint8, key wal.ObjectKey, undo wal.LogicalUndo) error {
	return t.commitOp(level, key, undo, false)
}

// CommitCompensationOp commits an operation executed by an undo handler
// to reverse an earlier committed operation. The compensated logical undo
// entry is popped from the undo log; the op-commit record is flagged so
// recovery reconstructs the same pop.
func (t *Txn) CommitCompensationOp(level uint8, key wal.ObjectKey) error {
	return t.commitOp(level, key, wal.LogicalUndo{}, true)
}

func (t *Txn) commitOp(level uint8, key wal.ObjectKey, undo wal.LogicalUndo, compensation bool) error {
	if t.done {
		return ErrTxnDone
	}
	if !t.entry.InOperation() {
		return fmt.Errorf("core: txn %d: CommitOp without BeginOp", t.entry.ID)
	}
	t.db.barrier.RLock()
	defer t.db.barrier.RUnlock()
	rec := &wal.Record{
		Kind: wal.KindOpCommit, Txn: t.entry.ID, Level: level, Key: key,
		Undo: undo, Compensation: compensation,
	}
	t.entry.Redo = append(t.entry.Redo, rec)
	if err := t.db.log.Append(t.entry.Redo...); err != nil {
		// Poisoned log: the records stayed local (nothing was appended), so
		// the operation remains open and the caller can still Abort — the
		// undo log is intact and rollback is purely in-memory.
		return fmt.Errorf("core: txn %d: commit op: %w", t.entry.ID, err)
	}
	t.entry.Redo = t.entry.Redo[:0]
	if n := len(t.opRedoMarks); n > 0 {
		t.opRedoMarks = t.opRedoMarks[:n-1]
	}
	if err := t.db.schemeOpEnd(); err != nil {
		return err
	}
	if compensation {
		return t.entry.CommitCompensationOp()
	}
	// OrderLSN: on multi-stream log sets the GSN, not the stream-local
	// LSN, totally orders operation commits across transactions — undo
	// ordering in recovery and rollback depends on it.
	return t.entry.CommitOp(level, key, undo, rec.OrderLSN())
}

// AbortOp rolls back the current (uncommitted) lower-level operation in
// place: its physical updates are undone and its pending redo records are
// discarded, leaving the transaction able to continue.
func (t *Txn) AbortOp() error {
	if t.done {
		return ErrTxnDone
	}
	if !t.entry.InOperation() {
		return fmt.Errorf("core: txn %d: AbortOp without BeginOp", t.entry.ID)
	}
	// First discard the aborted operation's pending redo records (its
	// begin record and physical records that never reached the system
	// log). This must happen before any nested compensation runs, because
	// a compensation's operation commit moves everything pending to the
	// system log and must not carry the aborted operation's records with
	// it. Records pending from before this operation's BeginOp are kept.
	if n := len(t.opRedoMarks); n > 0 {
		mark := t.opRedoMarks[n-1]
		t.opRedoMarks = t.opRedoMarks[:n-1]
		if mark < len(t.entry.Redo) {
			t.entry.Redo = t.entry.Redo[:mark]
		}
	} else {
		t.entry.Redo = t.entry.Redo[:0]
	}
	// Undo the operation's work down to (and including) its op-begin
	// marker: physical updates from their before-images, nested committed
	// operations by compensation.
	for len(t.entry.Undo) > 0 {
		before := len(t.entry.Undo)
		top := t.entry.Undo[before-1]
		switch top.Kind {
		case wal.UndoOpBegin:
			t.entry.Undo = t.entry.Undo[:before-1]
		case wal.UndoPhys:
			t.entry.Undo = t.entry.Undo[:before-1]
			if err := t.applyPhysUndo(top); err != nil {
				return err
			}
		case wal.UndoLogical:
			if err := t.execLogicalUndo(top); err != nil {
				return err
			}
			if len(t.entry.Undo) >= before {
				return fmt.Errorf("core: txn %d: logical undo did not shrink the undo log", t.entry.ID)
			}
		default:
			return fmt.Errorf("core: txn %d: unknown undo entry kind %d", t.entry.ID, top.Kind)
		}
		if top.Kind == wal.UndoOpBegin {
			break
		}
	}
	return t.db.schemeOpEnd()
}

// Read reads n bytes at addr through the prescribed interface: the active
// scheme prechecks and/or contributes a read-log record (identity and
// optional codeword, never the value — §4.2). The returned slice is a
// copy. A CorruptionError-wrapped precheck failure means the data is
// corrupt and was not returned.
func (t *Txn) Read(addr mem.Addr, n int) ([]byte, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	if t.prepared {
		return nil, ErrTxnPrepared
	}
	if t.pendingUpdate {
		// Reading through the scheme while an update bracket is open
		// would re-acquire protection latches the bracket already holds
		// (self-deadlock under Read Prechecking).
		return nil, fmt.Errorf("core: txn %d: read inside an open update bracket", t.entry.ID)
	}
	info, err := t.db.scheme.Read(addr, n)
	if err != nil {
		return nil, t.wrapReadErr(addr, n, err)
	}
	t.db.mReads.Inc()
	if info.LogRead {
		t.entry.Redo = append(t.entry.Redo, &wal.Record{
			Kind: wal.KindRead, Txn: t.entry.ID, Addr: addr, Len: n,
			HasCW: info.HasCW, CW: info.CW,
		})
		t.db.mReadRec.Inc()
	}
	out := make([]byte, n)
	copy(out, t.db.arena.Slice(addr, n))
	return out, nil
}

// ReadInto is Read without allocation: it copies into dst and returns the
// number of bytes read. Used on benchmark hot paths.
func (t *Txn) ReadInto(addr mem.Addr, dst []byte) (int, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	if t.prepared {
		return 0, ErrTxnPrepared
	}
	if t.pendingUpdate {
		return 0, fmt.Errorf("core: txn %d: read inside an open update bracket", t.entry.ID)
	}
	info, err := t.db.scheme.Read(addr, len(dst))
	if err != nil {
		return 0, t.wrapReadErr(addr, len(dst), err)
	}
	t.db.mReads.Inc()
	if info.LogRead {
		t.entry.Redo = append(t.entry.Redo, &wal.Record{
			Kind: wal.KindRead, Txn: t.entry.ID, Addr: addr, Len: len(dst),
			HasCW: info.HasCW, CW: info.CW,
		})
		t.db.mReadRec.Inc()
	}
	copy(dst, t.db.arena.Slice(addr, len(dst)))
	return len(dst), nil
}

// Commit durably commits the transaction: any remaining local records are
// moved to the system log, a commit record is appended, and the log is
// forced. Locks are then released and the ATT entry removed. The
// group-commit wait honors the transaction's context (BeginCtx): if it
// ends while the commit record is queued behind another force, Commit
// returns ErrCommitUnresolved — the record is in the tail and may still
// become durable, so the transaction is finished locally as committed
// but the caller must treat the durable outcome as unknown.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	if t.prepared {
		return ErrTxnPrepared
	}
	if t.entry.InOperation() {
		return fmt.Errorf("core: txn %d: commit with open operation", t.entry.ID)
	}
	if t.pendingUpdate {
		return fmt.Errorf("core: txn %d: commit with open update", t.entry.ID)
	}
	if err := t.ctx.Err(); err != nil {
		// The context already ended: fail before the commit record is
		// appended, leaving the transaction intact so the caller can
		// still Abort cleanly.
		return fmt.Errorf("core: txn %d: commit: %w", t.entry.ID, err)
	}
	t.db.barrier.RLock()
	recs := append(t.entry.Redo, &wal.Record{Kind: wal.KindTxnCommit, Txn: t.entry.ID})
	err := t.db.log.AppendAndFlushCtx(t.ctx, recs...)
	t.entry.Redo = nil
	t.db.barrier.RUnlock()
	if err != nil {
		if errors.Is(err, wal.ErrFlushWaitCanceled) {
			// The commit record was appended but the context ended during
			// the group-commit wait. It may still be carried durable by a
			// later force, so the transaction must not be aborted: finish
			// it locally and surface the unresolved outcome.
			t.finish(wal.TxnCommitted)
			return fmt.Errorf("core: txn %d: %w: %w", t.entry.ID, ErrCommitUnresolved, err)
		}
		return fmt.Errorf("core: txn %d: commit flush: %w", t.entry.ID, err)
	}
	t.finish(wal.TxnCommitted)
	return nil
}

// Prepare enters the transaction into the prepared state of two-phase
// commit on behalf of global transaction gid: remaining local records
// plus a prepare record are moved to the system log and the log is
// forced. From then on the transaction accepts only CommitPrepared or
// AbortPrepared — it holds its locks and its undo log until the
// coordinator's decision arrives, surviving a crash in between (recovery
// re-attaches prepared transactions as in-doubt). On error the
// transaction is NOT prepared and remains abortable: even if the prepare
// record later proves durable, a follow-up abort record — or, after a
// crash, presumed abort — supersedes it.
func (t *Txn) Prepare(gid uint64) error {
	if t.done {
		return ErrTxnDone
	}
	if t.prepared {
		return ErrTxnPrepared
	}
	if t.entry.InOperation() {
		return fmt.Errorf("core: txn %d: prepare with open operation", t.entry.ID)
	}
	if t.pendingUpdate {
		return fmt.Errorf("core: txn %d: prepare with open update", t.entry.ID)
	}
	if gid == 0 {
		return fmt.Errorf("core: txn %d: prepare requires a nonzero global transaction ID", t.entry.ID)
	}
	t.db.barrier.RLock()
	recs := append(t.entry.Redo, &wal.Record{Kind: wal.KindTxnPrepare, Txn: t.entry.ID, GID: gid})
	err := t.db.log.AppendAndFlushCtx(t.ctx, recs...)
	t.entry.Redo = nil
	t.db.barrier.RUnlock()
	if err != nil {
		return fmt.Errorf("core: txn %d: prepare: %w", t.entry.ID, err)
	}
	t.prepared = true
	t.entry.State = wal.TxnPrepared
	t.entry.GID = gid
	return nil
}

// CommitPrepared applies a coordinator commit decision to a prepared
// transaction: the commit record is appended and the log forced, then
// locks are released and the ATT entry removed. The decision is already
// durable at the coordinator, so this deliberately ignores the
// transaction's context — a decided transaction must complete.
func (t *Txn) CommitPrepared() error {
	if t.done {
		return ErrTxnDone
	}
	if !t.prepared {
		return fmt.Errorf("core: txn %d: CommitPrepared on unprepared transaction", t.entry.ID)
	}
	t.db.barrier.RLock()
	err := t.db.log.AppendAndFlush(&wal.Record{Kind: wal.KindTxnCommit, Txn: t.entry.ID})
	t.db.barrier.RUnlock()
	if err != nil {
		// Poisoned log: the commit record may not be durable, but the
		// prepare record is, and the coordinator's decision survives — the
		// next recovery resolves the transaction as committed. Do not
		// release anything here; fail-stop is in progress.
		return fmt.Errorf("core: txn %d: commit prepared: %w", t.entry.ID, err)
	}
	t.prepared = false
	t.finish(wal.TxnCommitted)
	return nil
}

// AbortPrepared applies a coordinator abort decision (or presumed abort)
// to a prepared transaction: its committed operations are compensated
// newest-first from the undo log exactly as in Abort.
func (t *Txn) AbortPrepared() error {
	if t.done {
		return ErrTxnDone
	}
	if !t.prepared {
		return fmt.Errorf("core: txn %d: AbortPrepared on unprepared transaction", t.entry.ID)
	}
	t.prepared = false
	t.entry.State = wal.TxnActive
	if err := t.Rollback(); err != nil {
		return err
	}
	t.db.barrier.RLock()
	appendErr := t.db.log.Append(&wal.Record{Kind: wal.KindTxnAbort, Txn: t.entry.ID})
	t.db.barrier.RUnlock()
	t.finish(wal.TxnAborted)
	return appendErr
}

// Prepared reports whether the transaction is in the 2PC prepared state.
func (t *Txn) Prepared() bool { return t.prepared }

// AppendDecision durably records the coordinator's commit/abort decision
// for global transaction gid in this database's log. Writing it is the
// commit point of a cross-shard transaction: once durable, every prepared
// participant must eventually apply it; if a crash intervenes before it
// is written, presumed abort rolls every participant back.
func (db *DB) AppendDecision(gid uint64, commit bool) error {
	if db.closed.Load() {
		return ErrClosed
	}
	db.barrier.RLock()
	defer db.barrier.RUnlock()
	if err := db.log.AppendAndFlush(&wal.Record{Kind: wal.KindTxnDecision, GID: gid, Decision: commit}); err != nil {
		return fmt.Errorf("core: decision for gid %d: %w", gid, err)
	}
	return nil
}

// wrapReadErr contextualizes a scheme read failure. A precheck mismatch is
// corruption: the wrapped chain matches both errors.Is(err, ErrCorruption)
// and errors.Is(err, protect.ErrPrecheckFailed).
func (t *Txn) wrapReadErr(addr mem.Addr, n int, err error) error {
	if errors.Is(err, protect.ErrPrecheckFailed) {
		return fmt.Errorf("core: txn %d: read [%d,+%d): %w: %w", t.entry.ID, addr, n, ErrCorruption, err)
	}
	return fmt.Errorf("core: txn %d: read [%d,+%d): %w", t.entry.ID, addr, n, err)
}

// Abort rolls the transaction back: physical updates of the open
// operation are undone from their before-images, committed operations are
// logically undone by compensating operations (newest first), and an
// abort record is appended. The paper's codeword-applied flag (§3.1)
// decides whether each physical restore refolds the codeword.
func (t *Txn) Abort() error {
	if t.done {
		return ErrTxnDone
	}
	if t.prepared {
		// A prepared transaction's fate belongs to its coordinator; use
		// AbortPrepared to apply an abort decision explicitly.
		return ErrTxnPrepared
	}
	if t.pendingUpdate {
		return fmt.Errorf("core: txn %d: abort with open update bracket", t.entry.ID)
	}
	if err := t.Rollback(); err != nil {
		return err
	}
	t.db.barrier.RLock()
	// A poisoned log cannot take the abort record, but the rollback above
	// already restored the in-memory state and nothing of this transaction
	// can be durable beyond the stable prefix — restart recovery rolls it
	// back again from the log. Finish locally either way.
	appendErr := t.db.log.Append(&wal.Record{Kind: wal.KindTxnAbort, Txn: t.entry.ID})
	t.db.barrier.RUnlock()
	t.finish(wal.TxnAborted)
	return appendErr
}

// Rollback undoes all of the transaction's work without completing the
// transaction (recovery calls this for every incomplete transaction and
// then finalizes separately).
func (t *Txn) Rollback() error {
	// Pending redo records belong to an uncommitted operation (or are
	// reads); they never reached the system log and are discarded.
	t.entry.Redo = nil
	t.opRedoMarks = nil
	for len(t.entry.Undo) > 0 {
		before := len(t.entry.Undo)
		top := t.entry.Undo[before-1]
		switch top.Kind {
		case wal.UndoPhys:
			t.entry.Undo = t.entry.Undo[:before-1]
			if err := t.applyPhysUndo(top); err != nil {
				return err
			}
		case wal.UndoOpBegin:
			// The operation never committed; its physical undos (above
			// the marker) have already been applied.
			t.entry.Undo = t.entry.Undo[:before-1]
		case wal.UndoLogical:
			if err := t.execLogicalUndo(top); err != nil {
				return err
			}
			if len(t.entry.Undo) >= before {
				return fmt.Errorf("core: txn %d: logical undo of op %d did not shrink the undo log",
					t.entry.ID, top.Logical.Op)
			}
		default:
			return fmt.Errorf("core: txn %d: unknown undo entry kind %d", t.entry.ID, top.Kind)
		}
	}
	return nil
}

// ExecLogicalUndoTop executes the logical undo at the top of the undo
// log; recovery's undo phase uses this to interleave logical undos across
// transactions in reverse CommitLSN order.
func (t *Txn) ExecLogicalUndoTop() error {
	n := len(t.entry.Undo)
	if n == 0 || t.entry.Undo[n-1].Kind != wal.UndoLogical {
		return fmt.Errorf("core: txn %d: top of undo log is not a logical undo", t.entry.ID)
	}
	if err := t.execLogicalUndo(t.entry.Undo[n-1]); err != nil {
		return err
	}
	if len(t.entry.Undo) >= n {
		return fmt.Errorf("core: txn %d: logical undo did not shrink the undo log", t.entry.ID)
	}
	return nil
}

func (t *Txn) execLogicalUndo(u wal.UndoRec) error {
	h, err := undoHandler(u.Logical.Op)
	if err != nil {
		return err
	}
	return h(t, u.Logical)
}

// UndoOpenOp rolls back any open (uncommitted) operation's physical
// updates; recovery's undo phase runs this for every incomplete
// transaction before logical undos start (level-by-level rollback).
func (t *Txn) UndoOpenOp() error {
	for len(t.entry.Undo) > 0 {
		top := t.entry.Undo[len(t.entry.Undo)-1]
		if top.Kind == wal.UndoLogical {
			return nil // only committed operations remain
		}
		t.entry.Undo = t.entry.Undo[:len(t.entry.Undo)-1]
		if top.Kind == wal.UndoPhys {
			if err := t.applyPhysUndo(top); err != nil {
				return err
			}
		}
	}
	return nil
}

// FinishAborted appends the abort record and releases the transaction
// after an externally driven rollback (recovery).
func (t *Txn) FinishAborted() {
	t.db.barrier.RLock()
	// Ignore a poisoned-log failure: recovery-driven rollback is already
	// reconstructing state from the stable log, and the missing abort
	// record only means the next restart repeats the (idempotent) rollback.
	//dbvet:allow errflow recovery rollback tolerates a poisoned log; the abort record is redundant with the idempotent replay
	_ = t.db.log.Append(&wal.Record{Kind: wal.KindTxnAbort, Txn: t.entry.ID})
	t.db.barrier.RUnlock()
	t.finish(wal.TxnAborted)
}

func (t *Txn) finish(state wal.TxnState) {
	// Any deferred page exposures end with the transaction.
	t.db.schemeOpEnd()
	if state == wal.TxnCommitted {
		t.db.mTxnsCommitted.Inc()
	} else {
		t.db.mTxnsAborted.Inc()
	}
	t.entry.State = state
	t.db.att.Remove(t.entry.ID)
	if !t.recoveryMode {
		t.db.locks.ReleaseAll(t.entry.ID)
	}
	t.done = true
}

// applyPhysUndo restores a physical before-image through the protection
// scheme. If the codeword was never applied for the update (the paper's
// codeword-applied flag is still set), the bytes are restored without
// touching the codeword, which still describes the before-image;
// otherwise the restore folds the codeword like any other update.
func (t *Txn) applyPhysUndo(u wal.UndoRec) error {
	t.db.barrier.RLock()
	defer t.db.barrier.RUnlock()
	n := len(u.Before)
	tok, err := t.db.scheme.BeginUpdate(u.Addr, n)
	if err != nil {
		return err
	}
	cur := make([]byte, n)
	copy(cur, t.db.arena.Slice(u.Addr, n))
	//dbvet:allow guardedwrite rollback restores the undo image; AbortUpdate squares the codeword
	copy(t.db.arena.Slice(u.Addr, n), u.Before)
	if u.CodewordPending {
		return t.db.scheme.AbortUpdate(tok)
	}
	return t.db.scheme.EndUpdate(tok, cur, u.Before)
}
