package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/lockmgr"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/protect"
	"repro/internal/wal"
)

// TestConcurrentTxnsCheckpointerAuditor exercises the full latching and
// barrier discipline at once: worker transactions update disjoint key
// ranges, the checkpointer quiesces and snapshots, and the background
// auditor sweeps — no audit may fail and no update may be lost.
func TestConcurrentTxnsCheckpointerAuditor(t *testing.T) {
	for _, pc := range []protect.Config{
		{Kind: protect.KindDataCW, RegionSize: 128},
		{Kind: protect.KindPrecheck, RegionSize: 128},
	} {
		pc := pc
		t.Run(pc.Kind.String(), func(t *testing.T) {
			db, err := Open(Config{
				Dir:       t.TempDir(),
				ArenaSize: 1 << 18,
				Protect:   pc,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			auditor := NewAuditor(db, time.Millisecond)
			auditor.Start()

			stop := make(chan struct{})
			var ckptErr error
			var ckptWG sync.WaitGroup
			ckptWG.Add(1)
			go func() {
				defer ckptWG.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := db.Checkpoint(); err != nil {
						ckptErr = err
						return
					}
					time.Sleep(2 * time.Millisecond)
				}
			}()

			const workers = 6
			const txnsPerWorker = 15
			const opsPerTxn = 20
			var wg sync.WaitGroup
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					base := mem.Addr(g * 32 * 1024)
					for tn := 0; tn < txnsPerWorker; tn++ {
						txn, err := db.Begin()
						if err != nil {
							t.Error(err)
							return
						}
						for i := 0; i < opsPerTxn; i++ {
							key := wal.ObjectKey(uint64(g)<<32 | uint64(i%8))
							if err := txn.Lock(key, lockmgr.Exclusive); err != nil {
								t.Error(err)
								txn.Abort()
								return
							}
							addr := base + mem.Addr((i%8)*256)
							if err := txn.BeginOp(1, key); err != nil {
								t.Error(err)
								return
							}
							u, err := txn.BeginUpdate(addr, 64)
							if err != nil {
								t.Error(err)
								return
							}
							before := append([]byte(nil), u.Bytes()...)
							for j := range u.Bytes() {
								u.Bytes()[j] = byte(g*31 + tn*7 + i + j)
							}
							if err := u.End(); err != nil {
								t.Error(err)
								return
							}
							if err := txn.CommitOp(1, key, wal.LogicalUndo{
								Op: testUndoOp, Key: key, Args: encodeTestUndo(addr, before),
							}); err != nil {
								t.Error(err)
								return
							}
							if _, err := txn.Read(addr, 64); err != nil {
								t.Errorf("read after own write: %v", err)
								return
							}
						}
						// A third of the transactions roll back.
						if tn%3 == 0 {
							if err := txn.Abort(); err != nil {
								t.Error(err)
								return
							}
						} else if err := txn.Commit(); err != nil {
							t.Error(err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(stop)
			ckptWG.Wait()
			auditor.Stop()

			if ckptErr != nil {
				t.Fatalf("checkpointer failed: %v", ckptErr)
			}
			if ce := auditor.Err(); ce != nil {
				t.Fatalf("auditor detected phantom corruption: %v", ce)
			}
			if err := db.Audit(); err != nil {
				t.Fatalf("final audit: %v", err)
			}
			s := db.Metrics()
			if got := s.Counter(obs.NameTxnsBegun); got != workers*txnsPerWorker {
				t.Fatalf("txns = %d", got)
			}
			if s.Counter(obs.NameCheckpoints) == 0 {
				t.Fatal("no checkpoints completed")
			}
		})
	}
}

// TestConcurrentReadersAndWriterPrecheck runs readers prechecking regions
// a writer is concurrently updating through the prescribed interface: the
// precheck must never fire (no false positives from in-flight updates,
// thanks to the exclusive protection latch).
func TestConcurrentReadersAndWriterPrecheck(t *testing.T) {
	db := testDB(t, protect.Config{Kind: protect.KindPrecheck, RegionSize: 64})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		txn, err := db.Begin()
		if err != nil {
			t.Error(err)
			return
		}
		defer txn.Commit()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			key := wal.ObjectKey(i % 4)
			addr := mem.Addr((i % 4) * 512)
			if err := txn.BeginOp(1, key); err != nil {
				t.Error(err)
				return
			}
			u, err := txn.BeginUpdate(addr, 200)
			if err != nil {
				t.Error(err)
				return
			}
			before := append([]byte(nil), u.Bytes()...)
			for j := range u.Bytes() {
				u.Bytes()[j] = byte(i + j)
			}
			if err := u.End(); err != nil {
				t.Error(err)
				return
			}
			if err := txn.CommitOp(1, key, wal.LogicalUndo{
				Op: testUndoOp, Key: key, Args: encodeTestUndo(addr, before),
			}); err != nil {
				t.Error(err)
				return
			}
			i++
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			txn, err := db.Begin()
			if err != nil {
				t.Error(err)
				return
			}
			defer txn.Commit()
			for i := 0; i < 500; i++ {
				addr := mem.Addr(((r + i) % 4) * 512)
				if _, err := txn.Read(addr, 200); err != nil {
					if errors.Is(err, protect.ErrPrecheckFailed) {
						t.Errorf("false-positive precheck: %v", err)
					} else {
						t.Error(err)
					}
					return
				}
			}
		}(r)
	}
	// Wait for readers, then stop the writer.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	go func() {
		time.Sleep(100 * time.Millisecond)
		close(stop)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stress run wedged")
	}
}
