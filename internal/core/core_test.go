package core

import (
	"errors"
	"testing"

	"repro/internal/lockmgr"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/protect"
	"repro/internal/wal"
)

func testDB(t *testing.T, pc protect.Config) *DB {
	t.Helper()
	db, err := Open(Config{
		Dir:       t.TempDir(),
		ArenaSize: 1 << 16,
		Protect:   pc,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// opUpdate performs begin-op, update, commit-op as one unit.
func opUpdate(t *testing.T, txn *Txn, key wal.ObjectKey, addr mem.Addr, data []byte) {
	t.Helper()
	if err := txn.BeginOp(1, key); err != nil {
		t.Fatal(err)
	}
	u, err := txn.BeginUpdate(addr, len(data))
	if err != nil {
		t.Fatal(err)
	}
	old := append([]byte(nil), u.Bytes()...)
	copy(u.Bytes(), data)
	if err := u.End(); err != nil {
		t.Fatal(err)
	}
	if err := txn.CommitOp(1, key, wal.LogicalUndo{Op: testUndoOp, Key: key,
		Args: encodeTestUndo(addr, old)}); err != nil {
		t.Fatal(err)
	}
}

// testUndoOp restores the bytes captured in Args — a minimal logical undo
// for these unit tests (the heap package provides the real ones).
const testUndoOp = 0xEE

func encodeTestUndo(addr mem.Addr, old []byte) []byte {
	args := make([]byte, 8+len(old))
	for i := 0; i < 8; i++ {
		args[i] = byte(uint64(addr) >> (8 * i))
	}
	copy(args[8:], old)
	return args
}

func init() {
	RegisterUndoOp(testUndoOp, func(t *Txn, u wal.LogicalUndo) error {
		var addr uint64
		for i := 0; i < 8; i++ {
			addr |= uint64(u.Args[i]) << (8 * i)
		}
		old := u.Args[8:]
		if err := t.BeginOp(1, u.Key); err != nil {
			return err
		}
		up, err := t.BeginUpdate(mem.Addr(addr), len(old))
		if err != nil {
			return err
		}
		copy(up.Bytes(), old)
		if err := up.End(); err != nil {
			return err
		}
		return t.CommitCompensationOp(1, u.Key)
	})
}

func TestOpenRejectsExistingDatabase(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{Dir: dir, ArenaSize: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CloseClean(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir, ArenaSize: 1 << 14}); err == nil {
		t.Fatal("Open accepted a directory with an existing checkpoint")
	}
}

func TestOpenRequiresArenaSize(t *testing.T) {
	if _, err := Open(Config{Dir: t.TempDir()}); err == nil {
		t.Fatal("Open accepted zero arena size")
	}
}

func TestBasicUpdateVisible(t *testing.T) {
	db := testDB(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	opUpdate(t, txn, 1, 128, []byte("hello"))
	got, err := txn.Read(128, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("read %q", got)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Audit(); err != nil {
		t.Fatalf("audit after commit: %v", err)
	}
}

func TestAbortRestoresData(t *testing.T) {
	db := testDB(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	// Committed base state.
	txn, _ := db.Begin()
	opUpdate(t, txn, 1, 128, []byte("base!"))
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	// Aborting transaction overwrites then rolls back.
	txn2, _ := db.Begin()
	opUpdate(t, txn2, 1, 128, []byte("evil!"))
	if err := txn2.Abort(); err != nil {
		t.Fatal(err)
	}
	txn3, _ := db.Begin()
	got, err := txn3.Read(128, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "base!" {
		t.Fatalf("after abort read %q, want base!", got)
	}
	txn3.Commit()
	// Codewords must be consistent after the compensated rollback.
	if err := db.Audit(); err != nil {
		t.Fatalf("audit after abort: %v", err)
	}
}

func TestAbortOpMidway(t *testing.T) {
	db := testDB(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	txn, _ := db.Begin()
	opUpdate(t, txn, 1, 0, []byte("keep"))
	if err := txn.BeginOp(1, 2); err != nil {
		t.Fatal(err)
	}
	u, err := txn.BeginUpdate(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	copy(u.Bytes(), "drop")
	if err := u.End(); err != nil {
		t.Fatal(err)
	}
	if err := txn.AbortOp(); err != nil {
		t.Fatal(err)
	}
	// The aborted op's bytes restored; the committed op's retained.
	if got, _ := txn.Read(0, 4); string(got) != "keep" {
		t.Fatalf("committed op data = %q", got)
	}
	if got, _ := txn.Read(64, 4); string(got) != "\x00\x00\x00\x00" {
		t.Fatalf("aborted op data = %q", got)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateCancel(t *testing.T) {
	db := testDB(t, protect.Config{Kind: protect.KindPrecheck, RegionSize: 64})
	txn, _ := db.Begin()
	if err := txn.BeginOp(1, 9); err != nil {
		t.Fatal(err)
	}
	u, err := txn.BeginUpdate(256, 8)
	if err != nil {
		t.Fatal(err)
	}
	copy(u.Bytes(), "garbage!")
	if err := u.Cancel(); err != nil {
		t.Fatal(err)
	}
	// Canceled update leaves no trace: bytes restored, codeword valid,
	// undo log back to just the op marker.
	if txn.Entry().Undo[len(txn.Entry().Undo)-1].Kind != wal.UndoOpBegin {
		t.Fatal("undo log retains canceled update")
	}
	if _, err := txn.Read(256, 8); err != nil {
		t.Fatalf("precheck failed after cancel: %v", err)
	}
	if err := txn.CommitOp(1, 9, wal.LogicalUndo{Op: testUndoOp, Key: 9,
		Args: encodeTestUndo(256, make([]byte, 8))}); err != nil {
		t.Fatal(err)
	}
	txn.Commit()
}

func TestUpdateRules(t *testing.T) {
	db := testDB(t, protect.Config{})
	txn, _ := db.Begin()
	if _, err := txn.BeginUpdate(0, 8); err == nil {
		t.Fatal("update outside operation accepted")
	}
	txn.BeginOp(1, 1)
	u, err := txn.BeginUpdate(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txn.BeginUpdate(8, 8); err == nil {
		t.Fatal("nested update bracket accepted")
	}
	if err := txn.Commit(); err == nil {
		t.Fatal("commit with open update accepted")
	}
	u.End()
	if err := txn.Commit(); err == nil {
		t.Fatal("commit with open operation accepted")
	}
	if err := txn.CommitOp(1, 1, wal.LogicalUndo{Op: testUndoOp, Key: 1,
		Args: encodeTestUndo(0, make([]byte, 8))}); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	// Operations on a finished transaction fail.
	if _, err := txn.Read(0, 1); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("read after commit: %v", err)
	}
	if err := txn.Abort(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("abort after commit: %v", err)
	}
	if err := txn.BeginOp(1, 1); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("BeginOp after commit: %v", err)
	}
}

func TestCommitOpWithoutBegin(t *testing.T) {
	db := testDB(t, protect.Config{})
	txn, _ := db.Begin()
	if err := txn.CommitOp(1, 1, wal.LogicalUndo{}); err == nil {
		t.Fatal("CommitOp without BeginOp accepted")
	}
	if err := txn.AbortOp(); err == nil {
		t.Fatal("AbortOp without BeginOp accepted")
	}
	txn.Abort()
}

func TestLocksReleasedOnCompletion(t *testing.T) {
	db := testDB(t, protect.Config{})
	txn, _ := db.Begin()
	if err := txn.Lock(42, lockmgr.Exclusive); err != nil {
		t.Fatal(err)
	}
	if db.Internals().Locks.HeldCount(txn.ID()) != 1 {
		t.Fatal("lock not recorded")
	}
	txn.Commit()
	if db.Internals().Locks.HeldCount(txn.ID()) != 0 {
		t.Fatal("locks survive commit")
	}
}

func TestAuditDetectsWildWriteAndLogsIt(t *testing.T) {
	// DisableHeal pins detection-only semantics; the healing audit path
	// has its own tests in heal_test.go.
	db := testDB(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64, DisableHeal: true})
	if err := db.Audit(); err != nil {
		t.Fatal(err)
	}
	if db.LastCleanAuditLSN() == 0 && db.AuditSerial() != 1 {
		t.Fatal("audit bookkeeping wrong")
	}
	db.Internals().Arena.Bytes()[500] ^= 0xFF // wild write
	err := db.Audit()
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("audit of corrupted image: %v", err)
	}
	if len(ce.Mismatches) != 1 || ce.Mismatches[0].Region != 500/64 {
		t.Fatalf("mismatches: %v", ce.Mismatches)
	}
	if ce.Error() == "" {
		t.Fatal("empty error text")
	}
	// The failing audit's corrupt ranges must be in the log for recovery.
	db.Close()
	var foundDirty bool
	wal.Scan(db.Config().Dir, 0, func(r *wal.Record) bool {
		if r.Kind == wal.KindAuditEnd && !r.AuditClean {
			foundDirty = true
			if len(r.CorruptAddrs) != 1 || r.CorruptAddrs[0] != mem.Addr(500/64*64) {
				t.Errorf("audit-end corrupt ranges: %v", r.CorruptAddrs)
			}
		}
		return true
	})
	if !foundDirty {
		t.Fatal("dirty audit-end record not in log")
	}
}

func TestCheckpointRefusedWhenCorrupt(t *testing.T) {
	db := testDB(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64, DisableHeal: true})
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	a1, ok := db.Internals().Checkpoints.Anchor()
	if !ok {
		t.Fatal("no anchor after checkpoint")
	}
	db.Internals().Arena.Bytes()[100] ^= 0x01
	err := db.Checkpoint()
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("checkpoint of corrupt database: %v", err)
	}
	a2, _ := db.Internals().Checkpoints.Anchor()
	if !a2.Equal(a1) {
		t.Fatal("corrupt checkpoint was certified")
	}
}

func TestMetaRoundTrip(t *testing.T) {
	db := testDB(t, protect.Config{})
	db.SetMeta("catalog", []byte("tables"))
	if _, err := db.AllocPages(3); err != nil {
		t.Fatal(err)
	}
	enc := db.encodeMeta()

	db2 := testDB(t, protect.Config{})
	if err := db2.decodeMeta(enc); err != nil {
		t.Fatal(err)
	}
	v, ok := db2.Meta("catalog")
	if !ok || string(v) != "tables" {
		t.Fatalf("meta lost: %q %v", v, ok)
	}
	if db2.AllocatedPages() != 3 {
		t.Fatalf("allocator state lost: %d", db2.AllocatedPages())
	}
}

func TestAllocPagesExhaustion(t *testing.T) {
	db := testDB(t, protect.Config{})
	n := db.Internals().Arena.NumPages()
	first, err := db.AllocPages(n)
	if err != nil || first != 0 {
		t.Fatalf("alloc all: %v", err)
	}
	if _, err := db.AllocPages(1); err == nil {
		t.Fatal("over-allocation accepted")
	}
}

func TestAttachments(t *testing.T) {
	db := testDB(t, protect.Config{})
	key := NewAttachKey[int]("x")
	if _, ok := key.Get(db); ok {
		t.Fatal("phantom attachment")
	}
	key.Set(db, 42)
	v, ok := key.Get(db)
	if !ok || v != 42 {
		t.Fatal("attachment lost")
	}
	// Same name, distinct key: no collision (identity is the key value).
	other := NewAttachKey[string]("x")
	if _, ok := other.Get(db); ok {
		t.Fatal("keys collided by name")
	}
	inits := 0
	got, err := key.GetOrInit(db, func() (int, error) { inits++; return 7, nil })
	if err != nil || got != 42 || inits != 0 {
		t.Fatalf("GetOrInit on present key: v=%d inits=%d err=%v", got, inits, err)
	}
	s, err := other.GetOrInit(db, func() (string, error) { inits++; return "built", nil })
	if err != nil || s != "built" || inits != 1 {
		t.Fatalf("GetOrInit build: v=%q inits=%d err=%v", s, inits, err)
	}
}

func TestMetricsCounters(t *testing.T) {
	db := testDB(t, protect.Config{Kind: protect.KindReadLog, RegionSize: 64})
	txn, _ := db.Begin()
	opUpdate(t, txn, 1, 0, []byte("abcd"))
	txn.Read(0, 4)
	txn.Commit()
	db.Audit()
	db.Checkpoint()
	s := db.Metrics()
	if s.Counter(obs.NameTxnsBegun) != 1 || s.Counter(obs.NameOps) != 1 || s.Counter(obs.NameUpdates) != 1 {
		t.Fatalf("txn/op/update counters: %+v", s.Counters)
	}
	if s.Counter(obs.NameReads) != 1 || s.Counter(obs.NameReadRecords) != 1 {
		t.Fatalf("read counters: %+v", s.Counters)
	}
	if s.Counter(obs.NameAuditPasses) < 2 || s.Counter(obs.NameCheckpoints) != 1 {
		t.Fatalf("audit/ckpt counters: %+v", s.Counters)
	}
}

func TestReadLogRecordsReachSystemLog(t *testing.T) {
	db := testDB(t, protect.Config{Kind: protect.KindCWReadLog, RegionSize: 64})
	txn, _ := db.Begin()
	txn.BeginOp(1, 5)
	if _, err := txn.Read(100, 10); err != nil {
		t.Fatal(err)
	}
	u, _ := txn.BeginUpdate(100, 4)
	copy(u.Bytes(), "data")
	u.End()
	txn.CommitOp(1, 5, wal.LogicalUndo{Op: testUndoOp, Key: 5, Args: encodeTestUndo(100, make([]byte, 4))})
	txn.Commit()
	db.Close()

	var kinds []wal.Kind
	var readCW, writeCW bool
	wal.Scan(db.Config().Dir, 0, func(r *wal.Record) bool {
		kinds = append(kinds, r.Kind)
		if r.Kind == wal.KindRead && r.HasCW {
			readCW = true
		}
		if r.Kind == wal.KindPhysRedo && r.HasCW {
			writeCW = true
		}
		return true
	})
	want := []wal.Kind{wal.KindTxnBegin, wal.KindOpBegin, wal.KindRead,
		wal.KindPhysRedo, wal.KindOpCommit, wal.KindTxnCommit}
	if len(kinds) != len(want) {
		t.Fatalf("log kinds: %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("log kinds: %v, want %v", kinds, want)
		}
	}
	if !readCW || !writeCW {
		t.Fatalf("codewords missing: read=%v write=%v", readCW, writeCW)
	}
}

func TestReadIntoMatchesRead(t *testing.T) {
	db := testDB(t, protect.Config{Kind: protect.KindReadLog})
	txn, _ := db.Begin()
	opUpdate(t, txn, 1, 64, []byte("xyzzy"))
	a, err := txn.Read(64, 5)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 5)
	if _, err := txn.ReadInto(64, b); err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("Read %q != ReadInto %q", a, b)
	}
	txn.Commit()
}

func TestClosedDB(t *testing.T) {
	db := testDB(t, protect.Config{})
	db.Close()
	if _, err := db.Begin(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Begin on closed DB: %v", err)
	}
	if err := db.Audit(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Audit on closed DB: %v", err)
	}
	if err := db.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint on closed DB: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestHWSchemeThroughCore(t *testing.T) {
	db := testDB(t, protect.Config{Kind: protect.KindHW, ForceSimProtect: true})
	txn, _ := db.Begin()
	opUpdate(t, txn, 1, 4096, []byte("guard"))
	txn.Commit()
	if db.Metrics().Counter(obs.NameProtectCalls) == 0 {
		t.Fatal("no protect calls recorded")
	}
	// All pages protected again outside update brackets.
	if db.Scheme().Protector().Writable(1) {
		t.Fatal("page writable outside update bracket")
	}
}

// mem64 converts an int offset to an arena address in tests.
func mem64(n int) mem.Addr { return mem.Addr(n) }

func TestUpdateWriteHelper(t *testing.T) {
	db := testDB(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	txn, _ := db.Begin()
	txn.BeginOp(1, 3)
	u, err := txn.BeginUpdate(512, 16)
	if err != nil {
		t.Fatal(err)
	}
	u.Write(4, []byte("midway"))
	if err := u.End(); err != nil {
		t.Fatal(err)
	}
	txn.CommitOp(1, 3, wal.LogicalUndo{Op: testUndoOp, Key: 3,
		Args: encodeTestUndo(512, make([]byte, 16))})
	got, _ := txn.Read(512, 16)
	if string(got[4:10]) != "midway" {
		t.Fatalf("Write helper misplaced data: %q", got)
	}
	txn.Commit()
	if err := db.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestTxnStateStrings(t *testing.T) {
	for _, s := range []wal.TxnState{wal.TxnActive, wal.TxnCommitted, wal.TxnAborted, wal.TxnState(99)} {
		if s.String() == "" {
			t.Fatalf("empty state string for %d", uint8(s))
		}
	}
}

func TestExclusiveBarrierRuns(t *testing.T) {
	db := testDB(t, protect.Config{})
	ran := false
	if err := db.ExclusiveBarrier(func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("barrier function not run")
	}
}

func TestReadInsideUpdateBracketRefused(t *testing.T) {
	db := testDB(t, protect.Config{Kind: protect.KindPrecheck, RegionSize: 64})
	txn, _ := db.Begin()
	txn.BeginOp(1, 1)
	u, err := txn.BeginUpdate(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Read(1024, 8); err == nil {
		t.Fatal("read inside open update bracket accepted (would self-deadlock)")
	}
	if _, err := txn.ReadInto(1024, make([]byte, 8)); err == nil {
		t.Fatal("ReadInto inside open update bracket accepted")
	}
	u.End()
	if _, err := txn.Read(1024, 8); err != nil {
		t.Fatalf("read after End: %v", err)
	}
	txn.CommitOp(1, 1, wal.LogicalUndo{Op: testUndoOp, Key: 1, Args: encodeTestUndo(0, make([]byte, 8))})
	txn.Commit()
}
