package core

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/protect"
	"repro/internal/wal"
)

// Update is an open update bracket — the prescribed interface of the
// paper's update model. BeginUpdate captures the undo image and prepares
// the region (protection latches for codeword schemes, page exposure for
// hardware protection); the caller then writes [addr, addr+n) in place
// through Bytes or Write; End performs codeword maintenance and generates
// the physical redo record. Exactly one of End or Cancel must be called.
//
// The paper's codeword-applied flag lifecycle (§3.1) is realized here:
// BeginUpdate pushes the physical undo record with the flag pending, End
// clears it after folding the codeword, and Cancel restores the
// before-image leaving the codeword untouched.
type Update struct {
	t       *Txn
	addr    mem.Addr
	n       int
	before  []byte
	tok     *protect.UpdateToken
	undoIdx int
	done    bool
}

// BeginUpdate opens an update bracket on [addr, addr+n). While a bracket
// is open the transaction must not issue other operations (reads through
// the interface, operation boundaries); it should only write the exposed
// bytes and then End or Cancel.
func (t *Txn) BeginUpdate(addr mem.Addr, n int) (*Update, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	if t.pendingUpdate {
		return nil, fmt.Errorf("core: txn %d: nested update bracket", t.entry.ID)
	}
	if !t.entry.InOperation() {
		return nil, fmt.Errorf("core: txn %d: update outside an operation", t.entry.ID)
	}
	db := t.db
	// The audit barrier is held across the whole bracket so an audit
	// cannot observe the half-updated region; End/Cancel release it.
	//dbvet:allow latchorder update bracket spans functions; End/Cancel defer the RUnlock
	db.barrier.RLock()
	if err := db.arena.CheckRange(addr, n); err != nil {
		db.barrier.RUnlock()
		return nil, err
	}
	before := make([]byte, n)
	copy(before, db.arena.Slice(addr, n))
	tok, err := db.scheme.BeginUpdate(addr, n)
	if err != nil {
		db.barrier.RUnlock()
		return nil, err
	}
	t.entry.PushPhysUndo(addr, before)
	t.pendingUpdate = true
	db.mUpdates.Inc()
	//dbvet:allow cwpair bracket folds in Update.End via scheme.EndUpdate, not at Begin
	return &Update{
		t:       t,
		addr:    addr,
		n:       n,
		before:  before,
		tok:     tok,
		undoIdx: len(t.entry.Undo) - 1,
	}, nil
}

// Bytes exposes the writable window [addr, addr+n) of the database image
// for in-place modification.
func (u *Update) Bytes() []byte {
	return u.t.db.arena.Slice(u.addr, u.n)
}

// Write copies data into the window at the given offset.
func (u *Update) Write(off int, data []byte) {
	copy(u.Bytes()[off:], data)
}

// End completes the update: the codeword change is folded in (or the
// pages reprotected), the codeword-applied flag is cleared, and the
// physical redo record — carrying the pre-update region codeword when the
// CW Read Logging scheme is active — is appended to the transaction's
// local redo log.
func (u *Update) End() error {
	if u.done {
		return fmt.Errorf("core: update bracket already closed")
	}
	u.done = true
	t := u.t
	db := t.db
	defer db.barrier.RUnlock()
	t.pendingUpdate = false

	after := make([]byte, u.n)
	copy(after, db.arena.Slice(u.addr, u.n))

	// Pre-update codeword for "write treated as read followed by write"
	// must be computed while the update's latches are still held.
	cw, hasCW := db.scheme.PreWriteCW(u.addr, u.before, after)

	if err := db.scheme.EndUpdate(u.tok, u.before, after); err != nil {
		return err
	}
	t.entry.Undo[u.undoIdx].CodewordPending = false
	t.entry.Redo = append(t.entry.Redo, &wal.Record{
		Kind: wal.KindPhysRedo, Txn: t.entry.ID,
		Addr: u.addr, Data: after, HasCW: hasCW, CW: cw,
	})
	return nil
}

// Cancel abandons the update: the before-image is restored, the codeword
// is left untouched (it still describes the before-image), and the undo
// record is popped — the update never happened.
func (u *Update) Cancel() error {
	if u.done {
		return fmt.Errorf("core: update bracket already closed")
	}
	u.done = true
	t := u.t
	db := t.db
	defer db.barrier.RUnlock()
	t.pendingUpdate = false

	//dbvet:allow guardedwrite Cancel restores the before image the codeword still covers
	copy(db.arena.Slice(u.addr, u.n), u.before)
	if err := db.scheme.AbortUpdate(u.tok); err != nil {
		return err
	}
	if u.undoIdx != len(t.entry.Undo)-1 || t.entry.Undo[u.undoIdx].Kind != wal.UndoPhys {
		return fmt.Errorf("core: txn %d: undo log shifted under open update", t.entry.ID)
	}
	t.entry.Undo = t.entry.Undo[:u.undoIdx]
	return nil
}
