package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/protect"
	"repro/internal/wal"
)

// TestCheckpointCompactsLog verifies the log stays bounded across
// checkpoints: records below the certified CK_end are discarded, and the
// database remains recoverable afterwards (exercised indirectly — the
// recovery package's tests run against compacted logs throughout).
func TestCheckpointCompactsLog(t *testing.T) {
	db := testDB(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	logPath := filepath.Join(db.Config().Dir, wal.LogFileName)

	writeSome := func(n int) {
		for i := 0; i < n; i++ {
			txn, err := db.Begin()
			if err != nil {
				t.Fatal(err)
			}
			opUpdate(t, txn, wal.ObjectKey(i%4), mem64((i%4)*256), make([]byte, 200))
			if err := txn.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}

	writeSome(50)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	size1, _ := os.Stat(logPath)
	writeSome(50)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	size2, _ := os.Stat(logPath)

	// After each checkpoint only the audit records since CK_end remain;
	// the file must not grow linearly with history.
	if size2.Size() > size1.Size()*2 {
		t.Fatalf("log grew across checkpoints: %d -> %d", size1.Size(), size2.Size())
	}
	if db.Internals().Log.BaseLSN() == 0 {
		t.Fatal("log never compacted")
	}
	a, ok := db.Internals().Checkpoints.Anchor()
	if !ok || db.Internals().Log.BaseLSN() != a.CKEnd {
		t.Fatalf("base %d != CK_end %d", db.Internals().Log.BaseLSN(), a.CKEnd)
	}
}

// TestDisableLogCompaction keeps the full history when asked.
func TestDisableLogCompaction(t *testing.T) {
	db, err := Open(Config{
		Dir:                  t.TempDir(),
		ArenaSize:            1 << 16,
		DisableLogCompaction: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	txn, _ := db.Begin()
	opUpdate(t, txn, 1, 0, []byte("x"))
	txn.Commit()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if db.Internals().Log.BaseLSN() != 0 {
		t.Fatal("log compacted despite DisableLogCompaction")
	}
}
