package core

import (
	"fmt"
	"time"

	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/region"
	"repro/internal/wal"
)

// AuditPass is one full audit of the database, performed either at once
// (DB.Audit) or incrementally in slices (the background auditor's
// production mode, which bounds the latency impact of each sweep tick).
//
// Audit_SN semantics are preserved for incremental passes: the begin
// record is logged when the pass starts, and the pass is clean only if
// every region checked clean at the moment its slice ran. A region that
// was corrupt at pass begin stays corrupt until checked — prescribed
// updates fold old⊕new and therefore never repair a stale codeword — so
// a clean pass certifies cleanliness from its begin record onward, which
// is exactly what recovery assumes of Audit_SN (the same reasoning that
// lets the paper treat a non-instantaneous full audit as a point event).
type AuditPass struct {
	db         *DB
	sn         uint64
	beginLSN   wal.LSN
	next       mem.Addr
	mismatches []region.Mismatch
	healed     int // mismatches repaired in place by the ECC tier
	finished   bool
	started    time.Time
}

// BeginAuditPass starts an audit pass, logging its begin record. Passes
// may run concurrently (the checkpointer's certification audit can
// overlap a background incremental pass); each is independently correct,
// and Audit_SN only ever advances.
func (db *DB) BeginAuditPass() (*AuditPass, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	db.auditMu.Lock()
	defer db.auditMu.Unlock()
	if db.closed.Load() {
		return nil, ErrClosed
	}
	db.auditSN++
	db.mAudits.Inc()
	begin := &wal.Record{Kind: wal.KindAuditBegin, AuditSN: db.auditSN}
	if err := db.log.Append(begin); err != nil {
		return nil, fmt.Errorf("core: begin audit pass: %w", err)
	}
	return &AuditPass{db: db, sn: db.auditSN, beginLSN: begin.LSN, started: time.Now()}, nil
}

// Step audits the next maxBytes of the image (rounded to whole protection
// regions by the scheme) and reports whether the pass has covered the
// whole database. Mismatches accumulate until Finish. The slice itself is
// chunked across the database's scan worker pool by the scheme's
// AuditRange (each worker still takes the per-region protection latch the
// scheme prescribes), so a full-database Step — the checkpointer's
// certification audit — scales with Config.Workers while an incremental
// background pass keeps its small, bounded-latency slices.
func (p *AuditPass) Step(maxBytes int) (done bool, err error) {
	if p.finished {
		return true, fmt.Errorf("core: audit pass already finished")
	}
	db := p.db
	if db.closed.Load() {
		return false, ErrClosed
	}
	db.auditMu.Lock()
	defer db.auditMu.Unlock()
	if db.closed.Load() {
		return false, ErrClosed
	}
	if maxBytes <= 0 {
		maxBytes = db.arena.Size()
	}
	n := maxBytes
	if int(p.next)+n > db.arena.Size() {
		n = db.arena.Size() - int(p.next)
	}
	if n > 0 {
		for _, m := range db.scheme.AuditRange(p.next, n) {
			if p.tryHeal(m) {
				p.healed++
				continue
			}
			p.mismatches = append(p.mismatches, m)
		}
		p.next += mem.Addr(n)
	}
	return int(p.next) >= db.arena.Size(), nil
}

// tryHeal offers a mismatch to the scheme's ECC tier. A repaired word
// (or a region a concurrent pass already fixed) drops out of the pass's
// mismatches: the damage never reaches CorruptionError, delete-
// transaction recovery, or the audit-end record's corrupt set. Damage
// past the correction radius stays a mismatch and is counted as an
// escalation.
func (p *AuditPass) tryHeal(m region.Mismatch) bool {
	db := p.db
	if !db.healAudits {
		return false
	}
	res := db.scheme.Heal(m.Region)
	switch res.Verdict {
	case region.VerdictRepaired, region.VerdictClean, region.VerdictParityStale:
		return true
	case region.VerdictUnrepairable:
		db.mHealEscalate.Inc()
		if db.reg.HasSinks() {
			db.reg.Emit(obs.HealEvent{Region: uint64(m.Region), Verdict: res.Verdict.String()})
		}
	}
	return false
}

// Finish logs the audit-end record and, if the pass was clean, advances
// Audit_SN to the pass's begin record. A dirty pass returns
// *CorruptionError with the accumulated mismatches (which are also in the
// end record for recovery to find).
func (p *AuditPass) Finish() error {
	if p.finished {
		return fmt.Errorf("core: audit pass already finished")
	}
	p.finished = true
	db := p.db
	if db.closed.Load() {
		return ErrClosed
	}
	db.auditMu.Lock()
	defer db.auditMu.Unlock()
	if db.closed.Load() {
		return ErrClosed
	}
	end := &wal.Record{Kind: wal.KindAuditEnd, AuditSN: p.sn, AuditClean: len(p.mismatches) == 0}
	for _, m := range p.mismatches {
		end.CorruptAddrs = append(end.CorruptAddrs, m.Start)
		end.CorruptLens = append(end.CorruptLens, uint32(m.Len))
	}
	if err := db.log.AppendAndFlush(end); err != nil {
		return err
	}
	p.note()
	if len(p.mismatches) > 0 {
		return &CorruptionError{Mismatches: p.mismatches}
	}
	// A pass that healed damage ends clean but was not clean from its
	// begin record onward — the invariant Audit_SN certifies — so it must
	// not advance Audit_SN; the next fully clean pass will.
	// Monotonic: a slow pass finishing after a later-begun clean pass
	// must not regress Audit_SN.
	if p.healed == 0 && p.beginLSN > db.lastCleanAudit {
		db.lastCleanAudit = p.beginLSN
	}
	return nil
}

// Healed reports how many mismatches the pass repaired in place.
func (p *AuditPass) Healed() int { return p.healed }

// note records the finished pass's duration and verdict in the metrics
// registry and emits an obs.AuditPassEvent (plus an obs.CorruptionEvent if
// the pass was dirty). Called with db.auditMu held.
func (p *AuditPass) note() {
	db := p.db
	dur := time.Since(p.started)
	db.hAuditNS.Observe(uint64(dur.Nanoseconds()))
	regions := 0
	if rs := db.scheme.RegionSize(); rs > 0 {
		regions = int(p.next) / rs
	}
	clean := len(p.mismatches) == 0
	if !clean {
		db.mAuditMismatch.Add(uint64(len(p.mismatches)))
		db.mCorruptions.Inc()
	}
	if db.reg.HasSinks() {
		db.reg.Emit(obs.AuditPassEvent{
			SN: p.sn, Duration: dur, Regions: regions,
			Mismatches: len(p.mismatches), Healed: p.healed, Clean: clean,
		})
		if !clean {
			db.reg.Emit(obs.CorruptionEvent{Source: "audit", Mismatches: len(p.mismatches)})
		}
	}
}

// Abort abandons the pass without logging an end record (used when the
// database is closing mid-pass).
func (p *AuditPass) Abort() {
	p.finished = true
}

// Progress reports how many bytes of the image the pass has covered.
func (p *AuditPass) Progress() int { return int(p.next) }
