package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/protect"
	"repro/internal/wal"
)

func TestAuditorCleanSweeps(t *testing.T) {
	db := testDB(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	a := NewAuditor(db, 5*time.Millisecond)
	a.Start()
	a.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for a.Sweeps() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("auditor never swept")
		}
		time.Sleep(time.Millisecond)
	}
	a.Stop()
	a.Stop() // idempotent
	if a.Err() != nil {
		t.Fatalf("clean database reported corruption: %v", a.Err())
	}
	// Audit_SN advanced.
	if db.LastCleanAuditLSN() == 0 && db.AuditSerial() == 0 {
		t.Fatal("audits not recorded")
	}
}

func TestAuditorDetectsCorruption(t *testing.T) {
	// DisableHeal pins detection-only semantics; the healing audit path
	// has its own tests in heal_test.go.
	db := testDB(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64, DisableHeal: true})
	detected := make(chan *CorruptionError, 1)
	a := NewAuditor(db, 2*time.Millisecond)
	a.OnCorruption = func(ce *CorruptionError) { detected <- ce }
	a.Start()
	defer a.Stop()

	db.Internals().Arena.Bytes()[300] ^= 0x10 // wild write

	select {
	case ce := <-detected:
		if len(ce.Mismatches) != 1 || ce.Mismatches[0].Region != 300/64 {
			t.Fatalf("mismatches: %v", ce.Mismatches)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("auditor never detected the corruption")
	}
	if a.Err() == nil {
		t.Fatal("Err not recorded")
	}
}

func TestAuditorStopsOnClose(t *testing.T) {
	db := testDB(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	a := NewAuditor(db, time.Millisecond)
	a.Start()
	time.Sleep(5 * time.Millisecond)
	db.Close()
	done := make(chan struct{})
	go func() { a.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("auditor did not stop after close")
	}
}

func TestAuditorConcurrentWithUpdates(t *testing.T) {
	// Asynchronous audits must never report corruption while prescribed
	// updates run concurrently (the protection-latch discipline of §3.2).
	db := testDB(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 128})
	a := NewAuditor(db, time.Millisecond)
	failed := make(chan *CorruptionError, 1)
	a.OnCorruption = func(ce *CorruptionError) {
		select {
		case failed <- ce:
		default:
		}
	}
	a.Start()
	defer a.Stop()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			txn, err := db.Begin()
			if err != nil {
				t.Error(err)
				return
			}
			base := 4096 * g
			for i := 0; i < 300; i++ {
				key := wal.ObjectKey(base + i%16)
				if err := txn.BeginOp(1, key); err != nil {
					t.Error(err)
					return
				}
				u, err := txn.BeginUpdate(mem64(base+(i%16)*64), 48)
				if err != nil {
					t.Error(err)
					return
				}
				for j := range u.Bytes() {
					u.Bytes()[j] = byte(i + j)
				}
				if err := u.End(); err != nil {
					t.Error(err)
					return
				}
				if err := txn.CommitOp(1, key, wal.LogicalUndo{Op: testUndoOp, Key: key,
					Args: encodeTestUndo(mem64(base+(i%16)*64), make([]byte, 48))}); err != nil {
					t.Error(err)
					return
				}
			}
			if err := txn.Commit(); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	select {
	case ce := <-failed:
		t.Fatalf("audit failed during prescribed updates: %v", ce)
	default:
	}
	if err := db.Audit(); err != nil {
		t.Fatalf("final audit: %v", err)
	}
}

func TestAuditPassIncremental(t *testing.T) {
	db := testDB(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	pass, err := db.BeginAuditPass()
	if err != nil {
		t.Fatal(err)
	}
	// A concurrent pass (e.g. the checkpointer's certification audit
	// overlapping the background auditor) is permitted and independent.
	p2, err := db.BeginAuditPass()
	if err != nil {
		t.Fatal(err)
	}
	if err := finishWholePass(p2); err != nil {
		t.Fatalf("concurrent pass: %v", err)
	}
	steps := 0
	for {
		done, err := pass.Step(4096)
		if err != nil {
			t.Fatal(err)
		}
		steps++
		if done {
			break
		}
	}
	if steps != db.Internals().Arena.Size()/4096 {
		t.Fatalf("steps = %d, want %d", steps, db.Internals().Arena.Size()/4096)
	}
	if err := pass.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := pass.Finish(); err == nil {
		t.Fatal("double finish accepted")
	}
	if db.LastCleanAuditLSN() == 0 && db.AuditSerial() == 0 {
		t.Fatal("pass did not advance Audit_SN bookkeeping")
	}
	// A new pass may begin now; aborting it leaves the door open.
	p3, err := db.BeginAuditPass()
	if err != nil {
		t.Fatal(err)
	}
	p3.Abort()
	p4, err := db.BeginAuditPass()
	if err != nil {
		t.Fatalf("pass after abort: %v", err)
	}
	p4.Abort()
}

func finishWholePass(p *AuditPass) error {
	for {
		done, err := p.Step(0)
		if err != nil {
			return err
		}
		if done {
			return p.Finish()
		}
	}
}

func TestAuditPassDetectsMidPassCorruption(t *testing.T) {
	db := testDB(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64, DisableHeal: true})
	pass, err := db.BeginAuditPass()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pass.Step(4096); err != nil { // covers [0, 4096)
		t.Fatal(err)
	}
	// Corrupt a region the pass has NOT yet reached.
	db.Internals().Arena.Bytes()[8192+17] ^= 0x20
	for {
		done, err := pass.Step(4096)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	err = pass.Finish()
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("mid-pass corruption missed: %v", err)
	}
	if ce.Mismatches[0].Region != (8192+17)/64 {
		t.Fatalf("wrong region: %v", ce.Mismatches)
	}
}

func TestAuditorIncrementalSlices(t *testing.T) {
	db := testDB(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	a := NewAuditor(db, time.Millisecond)
	a.SliceBytes = db.Internals().Arena.Size() / 4 // four ticks per pass
	a.Start()
	deadline := time.Now().Add(10 * time.Second)
	for a.Sweeps() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("incremental auditor never completed a pass")
		}
		time.Sleep(time.Millisecond)
	}
	a.Stop()
	if a.Err() != nil {
		t.Fatalf("phantom corruption: %v", a.Err())
	}
	// Corruption is still caught by the sliced mode.
	db2 := testDB(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64, DisableHeal: true})
	detected := make(chan *CorruptionError, 1)
	a2 := NewAuditor(db2, time.Millisecond)
	a2.SliceBytes = db2.Internals().Arena.Size() / 8
	a2.OnCorruption = func(ce *CorruptionError) { detected <- ce }
	a2.Start()
	defer a2.Stop()
	db2.Internals().Arena.Bytes()[1234] ^= 0x01
	select {
	case <-detected:
	case <-time.After(10 * time.Second):
		t.Fatal("sliced auditor never detected corruption")
	}
}
