// Package core is the storage manager facade: it reproduces the Dalí
// system model the paper's protection schemes are built into (§2). The
// database is a byte arena directly "mapped" into the application's
// address space; updates are in place and must be bracketed by the
// prescribed interface (Txn.BeginUpdate / Update.End); reads of persistent
// data go through Txn.Read. A protection scheme (package protect) hooks
// both sides: codeword maintenance and prechecking, read logging, or page
// protection. Logging, checkpointing and the active transaction table
// follow the Dalí multi-level recovery design summarized in §2.1.
//
// A DB whose directory already holds a checkpoint must be opened through
// package recovery (restart recovery rebuilds the image from the
// checkpoint and log); core.Open itself only creates fresh databases.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ckpt"
	"repro/internal/iofault"
	"repro/internal/lockmgr"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/protect"
	"repro/internal/region"
	"repro/internal/wal"
)

// Config describes a database instance.
type Config struct {
	// Dir is the database directory (system log, checkpoints, anchor).
	Dir string
	// ArenaSize is the database image size in bytes (rounded up to pages).
	ArenaSize int
	// PageSize is the page size for checkpointing and hardware
	// protection; default 4096.
	PageSize int
	// Protect selects the corruption protection scheme; default Baseline.
	Protect protect.Config
	// LockTimeout bounds lock waits (deadlock resolution); default 2s.
	LockTimeout time.Duration
	// DisableLogCompaction keeps the full stable log after checkpoints
	// instead of compacting records below the certified CK_end.
	DisableLogCompaction bool
	// Workers sizes the shared scan worker pool used by startup/recovery
	// codeword recompute, audit sweeps (foreground, background and
	// checkpoint certification) and checkpoint-image codeword
	// computation. 0 defaults to GOMAXPROCS; 1 keeps every scan on the
	// calling goroutine.
	Workers int
	// LogStreams shards the system log into this many independent stream
	// files, each with its own latch, tail and group-commit queue, so
	// commit fsyncs overlap across streams (GOMAXPROCS is a good setting
	// for commit-heavy multicore workloads). 0 and 1 keep the single
	// historical system.log with its exact on-disk format; a database is
	// never reopened with fewer streams than it was written with (the
	// on-disk count is a floor). Maximum 64.
	LogStreams int
	// FS routes the durability I/O (system log, checkpoint images and
	// anchor, archives) through an iofault.FS. nil defaults to the real
	// filesystem; storage-fault campaigns install an iofault.FaultFS here.
	FS iofault.FS
}

// Normalized returns cfg with unset fields defaulted (PageSize 4096,
// LockTimeout 2s, Workers GOMAXPROCS) and validates the result. It
// replaces the old silent WithDefaults mutation: an impossible
// configuration is reported as a descriptive error instead of a
// downstream panic.
func (c Config) Normalized() (Config, error) {
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.LockTimeout == 0 {
		c.LockTimeout = 2 * time.Second
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.LogStreams == 0 {
		c.LogStreams = 1
	}
	if c.FS == nil {
		c.FS = iofault.OS
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Validate checks the configuration for errors that would otherwise
// surface as panics or obscure failures deep in the engine. Unset fields
// are judged by the default they would take. Called by Open and
// NewRecovered via Normalized.
func (c Config) Validate() error {
	if c.ArenaSize <= 0 {
		return fmt.Errorf("core: config: ArenaSize must be positive, got %d", c.ArenaSize)
	}
	pageSize := c.PageSize
	if pageSize == 0 {
		pageSize = 4096
	}
	if pageSize < 0 || pageSize&(pageSize-1) != 0 {
		return fmt.Errorf("core: config: PageSize must be a power of two, got %d", c.PageSize)
	}
	if c.LockTimeout < 0 {
		return fmt.Errorf("core: config: LockTimeout must not be negative, got %v", c.LockTimeout)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: config: Workers must not be negative, got %d", c.Workers)
	}
	if c.LogStreams < 0 || c.LogStreams > 64 {
		return fmt.Errorf("core: config: LogStreams must be in [0, 64], got %d", c.LogStreams)
	}
	pc := c.Protect.Defaulted()
	if schemeHasCodewords(pc.Kind) {
		if pc.RegionSize < region.MinRegionSize || pc.RegionSize&(pc.RegionSize-1) != 0 {
			return fmt.Errorf("core: config: protection region size must be a power of two >= %d, got %d",
				region.MinRegionSize, pc.RegionSize)
		}
		if pageSize < pc.RegionSize {
			return fmt.Errorf("core: config: PageSize %d is smaller than the protection region size %d; "+
				"the arena (a whole number of pages) could not be covered by whole regions", pageSize, pc.RegionSize)
		}
	}
	return nil
}

// schemeHasCodewords reports whether a scheme kind maintains a codeword
// table (and therefore has a meaningful region size).
func schemeHasCodewords(k protect.Kind) bool {
	switch k {
	case protect.KindDataCW, protect.KindPrecheck, protect.KindReadLog,
		protect.KindCWReadLog, protect.KindDeferredCW:
		return true
	}
	return false
}

// ErrCorruption is the sentinel matched by errors.Is for every corruption
// detection, whatever path found it (audit pass, read precheck,
// checkpoint certification). The concrete error is *CorruptionError,
// which carries the mismatched regions.
var ErrCorruption = errors.New("core: corruption detected")

// CorruptionError reports codeword mismatches found by an audit or a
// failed read precheck. Per the paper, the system reacts by noting the
// corrupt regions and "crashing" the database so corruption recovery runs
// as part of restart recovery (§4.3).
type CorruptionError struct {
	Mismatches []region.Mismatch
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("core: corruption detected in %d region(s): %v", len(e.Mismatches), e.Mismatches)
}

// Unwrap makes errors.Is(err, ErrCorruption) hold for every
// *CorruptionError.
func (e *CorruptionError) Unwrap() error { return ErrCorruption }

// ErrClosed is returned by operations on a closed database.
var ErrClosed = errors.New("core: database is closed")

// ErrLockTimeout re-exports the lock manager's timeout sentinel so
// callers of Txn.Lock (and of the subsystems layered above it) can write
// errors.Is(err, core.ErrLockTimeout) without importing lockmgr.
var ErrLockTimeout = lockmgr.ErrTimeout

// DB is a database instance.
type DB struct {
	cfg    Config
	arena  *mem.Arena
	scheme protect.Scheme
	log    *wal.LogSet
	att    *wal.ATT
	locks  *lockmgr.Manager
	ckpts  *ckpt.Set
	// pool is the shared scan worker pool (Config.Workers): recompute,
	// audit sweeps and checkpoint codeword computation all draw from it.
	pool *region.Pool

	// barrier is the update barrier: every state-changing bracket
	// (BeginUpdate..End, operation begin/commit, transaction begin/
	// commit/abort) holds it shared; the checkpointer takes it exclusive
	// to capture an update-consistent snapshot.
	barrier sync.RWMutex

	metaMu   sync.Mutex
	meta     map[string][]byte
	nextPage mem.PageID

	attachMu sync.Mutex
	attach   map[*attachID]any

	auditMu        sync.Mutex
	auditSN        uint64
	lastCleanAudit wal.LSN // the paper's Audit_SN

	// healAudits arms the audit-path heal ladder: mismatches found by an
	// audit pass are first offered to the scheme's ECC tier, and only
	// damage past the correction radius escalates to CorruptionError.
	healAudits bool
	// healGen counts image mutations by the ECC tier. The checkpointer
	// compares it across its snapshot-write-audit window: a heal in that
	// window may postdate the page capture, so the written image is
	// re-taken rather than certifying bytes the audit no longer saw.
	healGen atomic.Uint64

	closed atomic.Bool

	// reg is the database's metrics registry; every subsystem's counters
	// and histograms live in it, and DB.Metrics snapshots it. The handles
	// below are resolved once at build so hot paths never take the
	// registry lock.
	reg            *obs.Registry
	mTxnsBegun     *obs.Counter
	mTxnsCommitted *obs.Counter
	mTxnsAborted   *obs.Counter
	mOps           *obs.Counter
	mUpdates       *obs.Counter
	mReads         *obs.Counter
	mReadRec       *obs.Counter
	mAudits        *obs.Counter
	mAuditMismatch *obs.Counter
	mCorruptions   *obs.Counter
	mCkpts         *obs.Counter
	mHeals         *obs.Counter
	mHealRebuilds  *obs.Counter
	mHealEscalate  *obs.Counter
	hHealNS        *obs.Histogram
	hAuditNS       *obs.Histogram
	hCkptFlushNS   *obs.Histogram
	hCkptSnapNS    *obs.Histogram
	hCkptWriteNS   *obs.Histogram
	hCkptAuditNS   *obs.Histogram
	hCkptCertifyNS *obs.Histogram
	hCkptCompactNS *obs.Histogram
	hCkptTotalNS   *obs.Histogram
}

// Open creates a fresh database in cfg.Dir. It refuses a directory that
// already contains a checkpoint anchor: existing databases must be opened
// through package recovery so restart recovery can run.
func Open(cfg Config) (*DB, error) {
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: create dir: %w", err)
	}
	if _, err := os.Stat(anchorPath(cfg.Dir)); err == nil {
		return nil, fmt.Errorf("core: %s contains an existing database; open it with recovery.Open", cfg.Dir)
	}
	return build(cfg, nil)
}

func anchorPath(dir string) string { return dir + "/" + ckpt.AnchorFileName }

// build assembles a DB. loaded, when non-nil, carries recovered state
// (used by package recovery via NewRecovered).
func build(cfg Config, loaded *RecoveredState) (*DB, error) {
	reg := obs.NewRegistry()
	arena, err := mem.NewArena(cfg.ArenaSize, cfg.PageSize)
	if err != nil {
		return nil, err
	}
	if loaded != nil {
		if len(loaded.Image) != arena.Size() {
			arena.Close()
			return nil, fmt.Errorf("core: recovered image is %d bytes but arena is %d", len(loaded.Image), arena.Size())
		}
		//dbvet:allow guardedwrite recovered image is installed before protection is armed
		copy(arena.Bytes(), loaded.Image)
	}
	pool := region.NewPool(cfg.Workers)
	pool.Instrument(reg)
	pcfg := cfg.Protect
	pcfg.Obs = reg
	pcfg.Pool = pool
	// The scheme is built before the DB exists, so its OnHeal callback
	// late-binds to the db variable assigned below; no heal can fire
	// before construction completes (nothing calls Heal until then).
	var db *DB
	pcfg.OnHeal = func(res region.RepairResult, d time.Duration) {
		if db != nil {
			db.noteHeal(res, d)
		}
	}
	scheme, err := protect.New(arena, pcfg)
	if err != nil {
		arena.Close()
		return nil, err
	}
	log, err := wal.OpenLogSetFS(cfg.FS, cfg.Dir, cfg.PageSize, cfg.LogStreams)
	if err != nil {
		arena.Close()
		return nil, err
	}
	log.SetRegistry(reg)
	ckpts, err := ckpt.OpenFS(cfg.FS, cfg.Dir, cfg.PageSize)
	if err != nil {
		log.Close()
		arena.Close()
		return nil, err
	}
	ckpts.SetRegistry(reg)
	ckpts.SetPool(pool)
	log.RegisterDirtyNoter(ckpts)
	locks := lockmgr.New(cfg.LockTimeout)
	locks.SetRegistry(reg)

	db = &DB{
		cfg:    cfg,
		arena:  arena,
		scheme: scheme,
		log:    log,
		att:    wal.NewATT(1),
		locks:  locks,
		ckpts:  ckpts,
		pool:   pool,
		meta:   make(map[string][]byte),
		attach: make(map[*attachID]any),

		reg:            reg,
		mTxnsBegun:     reg.Counter(obs.NameTxnsBegun),
		mTxnsCommitted: reg.Counter(obs.NameTxnsCommitted),
		mTxnsAborted:   reg.Counter(obs.NameTxnsAborted),
		mOps:           reg.Counter(obs.NameOps),
		mUpdates:       reg.Counter(obs.NameUpdates),
		mReads:         reg.Counter(obs.NameReads),
		mReadRec:       reg.Counter(obs.NameReadRecords),
		mAudits:        reg.Counter(obs.NameAuditPasses),
		mAuditMismatch: reg.Counter(obs.NameAuditMismatches),
		mCorruptions:   reg.Counter(obs.NameCorruptions),
		mCkpts:         reg.Counter(obs.NameCheckpoints),
		mHeals:         reg.Counter(obs.NameHeals),
		mHealRebuilds:  reg.Counter(obs.NameHealRebuilds),
		mHealEscalate:  reg.Counter(obs.NameHealEscalations),
		hHealNS:        reg.Histogram(obs.NameHealNS),
		hAuditNS:       reg.Histogram(obs.NameAuditPassNS),
		hCkptFlushNS:   reg.Histogram(obs.NameCkptFlushNS),
		hCkptSnapNS:    reg.Histogram(obs.NameCkptSnapNS),
		hCkptWriteNS:   reg.Histogram(obs.NameCkptWriteNS),
		hCkptAuditNS:   reg.Histogram(obs.NameCkptAuditNS),
		hCkptCertifyNS: reg.Histogram(obs.NameCkptCertifyNS),
		hCkptCompactNS: reg.Histogram(obs.NameCkptCompactNS),
		hCkptTotalNS:   reg.Histogram(obs.NameCkptTotalNS),
	}
	db.healAudits = schemeHasCodewords(pcfg.Kind) && !pcfg.DisableECC && !pcfg.DisableHeal
	if loaded != nil {
		db.att = wal.NewATT(loaded.NextTxnID)
		if loaded.Meta != nil {
			if err := db.decodeMeta(loaded.Meta); err != nil {
				db.closeInternals()
				return nil, err
			}
		}
		db.auditSN = loaded.AuditSN
	}
	return db, nil
}

// RecoveredState is the state handed from restart recovery to NewRecovered.
type RecoveredState struct {
	// Image is the recovered database image (exactly arena-sized).
	Image []byte
	// Meta is the checkpointed metadata blob.
	Meta []byte
	// NextTxnID seeds transaction IDs above everything seen in the log.
	NextTxnID wal.TxnID
	// AuditSN seeds the audit serial-number counter.
	AuditSN uint64
}

// NewRecovered assembles a DB around state produced by restart recovery.
// The caller (package recovery) is responsible for having rolled back
// incomplete transactions before calling this; the image is trusted.
// Codewords (and hardware page protection) are then re-derived from it.
func NewRecovered(cfg Config, st *RecoveredState) (*DB, error) {
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	db, err := build(cfg, st)
	if err != nil {
		return nil, err
	}
	if err := db.scheme.Recompute(); err != nil {
		db.closeInternals()
		return nil, err
	}
	return db, nil
}

// Config returns the database's configuration.
func (db *DB) Config() Config { return db.cfg }

// Scheme exposes the active protection scheme.
func (db *DB) Scheme() protect.Scheme { return db.scheme }

// FS exposes the filesystem the durability paths write through (the real
// filesystem unless a fault-injecting one was configured).
func (db *DB) FS() iofault.FS { return db.cfg.FS }

// Internals bundles the engine's internal subsystems. It is the single
// sanctioned escape hatch below the transactional API, used by the
// storage layers (heap, hashidx), recovery, the shard router, and the
// inspection tools. Writing to the arena outside the prescribed update
// interface is direct physical corruption (the fault injector does so
// deliberately); everything else here is read-mostly plumbing.
type Internals struct {
	Arena       *mem.Arena
	Log         *wal.LogSet
	ATT         *wal.ATT
	Locks       *lockmgr.Manager
	Checkpoints *ckpt.Set
	ScanPool    *region.Pool
}

// Internals returns the internal-subsystem bundle. Prefer the
// transactional API; this exists for layers that genuinely need to see
// inside the engine (storage structures, recovery, tools).
func (db *DB) Internals() Internals {
	return Internals{
		Arena:       db.arena,
		Log:         db.log,
		ATT:         db.att,
		Locks:       db.locks,
		Checkpoints: db.ckpts,
		ScanPool:    db.pool,
	}
}

// PageSize reports the page size.
func (db *DB) PageSize() int { return db.cfg.PageSize }

// Metrics returns a snapshot of every metric in the database's registry:
// counters, gauges and histograms from the WAL, the codeword machinery,
// the protection scheme, the lock manager, the checkpointer and the
// transaction engine. Every value is an atomic load against a stable
// metric set — no torn reads, unlike the old Stats fields — though values
// of different metrics may be skewed by in-flight work; quiesce the
// database if exact cross-metric agreement is needed. The snapshot
// marshals directly to JSON.
func (db *DB) Metrics() obs.Snapshot {
	s := db.reg.Snapshot()
	// The page protector keeps its own call counter (it predates the
	// registry and is also used by the fault injector); mirror it into
	// the snapshot so one snapshot answers the paper's §5.3 question.
	s.Counters[obs.NameProtectCalls] = db.scheme.Protector().Calls()
	return s
}

// Observability exposes the database's metric registry, primarily for
// registering event sinks (obs.Sink) and for tests. Metric values should
// be read through Metrics.
func (db *DB) Observability() *obs.Registry { return db.reg }

// --- metadata and page allocation -----------------------------------------

// SetMeta stores an opaque metadata blob under key. Metadata is persisted
// with each checkpoint; callers that change metadata (e.g. the heap
// catalog on table creation) should checkpoint before relying on it
// surviving a crash.
func (db *DB) SetMeta(key string, value []byte) {
	db.metaMu.Lock()
	defer db.metaMu.Unlock()
	db.meta[key] = append([]byte(nil), value...)
}

// Meta returns the metadata blob stored under key.
func (db *DB) Meta(key string) ([]byte, bool) {
	db.metaMu.Lock()
	defer db.metaMu.Unlock()
	v, ok := db.meta[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// AllocPages reserves n contiguous pages of the arena and returns the
// first. Allocation state is part of the checkpointed metadata.
func (db *DB) AllocPages(n int) (mem.PageID, error) {
	db.metaMu.Lock()
	defer db.metaMu.Unlock()
	if int(db.nextPage)+n > db.arena.NumPages() {
		return 0, fmt.Errorf("core: arena exhausted: need %d pages, %d free",
			n, db.arena.NumPages()-int(db.nextPage))
	}
	first := db.nextPage
	db.nextPage += mem.PageID(n)
	return first, nil
}

// AllocatedPages reports how many pages have been reserved.
func (db *DB) AllocatedPages() int {
	db.metaMu.Lock()
	defer db.metaMu.Unlock()
	return int(db.nextPage)
}

const allocMetaKey = "\x00core.alloc"

// encodeMeta serializes the metadata map plus allocator state.
func (db *DB) encodeMeta() []byte {
	db.metaMu.Lock()
	defer db.metaMu.Unlock()
	keys := make([]string, 0, len(db.meta))
	for k := range db.meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b []byte
	b = binary.AppendUvarint(b, uint64(db.nextPage))
	b = binary.AppendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = binary.AppendUvarint(b, uint64(len(k)))
		b = append(b, k...)
		v := db.meta[k]
		b = binary.AppendUvarint(b, uint64(len(v)))
		b = append(b, v...)
	}
	return b
}

func (db *DB) decodeMeta(b []byte) error {
	db.metaMu.Lock()
	defer db.metaMu.Unlock()
	pos := 0
	next, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return fmt.Errorf("core: corrupt metadata")
	}
	pos += n
	db.nextPage = mem.PageID(next)
	count, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return fmt.Errorf("core: corrupt metadata")
	}
	pos += n
	db.meta = make(map[string][]byte, count)
	for i := uint64(0); i < count; i++ {
		klen, n := binary.Uvarint(b[pos:])
		if n <= 0 || pos+n+int(klen) > len(b) {
			return fmt.Errorf("core: corrupt metadata key")
		}
		pos += n
		k := string(b[pos : pos+int(klen)])
		pos += int(klen)
		vlen, n := binary.Uvarint(b[pos:])
		if n <= 0 || pos+n+int(vlen) > len(b) {
			return fmt.Errorf("core: corrupt metadata value")
		}
		pos += n
		db.meta[k] = append([]byte(nil), b[pos:pos+int(vlen)]...)
		pos += int(vlen)
	}
	return nil
}

// EncodeMetaForCheckpoint exposes metadata serialization to the recovery
// package (which writes the post-recovery checkpoint).
func (db *DB) EncodeMetaForCheckpoint() []byte { return db.encodeMeta() }

// --- audit -----------------------------------------------------------------

// Audit runs a full-database codeword audit, bracketed by audit log
// records. A clean audit advances Audit_SN (the LSN of its begin record).
// A dirty audit appends an audit-end record carrying the corrupt regions
// — making them visible to corruption recovery — and returns a
// *CorruptionError; the expected reaction is to crash the database and
// run delete-transaction recovery (paper §4.3).
func (db *DB) Audit() error {
	pass, err := db.BeginAuditPass()
	if err != nil {
		return err
	}
	for {
		done, err := pass.Step(0)
		if err != nil {
			pass.Abort()
			return err
		}
		if done {
			break
		}
	}
	return pass.Finish()
}

// noteHeal is the scheme's OnHeal callback: it accounts for an ECC
// repair that mutated state outside the logged update path. A repaired
// word changed arena bytes, so its pages are marked dirty (the next
// checkpoint snapshot must capture the healed contents — the wild write
// it undid was never logged) and the heal generation is bumped so an
// in-flight checkpoint re-takes its image. A plane rebuild touches only
// codeword-table metadata, which checkpoints never persist (codewords
// are re-derived at recovery), so it needs neither.
func (db *DB) noteHeal(res region.RepairResult, d time.Duration) {
	switch res.Verdict {
	case region.VerdictRepaired:
		db.mHeals.Inc()
		db.hHealNS.Observe(uint64(d.Nanoseconds()))
		ps := db.cfg.PageSize
		for p := int(res.Addr) / ps; p <= (int(res.Addr)+7)/ps; p++ {
			db.ckpts.NoteDirty(mem.PageID(p))
		}
		db.healGen.Add(1)
	case region.VerdictParityStale:
		db.mHealRebuilds.Inc()
	}
	if db.reg.HasSinks() {
		db.reg.Emit(obs.HealEvent{
			Region: uint64(res.Region), Verdict: res.Verdict.String(),
			WordAddr: uint64(res.Addr), Duration: d,
		})
	}
}

// HealGeneration reports the number of in-place ECC repairs performed
// over the database's life (tests, tools).
func (db *DB) HealGeneration() uint64 { return db.healGen.Load() }

// LastCleanAuditLSN reports the current Audit_SN: the log position at
// which the last clean audit began.
func (db *DB) LastCleanAuditLSN() wal.LSN {
	db.auditMu.Lock()
	defer db.auditMu.Unlock()
	return db.lastCleanAudit
}

// AuditSerial reports the current audit serial number.
func (db *DB) AuditSerial() uint64 {
	db.auditMu.Lock()
	defer db.auditMu.Unlock()
	return db.auditSN
}

// --- checkpointing ----------------------------------------------------------

// Checkpoint performs one ping-pong checkpoint: under the update barrier
// it flushes the log, snapshots the ATT (with local undo logs), metadata
// and dirty pages; it then writes the inactive image, audits the entire
// database, and — only if the audit is clean — certifies the image by
// toggling the anchor. The certified checkpoint is therefore free of both
// direct and indirect corruption (paper §4.2: if no page has direct
// corruption after the write, no indirect corruption could have occurred
// either). A dirty audit leaves the previous checkpoint current and
// returns *CorruptionError.
func (db *DB) Checkpoint() error {
	if db.closed.Load() {
		return ErrClosed
	}
	total := time.Now()
	// Snapshot, write and certification-audit form a retry loop against
	// the ECC tier: a heal landing inside the window may postdate the
	// snapshot's page capture, so the image on disk could hold the
	// pre-heal (corrupt) bytes while the audit — which saw the healed
	// arena — would certify it. A changed heal generation re-takes the
	// image; the heal marked its pages dirty, so the retried snapshot
	// captures the repaired contents.
	var snap *ckpt.Snapshot
	for attempt := 0; ; attempt++ {
		healGen := db.healGen.Load()
		db.barrier.Lock()
		if db.closed.Load() { // see Audit: Close drains the barrier
			db.barrier.Unlock()
			return ErrClosed
		}
		phase := time.Now()
		if err := db.log.Flush(); err != nil {
			db.barrier.Unlock()
			return err
		}
		db.notePhase("flush", db.hCkptFlushNS, phase)
		phase = time.Now()
		// The per-stream stable ends, captured under the exclusive barrier with
		// every stream just forced, are the epoch barrier: a consistent cut of
		// the log set that the checkpoint image is update-consistent with.
		// CKEnds[0] doubles as the historical scalar CK_end.
		ckEnds := db.log.StableEnds()
		attBytes := wal.EncodeEntries(db.att.Snapshot())
		metaBytes := db.encodeMeta()
		snap = db.ckpts.Begin(db.arena, attBytes, metaBytes, ckEnds)
		db.barrier.Unlock()
		db.notePhase("snapshot", db.hCkptSnapNS, phase)

		phase = time.Now()
		if err := db.ckpts.Write(snap, db.arena.Size()); err != nil {
			return err
		}
		db.notePhase("write", db.hCkptWriteNS, phase)
		phase = time.Now()
		if err := db.Audit(); err != nil {
			return err // CorruptionError: checkpoint not certified
		}
		db.notePhase("audit", db.hCkptAuditNS, phase)
		if db.healGen.Load() == healGen {
			break
		}
		if attempt >= 2 {
			return fmt.Errorf("core: checkpoint: ECC heals kept racing the image capture (%d attempts)", attempt+1)
		}
	}
	phase := time.Now()
	if err := db.ckpts.Certify(snap, db.LastCleanAuditLSN()); err != nil {
		return err
	}
	db.notePhase("certify", db.hCkptCertifyNS, phase)
	db.mCkpts.Inc()
	// Records below the certified CK_end are no longer needed by any
	// recovery path (restart and corruption recovery scan from the current
	// anchor's CK_end); compact them away so the log stays bounded.
	if !db.cfg.DisableLogCompaction {
		phase = time.Now()
		if err := db.log.CompactVector(snap.CKEnds); err != nil {
			return fmt.Errorf("core: log compaction: %w", err)
		}
		db.notePhase("compact", db.hCkptCompactNS, phase)
	}
	db.hCkptTotalNS.Since(total)
	if db.reg.HasSinks() {
		var seq uint64
		if a, ok := db.ckpts.Anchor(); ok {
			seq = a.SeqNo
		}
		db.reg.Emit(obs.CheckpointEvent{SeqNo: seq, Certified: true, Duration: time.Since(total)})
	}
	return nil
}

// notePhase records one checkpoint phase's duration in its histogram and,
// when a sink is registered, emits an obs.CheckpointPhaseEvent. The event
// carries the anchor's current sequence number (the phase may precede the
// certify that increments it).
func (db *DB) notePhase(name string, h *obs.Histogram, start time.Time) {
	h.Since(start)
	if db.reg.HasSinks() {
		var seq uint64
		if a, ok := db.ckpts.Anchor(); ok {
			seq = a.SeqNo
		}
		db.reg.Emit(obs.CheckpointPhaseEvent{SeqNo: seq, Phase: name, Duration: time.Since(start)})
	}
}

// schemeOpEnd forwards operation-end to schemes that defer work to it
// (grouped page exposure in the hardware scheme).
func (db *DB) schemeOpEnd() error {
	if oe, ok := db.scheme.(protect.OpEnder); ok {
		return oe.OpEnd()
	}
	return nil
}

// ExclusiveBarrier runs fn while holding the update barrier exclusively:
// no update bracket, operation boundary or transaction boundary can be in
// flight. Cache recovery uses this to repair regions in place.
func (db *DB) ExclusiveBarrier(fn func() error) error {
	db.barrier.Lock()
	defer db.barrier.Unlock()
	return fn()
}

// --- lifecycle ---------------------------------------------------------------

// Close flushes the log and releases resources. In-flight transactions
// are abandoned (they will be rolled back by restart recovery on the
// next open). Close drains in-flight audits and update brackets before
// unmapping the image, so a background auditor or checkpointer racing
// Close cannot touch freed memory; transactions must not be used
// concurrently with Close.
func (db *DB) Close() error {
	if !db.closed.CompareAndSwap(false, true) {
		return nil
	}
	db.quiesceForClose()
	err := db.log.Close()
	if cerr := db.arena.Close(); err == nil {
		err = cerr
	}
	return err
}

// quiesceForClose waits out in-flight audits (auditMu) and update/commit
// brackets (barrier). New ones are already refused: closed is set.
func (db *DB) quiesceForClose() {
	db.auditMu.Lock()
	db.auditMu.Unlock() //nolint:staticcheck // drain, not protect
	db.barrier.Lock()
	db.barrier.Unlock() //nolint:staticcheck // drain, not protect
}

// CloseClean checkpoints and then closes, so the next open recovers
// instantly from a fresh checkpoint.
func (db *DB) CloseClean() error {
	if err := db.Checkpoint(); err != nil {
		return err
	}
	return db.Close()
}

// Crash simulates a process crash: the in-memory log tail and database
// image are discarded without flushing. Used by tests and the corruption
// recovery path (the paper's reaction to a failed audit is to "cause the
// database to crash").
func (db *DB) Crash() error {
	if !db.closed.CompareAndSwap(false, true) {
		return nil
	}
	db.quiesceForClose()
	err := db.log.CloseWithoutFlush()
	if cerr := db.arena.Close(); err == nil {
		err = cerr
	}
	return err
}

func (db *DB) closeInternals() {
	db.log.Close()
	db.arena.Close()
}
