// Package core is the storage manager facade: it reproduces the Dalí
// system model the paper's protection schemes are built into (§2). The
// database is a byte arena directly "mapped" into the application's
// address space; updates are in place and must be bracketed by the
// prescribed interface (Txn.BeginUpdate / Update.End); reads of persistent
// data go through Txn.Read. A protection scheme (package protect) hooks
// both sides: codeword maintenance and prechecking, read logging, or page
// protection. Logging, checkpointing and the active transaction table
// follow the Dalí multi-level recovery design summarized in §2.1.
//
// A DB whose directory already holds a checkpoint must be opened through
// package recovery (restart recovery rebuilds the image from the
// checkpoint and log); core.Open itself only creates fresh databases.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ckpt"
	"repro/internal/lockmgr"
	"repro/internal/mem"
	"repro/internal/protect"
	"repro/internal/region"
	"repro/internal/wal"
)

// Config describes a database instance.
type Config struct {
	// Dir is the database directory (system log, checkpoints, anchor).
	Dir string
	// ArenaSize is the database image size in bytes (rounded up to pages).
	ArenaSize int
	// PageSize is the page size for checkpointing and hardware
	// protection; default 4096.
	PageSize int
	// Protect selects the corruption protection scheme; default Baseline.
	Protect protect.Config
	// LockTimeout bounds lock waits (deadlock resolution); default 2s.
	LockTimeout time.Duration
	// DisableLogCompaction keeps the full stable log after checkpoints
	// instead of compacting records below the certified CK_end.
	DisableLogCompaction bool
}

// WithDefaults returns cfg with unset fields defaulted.
func (c Config) WithDefaults() Config {
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.LockTimeout == 0 {
		c.LockTimeout = 2 * time.Second
	}
	return c
}

// CorruptionError reports codeword mismatches found by an audit or a
// failed read precheck. Per the paper, the system reacts by noting the
// corrupt regions and "crashing" the database so corruption recovery runs
// as part of restart recovery (§4.3).
type CorruptionError struct {
	Mismatches []region.Mismatch
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("core: corruption detected in %d region(s): %v", len(e.Mismatches), e.Mismatches)
}

// ErrClosed is returned by operations on a closed database.
var ErrClosed = errors.New("core: database is closed")

// Stats aggregates instrumentation counters for the benchmark harness.
type Stats struct {
	Txns        uint64
	Ops         uint64
	Updates     uint64
	Reads       uint64
	ReadRecords uint64
	Audits      uint64
	Checkpoints uint64
	// ProtectCalls is the number of page protect/unprotect calls made by
	// the hardware scheme (the paper's §5.3 page-touch observation).
	ProtectCalls uint64
}

// DB is a database instance.
type DB struct {
	cfg    Config
	arena  *mem.Arena
	scheme protect.Scheme
	log    *wal.SystemLog
	att    *wal.ATT
	locks  *lockmgr.Manager
	ckpts  *ckpt.Set

	// barrier is the update barrier: every state-changing bracket
	// (BeginUpdate..End, operation begin/commit, transaction begin/
	// commit/abort) holds it shared; the checkpointer takes it exclusive
	// to capture an update-consistent snapshot.
	barrier sync.RWMutex

	metaMu   sync.Mutex
	meta     map[string][]byte
	nextPage mem.PageID

	attachMu sync.Mutex
	attach   map[string]any

	auditMu        sync.Mutex
	auditSN        uint64
	lastCleanAudit wal.LSN // the paper's Audit_SN

	closed atomic.Bool

	statTxns    atomic.Uint64
	statOps     atomic.Uint64
	statUpdates atomic.Uint64
	statReads   atomic.Uint64
	statReadRec atomic.Uint64
	statAudits  atomic.Uint64
	statCkpts   atomic.Uint64
}

// Open creates a fresh database in cfg.Dir. It refuses a directory that
// already contains a checkpoint anchor: existing databases must be opened
// through package recovery so restart recovery can run.
func Open(cfg Config) (*DB, error) {
	cfg = cfg.WithDefaults()
	if cfg.ArenaSize <= 0 {
		return nil, fmt.Errorf("core: arena size required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: create dir: %w", err)
	}
	if _, err := os.Stat(anchorPath(cfg.Dir)); err == nil {
		return nil, fmt.Errorf("core: %s contains an existing database; open it with recovery.Open", cfg.Dir)
	}
	return build(cfg, nil)
}

func anchorPath(dir string) string { return dir + "/" + ckpt.AnchorFileName }

// build assembles a DB. loaded, when non-nil, carries recovered state
// (used by package recovery via NewRecovered).
func build(cfg Config, loaded *RecoveredState) (*DB, error) {
	arena, err := mem.NewArena(cfg.ArenaSize, cfg.PageSize)
	if err != nil {
		return nil, err
	}
	if loaded != nil {
		if len(loaded.Image) != arena.Size() {
			arena.Close()
			return nil, fmt.Errorf("core: recovered image is %d bytes but arena is %d", len(loaded.Image), arena.Size())
		}
		copy(arena.Bytes(), loaded.Image)
	}
	scheme, err := protect.New(arena, cfg.Protect)
	if err != nil {
		arena.Close()
		return nil, err
	}
	log, err := wal.OpenSystemLog(cfg.Dir, cfg.PageSize)
	if err != nil {
		arena.Close()
		return nil, err
	}
	ckpts, err := ckpt.Open(cfg.Dir, cfg.PageSize)
	if err != nil {
		log.Close()
		arena.Close()
		return nil, err
	}
	log.RegisterDirtyNoter(ckpts)

	db := &DB{
		cfg:    cfg,
		arena:  arena,
		scheme: scheme,
		log:    log,
		att:    wal.NewATT(1),
		locks:  lockmgr.New(cfg.LockTimeout),
		ckpts:  ckpts,
		meta:   make(map[string][]byte),
		attach: make(map[string]any),
	}
	if loaded != nil {
		db.att = wal.NewATT(loaded.NextTxnID)
		if loaded.Meta != nil {
			if err := db.decodeMeta(loaded.Meta); err != nil {
				db.closeInternals()
				return nil, err
			}
		}
		db.auditSN = loaded.AuditSN
	}
	return db, nil
}

// RecoveredState is the state handed from restart recovery to NewRecovered.
type RecoveredState struct {
	// Image is the recovered database image (exactly arena-sized).
	Image []byte
	// Meta is the checkpointed metadata blob.
	Meta []byte
	// NextTxnID seeds transaction IDs above everything seen in the log.
	NextTxnID wal.TxnID
	// AuditSN seeds the audit serial-number counter.
	AuditSN uint64
}

// NewRecovered assembles a DB around state produced by restart recovery.
// The caller (package recovery) is responsible for having rolled back
// incomplete transactions before calling this; the image is trusted.
// Codewords (and hardware page protection) are then re-derived from it.
func NewRecovered(cfg Config, st *RecoveredState) (*DB, error) {
	cfg = cfg.WithDefaults()
	db, err := build(cfg, st)
	if err != nil {
		return nil, err
	}
	if err := db.scheme.Recompute(); err != nil {
		db.closeInternals()
		return nil, err
	}
	return db, nil
}

// Config returns the database's configuration.
func (db *DB) Config() Config { return db.cfg }

// Arena exposes the database image. Writing through it outside the
// prescribed interface is direct physical corruption (used deliberately
// by the fault injector).
func (db *DB) Arena() *mem.Arena { return db.arena }

// Scheme exposes the active protection scheme.
func (db *DB) Scheme() protect.Scheme { return db.scheme }

// Log exposes the system log.
func (db *DB) Log() *wal.SystemLog { return db.log }

// ATT exposes the active transaction table.
func (db *DB) ATT() *wal.ATT { return db.att }

// Locks exposes the lock manager.
func (db *DB) Locks() *lockmgr.Manager { return db.locks }

// Checkpoints exposes the checkpoint set.
func (db *DB) Checkpoints() *ckpt.Set { return db.ckpts }

// PageSize reports the page size.
func (db *DB) PageSize() int { return db.cfg.PageSize }

// Stats returns a snapshot of the instrumentation counters.
func (db *DB) Stats() Stats {
	return Stats{
		Txns:         db.statTxns.Load(),
		Ops:          db.statOps.Load(),
		Updates:      db.statUpdates.Load(),
		Reads:        db.statReads.Load(),
		ReadRecords:  db.statReadRec.Load(),
		Audits:       db.statAudits.Load(),
		Checkpoints:  db.statCkpts.Load(),
		ProtectCalls: db.scheme.Protector().Calls(),
	}
}

// --- metadata and page allocation -----------------------------------------

// SetMeta stores an opaque metadata blob under key. Metadata is persisted
// with each checkpoint; callers that change metadata (e.g. the heap
// catalog on table creation) should checkpoint before relying on it
// surviving a crash.
func (db *DB) SetMeta(key string, value []byte) {
	db.metaMu.Lock()
	defer db.metaMu.Unlock()
	db.meta[key] = append([]byte(nil), value...)
}

// Meta returns the metadata blob stored under key.
func (db *DB) Meta(key string) ([]byte, bool) {
	db.metaMu.Lock()
	defer db.metaMu.Unlock()
	v, ok := db.meta[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// AllocPages reserves n contiguous pages of the arena and returns the
// first. Allocation state is part of the checkpointed metadata.
func (db *DB) AllocPages(n int) (mem.PageID, error) {
	db.metaMu.Lock()
	defer db.metaMu.Unlock()
	if int(db.nextPage)+n > db.arena.NumPages() {
		return 0, fmt.Errorf("core: arena exhausted: need %d pages, %d free",
			n, db.arena.NumPages()-int(db.nextPage))
	}
	first := db.nextPage
	db.nextPage += mem.PageID(n)
	return first, nil
}

// AllocatedPages reports how many pages have been reserved.
func (db *DB) AllocatedPages() int {
	db.metaMu.Lock()
	defer db.metaMu.Unlock()
	return int(db.nextPage)
}

// Attach stores a runtime-only object under key (e.g. the heap catalog
// cache); attachments are not persisted.
func (db *DB) Attach(key string, v any) {
	db.attachMu.Lock()
	defer db.attachMu.Unlock()
	db.attach[key] = v
}

// Attachment fetches a runtime attachment.
func (db *DB) Attachment(key string) (any, bool) {
	db.attachMu.Lock()
	defer db.attachMu.Unlock()
	v, ok := db.attach[key]
	return v, ok
}

const allocMetaKey = "\x00core.alloc"

// encodeMeta serializes the metadata map plus allocator state.
func (db *DB) encodeMeta() []byte {
	db.metaMu.Lock()
	defer db.metaMu.Unlock()
	keys := make([]string, 0, len(db.meta))
	for k := range db.meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b []byte
	b = binary.AppendUvarint(b, uint64(db.nextPage))
	b = binary.AppendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = binary.AppendUvarint(b, uint64(len(k)))
		b = append(b, k...)
		v := db.meta[k]
		b = binary.AppendUvarint(b, uint64(len(v)))
		b = append(b, v...)
	}
	return b
}

func (db *DB) decodeMeta(b []byte) error {
	db.metaMu.Lock()
	defer db.metaMu.Unlock()
	pos := 0
	next, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return fmt.Errorf("core: corrupt metadata")
	}
	pos += n
	db.nextPage = mem.PageID(next)
	count, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return fmt.Errorf("core: corrupt metadata")
	}
	pos += n
	db.meta = make(map[string][]byte, count)
	for i := uint64(0); i < count; i++ {
		klen, n := binary.Uvarint(b[pos:])
		if n <= 0 || pos+n+int(klen) > len(b) {
			return fmt.Errorf("core: corrupt metadata key")
		}
		pos += n
		k := string(b[pos : pos+int(klen)])
		pos += int(klen)
		vlen, n := binary.Uvarint(b[pos:])
		if n <= 0 || pos+n+int(vlen) > len(b) {
			return fmt.Errorf("core: corrupt metadata value")
		}
		pos += n
		db.meta[k] = append([]byte(nil), b[pos:pos+int(vlen)]...)
		pos += int(vlen)
	}
	return nil
}

// EncodeMetaForCheckpoint exposes metadata serialization to the recovery
// package (which writes the post-recovery checkpoint).
func (db *DB) EncodeMetaForCheckpoint() []byte { return db.encodeMeta() }

// --- audit -----------------------------------------------------------------

// Audit runs a full-database codeword audit, bracketed by audit log
// records. A clean audit advances Audit_SN (the LSN of its begin record).
// A dirty audit appends an audit-end record carrying the corrupt regions
// — making them visible to corruption recovery — and returns a
// *CorruptionError; the expected reaction is to crash the database and
// run delete-transaction recovery (paper §4.3).
func (db *DB) Audit() error {
	pass, err := db.BeginAuditPass()
	if err != nil {
		return err
	}
	for {
		done, err := pass.Step(0)
		if err != nil {
			pass.Abort()
			return err
		}
		if done {
			break
		}
	}
	return pass.Finish()
}

// LastCleanAuditLSN reports the current Audit_SN: the log position at
// which the last clean audit began.
func (db *DB) LastCleanAuditLSN() wal.LSN {
	db.auditMu.Lock()
	defer db.auditMu.Unlock()
	return db.lastCleanAudit
}

// AuditSerial reports the current audit serial number.
func (db *DB) AuditSerial() uint64 {
	db.auditMu.Lock()
	defer db.auditMu.Unlock()
	return db.auditSN
}

// --- checkpointing ----------------------------------------------------------

// Checkpoint performs one ping-pong checkpoint: under the update barrier
// it flushes the log, snapshots the ATT (with local undo logs), metadata
// and dirty pages; it then writes the inactive image, audits the entire
// database, and — only if the audit is clean — certifies the image by
// toggling the anchor. The certified checkpoint is therefore free of both
// direct and indirect corruption (paper §4.2: if no page has direct
// corruption after the write, no indirect corruption could have occurred
// either). A dirty audit leaves the previous checkpoint current and
// returns *CorruptionError.
func (db *DB) Checkpoint() error {
	if db.closed.Load() {
		return ErrClosed
	}
	db.barrier.Lock()
	if db.closed.Load() { // see Audit: Close drains the barrier
		db.barrier.Unlock()
		return ErrClosed
	}
	if err := db.log.Flush(); err != nil {
		db.barrier.Unlock()
		return err
	}
	ckEnd := db.log.StableEnd()
	attBytes := wal.EncodeEntries(db.att.Snapshot())
	metaBytes := db.encodeMeta()
	snap := db.ckpts.Begin(db.arena, attBytes, metaBytes, ckEnd)
	db.barrier.Unlock()

	if err := db.ckpts.Write(snap, db.arena.Size()); err != nil {
		return err
	}
	if err := db.Audit(); err != nil {
		return err // CorruptionError: checkpoint not certified
	}
	if err := db.ckpts.Certify(snap, db.LastCleanAuditLSN()); err != nil {
		return err
	}
	db.statCkpts.Add(1)
	// Records below the certified CK_end are no longer needed by any
	// recovery path (restart and corruption recovery scan from the current
	// anchor's CK_end); compact them away so the log stays bounded.
	if !db.cfg.DisableLogCompaction {
		if err := db.log.Compact(snap.CKEnd); err != nil {
			return fmt.Errorf("core: log compaction: %w", err)
		}
	}
	return nil
}

// schemeOpEnd forwards operation-end to schemes that defer work to it
// (grouped page exposure in the hardware scheme).
func (db *DB) schemeOpEnd() error {
	if oe, ok := db.scheme.(protect.OpEnder); ok {
		return oe.OpEnd()
	}
	return nil
}

// ExclusiveBarrier runs fn while holding the update barrier exclusively:
// no update bracket, operation boundary or transaction boundary can be in
// flight. Cache recovery uses this to repair regions in place.
func (db *DB) ExclusiveBarrier(fn func() error) error {
	db.barrier.Lock()
	defer db.barrier.Unlock()
	return fn()
}

// --- lifecycle ---------------------------------------------------------------

// Close flushes the log and releases resources. In-flight transactions
// are abandoned (they will be rolled back by restart recovery on the
// next open). Close drains in-flight audits and update brackets before
// unmapping the image, so a background auditor or checkpointer racing
// Close cannot touch freed memory; transactions must not be used
// concurrently with Close.
func (db *DB) Close() error {
	if !db.closed.CompareAndSwap(false, true) {
		return nil
	}
	db.quiesceForClose()
	err := db.log.Close()
	if cerr := db.arena.Close(); err == nil {
		err = cerr
	}
	return err
}

// quiesceForClose waits out in-flight audits (auditMu) and update/commit
// brackets (barrier). New ones are already refused: closed is set.
func (db *DB) quiesceForClose() {
	db.auditMu.Lock()
	db.auditMu.Unlock() //nolint:staticcheck // drain, not protect
	db.barrier.Lock()
	db.barrier.Unlock() //nolint:staticcheck // drain, not protect
}

// CloseClean checkpoints and then closes, so the next open recovers
// instantly from a fresh checkpoint.
func (db *DB) CloseClean() error {
	if err := db.Checkpoint(); err != nil {
		return err
	}
	return db.Close()
}

// Crash simulates a process crash: the in-memory log tail and database
// image are discarded without flushing. Used by tests and the corruption
// recovery path (the paper's reaction to a failed audit is to "cause the
// database to crash").
func (db *DB) Crash() error {
	if !db.closed.CompareAndSwap(false, true) {
		return nil
	}
	db.quiesceForClose()
	err := db.log.CloseWithoutFlush()
	if cerr := db.arena.Close(); err == nil {
		err = cerr
	}
	return err
}

func (db *DB) closeInternals() {
	db.log.Close()
	db.arena.Close()
}
