package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/lockmgr"
	"repro/internal/obs"
	"repro/internal/protect"
	"repro/internal/wal"
)

// TestBeginCtxRefusesDeadContext pins the cheapest cancellation point:
// a context that is already done never admits a transaction.
func TestBeginCtxRefusesDeadContext(t *testing.T) {
	db := testDB(t, protect.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.BeginCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("BeginCtx(canceled) = %v, want context.Canceled", err)
	}
}

// TestLockCtxCancelUnblocksWait parks one transaction behind another's
// exclusive lock and cancels its context mid-wait: the waiter must
// return promptly with the context error, take nothing, and leave both
// transactions usable (waiter abortable, holder committable).
func TestLockCtxCancelUnblocksWait(t *testing.T) {
	db, err := Open(Config{
		Dir:         t.TempDir(),
		ArenaSize:   1 << 16,
		LockTimeout: 30 * time.Second, // far beyond the test: cancellation must win
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	key := wal.ObjectKey(0x5151)
	holder, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := holder.Lock(key, lockmgr.Exclusive); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	waiter, err := db.BeginCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}

	lockErr := make(chan error, 1)
	go func() { lockErr <- waiter.Lock(key, lockmgr.Exclusive) }()

	// Let the waiter queue up, then cancel it.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-lockErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled lock wait returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled lock wait did not return")
	}

	if got := db.Metrics().Counter(obs.NameLockCancels); got != 1 {
		t.Fatalf("lockmgr.cancels = %d, want 1", got)
	}
	if err := waiter.Abort(); err != nil {
		t.Fatalf("aborting canceled waiter: %v", err)
	}
	if err := holder.Commit(); err != nil {
		t.Fatalf("holder commit after waiter cancellation: %v", err)
	}
}

// TestLockCtxExplicitOverride checks the per-wait context: a transaction
// begun with a background context can still bound one lock wait.
func TestLockCtxExplicitOverride(t *testing.T) {
	db, err := Open(Config{
		Dir:         t.TempDir(),
		ArenaSize:   1 << 16,
		LockTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	key := wal.ObjectKey(0x7272)
	holder, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := holder.Lock(key, lockmgr.Exclusive); err != nil {
		t.Fatal(err)
	}
	waiter, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := waiter.LockCtx(ctx, key, lockmgr.Exclusive); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("LockCtx past deadline = %v, want DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("deadline-bounded wait took %v", waited)
	}
	if err := waiter.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := holder.Abort(); err != nil {
		t.Fatal(err)
	}
}

// TestCommitRefusedOnDeadContext: cancellation before the commit record
// is appended refuses the commit outright — nothing was logged, so the
// transaction is still abortable and its effects roll back.
func TestCommitRefusedOnDeadContext(t *testing.T) {
	db := testDB(t, protect.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	txn, err := db.BeginCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	opUpdate(t, txn, wal.ObjectKey(0x11), 64, []byte{0xAA, 0xBB})
	cancel()
	err = txn.Commit()
	if err == nil {
		t.Fatal("Commit with dead context succeeded")
	}
	if errors.Is(err, ErrCommitUnresolved) {
		t.Fatalf("pre-append refusal misreported as unresolved: %v", err)
	}
	if err := txn.Abort(); err != nil {
		t.Fatalf("abort after refused commit: %v", err)
	}
	// The update must be rolled back.
	check, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer check.Abort()
	buf, err := check.Read(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if buf[0] == 0xAA && buf[1] == 0xBB {
		t.Fatal("refused commit's update survived abort")
	}
}
