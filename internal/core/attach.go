package core

// Typed runtime attachments. Subsystems layered over the core (the heap,
// the hash index) cache derived control structures — catalog maps, page
// directories — on the DB they belong to. These are transient control
// structures in the paper's sense (§3): rebuilt from persistent state on
// open, never checkpointed, and deliberately outside codeword protection.
//
// The old API stored attachments under bare strings and forced every
// caller through a type assertion:
//
//	v, ok := db.Attachment("heap.catalog.live")
//	cat := v.(*catalog) // panics if another package reused the key
//
// AttachKey replaces it. A key is a typed token: the value stored under a
// key has the key's type parameter, checked at compile time, and two keys
// never collide even if created with the same name (identity is the key
// value itself, not the string).

// attachID is the identity behind an AttachKey. Keys compare by pointer,
// so distinct NewAttachKey calls can never alias.
type attachID struct{ name string }

// AttachKey is a typed handle for storing one runtime-only value of type T
// on a DB. Create one per cached structure with NewAttachKey, typically in
// a package-level var. The zero AttachKey is invalid.
type AttachKey[T any] struct{ id *attachID }

// NewAttachKey returns a fresh key. The name is diagnostic only (it never
// collides with other keys, whatever their name).
func NewAttachKey[T any](name string) AttachKey[T] {
	return AttachKey[T]{id: &attachID{name: name}}
}

// Name reports the diagnostic name the key was created with.
func (k AttachKey[T]) Name() string { return k.id.name }

// Get fetches the value stored under k, reporting whether one is present.
func (k AttachKey[T]) Get(db *DB) (T, bool) {
	db.attachMu.Lock()
	defer db.attachMu.Unlock()
	v, ok := db.attach[k.id]
	if !ok {
		var zero T
		return zero, false
	}
	return v.(T), true
}

// Set stores v under k, replacing any previous value.
func (k AttachKey[T]) Set(db *DB, v T) {
	db.attachMu.Lock()
	defer db.attachMu.Unlock()
	db.attach[k.id] = v
}

// GetOrInit returns the value stored under k, calling init to build it if
// absent. The whole check-build-store sequence runs under the attachment
// lock, so two concurrent openers of the same cache get the same value —
// init must therefore not touch attachments itself. An init error leaves
// nothing stored.
func (k AttachKey[T]) GetOrInit(db *DB, init func() (T, error)) (T, error) {
	db.attachMu.Lock()
	defer db.attachMu.Unlock()
	if v, ok := db.attach[k.id]; ok {
		return v.(T), nil
	}
	v, err := init()
	if err != nil {
		var zero T
		return zero, err
	}
	db.attach[k.id] = v
	return v, nil
}
