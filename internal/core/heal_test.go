package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/protect"
	"repro/internal/wal"
)

// TestAuditHealsWildWrite: with the ECC tier on (the default for
// codeword schemes), an audit that finds a single-word wild write
// repairs it in place and finishes clean — no CorruptionError, no
// crash, no delete-transaction recovery.
func TestAuditHealsWildWrite(t *testing.T) {
	db := testDB(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	opUpdate(t, txn, 1, 500, []byte("valuable"))
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	shadow := append([]byte(nil), db.Internals().Arena.Bytes()...)

	db.Internals().Arena.Bytes()[500] ^= 0xFF // wild write
	if err := db.Audit(); err != nil {
		t.Fatalf("audit of repairable corruption: %v", err)
	}
	if !bytes.Equal(db.Internals().Arena.Bytes(), shadow) {
		t.Fatal("arena not byte-identical after heal")
	}
	m := db.Metrics()
	if m.Counters[obs.NameHeals] != 1 {
		t.Fatalf("heals = %d, want 1", m.Counters[obs.NameHeals])
	}
	if m.Counters[obs.NameCorruptions] != 0 {
		t.Fatalf("corruptions = %d, want 0", m.Counters[obs.NameCorruptions])
	}
	// The repair latency histogram is in the snapshot.
	if h, ok := m.Histograms[obs.NameHealNS]; !ok || h.Count != 1 {
		t.Fatalf("heal_ns histogram missing or empty: %+v", h)
	}
	if db.HealGeneration() != 1 {
		t.Fatalf("heal generation = %d", db.HealGeneration())
	}
}

// TestHealedPassDoesNotAdvanceAuditSN: a pass that healed was not clean
// from its begin record onward, so Audit_SN must stay put until a fully
// clean pass runs.
func TestHealedPassDoesNotAdvanceAuditSN(t *testing.T) {
	db := testDB(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	if err := db.Audit(); err != nil {
		t.Fatal(err)
	}
	sn := db.LastCleanAuditLSN()
	db.Internals().Arena.Bytes()[300] ^= 0x10
	if err := db.Audit(); err != nil {
		t.Fatalf("healing audit: %v", err)
	}
	if got := db.LastCleanAuditLSN(); got != sn {
		t.Fatalf("healed pass advanced Audit_SN %d -> %d", sn, got)
	}
	if err := db.Audit(); err != nil {
		t.Fatal(err)
	}
	if got := db.LastCleanAuditLSN(); got <= sn {
		t.Fatalf("clean pass did not advance Audit_SN (still %d)", got)
	}
}

// TestAuditEscalatesBeyondRadius: two words of one region smashed with
// distinct deltas are past the correction radius; the audit must report
// CorruptionError exactly as before the ECC tier existed, with the
// escalation counted.
func TestAuditEscalatesBeyondRadius(t *testing.T) {
	db := testDB(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	a := db.Internals().Arena.Bytes()
	a[128] ^= 0x01
	a[140] ^= 0x02
	err := db.Audit()
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("audit of double-word damage: %v", err)
	}
	if len(ce.Mismatches) != 1 || ce.Mismatches[0].Region != 2 {
		t.Fatalf("mismatches: %v", ce.Mismatches)
	}
	m := db.Metrics()
	if m.Counters[obs.NameHealEscalations] != 1 {
		t.Fatalf("escalations = %d, want 1", m.Counters[obs.NameHealEscalations])
	}
	if m.Counters[obs.NameHeals] != 0 {
		t.Fatalf("heals = %d, want 0", m.Counters[obs.NameHeals])
	}
}

// TestPrecheckReadHealNotesDirtyPage: a read-path heal mutates the image
// outside the logged update path, so core's OnHeal wiring must mark the
// healed page dirty — otherwise the next checkpoint would never capture
// the repaired bytes (the wild write it undid was never logged).
func TestPrecheckReadHealNotesDirtyPage(t *testing.T) {
	db := testDB(t, protect.Config{Kind: protect.KindPrecheck, RegionSize: 64})
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	opUpdate(t, txn, 1, 4096+32, []byte("resident"))
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Internals().Arena.Bytes()[4096+33] ^= 0x40 // wild write on page 1
	txn2, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer txn2.Abort()
	if _, err := txn2.Read(4096+32, 8); err != nil {
		t.Fatalf("read of repairable region: %v", err)
	}
	m := db.Metrics()
	if m.Counters[obs.NamePrecheckHeals] != 1 {
		t.Fatalf("precheck heals = %d, want 1", m.Counters[obs.NamePrecheckHeals])
	}
	if m.Counters[obs.NameHeals] != 1 {
		t.Fatalf("core heals = %d, want 1 (OnHeal not wired?)", m.Counters[obs.NameHeals])
	}
	if db.HealGeneration() != 1 {
		t.Fatal("read-path heal did not bump the heal generation")
	}
}

// TestCheckpointRetakesImageAfterMidWindowHeal builds the corrupt-image
// certification hazard deterministically: a page is made dirty by a
// legitimate update, then wild-written, so the checkpoint's snapshot
// captures the corrupt bytes. The certification audit heals the arena —
// and without the heal-generation retry it would certify the corrupt
// image it no longer sees. The retry must re-take the snapshot (the heal
// marked the page dirty) and certify a clean image, observable as two
// "write" phases in one Checkpoint call.
func TestCheckpointRetakesImageAfterMidWindowHeal(t *testing.T) {
	db := testDB(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	opUpdate(t, txn, 1, 200, []byte("dirtying the page"))
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	var writePhases atomic.Int64
	db.Observability().AddSink(obs.SinkFunc(func(e obs.Event) {
		if pe, ok := e.(obs.CheckpointPhaseEvent); ok && pe.Phase == "write" {
			writePhases.Add(1)
		}
	}))
	db.Internals().Arena.Bytes()[208] ^= 0xAA // wild write on the dirty page
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint with mid-window heal: %v", err)
	}
	if db.Metrics().Counters[obs.NameHeals] != 1 {
		t.Fatal("certification audit did not heal")
	}
	if got := writePhases.Load(); got != 2 {
		t.Fatalf("checkpoint wrote the image %d time(s), want 2 (retry after heal)", got)
	}
	// A second checkpoint sees a stable heal generation: one write.
	writePhases.Store(0)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := writePhases.Load(); got != 1 {
		t.Fatalf("quiescent checkpoint wrote %d time(s), want 1", got)
	}
}

// TestConcurrentHealUnderLoad runs prescribed-update load, a background
// auditor, and a wild-write injector together (run under -race by make
// vet). Every injected single-word smash must be healed — the auditor
// never reports corruption — while transactions keep committing.
func TestConcurrentHealUnderLoad(t *testing.T) {
	db := testDB(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	a := NewAuditor(db, time.Millisecond)
	var escalated atomic.Int32
	a.OnCorruption = func(*CorruptionError) { escalated.Add(1) }
	a.Start()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writers: each owns a 1KB slab well away from the injection area.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := mem.Addr(32768 + w*1024)
			rng := rand.New(rand.NewSource(int64(w)))
			buf := make([]byte, 48)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				txn, err := db.Begin()
				if err != nil {
					return // db closing
				}
				rng.Read(buf)
				addr := base + mem.Addr(rng.Intn(1024-len(buf)))
				opUpdate(t, txn, wal.ObjectKey(1000+w), addr, buf)
				if err := txn.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Injector: smash words in the low 16KB (no writer touches it), then
	// wait for the auditor's heal before the next shot so each injection
	// is a clean single-word experiment.
	rng := rand.New(rand.NewSource(99))
	arena := db.Internals().Arena.Bytes()
	const shots = 25
	for i := 0; i < shots; i++ {
		addr := rng.Intn(16384/8) * 8
		w := arena[addr : addr+8]
		binary.LittleEndian.PutUint64(w, binary.LittleEndian.Uint64(w)^(1+rng.Uint64()%0xFFFF))
		deadline := time.Now().Add(10 * time.Second)
		for db.Metrics().Counters[obs.NameHeals] < uint64(i+1) {
			if time.Now().After(deadline) {
				t.Fatalf("shot %d never healed", i)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	close(stop)
	wg.Wait()
	a.Stop()
	if n := escalated.Load(); n != 0 {
		t.Fatalf("%d corruption escalations under single-word load, want 0", n)
	}
	if err := db.Audit(); err != nil {
		t.Fatalf("final audit: %v", err)
	}
	if got := db.Metrics().Counters[obs.NameHeals]; got < shots {
		t.Fatalf("heals = %d, want >= %d", got, shots)
	}
}
