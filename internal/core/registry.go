package core

import (
	"fmt"
	"sync"

	"repro/internal/wal"
)

// UndoHandler logically undoes a committed lower-level operation by
// executing a compensating operation against t: it must call t.BeginOp,
// perform its physical updates through the prescribed interface, and
// finish with t.CommitCompensationOp. Handlers run both during normal
// transaction rollback and during the undo phase of restart recovery.
type UndoHandler func(t *Txn, u wal.LogicalUndo) error

var (
	registryMu sync.RWMutex
	registry   = make(map[uint8]UndoHandler)
)

// RegisterUndoOp installs the handler for a logical undo opcode. Storage
// layers register their opcodes from init functions (see package heap).
// Registering the same opcode twice panics: opcodes are a global protocol
// between logging and recovery.
func RegisterUndoOp(op uint8, h UndoHandler) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[op]; dup {
		panic(fmt.Sprintf("core: duplicate undo opcode %d", op))
	}
	registry[op] = h
}

// undoHandler looks up the handler for op.
func undoHandler(op uint8) (UndoHandler, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	h, ok := registry[op]
	if !ok {
		return nil, fmt.Errorf("core: no undo handler registered for opcode %d", op)
	}
	return h, nil
}
