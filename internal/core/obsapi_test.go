package core

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/lockmgr"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/protect"
	"repro/internal/wal"
)

func TestConfigValidate(t *testing.T) {
	valid := Config{ArenaSize: 1 << 16}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error
	}{
		{"zero arena", Config{}, "ArenaSize"},
		{"negative arena", Config{ArenaSize: -4096}, "ArenaSize"},
		{"non-power-of-two page", Config{ArenaSize: 1 << 16, PageSize: 3000}, "PageSize"},
		{"negative page", Config{ArenaSize: 1 << 16, PageSize: -4096}, "PageSize"},
		{"negative lock timeout", Config{ArenaSize: 1 << 16, LockTimeout: -time.Second}, "LockTimeout"},
		{"negative workers", Config{ArenaSize: 1 << 16, Workers: -2}, "Workers"},
		{"page smaller than region", Config{
			ArenaSize: 1 << 16, PageSize: 4096,
			Protect: protect.Config{Kind: protect.KindPrecheck, RegionSize: 8192},
		}, "smaller than the protection region"},
		{"non-power-of-two region", Config{
			ArenaSize: 1 << 16,
			Protect:   protect.Config{Kind: protect.KindDataCW, RegionSize: 48},
		}, "region size"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", tc.cfg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if _, err := Open(tc.cfg); err == nil {
				t.Fatal("Open accepted a config Validate rejects")
			}
		})
	}
	// A large region is fine when the page covers it.
	big := Config{
		ArenaSize: 1 << 16, PageSize: 8192,
		Protect: protect.Config{Kind: protect.KindPrecheck, RegionSize: 8192},
	}
	if err := big.Validate(); err != nil {
		t.Fatalf("8K region with 8K pages rejected: %v", err)
	}
}

// TestConfigWorkers checks the scan-pool sizing knob: 0 defaults to
// GOMAXPROCS, an explicit count is honored, and the pool is wired into
// the open database.
func TestConfigWorkers(t *testing.T) {
	norm, err := Config{ArenaSize: 1 << 16}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if want := runtime.GOMAXPROCS(0); norm.Workers != want {
		t.Fatalf("Workers defaulted to %d, want GOMAXPROCS=%d", norm.Workers, want)
	}
	db, err := Open(Config{Dir: t.TempDir(), ArenaSize: 1 << 16, Workers: 3,
		Protect: protect.Config{Kind: protect.KindDataCW, RegionSize: 64}})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if got := db.Internals().ScanPool.Workers(); got != 3 {
		t.Fatalf("database scan pool has %d workers, want 3", got)
	}
	if err := db.Audit(); err != nil {
		t.Fatalf("audit through the sized pool: %v", err)
	}
}

func TestErrorsIsCorruption(t *testing.T) {
	// DisableHeal: this test pins the error taxonomy of a *detected*
	// corruption; with ECC on, a single-bit flip would be healed instead.
	db := testDB(t, protect.Config{Kind: protect.KindPrecheck, RegionSize: 64, DisableHeal: true})
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	opUpdate(t, txn, 1, 128, []byte("payload!"))
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	// Stray store outside the prescribed interface: the codeword is stale.
	db.Internals().Arena.Bytes()[130] ^= 0xFF

	txn2, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer txn2.Abort()
	_, rerr := txn2.Read(128, 8)
	if rerr == nil {
		t.Fatal("read of corrupt region succeeded")
	}
	if !errors.Is(rerr, ErrCorruption) {
		t.Fatalf("read error %q does not match ErrCorruption", rerr)
	}
	if !errors.Is(rerr, protect.ErrPrecheckFailed) {
		t.Fatalf("read error %q does not match protect.ErrPrecheckFailed", rerr)
	}

	// A dirty audit yields *CorruptionError, matching both errors.Is on
	// the sentinel and errors.As on the concrete type.
	aerr := db.Audit()
	if aerr == nil {
		t.Fatal("audit of corrupt database came back clean")
	}
	if !errors.Is(aerr, ErrCorruption) {
		t.Fatalf("audit error %q does not match ErrCorruption", aerr)
	}
	var ce *CorruptionError
	if !errors.As(aerr, &ce) || len(ce.Mismatches) == 0 {
		t.Fatalf("audit error %q is not a *CorruptionError with mismatches", aerr)
	}
}

func TestErrorsIsLockTimeout(t *testing.T) {
	db, err := Open(Config{
		Dir:         t.TempDir(),
		ArenaSize:   1 << 14,
		LockTimeout: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	t1, _ := db.Begin()
	t2, _ := db.Begin()
	defer t1.Abort()
	defer t2.Abort()
	if err := t1.Lock(7, lockmgr.Exclusive); err != nil {
		t.Fatal(err)
	}
	lerr := t2.Lock(7, lockmgr.Exclusive)
	if lerr == nil {
		t.Fatal("conflicting lock granted")
	}
	if !errors.Is(lerr, ErrLockTimeout) {
		t.Fatalf("lock error %q does not match core.ErrLockTimeout", lerr)
	}
	if !errors.Is(lerr, lockmgr.ErrTimeout) {
		t.Fatalf("lock error %q does not match lockmgr.ErrTimeout", lerr)
	}
	s := db.Metrics()
	if s.Counter(obs.NameLockTimeouts) == 0 {
		t.Fatalf("timeout not counted: %v", s.Counters)
	}
}

// TestMetricsConcurrent hammers the engine from several goroutines while
// snapshots and checkpoints run; under -race it proves DB.Metrics is a
// consistent, data-race-free snapshot (the old Stats read its atomics
// one by one with no snapshot discipline).
func TestMetricsConcurrent(t *testing.T) {
	db := testDB(t, protect.Config{Kind: protect.KindPrecheck, RegionSize: 64})
	const (
		workers = 4
		txns    = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txns; i++ {
				txn, err := db.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				key := wal.ObjectKey(w)
				if err := txn.Lock(key, lockmgr.Exclusive); err != nil {
					txn.Abort()
					continue
				}
				opUpdate(t, txn, key, mem128(w), []byte("abcdefgh"))
				if _, err := txn.Read(mem128(w), 8); err != nil {
					t.Error(err)
					txn.Abort()
					return
				}
				if i%5 == 4 {
					if err := txn.Abort(); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				if err := txn.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(2)
	go func() {
		defer snaps.Done()
		// Concurrent snapshots: each value is an atomic load (no torn
		// reads, which -race would flag on the old Stats fields), and a
		// monotone counter never regresses across snapshots.
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := db.Metrics()
			begun := s.Counter(obs.NameTxnsBegun)
			if begun < last {
				t.Errorf("txns_begun went backwards: %d -> %d", last, begun)
				return
			}
			last = begun
		}
	}()
	go func() {
		defer snaps.Done()
		for i := 0; i < 5; i++ {
			if err := db.Checkpoint(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	snaps.Wait()

	s := db.Metrics()
	if got := s.Counter(obs.NameTxnsBegun); got != workers*txns {
		t.Fatalf("txns begun = %d, want %d", got, workers*txns)
	}
	if s.Counter(obs.NameTxnsCommitted)+s.Counter(obs.NameTxnsAborted) != workers*txns {
		t.Fatalf("finished != begun: %v", s.Counters)
	}
	if s.Counter(obs.NamePrecheckRegions) == 0 {
		t.Fatal("precheck counter never moved")
	}
	if s.Counter(obs.NameCheckpoints) != 5 {
		t.Fatalf("checkpoints = %d, want 5", s.Counter(obs.NameCheckpoints))
	}
	h := s.Histogram(obs.NameWALFsyncNS)
	if h.Count == 0 {
		t.Fatal("fsync histogram empty after commits")
	}
	if gc := s.Histogram(obs.NameWALGroupCommit); gc.Count == 0 || gc.Mean() < 1 {
		t.Fatalf("group-commit histogram: %+v", gc)
	}
}

// mem128 spaces workers 128 bytes apart so their updates hit disjoint
// protection regions.
func mem128(w int) mem.Addr { return mem.Addr(1024 + 128*w) }
