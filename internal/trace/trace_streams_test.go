package trace

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/heap"
	"repro/internal/protect"
	"repro/internal/recovery"
	"repro/internal/wal"
)

// TestTracePropagationMultiStream replays the canonical propagation
// scenario over a four-stream log set. Consecutive carriers land on
// different streams, so the taint chain B→C is only visible when the
// streams are merged into GSN order; seedAt is a global (GSN-domain)
// position.
func TestTracePropagationMultiStream(t *testing.T) {
	cfg := core.Config{Dir: t.TempDir(), ArenaSize: 1 << 19,
		LogStreams: 4,
		Protect:    protect.Config{Kind: protect.KindReadLog, RegionSize: 64}}
	db, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	cat, _ := heap.Open(db)
	tb, err := cat.CreateTable("t", 128, 32)
	if err != nil {
		t.Fatal(err)
	}
	setup, _ := db.Begin()
	for i := 0; i < 5; i++ {
		if _, err := tb.Insert(setup, make([]byte, 128)); err != nil {
			t.Fatal(err)
		}
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	ids := map[string]wal.TxnID{}
	update := func(name string, readSlot, writeSlot uint32) {
		txn, _ := db.Begin()
		if _, err := tb.Read(txn, heap.RID{Table: tb.ID, Slot: readSlot}); err != nil {
			t.Fatal(err)
		}
		if err := tb.Update(txn, heap.RID{Table: tb.ID, Slot: writeSlot}, 0, []byte{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
		ids[name] = txn.ID()
	}

	update("A", 0, 0)
	seedAt := wal.LSN(db.Internals().Log.GSN()) // global position: corruption happens after this
	inj := fault.New(db.Internals().Arena, db.Scheme().Protector(), 1)
	if _, err := inj.WildWrite(tb.RecordAddr(1)+16, []byte{0xBB}); err != nil {
		t.Fatal(err)
	}
	corrupt := recovery.Range{Start: tb.RecordAddr(1), Len: 128}
	update("B", 1, 2)
	update("C", 2, 3)
	update("D", 4, 4)
	if err := db.Internals().Log.Flush(); err != nil {
		t.Fatal(err)
	}

	// Sanity: the carriers really do live on different streams.
	if sb, sc := db.Internals().Log.StreamOf(ids["B"]), db.Internals().Log.StreamOf(ids["C"]); sb == sc {
		t.Fatalf("scenario degenerate: B and C share stream %d", sb)
	}

	res, err := Run(cfg.Dir, Options{SeedRanges: []recovery.Range{corrupt}, SeedAt: seedAt})
	if err != nil {
		t.Fatal(err)
	}
	taintedIDs := map[wal.TxnID]bool{}
	for _, tt := range res.Tainted {
		taintedIDs[tt.ID] = true
	}
	if !taintedIDs[ids["B"]] || !taintedIDs[ids["C"]] {
		t.Fatalf("carriers missing across streams: %+v", res.Tainted)
	}
	if taintedIDs[ids["A"]] || taintedIDs[ids["D"]] {
		t.Fatalf("clean transactions tainted: %+v", res.Tainted)
	}
	if res.Generations[ids["B"]] != 1 || res.Generations[ids["C"]] != 2 {
		t.Fatalf("generations wrong: B=%d C=%d", res.Generations[ids["B"]], res.Generations[ids["C"]])
	}
	// Taint order is global: B's reason position precedes C's even though
	// their records live in unrelated per-stream LSN domains.
	if len(res.Tainted) == 2 && res.Tainted[0].ID != ids["B"] {
		t.Fatalf("taint order not global: %+v", res.Tainted)
	}
}
