// Package trace analyzes a system log offline to answer the question the
// paper's read logging was introduced for (§4.2) and the §7 future-work
// direction it opens: given a starting point for corruption — physically
// corrupt byte ranges, or suspect transactions (e.g. a logically corrupt
// transaction from bad user input) — which later transactions were
// tainted, through which data, and what data did they taint in turn?
//
// The analysis is the read-only core of the delete-transaction recovery
// algorithm's redo scan: read and write log records are matched against a
// growing corrupt-data set, tainted transactions' writes extend the set,
// and begin-operation conflicts against tainted transactions' operations
// propagate taint (the §4.3 rule that keeps deleted transactions
// rollback-able). Nothing is modified; the output is a propagation report
// a DBA can act on — including the manual-compensation list the
// delete-transaction model hands back to the user.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/iofault"
	"repro/internal/mem"
	"repro/internal/recovery"
	"repro/internal/wal"
)

// Reason explains why a transaction became tainted.
type Reason struct {
	// Kind is "read", "write", "conflict" or "seed".
	Kind string
	// LSN is the log record that tainted the transaction.
	LSN wal.LSN
	// Range is the data involved (zero for conflict taints).
	Range recovery.Range
	// Via is the transaction whose operation caused a conflict taint.
	Via wal.TxnID
}

func (r Reason) String() string {
	switch r.Kind {
	case "conflict":
		return fmt.Sprintf("op-conflict with tainted txn %d @%d", r.Via, r.LSN)
	case "seed":
		return "seeded as suspect"
	default:
		return fmt.Sprintf("%s of corrupt %v @%d", r.Kind, r.Range, r.LSN)
	}
}

// TxnTrace is one tainted transaction.
type TxnTrace struct {
	ID        wal.TxnID
	Reason    Reason
	Committed bool
	// Wrote lists the data ranges this transaction wrote after becoming
	// tainted (data it corrupted in turn).
	Wrote []recovery.Range
	// Reads counts its post-taint read records (for reporting).
	Reads int
}

// Result is a propagation report.
type Result struct {
	// Tainted lists tainted transactions in taint order.
	Tainted []TxnTrace
	// Data is the final corrupt-data set.
	Data recovery.RangeSet
	// Records is the number of log records scanned.
	Records int
	// Generations maps each tainted transaction to its distance from the
	// seed (1 = read seeded data directly).
	Generations map[wal.TxnID]int
}

// Options configures a trace.
type Options struct {
	// From is the log position to scan from (a checkpoint's CK_end, or 0
	// for the whole log). For a multi-stream log set this is a position in
	// the global order — the GSN domain — not a stream-local LSN.
	From wal.LSN
	// SeedRanges marks byte ranges as corrupt once the scan passes SeedAt.
	SeedRanges []recovery.Range
	// SeedAt is the log position at which SeedRanges become corrupt — the
	// analogue of recovery's Audit_SN (the last moment the data was known
	// clean). Zero seeds them from the start of the scan. For a
	// multi-stream log set this is a global (GSN-domain) position.
	SeedAt wal.LSN
	// SeedTxns marks transactions as suspect from the start: all their
	// writes are treated as corrupt (the logical-corruption case — a
	// transaction wrote bad data even though no addressing error
	// occurred).
	SeedTxns []wal.TxnID
}

// Run scans the log in dir and returns the propagation report. A
// multi-stream log set is detected automatically: every stream is scanned
// and the records are merged into global GSN order, so taint propagates
// in true commit order even when the carriers' records live on different
// streams. Positions in reasons and options are then global (OrderLSN).
func Run(dir string, opts Options) (*Result, error) {
	res := &Result{Generations: make(map[wal.TxnID]int)}
	var data recovery.RangeSet
	seeded := false
	seedNow := func() {
		for _, r := range opts.SeedRanges {
			data.Add(r)
		}
		seeded = true
	}
	if opts.SeedAt == 0 {
		seedNow()
	}
	tainted := make(map[wal.TxnID]*TxnTrace)
	gen := make(map[wal.TxnID]int)
	for _, id := range opts.SeedTxns {
		tainted[id] = &TxnTrace{ID: id, Reason: Reason{Kind: "seed"}}
		gen[id] = 0
	}
	// ops tracks, per live transaction, the object keys of its operations
	// so conflict taint can propagate (the analogue of checking corrupt
	// transactions' undo logs in §4.3).
	ops := make(map[wal.TxnID]map[wal.ObjectKey]struct{})

	taint := func(id wal.TxnID, why Reason, g int) *TxnTrace {
		tt, ok := tainted[id]
		if !ok {
			tt = &TxnTrace{ID: id, Reason: why}
			tainted[id] = tt
			gen[id] = g
		}
		return tt
	}

	step := func(r *wal.Record) bool {
		res.Records++
		pos := r.OrderLSN()
		if !seeded && pos >= opts.SeedAt {
			seedNow()
		}
		switch r.Kind {
		case wal.KindRead:
			if _, bad := tainted[r.Txn]; bad {
				tainted[r.Txn].Reads++
				break
			}
			if data.Overlaps(r.Addr, r.Len) {
				taint(r.Txn, Reason{Kind: "read", LSN: pos,
					Range: recovery.Range{Start: r.Addr, Len: r.Len}}, generationOf(gen, tainted, r))
			}
		case wal.KindPhysRedo:
			if tt, bad := tainted[r.Txn]; bad {
				rg := recovery.Range{Start: r.Addr, Len: len(r.Data)}
				data.Add(rg)
				tt.Wrote = append(tt.Wrote, rg)
				break
			}
			if data.Overlaps(r.Addr, len(r.Data)) {
				tt := taint(r.Txn, Reason{Kind: "write", LSN: pos,
					Range: recovery.Range{Start: r.Addr, Len: len(r.Data)}}, generationOf(gen, tainted, r))
				rg := recovery.Range{Start: r.Addr, Len: len(r.Data)}
				data.Add(rg)
				tt.Wrote = append(tt.Wrote, rg)
			}
		case wal.KindOpBegin:
			if _, bad := tainted[r.Txn]; bad {
				break
			}
			for id, keys := range ops {
				if _, isTainted := tainted[id]; !isTainted {
					continue
				}
				if _, conflict := keys[r.Key]; conflict {
					taint(r.Txn, Reason{Kind: "conflict", LSN: pos, Via: id}, gen[id]+1)
					break
				}
			}
			if _, bad := tainted[r.Txn]; !bad {
				if ops[r.Txn] == nil {
					ops[r.Txn] = make(map[wal.ObjectKey]struct{})
				}
				ops[r.Txn][r.Key] = struct{}{}
			}
		case wal.KindTxnCommit:
			if tt, bad := tainted[r.Txn]; bad {
				tt.Committed = true
			}
		}
		return true
	}

	nStreams, err := wal.DetectStreamsFS(iofault.OS, dir)
	if err != nil {
		return nil, err
	}
	if nStreams <= 1 {
		// Clamp the scan start to the retained log (checkpoints compact
		// the prefix away).
		if base, err := wal.LogBase(dir); err == nil && opts.From < base {
			opts.From = base
		}
		if err := wal.Scan(dir, opts.From, step); err != nil {
			return nil, err
		}
	} else {
		// Every stream from its retained base, merged into GSN order;
		// From is a global-order floor, not a per-stream byte offset.
		merged, err := wal.ScanStreamsFS(iofault.OS, dir, nil)
		if err != nil {
			return nil, err
		}
		for _, sr := range merged {
			if sr.R.OrderLSN() < opts.From {
				continue
			}
			if !step(sr.R) {
				break
			}
		}
	}
	// Emit final copies sorted by first-taint LSN.
	for _, tt := range tainted {
		if tt.Reason.Kind == "seed" {
			continue
		}
		res.Tainted = append(res.Tainted, *tt)
	}
	sort.Slice(res.Tainted, func(i, j int) bool {
		return res.Tainted[i].Reason.LSN < res.Tainted[j].Reason.LSN
	})
	res.Data = data
	for id, g := range gen {
		res.Generations[id] = g
	}
	return res, nil
}

// generationOf assigns a taint generation: 1 + the highest generation of
// a tainted transaction that wrote into the record's range, or 1 if the
// range came from the seed.
func generationOf(gen map[wal.TxnID]int, tainted map[wal.TxnID]*TxnTrace, r *wal.Record) int {
	n := r.Len
	if r.Kind == wal.KindPhysRedo {
		n = len(r.Data)
	}
	best := 0
	for id, tt := range tainted {
		for _, w := range tt.Wrote {
			end := w.Start + mem.Addr(w.Len)
			rEnd := r.Addr + mem.Addr(n)
			if w.Start < rEnd && r.Addr < end {
				if g := gen[id]; g > best {
					best = g
				}
			}
		}
	}
	return best + 1
}

// Report renders a human-readable propagation report.
func (res *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scanned %d log records\n", res.Records)
	if len(res.Tainted) == 0 {
		b.WriteString("no transactions tainted\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%d transaction(s) tainted:\n", len(res.Tainted))
	for _, tt := range res.Tainted {
		state := "in-flight"
		if tt.Committed {
			state = "COMMITTED — needs manual compensation"
		}
		fmt.Fprintf(&b, "  txn %-6d gen %d  %-40s  %s\n",
			tt.ID, res.Generations[tt.ID], tt.Reason, state)
		for _, w := range tt.Wrote {
			fmt.Fprintf(&b, "      tainted write %v\n", w)
		}
	}
	fmt.Fprintf(&b, "final corrupt data: %d range(s)\n", res.Data.Len())
	return b.String()
}
