package trace

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/heap"
	"repro/internal/protect"
	"repro/internal/recovery"
	"repro/internal/wal"
)

// buildScenario creates a DB with a read-logged history:
//
//	txnA updates record 0                    (clean)
//	FAULT corrupts record 1
//	txnB reads record 1, writes record 2     (gen 1)
//	txnC reads record 2, writes record 3     (gen 2)
//	txnD reads record 4 only                 (clean)
//	txnE begins an op on record 0 after txnA... (clean, no conflict)
func buildScenario(t *testing.T) (dir string, ids map[string]wal.TxnID, corrupt recovery.Range, seedAt wal.LSN) {
	t.Helper()
	cfg := core.Config{Dir: t.TempDir(), ArenaSize: 1 << 19,
		Protect: protect.Config{Kind: protect.KindReadLog, RegionSize: 64}}
	db, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	cat, _ := heap.Open(db)
	tb, err := cat.CreateTable("t", 128, 32)
	if err != nil {
		t.Fatal(err)
	}
	ids = map[string]wal.TxnID{}

	setup, _ := db.Begin()
	for i := 0; i < 5; i++ {
		if _, err := tb.Insert(setup, make([]byte, 128)); err != nil {
			t.Fatal(err)
		}
	}
	setup.Commit()

	update := func(name string, readSlot, writeSlot uint32) {
		txn, _ := db.Begin()
		if _, err := tb.Read(txn, heap.RID{Table: tb.ID, Slot: readSlot}); err != nil {
			t.Fatal(err)
		}
		if err := tb.Update(txn, heap.RID{Table: tb.ID, Slot: writeSlot}, 0, []byte{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
		ids[name] = txn.ID()
	}

	update("A", 0, 0)
	seedAt = db.Internals().Log.End() // the corruption happens after this point
	inj := fault.New(db.Internals().Arena, db.Scheme().Protector(), 1)
	addr := tb.RecordAddr(1) + 16
	if _, err := inj.WildWrite(addr, []byte{0xBB}); err != nil {
		t.Fatal(err)
	}
	corrupt = recovery.Range{Start: tb.RecordAddr(1), Len: 128}
	update("B", 1, 2)
	update("C", 2, 3)
	update("D", 4, 4)
	db.Internals().Log.Flush()
	return cfg.Dir, ids, corrupt, seedAt
}

func TestTracePropagation(t *testing.T) {
	dir, ids, corrupt, seedAt := buildScenario(t)
	res, err := Run(dir, Options{SeedRanges: []recovery.Range{corrupt}, SeedAt: seedAt})
	if err != nil {
		t.Fatal(err)
	}
	taintedIDs := map[wal.TxnID]bool{}
	for _, tt := range res.Tainted {
		taintedIDs[tt.ID] = true
	}
	if !taintedIDs[ids["B"]] || !taintedIDs[ids["C"]] {
		t.Fatalf("carriers missing: %+v", res.Tainted)
	}
	if taintedIDs[ids["A"]] || taintedIDs[ids["D"]] {
		t.Fatalf("clean transactions tainted: %+v", res.Tainted)
	}
	if res.Generations[ids["B"]] != 1 {
		t.Fatalf("B generation = %d, want 1", res.Generations[ids["B"]])
	}
	if res.Generations[ids["C"]] != 2 {
		t.Fatalf("C generation = %d, want 2", res.Generations[ids["C"]])
	}
	// Both carriers committed, so both are flagged for compensation.
	for _, tt := range res.Tainted {
		if !tt.Committed {
			t.Fatalf("txn %d not marked committed", tt.ID)
		}
		if len(tt.Wrote) == 0 {
			t.Fatalf("txn %d has no tainted writes", tt.ID)
		}
	}
	if res.Data.Empty() {
		t.Fatal("no corrupt data accumulated")
	}
	if res.Report() == "" {
		t.Fatal("empty report")
	}
}

func TestTraceSeedTxnLogicalCorruption(t *testing.T) {
	// Seed by transaction: B is declared logically corrupt (bad input);
	// every transaction reading B's writes is tainted even though no
	// physical corruption exists.
	dir, ids, _, _ := buildScenario(t)
	res, err := Run(dir, Options{SeedTxns: []wal.TxnID{ids["B"]}})
	if err != nil {
		t.Fatal(err)
	}
	taintedIDs := map[wal.TxnID]bool{}
	for _, tt := range res.Tainted {
		taintedIDs[tt.ID] = true
	}
	if !taintedIDs[ids["C"]] {
		t.Fatalf("C not tainted by suspect B: %+v", res.Tainted)
	}
	if taintedIDs[ids["A"]] || taintedIDs[ids["D"]] {
		t.Fatalf("clean transactions tainted: %+v", res.Tainted)
	}
	// Seeded transactions are not re-reported in the tainted list.
	if taintedIDs[ids["B"]] {
		t.Fatalf("seed B re-reported: %+v", res.Tainted)
	}
}

func TestTraceNoSeeds(t *testing.T) {
	dir, _, _, _ := buildScenario(t)
	res, err := Run(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tainted) != 0 {
		t.Fatalf("phantom taint: %+v", res.Tainted)
	}
	if res.Records == 0 {
		t.Fatal("nothing scanned")
	}
	if res.Report() == "" {
		t.Fatal("empty report")
	}
}

func TestTraceEmptyLog(t *testing.T) {
	res, err := Run(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 0 || len(res.Tainted) != 0 {
		t.Fatalf("unexpected result on empty log: %+v", res)
	}
}

func TestReasonStrings(t *testing.T) {
	if (Reason{Kind: "seed"}).String() != "seeded as suspect" {
		t.Fatal("seed string")
	}
	if (Reason{Kind: "conflict", Via: 7, LSN: 9}).String() == "" {
		t.Fatal("conflict string")
	}
	if (Reason{Kind: "read", LSN: 1, Range: recovery.Range{Start: 2, Len: 3}}).String() == "" {
		t.Fatal("read string")
	}
}

func TestDOTOutput(t *testing.T) {
	dir, ids, corrupt, seedAt := buildScenario(t)
	res, err := Run(dir, Options{SeedRanges: []recovery.Range{corrupt}, SeedAt: seedAt})
	if err != nil {
		t.Fatal(err)
	}
	dot := res.DOT()
	for _, want := range []string{"digraph corruption", "seed", "corrupt data"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Both carriers appear as nodes; the second generation hangs off the
	// first, not off the seed.
	b := fmt.Sprintf("txn%d", ids["B"])
	c := fmt.Sprintf("txn%d", ids["C"])
	if !strings.Contains(dot, b+" [label=") || !strings.Contains(dot, c+" [label=") {
		t.Fatalf("carriers missing from DOT:\n%s", dot)
	}
	if !strings.Contains(dot, b+" -> "+c) {
		t.Fatalf("generation edge missing:\n%s", dot)
	}
	// Empty result still renders.
	empty := (&Result{Generations: map[wal.TxnID]int{}}).DOT()
	if !strings.Contains(empty, "digraph") {
		t.Fatal("empty DOT broken")
	}
}
