package trace

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the corruption propagation as a Graphviz digraph: the seed,
// every tainted transaction (grouped by generation), and the data ranges
// through which taint flowed. Feed it to `dot -Tsvg` for the picture the
// paper's "tracing the flow of indirect corruption" narrative implies.
func (res *Result) DOT() string {
	var b strings.Builder
	b.WriteString("digraph corruption {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [fontname=\"monospace\"];\n")
	b.WriteString("  seed [label=\"corrupt seed\", shape=octagon, style=filled, fillcolor=\"#d62728\", fontcolor=white];\n")

	// Deterministic order: by first-taint LSN (res.Tainted is sorted).
	for _, tt := range res.Tainted {
		shape := "box"
		fill := "#ff9896"
		if tt.Committed {
			fill = "#d62728"
		}
		fmt.Fprintf(&b, "  txn%d [label=\"txn %d\\ngen %d\", shape=%s, style=filled, fillcolor=%q];\n",
			tt.ID, tt.ID, res.Generations[tt.ID], shape, fill)
	}
	// Edges: seed/previous generation -> transaction, via its taint reason.
	for _, tt := range res.Tainted {
		src := "seed"
		if tt.Reason.Kind == "conflict" {
			src = fmt.Sprintf("txn%d", tt.Reason.Via)
		} else if res.Generations[tt.ID] > 1 {
			// Find a previous-generation transaction whose write overlaps
			// the taint range.
			for _, prev := range res.Tainted {
				if res.Generations[prev.ID] != res.Generations[tt.ID]-1 {
					continue
				}
				for _, w := range prev.Wrote {
					if w.Start < tt.Reason.Range.End() && tt.Reason.Range.Start < w.End() {
						src = fmt.Sprintf("txn%d", prev.ID)
						break
					}
				}
				if src != "seed" {
					break
				}
			}
		}
		label := tt.Reason.Kind
		if tt.Reason.Kind != "conflict" {
			label = fmt.Sprintf("%s %v", tt.Reason.Kind, tt.Reason.Range)
		}
		fmt.Fprintf(&b, "  %s -> txn%d [label=%q];\n", src, tt.ID, label)
	}
	// Tainted data summary node.
	if !res.Data.Empty() {
		ranges := res.Data.Ranges()
		sort.Slice(ranges, func(i, j int) bool { return ranges[i].Start < ranges[j].Start })
		n := len(ranges)
		show := ranges
		if n > 4 {
			show = ranges[:4]
		}
		var parts []string
		for _, r := range show {
			parts = append(parts, r.String())
		}
		if n > 4 {
			parts = append(parts, fmt.Sprintf("… %d more", n-4))
		}
		fmt.Fprintf(&b, "  data [label=\"corrupt data\\n%s\", shape=note];\n", strings.Join(parts, "\\n"))
		for _, tt := range res.Tainted {
			if len(tt.Wrote) > 0 {
				fmt.Fprintf(&b, "  txn%d -> data [style=dashed];\n", tt.ID)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
