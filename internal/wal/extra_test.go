package wal

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestOpCommitCompensationRoundTrip(t *testing.T) {
	r := &Record{Kind: KindOpCommit, Txn: 9, Level: 1, Key: 77, Compensation: true,
		Undo: LogicalUndo{Op: 3, Key: 77, Args: []byte{1}}}
	got, _, err := DecodeFrame(r.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Compensation {
		t.Fatal("compensation flag lost")
	}
	r.Compensation = false
	got, _, err = DecodeFrame(r.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.Compensation {
		t.Fatal("compensation flag invented")
	}
}

func TestUndoLogicalCommitLSNRoundTrip(t *testing.T) {
	entries := []*TxnEntry{{ID: 1, State: TxnActive, Undo: []UndoRec{
		{Kind: UndoLogical, Level: 1, Key: 5, CommitLSN: 123456789,
			Logical: LogicalUndo{Op: 2, Key: 5}},
	}}}
	got, err := DecodeEntries(EncodeEntries(entries))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Undo[0].CommitLSN != 123456789 {
		t.Fatalf("CommitLSN = %d", got[0].Undo[0].CommitLSN)
	}
}

func TestCommitCompensationOpErrors(t *testing.T) {
	e := &TxnEntry{ID: 1, State: TxnActive}
	if err := e.CommitCompensationOp(); err == nil {
		t.Fatal("compensation commit with empty log accepted")
	}
	e.PushOpBegin(1, 5)
	if err := e.CommitCompensationOp(); err == nil {
		t.Fatal("compensation commit with no logical undo beneath accepted")
	}
	// Proper shape: logical undo beneath the compensation's marker.
	e2 := &TxnEntry{ID: 2, State: TxnActive}
	e2.Undo = append(e2.Undo, UndoRec{Kind: UndoLogical, Level: 1, Key: 5,
		Logical: LogicalUndo{Op: 1, Key: 5}})
	e2.PushOpBegin(1, 5)
	e2.PushPhysUndo(0, []byte{1})
	if err := e2.CommitCompensationOp(); err != nil {
		t.Fatal(err)
	}
	if len(e2.Undo) != 0 {
		t.Fatalf("undo after compensation: %+v", e2.Undo)
	}
}

func TestEncodeEntriesPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var entries []*TxnEntry
		for i := 0; i < 1+rng.Intn(4); i++ {
			e := &TxnEntry{ID: TxnID(rng.Intn(1000)), State: TxnActive}
			for j := 0; j < rng.Intn(6); j++ {
				switch rng.Intn(3) {
				case 0:
					before := make([]byte, rng.Intn(20))
					rng.Read(before)
					e.Undo = append(e.Undo, UndoRec{Kind: UndoPhys,
						Addr: mem.Addr(rng.Intn(1 << 20)), Before: before,
						CodewordPending: rng.Intn(2) == 0})
				case 1:
					e.Undo = append(e.Undo, UndoRec{Kind: UndoOpBegin,
						Level: uint8(rng.Intn(3)), Key: ObjectKey(rng.Uint64())})
				case 2:
					args := make([]byte, rng.Intn(10))
					rng.Read(args)
					e.Undo = append(e.Undo, UndoRec{Kind: UndoLogical,
						Level: uint8(rng.Intn(3)), Key: ObjectKey(rng.Uint64()),
						CommitLSN: LSN(rng.Uint64() >> 20),
						Logical:   LogicalUndo{Op: uint8(rng.Intn(8)), Key: ObjectKey(rng.Uint64()), Args: args}})
				}
			}
			entries = append(entries, e)
		}
		got, err := DecodeEntries(EncodeEntries(entries))
		if err != nil || len(got) != len(entries) {
			return false
		}
		for i := range entries {
			a, b := entries[i], got[i]
			if a.ID != b.ID || len(a.Undo) != len(b.Undo) {
				return false
			}
			for j := range a.Undo {
				u, v := a.Undo[j], b.Undo[j]
				if u.Kind != v.Kind || u.Addr != v.Addr || !bytes.Equal(u.Before, v.Before) ||
					u.CodewordPending != v.CodewordPending || u.Level != v.Level ||
					u.Key != v.Key || u.CommitLSN != v.CommitLSN ||
					u.Logical.Op != v.Logical.Op || u.Logical.Key != v.Logical.Key ||
					!bytes.Equal(u.Logical.Args, v.Logical.Args) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHasUndoForKeyAcrossKinds(t *testing.T) {
	e := &TxnEntry{ID: 1, State: TxnActive}
	e.PushOpBegin(1, 10)         // open op on 10
	e.PushPhysUndo(0, []byte{1}) // phys entries never match keys
	e.Undo = append(e.Undo, UndoRec{Kind: UndoLogical, Level: 1, Key: 20,
		Logical: LogicalUndo{Op: 1, Key: 20}})
	if !e.HasUndoForKey(10) {
		t.Fatal("open op key missed")
	}
	if !e.HasUndoForKey(20) {
		t.Fatal("logical undo key missed")
	}
	if e.HasUndoForKey(0) {
		t.Fatal("phys undo address matched as key")
	}
}

func TestRecordEncodedSizeMatchesForAllKinds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kinds := []Kind{KindPhysRedo, KindOpBegin, KindOpCommit, KindTxnBegin,
			KindTxnCommit, KindTxnAbort, KindRead, KindAuditBegin, KindAuditEnd}
		r := &Record{
			Kind: kinds[rng.Intn(len(kinds))],
			Txn:  TxnID(rng.Uint64() >> 1),
			Addr: mem.Addr(rng.Uint64() >> 30),
			Len:  rng.Intn(1000),
		}
		if rng.Intn(2) == 0 {
			r.Data = make([]byte, rng.Intn(64))
		}
		if rng.Intn(2) == 0 {
			r.HasCW = true
		}
		if r.Kind == KindAuditEnd {
			for i := 0; i < rng.Intn(3); i++ {
				r.CorruptAddrs = append(r.CorruptAddrs, mem.Addr(rng.Uint32()))
				r.CorruptLens = append(r.CorruptLens, rng.Uint32()%4096)
			}
		}
		return r.EncodedSize() == len(r.Encode(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
