package wal

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/iofault"
)

// TestPoisonUnderConcurrency hammers a log whose nth fsync fails with
// many concurrent committers. The fail-stop contract, checked under
// -race: no commit is acknowledged after the poison, every blocked waiter
// wakes with ErrLogPoisoned rather than hanging, and the stable end never
// moves again.
func TestPoisonUnderConcurrency(t *testing.T) {
	for _, failN := range []uint64{1, 2, 5} {
		dir := t.TempDir()
		fsys := iofault.NewFaultFS(dir)
		fsys.FailNthSync(failN)
		l, err := OpenSystemLogFS(fsys, dir, 4096)
		if err != nil {
			t.Fatal(err)
		}

		const goroutines = 8
		const perG = 25
		var wg sync.WaitGroup
		var mu sync.Mutex
		acked := 0
		poisonedSeen := 0
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					id := TxnID(g*perG + i + 1)
					err := l.AppendAndFlush(
						&Record{Kind: KindTxnBegin, Txn: id},
						&Record{Kind: KindTxnCommit, Txn: id},
					)
					mu.Lock()
					if err == nil {
						acked++
					} else if errors.Is(err, ErrLogPoisoned) {
						poisonedSeen++
					} else {
						mu.Unlock()
						t.Errorf("commit error is neither nil nor ErrLogPoisoned: %v", err)
						return
					}
					mu.Unlock()
				}
			}(g)
		}
		wg.Wait() // hanging here would mean a waiter was never woken

		if poisonedSeen == 0 {
			t.Fatalf("failN=%d: fsync failure never surfaced to a committer", failN)
		}
		if err := l.Poisoned(); !errors.Is(err, ErrLogPoisoned) {
			t.Fatalf("failN=%d: Poisoned() = %v", failN, err)
		}
		// The poison is permanent and the stable end frozen.
		endBefore := l.StableEnd()
		if err := l.Append(&Record{Kind: KindTxnBegin, Txn: 9999}); !errors.Is(err, ErrLogPoisoned) {
			t.Fatalf("failN=%d: append after poison = %v", failN, err)
		}
		if err := l.Flush(); !errors.Is(err, ErrLogPoisoned) {
			t.Fatalf("failN=%d: flush after poison = %v", failN, err)
		}
		if l.StableEnd() != endBefore {
			t.Fatalf("failN=%d: stable end moved after poison", failN)
		}
		if err := l.Close(); !errors.Is(err, ErrLogPoisoned) {
			t.Fatalf("failN=%d: close after poison = %v", failN, err)
		}

		// Every record the stable log retains decodes cleanly: the poisoned
		// tail never leaked to disk.
		count := 0
		if err := Scan(dir, 0, func(r *Record) bool { count++; return true }); err != nil {
			t.Fatalf("failN=%d: scan after poison: %v", failN, err)
		}
		if 2*acked > count {
			// Acked commits must be durable (each wrote two records). Other
			// records may be present (appended but unacknowledged), never
			// fewer.
			t.Fatalf("failN=%d: %d records on disk but %d commits acked", failN, count, acked)
		}
	}
}
