package wal

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func logSize(t *testing.T, dir string) int64 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(dir, LogFileName))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

func TestCompactDiscardsPrefixKeepsLSNs(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir)
	var lsns []LSN
	for i := 0; i < 20; i++ {
		r := &Record{Kind: KindPhysRedo, Txn: TxnID(i), Addr: 8, Data: []byte{byte(i)}}
		l.Append(r)
		lsns = append(lsns, r.LSN)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	sizeBefore := logSize(t, dir)

	keep := lsns[10]
	if err := l.Compact(keep); err != nil {
		t.Fatal(err)
	}
	if l.BaseLSN() != keep {
		t.Fatalf("base = %d, want %d", l.BaseLSN(), keep)
	}
	if logSize(t, dir) >= sizeBefore {
		t.Fatal("compaction did not shrink the file")
	}
	// Appends continue with unchanged LSN arithmetic.
	r := &Record{Kind: KindTxnCommit, Txn: 99}
	l.Append(r)
	if r.LSN != l.StableEnd() {
		t.Fatalf("post-compaction LSN = %d, want %d", r.LSN, l.StableEnd())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Scanning from the new base sees records 10.. plus the new commit.
	var seen []TxnID
	if err := Scan(dir, keep, func(rec *Record) bool {
		seen = append(seen, rec.Txn)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 11 || seen[0] != 10 || seen[10] != 99 {
		t.Fatalf("scan after compaction: %v", seen)
	}
	// Scanning below the base is an error, not silence.
	if err := Scan(dir, 0, func(*Record) bool { return true }); err == nil {
		t.Fatal("scan below base accepted")
	}
	// LSNs of retained records are unchanged.
	found := false
	Scan(dir, keep, func(rec *Record) bool {
		if rec.Txn == 15 {
			found = rec.LSN == lsns[15]
		}
		return true
	})
	if !found {
		t.Fatal("retained record's LSN changed")
	}
}

func TestCompactValidation(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir)
	r1 := &Record{Kind: KindTxnBegin, Txn: 1}
	r2 := &Record{Kind: KindTxnBegin, Txn: 2}
	l.Append(r1, r2)
	l.Flush()

	if err := l.Compact(l.StableEnd() + 100); err == nil {
		t.Fatal("compaction beyond stable end accepted")
	}
	if err := l.Compact(r2.LSN + 1); err == nil {
		t.Fatal("compaction off a record boundary accepted")
	}
	if err := l.Compact(0); err != nil {
		t.Fatalf("no-op compaction: %v", err)
	}
	if err := l.Compact(r2.LSN); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(r1.LSN); err == nil {
		t.Fatal("compaction below base accepted")
	}
	// Compacting to exactly the stable end empties the record section.
	if err := l.Compact(l.StableEnd()); err != nil {
		t.Fatal(err)
	}
	l.Close()
	count := 0
	Scan(dir, l.BaseLSN(), func(*Record) bool { count++; return true })
	if count != 0 {
		t.Fatalf("records after full compaction: %d", count)
	}
}

func TestCompactSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir)
	var keep LSN
	for i := 0; i < 10; i++ {
		r := &Record{Kind: KindTxnBegin, Txn: TxnID(i)}
		l.Append(r)
		if i == 5 {
			keep = r.LSN
		}
	}
	l.Flush()
	if err := l.Compact(keep); err != nil {
		t.Fatal(err)
	}
	end := l.StableEnd()
	l.Close()

	l2 := openLog(t, dir)
	if l2.BaseLSN() != keep {
		t.Fatalf("base after reopen = %d, want %d", l2.BaseLSN(), keep)
	}
	if l2.StableEnd() != end {
		t.Fatalf("stable end after reopen = %d, want %d", l2.StableEnd(), end)
	}
	r := &Record{Kind: KindTxnCommit, Txn: 100}
	l2.Append(r)
	if r.LSN != end {
		t.Fatalf("LSN after reopen = %d, want %d", r.LSN, end)
	}
	l2.Close()

	base, err := LogBase(dir)
	if err != nil || base != keep {
		t.Fatalf("LogBase = %d, %v", base, err)
	}
}

func TestLogBaseMissingAndEmpty(t *testing.T) {
	if base, err := LogBase(t.TempDir()); err != nil || base != 0 {
		t.Fatalf("missing log: %d, %v", base, err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, LogFileName), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if base, err := LogBase(dir); err != nil || base != 0 {
		t.Fatalf("empty log: %d, %v", base, err)
	}
}

func TestTruncateAtValidation(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir)
	r1 := &Record{Kind: KindTxnBegin, Txn: 1}
	r2 := &Record{Kind: KindTxnBegin, Txn: 2}
	l.Append(r1, r2)
	l.Flush()
	l.Compact(r2.LSN)
	l.Close()

	if err := TruncateAt(dir, r1.LSN); err == nil {
		t.Fatal("truncation below base accepted")
	}
	if err := TruncateAt(dir, r2.LSN+1); err == nil {
		t.Fatal("truncation off a boundary accepted")
	}
	if err := TruncateAt(dir, r2.LSN); err != nil {
		t.Fatal(err)
	}
	count := 0
	Scan(dir, r2.LSN, func(*Record) bool { count++; return true })
	if count != 0 {
		t.Fatalf("records after truncation: %d", count)
	}
}

func TestCompactConcurrentWithCommitters(t *testing.T) {
	// Compaction (checkpointer) racing committers must neither lose
	// records nor corrupt LSN accounting.
	dir := t.TempDir()
	l := openLog(t, dir)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var mu sync.Mutex
	var committed []LSN
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r := &Record{Kind: KindTxnCommit, Txn: TxnID(g*10000 + i)}
				if err := l.AppendAndFlush(r); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				committed = append(committed, r.LSN)
				mu.Unlock()
			}
		}(g)
	}
	// Compact repeatedly to the current stable end while commits flow.
	for i := 0; i < 20; i++ {
		mu.Lock()
		var horizon LSN
		if len(committed) > 0 {
			horizon = committed[len(committed)-1]
		}
		mu.Unlock()
		if horizon > l.BaseLSN() {
			if err := l.Compact(horizon); err != nil {
				t.Fatalf("compact %d: %v", i, err)
			}
		}
	}
	close(stop)
	wg.Wait()
	base := l.BaseLSN()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Every commit at or above the final base is still in the log.
	want := map[LSN]bool{}
	mu.Lock()
	for _, lsn := range committed {
		if lsn >= base {
			want[lsn] = true
		}
	}
	mu.Unlock()
	got := map[LSN]bool{}
	if err := Scan(dir, base, func(r *Record) bool { got[r.LSN] = true; return true }); err != nil {
		t.Fatal(err)
	}
	for lsn := range want {
		if !got[lsn] {
			t.Fatalf("committed record at %d lost by compaction", lsn)
		}
	}
}
