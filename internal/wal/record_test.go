package wal

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/region"
)

func sampleRecords() []*Record {
	return []*Record{
		{Kind: KindPhysRedo, Txn: 7, Addr: 1234, Data: []byte{1, 2, 3}},
		{Kind: KindPhysRedo, Txn: 7, Addr: 0, Data: nil},
		{Kind: KindPhysRedo, Txn: 9, Addr: 55, Data: []byte{9}, HasCW: true, CW: 0xdeadbeef},
		{Kind: KindRead, Txn: 3, Addr: 100, Len: 64},
		{Kind: KindRead, Txn: 3, Addr: 100, Len: 64, HasCW: true, CW: 42},
		{Kind: KindOpBegin, Txn: 4, Level: 1, Key: 0xABCD},
		{Kind: KindOpCommit, Txn: 4, Level: 1, Key: 0xABCD,
			Undo: LogicalUndo{Op: 2, Key: 0xABCD, Args: []byte{5, 6}}},
		{Kind: KindOpCommit, Txn: 4, Level: 2, Key: 1, Undo: LogicalUndo{Op: 1, Key: 1}},
		{Kind: KindTxnBegin, Txn: 11},
		{Kind: KindTxnCommit, Txn: 11},
		{Kind: KindTxnAbort, Txn: 12},
		{Kind: KindTxnPrepare, Txn: 13, GID: 0x0001_0000_0000_000d},
		{Kind: KindTxnDecision, Txn: 13, GID: 0x0001_0000_0000_000d, Decision: true},
		{Kind: KindTxnDecision, Txn: 14, GID: 0x7fff_ffff_ffff_ffff, Decision: false},
		{Kind: KindAuditBegin, Txn: 0, AuditSN: 17},
		{Kind: KindAuditEnd, Txn: 0, AuditSN: 17, AuditClean: true},
		{Kind: KindAuditEnd, Txn: 0, AuditSN: 18, AuditClean: false,
			CorruptAddrs: []mem.Addr{64, 512}, CorruptLens: []uint32{64, 64}},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for i, r := range sampleRecords() {
		enc := r.Encode(nil)
		if len(enc) != r.EncodedSize() {
			t.Errorf("record %d (%v): EncodedSize %d != actual %d", i, r.Kind, r.EncodedSize(), len(enc))
		}
		got, n, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("record %d (%v): decode: %v", i, r.Kind, err)
		}
		if n != len(enc) {
			t.Errorf("record %d: consumed %d of %d bytes", i, n, len(enc))
		}
		// Normalize empty slices for comparison.
		norm := func(r *Record) {
			if len(r.Data) == 0 {
				r.Data = nil
			}
			if len(r.Undo.Args) == 0 {
				r.Undo.Args = nil
			}
		}
		norm(got)
		cp := *r
		norm(&cp)
		if !reflect.DeepEqual(got, &cp) {
			t.Errorf("record %d roundtrip mismatch:\n got %+v\nwant %+v", i, got, &cp)
		}
	}
}

func TestRecordKindString(t *testing.T) {
	if KindPhysRedo.String() != "phys-redo" {
		t.Fatal("kind name wrong")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind must stringify")
	}
}

func TestDecodeFrameTorn(t *testing.T) {
	r := &Record{Kind: KindPhysRedo, Txn: 1, Addr: 10, Data: []byte{1, 2, 3, 4}}
	enc := r.Encode(nil)
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeFrame(enc[:cut]); !errors.Is(err, ErrTornRecord) {
			t.Fatalf("truncated at %d: err = %v, want ErrTornRecord", cut, err)
		}
	}
}

func TestDecodeFrameCorruptPayload(t *testing.T) {
	r := &Record{Kind: KindPhysRedo, Txn: 1, Addr: 10, Data: []byte{1, 2, 3, 4}}
	enc := r.Encode(nil)
	for i := frameHeaderSize; i < len(enc); i++ {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0xFF
		if _, _, err := DecodeFrame(bad); err == nil {
			t.Fatalf("bit flip at %d went undetected", i)
		}
	}
}

func TestDecodeFrameUnknownKind(t *testing.T) {
	// Build a frame with a bogus kind byte and a valid checksum.
	r := &Record{Kind: KindTxnBegin, Txn: 1}
	enc := r.Encode(nil)
	// Patch kind in payload and recompute checksum via re-encoding trick:
	bad := &Record{Kind: Kind(200), Txn: 1}
	enc = bad.Encode(nil)
	if _, _, err := DecodeFrame(enc); err == nil {
		t.Fatal("unknown kind accepted")
	}
	_ = r
}

func TestRecordRoundTripProperty(t *testing.T) {
	f := func(txn uint64, addr uint32, data []byte, hasCW bool, cw uint64) bool {
		r := &Record{Kind: KindPhysRedo, Txn: TxnID(txn), Addr: mem.Addr(addr),
			Data: data, HasCW: hasCW, CW: region.Codeword(cw)}
		got, _, err := DecodeFrame(r.Encode(nil))
		if err != nil {
			return false
		}
		return got.Txn == r.Txn && got.Addr == r.Addr && bytes.Equal(got.Data, r.Data) &&
			got.HasCW == r.HasCW && (!hasCW || got.CW == r.CW)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMultiRecordStream(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var stream []byte
	var want []*Record
	for i := 0; i < 200; i++ {
		data := make([]byte, rng.Intn(50))
		rng.Read(data)
		r := &Record{Kind: KindPhysRedo, Txn: TxnID(i), Addr: mem.Addr(rng.Intn(10000)), Data: data}
		want = append(want, r)
		stream = r.Encode(stream)
	}
	pos, idx := 0, 0
	for pos < len(stream) {
		r, n, err := DecodeFrame(stream[pos:])
		if err != nil {
			t.Fatalf("decode at %d: %v", pos, err)
		}
		if r.Txn != want[idx].Txn || !bytes.Equal(r.Data, want[idx].Data) {
			t.Fatalf("record %d mismatch", idx)
		}
		pos += n
		idx++
	}
	if idx != len(want) {
		t.Fatalf("decoded %d records, want %d", idx, len(want))
	}
}

func TestEncodeEntriesRoundTrip(t *testing.T) {
	entries := []*TxnEntry{
		{ID: 1, State: TxnActive, Undo: []UndoRec{
			{Kind: UndoOpBegin, Level: 1, Key: 77},
			{Kind: UndoPhys, Addr: 128, Before: []byte{1, 2, 3}, CodewordPending: true},
			{Kind: UndoPhys, Addr: 4096, Before: []byte{4}, CodewordPending: false},
		}},
		{ID: 2, State: TxnActive, Undo: []UndoRec{
			{Kind: UndoLogical, Level: 1, Key: 88,
				Logical: LogicalUndo{Op: 3, Key: 88, Args: []byte{9, 9}}},
		}},
		{ID: 3, State: TxnActive},
		{ID: 4, State: TxnPrepared, GID: 0x0002_0000_0000_0004, Undo: []UndoRec{
			{Kind: UndoPhys, Addr: 256, Before: []byte{7, 7}},
		}},
	}
	got, err := DecodeEntries(EncodeEntries(entries))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("got %d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i].ID != entries[i].ID || got[i].State != entries[i].State || got[i].GID != entries[i].GID {
			t.Fatalf("entry %d header mismatch", i)
		}
		if len(got[i].Undo) != len(entries[i].Undo) {
			t.Fatalf("entry %d undo count mismatch", i)
		}
		for j := range entries[i].Undo {
			a, b := got[i].Undo[j], entries[i].Undo[j]
			if a.Kind != b.Kind || a.Addr != b.Addr || !bytes.Equal(a.Before, b.Before) ||
				a.CodewordPending != b.CodewordPending || a.Level != b.Level || a.Key != b.Key ||
				a.Logical.Op != b.Logical.Op || a.Logical.Key != b.Logical.Key ||
				!bytes.Equal(a.Logical.Args, b.Logical.Args) {
				t.Fatalf("entry %d undo %d mismatch: %+v vs %+v", i, j, a, b)
			}
		}
	}
}

func TestDecodeEntriesRejectsGarbage(t *testing.T) {
	if _, err := DecodeEntries([]byte{0xFF, 0xFF, 0xFF}); err == nil {
		t.Fatal("garbage accepted")
	}
	enc := EncodeEntries([]*TxnEntry{{ID: 1, State: TxnActive,
		Undo: []UndoRec{{Kind: UndoPhys, Addr: 1, Before: []byte{1}}}}})
	if _, err := DecodeEntries(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated entries accepted")
	}
}

func TestTxnEntryOpLifecycle(t *testing.T) {
	e := &TxnEntry{ID: 1, State: TxnActive}
	if e.InOperation() {
		t.Fatal("fresh entry claims open operation")
	}
	e.PushOpBegin(1, 10)
	if !e.InOperation() {
		t.Fatal("operation not open after PushOpBegin")
	}
	u := e.PushPhysUndo(100, []byte{1, 2})
	if !u.CodewordPending {
		t.Fatal("fresh phys undo must have codeword pending")
	}
	u.CodewordPending = false // endUpdate
	e.PushPhysUndo(200, []byte{3})
	if err := e.CommitOp(1, 10, LogicalUndo{Op: 1, Key: 10}, 5); err != nil {
		t.Fatal(err)
	}
	if e.InOperation() {
		t.Fatal("operation still open after CommitOp")
	}
	if len(e.Undo) != 1 || e.Undo[0].Kind != UndoLogical {
		t.Fatalf("undo log after op commit: %+v", e.Undo)
	}
	if !e.HasUndoForKey(10) {
		t.Fatal("HasUndoForKey missed committed op")
	}
	if e.HasUndoForKey(11) {
		t.Fatal("HasUndoForKey false positive")
	}
	if err := e.CommitOp(1, 10, LogicalUndo{}, 6); err == nil {
		t.Fatal("CommitOp with no open operation accepted")
	}
}

func TestTxnEntryNestedOps(t *testing.T) {
	e := &TxnEntry{ID: 1, State: TxnActive}
	e.PushOpBegin(2, 1)
	e.PushOpBegin(1, 2)
	e.PushPhysUndo(0, []byte{1})
	if err := e.CommitOp(1, 2, LogicalUndo{Op: 1, Key: 2}, 7); err != nil {
		t.Fatal(err)
	}
	// Outer op still open; its marker remains below the logical undo.
	if !e.InOperation() {
		t.Fatal("outer operation lost")
	}
	if err := e.CommitOp(2, 1, LogicalUndo{Op: 2, Key: 1}, 8); err != nil {
		t.Fatal(err)
	}
	if len(e.Undo) != 1 {
		t.Fatalf("undo log = %+v", e.Undo)
	}
}

func TestATTLifecycle(t *testing.T) {
	att := NewATT(0)
	e1 := att.Begin()
	e2 := att.Begin()
	if e1.ID == e2.ID {
		t.Fatal("duplicate transaction IDs")
	}
	if att.Len() != 2 {
		t.Fatalf("len = %d", att.Len())
	}
	if att.Lookup(e1.ID) != e1 {
		t.Fatal("lookup failed")
	}
	act := att.Active()
	if len(act) != 2 || act[0].ID > act[1].ID {
		t.Fatal("Active not sorted")
	}
	att.Remove(e1.ID)
	if att.Lookup(e1.ID) != nil {
		t.Fatal("removed entry still present")
	}
	att.Attach(&TxnEntry{ID: 100, State: TxnActive})
	if att.NextID() != 101 {
		t.Fatalf("NextID = %d, want 101 after attaching ID 100", att.NextID())
	}
}

func TestATTSnapshotIsDeep(t *testing.T) {
	att := NewATT(1)
	e := att.Begin()
	e.PushOpBegin(1, 5)
	e.PushPhysUndo(10, []byte{1, 2, 3})
	snap := att.Snapshot()
	if len(snap) != 1 || len(snap[0].Undo) != 2 {
		t.Fatalf("snapshot shape wrong: %+v", snap)
	}
	// Mutating the live entry must not affect the snapshot.
	e.Undo[1].Before[0] = 99
	e.CommitOp(1, 5, LogicalUndo{Op: 1, Key: 5}, 9)
	if snap[0].Undo[1].Before[0] != 1 {
		t.Fatal("snapshot aliases live undo data")
	}
	if snap[0].Undo[0].Kind != UndoOpBegin {
		t.Fatal("snapshot mutated by CommitOp")
	}
}
