package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/iofault"
)

// TestLogSetSingleStreamByteCompat pins the upgrade contract: a LogSet
// opened with one stream writes byte-identical output to a plain
// SystemLog (no GSN stamping, no extra files), so existing databases
// upgrade and downgrade without conversion.
func TestLogSetSingleStreamByteCompat(t *testing.T) {
	mkRecs := func() []*Record {
		return []*Record{
			{Kind: KindTxnBegin, Txn: 7},
			{Kind: KindPhysRedo, Txn: 7, Addr: 64, Data: []byte("abcdefgh")},
			{Kind: KindTxnCommit, Txn: 7},
		}
	}

	setDir := t.TempDir()
	ls, err := OpenLogSet(setDir, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ls.NumStreams() != 1 {
		t.Fatalf("NumStreams = %d", ls.NumStreams())
	}
	if err := ls.AppendAndFlush(mkRecs()...); err != nil {
		t.Fatal(err)
	}
	if ls.GSN() != 0 {
		// Single-stream sets never stamp: the counter stays at its seed,
		// which is zero for a freshly created set.
		t.Fatalf("single-stream set advanced the GSN: %d", ls.GSN())
	}
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(setDir, StreamFileName(1))); err == nil {
		t.Fatal("single-stream set created a second stream file")
	}

	rawDir := t.TempDir()
	sl, err := OpenSystemLog(rawDir, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := sl.AppendAndFlush(mkRecs()...); err != nil {
		t.Fatal(err)
	}
	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}

	a, err := os.ReadFile(filepath.Join(setDir, LogFileName))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(rawDir, LogFileName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("single-stream LogSet output differs from SystemLog output (%d vs %d bytes)", len(a), len(b))
	}
}

// TestLogSetRoutingAndMerge appends interleaved transactions across a
// multi-stream set and checks the two ordering invariants recovery
// relies on: all records of one transaction live on its home stream in
// append order, and the merged scan reproduces the exact global append
// order via GSNs.
func TestLogSetRoutingAndMerge(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLogSet(dir, 4096, 3)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumStreams() != 3 {
		t.Fatalf("NumStreams = %d", l.NumStreams())
	}

	// A deterministic interleaving of four transactions (streams 1, 2, 0, 1).
	var want []TxnID // global append order, by txn of each record
	appendOne := func(txn TxnID, kind Kind, payload byte) {
		r := &Record{Kind: kind, Txn: txn}
		if kind == KindPhysRedo {
			r.Addr = 128
			r.Data = []byte{payload, payload, payload, payload}
		}
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
		want = append(want, txn)
	}
	for _, txn := range []TxnID{1, 2, 3, 4} {
		appendOne(txn, KindTxnBegin, 0)
	}
	for i := 0; i < 5; i++ {
		for _, txn := range []TxnID{4, 1, 3, 2} {
			appendOne(txn, KindPhysRedo, byte(i))
		}
	}
	for _, txn := range []TxnID{2, 4, 1, 3} {
		appendOne(txn, KindTxnCommit, 0)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	merged, err := ScanStreamsFS(iofault.OS, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != len(want) {
		t.Fatalf("merged %d records, appended %d", len(merged), len(want))
	}
	var lastGSN uint64
	for i, sr := range merged {
		if sr.R.Txn != want[i] {
			t.Fatalf("merged[%d] is txn %d, want %d", i, sr.R.Txn, want[i])
		}
		if wantStream := int(uint64(sr.R.Txn) % 3); sr.Stream != wantStream {
			t.Fatalf("txn %d record on stream %d, want %d", sr.R.Txn, sr.Stream, wantStream)
		}
		if sr.R.GSN == 0 {
			t.Fatalf("merged[%d] has no GSN on a multi-stream set", i)
		}
		if sr.R.GSN <= lastGSN {
			t.Fatalf("merged[%d] GSN %d not above predecessor %d", i, sr.R.GSN, lastGSN)
		}
		lastGSN = sr.R.GSN
		if sr.R.OrderLSN() != LSN(sr.R.GSN) {
			t.Fatalf("OrderLSN %d != GSN %d", sr.R.OrderLSN(), sr.R.GSN)
		}
	}
}

// TestMergeStreamRecordsDeterministic pins the merge rule on a hand-built
// interleaving: unstamped records (the single-stream prefix, GSN 0) sort
// first in their original order; stamped records follow in GSN order
// regardless of stream or position.
func TestMergeStreamRecordsDeterministic(t *testing.T) {
	recs := []StreamRecord{
		{Stream: 0, R: &Record{Kind: KindTxnBegin, Txn: 1, LSN: 16, GSN: 0}},
		{Stream: 0, R: &Record{Kind: KindTxnCommit, Txn: 1, LSN: 32, GSN: 0}},
		{Stream: 1, R: &Record{Kind: KindTxnBegin, Txn: 3, GSN: 107}},
		{Stream: 0, R: &Record{Kind: KindTxnBegin, Txn: 2, GSN: 101}},
		{Stream: 2, R: &Record{Kind: KindTxnCommit, Txn: 3, GSN: 112}},
		{Stream: 1, R: &Record{Kind: KindTxnCommit, Txn: 2, GSN: 104}},
	}
	MergeStreamRecords(recs)
	wantGSN := []uint64{0, 0, 101, 104, 107, 112}
	wantLSN := []LSN{16, 32, 0, 0, 0, 0}
	for i, sr := range recs {
		if sr.R.GSN != wantGSN[i] {
			t.Fatalf("pos %d: GSN %d, want %d", i, sr.R.GSN, wantGSN[i])
		}
		if wantGSN[i] == 0 && sr.R.LSN != wantLSN[i] {
			t.Fatalf("pos %d: unstamped prefix out of LSN order (LSN %d, want %d)", i, sr.R.LSN, wantLSN[i])
		}
	}
}

// TestLogSetAutoWiden pins that the on-disk stream count is a floor: a
// set written with three streams reopens with three even when asked for
// one, and widens when asked for more.
func TestLogSetAutoWiden(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLogSet(dir, 4096, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendAndFlush(&Record{Kind: KindTxnBegin, Txn: 5}); err != nil {
		t.Fatal(err)
	}
	gsnAtClose := l.GSN()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLogSet(dir, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l2.NumStreams() != 3 {
		t.Fatalf("reopened with %d streams, want 3 (floor)", l2.NumStreams())
	}
	if l2.GSN() < gsnAtClose {
		t.Fatalf("GSN seed %d below last stamped %d", l2.GSN(), gsnAtClose)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	l3, err := OpenLogSet(dir, 4096, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if l3.NumStreams() != 5 {
		t.Fatalf("widened to %d streams, want 5", l3.NumStreams())
	}
	if n, err := DetectStreamsFS(iofault.OS, dir); err != nil || n != 5 {
		t.Fatalf("DetectStreamsFS = %d, %v; want 5", n, err)
	}
}

// TestLogSetUpgradeMergesOldPrefix writes a single-stream log, reopens it
// as a two-stream set, and checks the merged scan yields the unstamped
// old records first (in LSN order) followed by the stamped new ones.
func TestLogSetUpgradeMergesOldPrefix(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLogSet(dir, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendAndFlush(
		&Record{Kind: KindTxnBegin, Txn: 2},
		&Record{Kind: KindTxnCommit, Txn: 2},
	); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLogSet(dir, 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, txn := range []TxnID{3, 4} {
		if err := l2.AppendAndFlush(
			&Record{Kind: KindTxnBegin, Txn: txn},
			&Record{Kind: KindTxnCommit, Txn: txn},
		); err != nil {
			t.Fatal(err)
		}
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	merged, err := ScanStreamsFS(iofault.OS, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 6 {
		t.Fatalf("merged %d records, want 6", len(merged))
	}
	wantTxn := []TxnID{2, 2, 3, 3, 4, 4}
	for i, sr := range merged {
		if sr.R.Txn != wantTxn[i] {
			t.Fatalf("merged[%d] txn %d, want %d", i, sr.R.Txn, wantTxn[i])
		}
		if stamped := sr.R.GSN != 0; stamped != (sr.R.Txn != 2) {
			t.Fatalf("merged[%d] txn %d stamped=%v", i, sr.R.Txn, stamped)
		}
	}
}

// TestLogSetCompactVector appends across streams and compacts with a
// vector shorter than the set: covered streams truncate to their entry,
// the uncovered stream keeps its full history.
func TestLogSetCompactVector(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLogSet(dir, 4096, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, txn := range []TxnID{3, 4, 5} { // streams 0, 1, 2
		if err := l.AppendAndFlush(
			&Record{Kind: KindTxnBegin, Txn: txn},
			&Record{Kind: KindTxnCommit, Txn: txn},
		); err != nil {
			t.Fatal(err)
		}
	}
	ends := l.StableEnds()
	if err := l.CompactVector(ends[:2]); err != nil {
		t.Fatal(err)
	}
	bases := l.BaseLSNs()
	if bases[0] != ends[0] || bases[1] != ends[1] {
		t.Fatalf("covered streams not compacted: bases %v, ends %v", bases, ends)
	}
	if bases[2] != 0 {
		t.Fatalf("uncovered stream compacted: base %d", bases[2])
	}
	if got, err := LogBasesFS(iofault.OS, dir); err != nil ||
		got[0] != bases[0] || got[1] != bases[1] || got[2] != bases[2] {
		t.Fatalf("LogBasesFS = %v, %v; want %v", got, err, bases)
	}
}

// TestLogSetPoisonFanOutNoAcks is the fail-stop contract across streams,
// checked under -race: once ANY stream poisons, no stream of the set
// acknowledges another commit. Committers sample the set-level poison
// before each commit; a commit that began after the poison was observable
// must not return nil. The fan-out must also wake every sibling stream.
func TestLogSetPoisonFanOutNoAcks(t *testing.T) {
	const streams = 4
	dir := t.TempDir()
	fsys := iofault.NewFaultFS(dir)
	// The set syncs each stream file once at open (durability of the file
	// set), so the failing sync must land after those.
	fsys.FailNthSync(streams + 3)
	l, err := OpenLogSetFS(fsys, dir, 4096, streams)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const perG = 30
	var wg sync.WaitGroup
	var mu sync.Mutex
	ackedAfterPoison := 0
	poisonedSeen := 0
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id := TxnID(g*perG + i + 1)
				poisonedBefore := l.Poisoned() != nil
				err := l.AppendAndFlush(
					&Record{Kind: KindTxnBegin, Txn: id},
					&Record{Kind: KindTxnCommit, Txn: id},
				)
				mu.Lock()
				if err == nil && poisonedBefore {
					ackedAfterPoison++
				}
				if errors.Is(err, ErrLogPoisoned) {
					poisonedSeen++
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait() // a hang here means a group-commit waiter was never woken

	if poisonedSeen == 0 {
		t.Fatal("injected fsync failure never surfaced to a committer")
	}
	if ackedAfterPoison != 0 {
		t.Fatalf("%d commits acknowledged after the set was observably poisoned", ackedAfterPoison)
	}
	if err := l.Poisoned(); !errors.Is(err, ErrLogPoisoned) {
		t.Fatalf("set Poisoned() = %v", err)
	}
	// The fan-out runs on its own goroutine; every sibling must fail-stop.
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; i < streams; i++ {
		for l.Stream(i).Poisoned() == nil {
			if time.Now().After(deadline) {
				t.Fatalf("stream %d never poisoned by the fan-out", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// And the set stays dead: no append on any stream succeeds.
	for txn := TxnID(1000); txn < TxnID(1000+streams); txn++ {
		if err := l.Append(&Record{Kind: KindTxnBegin, Txn: txn}); !errors.Is(err, ErrLogPoisoned) {
			t.Fatalf("append to txn %d's stream after poison = %v", txn, err)
		}
	}
	l.CloseWithoutFlush()
}
