package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/iofault"
)

// TestLogSetSingleStreamByteCompat pins the upgrade contract: a LogSet
// opened with one stream writes byte-identical output to a plain
// SystemLog (no GSN stamping, no extra files), so existing databases
// upgrade and downgrade without conversion.
func TestLogSetSingleStreamByteCompat(t *testing.T) {
	mkRecs := func() []*Record {
		return []*Record{
			{Kind: KindTxnBegin, Txn: 7},
			{Kind: KindPhysRedo, Txn: 7, Addr: 64, Data: []byte("abcdefgh")},
			{Kind: KindTxnCommit, Txn: 7},
		}
	}

	setDir := t.TempDir()
	ls, err := OpenLogSet(setDir, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ls.NumStreams() != 1 {
		t.Fatalf("NumStreams = %d", ls.NumStreams())
	}
	if err := ls.AppendAndFlush(mkRecs()...); err != nil {
		t.Fatal(err)
	}
	if ls.GSN() != 0 {
		// Single-stream sets never stamp: the counter stays at its seed,
		// which is zero for a freshly created set.
		t.Fatalf("single-stream set advanced the GSN: %d", ls.GSN())
	}
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(setDir, StreamFileName(1))); err == nil {
		t.Fatal("single-stream set created a second stream file")
	}

	rawDir := t.TempDir()
	sl, err := OpenSystemLog(rawDir, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := sl.AppendAndFlush(mkRecs()...); err != nil {
		t.Fatal(err)
	}
	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}

	a, err := os.ReadFile(filepath.Join(setDir, LogFileName))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(rawDir, LogFileName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("single-stream LogSet output differs from SystemLog output (%d vs %d bytes)", len(a), len(b))
	}
}

// TestLogSetRoutingAndMerge appends interleaved transactions across a
// multi-stream set and checks the two ordering invariants recovery
// relies on: all records of one transaction live on its home stream in
// append order, and the merged scan reproduces the exact global append
// order via GSNs.
func TestLogSetRoutingAndMerge(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLogSet(dir, 4096, 3)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumStreams() != 3 {
		t.Fatalf("NumStreams = %d", l.NumStreams())
	}

	// A deterministic interleaving of four transactions (streams 1, 2, 0, 1).
	var want []TxnID // global append order, by txn of each record
	appendOne := func(txn TxnID, kind Kind, payload byte) {
		r := &Record{Kind: kind, Txn: txn}
		if kind == KindPhysRedo {
			r.Addr = 128
			r.Data = []byte{payload, payload, payload, payload}
		}
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
		want = append(want, txn)
	}
	for _, txn := range []TxnID{1, 2, 3, 4} {
		appendOne(txn, KindTxnBegin, 0)
	}
	for i := 0; i < 5; i++ {
		for _, txn := range []TxnID{4, 1, 3, 2} {
			appendOne(txn, KindPhysRedo, byte(i))
		}
	}
	for _, txn := range []TxnID{2, 4, 1, 3} {
		appendOne(txn, KindTxnCommit, 0)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	merged, err := ScanStreamsFS(iofault.OS, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every multi-stream open stamps one gsn-epoch record on stream 0. It
	// carries the session's first GSN, so it merges ahead of the payload.
	if len(merged) == 0 || merged[0].R.Kind != KindGSNEpoch || merged[0].Stream != 0 {
		t.Fatal("merged scan does not start with the open's gsn-epoch record")
	}
	lastGSN := merged[0].R.GSN
	merged = merged[1:]
	if len(merged) != len(want) {
		t.Fatalf("merged %d records, appended %d", len(merged), len(want))
	}
	for i, sr := range merged {
		if sr.R.Txn != want[i] {
			t.Fatalf("merged[%d] is txn %d, want %d", i, sr.R.Txn, want[i])
		}
		if wantStream := int(uint64(sr.R.Txn) % 3); sr.Stream != wantStream {
			t.Fatalf("txn %d record on stream %d, want %d", sr.R.Txn, sr.Stream, wantStream)
		}
		if sr.R.GSN == 0 {
			t.Fatalf("merged[%d] has no GSN on a multi-stream set", i)
		}
		if sr.R.GSN <= lastGSN {
			t.Fatalf("merged[%d] GSN %d not above predecessor %d", i, sr.R.GSN, lastGSN)
		}
		lastGSN = sr.R.GSN
		if sr.R.OrderLSN() != LSN(sr.R.GSN) {
			t.Fatalf("OrderLSN %d != GSN %d", sr.R.OrderLSN(), sr.R.GSN)
		}
	}
}

// TestMergeStreamRecordsDeterministic pins the merge rule on a hand-built
// interleaving: unstamped records (the single-stream prefix, GSN 0) sort
// first in their original order; stamped records follow in GSN order
// regardless of stream or position.
func TestMergeStreamRecordsDeterministic(t *testing.T) {
	recs := []StreamRecord{
		{Stream: 0, R: &Record{Kind: KindTxnBegin, Txn: 1, LSN: 16, GSN: 0}},
		{Stream: 0, R: &Record{Kind: KindTxnCommit, Txn: 1, LSN: 32, GSN: 0}},
		{Stream: 1, R: &Record{Kind: KindTxnBegin, Txn: 3, GSN: 107}},
		{Stream: 0, R: &Record{Kind: KindTxnBegin, Txn: 2, GSN: 101}},
		{Stream: 2, R: &Record{Kind: KindTxnCommit, Txn: 3, GSN: 112}},
		{Stream: 1, R: &Record{Kind: KindTxnCommit, Txn: 2, GSN: 104}},
	}
	MergeStreamRecords(recs)
	wantGSN := []uint64{0, 0, 101, 104, 107, 112}
	wantLSN := []LSN{16, 32, 0, 0, 0, 0}
	for i, sr := range recs {
		if sr.R.GSN != wantGSN[i] {
			t.Fatalf("pos %d: GSN %d, want %d", i, sr.R.GSN, wantGSN[i])
		}
		if wantGSN[i] == 0 && sr.R.LSN != wantLSN[i] {
			t.Fatalf("pos %d: unstamped prefix out of LSN order (LSN %d, want %d)", i, sr.R.LSN, wantLSN[i])
		}
	}
}

// TestLogSetAutoWiden pins that the on-disk stream count is a floor: a
// set written with three streams reopens with three even when asked for
// one, and widens when asked for more.
func TestLogSetAutoWiden(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLogSet(dir, 4096, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendAndFlush(&Record{Kind: KindTxnBegin, Txn: 5}); err != nil {
		t.Fatal(err)
	}
	gsnAtClose := l.GSN()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLogSet(dir, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l2.NumStreams() != 3 {
		t.Fatalf("reopened with %d streams, want 3 (floor)", l2.NumStreams())
	}
	if l2.GSN() < gsnAtClose {
		t.Fatalf("GSN seed %d below last stamped %d", l2.GSN(), gsnAtClose)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	l3, err := OpenLogSet(dir, 4096, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if l3.NumStreams() != 5 {
		t.Fatalf("widened to %d streams, want 5", l3.NumStreams())
	}
	if n, err := DetectStreamsFS(iofault.OS, dir); err != nil || n != 5 {
		t.Fatalf("DetectStreamsFS = %d, %v; want 5", n, err)
	}
}

// TestLogSetUpgradeMergesOldPrefix writes a single-stream log, reopens it
// as a two-stream set, and checks the merged scan yields the unstamped
// old records first (in LSN order) followed by the stamped new ones.
func TestLogSetUpgradeMergesOldPrefix(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLogSet(dir, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendAndFlush(
		&Record{Kind: KindTxnBegin, Txn: 2},
		&Record{Kind: KindTxnCommit, Txn: 2},
	); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLogSet(dir, 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, txn := range []TxnID{3, 4} {
		if err := l2.AppendAndFlush(
			&Record{Kind: KindTxnBegin, Txn: txn},
			&Record{Kind: KindTxnCommit, Txn: txn},
		); err != nil {
			t.Fatal(err)
		}
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	merged, err := ScanStreamsFS(iofault.OS, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 7 {
		t.Fatalf("merged %d records, want 7 (6 txn records + 1 gsn-epoch)", len(merged))
	}
	// The upgrade open stamps its gsn-epoch right after the unstamped
	// single-stream prefix: it holds the session's first GSN.
	if merged[2].R.Kind != KindGSNEpoch {
		t.Fatalf("merged[2] kind %v, want the upgrade open's gsn-epoch", merged[2].R.Kind)
	}
	merged = append(merged[:2:2], merged[3:]...)
	wantTxn := []TxnID{2, 2, 3, 3, 4, 4}
	for i, sr := range merged {
		if sr.R.Txn != wantTxn[i] {
			t.Fatalf("merged[%d] txn %d, want %d", i, sr.R.Txn, wantTxn[i])
		}
		if stamped := sr.R.GSN != 0; stamped != (sr.R.Txn != 2) {
			t.Fatalf("merged[%d] txn %d stamped=%v", i, sr.R.Txn, stamped)
		}
	}
}

// TestLogSetCompactVector appends across streams and compacts with a
// vector shorter than the set: covered streams truncate to their entry,
// the uncovered stream keeps its full history.
func TestLogSetCompactVector(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLogSet(dir, 4096, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, txn := range []TxnID{3, 4, 5} { // streams 0, 1, 2
		if err := l.AppendAndFlush(
			&Record{Kind: KindTxnBegin, Txn: txn},
			&Record{Kind: KindTxnCommit, Txn: txn},
		); err != nil {
			t.Fatal(err)
		}
	}
	ends := l.StableEnds()
	if err := l.CompactVector(ends[:2]); err != nil {
		t.Fatal(err)
	}
	bases := l.BaseLSNs()
	if bases[0] != ends[0] || bases[1] != ends[1] {
		t.Fatalf("covered streams not compacted: bases %v, ends %v", bases, ends)
	}
	if bases[2] != 0 {
		t.Fatalf("uncovered stream compacted: base %d", bases[2])
	}
	if got, err := LogBasesFS(iofault.OS, dir); err != nil ||
		got[0] != bases[0] || got[1] != bases[1] || got[2] != bases[2] {
		t.Fatalf("LogBasesFS = %v, %v; want %v", got, err, bases)
	}
}

// TestLogSetPoisonFanOutNoAcks is the fail-stop contract across streams,
// checked under -race: once ANY stream poisons, no stream of the set
// acknowledges another commit. Committers sample the set-level poison
// before each commit; a commit that began after the poison was observable
// must not return nil. The fan-out must also wake every sibling stream.
func TestLogSetPoisonFanOutNoAcks(t *testing.T) {
	const streams = 4
	dir := t.TempDir()
	fsys := iofault.NewFaultFS(dir)
	// The set syncs each stream file once at open (durability of the file
	// set), so the failing sync must land after those.
	fsys.FailNthSync(streams + 3)
	l, err := OpenLogSetFS(fsys, dir, 4096, streams)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const perG = 30
	var wg sync.WaitGroup
	var mu sync.Mutex
	ackedAfterPoison := 0
	poisonedSeen := 0
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id := TxnID(g*perG + i + 1)
				poisonedBefore := l.Poisoned() != nil
				err := l.AppendAndFlush(
					&Record{Kind: KindTxnBegin, Txn: id},
					&Record{Kind: KindTxnCommit, Txn: id},
				)
				mu.Lock()
				if err == nil && poisonedBefore {
					ackedAfterPoison++
				}
				if errors.Is(err, ErrLogPoisoned) {
					poisonedSeen++
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait() // a hang here means a group-commit waiter was never woken

	if poisonedSeen == 0 {
		t.Fatal("injected fsync failure never surfaced to a committer")
	}
	if ackedAfterPoison != 0 {
		t.Fatalf("%d commits acknowledged after the set was observably poisoned", ackedAfterPoison)
	}
	if err := l.Poisoned(); !errors.Is(err, ErrLogPoisoned) {
		t.Fatalf("set Poisoned() = %v", err)
	}
	// The fan-out runs on its own goroutine; every sibling must fail-stop.
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; i < streams; i++ {
		for l.Stream(i).Poisoned() == nil {
			if time.Now().After(deadline) {
				t.Fatalf("stream %d never poisoned by the fan-out", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// And the set stays dead: no append on any stream succeeds.
	for txn := TxnID(1000); txn < TxnID(1000+streams); txn++ {
		if err := l.Append(&Record{Kind: KindTxnBegin, Txn: txn}); !errors.Is(err, ErrLogPoisoned) {
			t.Fatalf("append to txn %d's stream after poison = %v", txn, err)
		}
	}
	l.CloseWithoutFlush()
}

// TestLogSetCommitForcesDependencies is the cross-stream prefix-durability
// contract behind the sharded group commit: acknowledging a commit on one
// stream must first force every sibling stream holding volatile records
// with lower GSNs. Txn 2's op records sit unflushed on stream 0 when txn
// 3 commits on stream 1; after a crash (close without flush) txn 2's
// records must still be on disk, or redo of the acked commit could run
// against state missing its predecessor.
func TestLogSetCommitForcesDependencies(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLogSet(dir, 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Txn 2 routes to stream 0, txn 3 to stream 1.
	if err := l.Append(
		&Record{Kind: KindTxnBegin, Txn: 2},
		&Record{Kind: KindPhysRedo, Txn: 2, Addr: 64, Data: []byte{1, 2, 3, 4}},
	); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendAndFlush(
		&Record{Kind: KindTxnBegin, Txn: 3},
		&Record{Kind: KindTxnCommit, Txn: 3},
	); err != nil {
		t.Fatal(err)
	}
	commitGSN := l.GSN()
	l.CloseWithoutFlush() // crash: volatile tails are dropped

	merged, err := ScanStreamsFS(iofault.OS, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	var txn2 int
	for _, sr := range merged {
		if sr.R.Txn == 2 {
			txn2++
		}
		if sr.R.GSN == 0 || sr.R.GSN > commitGSN {
			t.Fatalf("unexpected GSN %d in crash image (commit GSN %d)", sr.R.GSN, commitGSN)
		}
	}
	if txn2 != 2 {
		t.Fatalf("txn 2 left %d durable records, want 2: acked commit depends on volatile sibling-stream records", txn2)
	}
	if gaps := FindGSNGaps(merged); len(gaps) != 0 {
		t.Fatalf("GSN gaps after dependency-forced commit: %v", gaps)
	}
}

// TestFindGSNGapsDetectsLostStream doctors the failure FindGSNGaps exists
// to report: a stream flushed past its siblings (bypassing the set-level
// dependency force), then a crash dropped the volatile sibling records.
// The merged scan must surface the hole in the stamped-GSN sequence.
func TestFindGSNGapsDetectsLostStream(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLogSet(dir, 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(&Record{Kind: KindTxnBegin, Txn: 2}); err != nil { // stream 0, GSN 2
		t.Fatal(err)
	}
	if err := l.Stream(0).Flush(); err != nil { // epoch (GSN 1) + GSN 2 durable
		t.Fatal(err)
	}
	if err := l.Append(&Record{Kind: KindPhysRedo, Txn: 2, Addr: 64, Data: []byte{9, 9, 9, 9}}); err != nil { // stream 0, GSN 3, volatile
		t.Fatal(err)
	}
	if err := l.Append(&Record{Kind: KindTxnBegin, Txn: 3}); err != nil { // stream 1, GSN 4
		t.Fatal(err)
	}
	if err := l.Stream(1).Flush(); err != nil { // per-stream flush skips the dependency force
		t.Fatal(err)
	}
	l.CloseWithoutFlush() // crash: GSN 3 is lost, GSN 4 survives

	merged, err := ScanStreamsFS(iofault.OS, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	gaps := FindGSNGaps(merged)
	if len(gaps) != 1 {
		t.Fatalf("FindGSNGaps = %v, want exactly one hole", gaps)
	}
	if g := gaps[0]; g.After != 2 || g.Next != 4 || g.Stream != 1 {
		t.Fatalf("gap = %+v, want {After:2 Next:4 Stream:1}", g)
	}
}

// TestFindGSNGapsSessionBoundary pins that reopening a multi-stream set
// does not false-positive as a gap: the GSN counter re-seeds above the
// previous session's stamps, and the per-open gsn-epoch record absorbs
// exactly that jump.
func TestFindGSNGapsSessionBoundary(t *testing.T) {
	dir := t.TempDir()
	for _, txn := range []TxnID{2, 3} {
		l, err := OpenLogSet(dir, 4096, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.AppendAndFlush(
			&Record{Kind: KindTxnBegin, Txn: txn},
			&Record{Kind: KindTxnCommit, Txn: txn},
		); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}

	merged, err := ScanStreamsFS(iofault.OS, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	var epochs int
	var jumped bool
	var prev uint64
	for _, sr := range merged {
		if sr.R.Kind == KindGSNEpoch {
			epochs++
			if prev != 0 && sr.R.GSN != prev+1 {
				jumped = true // the seed jump lands on this epoch
			}
		}
		prev = sr.R.GSN
	}
	if epochs != 2 {
		t.Fatalf("found %d gsn-epoch records, want one per open", epochs)
	}
	if !jumped {
		t.Fatal("second open did not re-seed the GSN above the first session (test would not exercise the epoch exemption)")
	}
	if gaps := FindGSNGaps(merged); len(gaps) != 0 {
		t.Fatalf("session boundary reported as gaps: %v", gaps)
	}
}
