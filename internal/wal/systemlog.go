package wal

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/iofault"
	"repro/internal/latch"
	"repro/internal/mem"
	"repro/internal/obs"
)

// ErrLogPoisoned is returned by every Append/Flush after a write or fsync
// of the stable log has failed. The log is fail-stop: retrying a failed
// fsync is unsound (the kernel may already have discarded the dirty pages
// whose writeback failed, so a later fsync returning nil proves nothing
// about the lost bytes — the classic "fsyncgate" pattern). Once poisoned,
// the only safe continuation is to crash and run restart recovery, which
// trusts only what the stable log actually contains.
var ErrLogPoisoned = errors.New("wal: log poisoned by write/fsync failure (fail-stop)")

// ErrFlushWaitCanceled reports that a FlushCtx/AppendAndFlushCtx caller's
// context ended while it was queued behind another goroutine's force. The
// caller's records (if any) remain in the tail and may still become
// durable through a later force — the outcome is unresolved, not rolled
// back. The wrapped chain also matches the context's own error.
var ErrFlushWaitCanceled = errors.New("wal: group-commit wait abandoned by context")

// LogFileName is the name of the stable system log within a database
// directory.
const LogFileName = "system.log"

// Log file header: magic plus the base LSN of the first record in the
// file. Compaction discards a durable prefix by rewriting the file with a
// higher base, so LSNs stay stable forever while the file stays bounded.
const (
	logMagic      = "DALILOG1"
	logHeaderSize = 16
)

func encodeLogHeader(base LSN) []byte {
	h := make([]byte, logHeaderSize)
	copy(h, logMagic)
	for i := 0; i < 8; i++ {
		h[8+i] = byte(uint64(base) >> (8 * i))
	}
	return h
}

func decodeLogHeader(h []byte) (LSN, error) {
	if len(h) < logHeaderSize || string(h[:8]) != logMagic {
		return 0, fmt.Errorf("wal: bad log header")
	}
	var base uint64
	for i := 0; i < 8; i++ {
		base |= uint64(h[8+i]) << (8 * i)
	}
	return LSN(base), nil
}

// DirtyNoter receives the pages touched by physical log records as they
// are flushed to the stable log. Dalí notes dirtied pages in the dirty
// page table at flush time (paper §2.1); the checkpointer registers one
// noter per ping-pong image.
type DirtyNoter interface {
	NoteDirty(id mem.PageID)
}

// DirtyNoterFunc adapts a function to the DirtyNoter interface.
type DirtyNoterFunc func(id mem.PageID)

// NoteDirty implements DirtyNoter.
func (f DirtyNoterFunc) NoteDirty(id mem.PageID) { f(id) }

// SystemLog is the system log: an in-memory tail of encoded records plus
// the stable log on disk. The system log latch serializes flushes and
// appends so that LSNs are dense byte offsets into the (stable ++ tail)
// byte stream.
type SystemLog struct {
	latch latch.Latch //dbvet:latch stream — the paper's "system log latch"; one per stream in a sharded set
	// flushDone is signalled whenever a flush completes; committers
	// waiting for their records to become durable sleep on it (group
	// commit: the latch is NOT held across the fsync, so appends and
	// other commits proceed while one force is in flight, and a single
	// force covers every record appended before it started).
	flushDone *sync.Cond
	// flushing is true while some goroutine holds the flusher role.
	flushing bool
	// flushLen is the byte length of the buffer currently being forced
	// (its records sit between stableEnd and stableEnd+flushLen).
	flushLen int

	fs        iofault.FS
	dir       string
	name      string // file name within dir (LogFileName, or a stream file)
	stream    int    // stream index within a LogSet (0 for a standalone log)
	f         iofault.File
	baseLSN   LSN    // LSN of the first record in the file (post-compaction)
	stableEnd LSN    // everything below this LSN is on disk
	tail      []byte // encoded records not yet flushed
	tailRecs  []tailRec
	pageSize  int

	// gsnSrc, when non-nil, is the owning LogSet's shared global sequence
	// counter: appendLocked stamps every record from it (under this
	// stream's latch), giving cross-stream records a total order without a
	// shared append-path latch. nil on standalone (single-stream) logs.
	gsnSrc *atomic.Uint64
	// stampedGSN is the highest GSN stamped onto a record of this stream;
	// durableGSN is the stampedGSN value as of the capture of the last
	// completed flush. Both are guarded by the stream latch. Because a
	// stream's records are stamped in ascending GSN order, every volatile
	// (not yet durable) record has GSN > durableGSN — the owning LogSet's
	// commit path uses this to decide which sibling streams must be forced
	// before a commit is acknowledged (cross-stream prefix durability).
	stampedGSN uint64
	durableGSN uint64

	// poisoned, once set, permanently fails every Append/Flush (fail-stop
	// after a stable-log write/fsync failure). Guarded by the log latch.
	poisoned error
	// onPoison, when set, is called exactly once at poison time (with this
	// stream's latch held). The owning LogSet installs a hook here that
	// fail-stops the sibling streams: it must not acquire another stream's
	// latch synchronously (it flips a set-level atomic and fans out on a
	// fresh goroutine).
	onPoison func(cause error)

	noters []DirtyNoter

	flushes uint64
	appends uint64

	// Observability. The metric handles are resolved once (at open or
	// SetRegistry) so hot paths pay only the atomic add, never a map
	// lookup. reg defaults to nil (private metrics, no sinks) until the
	// owning database wires its registry in.
	reg          *obs.Registry
	mAppends     *obs.Counter
	mAppendBytes *obs.Counter
	mFlushes     *obs.Counter
	mFlushErrors *obs.Counter
	mPoisoned    *obs.Counter
	mCompactions *obs.Counter
	hFsyncNS     *obs.Histogram
	hFlushBytes  *obs.Histogram
	hGroupCommit *obs.Histogram
	// hGroupCommitStream, set by an owning multi-stream LogSet, additionally
	// records this stream's group-commit batch sizes under a per-stream
	// metric name, so an operator can see whether commit load spreads
	// across streams. nil (no-op) on standalone logs.
	hGroupCommitStream *obs.Histogram
}

// SetRegistry wires the log's metrics and events into reg: append/flush
// counters, fsync-duration and flush-size histograms, the group-commit
// batch-size histogram, and wait instrumentation on the system log latch.
// Must be called before concurrent use begins (core.Open does this while
// building the database). A nil registry leaves the log counting into
// private, unregistered metrics.
func (l *SystemLog) SetRegistry(reg *obs.Registry) {
	l.reg = reg
	l.initMetrics()
	l.latch.Instrument(reg, "wal", reg.Histogram(obs.NameWALLatchWaitNS), reg.Counter(obs.NameWALLatchContends))
}

func (l *SystemLog) initMetrics() {
	reg := l.reg
	l.mAppends = reg.Counter(obs.NameWALAppends)
	l.mAppendBytes = reg.Counter(obs.NameWALAppendBytes)
	l.mFlushes = reg.Counter(obs.NameWALFlushes)
	l.mFlushErrors = reg.Counter(obs.NameWALFlushErrors)
	l.mPoisoned = reg.Counter(obs.NameWALPoisoned)
	l.mCompactions = reg.Counter(obs.NameWALCompactions)
	l.hFsyncNS = reg.Histogram(obs.NameWALFsyncNS)
	l.hFlushBytes = reg.Histogram(obs.NameWALFlushBytes)
	l.hGroupCommit = reg.Histogram(obs.NameWALGroupCommit)
}

// endLocked is the LSN one past the last appended record, accounting for
// an in-flight flush buffer.
func (l *SystemLog) endLocked() LSN {
	return l.stableEnd + LSN(l.flushLen+len(l.tail))
}

type tailRec struct {
	lsn  LSN
	kind Kind
	addr mem.Addr
	n    int // data length for phys-redo
}

// OpenSystemLog opens (creating if necessary) the stable log in dir on
// the real filesystem. An existing log is scanned to find its valid end;
// a torn final record is truncated away. pageSize is used to translate
// physical record addresses into dirty page notifications.
func OpenSystemLog(dir string, pageSize int) (*SystemLog, error) {
	return OpenSystemLogFS(iofault.OS, dir, pageSize)
}

// OpenSystemLogFS is OpenSystemLog with the log's durability I/O routed
// through an iofault.FS, so storage-fault campaigns can inject fsync
// failures, short writes and crash points into the stable log.
func OpenSystemLogFS(fsys iofault.FS, dir string, pageSize int) (*SystemLog, error) {
	return openStreamLogFS(fsys, dir, LogFileName, 0, pageSize)
}

// openStreamLogFS opens one stream file of a log set (stream 0 is the
// historical system.log, so single-stream databases keep their layout).
func openStreamLogFS(fsys iofault.FS, dir, name string, stream, pageSize int) (*SystemLog, error) {
	path := filepath.Join(dir, name)
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open system log: %w", err)
	}
	data, err := fsys.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: read system log: %w", err)
	}
	var base LSN
	if len(data) == 0 {
		// Fresh log: write the header.
		if _, err := f.Write(encodeLogHeader(0)); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: init log header: %w", err)
		}
		data = encodeLogHeader(0)
	} else {
		base, err = decodeLogHeader(data)
		if err != nil {
			f.Close()
			return nil, err
		}
	}
	// Find the valid record prefix after the header.
	valid := logHeaderSize
	for valid < len(data) {
		_, n, err := DecodeFrame(data[valid:])
		if err != nil {
			break
		}
		valid += n
	}
	if valid < len(data) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncate torn log tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, err
	}
	l := &SystemLog{
		fs: fsys, dir: dir, name: name, stream: stream, f: f, baseLSN: base,
		stableEnd: base + LSN(valid-logHeaderSize),
		pageSize:  pageSize,
	}
	l.flushDone = sync.NewCond(&l.latch)
	return l, nil
}

// BaseLSN reports the LSN of the oldest record retained in the stable
// log (records below it have been compacted away).
func (l *SystemLog) BaseLSN() LSN {
	l.latch.Lock()
	defer l.latch.Unlock()
	return l.baseLSN
}

// Compact discards stable records below keepFrom by rewriting the log
// file with a higher base LSN. The caller must guarantee no consumer
// needs records below keepFrom (the checkpointer compacts to the current
// certified anchor's CK_end after toggling it). Compacting to an LSN in
// the future, below the current base, or not on a record boundary is an
// error; compacting is atomic (write temp + rename).
func (l *SystemLog) Compact(keepFrom LSN) error {
	l.latch.Lock()
	defer l.latch.Unlock()
	for l.flushing {
		l.flushDone.Wait()
	}
	if l.poisoned != nil {
		return l.poisoned
	}
	if keepFrom < l.baseLSN {
		return fmt.Errorf("wal: compact to %d below base %d", keepFrom, l.baseLSN)
	}
	if keepFrom > l.stableEnd {
		return fmt.Errorf("wal: compact to %d beyond stable end %d", keepFrom, l.stableEnd)
	}
	if keepFrom == l.baseLSN {
		return nil
	}
	path := filepath.Join(l.dir, l.name)
	data, err := l.fs.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: compact read: %w", err)
	}
	cut := logHeaderSize + int(keepFrom-l.baseLSN)
	if cut > len(data) {
		return fmt.Errorf("wal: compact cut beyond file")
	}
	// Verify the cut lands on a record boundary (or end of file).
	if cut < len(data) {
		if _, _, err := DecodeFrame(data[cut:]); err != nil {
			return fmt.Errorf("wal: compact point %d is not a record boundary", keepFrom)
		}
	}
	tmp := path + ".compact"
	out, err := l.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := out.Write(encodeLogHeader(keepFrom)); err != nil {
		out.Close()
		return err
	}
	if _, err := out.Write(data[cut:]); err != nil {
		out.Close()
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	if err := l.fs.Rename(tmp, path); err != nil {
		return err
	}
	// Reopen the handle positioned at the new end.
	nf, err := l.fs.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := nf.Seek(0, 2); err != nil {
		nf.Close()
		return err
	}
	l.f.Close()
	l.f = nf
	l.baseLSN = keepFrom
	l.mCompactions.Inc()
	return nil
}

// RegisterDirtyNoter adds a recipient for dirty-page notifications
// generated during flush. Must be called before concurrent use begins.
func (l *SystemLog) RegisterDirtyNoter(n DirtyNoter) {
	l.noters = append(l.noters, n)
}

// Append encodes records into the log tail, assigning their LSNs. The
// records become durable only at the next Flush. Append is used by
// operation commit, which moves a transaction's pending local redo
// records into the tail as a unit before the operation's locks are
// released. Once the log is poisoned by a write/fsync failure, Append
// fails with a wrapped ErrLogPoisoned and appends nothing.
func (l *SystemLog) Append(recs ...*Record) error {
	l.latch.Lock()
	defer l.latch.Unlock()
	if l.poisoned != nil {
		return l.poisoned
	}
	l.appendLocked(recs)
	return nil
}

func (l *SystemLog) appendLocked(recs []*Record) {
	for _, r := range recs {
		r.LSN = l.endLocked()
		if l.gsnSrc != nil {
			r.GSN = l.gsnSrc.Add(1)
			l.stampedGSN = r.GSN
		}
		before := len(l.tail)
		l.tail = r.Encode(l.tail)
		l.tailRecs = append(l.tailRecs, tailRec{lsn: r.LSN, kind: r.Kind, addr: r.Addr, n: len(r.Data)})
		l.appends++
		l.mAppends.Inc()
		l.mAppendBytes.Add(uint64(len(l.tail) - before))
		if l.reg.HasSinks() {
			l.reg.Emit(obs.LogAppendEvent{Bytes: len(l.tail) - before})
		}
	}
}

// poisonLocked fail-stops the log: the tail is discarded (it can never
// become durable), every future Append/Flush returns the poison error,
// and every goroutine sleeping on flushDone is woken so none blocks
// forever waiting for a flush that will never complete. Caller holds the
// log latch.
func (l *SystemLog) poisonLocked(cause error) {
	if l.poisoned != nil {
		return
	}
	l.poisoned = fmt.Errorf("%w: %w", ErrLogPoisoned, cause)
	l.tail = nil
	l.tailRecs = nil
	l.mPoisoned.Inc()
	if l.reg.HasSinks() {
		l.reg.Emit(obs.LogPoisonedEvent{Cause: cause})
	}
	l.flushDone.Broadcast()
	if l.onPoison != nil {
		// Fan-out hook: one poisoned stream fail-stops the whole log set.
		// The hook runs with THIS stream's latch held, so it must not take
		// a sibling's latch synchronously (the LogSet hook flips an atomic
		// flag and poisons siblings from a fresh goroutine).
		l.onPoison(cause)
	}
}

// Poison fail-stops the log with the given cause, exactly as a failed
// write/fsync would: the tail is discarded, waiters wake, and every future
// Append/Flush fails. Used by the LogSet poison fan-out (a sibling stream
// failed) — once any stream of a set is poisoned, no stream of the set may
// acknowledge another commit. Poisoning an already poisoned log is a no-op.
func (l *SystemLog) Poison(cause error) {
	l.latch.Lock()
	defer l.latch.Unlock()
	l.poisonLocked(cause)
}

// Poisoned reports the poison error if the log has fail-stopped, nil
// otherwise.
func (l *SystemLog) Poisoned() error {
	l.latch.Lock()
	defer l.latch.Unlock()
	return l.poisoned
}

// End reports the LSN one past the last appended record (stable or not).
func (l *SystemLog) End() LSN {
	l.latch.Lock()
	defer l.latch.Unlock()
	return l.endLocked()
}

// StableEnd reports the paper's end_of_stable_log: every record below this
// LSN is known to be on disk.
func (l *SystemLog) StableEnd() LSN {
	l.latch.Lock()
	defer l.latch.Unlock()
	return l.stableEnd
}

// GSNWatermarks reports the stream's GSN high-water marks: stamped is the
// highest GSN assigned to a record of this stream, durable the highest
// GSN known to be on disk. stamped == durable means the stream holds no
// volatile stamped records; otherwise every volatile record's GSN lies in
// (durable, stamped]. Reading under the latch is what makes the pair safe
// for cross-stream commit decisions: a sibling's append holds its latch
// from stamp to tail insertion, so a stamp that predates our own commit
// record is always visible here.
func (l *SystemLog) GSNWatermarks() (stamped, durable uint64) {
	l.latch.Lock()
	defer l.latch.Unlock()
	return l.stampedGSN, l.durableGSN
}

// ForceGSNCtx blocks until every record of this stream stamped at or
// below dep is durable. It is the cross-stream dependency force of the
// set-level commit: unlike FlushCtx, which waits for the stream's current
// end, it returns as soon as the durable watermark covers the horizon —
// an in-flight group commit that captured the dependency records
// satisfies it without a second force, so concurrent committers on
// sibling streams mostly piggyback instead of queuing extra fsyncs. Only
// when the horizon is still volatile and no force is in flight does it
// start one (for the whole tail, as any flusher does).
func (l *SystemLog) ForceGSNCtx(ctx context.Context, dep uint64) error {
	l.latch.Lock()
	defer l.latch.Unlock()
	var stopWatch chan struct{}
	for l.durableGSN < dep && l.durableGSN < l.stampedGSN {
		if l.poisoned != nil {
			return l.poisoned
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w: %w", ErrFlushWaitCanceled, err)
		}
		if l.flushing {
			// The in-flight force may advance the durable watermark past
			// dep; re-check after it settles instead of queuing another.
			if ctx.Done() != nil && stopWatch == nil {
				stopWatch = make(chan struct{})
				defer close(stopWatch)
				go l.watchFlushWait(ctx, stopWatch)
			}
			l.flushDone.Wait()
			continue
		}
		if err := l.flushToLocked(ctx, l.endLocked()); err != nil {
			return err
		}
	}
	return nil
}

// Flush forces everything appended so far to the stable log and notifies
// the registered dirty noters of every page touched by a flushed physical
// record. The system log latch is released during the disk force, so
// appends and other commits proceed meanwhile (group commit); Flush
// returns once every record appended before the call is durable.
func (l *SystemLog) Flush() error {
	return l.FlushCtx(context.Background())
}

// FlushCtx is Flush with a context bounding the group-commit wait: if the
// context ends while the call is queued behind another goroutine's force,
// FlushCtx gives up and returns the context's error. A force this
// goroutine itself started is always carried to completion — cancellation
// never abandons a write in flight, it only stops waiting for one.
func (l *SystemLog) FlushCtx(ctx context.Context) error {
	l.latch.Lock()
	defer l.latch.Unlock()
	if l.poisoned != nil {
		return l.poisoned
	}
	return l.flushToLocked(ctx, l.endLocked())
}

// flushToLocked blocks until stableEnd >= target, becoming the flusher
// when no other goroutine is forcing. Callers hold the latch; it is
// dropped across the disk write and reacquired. The context bounds only
// the time spent waiting on another goroutine's force.
func (l *SystemLog) flushToLocked(ctx context.Context, target LSN) error {
	var stopWatch chan struct{}
	for l.stableEnd < target {
		if l.poisoned != nil {
			// A previous flush failed: the records below target can never
			// become durable. Fail-stop instead of blocking forever.
			return l.poisoned
		}
		if err := ctx.Err(); err != nil {
			// Still short of target and the caller's deadline has passed.
			// Appended records stay in the tail; a later force will carry
			// them, so the caller's outcome is unresolved, not aborted.
			return fmt.Errorf("%w: %w", ErrFlushWaitCanceled, err)
		}
		if l.flushing {
			// Another goroutine is forcing; its completion may cover us.
			// Before sleeping, arm a watcher (once) that wakes the
			// group-commit sleepers when the context ends, so a canceled
			// waiter observes it promptly.
			if ctx.Done() != nil && stopWatch == nil {
				stopWatch = make(chan struct{})
				defer close(stopWatch)
				go l.watchFlushWait(ctx, stopWatch)
			}
			l.flushDone.Wait()
			continue
		}
		if len(l.tail) == 0 {
			// Nothing pending and nobody flushing: target was covered by
			// a force that completed between our checks.
			break
		}
		// Become the flusher for the whole current tail. The captured
		// buffer holds every record appended so far, so on success the
		// durable-GSN watermark advances to the stamp high-water mark read
		// here, under the latch, before the force begins.
		buf := l.tail
		recs := l.tailRecs
		capturedGSN := l.stampedGSN
		l.tail = nil
		l.tailRecs = nil
		l.flushing = true
		l.flushLen = len(buf)
		l.latch.Unlock()

		start := time.Now()
		_, werr := l.f.Write(buf)
		var serr error
		if werr == nil {
			serr = l.f.Sync()
		}
		fsync := time.Since(start)
		ferr := werr
		if ferr == nil {
			ferr = serr
		}
		// One group-commit batch: record its size in records and bytes
		// and the time spent in the write+sync. No latch is held here.
		l.hFsyncNS.ObserveDuration(fsync)
		l.hFlushBytes.Observe(uint64(len(buf)))
		l.hGroupCommit.Observe(uint64(len(recs)))
		l.hGroupCommitStream.Observe(uint64(len(recs)))
		if ferr != nil {
			l.mFlushErrors.Inc()
		} else {
			l.mFlushes.Inc()
		}
		if l.reg.HasSinks() {
			l.reg.Emit(obs.LogFlushEvent{Records: len(recs), Bytes: len(buf), Fsync: fsync, Err: ferr})
		}

		//dbvet:allow latchorder flush reacquires the log latch it dropped for disk I/O; the caller's bracket releases it
		l.latch.Lock()
		l.flushing = false
		l.flushLen = 0
		if werr != nil || serr != nil {
			// Fail-stop (the fsyncgate fix): after a failed write or fsync
			// the on-disk state of these bytes is unknown, and the kernel
			// may already have dropped the dirty pages — re-queuing the
			// tail and retrying would let a later fsync "succeed" without
			// the lost bytes ever reaching disk, silently breaking the WAL
			// contract. Poison the log instead: every waiter wakes with
			// ErrLogPoisoned, every future Append/Flush fails, and the only
			// way forward is crash + restart recovery from the stable
			// prefix.
			stage := "flush"
			if werr == nil {
				stage = "sync"
			}
			cause := werr
			if cause == nil {
				cause = serr
			}
			l.poisonLocked(fmt.Errorf("wal: %s: %w", stage, cause))
			return l.poisoned
		}
		l.stableEnd += LSN(len(buf))
		if capturedGSN > l.durableGSN {
			l.durableGSN = capturedGSN
		}
		l.flushes++
		for _, tr := range recs {
			if tr.kind != KindPhysRedo || tr.n == 0 {
				continue
			}
			first := mem.PageID(uint64(tr.addr) / uint64(l.pageSize))
			last := mem.PageID((uint64(tr.addr) + uint64(tr.n) - 1) / uint64(l.pageSize))
			for id := first; id <= last; id++ {
				for _, n := range l.noters {
					n.NoteDirty(id)
				}
			}
		}
		l.flushDone.Broadcast()
	}
	return nil
}

// AppendAndFlush appends records and forces them durable before
// returning (transaction commit). Concurrent committers share forces:
// whichever becomes the flusher covers everyone appended before it.
func (l *SystemLog) AppendAndFlush(recs ...*Record) error {
	return l.AppendAndFlushCtx(context.Background(), recs...)
}

// AppendAndFlushCtx is AppendAndFlush with a context bounding the
// group-commit wait. A context that has already ended fails the call
// before anything is appended (the caller can still abort cleanly). If
// the context ends while waiting on another goroutine's force, the
// records remain in the tail — they may still become durable through a
// later force — and the context's error is returned; the caller must
// treat the outcome as unresolved, not aborted.
func (l *SystemLog) AppendAndFlushCtx(ctx context.Context, recs ...*Record) error {
	l.latch.Lock()
	defer l.latch.Unlock()
	if l.poisoned != nil {
		return l.poisoned
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.appendLocked(recs)
	return l.flushToLocked(ctx, l.endLocked())
}

// watchFlushWait wakes every group-commit sleeper when ctx ends; stop
// (closed when the waiting call returns) bounds its lifetime.
func (l *SystemLog) watchFlushWait(ctx context.Context, stop <-chan struct{}) {
	select {
	case <-ctx.Done():
	case <-stop:
		return
	}
	l.latch.Lock()
	l.flushDone.Broadcast()
	l.latch.Unlock()
}

// Flushes reports the number of flush operations performed.
func (l *SystemLog) Flushes() uint64 {
	l.latch.Lock()
	defer l.latch.Unlock()
	return l.flushes
}

// Appends reports the number of records appended.
func (l *SystemLog) Appends() uint64 {
	l.latch.Lock()
	defer l.latch.Unlock()
	return l.appends
}

// Reset discards the entire log (stable and tail) and restarts LSNs from
// zero. Corruption recovery ends with a checkpoint that "invalidates all
// archives" (paper §4.3); resetting the log afterwards keeps the anchor,
// checkpoint and log mutually consistent.
func (l *SystemLog) Reset() error {
	l.latch.Lock()
	defer l.latch.Unlock()
	for l.flushing {
		l.flushDone.Wait()
	}
	if l.poisoned != nil {
		return l.poisoned
	}
	// A reset that fails midway leaves the stable log in an unknown state
	// (possibly truncated, possibly a half-written header): fail-stop, same
	// as a failed flush.
	if err := l.f.Truncate(0); err != nil {
		l.poisonLocked(err)
		return fmt.Errorf("wal: reset: %w", l.poisoned)
	}
	if _, err := l.f.Seek(0, 0); err != nil {
		l.poisonLocked(err)
		return l.poisoned
	}
	if _, err := l.f.Write(encodeLogHeader(0)); err != nil {
		l.poisonLocked(err)
		return fmt.Errorf("wal: reset header: %w", l.poisoned)
	}
	if err := l.f.Sync(); err != nil {
		l.poisonLocked(err)
		return l.poisoned
	}
	l.baseLSN = 0
	l.stableEnd = 0
	l.tail = l.tail[:0]
	l.tailRecs = l.tailRecs[:0]
	l.stampedGSN = 0
	l.durableGSN = 0
	return nil
}

// Close flushes and closes the stable log. A poisoned log is closed
// without flushing (the tail was already discarded at poison time).
func (l *SystemLog) Close() error {
	l.latch.Lock()
	defer l.latch.Unlock()
	if l.poisoned != nil {
		l.f.Close()
		return l.poisoned
	}
	if err := l.flushToLocked(context.Background(), l.endLocked()); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// CloseWithoutFlush closes the stable log discarding the in-memory tail.
// Used by crash simulation in tests: records not yet flushed are lost,
// exactly as they would be in a process crash.
func (l *SystemLog) CloseWithoutFlush() error {
	l.latch.Lock()
	defer l.latch.Unlock()
	for l.flushing {
		l.flushDone.Wait()
	}
	return l.f.Close()
}

// LogBase reports the base LSN of the stable log in dir (the oldest
// retained record); zero for a missing or empty log. It reads through the
// real filesystem; recovery paths with an injectable FS use LogBaseFS.
func LogBase(dir string) (LSN, error) { return LogBaseFS(iofault.OS, dir) }

// LogBaseFS is LogBase reading through fsys, so recovery observes the
// same (possibly fault-injected) filesystem the engine writes through.
func LogBaseFS(fsys iofault.FS, dir string) (LSN, error) {
	return logBaseFileFS(fsys, dir, LogFileName)
}

// logBaseFileFS is LogBaseFS for one named stream file.
func logBaseFileFS(fsys iofault.FS, dir, name string) (LSN, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, name))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	if len(data) == 0 {
		return 0, nil
	}
	return decodeLogHeader(data)
}

// TruncateAt discards every stable record at or after lsn, which must be
// a record boundary at or above the log base. Prior-state recovery uses
// this to cut history; the log must not be open for writing. It operates
// on the real filesystem; recovery paths use TruncateAtFS.
func TruncateAt(dir string, lsn LSN) error { return TruncateAtFS(iofault.OS, dir, lsn) }

// TruncateAtFS is TruncateAt through fsys. The shortened log is forced
// durable before returning: a prior-state cut that silently reverts on
// crash would resurrect the history the caller just discarded.
func TruncateAtFS(fsys iofault.FS, dir string, lsn LSN) error {
	path := filepath.Join(dir, LogFileName)
	data, err := fsys.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	base, err := decodeLogHeader(data)
	if err != nil {
		return err
	}
	if lsn < base {
		return fmt.Errorf("wal: truncate point %d precedes log base %d", lsn, base)
	}
	cut := logHeaderSize + int(lsn-base)
	if cut > len(data) {
		return fmt.Errorf("wal: truncate point %d beyond log end", lsn)
	}
	if cut < len(data) {
		if _, _, err := DecodeFrame(data[cut:]); err != nil {
			return fmt.Errorf("wal: truncate point %d is not a record boundary", lsn)
		}
	}
	f, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if err := f.Truncate(int64(cut)); err != nil {
		f.Close()
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: truncate: %w", err)
	}
	return f.Close()
}

// Scan reads the stable log in dir from LSN from, invoking fn for each
// record in order. Scanning stops at the first torn record (treated as end
// of log) or when fn returns false. It is used by restart and corruption
// recovery; the log file must not be concurrently written. It reads the
// real filesystem; recovery paths with an injectable FS use ScanFS.
func Scan(dir string, from LSN, fn func(*Record) bool) error {
	return ScanFS(iofault.OS, dir, from, fn)
}

// ScanFS is Scan reading through fsys.
func ScanFS(fsys iofault.FS, dir string, from LSN, fn func(*Record) bool) error {
	return scanFileFS(fsys, dir, LogFileName, from, fn)
}

// scanFileFS is ScanFS over one named stream file.
func scanFileFS(fsys iofault.FS, dir, name string, from LSN, fn func(*Record) bool) error {
	data, err := fsys.ReadFile(filepath.Join(dir, name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("wal: scan: %w", err)
	}
	if len(data) == 0 {
		return nil
	}
	base, err := decodeLogHeader(data)
	if err != nil {
		return err
	}
	if from < base {
		return fmt.Errorf("wal: scan start %d precedes log base %d (compacted away)", from, base)
	}
	end := base + LSN(len(data)-logHeaderSize)
	if from > end {
		return fmt.Errorf("wal: scan start %d beyond log end %d", from, end)
	}
	pos := logHeaderSize + int(from-base)
	for pos < len(data) {
		r, n, err := DecodeFrame(data[pos:])
		if err != nil {
			return nil // torn tail: end of log
		}
		r.LSN = base + LSN(pos-logHeaderSize)
		if !fn(r) {
			return nil
		}
		pos += n
	}
	return nil
}
