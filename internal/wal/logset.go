// Log sets: the system log sharded into S independent streams.
//
// The single system log latch is the storage manager's scalability
// ceiling — every committer serializes through one tail and one
// group-commit queue. A LogSet splits the log into S stream files, each a
// full SystemLog with its own latch, tail and group-commit queue, so
// appends and fsyncs on different streams overlap. Global ordering is
// recovered from a GSN (global sequence number): one atomic counter
// shared by the set, stamped on every record under the owning stream's
// latch. Conflicting transactions serialize through the lock manager
// (records enter the log before locks are released), so GSN order agrees
// with the commit order an observer could see; recovery merges the
// streams by GSN into one total order (cf. Wu et al., "Fast Failure
// Recovery for Main-Memory DBMSs on Multicores": partitioned logging with
// sequence-number merge recovers near-linearly with core count).
//
// Durability is prefix-durability in GSN order: a commit is acknowledged
// only once every record stamped before it — on any stream — is on disk.
// The commit path reads each sibling's (stamped, durable) GSN watermarks
// and forces, in parallel with its own stream, any sibling still holding
// a volatile record below the committing batch; recovery double-checks
// the property by verifying the merged scan's stamped GSNs are dense
// (FindGSNGaps), with per-session epoch records absorbing the counter
// re-seed at open.
//
// Stream 0 is the historical system.log. A set opened with S=1 never
// stamps GSNs and writes byte-identical output to the pre-stream format,
// so existing databases upgrade (and downgrade) without conversion.
package wal

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/iofault"
	"repro/internal/obs"
)

// StreamFileName is the on-disk name of log stream i within a database
// directory. Stream 0 keeps the historical single-log name so that
// single-stream databases retain their exact layout.
func StreamFileName(i int) string {
	if i == 0 {
		return LogFileName
	}
	return fmt.Sprintf("system-%d.log", i)
}

// LogSet is a set of S independent log streams acting as one logical
// system log. Transactions are assigned a stream by transaction ID, append
// under that stream's latch only, and group-commit independently;
// cross-stream order is carried by the GSN stamped on every record.
//
// Poison is set-global: a write/fsync failure on any stream fail-stops
// every stream (one torn stream invalidates the WAL contract for the
// whole database), and no commit is acknowledged after any stream
// poisons.
type LogSet struct {
	streams []*SystemLog

	// gsn is the shared global sequence counter. Streams stamp records from
	// it under their own latch (never a shared one); it is seeded above the
	// total bytes ever written so GSNs always compare greater than the LSNs
	// of pre-stream records.
	gsn atomic.Uint64

	// poison holds the first poison cause observed on any stream. It is set
	// synchronously (under the failing stream's latch) before that stream's
	// flush returns, so a commit that starts after a poison can never be
	// acknowledged: AppendAndFlushCtx re-checks it after a successful flush.
	poison atomic.Pointer[poisonCell]

	gGSN *obs.Gauge
}

type poisonCell struct{ err error }

// OpenLogSet opens (creating if necessary) a log set of at least the
// given number of streams in dir on the real filesystem.
func OpenLogSet(dir string, pageSize, streams int) (*LogSet, error) {
	return OpenLogSetFS(iofault.OS, dir, pageSize, streams)
}

// OpenLogSetFS is OpenLogSet through an iofault.FS. The set is widened to
// cover every stream file already present in dir: opening a database with
// fewer streams than it was written with would hide committed records
// from recovery, so the on-disk stream count is a floor, never shrunk.
func OpenLogSetFS(fsys iofault.FS, dir string, pageSize, streams int) (*LogSet, error) {
	s := streams
	if s < 1 {
		s = 1
	}
	// One Stat-based detection pass decides the width (probes cost a
	// metadata lookup each, never a file read); the on-disk count is a
	// floor, never shrunk.
	existing, err := DetectStreamsFS(fsys, dir)
	if err != nil {
		return nil, err
	}
	if existing > s {
		s = existing
	}
	l := &LogSet{}
	for i := 0; i < s; i++ {
		sl, err := openStreamLogFS(fsys, dir, StreamFileName(i), i, pageSize)
		if err != nil {
			for _, open := range l.streams {
				open.CloseWithoutFlush()
			}
			return nil, fmt.Errorf("wal: open stream %d: %w", i, err)
		}
		l.streams = append(l.streams, sl)
	}
	// Make every stream file's directory entry durable before any commit
	// can be acknowledged. Without this a crash could lose an unsynced,
	// still-empty stream file while a sibling holds acked commits, and a
	// later open would miscount the set (a gap ends detection). Stream
	// files are synced in index order, so the durable set is always a
	// prefix. Single-stream sets skip this to keep the historical open
	// sequence (and its crash-point enumeration) exactly as it was.
	if s > 1 {
		for i, sl := range l.streams {
			//dbvet:allow errflow open-time sync failure fails the whole open; no log set exists yet to poison and no commit has been acked
			if err := sl.f.Sync(); err != nil {
				l.CloseWithoutFlush()
				return nil, fmt.Errorf("wal: sync stream %d at open: %w", i, err)
			}
		}
		if err := fsys.SyncDir(dir); err != nil {
			l.CloseWithoutFlush()
			return nil, fmt.Errorf("wal: sync log dir at open: %w", err)
		}
	}
	// Seed the GSN above every byte offset already written: GSN values are
	// then strictly greater than any pre-stream LSN, so OrderLSN comparisons
	// across a stream-count change remain conservative-correct (at most one
	// GSN is consumed per record, and a record costs at least one byte).
	var seed uint64
	for _, sl := range l.streams {
		seed += uint64(sl.End())
	}
	l.gsn.Store(seed)
	for _, sl := range l.streams {
		if s > 1 {
			// Single-stream sets never stamp GSNs, keeping their on-disk
			// format byte-identical to the pre-stream layout.
			sl.gsnSrc = &l.gsn
		}
		sl.onPoison = l.onStreamPoison
	}
	if s > 1 {
		// Open a GSN stamping session: the epoch record takes the session's
		// first stamp (seed+1), so a recovery scan can tell the legitimate
		// jump a re-seeded counter makes at open from a genuine hole in the
		// sequence (FindGSNGaps). It is appended, not forced — the first
		// commit's cross-stream dependency force (AppendAndFlushCtx) makes
		// it durable before any commit of the session is acknowledged.
		if err := l.streams[0].Append(&Record{Kind: KindGSNEpoch}); err != nil {
			l.CloseWithoutFlush()
			return nil, fmt.Errorf("wal: append gsn epoch: %w", err)
		}
	}
	l.gGSN = (*obs.Registry)(nil).Gauge(obs.NameWALGSN)
	return l, nil
}

// streamFileExists probes for stream i's file with a metadata Stat (never
// a content read — log files are large and probes are per-open). An error
// other than non-existence is propagated, not folded into "absent": an
// injected or real I/O failure must never make the set look narrower than
// it is.
func streamFileExists(fsys iofault.FS, dir string, i int) (bool, error) {
	_, err := fsys.Stat(filepath.Join(dir, StreamFileName(i)))
	if err == nil {
		return true, nil
	}
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	return false, err
}

// onStreamPoison is installed as every stream's poison hook. It runs with
// the failing stream's latch held, so it must not acquire a sibling latch
// synchronously: it publishes the set-level poison (which gates all future
// commit acks) and fans the fail-stop out to the sibling streams on a
// fresh goroutine.
func (l *LogSet) onStreamPoison(cause error) {
	cell := &poisonCell{err: fmt.Errorf("%w: stream failure: %w", ErrLogPoisoned, cause)}
	if !l.poison.CompareAndSwap(nil, cell) {
		return // a sibling already poisoned the set; fan-out is in flight
	}
	if len(l.streams) > 1 {
		go l.poisonSiblings(cause)
	}
}

// poisonSiblings fail-stops every stream of the set. Poisoning is
// idempotent, so the originating stream (and any racing failures) are
// no-ops; each sibling wakes its own group-commit waiters with
// ErrLogPoisoned.
func (l *LogSet) poisonSiblings(cause error) {
	for _, s := range l.streams {
		s.Poison(fmt.Errorf("sibling stream failed: %w", cause))
	}
}

// Poisoned reports the set-level poison error if any stream has
// fail-stopped, nil otherwise.
func (l *LogSet) Poisoned() error {
	if c := l.poison.Load(); c != nil {
		return c.err
	}
	return nil
}

// streamFor routes a record to its stream: transaction records go to the
// transaction's home stream (assigned by ID at Begin, so a transaction's
// records stay in one stream in append order), 2PC decision records are
// spread by global transaction ID, and everything else (audit records,
// whose LSNs define Audit_SN) stays on stream 0.
func (l *LogSet) streamFor(r *Record) int {
	n := len(l.streams)
	if n == 1 {
		return 0
	}
	if r.Txn != 0 {
		return int(uint64(r.Txn) % uint64(n))
	}
	if r.Kind == KindTxnDecision {
		return int(r.GID % uint64(n))
	}
	return 0
}

// StreamOf reports which stream records of transaction txn append to.
func (l *LogSet) StreamOf(txn TxnID) int {
	return l.streamFor(&Record{Txn: txn})
}

// Append encodes records into their stream's tail, assigning LSNs (and,
// on multi-stream sets, GSNs). All records of one call must route to the
// same stream — they belong to one transaction (operation commit moves a
// transaction's redo records as a unit).
func (l *LogSet) Append(recs ...*Record) error {
	if len(recs) == 0 {
		return nil
	}
	return l.streams[l.streamFor(recs[0])].Append(recs...)
}

// AppendAndFlush appends records to their stream and forces them durable
// (transaction commit). Committers on the same stream share forces;
// committers on different streams fsync in parallel.
func (l *LogSet) AppendAndFlush(recs ...*Record) error {
	return l.AppendAndFlushCtx(context.Background(), recs...)
}

// AppendAndFlushCtx is AppendAndFlush with a context bounding the
// group-commit wait.
//
// On a multi-stream set the flush enforces the WAL prefix property across
// streams before the commit is acknowledged. The committing transaction
// may depend on records it never wrote: an op-commit another transaction
// appended (without flushing) before releasing its operation locks, or
// index state observed under a structure latch. Every such record was
// stamped before this batch, so its GSN is below the batch's first stamp —
// but it may sit volatile in a sibling stream's tail, because sibling
// group-commit queues run independently. A commit acknowledged while such
// a record is volatile would let a crash erase the predecessor underneath
// a durably-committed dependent (a single shared log prevented this by
// flushing its prefix wholesale). So before the home stream's flush the
// commit forces every sibling still holding a volatile record stamped
// below this batch — the active form of Wu et al.'s passive group commit:
// the ack waits until the global durable-GSN watermark covers the batch's
// dependency horizon.
//
// The two force rounds are ordered, not merged: the sibling forces (which
// do run in parallel with each other) must complete before the home
// stream's flush starts. Flushing the commit record concurrently with its
// dependencies would open a window where the commit is durable while a
// dependency is still volatile — a crash there recovers a committed
// transaction on top of a hole, the exact anomaly the force exists to
// prevent. Ordering the rounds keeps the on-disk image write-ahead at
// every instant: a commit record becomes durable only after everything
// below its dependency horizon already is.
//
// After the forces the set-level poison is re-checked: once any stream
// has poisoned, no stream of the set acknowledges another commit, even if
// the fsyncs here succeeded — the database is fail-stop as a unit.
func (l *LogSet) AppendAndFlushCtx(ctx context.Context, recs ...*Record) error {
	if len(recs) == 0 {
		return nil
	}
	home := l.streams[l.streamFor(recs[0])]
	if len(l.streams) == 1 {
		return home.AppendAndFlushCtx(ctx, recs...)
	}
	if err := ctx.Err(); err != nil {
		// Fail before anything is appended (the caller can still abort).
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := home.Append(recs...); err != nil {
		return err
	}
	// dep is the dependency horizon: every record the batch could depend
	// on was stamped strictly before the batch's first record. A sibling
	// needs forcing iff it still holds a volatile record at or below dep —
	// volatile records' GSNs all exceed the stream's durable watermark, so
	// that reduces to durable < dep (watermarks read under the sibling's
	// latch, which orders them after any stamp that precedes ours).
	dep := recs[0].GSN - 1
	var siblings []*SystemLog
	for _, s := range l.streams {
		if s == home {
			continue
		}
		if stamped, durable := s.GSNWatermarks(); stamped > durable && durable < dep {
			siblings = append(siblings, s)
		}
	}
	var err error
	switch len(siblings) {
	case 0:
	case 1:
		err = siblings[0].ForceGSNCtx(ctx, dep)
	default:
		errs := make([]error, len(siblings))
		var wg sync.WaitGroup
		for i, s := range siblings {
			wg.Add(1)
			go func(i int, s *SystemLog) {
				defer wg.Done()
				errs[i] = s.ForceGSNCtx(ctx, dep)
			}(i, s)
		}
		// Each per-stream ForceGSNCtx honors ctx itself, so this join is
		// bounded by the caller's context.
		//dbvet:allow ctxflow the joined goroutines run ForceGSNCtx with this ctx, which unblocks on cancellation
		wg.Wait()
		err = errors.Join(errs...)
	}
	if err == nil {
		// Dependencies are durable; only now may the commit record be.
		err = home.FlushCtx(ctx)
	}
	if err == nil {
		if perr := l.Poisoned(); perr != nil {
			return perr
		}
		l.gGSN.Set(int64(l.gsn.Load()))
	}
	return err
}

// Flush forces every stream's tail durable.
func (l *LogSet) Flush() error {
	return l.FlushCtx(context.Background())
}

// FlushCtx is Flush with a context bounding each stream's group-commit
// wait. Streams flush in parallel so their fsyncs overlap; the first
// error (if any) is returned after all streams settle.
func (l *LogSet) FlushCtx(ctx context.Context) error {
	if len(l.streams) == 1 {
		return l.streams[0].FlushCtx(ctx)
	}
	errs := make([]error, len(l.streams))
	var wg sync.WaitGroup
	for i, s := range l.streams {
		wg.Add(1)
		go func(i int, s *SystemLog) {
			defer wg.Done()
			errs[i] = s.FlushCtx(ctx)
		}(i, s)
	}
	// Each per-stream FlushCtx honors ctx itself (its group-commit wait
	// returns on ctx.Done), so this join is bounded by the same context the
	// caller supplied: every branch it waits on unblocks when ctx ends.
	//dbvet:allow ctxflow the joined goroutines run FlushCtx with this ctx, which unblocks on cancellation
	wg.Wait()
	return errors.Join(errs...)
}

// NumStreams reports the number of streams in the set.
func (l *LogSet) NumStreams() int { return len(l.streams) }

// Stream returns stream i (tests and tools; engine code routes through
// the set API).
func (l *LogSet) Stream(i int) *SystemLog { return l.streams[i] }

// GSN reports the last global sequence number stamped (zero on
// single-stream sets, which never stamp).
func (l *LogSet) GSN() uint64 { return l.gsn.Load() }

// End reports stream 0's end. Single-stream callers (and Audit_SN
// bookkeeping, which lives on stream 0) see exactly the historical
// system-log semantics.
func (l *LogSet) End() LSN { return l.streams[0].End() }

// StableEnd reports stream 0's end_of_stable_log.
func (l *LogSet) StableEnd() LSN { return l.streams[0].StableEnd() }

// BaseLSN reports stream 0's base LSN.
func (l *LogSet) BaseLSN() LSN { return l.streams[0].BaseLSN() }

// StableEnds reports every stream's end_of_stable_log as a vector indexed
// by stream. Captured under the checkpoint barrier (when no flush is in
// flight and all streams are forced), it is a consistent cut: the
// per-stream positions a checkpoint image is update-consistent with.
func (l *LogSet) StableEnds() []LSN {
	ends := make([]LSN, len(l.streams))
	for i, s := range l.streams {
		ends[i] = s.StableEnd()
	}
	return ends
}

// Ends reports every stream's end (stable or not), indexed by stream.
func (l *LogSet) Ends() []LSN {
	ends := make([]LSN, len(l.streams))
	for i, s := range l.streams {
		ends[i] = s.End()
	}
	return ends
}

// BaseLSNs reports every stream's base LSN, indexed by stream.
func (l *LogSet) BaseLSNs() []LSN {
	bases := make([]LSN, len(l.streams))
	for i, s := range l.streams {
		bases[i] = s.BaseLSN()
	}
	return bases
}

// Compact discards stream 0's records below keepFrom. Kept for
// single-stream callers; multi-stream truncation uses CompactVector.
func (l *LogSet) Compact(keepFrom LSN) error { return l.streams[0].Compact(keepFrom) }

// CompactVector discards each stream's records below its entry in keep
// (the stream-vector truncation point a certified checkpoint anchors).
// A vector shorter than the set compacts only the streams it covers — an
// anchor written before the set was widened simply retains the newer
// streams whole.
func (l *LogSet) CompactVector(keep []LSN) error {
	var errs []error
	for i, s := range l.streams {
		if i >= len(keep) {
			break
		}
		if err := s.Compact(keep[i]); err != nil {
			errs = append(errs, fmt.Errorf("stream %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Reset discards every stream (stable and tail) and restarts LSNs and the
// GSN from zero (corruption recovery's post-checkpoint log reset).
func (l *LogSet) Reset() error {
	var errs []error
	for i, s := range l.streams {
		if err := s.Reset(); err != nil {
			errs = append(errs, fmt.Errorf("stream %d: %w", i, err))
		}
	}
	l.gsn.Store(0)
	return errors.Join(errs...)
}

// Close flushes and closes every stream.
func (l *LogSet) Close() error {
	var errs []error
	for _, s := range l.streams {
		errs = append(errs, s.Close())
	}
	return errors.Join(errs...)
}

// CloseWithoutFlush closes every stream discarding in-memory tails
// (crash simulation).
func (l *LogSet) CloseWithoutFlush() error {
	var errs []error
	for _, s := range l.streams {
		errs = append(errs, s.CloseWithoutFlush())
	}
	return errors.Join(errs...)
}

// Flushes reports the total flush operations across streams.
func (l *LogSet) Flushes() uint64 {
	var n uint64
	for _, s := range l.streams {
		n += s.Flushes()
	}
	return n
}

// Appends reports the total records appended across streams.
func (l *LogSet) Appends() uint64 {
	var n uint64
	for _, s := range l.streams {
		n += s.Appends()
	}
	return n
}

// SetRegistry wires every stream's metrics into reg. Streams share the
// aggregate wal.* counters and histograms; multi-stream sets additionally
// record per-stream group-commit batch sizes under
// "wal.group_commit_records.stream<i>" so an operator can see whether
// commit load is spread across streams. Must be called before concurrent
// use begins.
func (l *LogSet) SetRegistry(reg *obs.Registry) {
	for i, s := range l.streams {
		s.SetRegistry(reg)
		if len(l.streams) > 1 {
			s.hGroupCommitStream = reg.Histogram(obs.NameWALGroupCommitStream + strconv.Itoa(i))
		}
	}
	reg.Gauge(obs.NameWALStreams).Set(int64(len(l.streams)))
	l.gGSN = reg.Gauge(obs.NameWALGSN)
}

// RegisterDirtyNoter adds a dirty-page recipient on every stream (a page
// dirtied by a record in any stream must reach the checkpointer). Must be
// called before concurrent use begins.
func (l *LogSet) RegisterDirtyNoter(n DirtyNoter) {
	for _, s := range l.streams {
		s.RegisterDirtyNoter(n)
	}
}

// StreamStat is a point-in-time summary of one stream, for tooling
// (cmd/dbstat) and tests.
type StreamStat struct {
	Stream    int
	Appends   uint64
	Flushes   uint64
	BaseLSN   LSN
	StableEnd LSN
	End       LSN
	Poisoned  bool
}

// StreamStats summarizes every stream.
func (l *LogSet) StreamStats() []StreamStat {
	stats := make([]StreamStat, len(l.streams))
	for i, s := range l.streams {
		stats[i] = StreamStat{
			Stream:    i,
			Appends:   s.Appends(),
			Flushes:   s.Flushes(),
			BaseLSN:   s.BaseLSN(),
			StableEnd: s.StableEnd(),
			End:       s.End(),
			Poisoned:  s.Poisoned() != nil,
		}
	}
	return stats
}

// DetectStreamsFS reports how many log stream files exist in dir: 0 when
// no log exists, otherwise the count of consecutive stream files from
// stream 0. Multi-stream sets sync every stream file's directory entry in
// index order at open, before any commit is acknowledged, so the durable
// set is always a gap-free prefix.
func DetectStreamsFS(fsys iofault.FS, dir string) (int, error) {
	n := 0
	for {
		ok, err := streamFileExists(fsys, dir, n)
		if err != nil {
			return 0, fmt.Errorf("wal: probe stream %d: %w", n, err)
		}
		if !ok {
			return n, nil
		}
		n++
	}
}

// LogBasesFS reports every existing stream's base LSN, indexed by stream
// (the per-stream compaction horizons recovery and media recovery check
// their starting vectors against). An empty slice means no log exists.
func LogBasesFS(fsys iofault.FS, dir string) ([]LSN, error) {
	n, err := DetectStreamsFS(fsys, dir)
	if err != nil {
		return nil, err
	}
	bases := make([]LSN, n)
	for i := 0; i < n; i++ {
		base, err := logBaseFileFS(fsys, dir, StreamFileName(i))
		if err != nil {
			return nil, fmt.Errorf("wal: stream %d base: %w", i, err)
		}
		bases[i] = base
	}
	return bases, nil
}

// ScanStreamFS scans one stream file of a multi-stream set from the given
// local LSN, in local LSN order — the per-stream analogue of ScanFS for
// tooling that wants to inspect a single shard of the log.
func ScanStreamFS(fsys iofault.FS, dir string, stream int, from LSN, fn func(*Record) bool) error {
	return scanFileFS(fsys, dir, StreamFileName(stream), from, fn)
}

// StreamRecord is one record of a merged multi-stream scan, tagged with
// the stream it was read from.
type StreamRecord struct {
	Stream int
	R      *Record
}

// ScanStreamsFS reads every stream file in dir from its entry in starts
// (streams beyond the vector scan from their base) and returns all
// records merged into global order: GSN order for stamped records, with
// the unstamped single-stream prefix — which only stream 0 can hold, and
// whose LSNs every GSN exceeds by construction — first in LSN order.
// Streams are read concurrently. Torn tails end each stream's scan, as in
// Scan.
func ScanStreamsFS(fsys iofault.FS, dir string, starts []LSN) ([]StreamRecord, error) {
	n, err := DetectStreamsFS(fsys, dir)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	per := make([][]StreamRecord, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			from := LSN(0)
			if i < len(starts) {
				from = starts[i]
			} else {
				base, err := logBaseFileFS(fsys, dir, StreamFileName(i))
				if err != nil {
					errs[i] = err
					return
				}
				from = base
			}
			errs[i] = scanFileFS(fsys, dir, StreamFileName(i), from, func(r *Record) bool {
				per[i] = append(per[i], StreamRecord{Stream: i, R: r})
				return true
			})
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	total := 0
	for _, p := range per {
		total += len(p)
	}
	out := make([]StreamRecord, 0, total)
	for _, p := range per {
		out = append(out, p...)
	}
	// Stable sort by GSN: unstamped records (GSN 0) sort first and keep
	// their stream-0 LSN order; stamped records are globally unique, so
	// ties exist only among the unstamped prefix.
	sort.SliceStable(out, func(a, b int) bool {
		return out[a].R.GSN < out[b].R.GSN
	})
	return out, nil
}

// MergeStreamRecords sorts already-read per-stream records into the same
// global order ScanStreamsFS produces (exported for the log tools, which
// read streams themselves to preserve per-stream positions).
func MergeStreamRecords(recs []StreamRecord) {
	sort.SliceStable(recs, func(a, b int) bool {
		return recs[a].R.GSN < recs[b].R.GSN
	})
}

// GSNGap is a hole in the stamped-GSN sequence of a merged multi-stream
// scan: After is the last GSN seen before the hole, Next the first GSN
// after it (Next > After+1 and the record carrying Next is not a session
// epoch), Stream the stream Next was read from.
type GSNGap struct {
	After, Next uint64
	Stream      int
}

// FindGSNGaps verifies the density of the stamped-GSN sequence in a
// merged scan. GSNs are stamped one per record from a single shared
// counter, so within a stamping session the merged sequence is dense;
// the counter re-seeds above the total bytes written at every open, and
// the KindGSNEpoch record appended there carries the session's first
// stamp, absorbing exactly that jump. Any other jump is a hole: each
// stream ends its scan independently at its own torn tail, so a record
// lost from one stream would otherwise be silently papered over by
// higher-GSN survivors on its siblings. The commit path's cross-stream
// dependency force keeps every record below an acknowledged commit
// durable, so a reported gap below the last committed GSN is evidence of
// a broken durability contract (or a damaged log), not of a normal crash
// — recovery surfaces it rather than trusting the merge blindly. Records
// above the cut with GSN zero (the unstamped single-stream prefix) are
// outside the stamped sequence and are skipped.
func FindGSNGaps(recs []StreamRecord) []GSNGap {
	var gaps []GSNGap
	var prev uint64
	for _, sr := range recs {
		g := sr.R.GSN
		if g == 0 {
			continue
		}
		if prev != 0 && g != prev+1 && sr.R.Kind != KindGSNEpoch {
			gaps = append(gaps, GSNGap{After: prev, Next: g, Stream: sr.Stream})
		}
		prev = g
	}
	return gaps
}
