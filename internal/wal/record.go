// Package wal implements the logging subsystem of the reproduced Dalí
// storage manager: physical redo records, operation commit records
// carrying logical undo descriptions, transaction control records, the
// paper's read-log records (with optional codewords), per-transaction
// local undo and redo logs held in the active transaction table (ATT),
// and the system log with its in-memory tail and stable on-disk portion.
//
// Logging is "local" in the Dalí sense (paper §2): physical undo and redo
// records accumulate in the transaction's ATT entry, and when a
// lower-level operation commits, its redo records are moved to the system
// log tail and its physical undo records are replaced by a single logical
// undo record. Physical undo information reaches disk only inside
// checkpointed copies of the ATT, never through the log.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/mem"
	"repro/internal/region"
)

// LSN is a log sequence number: the byte offset of a record in the system
// log (stable portion plus in-memory tail).
type LSN uint64

// TxnID identifies a transaction.
type TxnID uint64

// ObjectKey identifies the logical object an operation manipulates (for
// the heap layer: table and slot). It is the unit at which operation
// conflicts are decided, both by the lock manager during normal operation
// and by the delete-transaction recovery algorithm when it checks a begin
// operation record against the undo logs of corrupted transactions.
type ObjectKey uint64

// Kind discriminates log record types.
type Kind uint8

// Log record kinds.
const (
	// KindPhysRedo is a physical after-image: addr, data. May carry the
	// region codeword observed by the writer when the CW Read Logging
	// scheme is active ("a codeword stored in a write log record indicates
	// it should be treated as a read followed by a write", paper §4.3).
	KindPhysRedo Kind = iota + 1
	// KindOpBegin marks the start of a lower-level operation on an object.
	KindOpBegin
	// KindOpCommit commits a lower-level operation and carries its logical
	// undo description.
	KindOpCommit
	// KindTxnBegin marks the start of a transaction.
	KindTxnBegin
	// KindTxnCommit commits a transaction.
	KindTxnCommit
	// KindTxnAbort records that a transaction's rollback completed.
	KindTxnAbort
	// KindRead is the paper's read-log record: the identity of data read
	// (start address and byte count) and optionally the codeword of the
	// enclosing region(s), but never the value itself.
	KindRead
	// KindAuditBegin marks the log position at which a database audit
	// began; its serial number becomes Audit_SN if the audit comes back
	// clean.
	KindAuditBegin
	// KindAuditEnd records the audit outcome (clean or the corrupt ranges).
	KindAuditEnd
	// KindTxnPrepare records that a transaction participating in a
	// cross-shard two-phase commit has entered the prepared state: all its
	// operations are committed at their level, its redo is in the system
	// log up to and including this record, and its fate now rests with the
	// coordinator's decision record (identified by the global transaction
	// ID carried in GID). Recovery keeps prepared transactions attached —
	// neither undone nor released — until the decision is known.
	KindTxnPrepare
	// KindTxnDecision is the coordinator's commit/abort decision for a
	// cross-shard transaction, written to the coordinator shard's log. GID
	// identifies the global transaction; Decision is true for commit.
	// Under presumed abort, a missing decision record means abort.
	KindTxnDecision
	// KindGSNEpoch marks the start of a GSN stamping session: a multi-stream
	// log set appends one to stream 0 at every open, immediately after
	// seeding its GSN counter, so the record's own GSN is the first stamp of
	// the session. The counter is seeded above the sum of stream ends (to
	// dominate pre-stream LSNs), which jumps past the previous session's
	// last stamp — recovery's gap detector uses the epoch record to tell
	// these legitimate session-boundary jumps from a genuine hole, where a
	// record a durable commit depended on was lost. Single-stream logs
	// never write one, preserving their byte-exact format.
	KindGSNEpoch
)

var kindNames = map[Kind]string{
	KindPhysRedo:    "phys-redo",
	KindOpBegin:     "op-begin",
	KindOpCommit:    "op-commit",
	KindTxnBegin:    "txn-begin",
	KindTxnCommit:   "txn-commit",
	KindTxnAbort:    "txn-abort",
	KindRead:        "read",
	KindAuditBegin:  "audit-begin",
	KindAuditEnd:    "audit-end",
	KindTxnPrepare:  "txn-prepare",
	KindTxnDecision: "txn-decision",
	KindGSNEpoch:    "gsn-epoch",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// LogicalUndo describes how to logically undo a committed lower-level
// operation. Op is an opcode registered by the storage layer (see package
// heap); Key is the object the undo applies to; Args is opcode-specific.
type LogicalUndo struct {
	Op   uint8
	Key  ObjectKey
	Args []byte
}

// Record is a system log record. A single struct with a kind
// discriminator keeps encoding and the recovery scan simple; unused
// fields are zero.
type Record struct {
	LSN  LSN // assigned when the record enters the system log tail
	Kind Kind
	Txn  TxnID

	// GSN is the global sequence number stamped by a multi-stream log set
	// (wal.LogSet) under the owning stream's latch: an atomic counter shared
	// by all streams, so (stream, LSN) pairs merge into one total order
	// without a shared append-path latch. Zero on single-stream logs — the
	// encoder omits a zero GSN entirely, keeping S=1 output byte-identical
	// to the pre-stream format.
	GSN uint64

	// Physical fields (KindPhysRedo, KindRead).
	Addr mem.Addr
	Len  int    // byte count for KindRead
	Data []byte // after-image for KindPhysRedo

	// Optional codeword (KindRead, KindPhysRedo under CW Read Logging).
	HasCW bool
	CW    region.Codeword

	// Operation fields (KindOpBegin, KindOpCommit).
	Level uint8
	Key   ObjectKey
	Undo  LogicalUndo // valid for KindOpCommit
	// Compensation marks an operation executed during rollback to
	// logically undo an earlier committed operation. When recovery's redo
	// scan reconstructs a transaction's undo log and meets a compensating
	// op-commit, it pops the compensated logical undo entry instead of
	// pushing a new one (the compensated operation must not be undone
	// twice).
	Compensation bool

	// Audit fields (KindAuditBegin, KindAuditEnd).
	AuditSN      uint64
	AuditClean   bool
	CorruptAddrs []mem.Addr // start of each corrupt region (KindAuditEnd)
	CorruptLens  []uint32   // length of each corrupt region

	// Two-phase-commit fields (KindTxnPrepare, KindTxnDecision).
	GID      uint64 // global transaction ID (coordinator shard | coordinator txn)
	Decision bool   // coordinator verdict: true = commit (KindTxnDecision)
}

// Encoding layout: every record is framed as
//
//	[payloadLen uint32][crc32(payload) uint32][payload]
//
// so that a torn write at the stable log tail is detected and treated as
// the end of the log, as in any WAL implementation.
const frameHeaderSize = 8

var (
	// ErrTornRecord reports a truncated or corrupt record frame at the
	// stable log tail.
	ErrTornRecord = errors.New("wal: torn or corrupt log record")
	castagnoli    = crc32.MakeTable(crc32.Castagnoli)
)

// appendUvarint appends a varint-encoded value.
func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// EncodedSize returns the number of bytes Encode will produce for r,
// including framing. Used to assign LSNs before serialization.
func (r *Record) EncodedSize() int {
	return frameHeaderSize + len(r.encodePayload(nil))
}

// Encode appends the framed record to b.
func (r *Record) Encode(b []byte) []byte {
	payload := r.encodePayload(nil)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(payload, castagnoli))
	return append(b, payload...)
}

func (r *Record) encodePayload(b []byte) []byte {
	b = append(b, byte(r.Kind))
	b = appendUvarint(b, uint64(r.Txn))
	switch r.Kind {
	case KindPhysRedo:
		b = appendUvarint(b, uint64(r.Addr))
		b = appendUvarint(b, uint64(len(r.Data)))
		b = append(b, r.Data...)
		b = r.encodeCW(b)
	case KindRead:
		b = appendUvarint(b, uint64(r.Addr))
		b = appendUvarint(b, uint64(r.Len))
		b = r.encodeCW(b)
	case KindOpBegin:
		b = append(b, r.Level)
		b = appendUvarint(b, uint64(r.Key))
	case KindOpCommit:
		b = append(b, r.Level)
		b = appendUvarint(b, uint64(r.Key))
		if r.Compensation {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = append(b, r.Undo.Op)
		b = appendUvarint(b, uint64(r.Undo.Key))
		b = appendUvarint(b, uint64(len(r.Undo.Args)))
		b = append(b, r.Undo.Args...)
	case KindTxnBegin, KindTxnCommit, KindTxnAbort, KindGSNEpoch:
		// Kind and Txn suffice (the epoch's session seed is carried by its
		// own GSN stamp in the trailing field).
	case KindTxnPrepare:
		b = appendUvarint(b, r.GID)
	case KindTxnDecision:
		b = appendUvarint(b, r.GID)
		if r.Decision {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	case KindAuditBegin:
		b = appendUvarint(b, r.AuditSN)
	case KindAuditEnd:
		b = appendUvarint(b, r.AuditSN)
		if r.AuditClean {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendUvarint(b, uint64(len(r.CorruptAddrs)))
		for i := range r.CorruptAddrs {
			b = appendUvarint(b, uint64(r.CorruptAddrs[i]))
			b = appendUvarint(b, uint64(r.CorruptLens[i]))
		}
	}
	// Optional trailing GSN: only stamped by multi-stream log sets. The
	// decoder treats leftover payload bytes as this field, so old readers
	// (which ignore trailing bytes) and old records (which have none)
	// interoperate; a single-stream log never writes it, keeping its
	// on-disk format byte-identical to the pre-stream layout.
	if r.GSN != 0 {
		b = appendUvarint(b, r.GSN)
	}
	return b
}

func (r *Record) encodeCW(b []byte) []byte {
	if r.HasCW {
		b = append(b, 1)
		b = binary.LittleEndian.AppendUint64(b, uint64(r.CW))
	} else {
		b = append(b, 0)
	}
	return b
}

// decodeReader tracks a position in a payload buffer.
type decodeReader struct {
	buf []byte
	pos int
	err error
}

func (d *decodeReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.err = ErrTornRecord
		return 0
	}
	d.pos += n
	return v
}

func (d *decodeReader) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.buf) {
		d.err = ErrTornRecord
		return 0
	}
	b := d.buf[d.pos]
	d.pos++
	return b
}

func (d *decodeReader) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.pos+n > len(d.buf) {
		d.err = ErrTornRecord
		return nil
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b
}

func (d *decodeReader) uint64() uint64 {
	b := d.bytes(8)
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// DecodeFrame decodes one framed record from b, returning the record and
// the number of bytes consumed. A short or corrupt frame yields
// ErrTornRecord, which scanners treat as end of log.
func DecodeFrame(b []byte) (*Record, int, error) {
	if len(b) < frameHeaderSize {
		return nil, 0, ErrTornRecord
	}
	n := int(binary.LittleEndian.Uint32(b))
	sum := binary.LittleEndian.Uint32(b[4:])
	if len(b) < frameHeaderSize+n {
		return nil, 0, ErrTornRecord
	}
	payload := b[frameHeaderSize : frameHeaderSize+n]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, 0, ErrTornRecord
	}
	r, err := decodePayload(payload)
	if err != nil {
		return nil, 0, err
	}
	return r, frameHeaderSize + n, nil
}

func decodePayload(payload []byte) (*Record, error) {
	d := &decodeReader{buf: payload}
	r := &Record{Kind: Kind(d.byte())}
	r.Txn = TxnID(d.uvarint())
	switch r.Kind {
	case KindPhysRedo:
		r.Addr = mem.Addr(d.uvarint())
		n := int(d.uvarint())
		r.Data = append([]byte(nil), d.bytes(n)...)
		r.decodeCW(d)
	case KindRead:
		r.Addr = mem.Addr(d.uvarint())
		r.Len = int(d.uvarint())
		r.decodeCW(d)
	case KindOpBegin:
		r.Level = d.byte()
		r.Key = ObjectKey(d.uvarint())
	case KindOpCommit:
		r.Level = d.byte()
		r.Key = ObjectKey(d.uvarint())
		r.Compensation = d.byte() == 1
		r.Undo.Op = d.byte()
		r.Undo.Key = ObjectKey(d.uvarint())
		n := int(d.uvarint())
		r.Undo.Args = append([]byte(nil), d.bytes(n)...)
	case KindTxnBegin, KindTxnCommit, KindTxnAbort, KindGSNEpoch:
	case KindTxnPrepare:
		r.GID = d.uvarint()
	case KindTxnDecision:
		r.GID = d.uvarint()
		r.Decision = d.byte() == 1
	case KindAuditBegin:
		r.AuditSN = d.uvarint()
	case KindAuditEnd:
		r.AuditSN = d.uvarint()
		r.AuditClean = d.byte() == 1
		n := int(d.uvarint())
		for i := 0; i < n && d.err == nil; i++ {
			r.CorruptAddrs = append(r.CorruptAddrs, mem.Addr(d.uvarint()))
			r.CorruptLens = append(r.CorruptLens, uint32(d.uvarint()))
		}
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrTornRecord, r.Kind)
	}
	if d.err == nil && d.pos < len(d.buf) {
		r.GSN = d.uvarint()
	}
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}

// OrderLSN is the record's position in the global commit order: the GSN
// when one was stamped (multi-stream log sets), the stream-local LSN
// otherwise. Logical-undo ordering across transactions compares OrderLSNs;
// a log set seeds its GSN counter above every byte offset already written,
// so mixed GSN/LSN comparisons across a stream-count change stay
// conservative-correct (newer operations always compare larger).
func (r *Record) OrderLSN() LSN {
	if r.GSN != 0 {
		return LSN(r.GSN)
	}
	return r.LSN
}

func (r *Record) decodeCW(d *decodeReader) {
	if d.byte() == 1 {
		r.HasCW = true
		r.CW = region.Codeword(d.uint64())
	}
}
