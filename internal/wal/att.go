package wal

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/mem"
)

// UndoKind discriminates local undo log entries.
type UndoKind uint8

// Undo entry kinds.
const (
	// UndoPhys is a physical before-image for an in-flight update.
	UndoPhys UndoKind = iota + 1
	// UndoOpBegin marks the point in the undo log where a lower-level
	// operation began; operation commit pops back to this marker.
	UndoOpBegin
	// UndoLogical is the logical undo description of a committed
	// lower-level operation.
	UndoLogical
)

// UndoRec is an entry in a transaction's local undo log. The log is a
// stack: rollback walks it from the top.
type UndoRec struct {
	Kind UndoKind

	// UndoPhys fields.
	Addr   mem.Addr
	Before []byte
	// CodewordPending is the paper's "codeword-applied" flag (§3.1): it is
	// set at beginUpdate and reset at endUpdate once the codeword change
	// has been folded in. If rollback finds it set, the before-image must
	// be applied WITHOUT updating the codeword, because the codeword still
	// reflects the before-image.
	CodewordPending bool

	// UndoOpBegin and UndoLogical fields.
	Level uint8
	Key   ObjectKey
	// UndoLogical payload.
	Logical LogicalUndo
	// CommitLSN is the LSN of the operation commit record that produced
	// this logical undo entry. Recovery's undo phase executes logical
	// undos across transactions in descending CommitLSN order, which
	// realizes the paper's level-by-level, reverse-chronological rollback.
	CommitLSN LSN
}

// TxnState is the lifecycle state of a transaction.
type TxnState uint8

// Transaction states.
const (
	TxnActive TxnState = iota + 1
	TxnCommitted
	TxnAborted
	// TxnPrepared is the 2PC in-doubt state: every operation is committed
	// at its level and a prepare record is durable, but the transaction's
	// fate belongs to its coordinator. A prepared transaction holds its
	// locks and undo log until the decision arrives (possibly across a
	// crash).
	TxnPrepared
)

func (s TxnState) String() string {
	switch s {
	case TxnActive:
		return "active"
	case TxnCommitted:
		return "committed"
	case TxnAborted:
		return "aborted"
	case TxnPrepared:
		return "prepared"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// TxnEntry is a transaction's entry in the active transaction table. It
// holds the local undo log (a stack of UndoRec) and the local redo log
// (records pending their move to the system log at operation commit).
type TxnEntry struct {
	ID    TxnID
	State TxnState
	// GID is the global transaction ID when this transaction participates
	// in a cross-shard two-phase commit (zero otherwise). Set when the
	// transaction prepares; recovery uses it to match in-doubt
	// participants to coordinator decisions.
	GID uint64

	// Undo is the local undo log, a stack.
	Undo []UndoRec
	// Redo is the local redo log: records accumulated since the last
	// operation commit, in order.
	Redo []*Record
}

// PushPhysUndo records a physical before-image with the codeword-pending
// flag set (it is beginUpdate that pushes this entry).
func (e *TxnEntry) PushPhysUndo(addr mem.Addr, before []byte) *UndoRec {
	e.Undo = append(e.Undo, UndoRec{
		Kind:            UndoPhys,
		Addr:            addr,
		Before:          before,
		CodewordPending: true,
	})
	return &e.Undo[len(e.Undo)-1]
}

// PushOpBegin pushes an operation-begin marker.
func (e *TxnEntry) PushOpBegin(level uint8, key ObjectKey) {
	e.Undo = append(e.Undo, UndoRec{Kind: UndoOpBegin, Level: level, Key: key})
}

// CommitOp replaces the undo entries of the topmost open operation (back
// to and including its UndoOpBegin marker) with a single logical undo
// record, per the multi-level recovery discipline. commitLSN is the LSN
// of the operation commit record in the system log. It reports an error
// if no operation is open.
func (e *TxnEntry) CommitOp(level uint8, key ObjectKey, undo LogicalUndo, commitLSN LSN) error {
	i := e.topOpBegin()
	if i < 0 {
		return fmt.Errorf("wal: txn %d: operation commit with no open operation", e.ID)
	}
	e.Undo = e.Undo[:i]
	e.Undo = append(e.Undo, UndoRec{Kind: UndoLogical, Level: level, Key: key, Logical: undo, CommitLSN: commitLSN})
	return nil
}

// CommitCompensationOp completes an operation that was executed during
// rollback to logically undo an earlier committed operation: the
// compensation's own undo entries are discarded back through its
// UndoOpBegin marker, and the compensated UndoLogical entry beneath is
// popped — its effect has now been reversed and must not be undone again.
func (e *TxnEntry) CommitCompensationOp() error {
	i := e.topOpBegin()
	if i < 0 {
		return fmt.Errorf("wal: txn %d: compensation commit with no open operation", e.ID)
	}
	if i == 0 || e.Undo[i-1].Kind != UndoLogical {
		return fmt.Errorf("wal: txn %d: compensation commit with no logical undo beneath", e.ID)
	}
	e.Undo = e.Undo[:i-1]
	return nil
}

// topOpBegin returns the index of the topmost UndoOpBegin marker, or -1.
func (e *TxnEntry) topOpBegin() int {
	for i := len(e.Undo) - 1; i >= 0; i-- {
		if e.Undo[i].Kind == UndoOpBegin {
			return i
		}
	}
	return -1
}

// InOperation reports whether an operation is currently open.
func (e *TxnEntry) InOperation() bool { return e.topOpBegin() >= 0 }

// HasUndoForKey reports whether the undo log contains an operation-level
// entry (marker or logical undo) for key. The delete-transaction recovery
// algorithm uses this to decide whether a begin-operation record conflicts
// with a corrupted transaction (paper §4.3).
func (e *TxnEntry) HasUndoForKey(key ObjectKey) bool {
	for i := range e.Undo {
		k := e.Undo[i].Kind
		if (k == UndoOpBegin || k == UndoLogical) && e.Undo[i].Key == key {
			return true
		}
	}
	return false
}

// ATT is the active transaction table. A copy of the ATT, with the local
// undo logs, is stored with each checkpoint (paper §2.1).
type ATT struct {
	mu     sync.Mutex
	m      map[TxnID]*TxnEntry
	nextID TxnID
}

// NewATT returns an empty table whose first transaction ID is firstID
// (recovery seeds this above any ID seen in the log).
func NewATT(firstID TxnID) *ATT {
	if firstID == 0 {
		firstID = 1
	}
	return &ATT{m: make(map[TxnID]*TxnEntry), nextID: firstID}
}

// Begin registers a new active transaction and returns its entry.
func (t *ATT) Begin() *TxnEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := &TxnEntry{ID: t.nextID, State: TxnActive}
	t.nextID++
	t.m[e.ID] = e
	return e
}

// Attach inserts an externally constructed entry (used by recovery when
// rebuilding the ATT from a checkpoint image and the log).
func (t *ATT) Attach(e *TxnEntry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[e.ID] = e
	if e.ID >= t.nextID {
		t.nextID = e.ID + 1
	}
}

// Lookup returns the entry for id, or nil.
func (t *ATT) Lookup(id TxnID) *TxnEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[id]
}

// Remove deletes the entry for id (at transaction completion).
func (t *ATT) Remove(id TxnID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.m, id)
}

// Active returns the entries of all registered transactions, ordered by
// ID for determinism.
func (t *ATT) Active() []*TxnEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*TxnEntry, 0, len(t.m))
	for _, e := range t.m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len reports the number of registered transactions.
func (t *ATT) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// NextID reports the next transaction ID to be assigned.
func (t *ATT) NextID() TxnID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nextID
}

// Snapshot returns deep copies of all entries (undo logs included but not
// pending redo: updates whose operation has not committed are rolled back
// from the checkpointed undo information, so their redo records need not
// survive). The checkpointer calls this while holding the update barrier,
// so entries are quiescent.
func (t *ATT) Snapshot() []*TxnEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*TxnEntry, 0, len(t.m))
	for _, e := range t.m {
		c := &TxnEntry{ID: e.ID, State: e.State, GID: e.GID, Undo: make([]UndoRec, len(e.Undo))}
		for i := range e.Undo {
			u := e.Undo[i]
			u.Before = append([]byte(nil), u.Before...)
			u.Logical.Args = append([]byte(nil), u.Logical.Args...)
			c.Undo[i] = u
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// EncodeEntries serializes checkpoint ATT entries.
func EncodeEntries(entries []*TxnEntry) []byte {
	var b []byte
	b = appendUvarint(b, uint64(len(entries)))
	for _, e := range entries {
		b = appendUvarint(b, uint64(e.ID))
		b = append(b, byte(e.State))
		b = appendUvarint(b, e.GID)
		b = appendUvarint(b, uint64(len(e.Undo)))
		for i := range e.Undo {
			u := &e.Undo[i]
			b = append(b, byte(u.Kind))
			switch u.Kind {
			case UndoPhys:
				b = appendUvarint(b, uint64(u.Addr))
				b = appendUvarint(b, uint64(len(u.Before)))
				b = append(b, u.Before...)
				if u.CodewordPending {
					b = append(b, 1)
				} else {
					b = append(b, 0)
				}
			case UndoOpBegin:
				b = append(b, u.Level)
				b = appendUvarint(b, uint64(u.Key))
			case UndoLogical:
				b = append(b, u.Level)
				b = appendUvarint(b, uint64(u.Key))
				b = appendUvarint(b, uint64(u.CommitLSN))
				b = append(b, u.Logical.Op)
				b = appendUvarint(b, uint64(u.Logical.Key))
				b = appendUvarint(b, uint64(len(u.Logical.Args)))
				b = append(b, u.Logical.Args...)
			}
		}
	}
	return b
}

// DecodeEntries reverses EncodeEntries. Empty input decodes to no
// entries (an empty ATT).
func DecodeEntries(b []byte) ([]*TxnEntry, error) {
	if len(b) == 0 {
		return nil, nil
	}
	d := &decodeReader{buf: b}
	n := int(d.uvarint())
	entries := make([]*TxnEntry, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		e := &TxnEntry{ID: TxnID(d.uvarint()), State: TxnState(d.byte()), GID: d.uvarint()}
		nu := int(d.uvarint())
		for j := 0; j < nu && d.err == nil; j++ {
			u := UndoRec{Kind: UndoKind(d.byte())}
			switch u.Kind {
			case UndoPhys:
				u.Addr = mem.Addr(d.uvarint())
				ln := int(d.uvarint())
				u.Before = append([]byte(nil), d.bytes(ln)...)
				u.CodewordPending = d.byte() == 1
			case UndoOpBegin:
				u.Level = d.byte()
				u.Key = ObjectKey(d.uvarint())
			case UndoLogical:
				u.Level = d.byte()
				u.Key = ObjectKey(d.uvarint())
				u.CommitLSN = LSN(d.uvarint())
				u.Logical.Op = d.byte()
				u.Logical.Key = ObjectKey(d.uvarint())
				ln := int(d.uvarint())
				u.Logical.Args = append([]byte(nil), d.bytes(ln)...)
			default:
				if d.err == nil {
					return nil, fmt.Errorf("wal: bad undo kind %d", u.Kind)
				}
			}
			e.Undo = append(e.Undo, u)
		}
		entries = append(entries, e)
	}
	if d.err != nil {
		return nil, d.err
	}
	return entries, nil
}
