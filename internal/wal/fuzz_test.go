package wal

import (
	"bytes"
	"testing"

	"repro/internal/mem"
)

// tornTailSeeds builds the torn-write corpus: valid frames truncated at
// every length (a crash mid-write), frames with a flipped byte (a lying
// or bit-rotted write), and a two-frame stream cut inside the second
// frame (the shape recovery actually meets: intact prefix + torn tail).
func tornTailSeeds() [][]byte {
	var seeds [][]byte
	samples := sampleRecords()
	for _, r := range samples {
		frame := r.Encode(nil)
		for _, cut := range []int{1, 4, len(frame) / 2, len(frame) - 1} {
			if cut > 0 && cut < len(frame) {
				seeds = append(seeds, append([]byte(nil), frame[:cut]...))
			}
		}
		for _, flip := range []int{0, 4, len(frame) / 2, len(frame) - 1} {
			mut := append([]byte(nil), frame...)
			mut[flip] ^= 0xFF
			seeds = append(seeds, mut)
		}
	}
	if len(samples) >= 2 {
		a, b := samples[0].Encode(nil), samples[1].Encode(nil)
		stream := append(append([]byte(nil), a...), b...)
		seeds = append(seeds, stream[:len(a)+len(b)/2])
	}
	return seeds
}

// FuzzDecodeFrame throws arbitrary bytes at the log-record decoder: it
// must never panic, and any frame it accepts must re-encode to the same
// bytes it consumed (decode∘encode identity on the accepted prefix).
func FuzzDecodeFrame(f *testing.F) {
	for _, r := range sampleRecords() {
		f.Add(r.Encode(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	for _, s := range tornTailSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := r.Encode(nil)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", data[:n], re)
		}
	})
}

// TestDecodeFrameRejectsTornPrefixes pins the property the torn-tail
// recovery discipline rests on: no strict prefix of a valid frame
// decodes (a torn final write can never be mistaken for a record), and
// no single-byte corruption survives the frame CRC.
func TestDecodeFrameRejectsTornPrefixes(t *testing.T) {
	for _, r := range sampleRecords() {
		frame := r.Encode(nil)
		for cut := 0; cut < len(frame); cut++ {
			if _, _, err := DecodeFrame(frame[:cut]); err == nil {
				t.Fatalf("torn prefix of %d/%d bytes decoded", cut, len(frame))
			}
		}
		for flip := 0; flip < len(frame); flip++ {
			mut := append([]byte(nil), frame...)
			mut[flip] ^= 0xFF
			if _, _, err := DecodeFrame(mut); err == nil {
				t.Fatalf("frame with byte %d flipped decoded", flip)
			}
		}
	}
}

// FuzzDecodeEntries fuzzes the checkpointed-ATT decoder: no panics, and
// accepted entries re-encode to a decodable equivalent.
func FuzzDecodeEntries(f *testing.F) {
	f.Add(EncodeEntries(nil))
	f.Add(EncodeEntries([]*TxnEntry{{ID: 1, State: TxnActive, Undo: []UndoRec{
		{Kind: UndoPhys, Addr: mem.Addr(7), Before: []byte{1, 2}, CodewordPending: true},
		{Kind: UndoOpBegin, Level: 1, Key: 9},
		{Kind: UndoLogical, Level: 1, Key: 9, CommitLSN: 44,
			Logical: LogicalUndo{Op: 3, Key: 9, Args: []byte{5}}},
	}}}))
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeEntries(data)
		if err != nil {
			return
		}
		round, err := DecodeEntries(EncodeEntries(entries))
		if err != nil {
			t.Fatalf("re-encode not decodable: %v", err)
		}
		if len(round) != len(entries) {
			t.Fatalf("entry count changed: %d -> %d", len(entries), len(round))
		}
	})
}
