package wal

import (
	"bytes"
	"testing"

	"repro/internal/mem"
)

// FuzzDecodeFrame throws arbitrary bytes at the log-record decoder: it
// must never panic, and any frame it accepts must re-encode to the same
// bytes it consumed (decode∘encode identity on the accepted prefix).
func FuzzDecodeFrame(f *testing.F) {
	for _, r := range sampleRecords() {
		f.Add(r.Encode(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := r.Encode(nil)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", data[:n], re)
		}
	})
}

// FuzzDecodeEntries fuzzes the checkpointed-ATT decoder: no panics, and
// accepted entries re-encode to a decodable equivalent.
func FuzzDecodeEntries(f *testing.F) {
	f.Add(EncodeEntries(nil))
	f.Add(EncodeEntries([]*TxnEntry{{ID: 1, State: TxnActive, Undo: []UndoRec{
		{Kind: UndoPhys, Addr: mem.Addr(7), Before: []byte{1, 2}, CodewordPending: true},
		{Kind: UndoOpBegin, Level: 1, Key: 9},
		{Kind: UndoLogical, Level: 1, Key: 9, CommitLSN: 44,
			Logical: LogicalUndo{Op: 3, Key: 9, Args: []byte{5}}},
	}}}))
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeEntries(data)
		if err != nil {
			return
		}
		round, err := DecodeEntries(EncodeEntries(entries))
		if err != nil {
			t.Fatalf("re-encode not decodable: %v", err)
		}
		if len(round) != len(entries) {
			t.Fatalf("entry count changed: %d -> %d", len(entries), len(round))
		}
	})
}
