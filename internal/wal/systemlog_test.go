package wal

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/mem"
)

func openLog(t *testing.T, dir string) *SystemLog {
	t.Helper()
	l, err := OpenSystemLog(dir, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestSystemLogAppendFlushScan(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir)
	r1 := &Record{Kind: KindTxnBegin, Txn: 1}
	r2 := &Record{Kind: KindPhysRedo, Txn: 1, Addr: 100, Data: []byte{1, 2, 3}}
	l.Append(r1, r2)
	if r1.LSN != 0 {
		t.Fatalf("first LSN = %d, want 0", r1.LSN)
	}
	if r2.LSN != LSN(r1.EncodedSize()) {
		t.Fatalf("second LSN = %d, want %d", r2.LSN, r1.EncodedSize())
	}
	if l.StableEnd() != 0 {
		t.Fatal("records stable before flush")
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if l.StableEnd() != l.End() {
		t.Fatal("stable end lags after flush")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got []*Record
	if err := Scan(dir, 0, func(r *Record) bool { got = append(got, r); return true }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("scanned %d records, want 2", len(got))
	}
	if got[0].Kind != KindTxnBegin || got[1].Kind != KindPhysRedo {
		t.Fatal("record kinds wrong")
	}
	if got[1].LSN != r2.LSN {
		t.Fatalf("scanned LSN %d != assigned %d", got[1].LSN, r2.LSN)
	}
}

func TestSystemLogScanFromMiddle(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir)
	var mid LSN
	for i := 0; i < 10; i++ {
		r := &Record{Kind: KindTxnBegin, Txn: TxnID(i)}
		l.Append(r)
		if i == 5 {
			mid = r.LSN
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var txns []TxnID
	if err := Scan(dir, mid, func(r *Record) bool { txns = append(txns, r.Txn); return true }); err != nil {
		t.Fatal(err)
	}
	if len(txns) != 5 || txns[0] != 5 {
		t.Fatalf("scan from middle got %v", txns)
	}
}

func TestSystemLogScanStopsEarly(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir)
	for i := 0; i < 10; i++ {
		l.Append(&Record{Kind: KindTxnBegin, Txn: TxnID(i)})
	}
	l.Close()
	count := 0
	Scan(dir, 0, func(r *Record) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("scan visited %d records, want 3", count)
	}
}

func TestSystemLogScanBeyondEnd(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir)
	l.Append(&Record{Kind: KindTxnBegin, Txn: 1})
	l.Close()
	if err := Scan(dir, 1<<40, func(*Record) bool { return true }); err == nil {
		t.Fatal("scan beyond end accepted")
	}
}

func TestSystemLogScanMissingFile(t *testing.T) {
	if err := Scan(t.TempDir(), 0, func(*Record) bool { return true }); err != nil {
		t.Fatalf("scan of absent log: %v", err)
	}
}

func TestSystemLogCrashDiscardsTail(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir)
	l.Append(&Record{Kind: KindTxnBegin, Txn: 1})
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	l.Append(&Record{Kind: KindTxnBegin, Txn: 2}) // never flushed
	if err := l.CloseWithoutFlush(); err != nil {
		t.Fatal(err)
	}
	var txns []TxnID
	Scan(dir, 0, func(r *Record) bool { txns = append(txns, r.Txn); return true })
	if len(txns) != 1 || txns[0] != 1 {
		t.Fatalf("after crash: %v, want only txn 1", txns)
	}
}

func TestSystemLogReopenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir)
	l.Append(&Record{Kind: KindTxnBegin, Txn: 1})
	l.Append(&Record{Kind: KindPhysRedo, Txn: 1, Addr: 5, Data: []byte{1, 2, 3, 4}})
	l.Close()

	// Simulate a torn write: chop the last few bytes of the log file.
	path := filepath.Join(dir, LogFileName)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2 := openLog(t, dir)
	defer l2.Close()
	// Only the first record survives; new appends go after it.
	r := &Record{Kind: KindTxnCommit, Txn: 1}
	l2.Append(r)
	if err := l2.Flush(); err != nil {
		t.Fatal(err)
	}
	var kinds []Kind
	l2.Close()
	Scan(dir, 0, func(rec *Record) bool { kinds = append(kinds, rec.Kind); return true })
	if len(kinds) != 2 || kinds[0] != KindTxnBegin || kinds[1] != KindTxnCommit {
		t.Fatalf("kinds after torn-tail reopen: %v", kinds)
	}
}

func TestSystemLogDirtyNotification(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir)
	var dirty []mem.PageID
	l.RegisterDirtyNoter(DirtyNoterFunc(func(id mem.PageID) { dirty = append(dirty, id) }))

	// Record spanning pages 0 and 1 (page size 4096).
	l.Append(&Record{Kind: KindPhysRedo, Txn: 1, Addr: 4090, Data: make([]byte, 10)})
	// Read records never dirty pages.
	l.Append(&Record{Kind: KindRead, Txn: 1, Addr: 9000, Len: 10})
	if len(dirty) != 0 {
		t.Fatal("dirty noted before flush")
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 2 || dirty[0] != 0 || dirty[1] != 1 {
		t.Fatalf("dirty pages = %v, want [0 1]", dirty)
	}
	l.Close()
}

func TestSystemLogAppendAndFlush(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir)
	if err := l.AppendAndFlush(&Record{Kind: KindTxnCommit, Txn: 1}); err != nil {
		t.Fatal(err)
	}
	if l.StableEnd() == 0 {
		t.Fatal("commit record not stable")
	}
	if l.Flushes() != 1 {
		t.Fatalf("flushes = %d", l.Flushes())
	}
	if l.Appends() != 1 {
		t.Fatalf("appends = %d", l.Appends())
	}
	l.Close()
}

func TestSystemLogReset(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir)
	l.Append(&Record{Kind: KindTxnBegin, Txn: 1})
	l.Flush()
	l.Append(&Record{Kind: KindTxnBegin, Txn: 2})
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.End() != 0 || l.StableEnd() != 0 {
		t.Fatal("reset did not zero the log")
	}
	r := &Record{Kind: KindTxnBegin, Txn: 3}
	l.Append(r)
	if r.LSN != 0 {
		t.Fatalf("post-reset LSN = %d, want 0", r.LSN)
	}
	l.Close()
	var txns []TxnID
	Scan(dir, 0, func(rec *Record) bool { txns = append(txns, rec.Txn); return true })
	if len(txns) != 1 || txns[0] != 3 {
		t.Fatalf("post-reset log contents: %v", txns)
	}
}

func TestSystemLogConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir)
	var wg sync.WaitGroup
	const goroutines, per = 8, 100
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Append(&Record{Kind: KindPhysRedo, Txn: TxnID(g), Addr: mem.Addr(i), Data: []byte{byte(i)}})
				if i%10 == 0 {
					if err := l.Flush(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	count := 0
	seen := map[LSN]bool{}
	Scan(dir, 0, func(r *Record) bool {
		if seen[r.LSN] {
			t.Errorf("duplicate LSN %d", r.LSN)
		}
		seen[r.LSN] = true
		count++
		return true
	})
	if count != goroutines*per {
		t.Fatalf("scanned %d records, want %d", count, goroutines*per)
	}
}

func TestSystemLogReopenContinuesLSNs(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir)
	l.Append(&Record{Kind: KindTxnBegin, Txn: 1})
	l.Close()
	end := LSN(0)
	Scan(dir, 0, func(r *Record) bool { end = r.LSN + LSN(r.EncodedSize()); return true })

	l2 := openLog(t, dir)
	r := &Record{Kind: KindTxnBegin, Txn: 2}
	l2.Append(r)
	if r.LSN != end {
		t.Fatalf("LSN after reopen = %d, want %d", r.LSN, end)
	}
	l2.Close()
}

func TestGroupCommitSharesForces(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir)
	defer l.Close()

	const committers = 8
	const commitsEach = 25
	var wg sync.WaitGroup
	for g := 0; g < committers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < commitsEach; i++ {
				r := &Record{Kind: KindTxnCommit, Txn: TxnID(g*1000 + i)}
				if err := l.AppendAndFlush(r); err != nil {
					t.Error(err)
					return
				}
				// Durability contract: the record is stable on return.
				if l.StableEnd() < r.LSN+LSN(r.EncodedSize()) {
					t.Errorf("commit returned before record %d was stable", r.LSN)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	total := uint64(committers * commitsEach)
	if got := l.Appends(); got != total {
		t.Fatalf("appends = %d, want %d", got, total)
	}
	// Group commit: concurrent committers share forces when their commits
	// overlap. Scheduling on a single-CPU host may serialize them
	// perfectly (one force each), so sharing is reported, not asserted;
	// more forces than commits would indicate a bookkeeping bug.
	if got := l.Flushes(); got > total {
		t.Fatalf("flushes = %d exceeds %d commits", got, total)
	}
	t.Logf("%d commits used %d forces", total, l.Flushes())

	// Every record made it to disk exactly once, in LSN order.
	l.Close()
	var lsns []LSN
	Scan(dir, 0, func(r *Record) bool { lsns = append(lsns, r.LSN); return true })
	if len(lsns) != int(total) {
		t.Fatalf("scanned %d records, want %d", len(lsns), total)
	}
	for i := 1; i < len(lsns); i++ {
		if lsns[i] <= lsns[i-1] {
			t.Fatal("LSNs not strictly increasing")
		}
	}
}
