package fault

import (
	"testing"

	"repro/internal/mem"
)

func newArena(t *testing.T) *mem.Arena {
	t.Helper()
	a, err := mem.NewArena(16*1024, 4096, mem.WithHeapBacking())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

func TestWildWriteLands(t *testing.T) {
	a := newArena(t)
	in := New(a, mem.NopProtector{}, 1)
	trapped, err := in.WildWrite(100, []byte{1, 2, 3})
	if err != nil || trapped {
		t.Fatalf("trapped=%v err=%v", trapped, err)
	}
	if a.Bytes()[100] != 1 || a.Bytes()[102] != 3 {
		t.Fatal("wild write did not land")
	}
	if in.Landed() != 1 || in.Trapped() != 0 {
		t.Fatalf("landed=%d trapped=%d", in.Landed(), in.Trapped())
	}
	ev := in.Events()
	if len(ev) != 1 || ev[0].Kind != "wild-write" || ev[0].Addr != 100 || ev[0].Len != 3 {
		t.Fatalf("events: %+v", ev)
	}
}

func TestWildWriteTrappedByProtection(t *testing.T) {
	a := newArena(t)
	p := mem.NewSimProtector(a.NumPages(), 0)
	p.ProtectAll()
	in := New(a, p, 1)
	trapped, err := in.WildWrite(100, []byte{1})
	if err != nil || !trapped {
		t.Fatalf("trapped=%v err=%v", trapped, err)
	}
	if a.Bytes()[100] != 0 {
		t.Fatal("trapped write modified memory")
	}
	if in.Trapped() != 1 || in.Landed() != 0 {
		t.Fatalf("landed=%d trapped=%d", in.Landed(), in.Trapped())
	}
}

func TestWildWriteOutOfRangeIsError(t *testing.T) {
	a := newArena(t)
	in := New(a, mem.NopProtector{}, 1)
	if _, err := in.WildWrite(mem.Addr(a.Size()), []byte{1}); err == nil {
		t.Fatal("out-of-range write accepted")
	}
}

func TestBitFlip(t *testing.T) {
	a := newArena(t)
	a.Bytes()[50] = 0b0000_1000
	in := New(a, mem.NopProtector{}, 1)
	if _, err := in.BitFlip(50, 3); err != nil {
		t.Fatal(err)
	}
	if a.Bytes()[50] != 0 {
		t.Fatalf("bit not flipped: %#x", a.Bytes()[50])
	}
	// Flip back.
	if _, err := in.BitFlip(50, 3); err != nil {
		t.Fatal(err)
	}
	if a.Bytes()[50] != 0b0000_1000 {
		t.Fatal("second flip wrong")
	}
	// Protected page: trap.
	p := mem.NewSimProtector(a.NumPages(), 0)
	p.ProtectAll()
	in2 := New(a, p, 1)
	trapped, err := in2.BitFlip(50, 0)
	if err != nil || !trapped {
		t.Fatalf("trapped=%v err=%v", trapped, err)
	}
}

func TestCopyOverrun(t *testing.T) {
	a := newArena(t)
	copy(a.Bytes()[96:100], []byte{7, 8, 9, 10})
	in := New(a, mem.NopProtector{}, 1)
	trapped, err := in.CopyOverrun(100, 4)
	if err != nil || trapped {
		t.Fatalf("trapped=%v err=%v", trapped, err)
	}
	for i, want := range []byte{7, 8, 9, 10} {
		if a.Bytes()[100+i] != want {
			t.Fatalf("overrun byte %d = %d, want %d", i, a.Bytes()[100+i], want)
		}
	}
	// Overrun at the arena start clamps.
	if _, err := in.CopyOverrun(2, 10); err != nil {
		t.Fatal(err)
	}
	// Zero-length after clamping is a no-op.
	if _, err := in.CopyOverrun(0, 5); err != nil {
		t.Fatal(err)
	}
}

func TestRandomWildWriteStaysInBounds(t *testing.T) {
	a := newArena(t)
	in := New(a, mem.NopProtector{}, 42)
	for i := 0; i < 200; i++ {
		ev, err := in.RandomWildWrite(4096, 8192, 16)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Addr < 4096 || int(ev.Addr)+ev.Len > 8192 {
			t.Fatalf("fault [%d,+%d) outside window", ev.Addr, ev.Len)
		}
	}
	if in.Landed() != 200 {
		t.Fatalf("landed = %d", in.Landed())
	}
}

func TestRandomWildWriteDeterministicPerSeed(t *testing.T) {
	a1, a2 := newArena(t), newArena(t)
	in1 := New(a1, mem.NopProtector{}, 7)
	in2 := New(a2, mem.NopProtector{}, 7)
	for i := 0; i < 50; i++ {
		e1, _ := in1.RandomWildWrite(0, 4096, 8)
		e2, _ := in2.RandomWildWrite(0, 4096, 8)
		if e1.Addr != e2.Addr || e1.Len != e2.Len {
			t.Fatal("same seed diverged")
		}
	}
}
