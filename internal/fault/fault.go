// Package fault injects the class of software errors the paper protects
// against: addressing errors — wild writes through bad pointers, copy
// overruns, and stray bit flips — that modify database data without going
// through the prescribed update interface (direct physical corruption,
// §1). Injected writes honor (simulated) hardware page protection: a
// write to a protected page is trapped and leaves memory unchanged,
// modeling the MMU behaviour of the hardware protection scheme.
package fault

import (
	"errors"
	"math/rand"

	"repro/internal/mem"
	"repro/internal/obs"
)

// Event records one injected fault.
type Event struct {
	Kind    string
	Addr    mem.Addr
	Len     int
	Trapped bool
}

// Injector writes faults into an arena.
type Injector struct {
	arena *mem.Arena
	prot  mem.Protector
	rng   *rand.Rand

	events  []Event
	mWild   *obs.Counter
	mParity *obs.Counter
}

// New returns an injector over arena whose writes are subject to prot
// (use the active scheme's Protector so hardware protection traps
// injected faults; codeword schemes use NopProtector and every fault
// lands). seed makes campaigns reproducible.
func New(arena *mem.Arena, prot mem.Protector, seed int64) *Injector {
	return &Injector{arena: arena, prot: prot, rng: rand.New(rand.NewSource(seed))}
}

// SetRegistry wires the injector's fault.wild_writes counter into reg, so
// campaigns show up alongside the storage-fault and recovery metrics.
func (in *Injector) SetRegistry(reg *obs.Registry) {
	in.mWild = reg.Counter(obs.NameFaultWildWrites)
	in.mParity = reg.Counter(obs.NameFaultParityHits)
}

func (in *Injector) note(kind string, addr mem.Addr, n int, trapped bool) {
	in.mWild.Inc()
	in.events = append(in.events, Event{Kind: kind, Addr: addr, Len: n, Trapped: trapped})
}

// Events returns the injected fault history.
func (in *Injector) Events() []Event { return append([]Event(nil), in.events...) }

// Landed reports how many faults modified memory.
func (in *Injector) Landed() int {
	n := 0
	for _, e := range in.events {
		if !e.Trapped {
			n++
		}
	}
	return n
}

// Trapped reports how many faults were prevented by page protection.
func (in *Injector) Trapped() int { return len(in.events) - in.Landed() }

// WildWrite writes data at addr outside the prescribed interface. It
// reports whether the write was trapped by page protection.
func (in *Injector) WildWrite(addr mem.Addr, data []byte) (trapped bool, err error) {
	err = mem.GuardedWrite(in.arena, in.prot, addr, data)
	switch {
	case err == nil:
		in.note("wild-write", addr, len(data), false)
		return false, nil
	case isTrap(err):
		in.note("wild-write", addr, len(data), true)
		return true, nil
	default:
		return false, err
	}
}

// BitFlip XORs a single bit at addr.
func (in *Injector) BitFlip(addr mem.Addr, bit uint) (trapped bool, err error) {
	cur := in.arena.Bytes()[addr]
	err = mem.GuardedWrite(in.arena, in.prot, addr, []byte{cur ^ (1 << (bit & 7))})
	switch {
	case err == nil:
		in.note("bit-flip", addr, 1, false)
		return false, nil
	case isTrap(err):
		in.note("bit-flip", addr, 1, true)
		return true, nil
	default:
		return false, err
	}
}

// CopyOverrun models a buffer copy that runs n bytes past its intended
// end at addr: the bytes written are a repetition of the n bytes
// preceding addr (as an overrunning memcpy would produce).
func (in *Injector) CopyOverrun(addr mem.Addr, n int) (trapped bool, err error) {
	if int(addr) < n {
		n = int(addr)
	}
	if n == 0 {
		return false, nil
	}
	src := make([]byte, n)
	copy(src, in.arena.Slice(addr-mem.Addr(n), n))
	err = mem.GuardedWrite(in.arena, in.prot, addr, src)
	switch {
	case err == nil:
		in.note("copy-overrun", addr, n, false)
		return false, nil
	case isTrap(err):
		in.note("copy-overrun", addr, n, true)
		return true, nil
	default:
		return false, err
	}
}

// RandomWildWrite injects a wild write of 1..maxLen random bytes at a
// random address, confined to [lo, hi) of the arena.
func (in *Injector) RandomWildWrite(lo, hi mem.Addr, maxLen int) (Event, error) {
	if maxLen < 1 {
		maxLen = 1
	}
	n := 1 + in.rng.Intn(maxLen)
	span := int(hi-lo) - n
	if span <= 0 {
		span = 1
	}
	addr := lo + mem.Addr(in.rng.Intn(span))
	data := make([]byte, n)
	in.rng.Read(data)
	trapped, err := in.WildWrite(addr, data)
	if err != nil {
		return Event{}, err
	}
	return Event{Kind: "wild-write", Addr: addr, Len: n, Trapped: trapped}, nil
}

func isTrap(err error) bool { return errors.Is(err, mem.ErrTrapped) }
