// Targeted damage shapes for the heal/escalate campaign: each shape
// lands on a known rung of the ECC tier's correction ladder, so the
// campaign can exercise every rung deterministically instead of hoping
// random wild writes happen to produce them.
package fault

import (
	"encoding/binary"

	"repro/internal/mem"
	"repro/internal/region"
)

// wordAddr aligns addr down to its containing 8-byte word.
func wordAddr(addr mem.Addr) mem.Addr { return addr &^ 7 }

// smashWord XOR-damages the aligned word containing addr with delta,
// routed through GuardedWrite so hardware protection still traps it.
func (in *Injector) smashWord(kind string, addr mem.Addr, delta uint64) (trapped bool, err error) {
	wa := wordAddr(addr)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], binary.LittleEndian.Uint64(in.arena.Slice(wa, 8))^delta)
	err = mem.GuardedWrite(in.arena, in.prot, wa, buf[:])
	switch {
	case err == nil:
		in.note(kind, wa, 8, false)
		return false, nil
	case isTrap(err):
		in.note(kind, wa, 8, true)
		return true, nil
	default:
		return false, err
	}
}

// SingleBitFlip flips one bit inside the word containing addr — the
// smallest repairable damage (a one-bit codeword syndrome).
func (in *Injector) SingleBitFlip(addr mem.Addr, bit uint) (trapped bool, err error) {
	return in.smashWord("single-bit", addr, 1<<((uint(addr&7)*8+bit)&63))
}

// WordSmash XORs a nonzero delta into the single aligned word containing
// addr: the canonical repairable wild write. delta 0 is coerced to 1.
func (in *Injector) WordSmash(addr mem.Addr, delta uint64) (trapped bool, err error) {
	if delta == 0 {
		delta = 1
	}
	return in.smashWord("word-smash", addr, delta)
}

// DoubleWordSmash damages two distinct words of the same region with
// distinct deltas — provably past the correction radius (any locator
// plane separating the two word indexes carries a syndrome matching
// neither 0 nor the combined codeword syndrome), so the ECC tier must
// escalate rather than misrepair. addr2's word must differ from addr1's.
func (in *Injector) DoubleWordSmash(addr1, addr2 mem.Addr, d1, d2 uint64) (trapped bool, err error) {
	if wordAddr(addr1) == wordAddr(addr2) {
		addr2 = wordAddr(addr1) + 8
	}
	if d1 == 0 {
		d1 = 1
	}
	if d2 == 0 || d2 == d1 {
		d2 = d1 ^ 0x8000000000000001
	}
	t1, err := in.smashWord("double-word", addr1, d1)
	if err != nil {
		return t1, err
	}
	t2, err := in.smashWord("double-word", addr2, d2)
	return t1 || t2, err
}

// ParityHit XORs delta into stored locator plane j of region r — damage
// to the ECC tier's own metadata rather than the data. Alone it
// diagnoses parity-stale (data intact, planes rebuilt); combined with a
// data smash it is unrepairable.
func (in *Injector) ParityHit(tab *region.Table, r, plane int, delta uint64) error {
	if delta == 0 {
		delta = 1
	}
	if err := tab.CorruptPlane(r, plane, delta); err != nil {
		return err
	}
	in.mParity.Inc()
	in.events = append(in.events, Event{Kind: "parity-hit", Addr: tab.RegionStart(r), Len: 0, Trapped: false})
	return nil
}
