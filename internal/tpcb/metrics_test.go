package tpcb

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/protect"
)

// TestConcurrentDriverMetrics runs the multi-client driver while snapshots
// are taken continuously and checks that the obs registry saw the run:
// group-commit batching, fsync timings, precheck traffic, lock waits. With
// -race (the make vet flow runs this package under the race detector) it
// doubles as the metrics-vs-engine concurrency test on a realistic
// workload.
func TestConcurrentDriverMetrics(t *testing.T) {
	cfg := core.Config{
		Dir:         t.TempDir(),
		ArenaSize:   SmallScale.ArenaSize(),
		Protect:     protect.Config{Kind: protect.KindPrecheck, RegionSize: 64},
		LockTimeout: 50 * time.Millisecond,
	}
	db, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	w, err := Setup(db, SmallScale, 33)
	if err != nil {
		t.Fatal(err)
	}

	// Count flush events through a sink concurrently with the run; the
	// sink total must agree with the flush counter in the final snapshot.
	var sinkFlushes atomic.Uint64
	db.Observability().AddSink(obs.SinkFunc(func(e obs.Event) {
		if _, ok := e.(obs.LogFlushEvent); ok {
			sinkFlushes.Add(1)
		}
	}))

	base := db.Metrics()
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		// Snapshots race the engine on purpose (this is what -race checks);
		// individual values are atomic but counters are read at slightly
		// different instants, so cross-counter invariants are asserted only
		// after quiesce below.
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := db.Metrics()
			begun := s.Counter(obs.NameTxnsBegun)
			if begun < last {
				t.Errorf("txns_begun went backwards: %d -> %d", last, begun)
				return
			}
			last = begun
			_ = s.Histogram(obs.NameWALFsyncNS).Mean()
		}
	}()

	res, err := w.RunConcurrent(4, 200, 5)
	close(stop)
	<-snapDone
	if err != nil {
		t.Fatal(err)
	}

	s := db.Metrics().Sub(base)
	if got := s.Counter(obs.NameTxnsCommitted); got != uint64(res.TxnsCommitted) {
		t.Fatalf("committed counter %d, driver saw %d", got, res.TxnsCommitted)
	}
	if got := s.Counter(obs.NameTxnsAborted); got != uint64(res.TxnsAborted) {
		t.Fatalf("aborted counter %d, driver saw %d", got, res.TxnsAborted)
	}
	if s.Counter(obs.NamePrecheckRegions) == 0 {
		t.Fatal("prechecks never counted under the precheck scheme")
	}
	if s.Counter(obs.NameRegionFolds) == 0 {
		t.Fatal("codeword folds never counted")
	}

	// Histograms come from the full snapshot (Sub only differences
	// counters).
	full := db.Metrics()
	fsync := full.Histogram(obs.NameWALFsyncNS)
	if fsync.Count == 0 {
		t.Fatal("fsync histogram empty")
	}
	gc := full.Histogram(obs.NameWALGroupCommit)
	if gc.Count == 0 {
		t.Fatal("group-commit histogram empty")
	}
	// 4 clients committing every 5 ops: group commit should batch more
	// than one record per flush on average.
	if gc.Mean() <= 1 {
		t.Fatalf("group-commit mean %.2f, expected batching > 1", gc.Mean())
	}
	if res.TxnsAborted > 0 && full.Counter(obs.NameLockTimeouts) == 0 {
		t.Fatal("driver saw aborts but no lock timeouts were counted")
	}
	if got := s.Counter(obs.NameWALFlushes); sinkFlushes.Load() != got {
		t.Fatalf("sink saw %d flush events, counter says %d flushes since the sink was added", sinkFlushes.Load(), got)
	}
}
