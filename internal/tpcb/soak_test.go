package tpcb

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/protect"
	"repro/internal/recovery"
)

// TestSoakWithCheckpointsAuditorAndCrashes runs the workload with a live
// background auditor and periodic checkpoints, crashes repeatedly, and
// verifies the balance invariant and audit cleanliness after every
// recovery — the storage manager's full machinery under one roof.
func TestSoakWithCheckpointsAuditorAndCrashes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := core.Config{
		Dir:       t.TempDir(),
		ArenaSize: SmallScale.ArenaSize(),
		Protect:   protect.Config{Kind: protect.KindReadLog, RegionSize: 512},
	}
	db, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Setup(db, SmallScale, 11)
	if err != nil {
		t.Fatal(err)
	}
	w.Recycle = true

	var lastA, lastT, lastB int64
	for round := 0; round < 4; round++ {
		auditor := core.NewAuditor(db, 3*time.Millisecond)
		auditor.Start()

		for burst := 0; burst < 3; burst++ {
			if err := w.Run(700); err != nil {
				t.Fatalf("round %d burst %d: %v", round, burst, err)
			}
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("round %d checkpoint: %v", round, err)
			}
		}
		lastA, lastT, lastB = w.Balances()
		histCount := w.HistoryCount()

		auditor.Stop()
		if ce := auditor.Err(); ce != nil {
			t.Fatalf("round %d: phantom corruption: %v", round, ce)
		}
		if err := db.Crash(); err != nil {
			t.Fatal(err)
		}

		db2, rep, err := recovery.Open(cfg, recovery.Options{})
		if err != nil {
			t.Fatalf("round %d recovery: %v", round, err)
		}
		if rep.CorruptionMode || len(rep.Deleted) != 0 {
			t.Fatalf("round %d: unexpected corruption handling: %+v", round, rep)
		}
		w2, err := Attach(db2, SmallScale, int64(round+20))
		if err != nil {
			t.Fatal(err)
		}
		w2.Recycle = true
		a, te, b := w2.Balances()
		if a != lastA || te != lastT || b != lastB {
			t.Fatalf("round %d: balances %d/%d/%d, want %d/%d/%d",
				round, a, te, b, lastA, lastT, lastB)
		}
		if got := w2.HistoryCount(); got != histCount {
			t.Fatalf("round %d: history %d, want %d", round, got, histCount)
		}
		if err := db2.Audit(); err != nil {
			t.Fatalf("round %d post-recovery audit: %v", round, err)
		}
		db, w = db2, w2
	}
	db.Close()
}
