package tpcb

import (
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/protect"
)

// TestPagesTouchedPerOperation reproduces the paper's §5.3 observation:
// under hardware protection a TPC-B operation exposes several pages —
// tuple pages for the account, teller and branch updates plus the history
// record, and the off-page allocation-bitmap page for the insert. The
// paper measured ~11 on Dalí (which also protected additional control
// structures); this reproduction's storage layout yields about five, and
// the test pins the shape: clearly more than the one page a naive
// page-per-op model would predict.
func TestPagesTouchedPerOperation(t *testing.T) {
	db, err := core.Open(core.Config{
		Dir:       t.TempDir(),
		ArenaSize: SmallScale.ArenaSize(),
		Protect:   protect.Config{Kind: protect.KindHW, ForceSimProtect: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	w, err := Setup(db, SmallScale, 7)
	if err != nil {
		t.Fatal(err)
	}
	const ops = 1000
	before := db.Metrics().Counter(obs.NameProtectCalls)
	if err := w.Run(ops); err != nil {
		t.Fatal(err)
	}
	calls := db.Metrics().Counter(obs.NameProtectCalls) - before
	pagesPerOp := float64(calls) / 2 / float64(ops)
	// 4 record updates + history insert's record + bitmap page: expect
	// roughly 5-8 exposures per op (boundary-spanning records add a few).
	if pagesPerOp < 4 || pagesPerOp > 12 {
		t.Fatalf("pages/op = %.2f, outside the expected 4..12 band", pagesPerOp)
	}
}

// TestReadRecordsPerOperation pins the read-logging volume of the
// workload: three balance reads per operation, hence three read records.
func TestReadRecordsPerOperation(t *testing.T) {
	db, err := core.Open(core.Config{
		Dir:       t.TempDir(),
		ArenaSize: SmallScale.ArenaSize(),
		Protect:   protect.Config{Kind: protect.KindReadLog, RegionSize: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	w, err := Setup(db, SmallScale, 8)
	if err != nil {
		t.Fatal(err)
	}
	const ops = 500
	before := db.Metrics().Counter(obs.NameReadRecords)
	if err := w.Run(ops); err != nil {
		t.Fatal(err)
	}
	got := db.Metrics().Counter(obs.NameReadRecords) - before
	if got != 3*ops {
		t.Fatalf("read records = %d, want %d (3 per op)", got, 3*ops)
	}
}
