package tpcb

import (
	"testing"

	"repro/internal/core"
	"repro/internal/protect"
	"repro/internal/recovery"
)

func setupSmall(t *testing.T, pc protect.Config) (*core.DB, *Workload) {
	t.Helper()
	db, err := core.Open(core.Config{
		Dir:       t.TempDir(),
		ArenaSize: SmallScale.ArenaSize(),
		Protect:   pc,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	w, err := Setup(db, SmallScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	return db, w
}

func TestSetupPopulatesTables(t *testing.T) {
	_, w := setupSmall(t, protect.Config{})
	a, te, b, h := w.Tables()
	if a.Count() != SmallScale.Accounts {
		t.Fatalf("accounts = %d", a.Count())
	}
	if te.Count() != SmallScale.Tellers {
		t.Fatalf("tellers = %d", te.Count())
	}
	if b.Count() != SmallScale.Branches {
		t.Fatalf("branches = %d", b.Count())
	}
	if h.Count() != 0 {
		t.Fatalf("history = %d", h.Count())
	}
}

func TestRunMovesBalancesConsistently(t *testing.T) {
	_, w := setupSmall(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 512})
	a0, t0, b0 := w.Balances()
	const ops = 1200
	if err := w.Run(ops); err != nil {
		t.Fatal(err)
	}
	a1, t1, b1 := w.Balances()
	da, dt, db_ := a1-a0, t1-t0, b1-b0
	if da != dt || dt != db_ {
		t.Fatalf("balance deltas diverged: %d %d %d", da, dt, db_)
	}
	if w.HistoryCount() != ops {
		t.Fatalf("history = %d, want %d", w.HistoryCount(), ops)
	}
	if w.OpsDone() != ops {
		t.Fatalf("ops = %d", w.OpsDone())
	}
	if err := w.DB().Audit(); err != nil {
		t.Fatalf("audit after run: %v", err)
	}
}

func TestRunAcrossAllSchemes(t *testing.T) {
	for _, pc := range []protect.Config{
		{Kind: protect.KindBaseline},
		{Kind: protect.KindDataCW, RegionSize: 512},
		{Kind: protect.KindPrecheck, RegionSize: 64},
		{Kind: protect.KindReadLog, RegionSize: 512},
		{Kind: protect.KindCWReadLog, RegionSize: 64},
		{Kind: protect.KindDeferredCW, RegionSize: 512},
		{Kind: protect.KindHW, ForceSimProtect: true},
	} {
		t.Run(pc.Kind.String(), func(t *testing.T) {
			_, w := setupSmall(t, pc)
			if err := w.Run(600); err != nil {
				t.Fatal(err)
			}
			a, te, b := w.Balances()
			if a-int64(SmallScale.Accounts)*1_000_000 != te-int64(SmallScale.Tellers)*1_000_000 ||
				te-int64(SmallScale.Tellers)*1_000_000 != b-int64(SmallScale.Branches)*1_000_000 {
				t.Fatalf("inconsistent balances under %v", pc.Kind)
			}
			if err := w.DB().Audit(); err != nil {
				t.Fatalf("audit: %v", err)
			}
		})
	}
}

func TestWorkloadSurvivesCrashRecovery(t *testing.T) {
	cfg := core.Config{
		Dir:       t.TempDir(),
		ArenaSize: SmallScale.ArenaSize(),
		Protect:   protect.Config{Kind: protect.KindReadLog, RegionSize: 512},
	}
	db, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Setup(db, SmallScale, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(1000); err != nil { // two full txns of 500
		t.Fatal(err)
	}
	aWant, tWant, bWant := w.Balances()
	histWant := w.HistoryCount()
	db.Crash()

	db2, rep, err := recovery.Open(cfg, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if rep.CorruptionMode {
		t.Fatal("unexpected corruption mode")
	}
	w2, err := Attach(db2, SmallScale, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, te, b := w2.Balances()
	if a != aWant || te != tWant || b != bWant {
		t.Fatalf("balances after recovery: %d/%d/%d want %d/%d/%d", a, te, b, aWant, tWant, bWant)
	}
	if w2.HistoryCount() != histWant {
		t.Fatalf("history after recovery = %d, want %d", w2.HistoryCount(), histWant)
	}
	// Workload continues after recovery.
	if err := w2.Run(500); err != nil {
		t.Fatal(err)
	}
	if err := db2.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestScaleArenaSize(t *testing.T) {
	if SmallScale.ArenaSize() <= 0 {
		t.Fatal("bad arena size")
	}
	if PaperScale.ArenaSize() < 100_000*RecordSize {
		t.Fatal("paper arena too small for accounts alone")
	}
}
