package tpcb

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/protect"
	"repro/internal/recovery"
)

func TestRunConcurrentKeepsInvariants(t *testing.T) {
	cfg := core.Config{
		Dir:         t.TempDir(),
		ArenaSize:   SmallScale.ArenaSize(),
		Protect:     protect.Config{Kind: protect.KindDataCW, RegionSize: 512},
		LockTimeout: 50 * time.Millisecond,
	}
	db, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	w, err := Setup(db, SmallScale, 31)
	if err != nil {
		t.Fatal(err)
	}
	a0, t0, b0 := w.Balances()

	res, err := w.RunConcurrent(4, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.OpsCommitted != 4*200 {
		t.Fatalf("committed ops = %d, want %d", res.OpsCommitted, 4*200)
	}
	if res.TxnsCommitted == 0 {
		t.Fatal("no transactions committed")
	}
	t.Logf("committed %d txns, %d aborted by deadlock timeout", res.TxnsCommitted, res.TxnsAborted)

	// The invariant: all three balance sums moved by the same amount, and
	// exactly one history record exists per committed operation.
	a1, t1, b1 := w.Balances()
	if a1-a0 != t1-t0 || t1-t0 != b1-b0 {
		t.Fatalf("balance deltas diverged: %d %d %d", a1-a0, t1-t0, b1-b0)
	}
	if got := w.HistoryCount(); got != res.OpsCommitted {
		t.Fatalf("history = %d, want %d", got, res.OpsCommitted)
	}
	if err := db.Audit(); err != nil {
		t.Fatalf("audit after concurrent run: %v", err)
	}
}

func TestRunConcurrentSurvivesCrash(t *testing.T) {
	cfg := core.Config{
		Dir:         t.TempDir(),
		ArenaSize:   SmallScale.ArenaSize(),
		Protect:     protect.Config{Kind: protect.KindReadLog, RegionSize: 512},
		LockTimeout: 50 * time.Millisecond,
	}
	db, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Setup(db, SmallScale, 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.RunConcurrent(3, 150, 5); err != nil {
		t.Fatal(err)
	}
	aWant, tWant, bWant := w.Balances()
	hWant := w.HistoryCount()
	db.Crash()

	db2, rep, err := recovery.Open(cfg, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if rep.CorruptionMode {
		t.Fatal("phantom corruption mode")
	}
	w2, err := Attach(db2, SmallScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, te, b := w2.Balances()
	if a != aWant || te != tWant || b != bWant {
		t.Fatalf("balances after recovery: %d/%d/%d want %d/%d/%d", a, te, b, aWant, tWant, bWant)
	}
	if w2.HistoryCount() != hWant {
		t.Fatalf("history after recovery = %d, want %d", w2.HistoryCount(), hWant)
	}
	if err := db2.Audit(); err != nil {
		t.Fatal(err)
	}
}
