package tpcb

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/lockmgr"
)

// ConcurrentResult summarizes a multi-client run.
type ConcurrentResult struct {
	// OpsCommitted counts operations whose transaction committed.
	OpsCommitted int
	// TxnsCommitted and TxnsAborted count transaction outcomes; aborts
	// come from lock-wait timeouts (deadlock resolution) and are retried
	// at operation granularity.
	TxnsCommitted int
	TxnsAborted   int
}

// RunConcurrent executes the workload with several client goroutines —
// the configuration the paper's footnote set aside ("a highly concurrent
// test with group commits, introducing a great deal of complexity and
// variability"). Each client runs its own transactions of commitEvery
// operations; the shared log tail gives group commit for free (one force
// covers every record moved since the last). Transactions hold their
// record locks to commit, so small commitEvery values (paper-style 500
// would serialize everything on the hot branch table) and lock-timeout
// aborts with retry are the concurrency reality the footnote alludes to.
func (w *Workload) RunConcurrent(clients, opsPerClient, commitEvery int) (ConcurrentResult, error) {
	if commitEvery <= 0 {
		commitEvery = 10
	}
	var (
		committedOps  atomic.Int64
		committedTxns atomic.Int64
		abortedTxns   atomic.Int64
		wg            sync.WaitGroup
		errOnce       sync.Once
		firstErr      error
	)
	fail := func(err error) { errOnce.Do(func() { firstErr = err }) }

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Each client gets an independent RNG and history-sequence
			// space so the shared counters aren't contended.
			local := &Workload{
				db: w.db, scale: w.scale,
				account: w.account, teller: w.teller, branch: w.branch, history: w.history,
				rng:     rand.New(rand.NewSource(int64(c)*104729 + 1)),
				histSeq: uint64(c) << 32,
			}
			done := 0
			for done < opsPerClient {
				txn, err := w.db.Begin()
				if err != nil {
					fail(err)
					return
				}
				inTxn := 0
				abort := false
				for inTxn < commitEvery && done+inTxn < opsPerClient {
					if err := local.Op(txn); err != nil {
						if errors.Is(err, lockmgr.ErrTimeout) {
							abort = true
							break
						}
						fail(fmt.Errorf("client %d: %w", c, err))
						txn.Abort()
						return
					}
					inTxn++
				}
				if abort {
					if err := txn.Abort(); err != nil {
						fail(err)
						return
					}
					abortedTxns.Add(1)
					continue // retry the remaining operations in a new txn
				}
				if err := txn.Commit(); err != nil {
					fail(err)
					return
				}
				committedTxns.Add(1)
				committedOps.Add(int64(inTxn))
				done += inTxn
			}
		}(c)
	}
	wg.Wait()
	res := ConcurrentResult{
		OpsCommitted:  int(committedOps.Load()),
		TxnsCommitted: int(committedTxns.Load()),
		TxnsAborted:   int(abortedTxns.Load()),
	}
	return res, firstErr
}
