// Package tpcb implements the paper's benchmark workload (§5.2): a
// single process executing TPC-B style transactions over four tables —
// Branch, Teller, Account and History — each with 100 bytes per record.
// The paper's database holds 100,000 accounts, 10,000 tellers and 1,000
// branches (ratios deliberately changed from TPC-B to keep the smaller
// tables out of the CPU cache). An operation updates the non-key balance
// field of one account, one teller and one branch, and appends a record
// to the history table; transactions commit every 500 operations so that
// commit (log force) time does not dominate.
package tpcb

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/heap"
)

// RecordSize is the paper's 100 bytes per record for all four tables.
const RecordSize = 100

// CommitEvery is the paper's operations-per-transaction.
const CommitEvery = 500

// Field offsets within a record.
const (
	offID      = 0 // 8-byte record id
	offBalance = 8 // 8-byte balance (the non-key field each op updates)
)

// Scale sets the table cardinalities.
type Scale struct {
	Accounts int
	Tellers  int
	Branches int
	// HistoryCap bounds the history table; size it to at least the number
	// of operations a run will execute.
	HistoryCap int
	// Layout selects the storage layout for all four tables: the Dalí
	// off-page-allocation layout (default) or the page-local layout the
	// paper's §5.3 speculates would favor hardware protection.
	Layout heap.Layout
}

// PaperScale is the paper's database: 100,000 accounts, 10,000 tellers,
// 1,000 branches, sized for the 50,000-operation run.
var PaperScale = Scale{Accounts: 100_000, Tellers: 10_000, Branches: 1_000, HistoryCap: 50_000}

// SmallScale is a scaled-down variant for tests and quick runs.
var SmallScale = Scale{Accounts: 1_000, Tellers: 100, Branches: 10, HistoryCap: 5_000}

// ArenaSize estimates the arena needed for the scale: records plus
// allocation bitmaps plus slack for page rounding.
func (s Scale) ArenaSize() int {
	records := (s.Accounts + s.Tellers + s.Branches + s.HistoryCap) * RecordSize
	bitmaps := (s.Accounts + s.Tellers + s.Branches + s.HistoryCap) / 8
	if s.Layout == heap.LayoutPageLocal {
		// Page-local pages waste a remainder (records cannot span pages).
		records += records / 4
	}
	return records + bitmaps + 64*4096
}

// Workload binds the four tables of a database.
type Workload struct {
	db      *core.DB
	scale   Scale
	account *heap.Table
	teller  *heap.Table
	branch  *heap.Table
	history *heap.Table
	rng     *rand.Rand
	histSeq uint64
	opsDone int

	// Recycle, when set, deletes the oldest history record once the
	// history table is full instead of failing; open-ended runs (testing.B
	// loops) enable it so the workload's per-operation work stays
	// constant. The paper-faithful Table 2 runs keep it off and size the
	// history table to the run length instead.
	Recycle bool
}

// Setup creates and populates the four tables in a fresh database and
// checkpoints, reproducing the paper's benchmark lifecycle (all tables in
// memory before the measured run; logging and checkpointing on).
func Setup(db *core.DB, scale Scale, seed int64) (*Workload, error) {
	cat, err := heap.Open(db)
	if err != nil {
		return nil, err
	}
	w := &Workload{db: db, scale: scale, rng: rand.New(rand.NewSource(seed))}
	mk := func(name string, capacity int) (*heap.Table, error) {
		return cat.CreateTableWithLayout(name, RecordSize, capacity, scale.Layout)
	}
	if w.branch, err = mk("branch", scale.Branches); err != nil {
		return nil, err
	}
	if w.teller, err = mk("teller", scale.Tellers); err != nil {
		return nil, err
	}
	if w.account, err = mk("account", scale.Accounts); err != nil {
		return nil, err
	}
	if w.history, err = mk("history", scale.HistoryCap); err != nil {
		return nil, err
	}
	if err := w.load(); err != nil {
		return nil, err
	}
	if err := db.Checkpoint(); err != nil {
		return nil, err
	}
	return w, nil
}

// Attach binds a workload to an existing (e.g. recovered) database whose
// tables Setup created earlier.
func Attach(db *core.DB, scale Scale, seed int64) (*Workload, error) {
	cat, err := heap.Open(db)
	if err != nil {
		return nil, err
	}
	w := &Workload{db: db, scale: scale, rng: rand.New(rand.NewSource(seed))}
	for name, dst := range map[string]**heap.Table{
		"branch": &w.branch, "teller": &w.teller, "account": &w.account, "history": &w.history,
	} {
		t, err := cat.Table(name)
		if err != nil {
			return nil, err
		}
		*dst = t
	}
	w.histSeq = uint64(w.history.Count())
	return w, nil
}

// load inserts the initial records, committing in batches.
func (w *Workload) load() error {
	tables := []struct {
		t *heap.Table
		n int
	}{{w.branch, w.scale.Branches}, {w.teller, w.scale.Tellers}, {w.account, w.scale.Accounts}}
	for _, tbl := range tables {
		txn, err := w.db.Begin()
		if err != nil {
			return err
		}
		inTxn := 0
		for i := 0; i < tbl.n; i++ {
			rec := make([]byte, RecordSize)
			binary.LittleEndian.PutUint64(rec[offID:], uint64(i))
			binary.LittleEndian.PutUint64(rec[offBalance:], 1_000_000)
			if _, err := tbl.t.Insert(txn, rec); err != nil {
				txn.Abort()
				return err
			}
			if inTxn++; inTxn == 5000 {
				if err := txn.Commit(); err != nil {
					return err
				}
				if txn, err = w.db.Begin(); err != nil {
					return err
				}
				inTxn = 0
			}
		}
		if err := txn.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// DB returns the underlying database.
func (w *Workload) DB() *core.DB { return w.db }

// Tables returns the four tables (for fault targeting in campaigns).
func (w *Workload) Tables() (account, teller, branch, history *heap.Table) {
	return w.account, w.teller, w.branch, w.history
}

// OpsDone reports the number of operations executed.
func (w *Workload) OpsDone() int { return w.opsDone }

// Op executes one TPC-B style operation inside txn: read and update the
// balance of a random account, teller and branch, and insert a history
// record. The reads go through the prescribed read interface, so read
// prechecking and read logging apply to them.
func (w *Workload) Op(txn *core.Txn) error {
	acct := uint32(w.rng.Intn(w.scale.Accounts))
	tell := uint32(w.rng.Intn(w.scale.Tellers))
	brch := uint32(w.rng.Intn(w.scale.Branches))
	delta := int64(w.rng.Intn(1999) - 999)

	if err := w.bumpBalance(txn, w.account, acct, delta); err != nil {
		return err
	}
	if err := w.bumpBalance(txn, w.teller, tell, delta); err != nil {
		return err
	}
	if err := w.bumpBalance(txn, w.branch, brch, delta); err != nil {
		return err
	}

	if w.Recycle && w.histSeq >= uint64(w.scale.HistoryCap) {
		old := heap.RID{Table: w.history.ID, Slot: uint32(w.histSeq % uint64(w.scale.HistoryCap))}
		if err := w.history.Delete(txn, old); err != nil {
			return err
		}
	}
	hist := make([]byte, RecordSize)
	binary.LittleEndian.PutUint64(hist[0:], w.histSeq)
	binary.LittleEndian.PutUint32(hist[8:], acct)
	binary.LittleEndian.PutUint32(hist[12:], tell)
	binary.LittleEndian.PutUint32(hist[16:], brch)
	binary.LittleEndian.PutUint64(hist[20:], uint64(delta))
	if _, err := w.history.Insert(txn, hist); err != nil {
		return err
	}
	w.histSeq++
	w.opsDone++
	return nil
}

// bumpBalance reads the record and rewrites its balance field in place.
func (w *Workload) bumpBalance(txn *core.Txn, t *heap.Table, slot uint32, delta int64) error {
	rid := heap.RID{Table: t.ID, Slot: slot}
	rec, err := t.Read(txn, rid)
	if err != nil {
		return err
	}
	bal := int64(binary.LittleEndian.Uint64(rec[offBalance:])) + delta
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(bal))
	return t.Update(txn, rid, offBalance, buf[:])
}

// Run executes ops operations, committing every CommitEvery, and returns
// the number completed. The final partial transaction is committed.
func (w *Workload) Run(ops int) error {
	txn, err := w.db.Begin()
	if err != nil {
		return err
	}
	inTxn := 0
	for i := 0; i < ops; i++ {
		if err := w.Op(txn); err != nil {
			txn.Abort()
			return fmt.Errorf("tpcb: op %d: %w", i, err)
		}
		if inTxn++; inTxn == CommitEvery {
			if err := txn.Commit(); err != nil {
				return err
			}
			if txn, err = w.db.Begin(); err != nil {
				return err
			}
			inTxn = 0
		}
	}
	return txn.Commit()
}

// TotalBalance sums a table's balance column (consistency check: the
// account, teller and branch balance sums all move by the same total).
func (w *Workload) TotalBalance(t *heap.Table) int64 {
	var sum int64
	t.Scan(func(_ heap.RID, rec []byte) bool {
		sum += int64(binary.LittleEndian.Uint64(rec[offBalance:]))
		return true
	})
	return sum
}

// Balances returns the three balance sums (account, teller, branch).
func (w *Workload) Balances() (acct, tell, brch int64) {
	return w.TotalBalance(w.account), w.TotalBalance(w.teller), w.TotalBalance(w.branch)
}

// HistoryCount reports the records in the history table.
func (w *Workload) HistoryCount() int { return w.history.Count() }
