package iofault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func newFS(t *testing.T) (*FaultFS, string) {
	t.Helper()
	root := t.TempDir()
	return NewFaultFS(root), root
}

func writeThrough(t *testing.T, fs *FaultFS, path string, data []byte) File {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 0 {
		if _, err := f.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// TestUnsyncedWritesAreNotDurable is the heart of the crash model: bytes
// written but never fsynced do not survive, even though the running
// process reads them back fine (page-cache semantics).
func TestUnsyncedWritesAreNotDurable(t *testing.T) {
	fs, root := newFS(t)
	path := filepath.Join(root, "f")
	f := writeThrough(t, fs, path, []byte("hello"))
	defer f.Close()

	// Volatile view sees the bytes.
	if b, err := fs.ReadFile(path); err != nil || string(b) != "hello" {
		t.Fatalf("volatile read = %q, %v", b, err)
	}
	// Durable view has no content: the create is pending, nothing synced.
	if n, ok := fs.DurableLen("f"); ok && n != 0 {
		t.Fatalf("unsynced file durable with %d bytes", n)
	}

	dst := t.TempDir()
	if err := fs.MaterializeDurable(dst); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dst, "f")); err == nil {
		t.Fatal("unsynced, dir-unsynced file materialized after crash")
	}
}

// TestSyncMakesContentDurable: Sync captures the file content as the
// durable snapshot and commits the file's own pending creation.
func TestSyncMakesContentDurable(t *testing.T) {
	fs, root := newFS(t)
	path := filepath.Join(root, "f")
	f := writeThrough(t, fs, path, []byte("hello"))
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if n, ok := fs.DurableLen("f"); !ok || n != 5 {
		t.Fatalf("after sync: durable len %d, ok %v", n, ok)
	}
	// Later writes are again volatile until the next sync.
	if _, err := f.Write([]byte(" world")); err != nil {
		t.Fatal(err)
	}
	if n, _ := fs.DurableLen("f"); n != 5 {
		t.Fatalf("write after sync leaked into durable state: %d bytes", n)
	}

	dst := t.TempDir()
	if err := fs.MaterializeDurable(dst); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dst, "f"))
	if err != nil || string(b) != "hello" {
		t.Fatalf("materialized %q, %v; want %q", b, err, "hello")
	}
}

// TestRenameNeedsDirSync: a rename is volatile until SyncDir commits the
// directory entry; after a crash without SyncDir the OLD name survives
// with its old durable content.
func TestRenameNeedsDirSync(t *testing.T) {
	fs, root := newFS(t)
	tmp := filepath.Join(root, "f.tmp")
	if err := WriteFileSync(fs, tmp, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// WriteFileSync = create+write+sync: the sync commits the creation, so
	// f.tmp is durable with its content.
	if n, ok := fs.DurableLen("f.tmp"); !ok || n != 2 {
		t.Fatalf("tmp after WriteFileSync: durable len %d, ok %v", n, ok)
	}

	if err := fs.Rename(tmp, filepath.Join(root, "f")); err != nil {
		t.Fatal(err)
	}
	// Crash now: durable view still has f.tmp, not f.
	if _, ok := fs.DurableLen("f"); ok {
		t.Fatal("rename became durable without a directory sync")
	}
	if _, ok := fs.DurableLen("f.tmp"); !ok {
		t.Fatal("rename source vanished from durable state without a directory sync")
	}

	if err := fs.SyncDir(root); err != nil {
		t.Fatal(err)
	}
	if n, ok := fs.DurableLen("f"); !ok || n != 2 {
		t.Fatalf("after SyncDir: durable len %d, ok %v", n, ok)
	}
	if _, ok := fs.DurableLen("f.tmp"); ok {
		t.Fatal("rename source still durable after SyncDir")
	}
}

// TestCrashFreezesDurableState: once the armed point fires, every further
// mutation and read fails with ErrCrashed and the durable state no longer
// changes.
func TestCrashFreezesDurableState(t *testing.T) {
	fs, root := newFS(t)
	path := filepath.Join(root, "f")
	if err := WriteFileSync(fs, path, []byte("stable")); err != nil {
		t.Fatal(err)
	}
	fs.CrashAtPoint(int64(fs.Points())) // the very next mutating op

	f, err := fs.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err) // non-mutating open: no point consumed
	}
	defer f.Close()
	if _, err := f.Write([]byte("junk")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write at crash point = %v, want ErrCrashed", err)
	}
	if !fs.Crashed() {
		t.Fatal("crash did not fire")
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync after crash = %v, want ErrCrashed", err)
	}
	if _, err := fs.ReadFile(path); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read after crash = %v, want ErrCrashed", err)
	}
	if err := fs.Rename(path, path+"2"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("rename after crash = %v, want ErrCrashed", err)
	}

	dst := t.TempDir()
	if err := fs.MaterializeDurable(dst); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dst, "f"))
	if err != nil || string(b) != "stable" {
		t.Fatalf("materialized %q, %v; want pre-crash content", b, err)
	}
}

// TestShortWrite: the armed write persists half the buffer and reports an
// injected error; the volatile file really is short.
func TestShortWrite(t *testing.T) {
	fs, root := newFS(t)
	path := filepath.Join(root, "f")
	fs.ShortWriteNth(1)
	f := writeThrough(t, fs, path, nil)
	defer f.Close()
	_, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("short write error = %v, want ErrInjected", err)
	}
	b, _ := os.ReadFile(path)
	if len(b) != 5 {
		t.Fatalf("file has %d bytes after short write, want 5", len(b))
	}
}

// TestNoSpace: the armed write applies nothing and returns ErrNoSpace.
func TestNoSpace(t *testing.T) {
	fs, root := newFS(t)
	path := filepath.Join(root, "f")
	fs.NoSpaceNth(1)
	f := writeThrough(t, fs, path, nil)
	defer f.Close()
	_, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrNoSpace) || !errors.Is(err, ErrInjected) {
		t.Fatalf("enospc write error = %v, want ErrNoSpace wrapping ErrInjected", err)
	}
	b, _ := os.ReadFile(path)
	if len(b) != 0 {
		t.Fatalf("file has %d bytes after ENOSPC, want 0", len(b))
	}
}

// TestTornWriteLies: the armed write persists half the buffer but reports
// full success — the caller cannot tell anything went wrong.
func TestTornWriteLies(t *testing.T) {
	fs, root := newFS(t)
	path := filepath.Join(root, "f")
	fs.TornWriteNth(1)
	f := writeThrough(t, fs, path, nil)
	defer f.Close()
	n, err := f.Write([]byte("0123456789"))
	if err != nil || n != 10 {
		t.Fatalf("torn write reported (%d, %v), want (10, nil)", n, err)
	}
	b, _ := os.ReadFile(path)
	if string(b) != "01234" {
		t.Fatalf("file content %q after torn write, want %q", b, "01234")
	}
	// The lie extends to durability: sync snapshots the torn content.
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if dn, ok := fs.DurableLen("f"); !ok || dn != 5 {
		t.Fatalf("durable len %d, ok %v after torn write + sync", dn, ok)
	}
}

// TestPreexistingFilesAreDurable: files present before the simulation
// begins survive any crash with their original content.
func TestPreexistingFilesAreDurable(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "old"), []byte("ancient"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := NewFaultFS(root)
	fs.CrashAtPoint(0)
	if _, err := fs.OpenFile(filepath.Join(root, "new"), os.O_CREATE|os.O_RDWR, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("create at point 0 = %v, want ErrCrashed", err)
	}
	dst := t.TempDir()
	if err := fs.MaterializeDurable(dst); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dst, "old"))
	if err != nil || string(b) != "ancient" {
		t.Fatalf("pre-existing file after crash: %q, %v", b, err)
	}
	if _, err := os.Stat(filepath.Join(dst, "new")); err == nil {
		t.Fatal("file created at the crash point materialized")
	}
}

// TestPointDeterminism: the same operation sequence consumes the same
// points, and each mutating op consumes exactly one.
func TestPointDeterminism(t *testing.T) {
	run := func() uint64 {
		fs, root := newFS(t)
		if err := WriteFileSync(fs, filepath.Join(root, "a.tmp"), []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := fs.Rename(filepath.Join(root, "a.tmp"), filepath.Join(root, "a")); err != nil {
			t.Fatal(err)
		}
		if err := fs.SyncDir(root); err != nil {
			t.Fatal(err)
		}
		return fs.Points()
	}
	p1, p2 := run(), run()
	if p1 != p2 {
		t.Fatalf("nondeterministic points: %d vs %d", p1, p2)
	}
	// WriteFileSync = create + write + sync; then rename + syncdir = 5.
	if p1 != 5 {
		t.Fatalf("points = %d, want 5 (create, write, sync, rename, syncdir)", p1)
	}
}
