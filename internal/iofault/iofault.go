// Package iofault abstracts the storage manager's durability I/O behind a
// small File/FS interface pair and provides a deterministic
// fault-injecting implementation. The paper's threat model is addressing
// errors in memory — package fault injects exactly those — but the
// durability path (WAL group-commit flushes, ping-pong checkpoint image
// writes, the anchor install, archives) talks to the filesystem, and its
// error paths are exactly the ones a production deployment exercises
// least and needs most. This package is the storage-side twin of the
// memory fault injector: os.File satisfies the interface in production,
// and FaultFS wraps it with seeded failpoints — fail-the-Nth-fsync, short
// writes, ENOSPC, torn page writes (lying storage: a write that reports
// success but persists only a prefix), and crash-at-I/O-point-K, which
// freezes a simulated durable state at exactly the bytes synced so far so
// a torture harness can restart recovery against every possible crash
// prefix.
//
// Durability model (deliberately strict, deterministic POSIX):
//
//   - Write/WriteAt/Truncate mutate only the volatile state (what the
//     running process reads back). Nothing unsynced survives a crash.
//   - File.Sync makes the file's current content durable, and also
//     commits any pending directory-entry operation (creation or rename)
//     for that path — matching journaled filesystems, where fsync of a
//     file forces the metadata operations it depends on.
//   - Rename and file creation are directory-entry operations: durable
//     only after FS.SyncDir on the parent (or a subsequent Sync of the
//     file at that path). A crash before that exposes the pre-rename
//     entries — the old target content and the synced temp file.
//   - Crash-at-point-K: every mutating operation consumes one global I/O
//     point; the operation at point K (and everything after it) fails
//     with ErrCrashed without being applied, so the durable state is
//     frozen at the prefix of synced bytes. MaterializeDurable writes
//     that frozen state into a directory for recovery to consume.
package iofault

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// File is the handle interface the durability paths write through. It is
// the subset of *os.File the WAL, checkpointer and archiver need.
type File interface {
	io.Writer
	io.WriterAt
	io.Closer
	Seek(offset int64, whence int) (int64, error)
	Truncate(size int64) error
	Sync() error
}

// FS is the filesystem interface the durability paths open files and
// manipulate directory entries through. Read-only helpers are included so
// a fault filesystem can fail reads after a simulated crash.
type FS interface {
	// OpenFile opens (or creates) a file for writing.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile reads the whole (volatile) content of a file.
	ReadFile(name string) ([]byte, error)
	// Stat reports metadata for the (volatile) file at name without
	// reading its content — existence probes over large files (log stream
	// detection) must not cost a full-file read. A missing file yields an
	// error satisfying errors.Is(err, fs.ErrNotExist).
	Stat(name string) (os.FileInfo, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// SyncDir fsyncs a directory, making entry operations (creates,
	// renames) within it durable.
	SyncDir(dir string) error
}

// osFS is the production implementation: plain os calls.
type osFS struct{}

// OS is the production filesystem: every call maps 1:1 onto package os.
var OS FS = osFS{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteFileSync writes data to path through fsys and forces it durable
// (open, write, fsync, close). The shared "write a small metadata file
// safely" helper used by the checkpoint anchor, checkpoint meta files and
// archives.
func WriteFileSync(fsys FS, path string, data []byte) error {
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ErrCrashed is returned by every mutating operation at and after the
// configured crash point: the simulated machine is down, and the durable
// state is frozen at the bytes synced before the point.
var ErrCrashed = errors.New("iofault: simulated crash")

// ErrInjected is the sentinel wrapped by every injected I/O failure
// (failed fsync, short write, ENOSPC), so callers and tests can
// distinguish injected faults from real ones with errors.Is.
var ErrInjected = errors.New("iofault: injected I/O error")

// ErrNoSpace is the injected ENOSPC; it wraps ErrInjected.
var ErrNoSpace = fmt.Errorf("%w: no space left on device", ErrInjected)

// rel returns path relative to root for durable-state bookkeeping.
func rel(root, path string) string {
	r, err := filepath.Rel(root, filepath.Clean(path))
	if err != nil {
		return filepath.Clean(path)
	}
	return r
}
