package iofault

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/obs"
)

// Op classifies the mutating filesystem operations that consume I/O
// points.
type Op int

// The mutating operation kinds, in no particular order. Reads are not I/O
// points: they cannot change the durable state.
const (
	OpCreate Op = iota // OpenFile that creates or truncates
	OpWrite
	OpWriteAt
	OpSync
	OpTruncate
	OpRename
	OpSyncDir
	// OpRead does not consume an I/O point (reads cannot change the
	// durable state); it exists so read failpoints have an op label.
	OpRead
)

func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpWriteAt:
		return "writeat"
	case OpSync:
		return "sync"
	case OpTruncate:
		return "truncate"
	case OpRename:
		return "rename"
	case OpSyncDir:
		return "syncdir"
	case OpRead:
		return "read"
	}
	return "unknown"
}

// dstate is the durable snapshot of one file: whether its directory entry
// survives a crash and the content that survives with it.
type dstate struct {
	exists bool
	data   []byte
}

// dirop is a pending directory-entry operation: durable only once a
// SyncDir (or a Sync of the file at path) commits it.
type dirop struct {
	rename bool
	path   string // the entry being created (rel)
	old    string // rename source (rel); empty for creation
	// oldDurable is the source's durable snapshot at rename time: that is
	// the content the committed entry exposes after a crash.
	oldDurable dstate
}

// FaultFS wraps the real filesystem under one root directory with
// deterministic, seeded failpoints and a simulated durable state. All
// mutations pass through to the real files (so the running engine reads
// back its own writes, like a page cache), while FaultFS tracks which
// bytes an abrupt crash would preserve.
//
// FaultFS is safe for concurrent use; every operation serializes on one
// mutex, which also makes the I/O-point sequence of a single-threaded
// workload fully deterministic.
type FaultFS struct {
	root string

	mu      sync.Mutex
	points  uint64 // I/O points consumed so far
	syncs   uint64 // Sync calls seen (for FailNthSync)
	writes  uint64 // Write/WriteAt calls seen (for per-write failpoints)
	crashAt int64  // crash when points reaches this; -1 = never
	crashed bool

	failSyncN   uint64 // fail the Nth (1-based) Sync with ErrInjected
	shortWriteN uint64 // Nth write persists half and returns ErrInjected
	noSpaceN    uint64 // Nth write fails wholesale with ErrNoSpace
	tornWriteN  uint64 // Nth write persists half but reports success

	reads          uint64 // ReadFile calls seen (for FailNthRead)
	failReadN      uint64 // fail the Nth (1-based) ReadFile with ErrInjected
	corruptReadOf  string // base name whose reads are corrupted
	corruptReadOff int64  // byte offset flipped in corrupted reads

	durable map[string]dstate
	pending []dirop

	mInjected *obs.Counter
	mCrashes  *obs.Counter
	mOps      *obs.Counter
	reg       *obs.Registry
}

// NewFaultFS wraps the directory root. Files already present under root
// are considered durable as-is (they predate the simulation).
func NewFaultFS(root string) *FaultFS {
	fs := &FaultFS{
		root:    filepath.Clean(root),
		crashAt: -1,
		durable: make(map[string]dstate),
	}
	// Pre-existing files are durable: snapshot them now. The walk descends
	// into subdirectories so a sharded root (shard-000/log, ...) is
	// captured whole; keys are root-relative paths.
	_ = filepath.WalkDir(fs.root, func(path string, e os.DirEntry, err error) error {
		if err != nil || e.IsDir() {
			return nil
		}
		if b, err := os.ReadFile(path); err == nil {
			fs.durable[rel(fs.root, path)] = dstate{exists: true, data: b}
		}
		return nil
	})
	return fs
}

// SetRegistry wires the injector's counters (iofault.ops, .injected,
// .crashes) and fault events into reg. Call before concurrent use.
func (fs *FaultFS) SetRegistry(reg *obs.Registry) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.reg = reg
	fs.mOps = reg.Counter(obs.NameIOFaultOps)
	fs.mInjected = reg.Counter(obs.NameIOFaultInjected)
	fs.mCrashes = reg.Counter(obs.NameIOFaultCrashes)
}

// CrashAtPoint arms a crash at I/O point k (0-based): the k-th mutating
// operation, and every one after it, fails with ErrCrashed without being
// applied. A negative k disarms.
func (fs *FaultFS) CrashAtPoint(k int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashAt = k
}

// FailNthSync arms an injected failure of the nth (1-based) Sync call.
func (fs *FaultFS) FailNthSync(n uint64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.failSyncN = n
}

// ShortWriteNth arms a short write at the nth (1-based) Write/WriteAt:
// only the first half of the buffer is applied and an ErrInjected-wrapped
// error is returned.
func (fs *FaultFS) ShortWriteNth(n uint64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.shortWriteN = n
}

// NoSpaceNth arms an ENOSPC at the nth (1-based) Write/WriteAt: nothing
// is applied and ErrNoSpace is returned.
func (fs *FaultFS) NoSpaceNth(n uint64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.noSpaceN = n
}

// TornWriteNth arms a torn write at the nth (1-based) Write/WriteAt: only
// the first half of the buffer reaches the file, but the call reports
// full success — the lying-storage fault a per-page codeword table is
// there to catch.
func (fs *FaultFS) TornWriteNth(n uint64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.tornWriteN = n
}

// FailNthRead arms an injected failure of the nth (1-based) ReadFile —
// the latent media error recovery hits when it reads the anchor, a
// checkpoint image or the stable log back. Zero disarms.
func (fs *FaultFS) FailNthRead(n uint64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.failReadN = n
}

// CorruptReadAt arms silent read corruption: every ReadFile of a file
// whose base name is name returns the stored bytes with the byte at
// offset off flipped — lying storage on the read path, which only
// checksummed/codeworded readers can catch. An empty name disarms.
func (fs *FaultFS) CorruptReadAt(name string, off int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.corruptReadOf = filepath.Base(name)
	fs.corruptReadOff = off
}

// Reads reports the number of ReadFile calls seen so far, so a caller can
// arm FailNthRead at "the next read from now" (Reads()+1).
func (fs *FaultFS) Reads() uint64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.reads
}

// Points reports the number of I/O points consumed so far. After a fully
// completed workload this is the exhaustive crash-point space: rerunning
// the same workload with CrashAtPoint(k) for every k in [0, Points())
// visits every I/O boundary.
func (fs *FaultFS) Points() uint64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.points
}

// Crashed reports whether the simulated crash has fired.
func (fs *FaultFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// Writes reports the number of Write/WriteAt calls seen so far, so a
// caller can arm a per-write failpoint at "the next write from now"
// (Writes()+1).
func (fs *FaultFS) Writes() uint64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.writes
}

// enter consumes one I/O point for a mutating operation, firing the crash
// failpoint if armed. Callers hold fs.mu.
func (fs *FaultFS) enterLocked(op Op, path string) error {
	if fs.crashed {
		return fmt.Errorf("%w (%s %s)", ErrCrashed, op, filepath.Base(path))
	}
	idx := fs.points
	fs.points++
	fs.mOps.Inc()
	if fs.crashAt >= 0 && idx >= uint64(fs.crashAt) {
		fs.crashed = true
		fs.mCrashes.Inc()
		if fs.reg.HasSinks() {
			fs.reg.Emit(obs.IOFaultEvent{Kind: "crash", Op: op.String(), Path: filepath.Base(path), Point: idx})
		}
		return fmt.Errorf("%w at point %d (%s %s)", ErrCrashed, idx, op, filepath.Base(path))
	}
	return nil
}

// inject notes an injected (non-crash) fault in metrics and events.
// Callers hold fs.mu.
func (fs *FaultFS) injectLocked(kind string, op Op, path string) {
	fs.mInjected.Inc()
	if fs.reg.HasSinks() {
		fs.reg.Emit(obs.IOFaultEvent{Kind: kind, Op: op.String(), Path: filepath.Base(path), Point: fs.points - 1})
	}
}

// --- FS interface -----------------------------------------------------------

// OpenFile opens a file; creating or truncating counts as a mutating
// directory operation.
func (fs *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	fs.mu.Lock()
	creates := flag&os.O_CREATE != 0
	truncs := flag&os.O_TRUNC != 0
	_, existed := fs.statVolatileLocked(name)
	mutates := (creates && !existed) || truncs
	if mutates {
		if err := fs.enterLocked(OpCreate, name); err != nil {
			fs.mu.Unlock()
			return nil, err
		}
	} else if fs.crashed {
		fs.mu.Unlock()
		return nil, fmt.Errorf("%w (open %s)", ErrCrashed, filepath.Base(name))
	}
	if creates && !existed {
		fs.pending = append(fs.pending, dirop{path: rel(fs.root, name)})
	}
	fs.mu.Unlock()

	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: fs, f: f, path: name}, nil
}

// ReadFile reads the volatile content; it fails once the simulated
// machine is down, and consults the read failpoints (FailNthRead,
// CorruptReadAt) before returning.
func (fs *FaultFS) ReadFile(name string) ([]byte, error) {
	fs.mu.Lock()
	if fs.crashed {
		fs.mu.Unlock()
		return nil, fmt.Errorf("%w (read %s)", ErrCrashed, filepath.Base(name))
	}
	fs.reads++
	if fs.failReadN != 0 && fs.reads == fs.failReadN {
		fs.injectLocked("failread", OpRead, name)
		fs.mu.Unlock()
		return nil, fmt.Errorf("%w: read %s failed", ErrInjected, filepath.Base(name))
	}
	corrupt := fs.corruptReadOf != "" && fs.corruptReadOf == filepath.Base(name)
	off := fs.corruptReadOff
	if corrupt {
		fs.injectLocked("corruptread", OpRead, name)
	}
	fs.mu.Unlock()

	data, err := os.ReadFile(name)
	if err != nil {
		return data, err
	}
	if corrupt && off >= 0 && off < int64(len(data)) {
		data[off] ^= 0xFF
	}
	return data, nil
}

// Stat reports metadata for the volatile view of name. Like ReadFile it
// fails once the simulated machine is down, but it is not a read
// failpoint: existence probes carry no data whose loss a campaign could
// exercise, and keeping them out of the read count keeps FailNthRead
// positions stable across probe-only refactors.
func (fs *FaultFS) Stat(name string) (os.FileInfo, error) {
	fs.mu.Lock()
	if fs.crashed {
		fs.mu.Unlock()
		return nil, fmt.Errorf("%w (stat %s)", ErrCrashed, filepath.Base(name))
	}
	fs.mu.Unlock()
	return os.Stat(name)
}

// Rename performs the volatile rename and records the pending
// directory-entry operation; the durable view keeps the old entries until
// a SyncDir or a Sync of the new path commits it.
func (fs *FaultFS) Rename(oldpath, newpath string) error {
	fs.mu.Lock()
	if err := fs.enterLocked(OpRename, newpath); err != nil {
		fs.mu.Unlock()
		return err
	}
	oldRel, newRel := rel(fs.root, oldpath), rel(fs.root, newpath)
	fs.pending = append(fs.pending, dirop{
		rename: true, path: newRel, old: oldRel, oldDurable: fs.durable[oldRel],
	})
	fs.mu.Unlock()
	return os.Rename(oldpath, newpath)
}

// SyncDir commits every pending directory-entry operation under dir.
func (fs *FaultFS) SyncDir(dir string) error {
	fs.mu.Lock()
	if err := fs.enterLocked(OpSyncDir, dir); err != nil {
		fs.mu.Unlock()
		return err
	}
	fs.commitPendingLocked("")
	fs.mu.Unlock()
	// The real directory fsync is unnecessary for the simulation but kept
	// so permission errors and exotic platforms still surface.
	return OS.SyncDir(dir)
}

// commitPendingLocked applies pending directory operations, in order. An
// empty path commits everything (SyncDir); a non-empty path commits only
// operations for that entry (Sync of the file commits its own creation or
// rename, per the journaled-metadata model).
func (fs *FaultFS) commitPendingLocked(path string) {
	kept := fs.pending[:0]
	for _, op := range fs.pending {
		if path != "" && op.path != path {
			kept = append(kept, op)
			continue
		}
		if op.rename {
			fs.durable[op.path] = op.oldDurable
			delete(fs.durable, op.old)
		} else if d, ok := fs.durable[op.path]; !ok || !d.exists {
			// Creation: the entry becomes durable; content is whatever has
			// been fsynced under this name (nothing yet → empty file).
			fs.durable[op.path] = dstate{exists: true}
		}
	}
	fs.pending = kept
}

// statVolatileLocked reports whether name exists in the volatile view.
func (fs *FaultFS) statVolatileLocked(name string) (os.FileInfo, bool) {
	fi, err := os.Stat(name)
	return fi, err == nil
}

// MaterializeDurable writes the simulated durable state into dst: exactly
// the files (and bytes) that survive the crash. Recovery then runs
// against dst with the plain OS filesystem, exactly as a restarted
// process would.
func (fs *FaultFS) MaterializeDurable(dst string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	for name, d := range fs.durable {
		if !d.exists {
			continue
		}
		target := filepath.Join(dst, name)
		if err := os.MkdirAll(filepath.Dir(target), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(target, d.data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// DurableLen reports the durable byte length of name (rel to root), for
// tests. ok is false when no durable entry exists.
func (fs *FaultFS) DurableLen(name string) (int, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, ok := fs.durable[name]
	if !ok || !d.exists {
		return 0, false
	}
	return len(d.data), true
}

// --- File implementation ----------------------------------------------------

type faultFile struct {
	fs   *FaultFS
	f    *os.File
	path string
}

// writeFault consults the per-write failpoints. It returns the number of
// bytes to actually apply and the error to report (nil for torn writes,
// which lie).
func (fs *FaultFS) writeFaultLocked(op Op, path string, n int) (int, error) {
	fs.writes++
	switch fs.writes {
	case fs.noSpaceN:
		if fs.noSpaceN != 0 {
			fs.injectLocked("enospc", op, path)
			return 0, ErrNoSpace
		}
	case fs.shortWriteN:
		if fs.shortWriteN != 0 {
			fs.injectLocked("shortwrite", op, path)
			return n / 2, fmt.Errorf("%w: short write (%d of %d bytes)", ErrInjected, n/2, n)
		}
	case fs.tornWriteN:
		if fs.tornWriteN != 0 {
			fs.injectLocked("tornwrite", op, path)
			return n / 2, nil // lies: persists half, reports success
		}
	}
	return n, nil
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	if err := ff.fs.enterLocked(OpWrite, ff.path); err != nil {
		ff.fs.mu.Unlock()
		return 0, err
	}
	apply, ferr := ff.fs.writeFaultLocked(OpWrite, ff.path, len(p))
	ff.fs.mu.Unlock()
	n, err := ff.f.Write(p[:apply])
	if err != nil {
		return n, err
	}
	if ferr != nil {
		return n, ferr
	}
	if apply < len(p) {
		return len(p), nil // torn write: report success
	}
	return n, nil
}

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	ff.fs.mu.Lock()
	if err := ff.fs.enterLocked(OpWriteAt, ff.path); err != nil {
		ff.fs.mu.Unlock()
		return 0, err
	}
	apply, ferr := ff.fs.writeFaultLocked(OpWriteAt, ff.path, len(p))
	ff.fs.mu.Unlock()
	n, err := ff.f.WriteAt(p[:apply], off)
	if err != nil {
		return n, err
	}
	if ferr != nil {
		return n, ferr
	}
	if apply < len(p) {
		return len(p), nil
	}
	return n, nil
}

func (ff *faultFile) Truncate(size int64) error {
	ff.fs.mu.Lock()
	if err := ff.fs.enterLocked(OpTruncate, ff.path); err != nil {
		ff.fs.mu.Unlock()
		return err
	}
	ff.fs.mu.Unlock()
	return ff.f.Truncate(size)
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	if err := ff.fs.enterLocked(OpSync, ff.path); err != nil {
		ff.fs.mu.Unlock()
		return err
	}
	ff.fs.syncs++
	if ff.fs.failSyncN != 0 && ff.fs.syncs == ff.fs.failSyncN {
		ff.fs.injectLocked("failsync", OpSync, ff.path)
		ff.fs.mu.Unlock()
		return fmt.Errorf("%w: fsync failed", ErrInjected)
	}
	ff.fs.mu.Unlock()

	// Capture the volatile content as the new durable snapshot. The real
	// fsync is skipped: the simulation defines durability, and skipping it
	// keeps torture campaigns fast.
	data, err := os.ReadFile(ff.path)
	if err != nil {
		return err
	}
	ff.fs.mu.Lock()
	r := rel(ff.fs.root, ff.path)
	ff.fs.commitPendingLocked(r)
	ff.fs.durable[r] = dstate{exists: true, data: data}
	ff.fs.mu.Unlock()
	return nil
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	return ff.f.Seek(offset, whence)
}

// Close never injects: a crashed process's descriptors are reaped by the
// OS regardless, and the engine's shutdown paths must be able to release
// handles after a simulated crash.
func (ff *faultFile) Close() error { return ff.f.Close() }
