package torture

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/iofault"
	"repro/internal/recovery"
	"repro/internal/wal"
)

// TestFaultFreeRun sanity-checks the workload itself: it completes, every
// commit is acknowledged, and the I/O point count is stable enough to
// make the exhaustive sweep meaningful.
func TestFaultFreeRun(t *testing.T) {
	c := DefaultConfig()
	dir := filepath.Join(t.TempDir(), "db")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	fsys := iofault.NewFaultFS(dir)
	res := Run(dir, fsys, c)
	if res.Err != nil {
		t.Fatalf("fault-free run failed: %v", res.Err)
	}
	if res.Committed != c.Txns {
		t.Fatalf("committed %d of %d txns", res.Committed, c.Txns)
	}
	if got := fsys.Points(); got < 20 {
		t.Fatalf("suspiciously few I/O points: %d", got)
	}
	// Determinism: a second run must consume the identical point count,
	// otherwise crash-at-K would not visit the same boundary in each run.
	dir2 := filepath.Join(t.TempDir(), "db2")
	if err := os.MkdirAll(dir2, 0o755); err != nil {
		t.Fatal(err)
	}
	fsys2 := iofault.NewFaultFS(dir2)
	if res2 := Run(dir2, fsys2, c); res2.Err != nil {
		t.Fatalf("second run failed: %v", res2.Err)
	}
	if fsys.Points() != fsys2.Points() {
		t.Fatalf("nondeterministic I/O point count: %d vs %d", fsys.Points(), fsys2.Points())
	}
}

// TestCrashPointExhaustive is the tentpole assertion: for EVERY I/O point
// K of the fixed workload, crashing at K and recovering from the frozen
// durable state converges to a state with a clean codeword audit where
// acknowledged commits are present and unacknowledged transactions are
// absent.
func TestCrashPointExhaustive(t *testing.T) {
	c := DefaultConfig()
	if testing.Short() {
		c = SmokeConfig()
	}
	root := t.TempDir()
	n, err := CountPoints(filepath.Join(root, "dry"), c)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("workload has %d I/O points", n)
	for k := int64(0); k < int64(n); k++ {
		_, _, verr := CrashPoint(
			filepath.Join(root, fmt.Sprintf("w%d", k)),
			filepath.Join(root, fmt.Sprintf("r%d", k)),
			c, k)
		if verr != nil {
			t.Fatalf("crash at I/O point %d/%d: %v", k, n, verr)
		}
	}
}

// TestTortureSmoke is the bounded variant make torture-smoke runs in CI:
// every crash point of the smoke workload.
func TestTortureSmoke(t *testing.T) {
	c := SmokeConfig()
	root := t.TempDir()
	n, err := CountPoints(filepath.Join(root, "dry"), c)
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < int64(n); k++ {
		if _, _, verr := CrashPoint(
			filepath.Join(root, fmt.Sprintf("w%d", k)),
			filepath.Join(root, fmt.Sprintf("r%d", k)),
			c, k); verr != nil {
			t.Fatalf("crash at I/O point %d/%d: %v", k, n, verr)
		}
	}
}

// TestCrashPointExhaustiveMultiStream reruns the exhaustive sweep with
// the WAL sharded into three streams and recovery's parallel redo-apply
// enabled: crash points now land in every stream file's writes and
// fsyncs (including the per-stream syncs that make the file set durable
// at open), and recovery must still converge to acked-commits-exact from
// each of them by merging the surviving streams in GSN order.
func TestCrashPointExhaustiveMultiStream(t *testing.T) {
	c := DefaultConfig()
	if testing.Short() {
		c = SmokeConfig()
	}
	c.LogStreams = 3
	c.RedoWorkers = 2
	root := t.TempDir()
	n, err := CountPoints(filepath.Join(root, "dry"), c)
	if err != nil {
		t.Fatal(err)
	}
	// The multi-stream workload must actually spread I/O across stream
	// files — otherwise the sweep silently degenerates to the S=1 one.
	for i := 0; i < c.LogStreams; i++ {
		if _, err := os.Stat(filepath.Join(root, "dry", wal.StreamFileName(i))); err != nil {
			t.Fatalf("dry run left no stream file %d: %v", i, err)
		}
	}
	t.Logf("multi-stream workload has %d I/O points", n)
	for k := int64(0); k < int64(n); k++ {
		_, rep, verr := CrashPoint(
			filepath.Join(root, fmt.Sprintf("w%d", k)),
			filepath.Join(root, fmt.Sprintf("r%d", k)),
			c, k)
		if verr != nil {
			t.Fatalf("crash at I/O point %d/%d: %v", k, n, verr)
		}
		if rep != nil && !rep.FreshDatabase && !rep.CorruptionMode && rep.RedoWorkers != 2 {
			t.Fatalf("crash at %d: recovery ran with %d redo workers, want 2", k, rep.RedoWorkers)
		}
	}
}

// TestFailedFsyncFailStops proves the fsyncgate fix end to end: a failed
// log fsync poisons the log, the failing commit reports the error, every
// later transaction fails with ErrLogPoisoned, and nothing that was only
// in the poisoned tail survives recovery.
func TestFailedFsyncFailStops(t *testing.T) {
	c := DefaultConfig()
	dir := filepath.Join(t.TempDir(), "db")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	fsys := iofault.NewFaultFS(dir)
	// Sync #1 is the initial load's commit; #2 is inside the first
	// checkpoint (image sync). Fail #1 so the very first commit dies.
	fsys.FailNthSync(1)
	res := Run(dir, fsys, c)
	if res.Err == nil {
		t.Fatal("workload succeeded despite injected fsync failure")
	}
	if !errors.Is(res.Err, wal.ErrLogPoisoned) {
		t.Fatalf("first failure is %v, want ErrLogPoisoned in chain", res.Err)
	}
	if !errors.Is(res.Err, iofault.ErrInjected) {
		t.Fatalf("poison cause lost: %v does not wrap the injected error", res.Err)
	}
	if res.Committed != 0 {
		t.Fatalf("%d commits acknowledged after the log died", res.Committed)
	}
	// The acknowledged-state contract still holds through recovery.
	if _, err := Verify(fsys, filepath.Join(t.TempDir(), "rec"), c, res); err != nil {
		t.Fatalf("recovery after poisoned log: %v", err)
	}
}

// TestPoisonedLogFailsEverything drives the poisoned log directly: after
// the injected fsync failure, Append, AppendAndFlush, Flush, Reset and
// Compact must all fail with ErrLogPoisoned and nothing may block.
func TestPoisonedLogFailsEverything(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	fsys := iofault.NewFaultFS(dir)
	fsys.FailNthSync(1)
	l, err := wal.OpenSystemLogFS(fsys, dir, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(&wal.Record{Kind: wal.KindTxnBegin, Txn: 1}); err != nil {
		t.Fatalf("append before poison: %v", err)
	}
	if err := l.Flush(); !errors.Is(err, wal.ErrLogPoisoned) {
		t.Fatalf("flush error = %v, want ErrLogPoisoned", err)
	}
	if err := l.Poisoned(); !errors.Is(err, wal.ErrLogPoisoned) {
		t.Fatalf("Poisoned() = %v", err)
	}
	if err := l.Append(&wal.Record{Kind: wal.KindTxnBegin, Txn: 2}); !errors.Is(err, wal.ErrLogPoisoned) {
		t.Fatalf("append after poison = %v, want ErrLogPoisoned", err)
	}
	if err := l.AppendAndFlush(&wal.Record{Kind: wal.KindTxnBegin, Txn: 3}); !errors.Is(err, wal.ErrLogPoisoned) {
		t.Fatalf("append-and-flush after poison = %v, want ErrLogPoisoned", err)
	}
	if err := l.Flush(); !errors.Is(err, wal.ErrLogPoisoned) {
		t.Fatalf("second flush = %v, want ErrLogPoisoned", err)
	}
	if err := l.Reset(); !errors.Is(err, wal.ErrLogPoisoned) {
		t.Fatalf("reset after poison = %v, want ErrLogPoisoned", err)
	}
	if err := l.Compact(0); err != nil && !errors.Is(err, wal.ErrLogPoisoned) {
		t.Fatalf("compact after poison = %v", err)
	}
	if err := l.Close(); !errors.Is(err, wal.ErrLogPoisoned) {
		t.Fatalf("close after poison = %v, want ErrLogPoisoned", err)
	}
}

// TestENOSPCDuringCheckpoint injects ENOSPC into a checkpoint image
// write: the checkpoint fails, the previous certified checkpoint stays
// current, and the database keeps running — a later, un-faulted
// checkpoint succeeds.
func TestENOSPCDuringCheckpoint(t *testing.T) {
	c := DefaultConfig()
	dir := filepath.Join(t.TempDir(), "db")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	fsys := iofault.NewFaultFS(dir)
	db, err := core.Open(CoreConfig(dir, fsys, c))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("first checkpoint: %v", err)
	}
	anchorBefore, ok := db.Internals().Checkpoints.Anchor()
	if !ok {
		t.Fatal("no anchor after first checkpoint")
	}
	// The next write call hits the second checkpoint's image write (no
	// transactions run in between, so the next Write/WriteAt belongs to
	// the image or meta path).
	fsys.NoSpaceNth(nextWriteOrdinal(fsys))
	err = db.Checkpoint()
	if err == nil {
		t.Fatal("checkpoint succeeded despite ENOSPC")
	}
	if !errors.Is(err, iofault.ErrNoSpace) {
		t.Fatalf("checkpoint error = %v, want ErrNoSpace in chain", err)
	}
	anchorAfter, ok := db.Internals().Checkpoints.Anchor()
	if !ok || !anchorAfter.Equal(anchorBefore) {
		t.Fatalf("failed checkpoint moved the anchor: %+v -> %+v", anchorBefore, anchorAfter)
	}
	// With space back, the next checkpoint completes.
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("retry checkpoint: %v", err)
	}
	if a, _ := db.Internals().Checkpoints.Anchor(); a.SeqNo != anchorBefore.SeqNo+1 {
		t.Fatalf("retry checkpoint seq %d, want %d", a.SeqNo, anchorBefore.SeqNo+1)
	}
}

// TestTornCheckpointPageFallsBack injects a torn page (lying write: half
// the page persists, success is reported) into the CURRENT checkpoint
// image. Load must detect the mismatch against the per-page codeword
// table and recovery must fall back to the other ping-pong image,
// replaying the retained log from its older CK_end.
func TestTornCheckpointPageFallsBack(t *testing.T) {
	c := DefaultConfig()
	c.CheckpointEvery = 0 // no checkpoints beyond the post-load one
	// Fill page 0 well past its midpoint: a torn write persists only the
	// first half of the page, which is detectable only if the second half
	// held nonzero data (a fresh image file reads back zeros there).
	c.Slots = 56
	dir := filepath.Join(t.TempDir(), "db")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	fsys := iofault.NewFaultFS(dir)
	res := Run(dir, fsys, c) // load + ckpt(A) + updates, no further ckpt
	if res.Err != nil {
		t.Fatal(res.Err)
	}

	// Reopen with a torn write armed: recovery's completion checkpoint
	// writes the other ping-pong image, and its first image write lies —
	// half persists, success is reported. The checkpoint certifies anyway
	// (the audit checks memory, not disk) and the anchor now names a
	// corrupt image.
	fsys2 := iofault.NewFaultFS(dir)
	fsys2.TornWriteNth(1)
	db, _, err := recovery.Open(CoreConfig(dir, fsys2, c), recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := db.Internals().Checkpoints.Anchor()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Plain Load must refuse the anchored image.
	if _, err := ckpt.Load(dir); !errors.Is(err, ckpt.ErrImageCorrupt) {
		t.Fatalf("Load of torn image = %v, want ErrImageCorrupt", err)
	}
	// Recovery must converge via the fallback image.
	db2, rep, err := recovery.Open(CoreConfig(dir, nil, c), recovery.Options{})
	if err != nil {
		t.Fatalf("recovery with torn current image: %v", err)
	}
	defer db2.Close()
	if !rep.UsedFallbackImage {
		t.Fatalf("recovery did not use the fallback image (anchor was %+v)", a)
	}
	if err := db2.Audit(); err != nil {
		t.Fatalf("post-fallback audit: %v", err)
	}
	// The committed history is intact.
	arena := db2.Internals().Arena
	for s, want := range res.Expected {
		got := arena.Slice(res.Addrs[s], len(want))
		if string(got) != string(want) {
			t.Fatalf("slot %d after fallback recovery: %x, want %x", s, got, want)
		}
	}
}

// nextWriteOrdinal returns the 1-based ordinal the NEXT Write/WriteAt
// call will have, so tests can arm per-write failpoints "from now on".
func nextWriteOrdinal(fsys *iofault.FaultFS) uint64 {
	return fsys.Writes() + 1
}
