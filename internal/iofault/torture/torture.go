// Package torture drives exhaustive crash-point recovery testing against
// the injectable storage-fault layer. A fixed, deterministic workload is
// run once fault-free to count its I/O points; it is then rerun with a
// simulated crash at every point K in [0, N), the frozen durable state is
// materialized into a fresh directory, and restart recovery is run
// against it. Recovery must converge, a full codeword audit must come
// back clean, every transaction whose commit succeeded before the crash
// must be present, and every other transaction must be absent — the
// ALICE/CrashMonkey discipline applied to the paper's Dalí-style storage
// manager.
package torture

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/iofault"
	"repro/internal/mem"
	"repro/internal/protect"
	"repro/internal/recovery"
)

// Config sizes the canonical workload. The zero value is unusable; use
// DefaultConfig (or SmokeConfig) as a starting point.
type Config struct {
	// PageSize and ArenaSize shape the database.
	PageSize  int
	ArenaSize int
	// Slots and RecSize shape the heap table; the workload round-robins
	// its updates over the slots.
	Slots   int
	RecSize int
	// Txns is the number of single-update transactions after the initial
	// load; CheckpointEvery inserts a ping-pong checkpoint every that many
	// transactions (0 = only the post-load checkpoint).
	Txns            int
	CheckpointEvery int
	// LogStreams shards the WAL into this many independent streams
	// (core.Config.LogStreams; 0/1 = the historical single system.log).
	// Crash points then land in every stream file's writes and fsyncs.
	LogStreams int
	// RedoWorkers drives recovery's partitioned parallel redo-apply pass
	// during Verify (recovery.Options.RedoWorkers; 0/1 = serial).
	RedoWorkers int
}

// DefaultConfig is the exhaustive-test workload: small enough that the
// full crash-point space stays in the hundreds, large enough to cross
// several group commits and three checkpoints (so crash points land
// inside image writes, meta writes, the anchor install and its directory
// sync, not just log flushes).
func DefaultConfig() Config {
	return Config{
		PageSize:  4096,
		ArenaSize: 32 << 10,
		Slots:     8,
		RecSize:   64,
		Txns:      12,
		CheckpointEvery: 4,
	}
}

// SmokeConfig is a bounded variant for CI smoke runs (make torture-smoke).
func SmokeConfig() Config {
	c := DefaultConfig()
	c.Txns = 4
	c.CheckpointEvery = 2
	return c
}

// CoreConfig is the database configuration the workload runs under:
// single-threaded scan pool (fully deterministic I/O-point sequence),
// data codewords with small regions, and no log compaction — retaining
// the log keeps the older ping-pong image recoverable, which the
// torn-page fallback path depends on.
func CoreConfig(dir string, fsys iofault.FS, c Config) core.Config {
	return core.Config{
		Dir:       dir,
		ArenaSize: c.ArenaSize,
		PageSize:  c.PageSize,
		Protect:   protect.Config{Kind: protect.KindDataCW, RegionSize: 64},
		Workers:   1,
		LogStreams: c.LogStreams,
		DisableLogCompaction: true,
		FS:        fsys,
	}
}

// RunResult captures what one workload run durably promised: the record
// bytes each slot must hold after recovery (reflecting exactly the
// transactions whose Commit returned nil) and where those records live.
type RunResult struct {
	// Addrs[s] is the arena address of slot s's record; nil if the run
	// crashed before the table existed.
	Addrs []mem.Addr
	// Expected[s] is slot s's full record image per the committed history.
	Expected [][]byte
	// Committed counts update transactions whose Commit returned nil.
	Committed int
	// Checkpoints counts completed checkpoints.
	Checkpoints int
	// Err is the first error the workload hit (nil on a fault-free run).
	Err error
}

// initRecord fills slot's record from a slot-seeded LCG. Structured fills
// are invisible to XOR codewords — a repeated byte makes every word
// identical (even counts cancel to zero, the codeword of absent data),
// and even slot⊕offset patterns are separable and cancel the same way —
// so the fill must be effectively random per byte for torn-page tests to
// have teeth.
func initRecord(c Config, slot int) []byte {
	rec := make([]byte, c.RecSize)
	x := uint32(slot)*2654435761 + 12345
	for j := range rec {
		x = x*1664525 + 1013904223
		rec[j] = byte(x >> 24)
	}
	return rec
}

// Run executes the canonical workload in dir through fsys, stopping at
// the first error (on a crash-armed filesystem that is the simulated
// machine going down). The returned result's Expected state reflects only
// commits that were acknowledged — the contract Verify holds recovery to.
func Run(dir string, fsys iofault.FS, c Config) *RunResult {
	res := &RunResult{}
	fail := func(db *core.DB, err error) *RunResult {
		res.Err = err
		if db != nil {
			db.Crash()
		}
		return res
	}
	db, err := core.Open(CoreConfig(dir, fsys, c))
	if err != nil {
		return fail(nil, err)
	}
	cat, err := heap.Open(db)
	if err != nil {
		return fail(db, err)
	}
	tb, err := cat.CreateTable("torture", c.RecSize, c.Slots)
	if err != nil {
		return fail(db, err)
	}
	res.Addrs = make([]mem.Addr, c.Slots)
	res.Expected = make([][]byte, c.Slots)
	for s := 0; s < c.Slots; s++ {
		res.Addrs[s] = tb.RecordAddr(uint32(s))
		res.Expected[s] = make([]byte, c.RecSize) // nothing committed yet
	}

	// Initial load: one transaction inserting every slot, then a
	// checkpoint so the catalog metadata is durable.
	rids := make([]heap.RID, c.Slots)
	txn, err := db.Begin()
	if err != nil {
		return fail(db, err)
	}
	for s := 0; s < c.Slots; s++ {
		if rids[s], err = tb.Insert(txn, initRecord(c, s)); err != nil {
			return fail(db, err)
		}
	}
	if err := txn.Commit(); err != nil {
		return fail(db, err)
	}
	for s := 0; s < c.Slots; s++ {
		res.Expected[s] = initRecord(c, s)
	}
	if err := db.Checkpoint(); err != nil {
		return fail(db, err)
	}
	res.Checkpoints++

	// Update transactions: txn i writes i+1 into slot i%Slots at a fixed
	// field offset. Expected state advances only on acknowledged commit.
	for i := 0; i < c.Txns; i++ {
		s := i % c.Slots
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], uint64(i+1))
		txn, err := db.Begin()
		if err != nil {
			return fail(db, err)
		}
		if err := tb.Update(txn, rids[s], 8, v[:]); err != nil {
			return fail(db, err)
		}
		if err := txn.Commit(); err != nil {
			return fail(db, err)
		}
		copy(res.Expected[s][8:16], v[:])
		res.Committed++
		if c.CheckpointEvery > 0 && (i+1)%c.CheckpointEvery == 0 {
			if err := db.Checkpoint(); err != nil {
				return fail(db, err)
			}
			res.Checkpoints++
		}
	}
	if err := db.Close(); err != nil {
		res.Err = err
	}
	return res
}

// Verify materializes fsys's frozen durable state into recoverDir, runs
// restart recovery there on the real filesystem (exactly as a restarted
// process would), and asserts the recovery contract: recovery converges,
// a full codeword audit is clean, acknowledged commits are present and
// unacknowledged transactions absent. The recovery Report is returned for
// callers interested in fallback/corruption details.
func Verify(fsys *iofault.FaultFS, recoverDir string, c Config, res *RunResult) (*recovery.Report, error) {
	if err := fsys.MaterializeDurable(recoverDir); err != nil {
		return nil, fmt.Errorf("torture: materialize durable state: %w", err)
	}
	db, rep, err := recovery.Open(CoreConfig(recoverDir, nil, c), recovery.Options{RedoWorkers: c.RedoWorkers})
	if err != nil {
		return nil, fmt.Errorf("torture: recovery did not converge: %w", err)
	}
	defer db.Close()
	if err := db.Audit(); err != nil {
		return rep, fmt.Errorf("torture: post-recovery audit: %w", err)
	}
	if res.Addrs == nil {
		// Crashed before the table existed: convergence and the clean
		// audit are the whole contract.
		return rep, nil
	}
	arena := db.Internals().Arena
	for s, want := range res.Expected {
		got := arena.Slice(res.Addrs[s], len(want))
		if !bytes.Equal(got, want) {
			return rep, fmt.Errorf("torture: slot %d at addr %d: recovered %x, want %x",
				s, res.Addrs[s], got, want)
		}
	}
	return rep, nil
}

// CrashPoint runs the workload in workDir with a crash armed at point k,
// then verifies recovery from the frozen durable state in recoverDir.
// Both directories are created. It returns the run and verification
// results; verr is the verification failure, if any.
func CrashPoint(workDir, recoverDir string, c Config, k int64) (res *RunResult, rep *recovery.Report, verr error) {
	if err := os.MkdirAll(workDir, 0o755); err != nil {
		return nil, nil, err
	}
	fsys := iofault.NewFaultFS(workDir)
	fsys.CrashAtPoint(k)
	res = Run(workDir, fsys, c)
	if !fsys.Crashed() {
		return res, nil, fmt.Errorf("torture: crash point %d never fired (workload has %d points)", k, fsys.Points())
	}
	rep, verr = Verify(fsys, recoverDir, c, res)
	return res, rep, verr
}

// CountPoints runs the workload fault-free in dir and reports its I/O
// point count — the exhaustive crash-point space.
func CountPoints(dir string, c Config) (uint64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	fsys := iofault.NewFaultFS(dir)
	res := Run(dir, fsys, c)
	if res.Err != nil {
		return 0, fmt.Errorf("torture: fault-free run failed: %w", res.Err)
	}
	return fsys.Points(), nil
}
