package benchtab

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/mem"
	"repro/internal/protect"
	"repro/internal/region"
)

// --- PR 3 kernel and scan throughput report ---------------------------------
//
// The codeword kernels and the parallel scan pipeline are not part of the
// paper's tables, but they determine the constant factors behind Table 2's
// codeword rows: fold throughput bounds per-update maintenance cost, and
// audit/recompute throughput bounds how often the background auditor can
// certify the database. RunKernels measures them and the protbench tool
// writes the report as BENCH_pr3.json (format documented in EXPERIMENTS.md).

// KernelRow is one measurement of the kernel/scan benchmark.
type KernelRow struct {
	// Scheme is "kernel" for the raw per-byte primitives (fold, compute,
	// apply), or a protection scheme name (data-cw, precheck, deferred-cw)
	// for whole-arena scans run under that scheme's latch discipline.
	Scheme string `json:"scheme"`
	// RegionBytes is the protection region size the row was measured at.
	RegionBytes int `json:"region_bytes"`
	// Op is the operation: fold | compute | apply | apply-ecc | audit |
	// recompute (apply-ecc is the apply path with locator-plane
	// maintenance fused into the kernel).
	Op string `json:"op"`
	// Workers is the scan pool width (1 = serial path; 0 for the per-byte
	// kernel rows, which are single-threaded by nature).
	Workers int `json:"workers"`
	// MBPerSec is throughput over the bytes processed, in MiB/second.
	MBPerSec float64 `json:"mb_per_s"`
}

// KernelReport is the full benchmark output, serialized to BENCH_pr3.json.
type KernelReport struct {
	GOMAXPROCS int         `json:"gomaxprocs"`
	ArenaBytes int         `json:"arena_bytes"`
	Rows       []KernelRow `json:"rows"`
}

// KernelParams configures RunKernels.
type KernelParams struct {
	// ArenaBytes is the image size for the scan benchmarks (default 16 MiB).
	ArenaBytes int
	// RegionSizes to measure (default the paper's 64, 512, 8192).
	RegionSizes []int
	// AuditWorkers and RecomputeWorkers are the pool widths to sweep for
	// the scan rows; 1 is always prepended so every sweep has a serial
	// baseline to compute speedups against.
	AuditWorkers     []int
	RecomputeWorkers []int
	// MinTime is the minimum measurement window per row (default 100ms).
	MinTime time.Duration
}

func (p KernelParams) withDefaults() KernelParams {
	if p.ArenaBytes == 0 {
		p.ArenaBytes = 16 << 20
	}
	if len(p.RegionSizes) == 0 {
		p.RegionSizes = []int{64, 512, 8192}
	}
	p.AuditWorkers = withSerialBaseline(p.AuditWorkers)
	p.RecomputeWorkers = withSerialBaseline(p.RecomputeWorkers)
	if p.MinTime == 0 {
		p.MinTime = 100 * time.Millisecond
	}
	return p
}

// withSerialBaseline ensures the width sweep starts at 1 and is deduplicated.
func withSerialBaseline(ws []int) []int {
	out := []int{1}
	for _, w := range ws {
		if w > 1 && out[len(out)-1] != w {
			out = append(out, w)
		}
	}
	return out
}

// measureMBPS runs fn in a loop for at least minTime (after one warmup
// call) and reports MiB/second over bytesPerIter bytes per call.
func measureMBPS(bytesPerIter int, minTime time.Duration, fn func() error) (float64, error) {
	if err := fn(); err != nil {
		return 0, err
	}
	iters := 0
	start := time.Now()
	for time.Since(start) < minTime {
		if err := fn(); err != nil {
			return 0, err
		}
		iters++
	}
	elapsed := time.Since(start).Seconds()
	return float64(iters) * float64(bytesPerIter) / elapsed / (1 << 20), nil
}

// kernelScanSchemes are the codeword schemes whose audit/recompute scans
// the report covers: the three distinct latch disciplines (shared-latch
// Data Codeword, exclusive-latch Read Prechecking, and drain-then-verify
// Deferred Maintenance).
var kernelScanSchemes = []protect.Kind{
	protect.KindDataCW, protect.KindPrecheck, protect.KindDeferredCW,
}

// RunKernels measures fold/compute/apply kernel throughput and per-scheme
// audit/recompute scan throughput across the requested pool widths.
func RunKernels(params KernelParams) (*KernelReport, error) {
	params = params.withDefaults()
	rep := &KernelReport{GOMAXPROCS: runtime.GOMAXPROCS(0), ArenaBytes: params.ArenaBytes}

	arena, err := mem.NewArena(params.ArenaBytes, os.Getpagesize(), mem.WithHeapBacking())
	if err != nil {
		return nil, err
	}
	defer arena.Close()
	rand.New(rand.NewSource(42)).Read(arena.Bytes())

	for _, size := range params.RegionSizes {
		// Per-byte kernel rows: fold at an unaligned phase, whole-region
		// compute, and the full ApplyUpdate maintenance path for a
		// boundary-straddling update.
		oldData := make([]byte, size)
		newData := make([]byte, size)
		rng := rand.New(rand.NewSource(int64(size)))
		rng.Read(oldData)
		rng.Read(newData)
		var cw region.Codeword
		mbps, err := measureMBPS(size, params.MinTime, func() error {
			cw = region.Fold(cw, oldData, 3)
			return nil
		})
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, KernelRow{Scheme: "kernel", RegionBytes: size, Op: "fold", MBPerSec: mbps})

		mbps, err = measureMBPS(size, params.MinTime, func() error {
			cw = region.Compute(oldData)
			return nil
		})
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, KernelRow{Scheme: "kernel", RegionBytes: size, Op: "compute", MBPerSec: mbps})

		tab, err := region.NewTable(params.ArenaBytes, size)
		if err != nil {
			return nil, err
		}
		addr := mem.Addr(size/2 + 3) // unaligned, straddles a region boundary
		mbps, err = measureMBPS(size, params.MinTime, func() error {
			return tab.ApplyUpdate(addr, oldData, newData)
		})
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, KernelRow{Scheme: "kernel", RegionBytes: size, Op: "apply", MBPerSec: mbps})

		// The same maintenance path with the ECC tier on: the fused kernel
		// derives the locator-plane deltas from the per-word old^new delta
		// it already computes, so apply-ecc vs apply is the whole marginal
		// cost of correction over detection.
		etab, err := region.NewTable(params.ArenaBytes, size)
		if err != nil {
			return nil, err
		}
		etab.EnableECC()
		mbps, err = measureMBPS(size, params.MinTime, func() error {
			return etab.ApplyUpdate(addr, oldData, newData)
		})
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, KernelRow{Scheme: "kernel", RegionBytes: size, Op: "apply-ecc", MBPerSec: mbps})

		// Scan rows: each scheme kind at each pool width, audits and
		// recomputes over the whole arena under the scheme's own latches.
		for _, kind := range kernelScanSchemes {
			for _, workers := range params.RecomputeWorkers {
				s, err := protect.New(arena, protect.Config{
					Kind: kind, RegionSize: size, Pool: region.NewPool(workers),
				})
				if err != nil {
					return nil, err
				}
				mbps, err := measureMBPS(params.ArenaBytes, params.MinTime, s.Recompute)
				if err != nil {
					return nil, err
				}
				rep.Rows = append(rep.Rows, KernelRow{
					Scheme: kind.String(), RegionBytes: size, Op: "recompute",
					Workers: workers, MBPerSec: mbps,
				})
			}
			for _, workers := range params.AuditWorkers {
				s, err := protect.New(arena, protect.Config{
					Kind: kind, RegionSize: size, Pool: region.NewPool(workers),
				})
				if err != nil {
					return nil, err
				}
				if err := s.Recompute(); err != nil {
					return nil, err
				}
				mbps, err := measureMBPS(params.ArenaBytes, params.MinTime, func() error {
					if bad := s.Audit(); len(bad) != 0 {
						return fmt.Errorf("benchtab: clean image audited dirty: %v", bad[0])
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
				rep.Rows = append(rep.Rows, KernelRow{
					Scheme: kind.String(), RegionBytes: size, Op: "audit",
					Workers: workers, MBPerSec: mbps,
				})
			}
		}
	}
	return rep, nil
}

// WriteJSON writes the report to path as indented JSON (the BENCH_pr3.json
// format; see EXPERIMENTS.md).
func (rep *KernelReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// serialMBPS finds the workers=1 row matching (scheme, size, op).
func (rep *KernelReport) serialMBPS(scheme string, size int, op string) float64 {
	for _, r := range rep.Rows {
		if r.Scheme == scheme && r.RegionBytes == size && r.Op == op && r.Workers == 1 {
			return r.MBPerSec
		}
	}
	return 0
}

// FormatKernels renders the report as an aligned table; parallel scan rows
// carry their speedup over the same scheme's serial (workers=1) row.
func FormatKernels(rep *KernelReport) string {
	var out [][]string
	for _, r := range rep.Rows {
		workers := "-"
		speedup := ""
		if r.Workers > 0 {
			workers = fmt.Sprintf("%d", r.Workers)
			if r.Workers > 1 {
				if base := rep.serialMBPS(r.Scheme, r.RegionBytes, r.Op); base > 0 {
					speedup = fmt.Sprintf("%.2fx vs serial", r.MBPerSec/base)
				}
			}
		}
		out = append(out, []string{
			r.Scheme, fmt.Sprintf("%d", r.RegionBytes), r.Op, workers,
			fmt.Sprintf("%.1f", r.MBPerSec), speedup,
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Codeword kernel and scan throughput (GOMAXPROCS=%d, %d MiB image)\n\n",
		rep.GOMAXPROCS, rep.ArenaBytes>>20)
	b.WriteString(Format([]string{"Scheme", "region B", "op", "workers", "MiB/s", "speedup"}, out))
	return b.String()
}

// --- PR 10 ECC overhead report ----------------------------------------------

// ECCRow compares codeword maintenance with and without the fused
// locator-plane folds at one region size.
type ECCRow struct {
	RegionBytes  int     `json:"region_bytes"`
	NumPlanes    int     `json:"num_planes"`
	ApplyMBPS    float64 `json:"apply_mb_per_s"`
	ApplyECCMBPS float64 `json:"apply_ecc_mb_per_s"`
	// OverheadPct is the relative slowdown of apply-ecc vs apply:
	// (apply/apply_ecc - 1) * 100.
	OverheadPct float64 `json:"overhead_pct"`
}

// ECCReport is the correction-tier overhead summary, serialized to
// BENCH_pr10.json (see EXPERIMENTS.md).
type ECCReport struct {
	GOMAXPROCS int      `json:"gomaxprocs"`
	Rows       []ECCRow `json:"rows"`
}

// ECCOverhead extracts the apply vs apply-ecc comparison from a kernel
// report.
func ECCOverhead(rep *KernelReport) *ECCReport {
	out := &ECCReport{GOMAXPROCS: rep.GOMAXPROCS}
	bySize := map[int]*ECCRow{}
	for _, r := range rep.Rows {
		if r.Scheme != "kernel" || (r.Op != "apply" && r.Op != "apply-ecc") {
			continue
		}
		row := bySize[r.RegionBytes]
		if row == nil {
			row = &ECCRow{RegionBytes: r.RegionBytes, NumPlanes: region.NumPlanesFor(r.RegionBytes)}
			bySize[r.RegionBytes] = row
			out.Rows = append(out.Rows, ECCRow{})
		}
		if r.Op == "apply" {
			row.ApplyMBPS = r.MBPerSec
		} else {
			row.ApplyECCMBPS = r.MBPerSec
		}
	}
	out.Rows = out.Rows[:0]
	for _, size := range sortedKeys(bySize) {
		row := bySize[size]
		if row.ApplyECCMBPS > 0 {
			row.OverheadPct = (row.ApplyMBPS/row.ApplyECCMBPS - 1) * 100
		}
		out.Rows = append(out.Rows, *row)
	}
	return out
}

// sortedKeys returns m's keys in ascending order.
func sortedKeys(m map[int]*ECCRow) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// WriteJSON writes the ECC overhead report to path as indented JSON.
func (rep *ECCReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatECC renders the ECC overhead report as an aligned table.
func FormatECC(rep *ECCReport) string {
	var out [][]string
	for _, r := range rep.Rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.RegionBytes),
			fmt.Sprintf("%d", r.NumPlanes),
			fmt.Sprintf("%.1f", r.ApplyMBPS),
			fmt.Sprintf("%.1f", r.ApplyECCMBPS),
			fmt.Sprintf("%.1f%%", r.OverheadPct),
		})
	}
	var b strings.Builder
	b.WriteString("ECC tier overhead: codeword maintenance with fused locator-plane folds\n\n")
	b.WriteString(Format([]string{"region B", "planes", "apply MiB/s", "apply+ecc MiB/s", "overhead"}, out))
	return b.String()
}
