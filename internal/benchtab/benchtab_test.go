package benchtab

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/tpcb"
)

func TestFormatAligns(t *testing.T) {
	out := Format([]string{"a", "long-header"}, [][]string{{"xxxxx", "1"}, {"y", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines: %q", lines)
	}
	if len(lines[0]) != len(lines[1]) {
		t.Fatal("separator misaligned")
	}
	if !strings.Contains(lines[2], "xxxxx") {
		t.Fatal("row content missing")
	}
}

func TestMeasureMprotectPairsSim(t *testing.T) {
	sim := mem.NewSimProtector(64, 0)
	pps, err := MeasureMprotectPairs(sim, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pps <= 0 {
		t.Fatalf("pairs/sec = %f", pps)
	}
	if sim.Calls() != 64*3*2 {
		t.Fatalf("calls = %d", sim.Calls())
	}
}

func TestSimulatedPlatformCalibration(t *testing.T) {
	// A simulated platform's measured throughput should land near the
	// paper value it was calibrated to. The charging loop can only be
	// slowed (never sped up) by preemption on a loaded host, so the upper
	// bound is firm while the lower bound is retried.
	paperPairs := 15_600.0
	perPair := time.Duration(float64(time.Second) / paperPairs)
	var pps float64
	for attempt := 0; attempt < 4; attempt++ {
		sim := mem.NewSimProtector(100, perPair/2)
		var err error
		pps, err = MeasureMprotectPairs(sim, 100, 2)
		if err != nil {
			t.Fatal(err)
		}
		if pps > paperPairs*1.2 {
			t.Fatalf("calibrated throughput %.0f exceeds target 15600", pps)
		}
		if pps >= paperPairs/2 {
			return
		}
		t.Logf("attempt %d: %.0f pairs/s (host contention), retrying", attempt+1, pps)
	}
	t.Skipf("host too contended to calibrate (last: %.0f pairs/s)", pps)
}

func TestRunTable1SmokeAndOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// The paper's qualitative result: the HP is slowest and the
	// UltraSPARC fastest among the four simulated platforms, despite the
	// HP's higher integer performance. Scheduler preemption on a shared
	// single-CPU host can distort a single small sample, so allow a
	// couple of attempts with a growing sample.
	var last string
	for attempt := 0; attempt < 3; attempt++ {
		rows, err := RunTable1(500*(attempt+1), 10)
		if err != nil {
			t.Fatal(err)
		}
		if FormatTable1(rows) == "" {
			t.Fatal("empty table")
		}
		byName := map[string]float64{}
		for _, r := range rows {
			byName[r.Platform] = r.PairsPerSec
		}
		hp := byName["HP 9000 C110 (simulated)"]
		ss := byName["SPARCstation 20 (simulated)"]
		us := byName["UltraSPARC 2 (simulated)"]
		sgi := byName["SGI Challenge DM (simulated)"]
		if hp < sgi && sgi < ss && ss < us {
			return
		}
		last = fmt.Sprintf("hp=%.0f sgi=%.0f ss=%.0f us=%.0f", hp, sgi, ss, us)
		t.Logf("attempt %d: ordering distorted (%s), retrying", attempt+1, last)
	}
	t.Fatalf("platform ordering broken after retries: %s", last)
}

func TestTable2SchemesMatchPaperRows(t *testing.T) {
	specs := Table2Schemes(false)
	if len(specs) != 8 {
		t.Fatalf("specs = %d, want 8", len(specs))
	}
	if specs[0].Label != "Baseline" || specs[7].Label != "Data CW w/Precheck, 8K byte" {
		t.Fatalf("row order wrong: %q ... %q", specs[0].Label, specs[7].Label)
	}
	// Paper slowdowns are strictly increasing down the table.
	for i := 1; i < len(specs); i++ {
		if specs[i].PaperSlowdown <= specs[i-1].PaperSlowdown {
			t.Fatalf("paper slowdown not increasing at row %d", i)
		}
	}
}

func TestRunTable2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := RunTable2(Table2Params{
		Scale: tpcb.SmallScale,
		Ops:   500,
		Runs:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].PctSlower != 0 {
		t.Fatalf("baseline slowdown = %f", rows[0].PctSlower)
	}
	for _, r := range rows {
		if r.OpsPerSec <= 0 {
			t.Fatalf("%s: ops/sec = %f", r.Label, r.OpsPerSec)
		}
	}
	// The hardware row must report pages touched per operation (§5.3).
	var hwPages float64
	for _, r := range rows {
		if r.Label == "Memory Protection" {
			hwPages = r.PagesPerOp
		}
	}
	if hwPages < 3 {
		t.Fatalf("pages/op = %.1f, expected several pages per operation", hwPages)
	}
	if FormatTable2(rows) == "" {
		t.Fatal("empty table")
	}
}
