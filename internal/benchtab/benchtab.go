// Package benchtab drives the paper's two experiments and formats their
// results: Table 1 ("Performance of Protect/Unprotect", §5.1) and Table 2
// ("Cost of Corruption Protection", §5.3). The same runners back the
// cmd/protbench and cmd/tpcbbench tools and the testing.B benchmarks in
// bench_test.go.
package benchtab

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/protect"
	"repro/internal/tpcb"
)

// Format renders an aligned text table.
func Format(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// --- Table 1: performance of protect/unprotect ------------------------------

// Table1Row is one platform's protect/unprotect throughput.
type Table1Row struct {
	Platform    string
	PairsPerSec float64
	Simulated   bool
	// SPECint92 is the paper's integer performance figure where known,
	// showing that mprotect cost does not track integer speed.
	SPECint92 float64
	// PairNS is the per-pair latency distribution from a separate
	// instrumented sweep (untimed rows leave it empty).
	PairNS obs.HistogramSnapshot
}

// PaperTable1 is the paper's measured Table 1, which the simulated
// platforms are calibrated to reproduce.
var PaperTable1 = []Table1Row{
	{Platform: "SPARCstation 20", PairsPerSec: 15_600, SPECint92: 88.9},
	{Platform: "UltraSPARC 2", PairsPerSec: 43_000},
	{Platform: "HP 9000 C110", PairsPerSec: 3_300, SPECint92: 170.2},
	{Platform: "SGI Challenge DM", PairsPerSec: 8_200},
}

// MeasureMprotectPairs protects and then unprotects `pages` pages, `reps`
// times, over prot, and reports pairs per second. This is the paper's
// §5.1 microbenchmark (2000 pages, 50 repetitions).
func MeasureMprotectPairs(prot interface {
	Protect(mem.PageID) error
	Unprotect(mem.PageID) error
}, pages, reps int) (float64, error) {
	start := time.Now()
	for r := 0; r < reps; r++ {
		for p := 0; p < pages; p++ {
			if err := prot.Protect(mem.PageID(p)); err != nil {
				return 0, err
			}
			if err := prot.Unprotect(mem.PageID(p)); err != nil {
				return 0, err
			}
		}
	}
	elapsed := time.Since(start)
	return float64(pages*reps) / elapsed.Seconds(), nil
}

// MeasurePairHistogram runs the protect/unprotect loop with per-pair
// timing into an obs histogram and returns its snapshot (p50/p99 pair
// latency). It is a separate sweep from MeasureMprotectPairs so the
// clock reads cannot skew the Table 1 throughput numbers.
func MeasurePairHistogram(prot interface {
	Protect(mem.PageID) error
	Unprotect(mem.PageID) error
}, pages, reps int) (obs.HistogramSnapshot, error) {
	h := obs.NewRegistry().Histogram(obs.NameBenchPairNS)
	for r := 0; r < reps; r++ {
		for p := 0; p < pages; p++ {
			start := time.Now()
			if err := prot.Protect(mem.PageID(p)); err != nil {
				return obs.HistogramSnapshot{}, err
			}
			if err := prot.Unprotect(mem.PageID(p)); err != nil {
				return obs.HistogramSnapshot{}, err
			}
			h.Since(start)
		}
	}
	return h.Snapshot(), nil
}

// RunTable1 regenerates Table 1: the host's real mprotect throughput plus
// the four paper platforms modeled with calibrated per-call costs. pages
// and reps default to the paper's 2000 and 50 when zero.
func RunTable1(pages, reps int) ([]Table1Row, error) {
	if pages == 0 {
		pages = 2000
	}
	if reps == 0 {
		reps = 50
	}
	var rows []Table1Row

	// Host row: real mprotect over an mmap-backed arena.
	arena, err := mem.NewArena(pages*os.Getpagesize(), os.Getpagesize())
	if err != nil {
		return nil, err
	}
	defer arena.Close()
	if arena.Mmapped() {
		if prot, err := mem.NewMprotectProtector(arena); err == nil {
			pps, err := MeasureMprotectPairs(prot, pages, reps)
			if err != nil {
				return nil, err
			}
			hist, err := MeasurePairHistogram(prot, pages, 1)
			if err != nil {
				return nil, err
			}
			if err := prot.UnprotectAll(); err != nil {
				return nil, err
			}
			rows = append(rows, Table1Row{Platform: "this host (real mprotect)", PairsPerSec: pps, PairNS: hist})
		}
	}

	// Simulated platforms: per-call cost calibrated to the paper's
	// pairs/second (one pair = two calls). Fewer repetitions suffice for
	// the slow simulated platforms; throughput is cost-determined.
	simReps := reps / 10
	if simReps < 1 {
		simReps = 1
	}
	for _, p := range PaperTable1 {
		perPair := time.Duration(float64(time.Second) / p.PairsPerSec)
		sim := mem.NewSimProtector(pages, perPair/2)
		pps, err := MeasureMprotectPairs(sim, pages/10, simReps)
		if err != nil {
			return nil, err
		}
		hist, err := MeasurePairHistogram(sim, pages/10, 1)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Platform: p.Platform + " (simulated)", PairsPerSec: pps,
			Simulated: true, SPECint92: p.SPECint92, PairNS: hist,
		})
	}
	return rows, nil
}

// FormatTable1 renders Table 1 rows alongside the paper's figures, with
// per-pair latency quantiles from the instrumented sweep.
func FormatTable1(rows []Table1Row) string {
	var out [][]string
	for _, r := range rows {
		spec := ""
		if r.SPECint92 > 0 {
			spec = fmt.Sprintf("%.1f", r.SPECint92)
		}
		paper := ""
		for _, p := range PaperTable1 {
			if strings.HasPrefix(r.Platform, p.Platform) {
				paper = fmt.Sprintf("%.0f", p.PairsPerSec)
			}
		}
		p50, p99 := "-", "-"
		if r.PairNS.Count > 0 {
			p50 = fmt.Sprintf("%.1f", float64(r.PairNS.Quantile(0.5))/1e3)
			p99 = fmt.Sprintf("%.1f", float64(r.PairNS.Quantile(0.99))/1e3)
		}
		out = append(out, []string{r.Platform, fmt.Sprintf("%.0f", r.PairsPerSec), paper, spec, p50, p99})
	}
	return Format([]string{"Platform", "pairs/second", "paper pairs/s", "SPECint92", "pair p50 us", "pair p99 us"}, out)
}

// --- Table 2: cost of corruption protection ---------------------------------

// SchemeSpec is one row of Table 2.
type SchemeSpec struct {
	// Label matches the paper's row name.
	Label string
	// Direct and Indirect describe the protection level, as in the paper
	// ("None", "Correct", "Prevent", "Unneeded").
	Direct   string
	Indirect string
	// Protect is the scheme configuration.
	Protect protect.Config
	// PaperOps and PaperSlowdown are the paper's measurements for
	// comparison output.
	PaperOps      float64
	PaperSlowdown float64
}

// Table2Schemes returns the paper's eight configurations in Table 2
// order. useRealMprotect selects the real system call for the Memory
// Protection row (otherwise a simulated protector with zero added cost).
func Table2Schemes(useRealMprotect bool) []SchemeSpec {
	return []SchemeSpec{
		{Label: "Baseline", Direct: "None", Indirect: "None",
			Protect: protect.Config{Kind: protect.KindBaseline}, PaperOps: 417, PaperSlowdown: 0},
		{Label: "Data CW", Direct: "Correct", Indirect: "None",
			Protect: protect.Config{Kind: protect.KindDataCW, RegionSize: 512}, PaperOps: 380, PaperSlowdown: 8.5},
		{Label: "Data CW w/Precheck, 64 byte", Direct: "Correct", Indirect: "Prevent",
			Protect: protect.Config{Kind: protect.KindPrecheck, RegionSize: 64}, PaperOps: 366, PaperSlowdown: 12.2},
		{Label: "Data CW w/ReadLog", Direct: "Correct", Indirect: "Correct",
			Protect: protect.Config{Kind: protect.KindReadLog, RegionSize: 512}, PaperOps: 345, PaperSlowdown: 17.1},
		{Label: "Data CW w/CW ReadLog", Direct: "Correct", Indirect: "Correct",
			Protect: protect.Config{Kind: protect.KindCWReadLog, RegionSize: 64}, PaperOps: 323, PaperSlowdown: 22.4},
		{Label: "Data CW w/Precheck, 512 byte", Direct: "Correct", Indirect: "Prevent",
			Protect: protect.Config{Kind: protect.KindPrecheck, RegionSize: 512}, PaperOps: 311, PaperSlowdown: 25.4},
		{Label: "Memory Protection", Direct: "Prevent", Indirect: "Unneeded",
			Protect: protect.Config{Kind: protect.KindHW, ForceSimProtect: !useRealMprotect}, PaperOps: 257, PaperSlowdown: 38.2},
		{Label: "Data CW w/Precheck, 8K byte", Direct: "Correct", Indirect: "Prevent",
			Protect: protect.Config{Kind: protect.KindPrecheck, RegionSize: 8192}, PaperOps: 115, PaperSlowdown: 72.4},
	}
}

// Table2Row is one measured row.
type Table2Row struct {
	SchemeSpec
	// OpsPerSec is the median across runs (robust against the log-force
	// jitter of shared machines; the per-run samples are also kept).
	OpsPerSec  float64
	Samples    []float64
	PctSlower  float64
	PagesPerOp float64 // protect-call pages touched per op (§5.3), HW only
	// Obs is the metrics snapshot from the last run of this scheme
	// (counters and histograms: fsync latency, group-commit batch size,
	// audit durations, precheck traffic). See FormatObsSummary.
	Obs obs.Snapshot
}

// Table2Params configures a Table 2 run.
type Table2Params struct {
	Scale tpcb.Scale
	// Ops per run (paper: 50,000) and runs to average (paper: 6).
	Ops  int
	Runs int
	// WorkDir for the per-run database directories (a temp dir when "").
	WorkDir string
	// UseRealMprotect selects real mprotect for the HW row.
	UseRealMprotect bool
	// Progress, when non-nil, receives per-run status lines.
	Progress func(string)
}

func (p Table2Params) withDefaults() Table2Params {
	if p.Ops == 0 {
		p.Ops = 50_000
	}
	if p.Runs == 0 {
		p.Runs = 6
	}
	if p.Scale.Accounts == 0 {
		p.Scale = tpcb.PaperScale
	}
	return p
}

// RunTable2 measures the TPC-B throughput of every scheme and derives the
// slowdown relative to the Baseline row, as in §5.3. Each (scheme, run)
// pair uses a fresh database; setup (table load and initial checkpoint)
// is excluded from the timed region. Runs are interleaved round-robin
// across schemes so slow periods of a shared machine hit all schemes
// alike, and the median across runs is reported.
func RunTable2(params Table2Params) ([]Table2Row, error) {
	params = params.withDefaults()
	specs := Table2Schemes(params.UseRealMprotect)
	rows := make([]Table2Row, len(specs))
	for i, spec := range specs {
		rows[i] = Table2Row{SchemeSpec: spec}
	}
	for run := 0; run < params.Runs; run++ {
		for i, spec := range specs {
			ops, pages, snap, err := runOne(params, spec, run)
			if err != nil {
				return nil, fmt.Errorf("benchtab: %s run %d: %w", spec.Label, run, err)
			}
			rows[i].Samples = append(rows[i].Samples, ops)
			rows[i].Obs = snap
			if pages > 0 {
				rows[i].PagesPerOp = pages
			}
			if params.Progress != nil {
				params.Progress(fmt.Sprintf("%-30s run %d/%d: %.0f ops/sec", spec.Label, run+1, params.Runs, ops))
			}
		}
	}
	for i := range rows {
		rows[i].OpsPerSec = median(rows[i].Samples)
	}
	base := rows[0].OpsPerSec
	for i := range rows {
		rows[i].PctSlower = 100 * (1 - rows[i].OpsPerSec/base)
	}
	return rows, nil
}

// median of a non-empty sample set.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func runOne(params Table2Params, spec SchemeSpec, run int) (opsPerSec, pagesPerOp float64, snap obs.Snapshot, err error) {
	dir, err := os.MkdirTemp(params.WorkDir, "tpcb-*")
	if err != nil {
		return 0, 0, snap, err
	}
	defer os.RemoveAll(dir)
	cfg := core.Config{
		Dir:       dir,
		ArenaSize: params.Scale.ArenaSize(),
		Protect:   spec.Protect,
	}
	// The 8K-region row needs pages at least as large as its regions
	// (core.Config.Validate requires whole regions per page).
	if rs := spec.Protect.Defaulted().RegionSize; rs > 4096 {
		cfg.PageSize = rs
	}
	db, err := core.Open(cfg)
	if err != nil {
		return 0, 0, snap, err
	}
	defer db.Close()
	w, err := tpcb.Setup(db, params.Scale, int64(run)+1)
	if err != nil {
		return 0, 0, snap, err
	}
	before := db.Metrics()
	start := time.Now()
	if err := w.Run(params.Ops); err != nil {
		return 0, 0, snap, err
	}
	elapsed := time.Since(start)
	snap = db.Metrics()
	calls := snap.Counter(obs.NameProtectCalls) - before.Counter(obs.NameProtectCalls)
	if calls > 0 {
		// Each touched page costs one unprotect + one protect call.
		pagesPerOp = float64(calls) / 2 / float64(params.Ops)
	}
	return float64(params.Ops) / elapsed.Seconds(), pagesPerOp, snap, nil
}

// SpaceOverhead reports the codeword-table space cost of a scheme as a
// fraction of the database size: one 8-byte codeword per protection
// region (the time-space tradeoff of §5.3 — smaller regions precheck
// faster but cost more space).
func (s SchemeSpec) SpaceOverhead() float64 {
	rs := s.Protect.Defaulted().RegionSize
	if s.Protect.Kind == protect.KindBaseline || s.Protect.Kind == protect.KindHW {
		return 0
	}
	return 8 / float64(rs)
}

// FormatObsSummary renders the per-scheme engine internals captured in
// each row's obs snapshot: log-fsync latency (p50/p99), group-commit batch
// size, audit-pass durations, and precheck/fold traffic. These are the
// mechanisms behind Table 2's throughput differences — e.g. the 8K
// precheck row's slowdown shows up directly as precheck region counts.
func FormatObsSummary(rows []Table2Row) string {
	ms := func(h obs.HistogramSnapshot, q float64) string {
		if h.Count == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f", float64(h.Quantile(q))/1e6)
	}
	count := func(s obs.Snapshot, name string) string {
		v := s.Counter(name)
		if v == 0 {
			return "-"
		}
		return fmt.Sprintf("%d", v)
	}
	var out [][]string
	for _, r := range rows {
		s := r.Obs
		fsync := s.Histogram(obs.NameWALFsyncNS)
		gc := s.Histogram(obs.NameWALGroupCommit)
		audit := s.Histogram(obs.NameAuditPassNS)
		gcMean := "-"
		if gc.Count > 0 {
			gcMean = fmt.Sprintf("%.1f", gc.Mean())
		}
		auditMean := "-"
		if audit.Count > 0 {
			auditMean = fmt.Sprintf("%.2f", audit.Mean()/1e6)
		}
		out = append(out, []string{
			r.Label,
			fmt.Sprintf("%d", fsync.Count),
			ms(fsync, 0.5), ms(fsync, 0.99),
			gcMean,
			fmt.Sprintf("%d", audit.Count), auditMean,
			count(s, obs.NamePrecheckRegions),
			count(s, obs.NamePrecheckFailures),
			count(s, obs.NameRegionFolds),
			count(s, obs.NameCWCaptures),
		})
	}
	return Format([]string{
		"Algorithm", "fsyncs", "fsync p50 ms", "fsync p99 ms",
		"grp-commit recs", "audits", "audit ms", "prechecks",
		"precheck fails", "cw folds", "cw captures",
	}, out)
}

// FormatTable2 renders measured rows next to the paper's Table 2.
func FormatTable2(rows []Table2Row) string {
	var out [][]string
	for _, r := range rows {
		pages := ""
		if r.PagesPerOp > 0 {
			pages = fmt.Sprintf("%.1f", r.PagesPerOp)
		}
		space := ""
		if so := r.SpaceOverhead(); so > 0 {
			space = fmt.Sprintf("%.2f%%", so*100)
		}
		out = append(out, []string{
			r.Label, r.Direct, r.Indirect,
			fmt.Sprintf("%.0f", r.OpsPerSec),
			fmt.Sprintf("%.1f%%", r.PctSlower),
			fmt.Sprintf("%.0f", r.PaperOps),
			fmt.Sprintf("%.1f%%", r.PaperSlowdown),
			pages, space,
		})
	}
	return Format([]string{
		"Algorithm", "Direct", "Indirect", "Ops/Sec", "% Slower",
		"paper Ops/Sec", "paper % Slower", "pages/op", "cw space",
	}, out)
}
