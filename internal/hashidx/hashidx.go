// Package hashidx implements a persistent open-addressing hash index over
// the protected database image. It is the kind of "new storage method"
// the paper's extensibility motivation contemplates (§1): a third-party
// access method compiled into the engine's address space, whose data
// lives in protection regions like any table and whose updates go through
// the prescribed interface — so codeword maintenance, read prechecking,
// read logging and delete-transaction recovery all apply to index data
// exactly as to heap data.
//
// Layout: a power-of-two array of 24-byte entries (state, key, RID),
// linear probing, tombstones on delete so probe chains stay intact. Every
// mutating operation is a level-1 multi-level-recovery operation with a
// logical undo, using an object-key space disjoint from the heap's.
package hashidx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/lockmgr"
	"repro/internal/mem"
	"repro/internal/wal"
)

// Entry states.
const (
	stateEmpty     = 0
	stateOccupied  = 1
	stateTombstone = 2
)

// entrySize is the on-image size of one slot: 8-byte state word (keeping
// entries 8-aligned for codeword lanes), 8-byte key, 8-byte RID.
const entrySize = 24

// Logical undo opcodes (registered with core; must not collide with
// package heap's).
const (
	// UndoOpIdxDelete undoes an index insert by deleting the entry.
	UndoOpIdxDelete uint8 = 10
	// UndoOpIdxInsert undoes an index delete by re-occupying the slot.
	UndoOpIdxInsert uint8 = 11
)

const (
	catalogMetaKey = "hashidx.catalog"
	// keySpaceBit distinguishes index object keys from heap RIDs.
	keySpaceBit = uint64(1) << 63
)

// catalogKey attaches the live catalog cache to its DB (typed, see the
// heap catalog's key).
var catalogKey = core.NewAttachKey[*Catalog]("hashidx.catalog.live")

// Common errors.
var (
	ErrIndexExists = errors.New("hashidx: index already exists")
	ErrNoSuchIndex = errors.New("hashidx: no such index")
	ErrIndexFull   = errors.New("hashidx: index is full")
	ErrNotFound    = errors.New("hashidx: key not found")
	ErrDuplicate   = errors.New("hashidx: key already present")
)

// Index is a persistent hash index mapping uint64 keys to heap RIDs.
type Index struct {
	cat *Catalog

	ID      uint32
	Name    string
	Buckets int // power of two

	first mem.PageID
	pages int

	mu    sync.Mutex // serializes probe-and-claim across transactions
	count int        // occupied entries (rebuilt on open)
}

// Catalog is the index directory for one database, persisted in database
// metadata like the heap catalog.
type Catalog struct {
	db *core.DB

	mu     sync.Mutex
	byName map[string]*Index
	byID   map[uint32]*Index
	nextID uint32
}

// Open loads (or initializes) the index catalog for db.
func Open(db *core.DB) (*Catalog, error) {
	return catalogKey.GetOrInit(db, func() (*Catalog, error) {
		cat := &Catalog{
			db:     db,
			byName: make(map[string]*Index),
			byID:   make(map[uint32]*Index),
			nextID: 1,
		}
		if blob, ok := db.Meta(catalogMetaKey); ok {
			if err := cat.decode(blob); err != nil {
				return nil, err
			}
			for _, idx := range cat.byID {
				idx.count = idx.scanCount()
			}
		}
		return cat, nil
	})
}

// CreateIndex creates an index with at least minBuckets slots (rounded up
// to a power of two). Like table creation, the catalog change persists
// with the next checkpoint.
func (c *Catalog) CreateIndex(name string, minBuckets int) (*Index, error) {
	if minBuckets < 8 {
		minBuckets = 8
	}
	buckets := 1
	for buckets < minBuckets {
		buckets <<= 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byName[name]; dup {
		return nil, fmt.Errorf("%w: %s", ErrIndexExists, name)
	}
	pageSize := c.db.PageSize()
	pages := (buckets*entrySize + pageSize - 1) / pageSize
	first, err := c.db.AllocPages(pages)
	if err != nil {
		return nil, err
	}
	idx := &Index{
		cat:     c,
		ID:      c.nextID,
		Name:    name,
		Buckets: buckets,
		first:   first,
		pages:   pages,
	}
	c.nextID++
	c.byName[name] = idx
	c.byID[idx.ID] = idx
	c.persistLocked()
	return idx, nil
}

// IndexNamed looks an index up by name.
func (c *Catalog) IndexNamed(name string) (*Index, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchIndex, name)
	}
	return idx, nil
}

// indexByID looks an index up by ID (undo handlers).
func (c *Catalog) indexByID(id uint32) (*Index, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx, ok := c.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNoSuchIndex, id)
	}
	return idx, nil
}

func (c *Catalog) persistLocked() {
	var b []byte
	b = binary.AppendUvarint(b, uint64(c.nextID))
	b = binary.AppendUvarint(b, uint64(len(c.byID)))
	for id := uint32(1); id < c.nextID; id++ {
		idx, ok := c.byID[id]
		if !ok {
			continue
		}
		b = binary.AppendUvarint(b, uint64(idx.ID))
		b = binary.AppendUvarint(b, uint64(len(idx.Name)))
		b = append(b, idx.Name...)
		b = binary.AppendUvarint(b, uint64(idx.Buckets))
		b = binary.AppendUvarint(b, uint64(idx.first))
		b = binary.AppendUvarint(b, uint64(idx.pages))
	}
	c.db.SetMeta(catalogMetaKey, b)
}

func (c *Catalog) decode(b []byte) error {
	pos := 0
	read := func() uint64 {
		if pos < 0 || pos >= len(b) {
			pos = -1
			return 0
		}
		v, n := binary.Uvarint(b[pos:])
		if n <= 0 {
			pos = -1
			return 0
		}
		pos += n
		return v
	}
	next := read()
	count := read()
	for i := uint64(0); i < count && pos >= 0; i++ {
		idx := &Index{cat: c}
		idx.ID = uint32(read())
		nameLen := int(read())
		if pos < 0 || pos+nameLen > len(b) {
			return errors.New("hashidx: corrupt catalog")
		}
		idx.Name = string(b[pos : pos+nameLen])
		pos += nameLen
		idx.Buckets = int(read())
		idx.first = mem.PageID(read())
		idx.pages = int(read())
		if pos < 0 {
			return errors.New("hashidx: corrupt catalog")
		}
		c.byName[idx.Name] = idx
		c.byID[idx.ID] = idx
	}
	if pos < 0 {
		return errors.New("hashidx: corrupt catalog")
	}
	c.nextID = uint32(next)
	return nil
}

// --- addressing --------------------------------------------------------------

// slotAddr reports the arena address of slot's entry.
func (ix *Index) slotAddr(slot int) mem.Addr {
	return mem.Addr(uint64(ix.first)*uint64(ix.cat.db.PageSize()) + uint64(slot)*entrySize)
}

// objectKey is the lock/log key for a slot, disjoint from heap keys.
func (ix *Index) objectKey(slot int) wal.ObjectKey {
	return wal.ObjectKey(keySpaceBit | uint64(ix.ID)<<32 | uint64(uint32(slot)))
}

// hash mixes the key (fibonacci hashing).
func (ix *Index) hash(key uint64) int {
	return int((key * 0x9E3779B97F4A7C15) >> 32 & uint64(ix.Buckets-1))
}

// entryAt decodes the slot directly from the image (internal bookkeeping
// read, like heap allocation bitmaps).
func (ix *Index) entryAt(slot int) (state uint64, key uint64, rid heap.RID) {
	raw := ix.cat.db.Internals().Arena.Slice(ix.slotAddr(slot), entrySize)
	state = binary.LittleEndian.Uint64(raw)
	key = binary.LittleEndian.Uint64(raw[8:])
	ridKey := binary.LittleEndian.Uint64(raw[16:])
	return state, key, heap.RIDFromKey(wal.ObjectKey(ridKey))
}

func encodeEntry(state, key uint64, rid heap.RID) []byte {
	raw := make([]byte, entrySize)
	binary.LittleEndian.PutUint64(raw, state)
	binary.LittleEndian.PutUint64(raw[8:], key)
	binary.LittleEndian.PutUint64(raw[16:], uint64(rid.Key()))
	return raw
}

// Count reports the occupied entries.
func (ix *Index) Count() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.count
}

func (ix *Index) scanCount() int {
	n := 0
	for s := 0; s < ix.Buckets; s++ {
		if st, _, _ := ix.entryAt(s); st == stateOccupied {
			n++
		}
	}
	return n
}

// --- operations ---------------------------------------------------------------

// Insert maps key to rid. Duplicate keys are rejected. The insert is a
// level-1 operation whose logical undo deletes the entry again.
func (ix *Index) Insert(txn *core.Txn, key uint64, rid heap.RID) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.count >= ix.Buckets-1 {
		return fmt.Errorf("%w: %s", ErrIndexFull, ix.Name)
	}
	slot, found, err := ix.probeLocked(key)
	if err != nil {
		return err
	}
	if found {
		return fmt.Errorf("%w: %d", ErrDuplicate, key)
	}
	ok := ix.objectKey(slot)
	if err := txn.Lock(ok, lockmgr.Exclusive); err != nil {
		return err
	}
	if err := txn.BeginOp(OpLevel, ok); err != nil {
		return err
	}
	if err := ix.writeEntry(txn, slot, stateOccupied, key, rid); err != nil {
		txn.AbortOp()
		return err
	}
	if err := txn.CommitOp(OpLevel, ok, wal.LogicalUndo{
		Op: UndoOpIdxDelete, Key: ok,
	}); err != nil {
		return err
	}
	ix.count++
	return nil
}

// Delete removes key. The logical undo re-inserts the old entry at the
// same slot.
func (ix *Index) Delete(txn *core.Txn, key uint64) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	slot, found, err := ix.probeLocked(key)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("%w: %d", ErrNotFound, key)
	}
	_, oldKey, oldRID := ix.entryAt(slot)
	ok := ix.objectKey(slot)
	if err := txn.Lock(ok, lockmgr.Exclusive); err != nil {
		return err
	}
	if err := txn.BeginOp(OpLevel, ok); err != nil {
		return err
	}
	if err := ix.writeEntry(txn, slot, stateTombstone, oldKey, oldRID); err != nil {
		txn.AbortOp()
		return err
	}
	args := make([]byte, 16)
	binary.LittleEndian.PutUint64(args, oldKey)
	binary.LittleEndian.PutUint64(args[8:], uint64(oldRID.Key()))
	if err := txn.CommitOp(OpLevel, ok, wal.LogicalUndo{
		Op: UndoOpIdxInsert, Key: ok, Args: args,
	}); err != nil {
		return err
	}
	ix.count--
	return nil
}

// Lookup finds key, reading the probed entries through the prescribed
// read interface — so index probes are prechecked and read-logged like
// any data read, and a transaction that reads a corrupted index entry is
// traced by delete-transaction recovery.
func (ix *Index) Lookup(txn *core.Txn, key uint64) (heap.RID, error) {
	for i, slot := 0, ix.hash(key); i < ix.Buckets; i, slot = i+1, (slot+1)&(ix.Buckets-1) {
		if err := txn.Lock(ix.objectKey(slot), lockmgr.Shared); err != nil {
			return heap.RID{}, err
		}
		raw, err := txn.Read(ix.slotAddr(slot), entrySize)
		if err != nil {
			return heap.RID{}, err
		}
		state := binary.LittleEndian.Uint64(raw)
		entryKey := binary.LittleEndian.Uint64(raw[8:])
		switch state {
		case stateEmpty:
			return heap.RID{}, fmt.Errorf("%w: %d", ErrNotFound, key)
		case stateOccupied:
			if entryKey == key {
				return heap.RIDFromKey(wal.ObjectKey(binary.LittleEndian.Uint64(raw[16:]))), nil
			}
		}
	}
	return heap.RID{}, fmt.Errorf("%w: %d", ErrNotFound, key)
}

// OpLevel is the abstraction level of index operations.
const OpLevel uint8 = 1

// Indexes returns every index in the catalog, ordered by ID.
func (c *Catalog) Indexes() []*Index {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Index, 0, len(c.byID))
	for id := uint32(1); id < c.nextID; id++ {
		if idx, ok := c.byID[id]; ok {
			out = append(out, idx)
		}
	}
	return out
}

// Entry is an occupied index entry as seen by a structural scan.
type Entry struct {
	Slot int
	Key  uint64
	RID  heap.RID
}

// Entries scans the occupied entries directly from the image (structural
// inspection for the consistency checker; no locks, no read logging).
// Corrupt state words are reported as an error.
func (ix *Index) Entries() ([]Entry, error) {
	var out []Entry
	for s := 0; s < ix.Buckets; s++ {
		state, key, rid := ix.entryAt(s)
		switch state {
		case stateEmpty, stateTombstone:
		case stateOccupied:
			out = append(out, Entry{Slot: s, Key: key, RID: rid})
		default:
			return out, fmt.Errorf("hashidx: slot %d has corrupt state %d", s, state)
		}
	}
	return out, nil
}

// EntryAddr reports the arena address of the entry holding key, reading
// probe-path entries through txn (tools, tests and fault campaigns use
// this to target or inspect specific entries).
func (ix *Index) EntryAddr(txn *core.Txn, key uint64) (mem.Addr, error) {
	ix.mu.Lock()
	slot, found, err := ix.probeLocked(key)
	ix.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if !found {
		return 0, fmt.Errorf("%w: %d", ErrNotFound, key)
	}
	return ix.slotAddr(slot), nil
}

// probeLocked finds key's slot (found=true) or the first insertable slot
// on its probe path (found=false). Caller holds ix.mu.
func (ix *Index) probeLocked(key uint64) (slot int, found bool, err error) {
	firstFree := -1
	for i, s := 0, ix.hash(key); i < ix.Buckets; i, s = i+1, (s+1)&(ix.Buckets-1) {
		state, entryKey, _ := ix.entryAt(s)
		switch state {
		case stateEmpty:
			if firstFree >= 0 {
				return firstFree, false, nil
			}
			return s, false, nil
		case stateTombstone:
			if firstFree < 0 {
				firstFree = s
			}
		case stateOccupied:
			if entryKey == key {
				return s, true, nil
			}
		default:
			return 0, false, fmt.Errorf("hashidx: corrupt entry state %d at slot %d", state, s)
		}
	}
	if firstFree >= 0 {
		return firstFree, false, nil
	}
	return 0, false, fmt.Errorf("%w: %s", ErrIndexFull, ix.Name)
}

// writeEntry rewrites a slot through the prescribed interface.
func (ix *Index) writeEntry(txn *core.Txn, slot int, state, key uint64, rid heap.RID) error {
	u, err := txn.BeginUpdate(ix.slotAddr(slot), entrySize)
	if err != nil {
		return err
	}
	copy(u.Bytes(), encodeEntry(state, key, rid))
	return u.End()
}

// --- logical undo handlers ------------------------------------------------------

func init() {
	core.RegisterUndoOp(UndoOpIdxDelete, undoIdxDelete)
	core.RegisterUndoOp(UndoOpIdxInsert, undoIdxInsert)
}

func indexFor(txn *core.Txn, key wal.ObjectKey) (*Index, int, error) {
	id := uint32(uint64(key) >> 32 &^ (1 << 31))
	slot := int(uint32(uint64(key)))
	cat, err := Open(txn.DB())
	if err != nil {
		return nil, 0, err
	}
	idx, err := cat.indexByID(id)
	return idx, slot, err
}

// undoIdxDelete undoes an insert: the slot becomes a tombstone again (a
// tombstone rather than empty, since later inserts may already probe past
// it — but during rollback no later conflicting op exists, so empty would
// also be safe; tombstone is uniformly correct).
func undoIdxDelete(txn *core.Txn, u wal.LogicalUndo) error {
	ix, slot, err := indexFor(txn, u.Key)
	if err != nil {
		return err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if err := txn.BeginOp(OpLevel, u.Key); err != nil {
		return err
	}
	state, key, rid := ix.entryAt(slot)
	if state == stateOccupied {
		if err := ix.writeEntry(txn, slot, stateTombstone, key, rid); err != nil {
			return err
		}
		ix.count--
	}
	return txn.CommitCompensationOp(OpLevel, u.Key)
}

// undoIdxInsert undoes a delete: the slot is re-occupied with the old
// (key, rid) carried in Args.
func undoIdxInsert(txn *core.Txn, u wal.LogicalUndo) error {
	ix, slot, err := indexFor(txn, u.Key)
	if err != nil {
		return err
	}
	if len(u.Args) != 16 {
		return fmt.Errorf("hashidx: undo-insert args %d bytes, want 16", len(u.Args))
	}
	key := binary.LittleEndian.Uint64(u.Args)
	rid := heap.RIDFromKey(wal.ObjectKey(binary.LittleEndian.Uint64(u.Args[8:])))
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if err := txn.BeginOp(OpLevel, u.Key); err != nil {
		return err
	}
	state, _, _ := ix.entryAt(slot)
	if state != stateOccupied {
		if err := ix.writeEntry(txn, slot, stateOccupied, key, rid); err != nil {
			return err
		}
		ix.count++
	}
	return txn.CommitCompensationOp(OpLevel, u.Key)
}
