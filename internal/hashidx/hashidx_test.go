package hashidx

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/heap"
	"repro/internal/protect"
	"repro/internal/recovery"
	"repro/internal/wal"
)

func testDB(t *testing.T, pc protect.Config) (*core.DB, core.Config) {
	t.Helper()
	cfg := core.Config{Dir: t.TempDir(), ArenaSize: 1 << 20, Protect: pc}
	db, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, cfg
}

func newIndex(t *testing.T, db *core.DB, buckets int) *Index {
	t.Helper()
	cat, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := cat.CreateIndex("idx", buckets)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func rid(n uint32) heap.RID { return heap.RID{Table: 1, Slot: n} }

func TestInsertLookupDelete(t *testing.T) {
	db, _ := testDB(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	ix := newIndex(t, db, 64)
	txn, _ := db.Begin()

	if err := ix.Insert(txn, 42, rid(7)); err != nil {
		t.Fatal(err)
	}
	got, err := ix.Lookup(txn, 42)
	if err != nil || got != rid(7) {
		t.Fatalf("lookup: %v %v", got, err)
	}
	if err := ix.Insert(txn, 42, rid(8)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate insert: %v", err)
	}
	if _, err := ix.Lookup(txn, 43); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing lookup: %v", err)
	}
	if err := ix.Delete(txn, 42); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Lookup(txn, 42); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lookup after delete: %v", err)
	}
	if err := ix.Delete(txn, 42); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

func TestCollisionChains(t *testing.T) {
	db, _ := testDB(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	ix := newIndex(t, db, 16)
	txn, _ := db.Begin()
	// Fill most of a small index; linear probing must resolve collisions.
	for k := uint64(0); k < 12; k++ {
		if err := ix.Insert(txn, k, rid(uint32(k))); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 12; k++ {
		got, err := ix.Lookup(txn, k)
		if err != nil || got != rid(uint32(k)) {
			t.Fatalf("lookup %d: %v %v", k, got, err)
		}
	}
	// Delete a middle element; probe chains must survive (tombstones).
	if err := ix.Delete(txn, 5); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 12; k++ {
		if k == 5 {
			continue
		}
		if _, err := ix.Lookup(txn, k); err != nil {
			t.Fatalf("lookup %d after delete: %v", k, err)
		}
	}
	// Tombstone is reused by a new insert.
	if err := ix.Insert(txn, 100, rid(100)); err != nil {
		t.Fatal(err)
	}
	txn.Commit()
	if err := db.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestIndexFull(t *testing.T) {
	db, _ := testDB(t, protect.Config{})
	ix := newIndex(t, db, 8)
	txn, _ := db.Begin()
	for k := uint64(0); k < 7; k++ {
		if err := ix.Insert(txn, k, rid(uint32(k))); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Insert(txn, 99, rid(99)); !errors.Is(err, ErrIndexFull) {
		t.Fatalf("overfull insert: %v", err)
	}
	txn.Commit()
}

func TestAbortRollsBackIndexOps(t *testing.T) {
	db, _ := testDB(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	ix := newIndex(t, db, 64)

	txn, _ := db.Begin()
	if err := ix.Insert(txn, 1, rid(1)); err != nil {
		t.Fatal(err)
	}
	txn.Commit()

	txn2, _ := db.Begin()
	if err := ix.Insert(txn2, 2, rid(2)); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(txn2, 1); err != nil {
		t.Fatal(err)
	}
	if err := txn2.Abort(); err != nil {
		t.Fatal(err)
	}

	txn3, _ := db.Begin()
	if _, err := ix.Lookup(txn3, 1); err != nil {
		t.Fatalf("aborted delete not undone: %v", err)
	}
	if _, err := ix.Lookup(txn3, 2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("aborted insert survived: %v", err)
	}
	txn3.Commit()
	if ix.Count() != 1 {
		t.Fatalf("count = %d", ix.Count())
	}
	if err := db.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestIndexSurvivesCrashRecovery(t *testing.T) {
	cfg := core.Config{Dir: t.TempDir(), ArenaSize: 1 << 20,
		Protect: protect.Config{Kind: protect.KindReadLog, RegionSize: 64}}
	db, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat, _ := Open(db)
	ix, err := cat.CreateIndex("idx", 128)
	if err != nil {
		t.Fatal(err)
	}
	txn, _ := db.Begin()
	for k := uint64(0); k < 50; k++ {
		if err := ix.Insert(txn, k, rid(uint32(k))); err != nil {
			t.Fatal(err)
		}
	}
	txn.Commit()
	if err := db.Checkpoint(); err != nil { // persists the index catalog
		t.Fatal(err)
	}
	// Post-checkpoint committed mutations.
	txn2, _ := db.Begin()
	if err := ix.Delete(txn2, 10); err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(txn2, 1000, rid(1000)); err != nil {
		t.Fatal(err)
	}
	txn2.Commit()
	// An uncommitted mutation that must roll back.
	txn3, _ := db.Begin()
	if err := ix.Delete(txn3, 20); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil { // undo log reaches the checkpointed ATT
		t.Fatal(err)
	}
	db.Crash()

	db2, rep, err := recovery.Open(cfg, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if len(rep.RolledBack) != 1 {
		t.Fatalf("rolled back: %v", rep.RolledBack)
	}
	cat2, err := Open(db2)
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := cat2.IndexNamed("idx")
	if err != nil {
		t.Fatal(err)
	}
	check, _ := db2.Begin()
	defer check.Commit()
	if _, err := ix2.Lookup(check, 10); !errors.Is(err, ErrNotFound) {
		t.Fatalf("committed delete lost: %v", err)
	}
	if got, err := ix2.Lookup(check, 1000); err != nil || got != rid(1000) {
		t.Fatalf("committed insert lost: %v %v", got, err)
	}
	if _, err := ix2.Lookup(check, 20); err != nil {
		t.Fatalf("uncommitted delete not rolled back: %v", err)
	}
	if ix2.Count() != 50 {
		t.Fatalf("count = %d, want 50", ix2.Count())
	}
	if err := db2.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptIndexEntryTracedByRecovery(t *testing.T) {
	// A wild write corrupts an index entry; a transaction that probes
	// through it is traced and deleted, exactly like a heap read.
	cfg := core.Config{Dir: t.TempDir(), ArenaSize: 1 << 20,
		Protect: protect.Config{Kind: protect.KindCWReadLog, RegionSize: 64}}
	db, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat, _ := Open(db)
	ix, err := cat.CreateIndex("idx", 64)
	if err != nil {
		t.Fatal(err)
	}
	hcat, _ := heap.Open(db)
	tb, err := hcat.CreateTable("t", 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	setup, _ := db.Begin()
	target, err := tb.Insert(setup, make([]byte, 64))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(setup, 7, target); err != nil {
		t.Fatal(err)
	}
	setup.Commit()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the index entry's RID field so the lookup returns a wrong
	// record identity.
	inj := fault.New(db.Internals().Arena, db.Scheme().Protector(), 9)
	slot, found, err := ix.probeLocked(7)
	if err != nil || !found {
		t.Fatalf("probe: %v %v", found, err)
	}
	if _, err := inj.WildWrite(ix.slotAddr(slot)+16, []byte{0x05}); err != nil {
		t.Fatal(err)
	}

	carrier, _ := db.Begin()
	if _, err := ix.Lookup(carrier, 7); err != nil {
		t.Fatal(err) // returns a wrong RID — the carrier doesn't know
	}
	if err := tb.Update(carrier, target, 0, []byte("poison")); err != nil {
		t.Fatal(err)
	}
	carrier.Commit()
	db.Crash()

	db2, rep, err := recovery.Open(cfg, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if len(rep.Deleted) != 1 || rep.Deleted[0].ID != carrier.ID() {
		t.Fatalf("deleted: %+v, want carrier %d", rep.Deleted, carrier.ID())
	}
	if err := db2.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestCatalogPersistRoundTrip(t *testing.T) {
	db, _ := testDB(t, protect.Config{})
	cat, _ := Open(db)
	ix, err := cat.CreateIndex("a", 100) // rounds to 128
	if err != nil {
		t.Fatal(err)
	}
	if ix.Buckets != 128 {
		t.Fatalf("buckets = %d", ix.Buckets)
	}
	if _, err := cat.CreateIndex("a", 8); !errors.Is(err, ErrIndexExists) {
		t.Fatalf("duplicate index: %v", err)
	}
	blob, ok := db.Meta(catalogMetaKey)
	if !ok {
		t.Fatal("catalog not persisted")
	}
	c2 := &Catalog{db: db, byName: map[string]*Index{}, byID: map[uint32]*Index{}}
	if err := c2.decode(blob); err != nil {
		t.Fatal(err)
	}
	ix2 := c2.byName["a"]
	if ix2 == nil || ix2.Buckets != 128 || ix2.first != ix.first {
		t.Fatalf("decoded: %+v", ix2)
	}
	if err := c2.decode(blob[:2]); err == nil {
		t.Fatal("truncated catalog accepted")
	}
}

func TestRandomizedAgainstMapModel(t *testing.T) {
	db, _ := testDB(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	ix := newIndex(t, db, 256)
	model := map[uint64]heap.RID{}
	rng := rand.New(rand.NewSource(11))
	txn, _ := db.Begin()
	for i := 0; i < 2000; i++ {
		k := uint64(rng.Intn(300))
		switch rng.Intn(3) {
		case 0: // insert
			r := rid(uint32(rng.Intn(1 << 20)))
			err := ix.Insert(txn, k, r)
			if _, exists := model[k]; exists {
				if !errors.Is(err, ErrDuplicate) {
					t.Fatalf("op %d: duplicate insert: %v", i, err)
				}
			} else if errors.Is(err, ErrIndexFull) {
				// acceptable when load is high
			} else if err != nil {
				t.Fatalf("op %d: insert: %v", i, err)
			} else {
				model[k] = r
			}
		case 1: // delete
			err := ix.Delete(txn, k)
			if _, exists := model[k]; exists {
				if err != nil {
					t.Fatalf("op %d: delete: %v", i, err)
				}
				delete(model, k)
			} else if !errors.Is(err, ErrNotFound) {
				t.Fatalf("op %d: phantom delete: %v", i, err)
			}
		case 2: // lookup
			got, err := ix.Lookup(txn, k)
			if want, exists := model[k]; exists {
				if err != nil || got != want {
					t.Fatalf("op %d: lookup %d = %v,%v want %v", i, k, got, err, want)
				}
			} else if !errors.Is(err, ErrNotFound) {
				t.Fatalf("op %d: phantom lookup: %v", i, err)
			}
		}
		if i%500 == 499 {
			if err := txn.Commit(); err != nil {
				t.Fatal(err)
			}
			txn, _ = db.Begin()
		}
	}
	txn.Commit()
	if ix.Count() != len(model) {
		t.Fatalf("count = %d, model = %d", ix.Count(), len(model))
	}
	if err := db.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestObjectKeySpaceDisjointFromHeap(t *testing.T) {
	ixKey := uint64(keySpaceBit | 5<<32 | 9)
	heapKey := uint64(heap.RID{Table: 5, Slot: 9}.Key())
	if ixKey == heapKey {
		t.Fatal("index and heap object keys collide")
	}
	if wal.ObjectKey(ixKey)&wal.ObjectKey(keySpaceBit) == 0 {
		t.Fatal("key space bit lost")
	}
}
