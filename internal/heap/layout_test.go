package heap

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/protect"
	"repro/internal/recovery"
)

func TestPageLocalGeometry(t *testing.T) {
	cases := []struct {
		pageSize, recSize      int
		wantRecs, maxHdrWasted int
	}{
		{4096, 100, 40, 0}, // 40*100 + 8-byte header = 4008 <= 4096
		{4096, 64, 63, 0},  // 63*64 + 8 = 4040
		{4096, 4096, 0, 0}, // record + header cannot fit
		{4096, 4088, 1, 0}, // 4088 + 8 = 4096 exactly
	}
	for _, c := range cases {
		recs, hdr := pageLocalGeometry(c.pageSize, c.recSize)
		if recs != c.wantRecs {
			t.Errorf("geometry(%d,%d) recs = %d, want %d", c.pageSize, c.recSize, recs, c.wantRecs)
		}
		if recs > 0 && hdr+recs*c.recSize > c.pageSize {
			t.Errorf("geometry(%d,%d) overflows the page", c.pageSize, c.recSize)
		}
		if recs > 0 && hdr%8 != 0 {
			t.Errorf("geometry(%d,%d) header %d not 8-aligned", c.pageSize, c.recSize, hdr)
		}
	}
}

func TestPageLocalGeometryProperty(t *testing.T) {
	f := func(rs uint16) bool {
		recSize := 1 + int(rs)%512
		recs, hdr := pageLocalGeometry(4096, recSize)
		if recs == 0 {
			return recSize+8 > 4096
		}
		// Fits, bitmap covers all records, and one more record would not fit.
		if hdr+recs*recSize > 4096 {
			return false
		}
		if hdr*8 < recs {
			return false
		}
		moreHdr := ((recs+1+7)/8 + 7) &^ 7
		return moreHdr+(recs+1)*recSize > 4096
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPageLocalTableLifecycle(t *testing.T) {
	cat := testCatalog(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	tb, err := cat.CreateTableWithLayout("pl", 100, 120, LayoutPageLocal)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Layout != LayoutPageLocal || tb.recsPerPage != 40 {
		t.Fatalf("table: %+v", tb)
	}
	txn, _ := cat.db.Begin()
	var rids []RID
	for i := 0; i < 90; i++ { // spans three pages
		rec := bytes.Repeat([]byte{byte(i + 1)}, 100)
		rid, err := tb.Insert(txn, rec)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	for i, rid := range rids {
		got, err := tb.Read(txn, rid)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i+1) {
			t.Fatalf("record %d = %#x", i, got[0])
		}
	}
	// Update, delete, reuse across page boundaries.
	if err := tb.Update(txn, rids[45], 10, []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Delete(txn, rids[50]); err != nil {
		t.Fatal(err)
	}
	rid, err := tb.Insert(txn, make([]byte, 100))
	if err != nil {
		t.Fatal(err)
	}
	if rid != rids[50] {
		t.Fatalf("freed slot not reused: %v", rid)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if tb.Count() != 90 {
		t.Fatalf("count = %d", tb.Count())
	}
	if err := cat.db.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

func TestPageLocalRecordsDoNotSpanPages(t *testing.T) {
	cat := testCatalog(t, protect.Config{})
	tb, err := cat.CreateTableWithLayout("pl", 100, 120, LayoutPageLocal)
	if err != nil {
		t.Fatal(err)
	}
	pageSize := cat.db.PageSize()
	for slot := uint32(0); slot < 120; slot++ {
		start := int(tb.RecordAddr(slot))
		end := start + tb.RecSize - 1
		if start/pageSize != end/pageSize {
			t.Fatalf("slot %d spans pages: [%d,%d]", slot, start, end)
		}
		// The allocation bit lives on the same page as the record.
		bitAddr, _ := tb.bitAddr(slot)
		if int(bitAddr)/pageSize != start/pageSize {
			t.Fatalf("slot %d bitmap on page %d, record on page %d",
				slot, int(bitAddr)/pageSize, start/pageSize)
		}
	}
}

func TestPageLocalRejectsOversizeRecord(t *testing.T) {
	cat := testCatalog(t, protect.Config{})
	if _, err := cat.CreateTableWithLayout("big", 5000, 10, LayoutPageLocal); !errors.Is(err, ErrBadRecordSize) {
		t.Fatalf("oversize page-local record: %v", err)
	}
}

func TestPageLocalSurvivesRecovery(t *testing.T) {
	cfg := core.Config{Dir: t.TempDir(), ArenaSize: 1 << 19,
		Protect: protect.Config{Kind: protect.KindReadLog, RegionSize: 64}}
	db, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat, _ := Open(db)
	tb, err := cat.CreateTableWithLayout("pl", 100, 80, LayoutPageLocal)
	if err != nil {
		t.Fatal(err)
	}
	txn, _ := db.Begin()
	rid, err := tb.Insert(txn, bytes.Repeat([]byte{7}, 100))
	if err != nil {
		t.Fatal(err)
	}
	txn.Commit()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	txn2, _ := db.Begin()
	if err := tb.Update(txn2, rid, 0, []byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	txn2.Commit()
	db.Crash()

	db2, _, err := recovery.Open(cfg, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	cat2, _ := Open(db2)
	tb2, err := cat2.Table("pl")
	if err != nil {
		t.Fatal(err)
	}
	if tb2.Layout != LayoutPageLocal || tb2.recsPerPage != tb.recsPerPage {
		t.Fatalf("layout lost in catalog: %+v", tb2)
	}
	check, _ := db2.Begin()
	defer check.Commit()
	got, err := tb2.Read(check, rid)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 || got[2] != 7 {
		t.Fatalf("record after recovery: %v", got[:4])
	}
}

func TestPageLocalReducesPagesTouched(t *testing.T) {
	// The paper's §5.3 hypothesis: a page-based layout touches fewer
	// pages per insert, improving hardware protection's lot. One insert:
	// separate layout exposes a data page (or two, records may span) plus
	// a bitmap page; page-local exposes exactly one page.
	mkDB := func(layout Layout) uint64 {
		db, err := core.Open(core.Config{
			Dir:       t.TempDir(),
			ArenaSize: 1 << 19,
			Protect:   protect.Config{Kind: protect.KindHW, ForceSimProtect: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		cat, _ := Open(db)
		tb, err := cat.CreateTableWithLayout("t", 100, 200, layout)
		if err != nil {
			t.Fatal(err)
		}
		txn, _ := db.Begin()
		before := db.Metrics().Counter(obs.NameProtectCalls)
		for i := 0; i < 100; i++ {
			if _, err := tb.Insert(txn, make([]byte, 100)); err != nil {
				t.Fatal(err)
			}
		}
		txn.Commit()
		return db.Metrics().Counter(obs.NameProtectCalls) - before
	}
	sep := mkDB(LayoutSeparate)
	local := mkDB(LayoutPageLocal)
	if local >= sep {
		t.Fatalf("page-local exposed %d calls, separate %d — expected fewer", local, sep)
	}
}

func TestLargeRecordsSpanPagesContiguously(t *testing.T) {
	// Paper §2: a benefit of the non-page-based Dalí layout is "the
	// ability to store objects larger than a page contiguously, and thus
	// access them directly without reassembly and copying". Records of
	// 10000 bytes (2.4 pages) must round-trip through the prescribed
	// interface with codewords intact.
	db, err := core.Open(core.Config{
		Dir:       t.TempDir(),
		ArenaSize: 1 << 20,
		Protect:   protect.Config{Kind: protect.KindDataCW, RegionSize: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cat, _ := Open(db)
	blobs, err := cat.CreateTable("blobs", 10_000, 32)
	if err != nil {
		t.Fatal(err)
	}
	txn, _ := db.Begin()
	rec := make([]byte, 10_000)
	for i := range rec {
		rec[i] = byte(i * 7)
	}
	rid, err := blobs.Insert(txn, rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := blobs.Read(txn, rid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, rec) {
		t.Fatal("large record did not round-trip")
	}
	// An update in the middle of the object (crossing a page boundary).
	off := 4090
	if err := blobs.Update(txn, rid, off, bytes.Repeat([]byte{0xAB}, 12)); err != nil {
		t.Fatal(err)
	}
	got, _ = blobs.Read(txn, rid)
	for i := 0; i < 12; i++ {
		if got[off+i] != 0xAB {
			t.Fatalf("mid-object update byte %d wrong", i)
		}
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Audit(); err != nil {
		t.Fatalf("audit with large objects: %v", err)
	}
	// Page-local layout rightly refuses records over a page.
	if _, err := cat.CreateTableWithLayout("big", 10_000, 4, LayoutPageLocal); err == nil {
		t.Fatal("page-local accepted an over-page record")
	}
}

func TestLargeRecordSurvivesRecovery(t *testing.T) {
	cfg := core.Config{Dir: t.TempDir(), ArenaSize: 1 << 20,
		Protect: protect.Config{Kind: protect.KindDataCW, RegionSize: 512}}
	db, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat, _ := Open(db)
	blobs, err := cat.CreateTable("blobs", 10_000, 8)
	if err != nil {
		t.Fatal(err)
	}
	txn, _ := db.Begin()
	rec := bytes.Repeat([]byte{0x5A}, 10_000)
	rid, err := blobs.Insert(txn, rec)
	if err != nil {
		t.Fatal(err)
	}
	txn.Commit()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	txn2, _ := db.Begin()
	if err := blobs.Update(txn2, rid, 9000, []byte("tail-update")); err != nil {
		t.Fatal(err)
	}
	txn2.Commit()
	db.Crash()

	db2, _, err := recovery.Open(cfg, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	cat2, _ := Open(db2)
	blobs2, _ := cat2.Table("blobs")
	check, _ := db2.Begin()
	defer check.Commit()
	got, err := blobs2.Read(check, rid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[9000:9011]) != "tail-update" {
		t.Fatalf("large-object update lost: %q", got[9000:9011])
	}
	if got[0] != 0x5A || got[8999] != 0x5A {
		t.Fatal("large-object body damaged")
	}
}
