package heap

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/lockmgr"
	"repro/internal/mem"
	"repro/internal/wal"
)

// Insert stores data (exactly RecSize bytes) in a free slot and returns
// its RID. The insert is a level-1 operation: bitmap and record updates
// are physical updates through the prescribed interface, and the logical
// undo is a delete of the new record.
func (t *Table) Insert(txn *core.Txn, data []byte) (RID, error) {
	if len(data) != t.RecSize {
		return RID{}, fmt.Errorf("%w: got %d bytes, table %q holds %d",
			ErrBadRecordSize, len(data), t.Name, t.RecSize)
	}
	// Free-slot search is serialized per table; the allocation mutex is
	// held until the bitmap bit is durably set in the in-memory image so
	// a concurrent insert cannot choose the same slot.
	t.allocMu.Lock()
	defer t.allocMu.Unlock()
	slot, ok := t.findFreeLocked()
	if !ok {
		return RID{}, fmt.Errorf("%w: %s (%d records)", ErrTableFull, t.Name, t.Cap)
	}
	rid := RID{Table: t.ID, Slot: slot}
	if err := txn.Lock(rid.Key(), lockmgr.Exclusive); err != nil {
		return RID{}, err
	}
	if err := txn.BeginOp(OpLevel, rid.Key()); err != nil {
		return RID{}, err
	}
	if err := t.setBit(txn, slot, true); err != nil {
		txn.AbortOp()
		return RID{}, err
	}
	if err := t.writeRecord(txn, slot, 0, data); err != nil {
		txn.AbortOp()
		return RID{}, err
	}
	if err := txn.CommitOp(OpLevel, rid.Key(), wal.LogicalUndo{
		Op: UndoOpDelete, Key: rid.Key(),
	}); err != nil {
		return RID{}, err
	}
	t.nextFree = slot + 1
	return rid, nil
}

// InsertAt stores data in a specific free slot (used by logical undo of
// delete, and by loaders that want deterministic RIDs).
func (t *Table) InsertAt(txn *core.Txn, rid RID, data []byte) error {
	if len(data) != t.RecSize {
		return fmt.Errorf("%w: got %d bytes, table %q holds %d",
			ErrBadRecordSize, len(data), t.Name, t.RecSize)
	}
	if rid.Table != t.ID || rid.Slot >= uint32(t.Cap) {
		return fmt.Errorf("heap: rid %v not in table %q", rid, t.Name)
	}
	if err := txn.Lock(rid.Key(), lockmgr.Exclusive); err != nil {
		return err
	}
	if t.Allocated(rid.Slot) {
		return fmt.Errorf("%w: %v", ErrSlotOccupied, rid)
	}
	if err := txn.BeginOp(OpLevel, rid.Key()); err != nil {
		return err
	}
	if err := t.setBit(txn, rid.Slot, true); err != nil {
		txn.AbortOp()
		return err
	}
	if err := t.writeRecord(txn, rid.Slot, 0, data); err != nil {
		txn.AbortOp()
		return err
	}
	return txn.CommitOp(OpLevel, rid.Key(), wal.LogicalUndo{
		Op: UndoOpDelete, Key: rid.Key(),
	})
}

// Update overwrites n bytes of the record at offset off. The logical undo
// restores the previous bytes.
func (t *Table) Update(txn *core.Txn, rid RID, off int, data []byte) error {
	if err := t.checkRange(rid, off, len(data)); err != nil {
		return err
	}
	if err := txn.Lock(rid.Key(), lockmgr.Exclusive); err != nil {
		return err
	}
	if !t.Allocated(rid.Slot) {
		return fmt.Errorf("%w: %v", ErrSlotFree, rid)
	}
	if err := txn.BeginOp(OpLevel, rid.Key()); err != nil {
		return err
	}
	addr := t.RecordAddr(rid.Slot) + mem.Addr(off)
	u, err := txn.BeginUpdate(addr, len(data))
	if err != nil {
		txn.AbortOp()
		return err
	}
	old := append([]byte(nil), u.Bytes()...)
	copy(u.Bytes(), data)
	if err := u.End(); err != nil {
		txn.AbortOp()
		return err
	}
	return txn.CommitOp(OpLevel, rid.Key(), wal.LogicalUndo{
		Op: UndoOpUpdate, Key: rid.Key(), Args: encodeUpdateUndo(off, old),
	})
}

// Delete removes the record; the logical undo re-inserts its old
// contents at the same slot.
func (t *Table) Delete(txn *core.Txn, rid RID) error {
	if rid.Table != t.ID || rid.Slot >= uint32(t.Cap) {
		return fmt.Errorf("heap: rid %v not in table %q", rid, t.Name)
	}
	if err := txn.Lock(rid.Key(), lockmgr.Exclusive); err != nil {
		return err
	}
	if !t.Allocated(rid.Slot) {
		return fmt.Errorf("%w: %v", ErrSlotFree, rid)
	}
	old := make([]byte, t.RecSize)
	copy(old, t.cat.db.Internals().Arena.Slice(t.RecordAddr(rid.Slot), t.RecSize))
	if err := txn.BeginOp(OpLevel, rid.Key()); err != nil {
		return err
	}
	if err := t.setBit(txn, rid.Slot, false); err != nil {
		txn.AbortOp()
		return err
	}
	if err := txn.CommitOp(OpLevel, rid.Key(), wal.LogicalUndo{
		Op: UndoOpInsert, Key: rid.Key(), Args: old,
	}); err != nil {
		return err
	}
	t.allocMu.Lock()
	if rid.Slot < t.nextFree {
		t.nextFree = rid.Slot
	}
	t.allocMu.Unlock()
	return nil
}

// Read returns a copy of the whole record, taking a shared
// transaction-duration lock and reading through the prescribed interface
// (read prechecking and read logging apply here).
func (t *Table) Read(txn *core.Txn, rid RID) ([]byte, error) {
	return t.ReadAt(txn, rid, 0, t.RecSize)
}

// ReadAt returns a copy of n bytes of the record starting at off.
func (t *Table) ReadAt(txn *core.Txn, rid RID, off, n int) ([]byte, error) {
	if err := t.checkRange(rid, off, n); err != nil {
		return nil, err
	}
	if err := txn.Lock(rid.Key(), lockmgr.Shared); err != nil {
		return nil, err
	}
	if !t.Allocated(rid.Slot) {
		return nil, fmt.Errorf("%w: %v", ErrSlotFree, rid)
	}
	return txn.Read(t.RecordAddr(rid.Slot)+mem.Addr(off), n)
}

// Scan invokes fn for every allocated record (by direct image access; a
// consistent scan under locking is the caller's business). It stops early
// if fn returns false.
func (t *Table) Scan(fn func(rid RID, rec []byte) bool) {
	arena := t.cat.db.Internals().Arena
	for s := uint32(0); s < uint32(t.Cap); s++ {
		if !t.Allocated(s) {
			continue
		}
		rec := arena.Slice(t.RecordAddr(s), t.RecSize)
		if !fn(RID{Table: t.ID, Slot: s}, rec) {
			return
		}
	}
}

func (t *Table) checkRange(rid RID, off, n int) error {
	if rid.Table != t.ID || rid.Slot >= uint32(t.Cap) {
		return fmt.Errorf("heap: rid %v not in table %q", rid, t.Name)
	}
	if off < 0 || n < 0 || off+n > t.RecSize {
		return fmt.Errorf("heap: range [%d,+%d) outside %d-byte record", off, n, t.RecSize)
	}
	return nil
}

// findFreeLocked scans the allocation bitmap next-fit from the hint.
func (t *Table) findFreeLocked() (uint32, bool) {
	cap32 := uint32(t.Cap)
	for i := uint32(0); i < cap32; i++ {
		s := (t.nextFree + i) % cap32
		if !t.Allocated(s) {
			return s, true
		}
	}
	return 0, false
}

// setBit updates one allocation-bitmap bit through the prescribed
// interface (this is the off-page "allocation information" update that
// contributes extra page touches under hardware protection, §5.3). The
// whole read-modify-write bracket runs under bitmapMu because the byte is
// shared by eight slots; see the field's comment.
func (t *Table) setBit(txn *core.Txn, slot uint32, on bool) error {
	addr, bit := t.bitAddr(slot)
	t.bitmapMu.Lock()
	defer t.bitmapMu.Unlock()
	u, err := txn.BeginUpdate(addr, 1)
	if err != nil {
		return err
	}
	if on {
		u.Bytes()[0] |= 1 << bit
	} else {
		u.Bytes()[0] &^= 1 << bit
	}
	return u.End()
}

// writeRecord updates record bytes through the prescribed interface.
func (t *Table) writeRecord(txn *core.Txn, slot uint32, off int, data []byte) error {
	u, err := txn.BeginUpdate(t.RecordAddr(slot)+mem.Addr(off), len(data))
	if err != nil {
		return err
	}
	copy(u.Bytes(), data)
	return u.End()
}

func encodeUpdateUndo(off int, old []byte) []byte {
	b := binary.AppendUvarint(nil, uint64(off))
	return append(b, old...)
}

func decodeUpdateUndo(args []byte) (int, []byte, error) {
	off, n := binary.Uvarint(args)
	if n <= 0 {
		return 0, nil, fmt.Errorf("heap: corrupt update undo args")
	}
	return int(off), args[n:], nil
}

// --- logical undo handlers ---------------------------------------------------

func init() {
	core.RegisterUndoOp(UndoOpDelete, undoDelete)
	core.RegisterUndoOp(UndoOpInsert, undoInsert)
	core.RegisterUndoOp(UndoOpUpdate, undoUpdate)
}

// tableFor resolves the table for an undo key via the catalog attachment.
func tableFor(txn *core.Txn, key wal.ObjectKey) (*Table, RID, error) {
	rid := RIDFromKey(key)
	cat, err := Open(txnDB(txn))
	if err != nil {
		return nil, rid, err
	}
	t, err := cat.TableByID(rid.Table)
	return t, rid, err
}

// txnDB extracts the DB from a Txn; core deliberately does not expose it
// as a method to keep Txn small, so heap fetches it through the catalog
// attachment contract.
func txnDB(txn *core.Txn) *core.DB { return txn.DB() }

// undoDelete logically undoes an insert: the record is deleted by a
// compensation operation.
func undoDelete(txn *core.Txn, u wal.LogicalUndo) error {
	t, rid, err := tableFor(txn, u.Key)
	if err != nil {
		return err
	}
	if err := txn.BeginOp(OpLevel, rid.Key()); err != nil {
		return err
	}
	if t.Allocated(rid.Slot) {
		if err := t.setBit(txn, rid.Slot, false); err != nil {
			return err
		}
	}
	if err := txn.CommitCompensationOp(OpLevel, rid.Key()); err != nil {
		return err
	}
	t.allocMu.Lock()
	if rid.Slot < t.nextFree {
		t.nextFree = rid.Slot
	}
	t.allocMu.Unlock()
	return nil
}

// undoInsert logically undoes a delete: the old record bytes (carried in
// Args) are re-inserted at the same slot.
func undoInsert(txn *core.Txn, u wal.LogicalUndo) error {
	t, rid, err := tableFor(txn, u.Key)
	if err != nil {
		return err
	}
	if len(u.Args) != t.RecSize {
		return fmt.Errorf("heap: undo-insert args %d bytes, record is %d", len(u.Args), t.RecSize)
	}
	if err := txn.BeginOp(OpLevel, rid.Key()); err != nil {
		return err
	}
	if !t.Allocated(rid.Slot) {
		if err := t.setBit(txn, rid.Slot, true); err != nil {
			return err
		}
	}
	if err := t.writeRecord(txn, rid.Slot, 0, u.Args); err != nil {
		return err
	}
	return txn.CommitCompensationOp(OpLevel, rid.Key())
}

// undoUpdate logically undoes an update: the old bytes are restored.
func undoUpdate(txn *core.Txn, u wal.LogicalUndo) error {
	t, rid, err := tableFor(txn, u.Key)
	if err != nil {
		return err
	}
	off, old, err := decodeUpdateUndo(u.Args)
	if err != nil {
		return err
	}
	if err := txn.BeginOp(OpLevel, rid.Key()); err != nil {
		return err
	}
	if err := t.writeRecord(txn, rid.Slot, off, old); err != nil {
		return err
	}
	return txn.CommitCompensationOp(OpLevel, rid.Key())
}
