package heap

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/protect"
	"repro/internal/wal"
)

func testCatalog(t *testing.T, pc protect.Config) *Catalog {
	t.Helper()
	db, err := core.Open(core.Config{
		Dir:       t.TempDir(),
		ArenaSize: 1 << 20,
		Protect:   pc,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	cat, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func rec(t *Table, fill byte) []byte {
	b := make([]byte, t.RecSize)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestCreateTableAndLookup(t *testing.T) {
	cat := testCatalog(t, protect.Config{})
	tb, err := cat.CreateTable("account", 100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if tb.ID != 1 || tb.RecSize != 100 || tb.Cap != 1000 {
		t.Fatalf("table: %+v", tb)
	}
	if _, err := cat.CreateTable("account", 100, 10); !errors.Is(err, ErrTableExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	got, err := cat.Table("account")
	if err != nil || got != tb {
		t.Fatalf("lookup: %v", err)
	}
	if _, err := cat.Table("nope"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("missing lookup: %v", err)
	}
	byID, err := cat.TableByID(1)
	if err != nil || byID != tb {
		t.Fatalf("lookup by id: %v", err)
	}
	if len(cat.Tables()) != 1 {
		t.Fatal("Tables() wrong")
	}
}

func TestCreateTableValidation(t *testing.T) {
	cat := testCatalog(t, protect.Config{})
	if _, err := cat.CreateTable("t", 0, 10); err == nil {
		t.Fatal("zero record size accepted")
	}
	if _, err := cat.CreateTable("t", 10, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	// Exhaust the arena.
	if _, err := cat.CreateTable("huge", 100, 10_000_000); err == nil {
		t.Fatal("oversized table accepted")
	}
}

func TestCatalogPersistRoundTrip(t *testing.T) {
	cat := testCatalog(t, protect.Config{})
	tb, err := cat.CreateTable("teller", 100, 500)
	if err != nil {
		t.Fatal(err)
	}
	blob, ok := cat.db.Meta("heap.catalog")
	if !ok {
		t.Fatal("catalog not persisted")
	}
	cat2 := &Catalog{db: cat.db, byName: map[string]*Table{}, byID: map[uint32]*Table{}}
	if err := cat2.decode(blob); err != nil {
		t.Fatal(err)
	}
	tb2 := cat2.byName["teller"]
	if tb2 == nil || tb2.ID != tb.ID || tb2.RecSize != tb.RecSize || tb2.Cap != tb.Cap ||
		tb2.dataFirst != tb.dataFirst || tb2.allocFirst != tb.allocFirst {
		t.Fatalf("decoded table %+v != %+v", tb2, tb)
	}
	if cat2.nextID != cat.nextID {
		t.Fatal("nextID lost")
	}
	// Corrupt catalog rejected.
	if err := (&Catalog{db: cat.db, byName: map[string]*Table{}, byID: map[uint32]*Table{}}).decode(blob[:3]); err == nil {
		t.Fatal("truncated catalog accepted")
	}
}

func TestInsertReadDelete(t *testing.T) {
	cat := testCatalog(t, protect.Config{Kind: protect.KindReadLog, RegionSize: 64})
	tb, err := cat.CreateTable("t", 64, 100)
	if err != nil {
		t.Fatal(err)
	}
	txn, _ := cat.db.Begin()
	rid, err := tb.Insert(txn, rec(tb, 0xAA))
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Allocated(rid.Slot) {
		t.Fatal("slot not allocated after insert")
	}
	got, err := tb.Read(txn, rid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, rec(tb, 0xAA)) {
		t.Fatal("read wrong data")
	}
	part, err := tb.ReadAt(txn, rid, 10, 4)
	if err != nil || len(part) != 4 || part[0] != 0xAA {
		t.Fatalf("ReadAt: %v %v", part, err)
	}
	if err := tb.Delete(txn, rid); err != nil {
		t.Fatal(err)
	}
	if tb.Allocated(rid.Slot) {
		t.Fatal("slot still allocated after delete")
	}
	if _, err := tb.Read(txn, rid); !errors.Is(err, ErrSlotFree) {
		t.Fatalf("read of deleted record: %v", err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := cat.db.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

func TestUpdateField(t *testing.T) {
	cat := testCatalog(t, protect.Config{Kind: protect.KindPrecheck, RegionSize: 64})
	tb, _ := cat.CreateTable("t", 100, 10)
	txn, _ := cat.db.Begin()
	rid, err := tb.Insert(txn, rec(tb, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Update(txn, rid, 20, []byte{9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	got, _ := tb.Read(txn, rid)
	if got[19] != 1 || got[20] != 9 || got[23] != 9 || got[24] != 1 {
		t.Fatalf("update window wrong: %v", got[18:26])
	}
	txn.Commit()
	if err := cat.db.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateValidation(t *testing.T) {
	cat := testCatalog(t, protect.Config{})
	tb, _ := cat.CreateTable("t", 32, 10)
	txn, _ := cat.db.Begin()
	rid, _ := tb.Insert(txn, rec(tb, 1))
	if err := tb.Update(txn, rid, 30, []byte{1, 2, 3}); err == nil {
		t.Fatal("out-of-record update accepted")
	}
	if err := tb.Update(txn, RID{Table: 99, Slot: 0}, 0, []byte{1}); err == nil {
		t.Fatal("foreign rid accepted")
	}
	if err := tb.Update(txn, RID{Table: tb.ID, Slot: 5}, 0, []byte{1}); !errors.Is(err, ErrSlotFree) {
		t.Fatalf("update of free slot: %v", err)
	}
	txn.Commit()
}

func TestInsertWrongSize(t *testing.T) {
	cat := testCatalog(t, protect.Config{})
	tb, _ := cat.CreateTable("t", 32, 10)
	txn, _ := cat.db.Begin()
	if _, err := tb.Insert(txn, make([]byte, 31)); !errors.Is(err, ErrBadRecordSize) {
		t.Fatalf("wrong-size insert: %v", err)
	}
	txn.Commit()
}

func TestTableFull(t *testing.T) {
	cat := testCatalog(t, protect.Config{})
	tb, _ := cat.CreateTable("t", 16, 4)
	txn, _ := cat.db.Begin()
	for i := 0; i < 4; i++ {
		if _, err := tb.Insert(txn, rec(tb, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tb.Insert(txn, rec(tb, 9)); !errors.Is(err, ErrTableFull) {
		t.Fatalf("overfull insert: %v", err)
	}
	// Delete one, insert succeeds again (slot reuse).
	if err := tb.Delete(txn, RID{Table: tb.ID, Slot: 2}); err != nil {
		t.Fatal(err)
	}
	rid, err := tb.Insert(txn, rec(tb, 9))
	if err != nil {
		t.Fatal(err)
	}
	if rid.Slot != 2 {
		t.Fatalf("freed slot not reused: got %d", rid.Slot)
	}
	txn.Commit()
}

func TestInsertAt(t *testing.T) {
	cat := testCatalog(t, protect.Config{})
	tb, _ := cat.CreateTable("t", 16, 10)
	txn, _ := cat.db.Begin()
	rid := RID{Table: tb.ID, Slot: 7}
	if err := tb.InsertAt(txn, rid, rec(tb, 3)); err != nil {
		t.Fatal(err)
	}
	if err := tb.InsertAt(txn, rid, rec(tb, 4)); !errors.Is(err, ErrSlotOccupied) {
		t.Fatalf("double InsertAt: %v", err)
	}
	if err := tb.InsertAt(txn, RID{Table: tb.ID, Slot: 100}, rec(tb, 1)); err == nil {
		t.Fatal("out-of-range InsertAt accepted")
	}
	got, _ := tb.Read(txn, rid)
	if got[0] != 3 {
		t.Fatal("InsertAt data wrong")
	}
	txn.Commit()
}

func TestAbortUndoesInsertUpdateDelete(t *testing.T) {
	cat := testCatalog(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	tb, _ := cat.CreateTable("t", 64, 100)

	// Base state: one committed record.
	txn, _ := cat.db.Begin()
	base, err := tb.Insert(txn, rec(tb, 0x11))
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	// A transaction inserts, updates the base record, deletes the base
	// record... then aborts. Everything must roll back.
	txn2, _ := cat.db.Begin()
	extra, err := tb.Insert(txn2, rec(tb, 0x22))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Update(txn2, base, 0, []byte{0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Delete(txn2, base); err != nil {
		t.Fatal(err)
	}
	if err := txn2.Abort(); err != nil {
		t.Fatal(err)
	}

	if tb.Allocated(extra.Slot) {
		t.Fatal("aborted insert survived")
	}
	if !tb.Allocated(base.Slot) {
		t.Fatal("aborted delete not undone")
	}
	txn3, _ := cat.db.Begin()
	got, err := tb.Read(txn3, base)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, rec(tb, 0x11)) {
		t.Fatalf("base record after abort: %x...", got[:4])
	}
	txn3.Commit()
	if err := cat.db.Audit(); err != nil {
		t.Fatalf("audit after rollbacks: %v", err)
	}
}

func TestScanAndCount(t *testing.T) {
	cat := testCatalog(t, protect.Config{})
	tb, _ := cat.CreateTable("t", 16, 50)
	txn, _ := cat.db.Begin()
	want := map[uint32]byte{}
	for i := 0; i < 10; i++ {
		rid, err := tb.Insert(txn, rec(tb, byte(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		want[rid.Slot] = byte(i + 1)
	}
	txn.Commit()
	if tb.Count() != 10 {
		t.Fatalf("count = %d", tb.Count())
	}
	seen := 0
	tb.Scan(func(rid RID, r []byte) bool {
		if want[rid.Slot] != r[0] {
			t.Errorf("slot %d holds %d, want %d", rid.Slot, r[0], want[rid.Slot])
		}
		seen++
		return true
	})
	if seen != 10 {
		t.Fatalf("scan visited %d", seen)
	}
	// Early stop.
	seen = 0
	tb.Scan(func(RID, []byte) bool { seen++; return false })
	if seen != 1 {
		t.Fatalf("scan did not stop early: %d", seen)
	}
}

func TestRIDKeyRoundTrip(t *testing.T) {
	r := RID{Table: 0xDEAD, Slot: 0xBEEF}
	if RIDFromKey(r.Key()) != r {
		t.Fatal("RID key roundtrip failed")
	}
	if r.String() == "" {
		t.Fatal("empty RID string")
	}
}

func TestConcurrentInsertsDistinctSlots(t *testing.T) {
	cat := testCatalog(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 512})
	tb, _ := cat.CreateTable("t", 64, 1000)
	var mu sync.Mutex
	slots := map[uint32]int{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			txn, err := cat.db.Begin()
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 50; i++ {
				rid, err := tb.Insert(txn, rec(tb, byte(g)))
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				slots[rid.Slot]++
				mu.Unlock()
			}
			if err := txn.Commit(); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	if len(slots) != 400 {
		t.Fatalf("distinct slots = %d, want 400", len(slots))
	}
	for s, n := range slots {
		if n != 1 {
			t.Fatalf("slot %d allocated %d times", s, n)
		}
	}
	if tb.Count() != 400 {
		t.Fatalf("count = %d", tb.Count())
	}
	if err := cat.db.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

func TestOpsAppearInLog(t *testing.T) {
	cat := testCatalog(t, protect.Config{Kind: protect.KindReadLog, RegionSize: 64})
	tb, _ := cat.CreateTable("t", 64, 10)
	txn, _ := cat.db.Begin()
	rid, _ := tb.Insert(txn, rec(tb, 5))
	tb.Read(txn, rid)
	tb.Update(txn, rid, 0, []byte{7})
	txn.Commit()
	cat.db.Close()

	counts := map[wal.Kind]int{}
	wal.Scan(cat.db.Config().Dir, 0, func(r *wal.Record) bool {
		counts[r.Kind]++
		return true
	})
	// Insert: op-begin + 2 phys (bit, record) + op-commit.
	// Read: 1 read record. Update: op-begin + 1 phys + op-commit.
	if counts[wal.KindOpBegin] != 2 || counts[wal.KindOpCommit] != 2 {
		t.Fatalf("op records: %v", counts)
	}
	if counts[wal.KindPhysRedo] != 3 {
		t.Fatalf("phys records: %v", counts)
	}
	if counts[wal.KindRead] != 1 {
		t.Fatalf("read records: %v", counts)
	}
	if counts[wal.KindTxnCommit] != 1 {
		t.Fatalf("commit records: %v", counts)
	}
}

func TestOpenReturnsSameCatalog(t *testing.T) {
	cat := testCatalog(t, protect.Config{})
	again, err := Open(cat.db)
	if err != nil {
		t.Fatal(err)
	}
	if again != cat {
		t.Fatal("Open returned a different catalog instance")
	}
}

func TestConcurrentBitmapByteNeighbors(t *testing.T) {
	// Regression: eight slots share one allocation-bitmap byte, so two
	// transactions inserting/deleting NEIGHBORING records perform
	// read-modify-writes on the same byte while holding only shared
	// protection latches. Without the table's bitmap mutex one bit update
	// is lost and the codeword audit fails.
	cat := testCatalog(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 512})
	tb, err := cat.CreateTable("t", 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-populate even slots; workers toggle odd slots around them.
	setup, _ := cat.db.Begin()
	for s := uint32(0); s < 16; s += 2 {
		if err := tb.InsertAt(setup, RID{Table: tb.ID, Slot: s}, make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	setup.Commit()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			slot := uint32(g*2 + 1) // odd slots 1,3,5,7: same bitmap byte
			for i := 0; i < 300; i++ {
				txn, err := cat.db.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				rid := RID{Table: tb.ID, Slot: slot}
				if err := tb.InsertAt(txn, rid, make([]byte, 64)); err != nil {
					t.Error(err)
					txn.Abort()
					return
				}
				if err := tb.Delete(txn, rid); err != nil {
					t.Error(err)
					txn.Abort()
					return
				}
				// Half the transactions abort: rollback re-inserts and
				// re-deletes through the undo handlers, doubling the
				// contended bitmap traffic.
				if i%2 == 0 {
					if err := txn.Abort(); err != nil {
						t.Error(err)
						return
					}
				} else if err := txn.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := cat.db.Audit(); err != nil {
		t.Fatalf("audit after contended bitmap traffic: %v", err)
	}
	if got := tb.Count(); got != 8 {
		t.Fatalf("count = %d, want the 8 pre-populated records", got)
	}
}
