package heap_test

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/protect"
)

// Example walks the basic protected-table lifecycle: create, insert,
// read, update, commit, audit.
func Example() {
	dir, err := os.MkdirTemp("", "heap-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := core.Open(core.Config{
		Dir:       dir,
		ArenaSize: 1 << 18,
		Protect:   protect.Config{Kind: protect.KindDataCW, RegionSize: 512},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	cat, err := heap.Open(db)
	if err != nil {
		log.Fatal(err)
	}
	accounts, err := cat.CreateTable("accounts", 32, 100)
	if err != nil {
		log.Fatal(err)
	}

	txn, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	rec := make([]byte, 32)
	copy(rec, "balance: 100")
	rid, err := accounts.Insert(txn, rec)
	if err != nil {
		log.Fatal(err)
	}
	if err := accounts.Update(txn, rid, 9, []byte("250")); err != nil {
		log.Fatal(err)
	}
	got, err := accounts.Read(txn, rid)
	if err != nil {
		log.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s\n", got[:12])
	fmt.Println("audit clean:", db.Audit() == nil)
	// Output:
	// balance: 250
	// audit clean: true
}
