package heap

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/protect"
)

// TestRandomizedHeapAgainstModel runs random insert/update/delete/read
// sequences against a map model, with random transaction aborts whose
// effects must vanish from both the heap and the model.
func TestRandomizedHeapAgainstModel(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			runHeapModel(t, seed)
		})
	}
}

func runHeapModel(t *testing.T, seed int64) {
	cat := testCatalog(t, protect.Config{Kind: protect.KindDataCW, RegionSize: 64})
	tb, err := cat.CreateTable("t", 32, 128)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))

	model := map[uint32][]byte{} // committed state
	for round := 0; round < 20; round++ {
		// Work on a pending copy; commit folds it in, abort discards it.
		pending := map[uint32][]byte{}
		for k, v := range model {
			pending[k] = append([]byte(nil), v...)
		}
		txn, err := cat.db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 5+rng.Intn(15); op++ {
			switch rng.Intn(4) {
			case 0: // insert
				rec := make([]byte, 32)
				rng.Read(rec)
				rid, err := tb.Insert(txn, rec)
				if errors.Is(err, ErrTableFull) {
					continue
				}
				if err != nil {
					t.Fatal(err)
				}
				if _, dup := pending[rid.Slot]; dup {
					t.Fatalf("insert reused live slot %d", rid.Slot)
				}
				pending[rid.Slot] = rec
			case 1: // update
				slot, ok := pickSlot(rng, pending)
				if !ok {
					continue
				}
				off := rng.Intn(28)
				data := make([]byte, 1+rng.Intn(4))
				rng.Read(data)
				if err := tb.Update(txn, RID{Table: tb.ID, Slot: slot}, off, data); err != nil {
					t.Fatal(err)
				}
				copy(pending[slot][off:], data)
			case 2: // delete
				slot, ok := pickSlot(rng, pending)
				if !ok {
					continue
				}
				if err := tb.Delete(txn, RID{Table: tb.ID, Slot: slot}); err != nil {
					t.Fatal(err)
				}
				delete(pending, slot)
			case 3: // read
				slot, ok := pickSlot(rng, pending)
				if !ok {
					continue
				}
				got, err := tb.Read(txn, RID{Table: tb.ID, Slot: slot})
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, pending[slot]) {
					t.Fatalf("round %d: slot %d read %x want %x", round, slot, got[:4], pending[slot][:4])
				}
			}
		}
		if rng.Intn(3) == 0 {
			if err := txn.Abort(); err != nil {
				t.Fatal(err)
			}
			// model unchanged
		} else {
			if err := txn.Commit(); err != nil {
				t.Fatal(err)
			}
			model = pending
		}
		// Verify committed state after every round.
		if tb.Count() != len(model) {
			t.Fatalf("round %d: count %d, model %d", round, tb.Count(), len(model))
		}
		check, _ := cat.db.Begin()
		for slot, want := range model {
			got, err := tb.Read(check, RID{Table: tb.ID, Slot: slot})
			if err != nil {
				t.Fatalf("round %d: read slot %d: %v", round, slot, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("round %d: slot %d = %x want %x", round, slot, got[:4], want[:4])
			}
		}
		check.Commit()
	}
	if err := cat.db.Audit(); err != nil {
		t.Fatalf("final audit: %v", err)
	}
}

func pickSlot(rng *rand.Rand, m map[uint32][]byte) (uint32, bool) {
	if len(m) == 0 {
		return 0, false
	}
	n := rng.Intn(len(m))
	for slot := range m {
		if n == 0 {
			return slot, true
		}
		n--
	}
	return 0, false
}
